//===- overrun_checker.cpp - Static buffer-overrun detection ----------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client application the SPARROW analyzer exists for: static buffer-
/// overrun detection.  The interval analysis tracks, for every pointer,
/// the (offset, size) tuple of the pointed-to block; the checker then
/// proves each dereference in bounds or raises an alarm.  The program
/// below mixes provably-safe loops, an off-by-one bug, and a definite
/// overrun; the example also runs the concrete interpreter to show the
/// off-by-one actually fires.
///
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "interp/Interp.h"
#include "ir/Builder.h"

#include <cstdio>

using namespace spa;

static const char *Source = R"(
  fun zero(buf, n) {
    i = 0;
    while (i < n) {          // safe: i in [0, n-1], buf has n cells
      q = buf + i;
      *q = 0;
      i = i + 1;
    }
    return 0;
  }

  fun sum_off_by_one(buf, n) {
    s = 0;
    i = 0;
    while (i <= n) {         // BUG: reads buf[n]
      q = buf + i;
      s = s + *q;
      i = i + 1;
    }
    return s;
  }

  fun main() {
    a = alloc(16);
    zero(a, 16);
    t = sum_off_by_one(a, 16);

    b = alloc(4);
    p = b + 9;               // BUG: definitely out of bounds
    v = *p;

    return t + v;
  }
)";

int main() {
  BuildResult Built = buildProgramFromSource(Source);
  if (!Built.ok()) {
    std::fprintf(stderr, "build error: %s\n", Built.Error.c_str());
    return 1;
  }
  const Program &Prog = *Built.Prog;

  // Static analysis + checking.
  AnalyzerOptions Opts;
  Opts.Engine = EngineKind::Sparse;
  Opts.Dep.Bypass = false; // The checker reads the input buffers.
  AnalysisRun Run = analyzeProgram(Prog, Opts);
  CheckerSummary Summary = checkBufferOverruns(Prog, Run);

  std::printf("checked %zu dereferences: %u proved safe, %u alarms\n\n",
              Summary.Checks.size(), Summary.numSafe(),
              Summary.numAlarms());
  for (const AccessCheck &C : Summary.Checks)
    std::printf("  %s\n", C.str(Prog).c_str());

  // Dynamic confirmation: the off-by-one read really overruns.
  std::printf("\nconcrete execution: ");
  Interp I(Prog, Run.Pre.CG, InterpOptions());
  InterpResult R = I.run(nullptr);
  if (R.Reason == StopReason::Overrun)
    std::printf("out-of-bounds access at {%s}\n",
                Prog.pointToString(R.OverrunPoints[0]).c_str());
  else
    std::printf("finished without overrun (reason %d)\n",
                static_cast<int>(R.Reason));

  // The dynamic overrun must be one of the static alarms (no false
  // negatives).
  if (R.Reason == StopReason::Overrun) {
    for (const AccessCheck &C : Summary.Checks)
      if (C.P == R.OverrunPoints[0] &&
          C.Result != AccessCheck::Verdict::Safe)
        std::printf("  -> covered by a static alarm, as guaranteed\n");
  }
  return 0;
}
