//===- sparse_vs_dense.cpp - The headline claim, end to end ------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper in one example: generate a mid-sized program, run the dense
/// baseline and the sparse analyzer, show that the sparse one computes
/// *identical* values at every definition (Lemma 2) while visiting far
/// fewer (point, location) pairs — precision preserved, cost collapsed.
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "ir/Builder.h"
#include "workload/Generator.h"

#include <cstdio>

using namespace spa;

int main() {
  // A loop-free, single-call-site program keeps both least fixpoints
  // exact, so the equality is literal, not approximate.
  GenConfig Config;
  Config.Seed = 2026;
  Config.NumFunctions = 24;
  Config.StmtsPerFunction = 18;
  Config.SingleCallSite = true;
  Config.AllowLoops = false;
  std::string Source = generateSource(Config);
  BuildResult Built = buildProgramFromSource(Source);
  if (!Built.ok()) {
    std::fprintf(stderr, "build error: %s\n", Built.Error.c_str());
    return 1;
  }
  const Program &Prog = *Built.Prog;
  std::printf("generated program: %zu control points, %zu abstract "
              "locations\n\n",
              Prog.numPoints(), Prog.numLocs());

  AnalyzerOptions DOpts;
  DOpts.Engine = EngineKind::Vanilla;
  AnalysisRun Dense = analyzeProgram(Prog, DOpts);

  AnalyzerOptions SOpts;
  SOpts.Engine = EngineKind::Sparse;
  AnalysisRun Sparse = analyzeProgram(Prog, SOpts);

  // Compare every semantic definition (Lemma 2).
  uint64_t Compared = 0, Equal = 0;
  for (uint32_t P = 0; P < Prog.numPoints(); ++P) {
    for (LocId L : Sparse.DU.Defs[P]) {
      ++Compared;
      Equal += Sparse.Sparse->Out[P].get(L) == Dense.Dense->Post[P].get(L);
    }
  }
  std::printf("precision: %llu/%llu defined values identical to the "
              "dense analysis\n",
              static_cast<unsigned long long>(Equal),
              static_cast<unsigned long long>(Compared));

  // Cost: what each engine materialized and how long it took.
  std::printf("\n                 %12s %12s\n", "dense", "sparse");
  std::printf("state entries    %12llu %12llu\n",
              static_cast<unsigned long long>(Dense.Dense->StateEntries),
              static_cast<unsigned long long>(Sparse.Sparse->StateEntries));
  std::printf("engine visits    %12llu %12llu\n",
              static_cast<unsigned long long>(Dense.Dense->Visits),
              static_cast<unsigned long long>(Sparse.Sparse->Visits));
  std::printf("fixpoint time    %11.1fms %11.1fms\n",
              Dense.Dense->Seconds * 1e3, Sparse.Sparse->Seconds * 1e3);
  std::printf("dep generation   %12s %11.1fms\n", "-",
              (Sparse.PreSeconds + Sparse.DefUseSeconds +
               Sparse.Graph->BuildSeconds) *
                  1e3);
  std::printf("\nThe sparse engine propagates values only along the %llu "
              "data-dependency edges instead of re-joining whole states "
              "along control flow — the entire point of the paper.\n",
              static_cast<unsigned long long>(
                  Sparse.Graph->Edges->edgeCount()));
  return Equal == Compared ? 0 : 1;
}
