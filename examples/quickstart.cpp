//===- quickstart.cpp - First steps with the SPA library ---------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: parse a small C-like program, run the sparse interval
/// analysis (pre-analysis -> D̂/Û -> data dependencies -> sparse
/// fixpoint), and print the invariants the analysis derives, alongside
/// the sparsity statistics that make the approach work.
///
/// Build and run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "ir/Builder.h"

#include <cstdio>

using namespace spa;

static const char *Source = R"(
  global calls = 0;

  fun clamp(v, lo, hi) {
    calls = calls + 1;
    if (v < lo) { return lo; }
    if (v > hi) { return hi; }
    return v;
  }

  fun main() {
    x = input();
    y = clamp(x, 0, 100);
    sum = 0;
    i = 0;
    while (i < 10) {
      sum = sum + y;
      i = i + 1;
    }
    return sum;
  }
)";

int main() {
  // 1. Frontend: source -> AST -> IR (control points + skeleton CFG).
  BuildResult Built = buildProgramFromSource(Source);
  if (!Built.ok()) {
    std::fprintf(stderr, "build error: %s\n", Built.Error.c_str());
    return 1;
  }
  const Program &Prog = *Built.Prog;
  std::printf("program: %zu control points, %zu abstract locations, "
              "%zu functions\n\n",
              Prog.numPoints(), Prog.numLocs(), Prog.numFuncs());

  // 2. The sparse analyzer. EngineKind::{Vanilla,Base,Sparse} select the
  // three analyzers of the paper's evaluation; Sparse is the default.
  AnalyzerOptions Opts;
  Opts.Engine = EngineKind::Sparse;
  Opts.Dep.Bypass = false; // Keep exit buffers observable for printing.
  AnalysisRun Run = analyzeProgram(Prog, Opts);

  // 3. Phase breakdown (the paper's Dep/Fix split) and sparsity.
  std::printf("pre-analysis:      %5.1f ms (flow-insensitive, resolves "
              "the callgraph)\n",
              Run.PreSeconds * 1e3);
  std::printf("def/use + deps:    %5.1f ms (%llu dependency edges, "
              "%zu phi nodes)\n",
              (Run.DefUseSeconds + Run.Graph->BuildSeconds) * 1e3,
              static_cast<unsigned long long>(Run.Graph->Edges->edgeCount()),
              Run.Graph->Phis.size());
  std::printf("sparse fixpoint:   %5.1f ms (%llu node visits)\n",
              Run.Sparse->Seconds * 1e3,
              static_cast<unsigned long long>(Run.Sparse->Visits));
  std::printf("avg |D(c)| = %.2f, avg |U(c)| = %.2f (out of %zu "
              "locations)\n\n",
              Run.DU.avgSemanticDefSize(), Run.DU.avgSemanticUseSize(),
              Prog.numLocs());

  // 4. Query invariants: the value of every location main defines, at
  // main's exit.
  FuncId Main = Prog.findFunction("main");
  PointId Exit = Prog.function(Main).Exit;
  std::printf("invariants at main's exit:\n");
  const AbsState &AtExit = Run.Sparse->In[Exit.value()];
  for (const auto &[L, V] : AtExit)
    std::printf("  %-12s = %s\n", Prog.loc(L).Name.c_str(),
                V.str().c_str());

  // 5. Per-point query: the loop counter right after the loop.
  for (uint32_t P = 0; P < Prog.numPoints(); ++P) {
    const Command &Cmd = Prog.point(PointId(P)).Cmd;
    if (Cmd.Kind == CmdKind::Assume && Prog.point(PointId(P)).Func == Main &&
        Cmd.Cnd->Op == RelOp::Ge) {
      std::printf("\nafter the loop guard fails (%s):\n",
                  Prog.pointToString(PointId(P)).c_str());
      for (LocId L : Run.DU.Defs[P])
        std::printf("  %-12s = %s\n", Prog.loc(L).Name.c_str(),
                    Run.Sparse->outValue(PointId(P), L).str().c_str());
    }
  }
  return 0;
}
