//===- relational.cpp - Octagon vs interval precision ------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Why Section 4 bothers with relational domains: the packed octagon
/// analysis proves facts that relate variables (y - x = 1, i <= n),
/// which the non-relational interval analysis structurally cannot.  The
/// example runs both analyzers on the same program and contrasts the
/// derived bounds, then shows the sparse octagon analyzer agreeing with
/// the dense one.
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "ir/Builder.h"
#include "oct/OctAnalysis.h"

#include <cstdio>

using namespace spa;

static const char *Source = R"(
  fun main() {
    x = input();
    y = x + 1;        // octagon: y - x = 1, whatever x is
    d = y - x;        // => d = 1; intervals: top - top = top

    n = input();
    if (n < 0) { n = 0; }
    i = 0;
    gap = 0;
    while (i < n) {   // octagon: i - n <= -1 inside the loop
      gap = n - i;    // => gap >= 1; intervals: gap unbounded below
      i = i + 1;
    }
    return d + gap;
  }
)";

int main() {
  BuildResult Built = buildProgramFromSource(Source);
  if (!Built.ok()) {
    std::fprintf(stderr, "build error: %s\n", Built.Error.c_str());
    return 1;
  }
  const Program &Prog = *Built.Prog;
  FuncId Main = Prog.findFunction("main");
  PointId Exit = Prog.function(Main).Exit;

  auto LocOf = [&](const char *Name) {
    for (uint32_t L = 0; L < Prog.numLocs(); ++L)
      if (Prog.loc(LocId(L)).Name == Name)
        return LocId(L);
    return LocId();
  };
  LocId D = LocOf("main::d"), Gap = LocOf("main::gap");

  // Interval analysis.
  AnalyzerOptions IOpts;
  IOpts.Engine = EngineKind::Vanilla;
  AnalysisRun Itv = analyzeProgram(Prog, IOpts);
  const AbsState &ItvExit = Itv.Dense->Post[Exit.value()];

  // Octagon analysis (dense and sparse).
  OctOptions OOpts;
  OOpts.Engine = EngineKind::Vanilla;
  OctRun OctDense = runOctAnalysis(Prog, OOpts);
  OOpts.Engine = EngineKind::Sparse;
  OctRun OctSparse = runOctAnalysis(Prog, OOpts);

  std::printf("variable   interval analysis     octagon analysis\n");
  std::printf("--------   -----------------     ----------------\n");
  std::printf("d          %-20s  %s\n", ItvExit.get(D).Itv.str().c_str(),
              OctDense.denseIntervalAt(Exit, D).str().c_str());
  std::printf("gap        %-20s  %s\n",
              ItvExit.get(Gap).Itv.str().c_str(),
              OctDense.denseIntervalAt(Exit, Gap).str().c_str());

  // The loop body's gap assignment: relational lower bound.
  for (uint32_t P = 0; P < Prog.numPoints(); ++P) {
    const Command &Cmd = Prog.point(PointId(P)).Cmd;
    if (Cmd.Kind == CmdKind::Assign && Cmd.Target == Gap &&
        Cmd.E->Kind == IExprKind::Binary) {
      std::printf("\ninside the loop, at {%s}:\n",
                  Prog.pointToString(PointId(P)).c_str());
      std::printf("  octagon proves gap = n - i in %s (i < n holds "
                  "there)\n",
                  OctDense.denseIntervalAt(PointId(P), Gap).str().c_str());
      // The sparse octagon analyzer derives the same fact.
      PackId S = OctSparse.Packs.singleton(Gap);
      const OctVal *V = OctSparse.Sparse->Out[P].lookup(S);
      std::printf("  sparse octagon agrees: gap in %s\n",
                  V ? V->project(0).str().c_str() : "(not defined here)");
    }
  }

  std::printf("\npacking: %u groups, average group size %.1f (paper "
              "reports 5-7)\n",
              OctDense.Packs.numGroups(), OctDense.Packs.avgGroupSize());
  return 0;
}
