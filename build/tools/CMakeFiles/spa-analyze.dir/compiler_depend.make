# Empty compiler generated dependencies file for spa-analyze.
# This may be replaced when dependencies are built.
