file(REMOVE_RECURSE
  "CMakeFiles/spa-analyze.dir/spa-analyze.cpp.o"
  "CMakeFiles/spa-analyze.dir/spa-analyze.cpp.o.d"
  "spa-analyze"
  "spa-analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spa-analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
