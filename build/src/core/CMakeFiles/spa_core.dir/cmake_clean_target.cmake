file(REMOVE_RECURSE
  "libspa_core.a"
)
