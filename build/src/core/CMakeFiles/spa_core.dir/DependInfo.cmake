
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Analyzer.cpp" "src/core/CMakeFiles/spa_core.dir/Analyzer.cpp.o" "gcc" "src/core/CMakeFiles/spa_core.dir/Analyzer.cpp.o.d"
  "/root/repo/src/core/BddDepStorage.cpp" "src/core/CMakeFiles/spa_core.dir/BddDepStorage.cpp.o" "gcc" "src/core/CMakeFiles/spa_core.dir/BddDepStorage.cpp.o.d"
  "/root/repo/src/core/Checker.cpp" "src/core/CMakeFiles/spa_core.dir/Checker.cpp.o" "gcc" "src/core/CMakeFiles/spa_core.dir/Checker.cpp.o.d"
  "/root/repo/src/core/DefUse.cpp" "src/core/CMakeFiles/spa_core.dir/DefUse.cpp.o" "gcc" "src/core/CMakeFiles/spa_core.dir/DefUse.cpp.o.d"
  "/root/repo/src/core/DenseAnalysis.cpp" "src/core/CMakeFiles/spa_core.dir/DenseAnalysis.cpp.o" "gcc" "src/core/CMakeFiles/spa_core.dir/DenseAnalysis.cpp.o.d"
  "/root/repo/src/core/DepBuilder.cpp" "src/core/CMakeFiles/spa_core.dir/DepBuilder.cpp.o" "gcc" "src/core/CMakeFiles/spa_core.dir/DepBuilder.cpp.o.d"
  "/root/repo/src/core/DepGraph.cpp" "src/core/CMakeFiles/spa_core.dir/DepGraph.cpp.o" "gcc" "src/core/CMakeFiles/spa_core.dir/DepGraph.cpp.o.d"
  "/root/repo/src/core/Export.cpp" "src/core/CMakeFiles/spa_core.dir/Export.cpp.o" "gcc" "src/core/CMakeFiles/spa_core.dir/Export.cpp.o.d"
  "/root/repo/src/core/PreAnalysis.cpp" "src/core/CMakeFiles/spa_core.dir/PreAnalysis.cpp.o" "gcc" "src/core/CMakeFiles/spa_core.dir/PreAnalysis.cpp.o.d"
  "/root/repo/src/core/Semantics.cpp" "src/core/CMakeFiles/spa_core.dir/Semantics.cpp.o" "gcc" "src/core/CMakeFiles/spa_core.dir/Semantics.cpp.o.d"
  "/root/repo/src/core/SparseAnalysis.cpp" "src/core/CMakeFiles/spa_core.dir/SparseAnalysis.cpp.o" "gcc" "src/core/CMakeFiles/spa_core.dir/SparseAnalysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/spa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/domains/CMakeFiles/spa_domains.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/spa_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/spa_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
