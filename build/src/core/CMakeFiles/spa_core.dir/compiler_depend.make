# Empty compiler generated dependencies file for spa_core.
# This may be replaced when dependencies are built.
