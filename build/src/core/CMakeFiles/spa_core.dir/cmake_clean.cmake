file(REMOVE_RECURSE
  "CMakeFiles/spa_core.dir/Analyzer.cpp.o"
  "CMakeFiles/spa_core.dir/Analyzer.cpp.o.d"
  "CMakeFiles/spa_core.dir/BddDepStorage.cpp.o"
  "CMakeFiles/spa_core.dir/BddDepStorage.cpp.o.d"
  "CMakeFiles/spa_core.dir/Checker.cpp.o"
  "CMakeFiles/spa_core.dir/Checker.cpp.o.d"
  "CMakeFiles/spa_core.dir/DefUse.cpp.o"
  "CMakeFiles/spa_core.dir/DefUse.cpp.o.d"
  "CMakeFiles/spa_core.dir/DenseAnalysis.cpp.o"
  "CMakeFiles/spa_core.dir/DenseAnalysis.cpp.o.d"
  "CMakeFiles/spa_core.dir/DepBuilder.cpp.o"
  "CMakeFiles/spa_core.dir/DepBuilder.cpp.o.d"
  "CMakeFiles/spa_core.dir/DepGraph.cpp.o"
  "CMakeFiles/spa_core.dir/DepGraph.cpp.o.d"
  "CMakeFiles/spa_core.dir/Export.cpp.o"
  "CMakeFiles/spa_core.dir/Export.cpp.o.d"
  "CMakeFiles/spa_core.dir/PreAnalysis.cpp.o"
  "CMakeFiles/spa_core.dir/PreAnalysis.cpp.o.d"
  "CMakeFiles/spa_core.dir/Semantics.cpp.o"
  "CMakeFiles/spa_core.dir/Semantics.cpp.o.d"
  "CMakeFiles/spa_core.dir/SparseAnalysis.cpp.o"
  "CMakeFiles/spa_core.dir/SparseAnalysis.cpp.o.d"
  "libspa_core.a"
  "libspa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
