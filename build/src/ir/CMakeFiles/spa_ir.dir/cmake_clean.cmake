file(REMOVE_RECURSE
  "CMakeFiles/spa_ir.dir/Builder.cpp.o"
  "CMakeFiles/spa_ir.dir/Builder.cpp.o.d"
  "CMakeFiles/spa_ir.dir/CallGraphInfo.cpp.o"
  "CMakeFiles/spa_ir.dir/CallGraphInfo.cpp.o.d"
  "CMakeFiles/spa_ir.dir/Dominators.cpp.o"
  "CMakeFiles/spa_ir.dir/Dominators.cpp.o.d"
  "CMakeFiles/spa_ir.dir/Program.cpp.o"
  "CMakeFiles/spa_ir.dir/Program.cpp.o.d"
  "libspa_ir.a"
  "libspa_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spa_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
