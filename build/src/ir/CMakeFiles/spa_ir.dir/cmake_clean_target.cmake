file(REMOVE_RECURSE
  "libspa_ir.a"
)
