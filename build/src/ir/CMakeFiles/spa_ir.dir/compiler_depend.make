# Empty compiler generated dependencies file for spa_ir.
# This may be replaced when dependencies are built.
