# Empty compiler generated dependencies file for spa_bdd.
# This may be replaced when dependencies are built.
