file(REMOVE_RECURSE
  "libspa_bdd.a"
)
