file(REMOVE_RECURSE
  "CMakeFiles/spa_bdd.dir/Bdd.cpp.o"
  "CMakeFiles/spa_bdd.dir/Bdd.cpp.o.d"
  "libspa_bdd.a"
  "libspa_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spa_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
