file(REMOVE_RECURSE
  "CMakeFiles/spa_workload.dir/Generator.cpp.o"
  "CMakeFiles/spa_workload.dir/Generator.cpp.o.d"
  "CMakeFiles/spa_workload.dir/Suite.cpp.o"
  "CMakeFiles/spa_workload.dir/Suite.cpp.o.d"
  "libspa_workload.a"
  "libspa_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spa_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
