file(REMOVE_RECURSE
  "CMakeFiles/spa_domains.dir/AbsState.cpp.o"
  "CMakeFiles/spa_domains.dir/AbsState.cpp.o.d"
  "CMakeFiles/spa_domains.dir/Interval.cpp.o"
  "CMakeFiles/spa_domains.dir/Interval.cpp.o.d"
  "CMakeFiles/spa_domains.dir/Value.cpp.o"
  "CMakeFiles/spa_domains.dir/Value.cpp.o.d"
  "libspa_domains.a"
  "libspa_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spa_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
