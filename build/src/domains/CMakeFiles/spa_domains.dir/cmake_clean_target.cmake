file(REMOVE_RECURSE
  "libspa_domains.a"
)
