# Empty dependencies file for spa_domains.
# This may be replaced when dependencies are built.
