file(REMOVE_RECURSE
  "CMakeFiles/spa_lang.dir/AST.cpp.o"
  "CMakeFiles/spa_lang.dir/AST.cpp.o.d"
  "CMakeFiles/spa_lang.dir/Lexer.cpp.o"
  "CMakeFiles/spa_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/spa_lang.dir/Parser.cpp.o"
  "CMakeFiles/spa_lang.dir/Parser.cpp.o.d"
  "libspa_lang.a"
  "libspa_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spa_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
