# Empty compiler generated dependencies file for spa_lang.
# This may be replaced when dependencies are built.
