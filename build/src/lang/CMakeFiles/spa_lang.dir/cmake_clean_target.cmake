file(REMOVE_RECURSE
  "libspa_lang.a"
)
