# Empty compiler generated dependencies file for spa_oct.
# This may be replaced when dependencies are built.
