file(REMOVE_RECURSE
  "libspa_oct.a"
)
