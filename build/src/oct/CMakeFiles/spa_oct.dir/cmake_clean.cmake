file(REMOVE_RECURSE
  "CMakeFiles/spa_oct.dir/OctAnalysis.cpp.o"
  "CMakeFiles/spa_oct.dir/OctAnalysis.cpp.o.d"
  "CMakeFiles/spa_oct.dir/Octagon.cpp.o"
  "CMakeFiles/spa_oct.dir/Octagon.cpp.o.d"
  "CMakeFiles/spa_oct.dir/Packing.cpp.o"
  "CMakeFiles/spa_oct.dir/Packing.cpp.o.d"
  "libspa_oct.a"
  "libspa_oct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spa_oct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
