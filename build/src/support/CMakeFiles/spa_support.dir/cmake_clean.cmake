file(REMOVE_RECURSE
  "CMakeFiles/spa_support.dir/Resource.cpp.o"
  "CMakeFiles/spa_support.dir/Resource.cpp.o.d"
  "libspa_support.a"
  "libspa_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spa_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
