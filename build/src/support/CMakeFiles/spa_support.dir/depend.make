# Empty dependencies file for spa_support.
# This may be replaced when dependencies are built.
