file(REMOVE_RECURSE
  "libspa_support.a"
)
