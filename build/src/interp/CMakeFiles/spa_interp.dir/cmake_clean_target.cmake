file(REMOVE_RECURSE
  "libspa_interp.a"
)
