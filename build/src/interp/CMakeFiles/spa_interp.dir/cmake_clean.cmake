file(REMOVE_RECURSE
  "CMakeFiles/spa_interp.dir/Interp.cpp.o"
  "CMakeFiles/spa_interp.dir/Interp.cpp.o.d"
  "libspa_interp.a"
  "libspa_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spa_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
