# Empty compiler generated dependencies file for spa_interp.
# This may be replaced when dependencies are built.
