file(REMOVE_RECURSE
  "CMakeFiles/ablation_ssa.dir/ablation_ssa.cpp.o"
  "CMakeFiles/ablation_ssa.dir/ablation_ssa.cpp.o.d"
  "ablation_ssa"
  "ablation_ssa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ssa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
