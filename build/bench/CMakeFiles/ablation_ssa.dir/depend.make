# Empty dependencies file for ablation_ssa.
# This may be replaced when dependencies are built.
