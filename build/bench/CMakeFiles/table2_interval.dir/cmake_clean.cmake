file(REMOVE_RECURSE
  "CMakeFiles/table2_interval.dir/table2_interval.cpp.o"
  "CMakeFiles/table2_interval.dir/table2_interval.cpp.o.d"
  "table2_interval"
  "table2_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
