# Empty compiler generated dependencies file for table2_interval.
# This may be replaced when dependencies are built.
