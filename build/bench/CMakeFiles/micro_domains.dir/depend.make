# Empty dependencies file for micro_domains.
# This may be replaced when dependencies are built.
