file(REMOVE_RECURSE
  "CMakeFiles/micro_domains.dir/micro_domains.cpp.o"
  "CMakeFiles/micro_domains.dir/micro_domains.cpp.o.d"
  "micro_domains"
  "micro_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
