file(REMOVE_RECURSE
  "CMakeFiles/ablation_bdd.dir/ablation_bdd.cpp.o"
  "CMakeFiles/ablation_bdd.dir/ablation_bdd.cpp.o.d"
  "ablation_bdd"
  "ablation_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
