# Empty dependencies file for ablation_bdd.
# This may be replaced when dependencies are built.
