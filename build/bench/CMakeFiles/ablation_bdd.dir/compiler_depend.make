# Empty compiler generated dependencies file for ablation_bdd.
# This may be replaced when dependencies are built.
