# Empty dependencies file for ablation_interproc.
# This may be replaced when dependencies are built.
