file(REMOVE_RECURSE
  "CMakeFiles/ablation_interproc.dir/ablation_interproc.cpp.o"
  "CMakeFiles/ablation_interproc.dir/ablation_interproc.cpp.o.d"
  "ablation_interproc"
  "ablation_interproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
