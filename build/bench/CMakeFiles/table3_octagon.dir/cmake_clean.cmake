file(REMOVE_RECURSE
  "CMakeFiles/table3_octagon.dir/table3_octagon.cpp.o"
  "CMakeFiles/table3_octagon.dir/table3_octagon.cpp.o.d"
  "table3_octagon"
  "table3_octagon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_octagon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
