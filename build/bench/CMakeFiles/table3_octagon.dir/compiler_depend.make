# Empty compiler generated dependencies file for table3_octagon.
# This may be replaced when dependencies are built.
