# Empty compiler generated dependencies file for ablation_bypass.
# This may be replaced when dependencies are built.
