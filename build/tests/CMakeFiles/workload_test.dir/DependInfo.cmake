
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload_test.cpp" "tests/CMakeFiles/workload_test.dir/workload_test.cpp.o" "gcc" "tests/CMakeFiles/workload_test.dir/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/spa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/spa_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/spa_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/domains/CMakeFiles/spa_domains.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/spa_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/spa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/spa_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/spa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
