# Empty dependencies file for octagon_test.
# This may be replaced when dependencies are built.
