file(REMOVE_RECURSE
  "CMakeFiles/octagon_test.dir/octagon_test.cpp.o"
  "CMakeFiles/octagon_test.dir/octagon_test.cpp.o.d"
  "octagon_test"
  "octagon_test.pdb"
  "octagon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octagon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
