file(REMOVE_RECURSE
  "CMakeFiles/octagon_property_test.dir/octagon_property_test.cpp.o"
  "CMakeFiles/octagon_property_test.dir/octagon_property_test.cpp.o.d"
  "octagon_property_test"
  "octagon_property_test.pdb"
  "octagon_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octagon_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
