# Empty compiler generated dependencies file for octagon_property_test.
# This may be replaced when dependencies are built.
