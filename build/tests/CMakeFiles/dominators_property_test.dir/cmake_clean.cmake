file(REMOVE_RECURSE
  "CMakeFiles/dominators_property_test.dir/dominators_property_test.cpp.o"
  "CMakeFiles/dominators_property_test.dir/dominators_property_test.cpp.o.d"
  "dominators_property_test"
  "dominators_property_test.pdb"
  "dominators_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dominators_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
