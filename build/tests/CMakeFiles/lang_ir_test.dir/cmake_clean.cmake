file(REMOVE_RECURSE
  "CMakeFiles/lang_ir_test.dir/lang_ir_test.cpp.o"
  "CMakeFiles/lang_ir_test.dir/lang_ir_test.cpp.o.d"
  "lang_ir_test"
  "lang_ir_test.pdb"
  "lang_ir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
