# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_test[1]_include.cmake")
include("/root/repo/build/tests/random_test[1]_include.cmake")
include("/root/repo/build/tests/interval_test[1]_include.cmake")
include("/root/repo/build/tests/domains_test[1]_include.cmake")
include("/root/repo/build/tests/bdd_test[1]_include.cmake")
include("/root/repo/build/tests/lang_ir_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/octagon_test[1]_include.cmake")
include("/root/repo/build/tests/checker_test[1]_include.cmake")
include("/root/repo/build/tests/regression_test[1]_include.cmake")
include("/root/repo/build/tests/octagon_property_test[1]_include.cmake")
include("/root/repo/build/tests/instances_test[1]_include.cmake")
include("/root/repo/build/tests/export_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/dominators_property_test[1]_include.cmake")
