# Empty compiler generated dependencies file for relational.
# This may be replaced when dependencies are built.
