file(REMOVE_RECURSE
  "CMakeFiles/relational.dir/relational.cpp.o"
  "CMakeFiles/relational.dir/relational.cpp.o.d"
  "relational"
  "relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
