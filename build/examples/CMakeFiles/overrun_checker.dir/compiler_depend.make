# Empty compiler generated dependencies file for overrun_checker.
# This may be replaced when dependencies are built.
