file(REMOVE_RECURSE
  "CMakeFiles/overrun_checker.dir/overrun_checker.cpp.o"
  "CMakeFiles/overrun_checker.dir/overrun_checker.cpp.o.d"
  "overrun_checker"
  "overrun_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overrun_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
