# Empty dependencies file for sparse_vs_dense.
# This may be replaced when dependencies are built.
