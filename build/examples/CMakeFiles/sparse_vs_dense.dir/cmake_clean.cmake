file(REMOVE_RECURSE
  "CMakeFiles/sparse_vs_dense.dir/sparse_vs_dense.cpp.o"
  "CMakeFiles/sparse_vs_dense.dir/sparse_vs_dense.cpp.o.d"
  "sparse_vs_dense"
  "sparse_vs_dense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_vs_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
