//===- Parser.cpp - Recursive-descent parser ---------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"

#include <sstream>

using namespace spa;

namespace {

/// Hand-written LL(4) parser (four tokens of lookahead disambiguate the
/// indirect-call statement `x = (*p)(...)` from a parenthesized deref
/// expression `x = (*p + e)`).  Errors set a flag and message;
/// productions short-circuit once a failure is recorded.
class Parser {
public:
  explicit Parser(std::string_view Source) : Lex(Source) {
    for (Token &T : Buf)
      T = Lex.next();
  }

  ParseResult run() {
    ParseResult Result;
    while (!Failed && Tok.Kind != TokenKind::EndOfFile) {
      if (Tok.Kind == TokenKind::KwGlobal)
        parseGlobal(Result.Program);
      else if (Tok.Kind == TokenKind::KwFun)
        parseFunction(Result.Program);
      else
        fail("expected 'global' or 'fun' at top level");
    }
    Result.Ok = !Failed;
    Result.Error = ErrorMessage;
    return Result;
  }

private:
  void advance() {
    for (size_t I = 0; I + 1 < LookAhead; ++I)
      Buf[I] = Buf[I + 1];
    Buf[LookAhead - 1] = Lex.next();
  }

  void fail(const std::string &Message) {
    if (Failed)
      return;
    Failed = true;
    std::ostringstream OS;
    OS << "line " << Tok.Line << ": " << Message << " (got "
       << tokenKindName(Tok.Kind) << ")";
    ErrorMessage = OS.str();
  }

  bool expect(TokenKind Kind) {
    if (Failed)
      return false;
    if (Tok.Kind != Kind) {
      fail(std::string("expected ") + tokenKindName(Kind));
      return false;
    }
    advance();
    return true;
  }

  std::string expectIdent() {
    if (Failed)
      return "";
    if (Tok.Kind != TokenKind::Identifier) {
      fail("expected identifier");
      return "";
    }
    std::string Name = Tok.Text;
    advance();
    return Name;
  }

  void parseGlobal(ProgramAST &Prog) {
    GlobalDecl G;
    G.Line = Tok.Line;
    advance(); // 'global'
    G.Name = expectIdent();
    if (Tok.Kind == TokenKind::Assign) {
      advance();
      bool Negative = false;
      if (Tok.Kind == TokenKind::Minus) {
        Negative = true;
        advance();
      }
      if (Tok.Kind != TokenKind::Number) {
        fail("expected numeric initializer");
        return;
      }
      G.Init = Negative ? -Tok.Value : Tok.Value;
      advance();
    }
    expect(TokenKind::Semi);
    if (!Failed)
      Prog.Globals.push_back(std::move(G));
  }

  void parseFunction(ProgramAST &Prog) {
    FunctionDecl F;
    F.Line = Tok.Line;
    advance(); // 'fun'
    F.Name = expectIdent();
    expect(TokenKind::LParen);
    if (Tok.Kind != TokenKind::RParen) {
      F.Params.push_back(expectIdent());
      while (!Failed && Tok.Kind == TokenKind::Comma) {
        advance();
        F.Params.push_back(expectIdent());
      }
    }
    expect(TokenKind::RParen);
    parseBlock(F.Body);
    if (!Failed)
      Prog.Functions.push_back(std::move(F));
  }

  void parseBlock(std::vector<std::unique_ptr<Stmt>> &Body) {
    expect(TokenKind::LBrace);
    while (!Failed && Tok.Kind != TokenKind::RBrace &&
           Tok.Kind != TokenKind::EndOfFile) {
      auto S = parseStmt();
      if (S)
        Body.push_back(std::move(S));
    }
    expect(TokenKind::RBrace);
  }

  std::unique_ptr<Stmt> parseStmt() {
    switch (Tok.Kind) {
    case TokenKind::KwIf:
      return parseIf();
    case TokenKind::KwWhile:
      return parseWhile();
    case TokenKind::KwReturn:
      return parseReturn();
    case TokenKind::KwSkip: {
      auto S = std::make_unique<Stmt>();
      S->Kind = StmtKind::Skip;
      S->Line = Tok.Line;
      advance();
      expect(TokenKind::Semi);
      return S;
    }
    case TokenKind::KwAssume: {
      auto S = std::make_unique<Stmt>();
      S->Kind = StmtKind::Assume;
      S->Line = Tok.Line;
      advance();
      expect(TokenKind::LParen);
      S->Cnd = parseCond();
      expect(TokenKind::RParen);
      expect(TokenKind::Semi);
      return S;
    }
    case TokenKind::Star:
      return parseStore();
    case TokenKind::LParen:
      // `(*p)(args);` indirect call without return value.
      return parseCallStmt("");
    case TokenKind::Identifier:
      if (Ahead.Kind == TokenKind::LParen) {
        // `f(args);` direct call without return value.
        return parseCallStmt("");
      }
      return parseAssignLike();
    default:
      fail("expected statement");
      return nullptr;
    }
  }

  std::unique_ptr<Stmt> parseIf() {
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::If;
    S->Line = Tok.Line;
    advance(); // 'if'
    expect(TokenKind::LParen);
    S->Cnd = parseCond();
    expect(TokenKind::RParen);
    parseBlock(S->Then);
    if (Tok.Kind == TokenKind::KwElse) {
      advance();
      parseBlock(S->Else);
    }
    return S;
  }

  std::unique_ptr<Stmt> parseWhile() {
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::While;
    S->Line = Tok.Line;
    advance(); // 'while'
    expect(TokenKind::LParen);
    S->Cnd = parseCond();
    expect(TokenKind::RParen);
    parseBlock(S->Then);
    return S;
  }

  std::unique_ptr<Stmt> parseReturn() {
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::Return;
    S->Line = Tok.Line;
    advance(); // 'return'
    if (Tok.Kind != TokenKind::Semi)
      S->E = parseExpr();
    expect(TokenKind::Semi);
    return S;
  }

  std::unique_ptr<Stmt> parseStore() {
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::Store;
    S->Line = Tok.Line;
    advance(); // '*'
    S->Target = expectIdent();
    expect(TokenKind::Assign);
    S->E = parseExpr();
    expect(TokenKind::Semi);
    return S;
  }

  /// Parses `x = <assign|alloc|call>;` after seeing `ident` not followed by
  /// '('.
  std::unique_ptr<Stmt> parseAssignLike() {
    unsigned Line = Tok.Line;
    std::string Target = expectIdent();
    expect(TokenKind::Assign);
    if (Failed)
      return nullptr;

    if (Tok.Kind == TokenKind::KwAlloc) {
      auto S = std::make_unique<Stmt>();
      S->Kind = StmtKind::Alloc;
      S->Line = Line;
      S->Target = std::move(Target);
      advance();
      expect(TokenKind::LParen);
      S->E = parseExpr();
      expect(TokenKind::RParen);
      expect(TokenKind::Semi);
      return S;
    }

    bool DirectCall =
        Tok.Kind == TokenKind::Identifier && Ahead.Kind == TokenKind::LParen;
    // `(*p)(...)` is an indirect call; `(*p + e)` and `(*p)` are
    // expressions.  Four tokens decide: LParen Star Ident RParen + LParen.
    bool IndirectCall =
        Tok.Kind == TokenKind::LParen && Ahead.Kind == TokenKind::Star &&
        Buf[2].Kind == TokenKind::Identifier &&
        Buf[3].Kind == TokenKind::RParen;
    if (IndirectCall) {
      // Peek one further by consuming the closed group.
      advance(); // (
      advance(); // *
      std::string Callee = expectIdent();
      advance(); // )
      if (Tok.Kind == TokenKind::LParen)
        return parseCallArgs(std::move(Target), std::move(Callee),
                             /*Indirect=*/true, Line);
      // Parenthesized deref expression: resume expression parsing with
      // the already-consumed (*callee) as the leading factor.
      auto S = std::make_unique<Stmt>();
      S->Kind = StmtKind::Assign;
      S->Line = Line;
      S->Target = std::move(Target);
      S->E = continueExpr(Expr::makeDeref(std::move(Callee), Line));
      expect(TokenKind::Semi);
      return S;
    }
    if (DirectCall)
      return parseCallStmt(Target, Line);

    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::Assign;
    S->Line = Line;
    S->Target = std::move(Target);
    S->E = parseExpr();
    expect(TokenKind::Semi);
    return S;
  }

  /// Parses a call statement; \p Target is the return variable ("" for
  /// none).  The cursor sits at the callee (`ident` or `( * ident )`).
  std::unique_ptr<Stmt> parseCallStmt(std::string Target, unsigned Line = 0) {
    if (!Line)
      Line = Tok.Line;
    bool Indirect = false;
    std::string Callee;
    if (Tok.Kind == TokenKind::LParen) {
      advance();
      expect(TokenKind::Star);
      Indirect = true;
      Callee = expectIdent();
      expect(TokenKind::RParen);
    } else {
      Callee = expectIdent();
    }
    return parseCallArgs(std::move(Target), std::move(Callee), Indirect,
                         Line);
  }

  /// Parses `(args);` with the callee already consumed.
  std::unique_ptr<Stmt> parseCallArgs(std::string Target, std::string Callee,
                                      bool Indirect, unsigned Line) {
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::Call;
    S->Line = Line;
    S->Target = std::move(Target);
    S->Callee = std::move(Callee);
    S->Indirect = Indirect;
    expect(TokenKind::LParen);
    if (!Failed && Tok.Kind != TokenKind::RParen) {
      S->Args.push_back(parseExpr());
      while (!Failed && Tok.Kind == TokenKind::Comma) {
        advance();
        S->Args.push_back(parseExpr());
      }
    }
    expect(TokenKind::RParen);
    expect(TokenKind::Semi);
    return S;
  }

  std::unique_ptr<Cond> parseCond() {
    auto C = std::make_unique<Cond>();
    C->Lhs = parseExpr();
    switch (Tok.Kind) {
    case TokenKind::Lt:
      C->Op = RelOp::Lt;
      break;
    case TokenKind::Le:
      C->Op = RelOp::Le;
      break;
    case TokenKind::Gt:
      C->Op = RelOp::Gt;
      break;
    case TokenKind::Ge:
      C->Op = RelOp::Ge;
      break;
    case TokenKind::EqEq:
      C->Op = RelOp::Eq;
      break;
    case TokenKind::Ne:
      C->Op = RelOp::Ne;
      break;
    default:
      // Bare truth test: `e` means `e != 0`.
      C->Op = RelOp::Ne;
      C->Rhs = Expr::makeNum(0, Tok.Line);
      return C;
    }
    advance();
    C->Rhs = parseExpr();
    return C;
  }

  std::unique_ptr<Expr> parseExpr() { return continueExpr(parseTerm()); }

  std::unique_ptr<Expr> parseTerm() { return continueTerm(parseFactor()); }

  /// Parses the rest of an additive expression whose first term is
  /// \p First (already consumed).
  std::unique_ptr<Expr> continueExpr(std::unique_ptr<Expr> First) {
    auto L = continueTerm(std::move(First));
    while (!Failed &&
           (Tok.Kind == TokenKind::Plus || Tok.Kind == TokenKind::Minus)) {
      BinOp Op = Tok.Kind == TokenKind::Plus ? BinOp::Add : BinOp::Sub;
      unsigned Line = Tok.Line;
      advance();
      L = Expr::makeBinary(Op, std::move(L), parseTerm(), Line);
    }
    return L;
  }

  /// Parses the rest of a multiplicative term whose first factor is
  /// \p First (already consumed).
  std::unique_ptr<Expr> continueTerm(std::unique_ptr<Expr> First) {
    auto L = std::move(First);
    while (!Failed &&
           (Tok.Kind == TokenKind::Star || Tok.Kind == TokenKind::Slash ||
            Tok.Kind == TokenKind::Percent)) {
      BinOp Op = Tok.Kind == TokenKind::Star
                     ? BinOp::Mul
                     : (Tok.Kind == TokenKind::Slash ? BinOp::Div
                                                     : BinOp::Mod);
      unsigned Line = Tok.Line;
      advance();
      L = Expr::makeBinary(Op, std::move(L), parseFactor(), Line);
    }
    return L;
  }

  std::unique_ptr<Expr> parseFactor() {
    if (Failed)
      return Expr::makeNum(0, Tok.Line);
    unsigned Line = Tok.Line;
    switch (Tok.Kind) {
    case TokenKind::Number: {
      int64_t Value = Tok.Value;
      advance();
      return Expr::makeNum(Value, Line);
    }
    case TokenKind::Identifier: {
      std::string Name = Tok.Text;
      advance();
      return Expr::makeVar(std::move(Name), Line);
    }
    case TokenKind::Amp: {
      advance();
      return Expr::makeAddrOf(expectIdent(), Line);
    }
    case TokenKind::Star: {
      advance();
      return Expr::makeDeref(expectIdent(), Line);
    }
    case TokenKind::KwInput: {
      advance();
      expect(TokenKind::LParen);
      expect(TokenKind::RParen);
      return Expr::makeInput(Line);
    }
    case TokenKind::Minus: {
      advance();
      // Fold negative literals so `-7` round-trips as a constant.
      if (Tok.Kind == TokenKind::Number) {
        int64_t Value = Tok.Value;
        advance();
        return Expr::makeNum(-Value, Line);
      }
      return Expr::makeBinary(BinOp::Sub, Expr::makeNum(0, Line),
                              parseFactor(), Line);
    }
    case TokenKind::LParen: {
      advance();
      auto E = parseExpr();
      expect(TokenKind::RParen);
      return E;
    }
    default:
      fail("expected expression");
      return Expr::makeNum(0, Line);
    }
  }

  static constexpr size_t LookAhead = 4;

  Lexer Lex;
  Token Buf[LookAhead];
  Token &Tok = Buf[0];
  Token &Ahead = Buf[1];
  bool Failed = false;
  std::string ErrorMessage;
};

} // namespace

ParseResult spa::parseProgram(std::string_view Source) {
  return Parser(Source).run();
}
