//===- AST.cpp - AST factories and printer ----------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/AST.h"

#include <cassert>
#include <sstream>

using namespace spa;

RelOp spa::negateRelOp(RelOp Op) {
  switch (Op) {
  case RelOp::Lt:
    return RelOp::Ge;
  case RelOp::Le:
    return RelOp::Gt;
  case RelOp::Gt:
    return RelOp::Le;
  case RelOp::Ge:
    return RelOp::Lt;
  case RelOp::Eq:
    return RelOp::Ne;
  case RelOp::Ne:
    return RelOp::Eq;
  }
  assert(false && "unknown relop");
  return RelOp::Ne;
}

RelOp spa::swapRelOp(RelOp Op) {
  switch (Op) {
  case RelOp::Lt:
    return RelOp::Gt;
  case RelOp::Le:
    return RelOp::Ge;
  case RelOp::Gt:
    return RelOp::Lt;
  case RelOp::Ge:
    return RelOp::Le;
  case RelOp::Eq:
    return RelOp::Eq;
  case RelOp::Ne:
    return RelOp::Ne;
  }
  assert(false && "unknown relop");
  return RelOp::Ne;
}

const char *spa::relOpSpelling(RelOp Op) {
  switch (Op) {
  case RelOp::Lt:
    return "<";
  case RelOp::Le:
    return "<=";
  case RelOp::Gt:
    return ">";
  case RelOp::Ge:
    return ">=";
  case RelOp::Eq:
    return "==";
  case RelOp::Ne:
    return "!=";
  }
  return "?";
}

const char *spa::binOpSpelling(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::Div:
    return "/";
  case BinOp::Mod:
    return "%";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::makeNum(int64_t N, unsigned Line) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Num;
  E->Num = N;
  E->Line = Line;
  return E;
}

std::unique_ptr<Expr> Expr::makeVar(std::string Name, unsigned Line) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Var;
  E->Name = std::move(Name);
  E->Line = Line;
  return E;
}

std::unique_ptr<Expr> Expr::makeAddrOf(std::string Name, unsigned Line) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::AddrOf;
  E->Name = std::move(Name);
  E->Line = Line;
  return E;
}

std::unique_ptr<Expr> Expr::makeDeref(std::string Name, unsigned Line) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Deref;
  E->Name = std::move(Name);
  E->Line = Line;
  return E;
}

std::unique_ptr<Expr> Expr::makeBinary(BinOp Op, std::unique_ptr<Expr> L,
                                       std::unique_ptr<Expr> R,
                                       unsigned Line) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Binary;
  E->Op = Op;
  E->Lhs = std::move(L);
  E->Rhs = std::move(R);
  E->Line = Line;
  return E;
}

std::unique_ptr<Expr> Expr::makeInput(unsigned Line) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Input;
  E->Line = Line;
  return E;
}

std::unique_ptr<Expr> Expr::clone() const {
  auto E = std::make_unique<Expr>();
  E->Kind = Kind;
  E->Line = Line;
  E->Num = Num;
  E->Name = Name;
  E->Op = Op;
  if (Lhs)
    E->Lhs = Lhs->clone();
  if (Rhs)
    E->Rhs = Rhs->clone();
  return E;
}

std::unique_ptr<Cond> Cond::clone() const {
  auto C = std::make_unique<Cond>();
  C->Op = Op;
  C->Lhs = Lhs->clone();
  C->Rhs = Rhs->clone();
  return C;
}

std::unique_ptr<Cond> Cond::negated() const {
  auto C = clone();
  C->Op = negateRelOp(Op);
  return C;
}

namespace {

/// AST-to-source printer.  Output is re-parseable, which the round-trip
/// tests rely on.
class Printer {
public:
  explicit Printer(std::ostringstream &OS) : OS(OS) {}

  void printExpr(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::Num:
      OS << E.Num;
      return;
    case ExprKind::Var:
      OS << E.Name;
      return;
    case ExprKind::AddrOf:
      OS << "&" << E.Name;
      return;
    case ExprKind::Deref:
      OS << "*" << E.Name;
      return;
    case ExprKind::Input:
      OS << "input()";
      return;
    case ExprKind::Binary:
      OS << "(";
      printExpr(*E.Lhs);
      OS << " " << binOpSpelling(E.Op) << " ";
      printExpr(*E.Rhs);
      OS << ")";
      return;
    }
  }

  void printCond(const Cond &C) {
    printExpr(*C.Lhs);
    OS << " " << relOpSpelling(C.Op) << " ";
    printExpr(*C.Rhs);
  }

  void printStmt(const Stmt &S, int Depth) {
    indent(Depth);
    switch (S.Kind) {
    case StmtKind::Assign:
      OS << S.Target << " = ";
      printExpr(*S.E);
      OS << ";\n";
      return;
    case StmtKind::Store:
      OS << "*" << S.Target << " = ";
      printExpr(*S.E);
      OS << ";\n";
      return;
    case StmtKind::Alloc:
      OS << S.Target << " = alloc(";
      printExpr(*S.E);
      OS << ");\n";
      return;
    case StmtKind::If:
      OS << "if (";
      printCond(*S.Cnd);
      OS << ") {\n";
      printBody(S.Then, Depth + 1);
      indent(Depth);
      OS << "}";
      if (!S.Else.empty()) {
        OS << " else {\n";
        printBody(S.Else, Depth + 1);
        indent(Depth);
        OS << "}";
      }
      OS << "\n";
      return;
    case StmtKind::While:
      OS << "while (";
      printCond(*S.Cnd);
      OS << ") {\n";
      printBody(S.Then, Depth + 1);
      indent(Depth);
      OS << "}\n";
      return;
    case StmtKind::Return:
      OS << "return";
      if (S.E) {
        OS << " ";
        printExpr(*S.E);
      }
      OS << ";\n";
      return;
    case StmtKind::Call:
      if (!S.Target.empty())
        OS << S.Target << " = ";
      if (S.Indirect)
        OS << "(*" << S.Callee << ")";
      else
        OS << S.Callee;
      OS << "(";
      for (size_t I = 0; I < S.Args.size(); ++I) {
        if (I)
          OS << ", ";
        printExpr(*S.Args[I]);
      }
      OS << ");\n";
      return;
    case StmtKind::Skip:
      OS << "skip;\n";
      return;
    case StmtKind::Assume:
      OS << "assume(";
      printCond(*S.Cnd);
      OS << ");\n";
      return;
    }
  }

  void printBody(const std::vector<std::unique_ptr<Stmt>> &Body, int Depth) {
    for (const auto &S : Body)
      printStmt(*S, Depth);
  }

  void indent(int Depth) {
    for (int I = 0; I < Depth; ++I)
      OS << "  ";
  }

private:
  std::ostringstream &OS;
};

} // namespace

std::string spa::printExpr(const Expr &E) {
  std::ostringstream OS;
  Printer(OS).printExpr(E);
  return OS.str();
}

std::string spa::printCond(const Cond &C) {
  std::ostringstream OS;
  Printer(OS).printCond(C);
  return OS.str();
}

std::string spa::printProgram(const ProgramAST &Prog) {
  std::ostringstream OS;
  Printer P(OS);
  for (const GlobalDecl &G : Prog.Globals) {
    OS << "global " << G.Name;
    if (G.Init)
      OS << " = " << *G.Init;
    OS << ";\n";
  }
  if (!Prog.Globals.empty())
    OS << "\n";
  for (const FunctionDecl &F : Prog.Functions) {
    OS << "fun " << F.Name << "(";
    for (size_t I = 0; I < F.Params.size(); ++I) {
      if (I)
        OS << ", ";
      OS << F.Params[I];
    }
    OS << ") {\n";
    P.printBody(F.Body, 1);
    OS << "}\n\n";
  }
  return OS.str();
}
