//===- Lexer.h - Lexer for the C-like language ------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef SPA_LANG_LEXER_H
#define SPA_LANG_LEXER_H

#include "lang/Token.h"

#include <string_view>

namespace spa {

/// Single-pass lexer.  Comments run from "//" to end of line.
class Lexer {
public:
  explicit Lexer(std::string_view Source) : Source(Source) {}

  /// Lexes and returns the next token.  At end of input returns EndOfFile
  /// forever; malformed input yields an Error token carrying the offending
  /// text.
  Token next();

private:
  void skipTrivia();
  char peek() const { return Pos < Source.size() ? Source[Pos] : '\0'; }
  char get() { return Pos < Source.size() ? Source[Pos++] : '\0'; }

  std::string_view Source;
  size_t Pos = 0;
  unsigned Line = 1;
};

} // namespace spa

#endif // SPA_LANG_LEXER_H
