//===- AST.h - Abstract syntax for the C-like language ----------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the analyzed language.  The expression and statement forms are
/// exactly the paper's core (Sections 3 and 4) plus the interprocedural
/// features its Section 5 requires:
///
///   e    ::= n | x | &x | *x | e+e | e-e | e*e | e/e | e%e
///          | input()
///   cmd  ::= x := e | *x := e | x := alloc(e) | assume(x relop e)
///          | x := f(e...) | x := (*p)(e...) | return e | skip
///
/// plus structured `if`/`while` which the IR builder lowers to assumes.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_LANG_AST_H
#define SPA_LANG_AST_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace spa {

enum class ExprKind { Num, Var, AddrOf, Deref, Binary, Input };
enum class BinOp { Add, Sub, Mul, Div, Mod };
enum class RelOp { Lt, Le, Gt, Ge, Eq, Ne };

/// Returns the relational operator testing the negation of \p Op.
RelOp negateRelOp(RelOp Op);
/// Returns \p Op with its operands swapped (e.g. Lt -> Gt).
RelOp swapRelOp(RelOp Op);
const char *relOpSpelling(RelOp Op);
const char *binOpSpelling(BinOp Op);

/// Expression node.  A single struct with a kind tag keeps the AST compact;
/// consumers switch on \c Kind.
struct Expr {
  ExprKind Kind;
  unsigned Line = 0;
  int64_t Num = 0;        ///< ExprKind::Num.
  std::string Name;       ///< Var / AddrOf / Deref.
  BinOp Op = BinOp::Add;  ///< Binary.
  std::unique_ptr<Expr> Lhs, Rhs;

  static std::unique_ptr<Expr> makeNum(int64_t N, unsigned Line);
  static std::unique_ptr<Expr> makeVar(std::string Name, unsigned Line);
  static std::unique_ptr<Expr> makeAddrOf(std::string Name, unsigned Line);
  static std::unique_ptr<Expr> makeDeref(std::string Name, unsigned Line);
  static std::unique_ptr<Expr> makeBinary(BinOp Op, std::unique_ptr<Expr> L,
                                          std::unique_ptr<Expr> R,
                                          unsigned Line);
  static std::unique_ptr<Expr> makeInput(unsigned Line);

  /// Deep copy.
  std::unique_ptr<Expr> clone() const;
};

/// A relational condition `Lhs relop Rhs`.  Bare truth tests are desugared
/// by the parser to `e != 0`.
struct Cond {
  RelOp Op = RelOp::Ne;
  std::unique_ptr<Expr> Lhs, Rhs;

  std::unique_ptr<Cond> clone() const;
  /// Condition testing the opposite outcome.
  std::unique_ptr<Cond> negated() const;
};

enum class StmtKind {
  Assign,
  Store,
  Alloc,
  If,
  While,
  Return,
  Call,
  Skip,
  Assume,
};

/// Statement node.  Field use depends on \c Kind:
///  - Assign:  Target := E
///  - Store:   *Target := E
///  - Alloc:   Target := alloc(E)
///  - If:      Cnd, Then, Else
///  - While:   Cnd, Then (loop body)
///  - Return:  E (optional)
///  - Call:    Target (optional) := Callee(Args), Indirect means `(*Callee)`
///  - Assume:  Cnd
struct Stmt {
  StmtKind Kind;
  unsigned Line = 0;
  std::string Target;
  std::unique_ptr<Expr> E;
  std::unique_ptr<Cond> Cnd;
  std::vector<std::unique_ptr<Stmt>> Then;
  std::vector<std::unique_ptr<Stmt>> Else;
  std::string Callee;
  bool Indirect = false;
  std::vector<std::unique_ptr<Expr>> Args;
};

/// A global variable declaration with an optional constant initializer.
struct GlobalDecl {
  std::string Name;
  std::optional<int64_t> Init;
  unsigned Line = 0;
};

/// A procedure definition.
struct FunctionDecl {
  std::string Name;
  std::vector<std::string> Params;
  std::vector<std::unique_ptr<Stmt>> Body;
  unsigned Line = 0;
};

/// A whole translation unit.  Execution starts at the function named "main".
struct ProgramAST {
  std::vector<GlobalDecl> Globals;
  std::vector<FunctionDecl> Functions;
};

/// Renders \p Prog back to parseable surface syntax.
std::string printProgram(const ProgramAST &Prog);
std::string printExpr(const Expr &E);
std::string printCond(const Cond &C);

} // namespace spa

#endif // SPA_LANG_AST_H
