//===- Lexer.cpp - Lexer for the C-like language ----------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace spa;

const char *spa::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::Number:
    return "number";
  case TokenKind::KwFun:
    return "'fun'";
  case TokenKind::KwGlobal:
    return "'global'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwAlloc:
    return "'alloc'";
  case TokenKind::KwInput:
    return "'input'";
  case TokenKind::KwSkip:
    return "'skip'";
  case TokenKind::KwAssume:
    return "'assume'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::Lt:
    return "'<'";
  case TokenKind::Le:
    return "'<='";
  case TokenKind::Gt:
    return "'>'";
  case TokenKind::Ge:
    return "'>='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::Ne:
    return "'!='";
  case TokenKind::Error:
    return "invalid token";
  }
  return "unknown";
}

static TokenKind keywordKind(const std::string &Text) {
  static const std::unordered_map<std::string, TokenKind> Keywords = {
      {"fun", TokenKind::KwFun},       {"global", TokenKind::KwGlobal},
      {"if", TokenKind::KwIf},         {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},   {"return", TokenKind::KwReturn},
      {"alloc", TokenKind::KwAlloc},   {"input", TokenKind::KwInput},
      {"skip", TokenKind::KwSkip},     {"assume", TokenKind::KwAssume},
  };
  auto It = Keywords.find(Text);
  return It == Keywords.end() ? TokenKind::Identifier : It->second;
}

void Lexer::skipTrivia() {
  for (;;) {
    char C = peek();
    if (C == '\n') {
      ++Line;
      ++Pos;
      continue;
    }
    if (C == ' ' || C == '\t' || C == '\r') {
      ++Pos;
      continue;
    }
    if (C == '/' && Pos + 1 < Source.size() && Source[Pos + 1] == '/') {
      while (peek() != '\n' && peek() != '\0')
        ++Pos;
      continue;
    }
    return;
  }
}

Token Lexer::next() {
  skipTrivia();
  Token Tok;
  Tok.Line = Line;

  char C = peek();
  if (C == '\0') {
    Tok.Kind = TokenKind::EndOfFile;
    return Tok;
  }

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Text;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      Text.push_back(get());
    Tok.Kind = keywordKind(Text);
    if (Tok.Kind == TokenKind::Identifier)
      Tok.Text = std::move(Text);
    return Tok;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    int64_t Value = 0;
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Value = Value * 10 + (get() - '0');
    Tok.Kind = TokenKind::Number;
    Tok.Value = Value;
    return Tok;
  }

  get();
  switch (C) {
  case '(':
    Tok.Kind = TokenKind::LParen;
    return Tok;
  case ')':
    Tok.Kind = TokenKind::RParen;
    return Tok;
  case '{':
    Tok.Kind = TokenKind::LBrace;
    return Tok;
  case '}':
    Tok.Kind = TokenKind::RBrace;
    return Tok;
  case ',':
    Tok.Kind = TokenKind::Comma;
    return Tok;
  case ';':
    Tok.Kind = TokenKind::Semi;
    return Tok;
  case '+':
    Tok.Kind = TokenKind::Plus;
    return Tok;
  case '-':
    Tok.Kind = TokenKind::Minus;
    return Tok;
  case '*':
    Tok.Kind = TokenKind::Star;
    return Tok;
  case '/':
    Tok.Kind = TokenKind::Slash;
    return Tok;
  case '%':
    Tok.Kind = TokenKind::Percent;
    return Tok;
  case '&':
    Tok.Kind = TokenKind::Amp;
    return Tok;
  case '=':
    if (peek() == '=') {
      get();
      Tok.Kind = TokenKind::EqEq;
    } else {
      Tok.Kind = TokenKind::Assign;
    }
    return Tok;
  case '<':
    if (peek() == '=') {
      get();
      Tok.Kind = TokenKind::Le;
    } else {
      Tok.Kind = TokenKind::Lt;
    }
    return Tok;
  case '>':
    if (peek() == '=') {
      get();
      Tok.Kind = TokenKind::Ge;
    } else {
      Tok.Kind = TokenKind::Gt;
    }
    return Tok;
  case '!':
    if (peek() == '=') {
      get();
      Tok.Kind = TokenKind::Ne;
      return Tok;
    }
    break;
  default:
    break;
  }
  Tok.Kind = TokenKind::Error;
  Tok.Text = std::string(1, C);
  return Tok;
}
