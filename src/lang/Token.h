//===- Token.h - Lexical tokens for the C-like language --------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds and the Token record produced by the Lexer.  The language is
/// the C-like core the paper analyzes: assignments, loads/stores through
/// pointers, address-of, allocation sites, structured control flow, and
/// (possibly indirect) procedure calls.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_LANG_TOKEN_H
#define SPA_LANG_TOKEN_H

#include <cstdint>
#include <string>

namespace spa {

enum class TokenKind {
  EndOfFile,
  Identifier,
  Number,
  // Keywords.
  KwFun,
  KwGlobal,
  KwIf,
  KwElse,
  KwWhile,
  KwReturn,
  KwAlloc,
  KwInput,
  KwSkip,
  KwAssume,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  Comma,
  Semi,
  Assign, // =
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  Ne,
  Error,
};

/// A lexed token with its source line (for diagnostics).
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  std::string Text;  ///< Identifier spelling; empty otherwise.
  int64_t Value = 0; ///< Numeric value for Number tokens.
  unsigned Line = 0;
};

/// Returns a human-readable name for \p Kind (used in parse errors).
const char *tokenKindName(TokenKind Kind);

} // namespace spa

#endif // SPA_LANG_TOKEN_H
