//===- Parser.h - Recursive-descent parser -----------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef SPA_LANG_PARSER_H
#define SPA_LANG_PARSER_H

#include "lang/AST.h"

#include <string>
#include <string_view>

namespace spa {

/// Outcome of parsing a translation unit.  On failure \c Ok is false and
/// \c Error holds a one-line diagnostic with the source line number.
struct ParseResult {
  bool Ok = false;
  ProgramAST Program;
  std::string Error;
};

/// Parses \p Source into an AST.  Never throws; all failures are reported
/// through the returned ParseResult.
ParseResult parseProgram(std::string_view Source);

} // namespace spa

#endif // SPA_LANG_PARSER_H
