//===- Bdd.h - Reduced ordered binary decision diagrams ------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact ROBDD package (Bryant 1986) in the style of BuDDy, which the
/// paper uses to store the data-dependency relation: hash-consed nodes,
/// an ITE operation with a computed table, restriction, existential
/// quantification, satisfying-assignment enumeration, and model counting.
/// Variable order is the fixed index order (the paper reports that "no
/// particular dynamic variable ordering was necessary").
///
//===----------------------------------------------------------------------===//

#ifndef SPA_BDD_BDD_H
#define SPA_BDD_BDD_H

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace spa {

/// A BDD function handle: an index into its manager's node table.
using BddRef = uint32_t;

/// Manager owning the node table and operation caches.  Functions from
/// different managers must not be mixed.
class BddManager {
public:
  /// Creates a manager for \p NumVars boolean variables (indices 0 ..
  /// NumVars-1, tested in increasing order from the root).
  explicit BddManager(uint32_t NumVars);

  BddRef falseBdd() const { return 0; }
  BddRef trueBdd() const { return 1; }

  /// The function of the single positive literal \p Var.
  BddRef var(uint32_t Var);
  /// The function of the single negative literal.
  BddRef nvar(uint32_t Var);

  /// If-then-else: the universal connective all others derive from.
  BddRef ite(BddRef F, BddRef G, BddRef H);

  BddRef andOp(BddRef F, BddRef G) { return ite(F, G, falseBdd()); }
  BddRef orOp(BddRef F, BddRef G) { return ite(F, trueBdd(), G); }
  BddRef notOp(BddRef F) { return ite(F, falseBdd(), trueBdd()); }
  BddRef xorOp(BddRef F, BddRef G) { return ite(F, notOp(G), G); }

  /// Cofactor of \p F with variable \p Var fixed to \p Value.
  BddRef restrict(BddRef F, uint32_t Var, bool Value);

  /// ∃Var. F
  BddRef exists(BddRef F, uint32_t Var) {
    return orOp(restrict(F, Var, false), restrict(F, Var, true));
  }

  /// Evaluates \p F under a full assignment.
  bool eval(BddRef F, const std::vector<bool> &Assignment) const;

  /// Number of satisfying assignments over all NumVars variables.
  double satCount(BddRef F);

  /// Enumerates all satisfying assignments of \p F, expanding don't-care
  /// variables in [\p FirstVar, \p LastVar).  \p F must not depend on
  /// variables outside that range.  The callback receives the assignment
  /// as a bit word (variable FirstVar+i at bit i, so at most 64 bits).
  void forEachModel(BddRef F, uint32_t FirstVar, uint32_t LastVar,
                    const std::function<void(uint64_t)> &Fn);

  /// Number of nodes ever created (reduced, shared; includes nodes no
  /// longer reachable from any root — the package does not collect
  /// garbage).
  size_t nodeCount() const { return Nodes.size(); }

  /// Number of nodes reachable from \p F: the size of the function's
  /// live representation (what a collecting package would retain).
  size_t reachableCount(BddRef F) const;
  /// Bytes held by the node table and caches.
  uint64_t memoryBytes() const;
  /// Bytes of the function representation itself (node table + unique
  /// table), excluding the transient operation caches.
  uint64_t representationBytes() const;
  /// Drops the operation caches (safe at any time; they are rebuilt on
  /// demand).
  void clearCaches() {
    IteCache.clear();
    CountCache.clear();
  }

  uint32_t numVars() const { return NumVars; }

private:
  struct Node {
    uint32_t Var;
    BddRef Low, High;
  };

  BddRef mkNode(uint32_t Var, BddRef Low, BddRef High);
  uint32_t varOf(BddRef F) const { return Nodes[F].Var; }

  struct IteKey {
    BddRef F, G, H;
    friend bool operator==(const IteKey &A, const IteKey &B) {
      return A.F == B.F && A.G == B.G && A.H == B.H;
    }
  };
  struct IteKeyHash {
    size_t operator()(const IteKey &K) const {
      uint64_t X = (static_cast<uint64_t>(K.F) << 32) ^
                   (static_cast<uint64_t>(K.G) << 16) ^ K.H;
      X ^= X >> 33;
      X *= 0xff51afd7ed558ccdULL;
      X ^= X >> 33;
      return static_cast<size_t>(X);
    }
  };

  uint32_t NumVars;
  std::vector<Node> Nodes; ///< [0] = false, [1] = true.
  std::unordered_map<uint64_t, BddRef> Unique;
  std::unordered_map<IteKey, BddRef, IteKeyHash> IteCache;
  std::unordered_map<BddRef, double> CountCache;
};

} // namespace spa

#endif // SPA_BDD_BDD_H
