//===- Bdd.cpp - Reduced ordered binary decision diagrams ----------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "bdd/Bdd.h"

#include "obs/Metrics.h"

#include <cassert>
#include <cmath>

using namespace spa;

BddManager::BddManager(uint32_t NumVars) : NumVars(NumVars) {
  assert(NumVars > 0 && NumVars < 256 && "variable count out of range");
  // Terminals carry a sentinel variable index past every real variable.
  Nodes.push_back(Node{NumVars, 0, 0}); // false
  Nodes.push_back(Node{NumVars, 1, 1}); // true
}

BddRef BddManager::mkNode(uint32_t Var, BddRef Low, BddRef High) {
  if (Low == High)
    return Low; // Redundant test elimination.
  assert(Low < (1u << 28) && High < (1u << 28) && "node table overflow");
  uint64_t Key = (static_cast<uint64_t>(Var) << 56) |
                 (static_cast<uint64_t>(Low) << 28) | High;
  auto [It, Inserted] = Unique.try_emplace(Key, 0);
  if (!Inserted)
    return It->second;
  BddRef R = static_cast<BddRef>(Nodes.size());
  Nodes.push_back(Node{Var, Low, High});
  It->second = R;
  return R;
}

BddRef BddManager::var(uint32_t Var) {
  assert(Var < NumVars && "variable out of range");
  return mkNode(Var, falseBdd(), trueBdd());
}

BddRef BddManager::nvar(uint32_t Var) {
  assert(Var < NumVars && "variable out of range");
  return mkNode(Var, trueBdd(), falseBdd());
}

BddRef BddManager::ite(BddRef F, BddRef G, BddRef H) {
  // Terminal cases.
  if (F == trueBdd())
    return G;
  if (F == falseBdd())
    return H;
  if (G == H)
    return G;
  if (G == trueBdd() && H == falseBdd())
    return F;

  IteKey Key{F, G, H};
  auto It = IteCache.find(Key);
  if (It != IteCache.end()) {
    SPA_OBS_COUNT("bdd.ite.cache_hits", 1);
    return It->second;
  }
  SPA_OBS_COUNT("bdd.ite.cache_misses", 1);

  uint32_t V = varOf(F);
  if (varOf(G) < V)
    V = varOf(G);
  if (varOf(H) < V)
    V = varOf(H);

  auto Cofactor = [&](BddRef X, bool High) {
    if (varOf(X) != V)
      return X;
    return High ? Nodes[X].High : Nodes[X].Low;
  };

  BddRef Low = ite(Cofactor(F, false), Cofactor(G, false), Cofactor(H, false));
  BddRef High = ite(Cofactor(F, true), Cofactor(G, true), Cofactor(H, true));
  BddRef R = mkNode(V, Low, High);
  IteCache.emplace(Key, R);
  return R;
}

BddRef BddManager::restrict(BddRef F, uint32_t Var, bool Value) {
  // ite(v, F|v=1, F|v=0) specialization via a local walk with memoization.
  std::unordered_map<BddRef, BddRef> Memo;
  std::function<BddRef(BddRef)> Go = [&](BddRef X) -> BddRef {
    if (varOf(X) > Var)
      return X; // Terminal or ordered past Var: independent of it.
    if (varOf(X) == Var)
      return Value ? Nodes[X].High : Nodes[X].Low;
    auto It = Memo.find(X);
    if (It != Memo.end())
      return It->second;
    BddRef R = mkNode(Nodes[X].Var, Go(Nodes[X].Low), Go(Nodes[X].High));
    Memo.emplace(X, R);
    return R;
  };
  return Go(F);
}

bool BddManager::eval(BddRef F, const std::vector<bool> &Assignment) const {
  assert(Assignment.size() >= NumVars && "assignment too short");
  while (F > 1) {
    const Node &N = Nodes[F];
    F = Assignment[N.Var] ? N.High : N.Low;
  }
  return F == trueBdd();
}

double BddManager::satCount(BddRef F) {
  // count(X) = models of X over the variables strictly below var(X).
  std::function<double(BddRef)> Go = [&](BddRef X) -> double {
    if (X == falseBdd())
      return 0;
    if (X == trueBdd())
      return 1;
    auto It = CountCache.find(X);
    if (It != CountCache.end())
      return It->second;
    const Node &N = Nodes[X];
    double L = Go(N.Low) * std::pow(2.0, varOf(N.Low) - N.Var - 1);
    double H = Go(N.High) * std::pow(2.0, varOf(N.High) - N.Var - 1);
    double R = L + H;
    CountCache.emplace(X, R);
    return R;
  };
  return Go(F) * std::pow(2.0, varOf(F));
}

void BddManager::forEachModel(BddRef F, uint32_t FirstVar, uint32_t LastVar,
                              const std::function<void(uint64_t)> &Fn) {
  assert(LastVar - FirstVar <= 64 && "model word too wide");
  std::function<void(BddRef, uint32_t, uint64_t)> Go =
      [&](BddRef X, uint32_t Cur, uint64_t Word) {
        if (X == falseBdd())
          return;
        if (Cur == LastVar) {
          assert(X == trueBdd() && "function depends on out-of-range vars");
          Fn(Word);
          return;
        }
        uint64_t Bit = 1ULL << (Cur - FirstVar);
        if (varOf(X) > Cur) {
          // Don't-care at Cur: expand both branches.
          Go(X, Cur + 1, Word);
          Go(X, Cur + 1, Word | Bit);
          return;
        }
        assert(varOf(X) == Cur && "function depends on var before range");
        Go(Nodes[X].Low, Cur + 1, Word);
        Go(Nodes[X].High, Cur + 1, Word | Bit);
      };
  Go(F, FirstVar, 0);
}

size_t BddManager::reachableCount(BddRef F) const {
  std::vector<bool> Seen(Nodes.size(), false);
  std::vector<BddRef> Work{F};
  size_t Count = 0;
  while (!Work.empty()) {
    BddRef X = Work.back();
    Work.pop_back();
    if (Seen[X])
      continue;
    Seen[X] = true;
    ++Count;
    if (X > 1) {
      Work.push_back(Nodes[X].Low);
      Work.push_back(Nodes[X].High);
    }
  }
  return Count;
}

uint64_t BddManager::memoryBytes() const {
  // Representation plus the operation caches.
  return representationBytes() + IteCache.size() * 44;
}

uint64_t BddManager::representationBytes() const {
  // Node table plus the unique (hash-consing) table, estimated with
  // typical libstdc++ overheads (bucket array + chain nodes).
  uint64_t Bytes = Nodes.capacity() * sizeof(Node);
  Bytes += Unique.size() * 40; // key + value + chain node.
  return Bytes + sizeof(*this);
}
