//===- DenseAnalysis.cpp - Dense fixpoint engines ------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/DenseAnalysis.h"

#include "obs/Metrics.h"
#include "support/Resource.h"
#include "support/WorkList.h"

#include <algorithm>
#include <cassert>

using namespace spa;

namespace {

/// Shared machinery of the Vanilla and Base engines.
class DenseEngine {
public:
  DenseEngine(const Program &Prog, const CallGraphInfo &CG,
              const DefUseInfo *DU, const DenseOptions &Opts)
      : Prog(Prog), CG(CG), DU(DU), Opts(Opts) {
    assert((!Opts.Localize || DU) &&
           "localization needs per-function access sets");
    if (Opts.Localize)
      buildAccessSets();
  }

  DenseResult run() {
    DenseResult R;
    size_t N = Prog.numPoints();
    R.Post.resize(N);

    std::vector<uint32_t> Rpo = computeSuperRpo(Prog, CG);
    std::vector<bool> Widen =
        computeWideningPoints(Prog, CG, /*IncludeCallToReturn=*/Opts.Localize);
    std::vector<uint32_t> ChangeCount(N, 0);
    WorkList WL(std::move(Rpo));
    // The paper's fixpoint applies F̂ at every control point, so seed the
    // whole program, not just the start point.
    for (uint32_t P = 0; P < N; ++P)
      WL.push(P);

    Timer Clock;
    while (!WL.empty()) {
      if (Opts.TimeLimitSec > 0 && (R.Visits & 1023) == 0 &&
          Clock.seconds() > Opts.TimeLimitSec) {
        R.TimedOut = true;
        break;
      }
      PointId C(WL.pop());
      ++R.Visits;

      AbsState Out = computeInput(R.Post, C);
      applyCommand(Prog, &CG, C, Out, Opts.Sem);

      bool DoWiden = Widen[C.value()] &&
                     ChangeCount[C.value()] >= Opts.WideningDelay;
      if (DoWiden)
        SPA_OBS_COUNT("fixpoint.widenings", 1);
      else
        SPA_OBS_COUNT("fixpoint.joins", 1);
      bool Changed = DoWiden ? R.Post[C.value()].widenWith(Out)
                             : R.Post[C.value()].joinWith(Out);
      if (!Changed)
        continue;
      ++ChangeCount[C.value()];
      CG.forEachSuperSucc(Prog, C, [&](PointId S) { WL.push(S.value()); });
      // Under localization the return site also consumes the call point's
      // state (the bypassed part), an extra dependency edge.
      if (Opts.Localize && Prog.point(C).Cmd.Kind == CmdKind::Call)
        WL.push(Prog.point(C).Cmd.Pair.value());
    }

    for (unsigned Pass = 0; Pass < Opts.NarrowingPasses && !R.TimedOut;
         ++Pass) {
      bool Changed = false;
      for (uint32_t P = 0; P < N; ++P) {
        AbsState Out = computeInput(R.Post, PointId(P));
        applyCommand(Prog, &CG, PointId(P), Out, Opts.Sem);
        SPA_OBS_COUNT("fixpoint.narrowings", 1);
        Changed |= R.Post[P].narrowWith(Out);
      }
      if (!Changed)
        break;
    }

    for (const AbsState &S : R.Post)
      R.StateEntries += S.size();
    R.Seconds = Clock.seconds();
    SPA_OBS_COUNT("fixpoint.visits", R.Visits);
    SPA_OBS_GAUGE_SET("fixpoint.state_entries", R.StateEntries);
    return R;
  }

private:
  /// Union of AccessDefs and AccessUses per function, sorted.
  void buildAccessSets() {
    Access.resize(Prog.numFuncs());
    for (uint32_t F = 0; F < Prog.numFuncs(); ++F) {
      Access[F] = DU->AccessDefs[F];
      Access[F].insert(Access[F].end(), DU->AccessUses[F].begin(),
                       DU->AccessUses[F].end());
      std::sort(Access[F].begin(), Access[F].end());
      Access[F].erase(std::unique(Access[F].begin(), Access[F].end()),
                      Access[F].end());
    }
  }

  bool inAccess(FuncId F, LocId L) const {
    const auto &A = Access[F.value()];
    return std::binary_search(A.begin(), A.end(), L);
  }

  AbsState computeInput(const std::vector<AbsState> &Post, PointId C) const {
    const Command &Cmd = Prog.point(C).Cmd;
    AbsState In;
    if (Opts.Localize && Cmd.Kind == CmdKind::Entry) {
      // Callers pass only the accessed part of their state.
      FuncId F = Prog.point(C).Func;
      for (PointId Site : CG.callSitesOf(F))
        In.joinWith(Post[Site.value()].filtered(
            [&](LocId L) { return inAccess(F, L); }));
      return In;
    }
    if (Opts.Localize && Cmd.Kind == CmdKind::Return) {
      const std::vector<FuncId> &Cs = CG.callees(Cmd.Pair);
      if (!Cs.empty()) {
        // Accessed part from the callee exits; the rest bypasses the call.
        for (FuncId G : Cs)
          In.joinWith(Post[Prog.function(G).Exit.value()].filtered(
              [&](LocId L) { return inAccess(G, L); }));
        In.joinWith(Post[Cmd.Pair.value()].filtered([&](LocId L) {
          for (FuncId G : Cs)
            if (inAccess(G, L))
              return false;
          return true;
        }));
        return In;
      }
    }
    CG.forEachSuperPred(Prog, C,
                        [&](PointId P) { In.joinWith(Post[P.value()]); });
    return In;
  }

  const Program &Prog;
  const CallGraphInfo &CG;
  const DefUseInfo *DU;
  const DenseOptions &Opts;
  std::vector<std::vector<LocId>> Access;
};

} // namespace

AbsState DenseResult::inputOf(const Program &Prog, const CallGraphInfo &CG,
                              PointId P) const {
  AbsState In;
  CG.forEachSuperPred(Prog, P,
                      [&](PointId Q) { In.joinWith(Post[Q.value()]); });
  return In;
}

DenseResult spa::runDenseAnalysis(const Program &Prog,
                                  const CallGraphInfo &CG,
                                  const DefUseInfo *DU,
                                  const DenseOptions &Opts) {
  return DenseEngine(Prog, CG, DU, Opts).run();
}
