//===- DenseAnalysis.cpp - Dense fixpoint engines ------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/DenseAnalysis.h"

#include "core/PreAnalysis.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "support/Fault.h"
#include "support/Resource.h"
#include "support/WorkList.h"

#include <algorithm>
#include <cassert>

using namespace spa;

namespace {

/// Shared machinery of the Vanilla and Base engines.
class DenseEngine {
public:
  DenseEngine(const Program &Prog, const CallGraphInfo &CG,
              const DefUseInfo *DU, const DenseOptions &Opts)
      : Prog(Prog), CG(CG), DU(DU), Opts(Opts) {
    assert((!Opts.Localize || DU) &&
           "localization needs per-function access sets");
    if (Opts.Localize)
      buildAccessSets();
  }

  DenseResult run() {
    DenseResult R;
    size_t N = Prog.numPoints();
    R.Post.resize(N);

    // Cost ledger rows, indexed by point id (single-threaded engine, so
    // no ownership discipline needed).  Folds to nullptr with SPA_OBS=OFF.
    obs::Ledger *Led = obs::LedgerEnabled ? Opts.Led : nullptr;
    if (Led)
      Led->resize(static_cast<uint32_t>(N));

    std::vector<uint32_t> Rpo = computeSuperRpo(Prog, CG);
    std::vector<bool> Widen =
        computeWideningPoints(Prog, CG, /*IncludeCallToReturn=*/Opts.Localize);
    std::vector<uint32_t> ChangeCount(N, 0);
    WorkList WL(std::move(Rpo));
    // The paper's fixpoint applies F̂ at every control point, so seed the
    // whole program, not just the start point.
    for (uint32_t P = 0; P < N; ++P)
      WL.push(P);

    Timer Clock;
    uint64_t LastSampleUs = 0;
    uint64_t Widenings = 0;
    SPA_OBS_FIX_SCOPE();
    SPA_OBS_JOURNAL(PartitionBegin, 0, N);
    while (!WL.empty()) {
      SPA_OBS_HEARTBEAT();
      if ((R.Visits & 1023) == 0) {
        obs::journalSetWorklistDepth(WL.size());
        maybeInjectFault("fixloop");
      }
      if (Opts.TimeLimitSec > 0 && (R.Visits & 1023) == 0 &&
          Clock.seconds() > Opts.TimeLimitSec) {
        R.TimedOut = true;
        break;
      }
      // One budget step per visit, checked before the pop so an expired
      // budget stops the engine at zero visits (cancellation
      // responsiveness: at most one visit per remaining budget step).
      if (Opts.Bud && !Opts.Bud->charge()) {
        R.Degraded = true;
        break;
      }
      PointId C(WL.pop());
      ++R.Visits;
      if (Led) {
        ++Led->row(C.value()).Visits;
        if ((R.Visits & 31) == 0) {
          uint64_t NowUs = static_cast<uint64_t>(Clock.seconds() * 1e6);
          Led->row(C.value()).TimeMicros += NowUs - LastSampleUs;
          LastSampleUs = NowUs;
        }
      }

      AbsState Out = computeInput(R.Post, C);
      applyCommand(Prog, &CG, C, Out, Opts.Sem);

      bool DoWiden = Widen[C.value()] &&
                     ChangeCount[C.value()] >= Opts.WideningDelay;
      if (DoWiden) {
        SPA_OBS_COUNT("fixpoint.widenings", 1);
        if (((++Widenings) & 63) == 0)
          SPA_OBS_JOURNAL(WidenBurst, C.value(), Widenings);
      } else {
        SPA_OBS_COUNT("fixpoint.joins", 1);
      }
      uint64_t EntriesBefore = Led ? R.Post[C.value()].size() : 0;
      bool Changed = DoWiden ? R.Post[C.value()].widenWith(Out)
                             : R.Post[C.value()].joinWith(Out);
      if (Led) {
        obs::PointCost &PC = Led->row(C.value());
        if (DoWiden)
          ++PC.Widenings;
        else
          ++PC.Joins;
        if (!Changed)
          ++PC.NoChangeSkips;
        else
          // Dense growth unit: net new bound locations at the point
          // (joins are monotone in the entry count).
          PC.Growth += R.Post[C.value()].size() - EntriesBefore;
      }
      if (!Changed)
        continue;
      ++ChangeCount[C.value()];
      CG.forEachSuperSucc(Prog, C, [&](PointId S) { WL.push(S.value()); });
      // Under localization the return site also consumes the call point's
      // state (the bypassed part), an extra dependency edge.
      if (Opts.Localize && Prog.point(C).Cmd.Kind == CmdKind::Call)
        WL.push(Prog.point(C).Cmd.Pair.value());
    }
    SPA_OBS_JOURNAL(PartitionEnd, 0, R.Visits);

    if (R.Degraded)
      degrade(R, WL);

    // Narrowing restarts from a post-fixpoint; a timed-out or degraded
    // state is not one, so skip it.
    for (unsigned Pass = 0;
         Pass < Opts.NarrowingPasses && !R.TimedOut && !R.Degraded;
         ++Pass) {
      bool Changed = false;
      for (uint32_t P = 0; P < N; ++P) {
        AbsState Out = computeInput(R.Post, PointId(P));
        applyCommand(Prog, &CG, PointId(P), Out, Opts.Sem);
        SPA_OBS_COUNT("fixpoint.narrowings", 1);
        if (Led)
          ++Led->row(P).Narrowings;
        Changed |= R.Post[P].narrowWith(Out);
      }
      if (!Changed)
        break;
    }

    for (const AbsState &S : R.Post)
      R.StateEntries += S.size();
    R.Seconds = Clock.seconds();
    SPA_OBS_COUNT("fixpoint.visits", R.Visits);
    SPA_OBS_GAUGE_SET("fixpoint.state_entries", R.StateEntries);
    return R;
  }

private:
  /// Sound budget degradation (docs/ROBUSTNESS.md): the *affected* set —
  /// pending worklist entries plus everything forward-reachable from
  /// them along the edges the engine propagates on — is exactly where
  /// the fixpoint might still have risen; joining those points with the
  /// flow-insensitive invariant T̂pre (an over-approximation of every
  /// reachable memory, Section 3.2) restores soundness.  Non-affected
  /// points already consumed their predecessors' final values, so they
  /// are sound by the usual fixpoint induction.
  void degrade(DenseResult &R, const WorkList &WL) const {
    size_t N = Prog.numPoints();
    std::vector<bool> Affected(N, false);
    std::vector<uint32_t> Stack;
    WL.forEachPending([&](uint32_t P) {
      Affected[P] = true;
      Stack.push_back(P);
    });
    while (!Stack.empty()) {
      PointId C(Stack.back());
      Stack.pop_back();
      auto Visit = [&](PointId S) {
        if (!Affected[S.value()]) {
          Affected[S.value()] = true;
          Stack.push_back(S.value());
        }
      };
      CG.forEachSuperSucc(Prog, C, Visit);
      // The localized return site also consumes the call point's state.
      if (Opts.Localize && Prog.point(C).Cmd.Kind == CmdKind::Call)
        Visit(Prog.point(C).Cmd.Pair);
    }

    AbsState TopState;
    const AbsState *G = Opts.DegradeTo;
    if (!G) {
      TopState = topAbsState(Prog);
      G = &TopState;
    }
    uint64_t NumAffected = 0;
    for (uint32_t P = 0; P < N; ++P) {
      if (!Affected[P])
        continue;
      ++NumAffected;
      R.Post[P].joinWith(*G);
    }
    SPA_OBS_GAUGE_SET("fixpoint.degraded_points", NumAffected);
    SPA_OBS_JOURNAL(DegradeTier, /*Engine=*/1, NumAffected);
  }

  /// Union of AccessDefs and AccessUses per function, sorted.
  void buildAccessSets() {
    Access.resize(Prog.numFuncs());
    for (uint32_t F = 0; F < Prog.numFuncs(); ++F) {
      Access[F] = DU->AccessDefs[F];
      Access[F].insert(Access[F].end(), DU->AccessUses[F].begin(),
                       DU->AccessUses[F].end());
      std::sort(Access[F].begin(), Access[F].end());
      Access[F].erase(std::unique(Access[F].begin(), Access[F].end()),
                      Access[F].end());
    }
  }

  bool inAccess(FuncId F, LocId L) const {
    const auto &A = Access[F.value()];
    return std::binary_search(A.begin(), A.end(), L);
  }

  AbsState computeInput(const std::vector<AbsState> &Post, PointId C) const {
    const Command &Cmd = Prog.point(C).Cmd;
    AbsState In;
    if (Opts.Localize && Cmd.Kind == CmdKind::Entry) {
      // Callers pass only the accessed part of their state.
      FuncId F = Prog.point(C).Func;
      for (PointId Site : CG.callSitesOf(F))
        In.joinWith(Post[Site.value()].filtered(
            [&](LocId L) { return inAccess(F, L); }));
      return In;
    }
    if (Opts.Localize && Cmd.Kind == CmdKind::Return) {
      const std::vector<FuncId> &Cs = CG.callees(Cmd.Pair);
      if (!Cs.empty()) {
        // Accessed part from the callee exits; the rest bypasses the call.
        for (FuncId G : Cs)
          In.joinWith(Post[Prog.function(G).Exit.value()].filtered(
              [&](LocId L) { return inAccess(G, L); }));
        In.joinWith(Post[Cmd.Pair.value()].filtered([&](LocId L) {
          for (FuncId G : Cs)
            if (inAccess(G, L))
              return false;
          return true;
        }));
        return In;
      }
    }
    CG.forEachSuperPred(Prog, C,
                        [&](PointId P) { In.joinWith(Post[P.value()]); });
    return In;
  }

  const Program &Prog;
  const CallGraphInfo &CG;
  const DefUseInfo *DU;
  const DenseOptions &Opts;
  std::vector<std::vector<LocId>> Access;
};

} // namespace

AbsState DenseResult::inputOf(const Program &Prog, const CallGraphInfo &CG,
                              PointId P) const {
  AbsState In;
  CG.forEachSuperPred(Prog, P,
                      [&](PointId Q) { In.joinWith(Post[Q.value()]); });
  return In;
}

DenseResult spa::runDenseAnalysis(const Program &Prog,
                                  const CallGraphInfo &CG,
                                  const DefUseInfo *DU,
                                  const DenseOptions &Opts) {
  return DenseEngine(Prog, CG, DU, Opts).run();
}
