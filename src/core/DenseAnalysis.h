//===- DenseAnalysis.h - Dense fixpoint engines (Vanilla / Base) --------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two dense analyzers of the evaluation:
///
///  * Vanilla — the textbook global engine: each point's abstract state is
///    the whole L̂ → V̂ map, propagated along supergraph control flow
///    (Interval_vanilla / Octagon_vanilla in Tables 2 and 3);
///  * Base — Vanilla plus access-based localization [Oh, Brutschy, Yi,
///    VMCAI 2011]: a call passes the callee only the part of the state the
///    callee may access; the rest bypasses to the return site
///    (Interval_base / Octagon_base).
///
/// Both compute the fixpoint of F̂(X̂) = λc. f̂_c(⊔_{c'↪c} X̂(c')) with a
/// priority worklist, widening at loop heads and recursive entries.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CORE_DENSEANALYSIS_H
#define SPA_CORE_DENSEANALYSIS_H

#include "core/DefUse.h"
#include "core/Semantics.h"
#include "domains/AbsState.h"
#include "ir/CallGraphInfo.h"
#include "ir/Program.h"
#include "obs/Ledger.h"

#include <cstdint>
#include <vector>

namespace spa {

struct DenseOptions {
  SemanticsOptions Sem;
  /// Enable access-based localization (the Base analyzer).  Requires
  /// DefUseInfo for the per-function access sets.
  bool Localize = false;
  /// Wall-clock budget in seconds (0 = unlimited); exceeded runs report
  /// TimedOut (the paper's ∞ entries).
  double TimeLimitSec = 0;
  /// Decreasing (narrowing) iterations after stabilization.
  unsigned NarrowingPasses = 0;
  /// Number of changing visits of a widening point before the widening
  /// operator kicks in (plain joins until then).  Delayed widening is the
  /// standard precision lever; termination only needs *some* finite delay.
  unsigned WideningDelay = 4;
  /// Cooperative resource budget, charged once per worklist visit; on
  /// exhaustion the engine stops and *degrades soundly* (see DegradeTo)
  /// instead of reporting a timeout.  Null = no budget, zero overhead.
  Budget *Bud = nullptr;
  /// Sound fallback state for degradation: every point forward-reachable
  /// from a pending worklist entry joins this state (normally the
  /// flow-insensitive pre-analysis invariant T̂pre, which Section 3.2
  /// proves over-approximates every reachable memory).  Null = degrade to
  /// the all-⊤ state.
  const AbsState *DegradeTo = nullptr;
  /// Per-point cost ledger (rows indexed by point id); null = no
  /// recording.  See obs/Ledger.h for the determinism contract.
  obs::Ledger *Led = nullptr;
};

struct DenseResult {
  /// Post-state per point: X̂(c) = f̂_c(join of predecessors).
  std::vector<AbsState> Post;
  bool TimedOut = false;
  /// The budget tripped; every point whose value might still have risen
  /// (pending entries and everything reachable from them) was joined
  /// with the degradation state, so Post stays an over-approximation.
  bool Degraded = false;
  uint64_t Visits = 0;       ///< Worklist pops.
  uint64_t StateEntries = 0; ///< Total bound locations over all points.
  double Seconds = 0;

  /// Input state of \p P: the join of its supergraph predecessors'
  /// post-states (what f̂_P consumed at the fixpoint).
  AbsState inputOf(const Program &Prog, const CallGraphInfo &CG,
                   PointId P) const;
};

/// Runs a dense analysis.  \p DU may be null unless Opts.Localize is set.
DenseResult runDenseAnalysis(const Program &Prog, const CallGraphInfo &CG,
                             const DefUseInfo *DU, const DenseOptions &Opts);

} // namespace spa

#endif // SPA_CORE_DENSEANALYSIS_H
