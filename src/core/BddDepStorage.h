//===- BddDepStorage.h - BDD-backed dependency storage -------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stores the ternary dependency relation ⇝ ⊆ C × L̂ × C as one boolean
/// function over bit-encoded (source, target, location) triples, exactly
/// as Section 5 describes: triples sharing a source share BDD prefixes,
/// triples sharing (target, location) share suffixes, which is where the
/// memory reduction over set storage comes from.  The price is slower
/// iteration (restrict + model enumeration per query), matching the
/// paper's observation that BDD set operations are "noticeably slower
/// than usual set operations".
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CORE_BDDDEPSTORAGE_H
#define SPA_CORE_BDDDEPSTORAGE_H

#include "bdd/Bdd.h"
#include "core/DepGraph.h"

namespace spa {

/// DepStorage backend over a from-scratch ROBDD package.
class BddDepStorage : public DepStorage {
public:
  /// \p NumNodes bounds source/target ids; \p NumLocs bounds locations.
  BddDepStorage(uint32_t NumNodes, uint32_t NumLocs);

  bool add(uint32_t Src, LocId L, uint32_t Dst) override;
  void forEachOut(
      uint32_t Src,
      const std::function<void(LocId, uint32_t)> &F) const override;
  uint64_t edgeCount() const override { return Edges; }
  /// Size of the *live* relation: nodes reachable from the root, at the
  /// node-record plus unique-table cost per node.  Dead intermediates and
  /// the transient ITE cache are excluded — they are what a collecting
  /// package (the paper's BuDDy) reclaims, not the representation the
  /// Section 5 comparison is about.
  uint64_t memoryBytes() const override {
    return static_cast<uint64_t>(Mgr.reachableCount(Root)) * 52;
  }

  /// Nodes in the underlying BDD (for the ablation report).
  size_t bddNodeCount() const { return Mgr.nodeCount(); }

private:
  static uint32_t bitsFor(uint32_t N);

  uint32_t SrcBits, DstBits, LocBits;
  mutable BddManager Mgr;
  BddRef Root;
  uint64_t Edges = 0;
  /// Source-cofactor memo: the fixpoint engine queries the same source
  /// repeatedly; the cofactors are shared sub-BDDs, so this costs a few
  /// words per queried source (invalidated on add).
  mutable std::vector<BddRef> CofactorCache;
};

} // namespace spa

#endif // SPA_CORE_BDDDEPSTORAGE_H
