//===- DepGraph.cpp - Data-dependency graph storage ----------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/DepGraph.h"

#include <algorithm>

using namespace spa;

bool SetDepStorage::add(uint32_t Src, LocId L, uint32_t Dst) {
  auto &V = Out[Src];
  Edge E{L, Dst};
  auto It = std::lower_bound(V.begin(), V.end(), E);
  if (It != V.end() && *It == E)
    return false;
  V.insert(It, E);
  ++Edges;
  return true;
}

void SetDepStorage::forEachOut(
    uint32_t Src, const std::function<void(LocId, uint32_t)> &F) const {
  for (const Edge &E : Out[Src])
    F(E.L, E.Dst);
}

uint64_t SetDepStorage::memoryBytes() const {
  uint64_t Bytes = sizeof(*this) + Out.capacity() * sizeof(Out[0]);
  for (const auto &V : Out)
    Bytes += V.capacity() * sizeof(Edge);
  return Bytes;
}

namespace {

/// Union-find over function ids (path halving + union by root id, so
/// component representatives are deterministic: smallest member wins).
class UnionFind {
public:
  explicit UnionFind(size_t N) : Parent(N) {
    for (uint32_t I = 0; I < N; ++I)
      Parent[I] = I;
  }

  uint32_t find(uint32_t X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }

  void unite(uint32_t A, uint32_t B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return;
    if (B < A)
      std::swap(A, B);
    Parent[B] = A;
  }

private:
  std::vector<uint32_t> Parent;
};

} // namespace

DepComponents spa::computeDepComponents(const Program &Prog,
                                        const SparseGraph &Graph) {
  size_t N = Graph.numNodes();
  auto FuncOf = [&](uint32_t Node) {
    return Prog.point(Graph.anchor(Node)).Func.value();
  };
  UnionFind UF(Prog.numFuncs());
  for (uint32_t Src = 0; Src < N; ++Src) {
    uint32_t SF = FuncOf(Src);
    Graph.Edges->forEachOut(
        Src, [&](LocId, uint32_t Dst) { UF.unite(SF, FuncOf(Dst)); });
  }

  // Dense component ids, numbered by smallest member function — the same
  // numbering for any job count, so ledger partition rows and the
  // parallel fixpoint shards agree.
  std::vector<uint32_t> CompOfFunc(Prog.numFuncs());
  uint32_t NumComps = 0;
  for (uint32_t F = 0; F < Prog.numFuncs(); ++F)
    if (UF.find(F) == F)
      CompOfFunc[F] = NumComps++;
  for (uint32_t F = 0; F < Prog.numFuncs(); ++F)
    CompOfFunc[F] = CompOfFunc[UF.find(F)];

  DepComponents DC;
  DC.NumComps = NumComps;
  DC.CompOfNode.resize(N);
  for (uint32_t Node = 0; Node < N; ++Node)
    DC.CompOfNode[Node] = CompOfFunc[FuncOf(Node)];
  return DC;
}

ReverseDepIndex::ReverseDepIndex(const SparseGraph &Graph) {
  In.resize(Graph.numNodes());
  for (uint32_t Src = 0; Src < Graph.numNodes(); ++Src)
    Graph.Edges->forEachOut(Src, [&](LocId L, uint32_t Dst) {
      In[Dst].push_back({L, Src});
      ++Edges;
    });
}

void ReverseDepIndex::forEachIn(
    uint32_t Dst, const std::function<void(LocId, uint32_t)> &F) const {
  for (const InEdge &E : In[Dst])
    F(E.L, E.Src);
}
