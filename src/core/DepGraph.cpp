//===- DepGraph.cpp - Data-dependency graph storage ----------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/DepGraph.h"

#include <algorithm>

using namespace spa;

bool SetDepStorage::add(uint32_t Src, LocId L, uint32_t Dst) {
  auto &V = Out[Src];
  Edge E{L, Dst};
  auto It = std::lower_bound(V.begin(), V.end(), E);
  if (It != V.end() && *It == E)
    return false;
  V.insert(It, E);
  ++Edges;
  return true;
}

void SetDepStorage::forEachOut(
    uint32_t Src, const std::function<void(LocId, uint32_t)> &F) const {
  for (const Edge &E : Out[Src])
    F(E.L, E.Dst);
}

uint64_t SetDepStorage::memoryBytes() const {
  uint64_t Bytes = sizeof(*this) + Out.capacity() * sizeof(Out[0]);
  for (const auto &V : Out)
    Bytes += V.capacity() * sizeof(Edge);
  return Bytes;
}
