//===- Export.h - Graphviz and text exports ---------------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inspection helpers for humans and tooling: Graphviz dot renderings of
/// the supergraph and of the data-dependency graph, and a plain-text
/// program listing with per-point analysis results.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CORE_EXPORT_H
#define SPA_CORE_EXPORT_H

#include "core/Analyzer.h"

#include <string>

namespace spa {

/// Dot rendering of the interprocedural supergraph: one cluster per
/// function, skeleton edges solid, call/return linkage dashed.
std::string exportSupergraphDot(const Program &Prog,
                                const CallGraphInfo &CG);

/// Dot rendering of the data-dependency graph, edges labeled with the
/// location they carry.  Phi nodes render as small circles.  Graphs
/// beyond \p MaxEdges edges are truncated with a note (dot does not
/// scale past a few thousand edges anyway).
std::string exportDepGraphDot(const Program &Prog, const SparseGraph &Graph,
                              size_t MaxEdges = 4000);

/// Text listing of the program with, for every point, the values of the
/// locations it defines (from a sparse run).
std::string exportAnnotatedListing(const Program &Prog,
                                   const AnalysisRun &Run);

} // namespace spa

#endif // SPA_CORE_EXPORT_H
