//===- DefUse.cpp - Approximated definition and use sets -----------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/DefUse.h"

#include "obs/Metrics.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace spa;

static void sortUnique(std::vector<LocId> &V) {
  std::sort(V.begin(), V.end());
  V.erase(std::unique(V.begin(), V.end()), V.end());
}

static void appendAll(std::vector<LocId> &Out, const std::vector<LocId> &In) {
  Out.insert(Out.end(), In.begin(), In.end());
}

/// Union of sorted vectors into \p Acc (sorted, deduplicated).  The
/// summary folding unions a few large pre-sorted access sets per call
/// point; merging beats concatenate-and-sort by a log factor there.
static void mergeSorted(std::vector<LocId> &Acc,
                        const std::vector<LocId> &In) {
  if (In.empty())
    return;
  if (Acc.empty()) {
    Acc = In;
    return;
  }
  std::vector<LocId> Out;
  Out.reserve(Acc.size() + In.size());
  std::set_union(Acc.begin(), Acc.end(), In.begin(), In.end(),
                 std::back_inserter(Out));
  Acc = std::move(Out);
}

double DefUseInfo::avgDefSize() const {
  if (NodeDefs.empty())
    return 0;
  size_t Total = 0;
  for (const auto &D : NodeDefs)
    Total += D.size();
  return static_cast<double>(Total) / static_cast<double>(NodeDefs.size());
}

double DefUseInfo::avgUseSize() const {
  if (NodeUses.empty())
    return 0;
  size_t Total = 0;
  for (const auto &U : NodeUses)
    Total += U.size();
  return static_cast<double>(Total) / static_cast<double>(NodeUses.size());
}

double DefUseInfo::avgSemanticDefSize() const {
  if (Defs.empty())
    return 0;
  size_t Total = 0;
  for (const auto &D : Defs)
    Total += D.size();
  return static_cast<double>(Total) / static_cast<double>(Defs.size());
}

double DefUseInfo::avgSemanticUseSize() const {
  if (Uses.empty())
    return 0;
  size_t Total = 0;
  for (const auto &U : Uses)
    Total += U.size();
  return static_cast<double>(Total) / static_cast<double>(Uses.size());
}

bool DefUseInfo::isSemanticDef(PointId P, LocId L) const {
  const auto &D = Defs[P.value()];
  return std::binary_search(D.begin(), D.end(), L);
}

bool DefUseInfo::isSemanticUse(PointId P, LocId L) const {
  const auto &U = Uses[P.value()];
  return std::binary_search(U.begin(), U.end(), L);
}

DefUseInfo spa::computeDefUse(const Program &Prog, const PreAnalysisResult &Pre,
                              unsigned Jobs, Budget *Bud) {
  DefUseInfo Info;
  size_t N = Prog.numPoints();
  Info.Defs.resize(N);
  Info.Uses.resize(N);

  // Step 1: semantic per-point sets against T̂pre (Section 3.2).  Each
  // point writes only its own slot against the read-only pre-analysis
  // state, so the chunks are independent and the result Jobs-invariant.
  // The budget is charged per point from the worker lanes themselves; the
  // structural work still completes (the node sets must be whole for the
  // dependency graph to be sound), so exhaustion here only makes the
  // downstream fixpoint degrade sooner.
  ThreadPool::global().parallelForChunks(N, Jobs, [&](size_t Lo, size_t Hi) {
    if (Bud)
      Bud->charge(Hi - Lo);
    for (size_t P = Lo; P < Hi; ++P) {
      collectDefs(Prog, &Pre.CG, PointId(P), Pre.state(), Info.Defs[P]);
      collectUses(Prog, &Pre.CG, PointId(P), Pre.state(), Info.Uses[P]);
      sortUnique(Info.Defs[P]);
      sortUnique(Info.Uses[P]);
    }
  });

  foldInterproceduralSummaries(Prog, Pre.CG, Info, Jobs, Bud);
  SPA_OBS_GAUGE_SET("defuse.avg_def_size", Info.avgSemanticDefSize());
  SPA_OBS_GAUGE_SET("defuse.avg_use_size", Info.avgSemanticUseSize());
  return Info;
}

void spa::foldInterproceduralSummaries(const Program &Prog,
                                       const CallGraphInfo &CG,
                                       DefUseInfo &Info, unsigned Jobs,
                                       Budget *Bud) {
  size_t N = Prog.numPoints();
  // Step 2: per-function transitive access sets.  Callgraph SCCs are
  // processed in reverse topological order (Tarjan emission order), so
  // each SCC unions its members' local sets with the already-final sets
  // of out-of-SCC callees in a single pass; members of one SCC share the
  // same result.
  size_t NF = Prog.numFuncs();
  Info.AccessDefs.resize(NF);
  Info.AccessUses.resize(NF);
  for (const std::vector<FuncId> &Members : CG.sccMembersInOrder()) {
    if (Bud)
      Bud->charge(Members.size());
    std::vector<LocId> Defs, Uses;
    uint32_t Scc = Members.empty() ? 0 : CG.sccOf(Members.front());
    for (FuncId F : Members) {
      for (PointId P : Prog.function(F).Points) {
        appendAll(Defs, Info.Defs[P.value()]);
        appendAll(Uses, Info.Uses[P.value()]);
        if (Prog.point(P).Cmd.Kind != CmdKind::Call)
          continue;
        for (FuncId G : CG.callees(P)) {
          if (CG.sccOf(G) == Scc)
            continue; // Same component: covered by the shared result.
          appendAll(Defs, Info.AccessDefs[G.value()]);
          appendAll(Uses, Info.AccessUses[G.value()]);
        }
      }
    }
    sortUnique(Defs);
    sortUnique(Uses);
    for (FuncId F : Members) {
      Info.AccessDefs[F.value()] = Defs;
      Info.AccessUses[F.value()] = Uses;
    }
  }

  // Step 3: node-level sets with interprocedural summaries (Section 5).
  // The per-point sets are already sorted; summaries merge in sorted.
  // Per-point slots again, over the now-final read-only access sets, so
  // this step parallelizes like Step 1.
  Info.NodeDefs = Info.Defs;
  Info.NodeUses = Info.Uses;
  ThreadPool::global().parallelForChunks(N, Jobs, [&](size_t Lo, size_t Hi) {
  if (Bud)
    Bud->charge(Hi - Lo);
  for (size_t P = Lo; P < Hi; ++P) {
    const Command &Cmd = Prog.point(PointId(P)).Cmd;
    switch (Cmd.Kind) {
    case CmdKind::Entry: {
      // Entry redistributes everything its function (transitively) uses
      // *or may define*: a may-defined location needs its caller-side
      // value on the paths that do not define it, so it must flow in.
      uint32_t F = Prog.point(PointId(P)).Func.value();
      mergeSorted(Info.NodeDefs[P], Info.AccessUses[F]);
      mergeSorted(Info.NodeDefs[P], Info.AccessDefs[F]);
      Info.NodeUses[P] = Info.NodeDefs[P];
      break;
    }
    case CmdKind::Exit: {
      // Exit collects everything its function (transitively) defines.
      uint32_t F = Prog.point(PointId(P)).Func.value();
      mergeSorted(Info.NodeDefs[P], Info.AccessDefs[F]);
      mergeSorted(Info.NodeUses[P], Info.AccessDefs[F]);
      break;
    }
    case CmdKind::Call: {
      // A call defines and uses whatever its callees access (Section 5):
      // caller-side values route through the call point into the callee
      // entries, including values of locations the callee only *may*
      // define.
      for (FuncId G : CG.callees(PointId(P))) {
        mergeSorted(Info.NodeDefs[P], Info.AccessUses[G.value()]);
        mergeSorted(Info.NodeDefs[P], Info.AccessDefs[G.value()]);
        mergeSorted(Info.NodeUses[P], Info.AccessUses[G.value()]);
        mergeSorted(Info.NodeUses[P], Info.AccessDefs[G.value()]);
      }
      break;
    }
    case CmdKind::Return: {
      // A return point defines whatever the callees define: callee-side
      // values route through it back into the caller.
      for (FuncId G : CG.callees(Cmd.Pair)) {
        mergeSorted(Info.NodeDefs[P], Info.AccessDefs[G.value()]);
        mergeSorted(Info.NodeUses[P], Info.AccessDefs[G.value()]);
      }
      break;
    }
    default:
      break;
    }
  }
  });
}
