//===- Checker.cpp - Buffer-overrun checker ---------------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"

#include "obs/Metrics.h"
#include "obs/MetricsSink.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace spa;

std::string AccessCheck::str(const Program &Prog) const {
  std::ostringstream OS;
  switch (Result) {
  case Verdict::Safe:
    OS << "safe   ";
    break;
  case Verdict::Alarm:
    OS << "ALARM  ";
    break;
  case Verdict::DefiniteOverrun:
    OS << "OVERRUN";
    break;
  }
  OS << " " << (IsStore ? "store" : "load") << " through "
     << Prog.loc(Ptr).Name << " at {" << Prog.pointToString(P)
     << "}: offset " << Offset.str() << ", size " << Size.str();
  if (Degraded)
    OS << " [degraded]";
  return OS.str();
}

unsigned CheckerSummary::numSafe() const {
  unsigned N = 0;
  for (const AccessCheck &C : Checks)
    N += C.Result == AccessCheck::Verdict::Safe;
  return N;
}

unsigned CheckerSummary::numAlarms() const {
  return static_cast<unsigned>(Checks.size()) - numSafe();
}

namespace {

AccessCheck::Verdict classify(const Value &Ptr) {
  const Interval &Off = Ptr.Offset, &Size = Ptr.Size;
  if (Off.isBot() || Size.isBot() || Ptr.Pts.empty())
    return AccessCheck::Verdict::Safe; // Dead access: nothing to overrun.
  // Proved in bounds: every offset is within every possible size.
  if (Off.lo() >= 0 && Size.lo() != bound::NegInf && Off.hi() < Size.lo())
    return AccessCheck::Verdict::Safe;
  // Definitely out of bounds: no offset can be valid.
  if (Off.hi() < 0 || Off.lo() >= Size.hi())
    return AccessCheck::Verdict::DefiniteOverrun;
  return AccessCheck::Verdict::Alarm;
}

/// Collects dereferenced pointer variables of \p E.
void collectDerefs(const IExpr &E, std::vector<LocId> &Out) {
  if (E.Kind == IExprKind::Deref) {
    Out.push_back(E.Loc);
    return;
  }
  if (E.Kind == IExprKind::Binary) {
    collectDerefs(*E.Lhs, Out);
    collectDerefs(*E.Rhs, Out);
  }
}

} // namespace

CheckerSummary spa::checkBufferOverruns(const Program &Prog,
                                        const AnalysisRun &Run) {
  assert(Run.Sparse && "checker consumes a sparse analysis result");
  CheckerSummary Summary;
  Summary.Degraded = Run.degraded();

  for (uint32_t P = 0; P < Prog.numPoints(); ++P) {
    const Command &Cmd = Prog.point(PointId(P)).Cmd;
    std::vector<LocId> Loads;
    bool Store = false;
    LocId StorePtr;
    switch (Cmd.Kind) {
    case CmdKind::Assign:
    case CmdKind::RetStmt:
    case CmdKind::Alloc:
      collectDerefs(*Cmd.E, Loads);
      break;
    case CmdKind::Store:
      Store = true;
      StorePtr = Cmd.Target;
      collectDerefs(*Cmd.E, Loads);
      break;
    case CmdKind::Assume:
      collectDerefs(*Cmd.Cnd->Lhs, Loads);
      collectDerefs(*Cmd.Cnd->Rhs, Loads);
      break;
    case CmdKind::Call:
      for (const auto &A : Cmd.Args)
        collectDerefs(*A, Loads);
      break;
    default:
      break;
    }
    if (Loads.empty() && !Store)
      continue;

    const AbsState &In = Run.Sparse->In[P];
    auto Record = [&](LocId Ptr, bool IsStore) {
      const Value &V = In.get(Ptr);
      AccessCheck C;
      C.P = PointId(P);
      C.Ptr = Ptr;
      C.Offset = V.Offset;
      C.Size = V.Size;
      C.IsStore = IsStore;
      C.Result = classify(V);
      C.Degraded = Summary.Degraded;
      Summary.Checks.push_back(std::move(C));
    };
    for (LocId L : Loads)
      Record(L, false);
    if (Store)
      Record(StorePtr, true);
  }
  return Summary;
}

CheckerSummary spa::analyzeAndCheck(const Program &Prog) {
  AnalyzerOptions Opts;
  Opts.Engine = EngineKind::Sparse;
  // The checker reads pointer operands from the input buffers, which the
  // bypass contraction would thin out; keep the full buffers.
  Opts.Dep.Bypass = false;
  AnalysisRun Run = analyzeProgram(Prog, Opts);
  return checkBufferOverruns(Prog, Run);
}

//===----------------------------------------------------------------------===//
// Alarm provenance
//===----------------------------------------------------------------------===//

std::optional<AlarmProvenance>
spa::explainAlarm(const Program &Prog, const AnalysisRun &Run,
                  const CheckerSummary &Summary, unsigned AlarmId,
                  const ProvenanceQuery &Q) {
  if (!Run.Sparse || !Run.Graph)
    return std::nullopt;

  // Alarm ids number the non-Safe checks in report order.
  const AccessCheck *Check = nullptr;
  unsigned Seen = 0;
  for (const AccessCheck &C : Summary.Checks) {
    if (C.Result == AccessCheck::Verdict::Safe)
      continue;
    if (Seen++ == AlarmId) {
      Check = &C;
      break;
    }
  }
  if (!Check)
    return std::nullopt;

  AlarmProvenance AP;
  AP.AlarmId = AlarmId;
  AP.Check = *Check;

  // Walk the dependency relation backward from the alarming point.
  // Program points are graph nodes [0, NumPoints); the first backward
  // step is restricted to edges labeled with the alarming pointer (only
  // its definitions fed the dereference); deeper steps take every label,
  // because any location feeding a definition on the slice contributed.
  ReverseDepIndex Rev(*Run.Graph);
  uint32_t Seed = Check->P.value();
  obs::PredFn Preds = [&](uint32_t Node,
                          const std::function<void(uint32_t, uint32_t)> &Each) {
    Rev.forEachIn(Node, [&](LocId L, uint32_t Src) {
      if (Node == Seed && L != Check->Ptr)
        return;
      Each(Src, L.value());
    });
  };
  obs::ChargeFn Charge;
  if (Q.Bud)
    Charge = [Bud = Q.Bud] { return Bud->charge(); };
  obs::ProvenanceSlice Slice = obs::backwardSlice(Seed, Preds, Q.Bounds,
                                                  Charge);
  AP.Truncated = Slice.Truncated;
  AP.EdgesWalked = Slice.EdgesWalked;

  std::vector<bool> WidenPoint = computeWideningPoints(Prog, Run.Pre.CG);
  const std::vector<uint32_t> &Deg = Run.Sparse->DegradedNodeIds;
  for (const obs::SliceNode &S : Slice.Nodes) {
    ProvenanceEntry E;
    E.Node = S.Node;
    E.P = Run.Graph->anchor(S.Node);
    E.Depth = S.Depth;
    E.Via = S.Depth == 0 ? Check->Ptr : LocId(S.ViaLabel);
    E.IsPhi = Run.Graph->isPhi(S.Node);
    E.IsWidenPoint = WidenPoint[E.P.value()];
    E.Degraded = std::binary_search(Deg.begin(), Deg.end(), S.Node);
    AP.TouchesDegraded |= E.Degraded;
    AP.Slice.push_back(std::move(E));
  }

  SPA_OBS_COUNT("provenance.slices", 1);
  SPA_OBS_COUNT("provenance.nodes", AP.Slice.size());
  SPA_OBS_COUNT("provenance.edges_walked", AP.EdgesWalked);
  if (AP.Truncated)
    SPA_OBS_COUNT("provenance.truncated", 1);
  return AP;
}

std::vector<AlarmProvenance>
spa::collectAlarmProvenance(const Program &Prog, const AnalysisRun &Run,
                            const CheckerSummary &Summary,
                            const ProvenanceQuery &Q) {
  std::vector<AlarmProvenance> Out;
  for (unsigned Id = 0;; ++Id) {
    std::optional<AlarmProvenance> AP = explainAlarm(Prog, Run, Summary, Id, Q);
    if (!AP)
      break;
    Out.push_back(std::move(*AP));
  }
  return Out;
}

std::string AlarmProvenance::str(const Program &Prog,
                                 const AnalysisRun &Run) const {
  std::ostringstream OS;
  OS << "alarm #" << AlarmId << ": " << Check.str(Prog) << "\n";
  OS << "dependency slice (" << Slice.size() << " nodes, " << EdgesWalked
     << " edges walked";
  if (Truncated)
    OS << ", truncated";
  OS << "):\n";
  const SparseGraph *Graph = Run.Graph ? &*Run.Graph : nullptr;
  for (const ProvenanceEntry &E : Slice) {
    OS << "  [d" << E.Depth << "] ";
    if (E.Depth > 0)
      OS << Prog.loc(E.Via).Name << " <- ";
    OS << ledgerNodeLabel(Prog, Graph, E.Node);
    if (E.IsWidenPoint)
      OS << " [widen]";
    if (E.Degraded)
      OS << " [degraded]";
    OS << "\n";
  }
  OS << "degraded-tier value on slice: " << (TouchesDegraded ? "yes" : "no");
  if (IntervalFallback)
    OS << "; interval fallback (octagon run degraded)";
  OS << "\n";
  return OS.str();
}

std::string
spa::provenanceJsonArray(const Program &Prog, const AnalysisRun &Run,
                         const std::vector<AlarmProvenance> &Slices) {
  auto Quote = [](const std::string &S) {
    std::string R = "\"";
    for (char C : S) {
      if (C == '"' || C == '\\')
        R += '\\';
      R += C;
    }
    return R += '"';
  };
  const SparseGraph *Graph = Run.Graph ? &*Run.Graph : nullptr;
  std::string Out = "[";
  for (size_t I = 0; I < Slices.size(); ++I) {
    const AlarmProvenance &AP = Slices[I];
    Out += I ? ",\n    {\n" : "\n    {\n";
    Out += "      \"alarm\": " + std::to_string(AP.AlarmId) + ",\n";
    Out += "      \"point\": " + std::to_string(AP.Check.P.value()) + ",\n";
    Out += "      \"ptr\": " + Quote(Prog.loc(AP.Check.Ptr).Name) + ",\n";
    Out += std::string("      \"verdict\": ") +
           (AP.Check.Result == AccessCheck::Verdict::DefiniteOverrun
                ? "\"overrun\""
                : "\"alarm\"") +
           ",\n";
    Out += std::string("      \"truncated\": ") +
           (AP.Truncated ? "true" : "false") + ",\n";
    Out += "      \"edges_walked\": " + std::to_string(AP.EdgesWalked) + ",\n";
    Out += std::string("      \"touches_degraded\": ") +
           (AP.TouchesDegraded ? "true" : "false") + ",\n";
    Out += std::string("      \"interval_fallback\": ") +
           (AP.IntervalFallback ? "true" : "false") + ",\n";
    Out += "      \"slice\": [";
    for (size_t J = 0; J < AP.Slice.size(); ++J) {
      const ProvenanceEntry &E = AP.Slice[J];
      Out += J ? ",\n        {" : "\n        {";
      Out += "\"node\": " + std::to_string(E.Node);
      Out += ", \"depth\": " + std::to_string(E.Depth);
      Out += ", \"via\": " + Quote(Prog.loc(E.Via).Name);
      Out += std::string(", \"phi\": ") + (E.IsPhi ? "true" : "false");
      Out += std::string(", \"widening\": ") +
             (E.IsWidenPoint ? "true" : "false");
      Out += std::string(", \"degraded\": ") + (E.Degraded ? "true" : "false");
      Out += ", \"label\": " + Quote(ledgerNodeLabel(Prog, Graph, E.Node));
      Out += "}";
    }
    Out += AP.Slice.empty() ? "]" : "\n      ]";
    Out += "\n    }";
  }
  Out += Slices.empty() ? "]" : "\n  ]";
  return Out;
}
