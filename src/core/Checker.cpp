//===- Checker.cpp - Buffer-overrun checker ---------------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"

#include <cassert>
#include <sstream>

using namespace spa;

std::string AccessCheck::str(const Program &Prog) const {
  std::ostringstream OS;
  switch (Result) {
  case Verdict::Safe:
    OS << "safe   ";
    break;
  case Verdict::Alarm:
    OS << "ALARM  ";
    break;
  case Verdict::DefiniteOverrun:
    OS << "OVERRUN";
    break;
  }
  OS << " " << (IsStore ? "store" : "load") << " through "
     << Prog.loc(Ptr).Name << " at {" << Prog.pointToString(P)
     << "}: offset " << Offset.str() << ", size " << Size.str();
  if (Degraded)
    OS << " [degraded]";
  return OS.str();
}

unsigned CheckerSummary::numSafe() const {
  unsigned N = 0;
  for (const AccessCheck &C : Checks)
    N += C.Result == AccessCheck::Verdict::Safe;
  return N;
}

unsigned CheckerSummary::numAlarms() const {
  return static_cast<unsigned>(Checks.size()) - numSafe();
}

namespace {

AccessCheck::Verdict classify(const Value &Ptr) {
  const Interval &Off = Ptr.Offset, &Size = Ptr.Size;
  if (Off.isBot() || Size.isBot() || Ptr.Pts.empty())
    return AccessCheck::Verdict::Safe; // Dead access: nothing to overrun.
  // Proved in bounds: every offset is within every possible size.
  if (Off.lo() >= 0 && Size.lo() != bound::NegInf && Off.hi() < Size.lo())
    return AccessCheck::Verdict::Safe;
  // Definitely out of bounds: no offset can be valid.
  if (Off.hi() < 0 || Off.lo() >= Size.hi())
    return AccessCheck::Verdict::DefiniteOverrun;
  return AccessCheck::Verdict::Alarm;
}

/// Collects dereferenced pointer variables of \p E.
void collectDerefs(const IExpr &E, std::vector<LocId> &Out) {
  if (E.Kind == IExprKind::Deref) {
    Out.push_back(E.Loc);
    return;
  }
  if (E.Kind == IExprKind::Binary) {
    collectDerefs(*E.Lhs, Out);
    collectDerefs(*E.Rhs, Out);
  }
}

} // namespace

CheckerSummary spa::checkBufferOverruns(const Program &Prog,
                                        const AnalysisRun &Run) {
  assert(Run.Sparse && "checker consumes a sparse analysis result");
  CheckerSummary Summary;
  Summary.Degraded = Run.degraded();

  for (uint32_t P = 0; P < Prog.numPoints(); ++P) {
    const Command &Cmd = Prog.point(PointId(P)).Cmd;
    std::vector<LocId> Loads;
    bool Store = false;
    LocId StorePtr;
    switch (Cmd.Kind) {
    case CmdKind::Assign:
    case CmdKind::RetStmt:
    case CmdKind::Alloc:
      collectDerefs(*Cmd.E, Loads);
      break;
    case CmdKind::Store:
      Store = true;
      StorePtr = Cmd.Target;
      collectDerefs(*Cmd.E, Loads);
      break;
    case CmdKind::Assume:
      collectDerefs(*Cmd.Cnd->Lhs, Loads);
      collectDerefs(*Cmd.Cnd->Rhs, Loads);
      break;
    case CmdKind::Call:
      for (const auto &A : Cmd.Args)
        collectDerefs(*A, Loads);
      break;
    default:
      break;
    }
    if (Loads.empty() && !Store)
      continue;

    const AbsState &In = Run.Sparse->In[P];
    auto Record = [&](LocId Ptr, bool IsStore) {
      const Value &V = In.get(Ptr);
      AccessCheck C;
      C.P = PointId(P);
      C.Ptr = Ptr;
      C.Offset = V.Offset;
      C.Size = V.Size;
      C.IsStore = IsStore;
      C.Result = classify(V);
      C.Degraded = Summary.Degraded;
      Summary.Checks.push_back(std::move(C));
    };
    for (LocId L : Loads)
      Record(L, false);
    if (Store)
      Record(StorePtr, true);
  }
  return Summary;
}

CheckerSummary spa::analyzeAndCheck(const Program &Prog) {
  AnalyzerOptions Opts;
  Opts.Engine = EngineKind::Sparse;
  // The checker reads pointer operands from the input buffers, which the
  // bypass contraction would thin out; keep the full buffers.
  Opts.Dep.Bypass = false;
  AnalysisRun Run = analyzeProgram(Prog, Opts);
  return checkBufferOverruns(Prog, Run);
}
