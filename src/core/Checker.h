//===- Checker.h - Buffer-overrun checker ----------------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analyzer client SPARROW exists for: static detection of buffer
/// overruns.  Every dereference (load or store) is checked against the
/// pointer's (offset, size) array tuple; an access is proven safe when
/// 0 ≤ offset and offset < size hold for the whole abstract value.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CORE_CHECKER_H
#define SPA_CORE_CHECKER_H

#include "core/Analyzer.h"

#include <string>
#include <vector>

namespace spa {

/// One checked dereference.
struct AccessCheck {
  PointId P;       ///< The dereferencing point.
  LocId Ptr;       ///< The pointer variable.
  Interval Offset; ///< Abstract offset at the access.
  Interval Size;   ///< Abstract block size at the access.
  bool IsStore = false;
  /// Verdicts: Safe (proved in bounds), Alarm (may be out of bounds),
  /// DefiniteOverrun (every concretization is out of bounds).
  enum class Verdict { Safe, Alarm, DefiniteOverrun } Result;
  /// Provenance: the producing run hit its resource budget and degraded
  /// (the verdict is still sound, but coarser — expect extra alarms).
  bool Degraded = false;

  std::string str(const Program &Prog) const;
};

struct CheckerSummary {
  std::vector<AccessCheck> Checks;
  /// Mirrors AnalysisRun::degraded() of the producing run.
  bool Degraded = false;
  unsigned numSafe() const;
  unsigned numAlarms() const; ///< Alarm + DefiniteOverrun.
};

/// Checks every dereference in \p Prog against the states of \p Run
/// (which must be a Sparse run built with bypass disabled, so the
/// pointer operands are present in the nodes' input buffers; the facade
/// below handles that).
CheckerSummary checkBufferOverruns(const Program &Prog,
                                   const AnalysisRun &Run);

/// Convenience: run the sparse analysis configured for checking and
/// report.
CheckerSummary analyzeAndCheck(const Program &Prog);

} // namespace spa

#endif // SPA_CORE_CHECKER_H
