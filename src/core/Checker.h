//===- Checker.h - Buffer-overrun checker ----------------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analyzer client SPARROW exists for: static detection of buffer
/// overruns.  Every dereference (load or store) is checked against the
/// pointer's (offset, size) array tuple; an access is proven safe when
/// 0 ≤ offset and offset < size hold for the whole abstract value.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CORE_CHECKER_H
#define SPA_CORE_CHECKER_H

#include "core/Analyzer.h"
#include "obs/Provenance.h"

#include <optional>
#include <string>
#include <vector>

namespace spa {

/// One checked dereference.
struct AccessCheck {
  PointId P;       ///< The dereferencing point.
  LocId Ptr;       ///< The pointer variable.
  Interval Offset; ///< Abstract offset at the access.
  Interval Size;   ///< Abstract block size at the access.
  bool IsStore = false;
  /// Verdicts: Safe (proved in bounds), Alarm (may be out of bounds),
  /// DefiniteOverrun (every concretization is out of bounds).
  enum class Verdict { Safe, Alarm, DefiniteOverrun } Result;
  /// Provenance: the producing run hit its resource budget and degraded
  /// (the verdict is still sound, but coarser — expect extra alarms).
  bool Degraded = false;

  std::string str(const Program &Prog) const;
};

struct CheckerSummary {
  std::vector<AccessCheck> Checks;
  /// Mirrors AnalysisRun::degraded() of the producing run.
  bool Degraded = false;
  unsigned numSafe() const;
  unsigned numAlarms() const; ///< Alarm + DefiniteOverrun.
};

/// Checks every dereference in \p Prog against the states of \p Run
/// (which must be a Sparse run built with bypass disabled, so the
/// pointer operands are present in the nodes' input buffers; the facade
/// below handles that).
CheckerSummary checkBufferOverruns(const Program &Prog,
                                   const AnalysisRun &Run);

/// Convenience: run the sparse analysis configured for checking and
/// report.
CheckerSummary analyzeAndCheck(const Program &Prog);

//===----------------------------------------------------------------------===//
// Alarm provenance (docs/OBSERVABILITY.md "Why did this alarm fire?")
//===----------------------------------------------------------------------===//

/// One node of an alarm's backward dependency slice.
struct ProvenanceEntry {
  uint32_t Node = 0;  ///< Sparse-graph node id.
  PointId P;          ///< The node's anchor point.
  uint32_t Depth = 0; ///< BFS distance from the alarm point.
  LocId Via;          ///< Location whose value flowed over the reached edge.
  bool IsPhi = false;
  bool IsWidenPoint = false; ///< Widening applies at this node.
  bool Degraded = false;     ///< Widened to the degradation tier (PR 3).
};

/// The explanation of one alarm: the bounded backward slice of the
/// sparse dependency relation that fed the alarming dereference.
struct AlarmProvenance {
  unsigned AlarmId = 0; ///< 0-based index over the non-Safe checks.
  AccessCheck Check;
  std::vector<ProvenanceEntry> Slice; ///< BFS order; the alarm node first.
  bool Truncated = false;             ///< A bound or the budget cut it short.
  uint64_t EdgesWalked = 0;
  bool TouchesDegraded = false; ///< Any slice node holds a degraded value.
  /// The producing octagon run degraded and the checker consumed its
  /// interval fallback (set by the oct driver, not the walk).
  bool IntervalFallback = false;

  /// Multi-line text for spa-analyze --explain-alarm.
  std::string str(const Program &Prog, const AnalysisRun &Run) const;
};

/// Bounds and budget of a provenance walk.  The producing run's budget
/// token is gone by the time anyone asks for an explanation, so the
/// caller passes a fresh one (or null for an unbudgeted walk).
struct ProvenanceQuery {
  obs::ProvenanceOptions Bounds;
  Budget *Bud = nullptr;
};

/// Explains alarm \p AlarmId — the 0-based index over the non-Safe
/// entries of \p Summary.Checks in order (the numbering spa-analyze
/// prints).  Requires the sparse run that produced \p Summary; returns
/// nullopt when the id is out of range.
std::optional<AlarmProvenance> explainAlarm(const Program &Prog,
                                            const AnalysisRun &Run,
                                            const CheckerSummary &Summary,
                                            unsigned AlarmId,
                                            const ProvenanceQuery &Q = {});

/// Slices for every alarm of \p Summary (the `provenance` array of the
/// ledger JSON export).
std::vector<AlarmProvenance>
collectAlarmProvenance(const Program &Prog, const AnalysisRun &Run,
                       const CheckerSummary &Summary,
                       const ProvenanceQuery &Q = {});

/// Renders slices as the ledger JSON `provenance` array (pretty-printed
/// two-space style matching obs::Ledger::toJson; "[]" when empty).
std::string provenanceJsonArray(const Program &Prog, const AnalysisRun &Run,
                                const std::vector<AlarmProvenance> &Slices);

} // namespace spa

#endif // SPA_CORE_CHECKER_H
