//===- Analyzer.h - End-to-end analyzer facade ----------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-call drivers for the three interval analyzers of Table 2:
///
///   Vanilla — dense engine, no localization (Interval_vanilla);
///   Base    — dense engine + access-based localization (Interval_base);
///   Sparse  — pre-analysis -> D̂/Û -> data dependencies -> sparse engine
///             (Interval_sparse).
///
/// All three share the flow-insensitive pre-analysis, which resolves the
/// callgraph (function pointers) before the main fixpoint.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CORE_ANALYZER_H
#define SPA_CORE_ANALYZER_H

#include "core/DenseAnalysis.h"
#include "core/DepBuilder.h"
#include "core/PreAnalysis.h"
#include "core/SparseAnalysis.h"
#include "obs/Ledger.h"

#include <functional>
#include <memory>
#include <optional>

namespace spa {

enum class EngineKind { Vanilla, Base, Sparse };

/// Octagon value representation (spa-analyze --oct-backend).  Dbm is the
/// dense difference-bound matrix with full strong closure; Split is the
/// sparse split-normal-form graph with incremental closure
/// (src/oct/SplitOct.h).  Both maintain the same tight-closed canonical
/// form, so results are bit-identical; only the cost model differs.
enum class OctBackendKind { Dbm, Split };

struct AnalyzerOptions {
  EngineKind Engine = EngineKind::Sparse;
  SemanticsOptions Sem;
  DepOptions Dep; ///< Sparse engine only.
  /// Pre-analysis flavor (Section 3.2's framework instances: the paper's
  /// own precise pre-analysis, the semi-sparse instance, or the staged
  /// pointer-only instance).
  PreAnalysisKind Pre = PreAnalysisKind::Precise;
  double TimeLimitSec = 0;
  unsigned WideningDelay = 4;
  unsigned NarrowingPasses = 0; ///< Dense engines only.
  /// Resource-governance limits (docs/ROBUSTNESS.md).  When any limit is
  /// set the facade creates one cooperative Budget shared by every phase
  /// (pre-analysis, def/use, dependency build, fixpoint — including
  /// worker lanes); on exhaustion the run *degrades soundly* to the
  /// flow-insensitive pre-analysis invariant instead of timing out.
  /// Unlike TimeLimitSec (which reports an unusable timed-out run), a
  /// degraded run is a complete, sound over-approximation.
  BudgetLimits Budget;
  /// Pool lanes for the parallel phases (def/use collection, per-function
  /// dependency construction, partitioned sparse fixpoint).  Results are
  /// bit-identical for every value; 1 = fully sequential.  0 resolves to
  /// ThreadPool::defaultJobs() (SPA_JOBS or the hardware concurrency).
  unsigned Jobs = 1;
  /// Sparse engine only: invoked between dependency-graph construction
  /// and the main fixpoint, with the partially-filled run (Pre, DU and
  /// Graph are final) and the fully-populated SparseOptions about to be
  /// used.  The incremental server (docs/SERVER.md) hooks here to compute
  /// partition signatures against its cache and set
  /// SparseOptions::RestrictNodes, so untouched partitions never enter a
  /// worklist.  Anything the hook points RestrictNodes at must outlive
  /// the analyzeProgram call.  Null = no hook.
  std::function<void(const struct AnalysisRun &, SparseOptions &)>
      BeforeSparseFix;
  /// Sparse engine only: a dependency graph decoded from a v2 snapshot
  /// (core/DepSnapshot.h) to use instead of running buildDepGraph.  The
  /// graph is *moved out of* — the caller's object is left empty — and
  /// the caller is responsible for having checked depSnapshotUsable()
  /// against this options struct first.  Null = build normally.
  struct SparseGraph *PrebuiltGraph = nullptr;
};

/// Everything one analyzer run produces, with per-phase timing (the
/// Dep/Fix split of Tables 2 and 3).
struct AnalysisRun {
  PreAnalysisResult Pre;
  DefUseInfo DU;
  std::optional<DenseResult> Dense;   ///< Vanilla/Base engines.
  std::optional<SparseGraph> Graph;   ///< Sparse engine.
  std::optional<SparseResult> Sparse; ///< Sparse engine.

  /// Per-phase wall-clock times.  Each phase is measured exactly once:
  /// the pre-analysis (which Vanilla/Base also run, for callgraph
  /// resolution) and def/use computation are timed here, graph build
  /// time lives in Graph->BuildSeconds, and the engines time their own
  /// fixpoint.  The invariant
  ///
  ///   totalSeconds() == PreSeconds + DefUseSeconds + depBuildSeconds()
  ///                     + fixSeconds()
  ///
  /// holds for every engine (pinned by tests/obs_test.cpp), so no phase
  /// is double-counted across the Dep/Fix split.
  double PreSeconds = 0;
  double DefUseSeconds = 0;
  /// Dependency-graph construction time (sparse engine; 0 for dense).
  double depBuildSeconds() const;
  /// Dependency-generation time (pre-analysis + def/use + graph build),
  /// the paper's Dep column.
  double depSeconds() const;
  /// Main fixpoint time, the paper's Fix column.
  double fixSeconds() const;
  double totalSeconds() const { return depSeconds() + fixSeconds(); }
  bool timedOut() const;

  /// Why the budget stopped the run (None when it never tripped or no
  /// budget was configured) and the steps it had consumed by the end.
  BudgetReason BudgetStop = BudgetReason::None;
  uint64_t BudgetSteps = 0;
  /// Any phase fell back to the degradation ladder: the results are
  /// still sound over-approximations, but coarser than a full fixpoint
  /// (the provenance bit Checker/Export/spa-analyze surface).
  bool degraded() const;

  /// Per-point cost ledger of the main fixpoint, attributed to functions
  /// and dependency partitions (docs/OBSERVABILITY.md "Ledger").  Null
  /// when the build compiles observability out (-DSPA_OBS=OFF).
  std::shared_ptr<obs::Ledger> Ledger = nullptr;
};

AnalysisRun analyzeProgram(const Program &Prog, const AnalyzerOptions &Opts);

/// Human label of a ledger/provenance node: the rendered program point,
/// or "phi(loc) @ point" for SSA phi pseudo-nodes.  \p Graph may be null
/// (dense runs: node ids are point ids).
std::string ledgerNodeLabel(const Program &Prog, const SparseGraph *Graph,
                            uint32_t Node);

/// Fills a recorded ledger's attribution (node -> function, node ->
/// dependency partition, function names) and exports the ledger.*
/// summary gauges.  Called by both analyzer facades after the fixpoint;
/// \p Graph null means a dense point-indexed ledger (one partition).
///
/// \p CG, when given with a sparse graph, enables co-attribution of
/// inter-procedural phi nodes: a phi anchored at a function entry (or a
/// return site) carries cost that belongs half to the caller and half to
/// the callee, so its row splits between the owning function and the
/// smallest co-function on the other side of the edge instead of
/// charging the callee alone.  Also publishes the rollup totals to the
/// postmortem writer so crash reports carry the last known ledger state.
void attributeLedger(obs::Ledger &Led, const Program &Prog,
                     const SparseGraph *Graph,
                     const CallGraphInfo *CG = nullptr);

/// Exports the value.pool.* / state.cow.* gauges (interner occupancy and
/// hit rates, COW detach counts; docs/OBSERVABILITY.md).  Called at the
/// end of every analyzer facade; the underlying pools are process-wide,
/// so the values are cumulative across runs in one process.
void exportValueSharingStats();

} // namespace spa

#endif // SPA_CORE_ANALYZER_H
