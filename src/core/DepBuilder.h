//===- DepBuilder.h - Data-dependency generation -------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for the data-dependency graph (Section 5, "Generation of Data
/// Dependencies"):
///
///  * Ssa — per-procedure SSA construction (iterated dominance frontiers
///    + renaming) with D̂/Û as multi-location def/use sets; the default
///    and the paper's choice ("we use SSA generation because it is fast
///    and reduces the size of def-use chains");
///  * ReachingDefs — per-procedure per-location reaching definitions;
///    same dependencies as Ssa but phi-free (more edges), kept for
///    cross-validation and bench/ablation_ssa;
///  * DefUseChains — conventional def-use chains (kills only at
///    always-kill points, Section 2.8): deliberately *loses precision*,
///    reproduced to demonstrate Examples 4 and 5;
///  * WholeProgram — reaching definitions over the whole supergraph with
///    no per-procedure call summaries: the "natural extension" Section 5
///    reports as unscalably spurious (bench/ablation_interproc).
///
/// All builders can post-process with the bypass optimization: contract
/// a ⇝l b ⇝l c to a ⇝l c when b neither semantically defines nor uses l
/// (entries, exits, call plumbing, single-input phis).
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CORE_DEPBUILDER_H
#define SPA_CORE_DEPBUILDER_H

#include "core/DefUse.h"
#include "core/DepGraph.h"
#include "ir/CallGraphInfo.h"
#include "ir/Program.h"

namespace spa {

enum class DepBuilderKind { Ssa, ReachingDefs, DefUseChains, WholeProgram };

struct DepOptions {
  DepBuilderKind Kind = DepBuilderKind::Ssa;
  /// Apply the bypass contraction until convergence (with an edge-growth
  /// guard: a (node, location) pair is only contracted when rewiring does
  /// not increase the edge count).
  bool Bypass = true;
  /// Store the final relation in a BDD instead of adjacency vectors.
  bool UseBdd = false;
  /// Size of the "location" id space when it is not Program::numLocs()
  /// (the relational analysis passes its pack count; 0 = use numLocs).
  uint32_t NumLocsOverride = 0;
  /// Pool lanes for the per-procedure construction phase.  Functions are
  /// independent (intra-procedural SSA / reaching-defs over read-only
  /// def/use sets); per-function edge lists and phi nodes merge in
  /// function order afterwards, so the graph — including phi node
  /// numbering — is identical for every Jobs value.
  unsigned Jobs = 1;
  /// Resource budget (docs/ROBUSTNESS.md), charged per function during
  /// construction (inside worker lanes) and per contraction during
  /// bypass.  Construction itself always completes — a partial graph
  /// would be unsound — but an exhausted budget stops the bypass
  /// optimization early (any prefix of contractions is a valid graph)
  /// and makes the downstream fixpoint degrade immediately.
  Budget *Bud = nullptr;
};

/// Builds the dependency graph for \p Prog under the resolved callgraph
/// and def/use approximations.
SparseGraph buildDepGraph(const Program &Prog, const CallGraphInfo &CG,
                          const DefUseInfo &DU, const DepOptions &Opts);

} // namespace spa

#endif // SPA_CORE_DEPBUILDER_H
