//===- PreAnalysis.cpp - Flow-insensitive pre-analysis -------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/PreAnalysis.h"

#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "support/Fault.h"

using namespace spa;

namespace {

/// State adapter implementing the flow-insensitive join semantics
/// ŝ ← ŝ ⊔ f̂_c(ŝ): every write becomes a join into the global state
/// (widening once the sweep count passes the threshold).  The Staged
/// instance drops the numeric components on every write (a pointer-only
/// auxiliary analysis).
class GlobalState {
public:
  GlobalState(AbsState &S, bool Widen, bool PointerOnly)
      : S(S), Widen(Widen), PointerOnly(PointerOnly) {}

  const Value &get(LocId L) const { return S.get(L); }

  void set(LocId L, Value V) { weakSet(L, V); }

  bool weakSet(LocId L, const Value &V) {
    if (V.isBot())
      return false;
    const Value &Old = S.get(L);
    Value In = V;
    if (PointerOnly && !In.Itv.isBot())
      In.Itv = Interval::top();
    Value New = Widen ? Old.widen(Old.join(In)) : Old.join(In);
    if (New == Old)
      return false;
    S.set(L, std::move(New));
    Changed = true;
    return true;
  }

  bool Changed = false;

private:
  AbsState &S;
  bool Widen;
  bool PointerOnly;
};

/// Semi-sparse coarsening [Hardekopf & Lin, POPL 2009]: values of
/// non-top-level variables (address-taken locations and heap cells) lose
/// their points-to precision — they may point to any address-taken
/// location and any address-taken function.  Top-level variables keep
/// the precise invariant, so sparsity is exploited only for them.
void coarsenNonTopLevel(const Program &Prog, AbsState &Global) {
  PtsSet Universe;
  FuncSet FnUniverse;
  std::vector<bool> NonTopLevel(Prog.numLocs(), false);
  for (uint32_t P = 0; P < Prog.numPoints(); ++P) {
    const Command &Cmd = Prog.point(PointId(P)).Cmd;
    std::vector<const IExpr *> Work;
    if (Cmd.E)
      Work.push_back(Cmd.E.get());
    if (Cmd.Cnd) {
      Work.push_back(Cmd.Cnd->Lhs.get());
      Work.push_back(Cmd.Cnd->Rhs.get());
    }
    for (const auto &A : Cmd.Args)
      Work.push_back(A.get());
    while (!Work.empty()) {
      const IExpr *E = Work.back();
      Work.pop_back();
      if (E->Kind == IExprKind::AddrOf) {
        Universe.insert(E->Loc);
        NonTopLevel[E->Loc.value()] = true;
      }
      if (E->Kind == IExprKind::FuncAddr)
        FnUniverse.insert(E->Func);
      if (E->Kind == IExprKind::Binary) {
        Work.push_back(E->Lhs.get());
        Work.push_back(E->Rhs.get());
      }
    }
    if (Cmd.Kind == CmdKind::Alloc) {
      Universe.insert(Cmd.AllocSite);
      NonTopLevel[Cmd.AllocSite.value()] = true;
    }
  }
  for (uint32_t L = 0; L < Prog.numLocs(); ++L) {
    if (!NonTopLevel[L])
      continue;
    Value V = Global.get(LocId(L));
    if (V.isBot())
      continue;
    V.Itv = Interval::top();
    V.Pts = V.Pts.join(Universe);
    V.Funcs = V.Funcs.join(FnUniverse);
    V.Offset = Interval::top();
    V.Size = Interval::top();
    Global.set(LocId(L), std::move(V));
  }
}

} // namespace

AbsState spa::topAbsState(const Program &Prog) {
  Value Top;
  Top.Itv = Interval::top();
  Top.Offset = Interval::top();
  Top.Size = Interval::top();
  for (uint32_t L = 0; L < Prog.numLocs(); ++L)
    Top.Pts.insert(LocId(L));
  for (uint32_t F = 0; F < Prog.numFuncs(); ++F)
    Top.Funcs.insert(FuncId(F));
  // Each location binds the same interned universe sets, so the state is
  // linear in numLocs: the Top value's PtsSet/FuncSet are single pool
  // nodes and every binding is a 4-byte handle onto them.
  AbsState S;
  S.reserve(Prog.numLocs());
  for (uint32_t L = 0; L < Prog.numLocs(); ++L)
    S.set(LocId(L), Top);
  return S;
}

PreAnalysisResult spa::runPreAnalysis(const Program &Prog,
                                      const SemanticsOptions &Opts,
                                      unsigned WidenAfterSweeps,
                                      PreAnalysisKind Kind, Budget *Bud) {
  AbsState Global;
  // The pre-analysis only joins, so strong updates never apply; force the
  // weak-update semantics regardless of the main analysis options.
  SemanticsOptions PreOpts = Opts;
  PreOpts.StrongUpdates = false;

  uint64_t Sweeps = 0;
  bool Degraded = false;
  SPA_OBS_FIX_SCOPE();
  SPA_OBS_JOURNAL(PartitionBegin, 0, Prog.numPoints());
  for (;;) {
    ++Sweeps;
    GlobalState View(Global, Sweeps > WidenAfterSweeps,
                     Kind == PreAnalysisKind::Staged);
    for (uint32_t P = 0; P < Prog.numPoints(); ++P) {
      // Charged in blocks of 64 points (checked before the block, so an
      // expired budget degrades before any work): per-point atomics are
      // measurable against the cheap flow-insensitive transfers.
      if ((P & 63) == 0) {
        SPA_OBS_HEARTBEAT();
        if (Bud && !Bud->charge(64)) {
          Degraded = true;
          break;
        }
      }
      if ((P & 1023) == 0)
        maybeInjectFault("fixloop");
      applyCommand(Prog, /*CG=*/nullptr, PointId(P), View, PreOpts);
    }
    if (Degraded || !View.Changed)
      break;
  }
  SPA_OBS_JOURNAL(PartitionEnd, 0, Sweeps);

  // Budget exhausted before the sweeps converged: a partially swept
  // Global may still be *under* the invariant (components not yet joined
  // in), so go to the only state that is sound without iterating — all-⊤.
  // That also resolves every indirect call below to all functions.
  if (Degraded) {
    Global = topAbsState(Prog);
    SPA_OBS_JOURNAL(DegradeTier, /*Engine=*/0, Prog.numPoints());
  }

  if (Kind == PreAnalysisKind::SemiSparse)
    coarsenNonTopLevel(Prog, Global);

  // Resolve the callgraph from the invariant (Section 5).
  std::vector<std::vector<FuncId>> Callees(Prog.numPoints());
  for (uint32_t P = 0; P < Prog.numPoints(); ++P) {
    const Command &Cmd = Prog.point(PointId(P)).Cmd;
    if (Cmd.Kind != CmdKind::Call || Cmd.External)
      continue;
    if (Cmd.DirectCallee.isValid()) {
      Callees[P].push_back(Cmd.DirectCallee);
      continue;
    }
    for (FuncId F : Global.get(Cmd.Target).Funcs)
      Callees[P].push_back(F);
  }

  SPA_OBS_GAUGE_SET("pre.sweeps", Sweeps);
  SPA_OBS_GAUGE_SET("pre.degraded", Degraded ? 1 : 0);
  PreAnalysisResult R{std::move(Global),
                      CallGraphInfo(Prog, std::move(Callees)), Sweeps,
                      Degraded};
  SPA_OBS_GAUGE_SET("pre.state_entries", R.Global.size());
  SPA_OBS_GAUGE_SET("callgraph.max_scc", R.CG.maxSccSize());
  return R;
}
