//===- DepBuilder.cpp - Data-dependency generation -----------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/DepBuilder.h"

#include "core/BddDepStorage.h"
#include "ir/Dominators.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Resource.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

using namespace spa;

namespace {

struct RawEdge {
  uint32_t Src;
  LocId L;
  uint32_t Dst;
  friend bool operator<(const RawEdge &A, const RawEdge &B) {
    if (A.Src != B.Src)
      return A.Src < B.Src;
    if (A.L != B.L)
      return A.L < B.L;
    return A.Dst < B.Dst;
  }
  friend bool operator==(const RawEdge &A, const RawEdge &B) {
    return A.Src == B.Src && A.L == B.L && A.Dst == B.Dst;
  }
};

/// Tags phi references inside a function's private edge list before the
/// merge assigns global node ids: PhiLocalBase + (index into
/// FuncOut::Phis).  Point ids stay < 2^31 (they index points), so the
/// high bit is free.
constexpr uint32_t PhiLocalBase = 0x80000000u;

/// One function's construction output.  Per-procedure construction writes
/// only here (plus lane-private scratch), which is what makes the
/// function loop safe to fan out: results merge in function order
/// afterwards, reproducing the sequential phi numbering and edge list
/// exactly (DepOptions::Jobs documentation).
struct FuncOut {
  std::vector<PhiNode> Phis;
  std::vector<RawEdge> Edges;
};

/// Flat per-location renaming stacks, reused across the functions one
/// lane builds (they are empty again after each function's undo-log
/// unwinds).  Hashing here would dominate construction time on
/// summary-heavy programs.
struct SsaScratch {
  std::vector<std::vector<uint32_t>> CurDefStacks;
  std::vector<std::vector<uint32_t>> DefPointsByLoc;
  std::vector<uint32_t> TouchedLocs;

  void ensureLocCapacity(size_t NumIds) {
    if (CurDefStacks.size() < NumIds) {
      CurDefStacks.resize(NumIds);
      DefPointsByLoc.resize(NumIds);
    }
  }
};

class Builder {
public:
  Builder(const Program &Prog, const CallGraphInfo &CG, const DefUseInfo &DU,
          const DepOptions &Opts)
      : Prog(Prog), CG(CG), DU(DU), Opts(Opts) {}

  SparseGraph run() {
    Timer Clock;
    // Pack-space construction (NumLocsOverride) reinterprets "location"
    // ids; the kill analysis of the def-use-chain mode and the
    // supergraph reaching-defs mode still read per-location program
    // metadata, so they only support the location space.
    assert((Opts.NumLocsOverride == 0 ||
            Opts.Kind == DepBuilderKind::Ssa ||
            Opts.Kind == DepBuilderKind::ReachingDefs) &&
           "pack-space graphs support the Ssa/ReachingDefs builders only");
    Graph.NumPoints = static_cast<uint32_t>(Prog.numPoints());
    Graph.NodeDefs = DU.NodeDefs;
    Graph.NodeUses = DU.NodeUses;

    switch (Opts.Kind) {
    case DepBuilderKind::Ssa:
    case DepBuilderKind::ReachingDefs:
    case DepBuilderKind::DefUseChains: {
      size_t NF = Prog.numFuncs();
      bool Ssa = Opts.Kind == DepBuilderKind::Ssa;
      bool Chains = Opts.Kind == DepBuilderKind::DefUseChains;
      std::vector<FuncOut> Outs(NF);
      if (Opts.Jobs > 1) {
        // One span for the whole phase: the tracer's span stack is
        // process-wide, so per-function spans stay off worker lanes.
        SPA_OBS_TRACE(Ssa ? "ssa" : "rd");
        ThreadPool::global().parallelForChunks(
            NF, Opts.Jobs, [&](size_t Lo, size_t Hi) {
              SsaScratch S;
              for (size_t F = Lo; F < Hi; ++F) {
                if (Opts.Bud)
                  Opts.Bud->charge();
                if (Ssa)
                  buildSsaForFunction(FuncId(F), S, Outs[F]);
                else
                  buildRdForFunction(FuncId(F), Chains, Outs[F]);
              }
            });
      } else {
        SsaScratch S;
        for (size_t F = 0; F < NF; ++F) {
          SPA_OBS_TRACE((Ssa ? "ssa:" : "rd:") +
                        Prog.function(FuncId(F)).Name);
          if (Opts.Bud)
            Opts.Bud->charge();
          if (Ssa)
            buildSsaForFunction(FuncId(F), S, Outs[F]);
          else
            buildRdForFunction(FuncId(F), Chains, Outs[F]);
        }
      }
      mergeFunctionResults(Outs);
      addInterProcEdges();
      break;
    }
    case DepBuilderKind::WholeProgram:
      buildWholeProgram();
      break;
    }

    std::sort(EdgeList.begin(), EdgeList.end());
    EdgeList.erase(std::unique(EdgeList.begin(), EdgeList.end()),
                   EdgeList.end());
    Graph.EdgesBeforeBypass = EdgeList.size();

    if (Opts.Bypass && Opts.Kind != DepBuilderKind::WholeProgram) {
      SPA_OBS_TRACE("bypass");
      runBypass();
    }

    uint32_t NumNodes = static_cast<uint32_t>(Graph.numNodes());
    uint32_t NumLocs = Opts.NumLocsOverride
                           ? Opts.NumLocsOverride
                           : static_cast<uint32_t>(Prog.numLocs());
    if (Opts.UseBdd)
      Graph.Edges = std::make_unique<BddDepStorage>(NumNodes, NumLocs);
    else
      Graph.Edges = std::make_unique<SetDepStorage>(NumNodes);
    {
      SPA_OBS_TRACE("dep-storage");
      for (const RawEdge &E : EdgeList)
        Graph.Edges->add(E.Src, E.L, E.Dst);
    }

    SPA_OBS_GAUGE_SET("depgraph.nodes", Graph.numNodes());
    SPA_OBS_GAUGE_SET("depgraph.phis", Graph.Phis.size());
    SPA_OBS_GAUGE_SET("depgraph.edges", Graph.Edges->edgeCount());
    SPA_OBS_GAUGE_SET("depgraph.edges_before_bypass",
                      Graph.EdgesBeforeBypass);
    SPA_OBS_GAUGE_SET("depgraph.bypass_removed", Graph.BypassRemoved);
    SPA_OBS_GAUGE_SET("depgraph.storage_bytes",
                      Graph.Edges->memoryBytes());
    if (Opts.UseBdd)
      SPA_OBS_GAUGE_SET(
          "bdd.nodes",
          static_cast<BddDepStorage *>(Graph.Edges.get())->bddNodeCount());

    Graph.BuildSeconds = Clock.seconds();
    return std::move(Graph);
  }

private:
  void addEdge(uint32_t Src, LocId L, uint32_t Dst) {
    EdgeList.push_back(RawEdge{Src, L, Dst});
  }

  /// Use set of \p P for *local* (intra-procedural) linking.  At a Return
  /// point, every location the callees may define is fed exclusively by
  /// the callee-exit inter-edge — linking it to caller-side definitions
  /// would join stale pre-call values over the callee's results.
  std::vector<LocId> localUses(uint32_t P) const {
    const Command &Cmd = Prog.point(PointId(P)).Cmd;
    if (Cmd.Kind != CmdKind::Return)
      return Graph.NodeUses[P];
    std::vector<LocId> Result;
    for (LocId L : DU.Uses[P]) {
      bool DefinedByCallee = false;
      for (FuncId G : CG.callees(Cmd.Pair)) {
        const auto &AD = DU.AccessDefs[G.value()];
        if (std::binary_search(AD.begin(), AD.end(), L)) {
          DefinedByCallee = true;
          break;
        }
      }
      if (!DefinedByCallee)
        Result.push_back(L);
    }
    return Result;
  }

  //===------------------------------------------------------------------===//
  // SSA-based construction
  //===------------------------------------------------------------------===//

  /// Builds one function's SSA dependencies into \p Out using the
  /// lane-private scratch \p S.  Reads only point-level (never phi-level)
  /// graph data, so concurrent calls on distinct functions are safe.
  void buildSsaForFunction(FuncId F, SsaScratch &S, FuncOut &Out) const {
    const FunctionInfo &Info = Prog.function(F);
    Dominators Dom(Prog, F);
    uint32_t Base = Info.Points.front().value();
    size_t N = Info.Points.size();

    // Definition points per location (local offsets), in flat arrays.
    S.TouchedLocs.clear();
    for (PointId P : Info.Points) {
      for (LocId L : Graph.NodeDefs[P.value()]) {
        S.ensureLocCapacity(L.value() + 1);
        if (S.DefPointsByLoc[L.value()].empty())
          S.TouchedLocs.push_back(L.value());
        S.DefPointsByLoc[L.value()].push_back(P.value() - Base);
      }
    }

    // Phi placement at iterated dominance frontiers.
    // PhiAt[local point] = list of (loc, function-local phi ref).
    std::vector<std::vector<std::pair<LocId, uint32_t>>> PhiAt(N);
    for (uint32_t LRaw : S.TouchedLocs) {
      LocId L(LRaw);
      std::vector<uint32_t> &Defs = S.DefPointsByLoc[LRaw];
      // A location whose only definition is the entry needs no phis: the
      // entry dominates every use.  The interprocedural entry summaries
      // put most locations of call-heavy functions in this class, so
      // this prune is what keeps SSA construction near-linear.  (A single
      // non-entry definition still needs phis: it may reach uses it does
      // not dominate, through joins.)
      if (Defs.size() == 1 && PointId(Base + Defs[0]) == Info.Entry)
        continue;
      std::vector<uint32_t> Work = Defs;
      std::vector<bool> HasPhi(N, false);
      while (!Work.empty()) {
        uint32_t D = Work.back();
        Work.pop_back();
        for (PointId J : Dom.frontier(PointId(Base + D))) {
          uint32_t JL = J.value() - Base;
          if (HasPhi[JL])
            continue;
          HasPhi[JL] = true;
          uint32_t Node =
              PhiLocalBase + static_cast<uint32_t>(Out.Phis.size());
          Out.Phis.push_back(PhiNode{J, L});
          PhiAt[JL].push_back({L, Node});
          Work.push_back(JL); // A phi is itself a definition.
        }
      }
    }

    // Renaming: explicit-stack preorder walk of the dominator tree with
    // flat per-location current-definition stacks and an undo log.
    auto Push = [&](LocId L, uint32_t Node) {
      S.ensureLocCapacity(L.value() + 1);
      S.CurDefStacks[L.value()].push_back(Node);
    };
    auto Top = [&](LocId L) -> uint32_t {
      if (L.value() >= S.CurDefStacks.size() ||
          S.CurDefStacks[L.value()].empty())
        return UINT32_MAX;
      return S.CurDefStacks[L.value()].back();
    };

    struct Frame {
      PointId P;
      size_t NextChild = 0;
      uint32_t Pushes = 0;
    };
    std::vector<Frame> Stack;
    std::vector<LocId> UndoLog;

    auto EnterNode = [&](PointId P) {
      Frame Fr;
      Fr.P = P;
      uint32_t PL = P.value() - Base;
      // Phi definitions precede the point's own command.
      for (auto &[L, PhiNd] : PhiAt[PL]) {
        Push(L, PhiNd);
        UndoLog.push_back(L);
        ++Fr.Pushes;
      }
      // Uses read the incoming values.
      for (LocId L : localUses(P.value())) {
        uint32_t Def = Top(L);
        if (Def != UINT32_MAX)
          Out.Edges.push_back(RawEdge{Def, L, P.value()});
      }
      // Then the point's definitions become current.
      for (LocId L : Graph.NodeDefs[P.value()]) {
        Push(L, P.value());
        UndoLog.push_back(L);
        ++Fr.Pushes;
      }
      // Feed phi operands of CFG successors.
      for (PointId Succ : Prog.succs(P)) {
        for (auto &[L, PhiNd] : PhiAt[Succ.value() - Base]) {
          uint32_t Def = Top(L);
          if (Def != UINT32_MAX)
            Out.Edges.push_back(RawEdge{Def, L, PhiNd});
        }
      }
      Stack.push_back(Fr);
    };

    EnterNode(Info.Entry);
    while (!Stack.empty()) {
      Frame &Fr = Stack.back();
      const auto &Kids = Dom.children(Fr.P);
      if (Fr.NextChild < Kids.size()) {
        EnterNode(Kids[Fr.NextChild++]);
        continue;
      }
      for (uint32_t I = 0; I < Fr.Pushes; ++I) {
        S.CurDefStacks[UndoLog.back().value()].pop_back();
        UndoLog.pop_back();
      }
      Stack.pop_back();
    }

    // Reset the lane's def-point arrays for its next function.
    for (uint32_t LRaw : S.TouchedLocs)
      S.DefPointsByLoc[LRaw].clear();
  }

  //===------------------------------------------------------------------===//
  // Reaching-definitions construction (per procedure)
  //===------------------------------------------------------------------===//

  /// True if the command at \p P kills *every* prior value of \p L along
  /// all executions (the Dalways of Section 2.8).
  bool alwaysKills(PointId P, LocId L) const {
    const Command &Cmd = Prog.point(P).Cmd;
    switch (Cmd.Kind) {
    case CmdKind::Assign:
    case CmdKind::RetStmt:
      return Cmd.Target == L;
    case CmdKind::Return:
      return Cmd.Target.isValid() && Cmd.Target == L;
    case CmdKind::Store: {
      const auto &D = DU.Defs[P.value()];
      return D.size() == 1 && D[0] == L && !Prog.loc(L).isSummary();
    }
    default:
      return false;
    }
  }

  /// Builds one function's reaching-definition dependencies into \p Out.
  /// All mutable state is local, so concurrent calls on distinct
  /// functions are safe.
  void buildRdForFunction(FuncId F, bool DefUseChainMode,
                          FuncOut &Out) const {
    const FunctionInfo &Info = Prog.function(F);
    uint32_t Base = Info.Points.front().value();
    size_t N = Info.Points.size();

    // Gather per-location def and use point lists.
    std::unordered_map<uint32_t, std::vector<uint32_t>> DefsOf, UsesOf;
    for (PointId P : Info.Points) {
      for (LocId L : Graph.NodeDefs[P.value()])
        DefsOf[L.value()].push_back(P.value() - Base);
      for (LocId L : localUses(P.value()))
        UsesOf[L.value()].push_back(P.value() - Base);
    }

    // Local RPO for iteration order.
    Dominators Dom(Prog, F);

    for (auto &[LRaw, Defs] : DefsOf) {
      LocId L(LRaw);
      auto UseIt = UsesOf.find(LRaw);
      if (UseIt == UsesOf.end())
        continue;

      size_t ND = Defs.size();
      size_t Words = (ND + 63) / 64;
      std::vector<uint64_t> In(N * Words, 0), OutBits(N * Words, 0);
      std::vector<int32_t> DefIndexAt(N, -1);
      for (size_t I = 0; I < ND; ++I)
        DefIndexAt[Defs[I]] = static_cast<int32_t>(I);

      bool Changed = true;
      while (Changed) {
        Changed = false;
        for (PointId P : Dom.rpo()) {
          uint32_t PL = P.value() - Base;
          uint64_t *InP = &In[PL * Words];
          for (PointId Pred : Prog.preds(P)) {
            const uint64_t *OutPred =
                &OutBits[(Pred.value() - Base) * Words];
            for (size_t W = 0; W < Words; ++W)
              InP[W] |= OutPred[W];
          }
          // Transfer: kill then gen.
          uint64_t *OutP = &OutBits[PL * Words];
          bool Kills = DefIndexAt[PL] >= 0 &&
                       (!DefUseChainMode || alwaysKills(P, L));
          for (size_t W = 0; W < Words; ++W) {
            uint64_t NewOut = Kills ? 0 : InP[W];
            if (DefIndexAt[PL] >= 0 &&
                static_cast<size_t>(DefIndexAt[PL]) / 64 == W)
              NewOut |= 1ULL << (DefIndexAt[PL] % 64);
            if (NewOut != OutP[W]) {
              OutP[W] = NewOut;
              Changed = true;
            }
          }
        }
      }

      // A use at point u links to every definition reaching u's input.
      for (uint32_t U : UseIt->second) {
        const uint64_t *InU = &In[U * Words];
        for (size_t I = 0; I < ND; ++I)
          if (InU[I / 64] & (1ULL << (I % 64)))
            Out.Edges.push_back(RawEdge{Base + Defs[I], L, Base + U});
      }
    }
  }

  /// Splices the per-function outputs into the graph in function order:
  /// function F's local phi k becomes global node NumPoints + (phis of
  /// functions before F) + k — exactly the id the sequential interleaved
  /// construction would have assigned — and edge lists concatenate with
  /// phi references remapped accordingly.
  void mergeFunctionResults(const std::vector<FuncOut> &Outs) {
    size_t TotalPhis = 0, TotalEdges = 0;
    for (const FuncOut &O : Outs) {
      TotalPhis += O.Phis.size();
      TotalEdges += O.Edges.size();
    }
    Graph.Phis.reserve(TotalPhis);
    Graph.NodeDefs.reserve(Graph.NumPoints + TotalPhis);
    Graph.NodeUses.reserve(Graph.NumPoints + TotalPhis);
    EdgeList.reserve(EdgeList.size() + TotalEdges);
    for (const FuncOut &O : Outs) {
      uint32_t Base =
          Graph.NumPoints + static_cast<uint32_t>(Graph.Phis.size());
      for (const PhiNode &Ph : O.Phis) {
        Graph.Phis.push_back(Ph);
        Graph.NodeDefs.push_back({Ph.L});
        Graph.NodeUses.push_back({Ph.L});
      }
      auto Remap = [&](uint32_t N) {
        return N >= PhiLocalBase ? Base + (N - PhiLocalBase) : N;
      };
      for (const RawEdge &E : O.Edges)
        EdgeList.push_back(RawEdge{Remap(E.Src), E.L, Remap(E.Dst)});
    }
  }

  //===------------------------------------------------------------------===//
  // Whole-supergraph construction (ablation)
  //===------------------------------------------------------------------===//

  /// Reaching definitions over the entire supergraph using the semantic
  /// D̂/Û only (no call/entry summaries): Section 5's "natural extension"
  /// whose spurious interprocedural dependencies do not scale.
  void buildWholeProgram() {
    size_t N = Prog.numPoints();
    Graph.NodeDefs = DU.Defs;
    Graph.NodeUses = DU.Uses;

    std::unordered_map<uint32_t, std::vector<uint32_t>> DefsOf, UsesOf;
    for (uint32_t P = 0; P < N; ++P) {
      for (LocId L : DU.Defs[P])
        DefsOf[L.value()].push_back(P);
      for (LocId L : DU.Uses[P])
        UsesOf[L.value()].push_back(P);
    }

    std::vector<uint32_t> Rpo = computeSuperRpo(Prog, CG);
    std::vector<uint32_t> Order(N);
    for (uint32_t P = 0; P < N; ++P)
      Order[Rpo[P]] = P;

    for (auto &[LRaw, Defs] : DefsOf) {
      LocId L(LRaw);
      auto UseIt = UsesOf.find(LRaw);
      if (UseIt == UsesOf.end())
        continue;

      size_t ND = Defs.size();
      size_t Words = (ND + 63) / 64;
      std::vector<uint64_t> In(N * Words, 0), Out(N * Words, 0);
      std::vector<int32_t> DefIndexAt(N, -1);
      for (size_t I = 0; I < ND; ++I)
        DefIndexAt[Defs[I]] = static_cast<int32_t>(I);

      bool Changed = true;
      while (Changed) {
        Changed = false;
        for (uint32_t P : Order) {
          uint64_t *InP = &In[P * Words];
          CG.forEachSuperPred(Prog, PointId(P), [&](PointId Pred) {
            const uint64_t *OutPred = &Out[Pred.value() * Words];
            for (size_t W = 0; W < Words; ++W)
              InP[W] |= OutPred[W];
          });
          uint64_t *OutP = &Out[P * Words];
          bool Kills = DefIndexAt[P] >= 0;
          for (size_t W = 0; W < Words; ++W) {
            uint64_t NewOut = Kills ? 0 : InP[W];
            if (DefIndexAt[P] >= 0 &&
                static_cast<size_t>(DefIndexAt[P]) / 64 == W)
              NewOut |= 1ULL << (DefIndexAt[P] % 64);
            if (NewOut != OutP[W]) {
              OutP[W] = NewOut;
              Changed = true;
            }
          }
        }
      }

      for (uint32_t U : UseIt->second) {
        const uint64_t *InU = &In[U * Words];
        for (size_t I = 0; I < ND; ++I)
          if (InU[I / 64] & (1ULL << (I % 64)))
            addEdge(Defs[I], L, U);
      }
    }
  }

  //===------------------------------------------------------------------===//
  // Interprocedural linking (per-procedure modes)
  //===------------------------------------------------------------------===//

  void addInterProcEdges() {
    for (uint32_t P = 0; P < Prog.numPoints(); ++P) {
      const Command &Cmd = Prog.point(PointId(P)).Cmd;
      if (Cmd.Kind != CmdKind::Call)
        continue;
      for (FuncId G : CG.callees(PointId(P))) {
        const FunctionInfo &Callee = Prog.function(G);
        // Values the callee uses or may define flow call site -> entry
        // (may-defined locations need their pre-call value on the paths
        // that do not define them).
        for (LocId L : DU.AccessUses[G.value()])
          addEdge(P, L, Callee.Entry.value());
        for (LocId L : DU.AccessDefs[G.value()])
          addEdge(P, L, Callee.Entry.value());
        // Values defined by the callee flow exit -> return site.
        for (LocId L : DU.AccessDefs[G.value()])
          addEdge(Callee.Exit.value(), L, Cmd.Pair.value());
      }
    }
  }

  //===------------------------------------------------------------------===//
  // Bypass optimization
  //===------------------------------------------------------------------===//

  /// True when node \p N neither semantically defines nor uses \p L, i.e.
  /// its transfer is the identity on L (phi joins, entry/exit/call
  /// plumbing): the contraction precondition of Section 5.
  bool isPseudoOccurrence(uint32_t N, LocId L) const {
    if (Graph.isPhi(N))
      return true;
    return !DU.isSemanticDef(PointId(N), L) &&
           !DU.isSemanticUse(PointId(N), L);
  }

  void runBypass() {
    // Index edges by (node, loc) packed into one 64-bit key.
    auto Key = [](uint32_t N, LocId L) {
      return (static_cast<uint64_t>(N) << 32) | L.value();
    };
    struct NodeLocEdges {
      std::vector<uint32_t> In, Out;
    };
    std::unordered_map<uint64_t, NodeLocEdges> Index;
    for (const RawEdge &E : EdgeList) {
      Index[Key(E.Dst, E.L)].In.push_back(E.Src);
      Index[Key(E.Src, E.L)].Out.push_back(E.Dst);
    }
    auto SortUnique = [](std::vector<uint32_t> &V) {
      std::sort(V.begin(), V.end());
      V.erase(std::unique(V.begin(), V.end()), V.end());
    };
    for (auto &[K, E] : Index) {
      SortUnique(E.In);
      SortUnique(E.Out);
    }
    auto EraseFrom = [](std::vector<uint32_t> &V, uint32_t X) {
      auto It = std::lower_bound(V.begin(), V.end(), X);
      if (It != V.end() && *It == X)
        V.erase(It);
    };
    auto InsertInto = [](std::vector<uint32_t> &V, uint32_t X) {
      auto It = std::lower_bound(V.begin(), V.end(), X);
      if (It == V.end() || *It != X)
        V.insert(It, X);
    };

    uint64_t Before = EdgeList.size();
    std::vector<std::pair<uint32_t, LocId>> Work;
    for (auto &[K, E] : Index)
      Work.push_back({static_cast<uint32_t>(K >> 32),
                      LocId(static_cast<uint32_t>(K & 0xffffffffu))});

    uint64_t Pops = 0;
    while (!Work.empty()) {
      // An exhausted budget stops contracting: every prefix of the
      // contraction sequence leaves a valid (just less contracted)
      // dependency graph.  Charged in blocks of 64 pops — this loop is
      // hot enough that a per-pop atomic shows up in the guard-overhead
      // bench — so the check interval stays bounded at 64.
      if (Opts.Bud && (Pops++ & 63) == 0 && !Opts.Bud->charge(64))
        break;
      auto [N, L] = Work.back();
      Work.pop_back();
      if (!isPseudoOccurrence(N, L))
        continue;
      auto It = Index.find(Key(N, L));
      if (It == Index.end())
        continue;
      NodeLocEdges &E = It->second;
      size_t InN = E.In.size(), OutN = E.Out.size();
      if (InN == 0 && OutN == 0)
        continue;
      // Contract only when rewiring does not grow the edge count.  A
      // dangling side (no producers or no consumers) always contracts.
      bool Shrinks = InN == 0 || OutN == 0 || InN * OutN <= InN + OutN;
      if (!Shrinks)
        continue;
      std::vector<uint32_t> Ins = E.In, Outs = E.Out;
      // Detach N for L.
      for (uint32_t S : Ins) {
        EraseFrom(Index[Key(S, L)].Out, N);
        Work.push_back({S, L});
      }
      for (uint32_t D : Outs) {
        EraseFrom(Index[Key(D, L)].In, N);
        Work.push_back({D, L});
      }
      E.In.clear();
      E.Out.clear();
      // Rewire around it.
      for (uint32_t S : Ins) {
        for (uint32_t D : Outs) {
          if (S == N || D == N)
            continue;
          InsertInto(Index[Key(S, L)].Out, D);
          InsertInto(Index[Key(D, L)].In, S);
        }
      }
    }

    EdgeList.clear();
    for (auto &[K, E] : Index) {
      uint32_t Src = static_cast<uint32_t>(K >> 32);
      LocId L(static_cast<uint32_t>(K & 0xffffffffu));
      for (uint32_t Dst : E.Out)
        EdgeList.push_back(RawEdge{Src, L, Dst});
    }
    std::sort(EdgeList.begin(), EdgeList.end());
    EdgeList.erase(std::unique(EdgeList.begin(), EdgeList.end()),
                   EdgeList.end());
    Graph.BypassRemoved =
        Before > EdgeList.size() ? Before - EdgeList.size() : 0;
  }

  const Program &Prog;
  const CallGraphInfo &CG;
  const DefUseInfo &DU;
  const DepOptions &Opts;
  SparseGraph Graph;
  std::vector<RawEdge> EdgeList;
};

} // namespace

SparseGraph spa::buildDepGraph(const Program &Prog, const CallGraphInfo &CG,
                               const DefUseInfo &DU, const DepOptions &Opts) {
  return Builder(Prog, CG, DU, Opts).run();
}
