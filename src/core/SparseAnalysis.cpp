//===- SparseAnalysis.cpp - Sparse fixpoint engine -----------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/SparseAnalysis.h"

#include "obs/Metrics.h"
#include "support/Resource.h"
#include "support/WorkList.h"

#include <algorithm>

using namespace spa;

namespace {

/// Read-only state view over a node's input buffer, usable with the
/// semantics templates.
class InputView {
public:
  explicit InputView(const AbsState &S) : S(S) {}
  const Value &get(LocId L) const { return S.get(L); }

private:
  const AbsState &S;
};

/// Mutable working state for a node's transfer: reads fall back to the
/// input buffer; writes land in an overlay.  The node's new output is the
/// overlay merged over the input, restricted to its def set.
class WorkingState {
public:
  explicit WorkingState(const AbsState &In) : In(In) {}

  const Value &get(LocId L) const {
    const Value *V = Overlay.lookup(L);
    return V ? *V : In.get(L);
  }

  void set(LocId L, Value V) { Overlay.set(L, std::move(V)); }

  bool weakSet(LocId L, const Value &V) {
    if (V.isBot())
      return false;
    Value Merged = get(L);
    if (!Merged.joinWith(V))
      return false;
    Overlay.set(L, std::move(Merged));
    return true;
  }

  /// Extracts the output partial state over \p Defs: overlay values where
  /// written, input passthrough otherwise (the identity on spurious
  /// definitions).
  AbsState extract(const std::vector<LocId> &Defs) const {
    AbsState Out;
    for (LocId L : Defs) {
      const Value &V = get(L);
      if (!V.isBot())
        Out.set(L, V);
    }
    return Out;
  }

private:
  const AbsState &In;
  FlatMap<LocId, Value> Overlay;
};

} // namespace

SparseResult spa::runSparseAnalysis(const Program &Prog,
                                    const CallGraphInfo &CG,
                                    const SparseGraph &Graph,
                                    const SparseOptions &Opts) {
  SparseResult R;
  size_t N = Graph.numNodes();
  R.In.resize(N);
  R.Out.resize(N);

  // Node priorities: the anchor point's supergraph RPO index (phi nodes
  // schedule with their join point).
  // Phi nodes logically execute just before their join point, so they get
  // a slightly smaller priority; otherwise the phi -> join-point edge
  // would look retreating and trigger spurious widening.
  std::vector<uint32_t> PointRpo = computeSuperRpo(Prog, CG);
  std::vector<uint32_t> Prio(N);
  for (uint32_t I = 0; I < N; ++I) {
    uint32_t R2 = 2 * PointRpo[Graph.anchor(I).value()] + 1;
    Prio[I] = Graph.isPhi(I) ? R2 - 1 : R2;
  }

  // Widening nodes: loop heads / recursive entries and their phis.
  std::vector<bool> WidenPoint = computeWideningPoints(Prog, CG);
  std::vector<bool> WidenNode(N);
  for (uint32_t I = 0; I < N; ++I)
    WidenNode[I] = WidenPoint[Graph.anchor(I).value()];

  WorkList WL(Prio);
  // Every node runs at least once: constants and ⊥-input effects must
  // materialize even with no incoming dependencies (the fixpoint applies
  // F̂_s at every point).
  for (uint32_t I = 0; I < N; ++I)
    WL.push(I);

  // Changing-arrival counts per (node, location) for delayed widening.
  std::vector<FlatMap<LocId, uint32_t>> ArrivalCount(N);

  Timer Clock;
  while (!WL.empty()) {
    if (Opts.TimeLimitSec > 0 && (R.Visits & 1023) == 0 &&
        Clock.seconds() > Opts.TimeLimitSec) {
      R.TimedOut = true;
      break;
    }
    uint32_t Node = WL.pop();
    ++R.Visits;

    // Transfer.
    AbsState NewOut;
    if (Graph.isPhi(Node)) {
      // A phi is the identity on its location: output = joined input.
      const PhiNode &Phi = Graph.phi(Node);
      const Value &V = R.In[Node].get(Phi.L);
      if (!V.isBot())
        NewOut.set(Phi.L, V);
    } else {
      WorkingState WS(R.In[Node]);
      applyCommand(Prog, &CG, PointId(Node), WS, Opts.Sem);
      NewOut = WS.extract(Graph.NodeDefs[Node]);
    }

    // Publish changed locations along dependency edges.
    AbsState &Out = R.Out[Node];
    std::vector<LocId> ChangedLocs;
    for (const auto &[L, V] : NewOut)
      if (Out.weakSet(L, V))
        ChangedLocs.push_back(L);
    if (ChangedLocs.empty())
      continue;

    Graph.Edges->forEachOut(Node, [&](LocId L, uint32_t Dst) {
      if (!std::binary_search(ChangedLocs.begin(), ChangedLocs.end(), L))
        return;
      const Value &V = Out.get(L);
      // Widening must cut every dependency cycle: it applies (after the
      // configured delay) at loop-head/recursion nodes and on retreating
      // edges (source scheduled at or after the target).
      bool CutsCycle = WidenNode[Dst] || Prio[Node] >= Prio[Dst];
      AbsState &InDst = R.In[Dst];
      const Value &Old = InDst.get(L);
      bool DoWiden = false;
      if (CutsCycle) {
        uint32_t &Count = ArrivalCount[Dst].getOrCreate(L);
        DoWiden = Count >= Opts.WideningDelay;
      }
      if (DoWiden)
        SPA_OBS_COUNT("fixpoint.widenings", 1);
      else
        SPA_OBS_COUNT("fixpoint.joins", 1);
      Value New = DoWiden ? Old.widen(Old.join(V)) : Old.join(V);
      if (New == Old)
        return;
      if (CutsCycle)
        ++ArrivalCount[Dst].getOrCreate(L);
      SPA_OBS_COUNT("fixpoint.deliveries", 1);
      InDst.set(L, std::move(New));
      WL.push(Dst);
    });
  }

  for (const AbsState &S : R.In)
    R.StateEntries += S.size();
  for (const AbsState &S : R.Out)
    R.StateEntries += S.size();
  R.Seconds = Clock.seconds();
  SPA_OBS_COUNT("fixpoint.visits", R.Visits);
  SPA_OBS_GAUGE_SET("fixpoint.state_entries", R.StateEntries);
  return R;
}
