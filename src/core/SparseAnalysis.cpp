//===- SparseAnalysis.cpp - Sparse fixpoint engine -----------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
//
// Parallel execution model (docs/PARALLELISM.md): the dependency graph
// decomposes into connected components of the cross-procedure edge
// relation (functions tied by an interprocedural dependency — shared
// location footprints routed through call/entry/exit summaries — land in
// one component, as do whole callgraph SCCs).  No dependency edge crosses
// components, so each component is a closed fixpoint subsystem: in the
// sequential schedule, the pop subsequence restricted to a component is
// exactly what a per-component worklist would pop, and the per-node
// results — including widening decisions, which only consult per-(node,
// location) arrival counts — are therefore *bit-identical* under any
// assignment of components to shards.  Typical programs where main
// (transitively) touches every function collapse to one component; the
// engine then falls back to the sequential global worklist.
//
//===----------------------------------------------------------------------===//

#include "core/SparseAnalysis.h"

#include "core/PreAnalysis.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "support/Fault.h"
#include "support/Resource.h"
#include "support/ThreadPool.h"
#include "support/WorkList.h"

#include <algorithm>
#include <atomic>
#include <numeric>

using namespace spa;

namespace {

/// Read-only state view over a node's input buffer, usable with the
/// semantics templates.
class InputView {
public:
  explicit InputView(const AbsState &S) : S(S) {}
  const Value &get(LocId L) const { return S.get(L); }

private:
  const AbsState &S;
};

/// Mutable working state for a node's transfer: reads fall back to the
/// input buffer; writes land in an overlay.  The node's new output is the
/// overlay merged over the input, restricted to its def set.
class WorkingState {
public:
  explicit WorkingState(const AbsState &In) : In(In) {}

  const Value &get(LocId L) const {
    const Value *V = Overlay.lookup(L);
    return V ? *V : In.get(L);
  }

  void set(LocId L, Value V) { Overlay.set(L, std::move(V)); }

  bool weakSet(LocId L, const Value &V) {
    if (V.isBot())
      return false;
    Value Merged = get(L);
    if (!Merged.joinWith(V))
      return false;
    Overlay.set(L, std::move(Merged));
    return true;
  }

  /// Extracts the output partial state over \p Defs: overlay values where
  /// written, input passthrough otherwise (the identity on spurious
  /// definitions).  Consumes the overlay: written values are moved out,
  /// not copied — this runs once per node visit, so the copy churn of
  /// points-to vectors inside Value would otherwise dominate allocation.
  AbsState extract(const std::vector<LocId> &Defs) {
    AbsState Out;
    Out.reserve(Defs.size());
    // Defs is sorted, so each set() appends at the end in O(1).
    for (LocId L : Defs) {
      if (Value *OV = Overlay.lookup(L)) {
        if (!OV->isBot())
          Out.set(L, std::move(*OV));
      } else {
        const Value &V = In.get(L);
        if (!V.isBot())
          Out.set(L, V);
      }
    }
    return Out;
  }

private:
  const AbsState &In;
  FlatMap<LocId, Value> Overlay;
};

/// Shards of graph nodes with no dependency edges between shards.  Each
/// shard's node list is ascending.  Returns a single shard holding every
/// node when \p Jobs <= 1 or the graph is one component.  When
/// \p Restrict is set (a union of whole components, ascending), only the
/// restricted nodes are sharded; the rest never enter any worklist.
std::vector<std::vector<uint32_t>>
partitionNodes(const Program &Prog, const SparseGraph &Graph, unsigned Jobs,
               const std::vector<uint32_t> *Restrict) {
  size_t N = Graph.numNodes();
  auto AllNodes = [&] {
    std::vector<std::vector<uint32_t>> One(1);
    if (Restrict) {
      One[0] = *Restrict;
    } else {
      One[0].resize(N);
      std::iota(One[0].begin(), One[0].end(), 0);
    }
    return One;
  };
  if (Jobs <= 1 || Prog.numFuncs() <= 1)
    return AllNodes();

  // Components of the function graph induced by dependency edges (the
  // same computation the ledger attributes partition rows by).
  DepComponents DC = computeDepComponents(Prog, Graph);
  size_t NumComps = DC.NumComps;
  SPA_OBS_GAUGE_SET("par.fix.partitions", NumComps);
  if (NumComps <= 1)
    return AllNodes();
  const std::vector<uint32_t> &CompOfNode = DC.CompOfNode;
  std::vector<bool> InSet;
  if (Restrict) {
    InSet.assign(N, false);
    for (uint32_t Node : *Restrict)
      InSet[Node] = true;
  }
  auto Included = [&](uint32_t Node) { return !Restrict || InSet[Node]; };
  std::vector<uint32_t> CompSize(NumComps, 0);
  for (uint32_t Node = 0; Node < N; ++Node)
    if (Included(Node))
      ++CompSize[CompOfNode[Node]];

  // Greedy balance: biggest components first onto the least-loaded
  // shard.  Deterministic (ties by id / shard index), though any
  // assignment yields identical analysis results.
  size_t NumShards = std::min<size_t>(Jobs, NumComps);
  std::vector<uint32_t> Order(NumComps);
  std::iota(Order.begin(), Order.end(), 0);
  std::stable_sort(Order.begin(), Order.end(), [&](uint32_t A, uint32_t B) {
    return CompSize[A] > CompSize[B];
  });
  std::vector<size_t> Load(NumShards, 0);
  std::vector<uint32_t> ShardOfComp(NumComps);
  for (uint32_t C : Order) {
    size_t Best = 0;
    for (size_t S = 1; S < NumShards; ++S)
      if (Load[S] < Load[Best])
        Best = S;
    ShardOfComp[C] = static_cast<uint32_t>(Best);
    Load[Best] += CompSize[C];
  }

  std::vector<std::vector<uint32_t>> Shards(NumShards);
  for (size_t S = 0; S < NumShards; ++S)
    Shards[S].reserve(Load[S]);
  for (uint32_t Node = 0; Node < N; ++Node)
    if (Included(Node))
      Shards[ShardOfComp[CompOfNode[Node]]].push_back(Node);
  return Shards;
}

/// Ledger growth units of a value step Old -> New: clamped-positive set
/// cardinality deltas (points-to and callee sets) plus one unit per
/// interval component that moved.  A pure function of the two values, so
/// the per-node totals are deterministic across job counts.
uint64_t growthUnits(const Value &Old, const Value &New) {
  uint64_t G = 0;
  if (New.Pts.size() > Old.Pts.size())
    G += New.Pts.size() - Old.Pts.size();
  if (New.Funcs.size() > Old.Funcs.size())
    G += New.Funcs.size() - Old.Funcs.size();
  if (!(New.Itv == Old.Itv))
    ++G;
  if (!(New.Offset == Old.Offset))
    ++G;
  if (!(New.Size == Old.Size))
    ++G;
  return G;
}

} // namespace

SparseResult spa::runSparseAnalysis(const Program &Prog,
                                    const CallGraphInfo &CG,
                                    const SparseGraph &Graph,
                                    const SparseOptions &Opts) {
  SparseResult R;
  size_t N = Graph.numNodes();
  R.In.resize(N);
  R.Out.resize(N);

  // Cost ledger: one row per graph node, written only by the shard that
  // owns the node, so counts are race-free and jobs-independent.  The
  // conditional folds to `nullptr` under -DSPA_OBS=OFF, compiling every
  // recording site below out.
  obs::Ledger *Led = obs::LedgerEnabled ? Opts.Led : nullptr;
  if (Led)
    Led->resize(static_cast<uint32_t>(N));

  // Node priorities: the anchor point's supergraph RPO index (phi nodes
  // schedule with their join point).
  // Phi nodes logically execute just before their join point, so they get
  // a slightly smaller priority; otherwise the phi -> join-point edge
  // would look retreating and trigger spurious widening.
  std::vector<uint32_t> PointRpo = computeSuperRpo(Prog, CG);
  std::vector<uint32_t> Prio(N);
  for (uint32_t I = 0; I < N; ++I) {
    uint32_t R2 = 2 * PointRpo[Graph.anchor(I).value()] + 1;
    Prio[I] = Graph.isPhi(I) ? R2 - 1 : R2;
  }

  // Widening nodes: loop heads / recursive entries and their phis.
  std::vector<bool> WidenPoint = computeWideningPoints(Prog, CG);
  std::vector<bool> WidenNode(N);
  for (uint32_t I = 0; I < N; ++I)
    WidenNode[I] = WidenPoint[Graph.anchor(I).value()];

  // Changing-arrival counts per (node, location) for delayed widening.
  std::vector<FlatMap<LocId, uint32_t>> ArrivalCount(N);

  // One worklist loop over a closed node set (no dependency edges leave
  // it).  Shards touch disjoint slices of R.In/R.Out/ArrivalCount, so
  // concurrent shard loops share those arrays without synchronization.
  std::atomic<bool> TimedOut{false};
  std::atomic<bool> Degraded{false};
  auto RunShard = [&](size_t ShardIdx, const std::vector<uint32_t> &Nodes,
                      uint64_t &VisitsOut,
                      std::vector<uint32_t> &PendingOut) {
    // Flight-recorder scope: the watchdog monitors this lane's
    // heartbeat only while it is inside the loop below.
    SPA_OBS_FIX_SCOPE();
    obs::journalSetPartition(ShardIdx);
    SPA_OBS_JOURNAL(PartitionBegin, ShardIdx, Nodes.size());
    WorkList WL(Prio);
    // Every node runs at least once: constants and ⊥-input effects must
    // materialize even with no incoming dependencies (the fixpoint
    // applies F̂_s at every point).
    for (uint32_t I : Nodes)
      WL.push(I);

    uint64_t Visits = 0;
    uint64_t LastSampleUs = 0;
    uint64_t Widenings = 0;
    Timer Clock;
    while (!WL.empty()) {
      SPA_OBS_HEARTBEAT();
      if ((Visits & 1023) == 0) {
        // Amortized stall-context refresh plus the in-fixpoint fault
        // checkpoint (SPA_FAULT=stall@fixloop hangs exactly here,
        // between heartbeats, which is what the watchdog catches).
        obs::journalSetWorklistDepth(WL.size());
        maybeInjectFault("fixloop");
      }
      if (Opts.TimeLimitSec > 0 && (Visits & 1023) == 0 &&
          Clock.seconds() > Opts.TimeLimitSec) {
        TimedOut.store(true, std::memory_order_relaxed);
        break;
      }
      // One budget step per visit, checked before the pop: the shared
      // token is sticky, so once any shard trips every shard stops at
      // its next visit and records its pending frontier for the sound
      // degradation below.
      if (Opts.Bud && !Opts.Bud->charge()) {
        Degraded.store(true, std::memory_order_relaxed);
        WL.forEachPending([&](uint32_t P) { PendingOut.push_back(P); });
        break;
      }
      uint32_t Node = WL.pop();
      ++Visits;
      if (Led) {
        ++Led->row(Node).Visits;
        // Sampled wall time: read the clock every 32 visits and charge
        // the inter-sample delta to the node at the sample boundary.
        // Cheap, and explicitly the one non-deterministic ledger field.
        if ((Visits & 31) == 0) {
          uint64_t NowUs = static_cast<uint64_t>(Clock.seconds() * 1e6);
          Led->row(Node).TimeMicros += NowUs - LastSampleUs;
          LastSampleUs = NowUs;
        }
      }

      // Transfer.
      AbsState NewOut;
      if (Graph.isPhi(Node)) {
        // A phi is the identity on its location: output = joined input.
        const PhiNode &Phi = Graph.phi(Node);
        const Value &V = R.In[Node].get(Phi.L);
        if (!V.isBot())
          NewOut.set(Phi.L, V);
      } else {
        WorkingState WS(R.In[Node]);
        applyCommand(Prog, &CG, PointId(Node), WS, Opts.Sem);
        NewOut = WS.extract(Graph.NodeDefs[Node]);
      }

      // Publish changed locations along dependency edges.
      AbsState &Out = R.Out[Node];
      std::vector<LocId> ChangedLocs;
      for (const auto &[L, V] : NewOut)
        if (Out.weakSet(L, V))
          ChangedLocs.push_back(L);
      if (ChangedLocs.empty())
        continue;

      Graph.Edges->forEachOut(Node, [&](LocId L, uint32_t Dst) {
        if (!std::binary_search(ChangedLocs.begin(), ChangedLocs.end(), L))
          return;
        const Value &V = Out.get(L);
        // Widening must cut every dependency cycle: it applies (after the
        // configured delay) at loop-head/recursion nodes and on retreating
        // edges (source scheduled at or after the target).
        bool CutsCycle = WidenNode[Dst] || Prio[Node] >= Prio[Dst];
        AbsState &InDst = R.In[Dst];
        const Value &Old = InDst.get(L);
        bool DoWiden = false;
        if (CutsCycle) {
          uint32_t &Count = ArrivalCount[Dst].getOrCreate(L);
          DoWiden = Count >= Opts.WideningDelay;
        }
        if (!DoWiden && V.leq(Old)) {
          // No-change fast path: with interned sets this is usually a
          // handful of id compares, and it skips the join allocation and
          // the full New == Old product comparison below.  Join-only
          // arrivals cannot widen, so skipping them is exact.
          SPA_OBS_COUNT("fixpoint.joins", 1);
          if (Led)
            ++Led->row(Dst).NoChangeSkips;
          return;
        }
        if (DoWiden) {
          SPA_OBS_COUNT("fixpoint.widenings", 1);
          // Widening bursts are the classic non-termination precursor;
          // drop a breadcrumb every 64 so the journal tail shows where
          // extrapolation concentrated.
          if (((++Widenings) & 63) == 0)
            SPA_OBS_JOURNAL(WidenBurst, Dst, Widenings);
        } else {
          SPA_OBS_COUNT("fixpoint.joins", 1);
        }
        if (Led) {
          obs::PointCost &PC = Led->row(Dst);
          if (DoWiden)
            ++PC.Widenings;
          else
            ++PC.Joins;
        }
        Value New = DoWiden ? Old.widen(Old.join(V)) : Old.join(V);
        if (New == Old)
          return;
        if (CutsCycle)
          ++ArrivalCount[Dst].getOrCreate(L);
        SPA_OBS_COUNT("fixpoint.deliveries", 1);
        if (Led) {
          obs::PointCost &PC = Led->row(Dst);
          ++PC.Deliveries;
          PC.Growth += growthUnits(Old, New);
        }
        InDst.set(L, std::move(New));
        WL.push(Dst);
      });
    }
    VisitsOut = Visits;
    SPA_OBS_JOURNAL(PartitionEnd, ShardIdx, Visits);
  };

  std::vector<std::vector<uint32_t>> Shards =
      partitionNodes(Prog, Graph, Opts.Jobs, Opts.RestrictNodes);
  SPA_OBS_GAUGE_SET("par.fix.shards", Shards.size());

  Timer Clock;
  std::vector<uint64_t> ShardVisits(Shards.size(), 0);
  std::vector<std::vector<uint32_t>> ShardPending(Shards.size());
  if (Shards.size() == 1) {
    RunShard(0, Shards[0], ShardVisits[0], ShardPending[0]);
  } else {
    ThreadPool::global().parallelFor(Shards.size(), Opts.Jobs, [&](size_t S) {
      RunShard(S, Shards[S], ShardVisits[S], ShardPending[S]);
    });
  }
  for (uint64_t V : ShardVisits)
    R.Visits += V;
  R.TimedOut = TimedOut.load(std::memory_order_relaxed);
  R.Degraded = Degraded.load(std::memory_order_relaxed);

  if (R.Degraded) {
    // Sound degradation (docs/ROBUSTNESS.md): the affected nodes —
    // pending entries plus everything forward-reachable over dependency
    // edges — are where values might still have risen; join their
    // buffers with T̂pre restricted to their use/def sets.  T̂pre
    // over-approximates every reachable memory (Section 3.2), so any
    // state ⊒ T̂pre on those components is sound; non-affected nodes
    // already consumed their producers' final values.
    std::vector<bool> Affected(N, false);
    std::vector<uint32_t> Stack;
    for (const std::vector<uint32_t> &Pending : ShardPending)
      for (uint32_t Node : Pending) {
        if (!Affected[Node]) {
          Affected[Node] = true;
          Stack.push_back(Node);
        }
      }
    while (!Stack.empty()) {
      uint32_t Node = Stack.back();
      Stack.pop_back();
      Graph.Edges->forEachOut(Node, [&](LocId, uint32_t Dst) {
        if (!Affected[Dst]) {
          Affected[Dst] = true;
          Stack.push_back(Dst);
        }
      });
    }

    AbsState TopState;
    const AbsState *G = Opts.DegradeTo;
    if (!G) {
      TopState = topAbsState(Prog);
      G = &TopState;
    }
    auto JoinRestricted = [&](AbsState &Dst, const std::vector<LocId> &Ls) {
      for (LocId L : Ls) {
        const Value &V = G->get(L);
        if (!V.isBot())
          Dst.weakSet(L, V);
      }
    };
    uint64_t NumAffected = 0;
    for (uint32_t Node = 0; Node < N; ++Node) {
      if (!Affected[Node])
        continue;
      ++NumAffected;
      R.DegradedNodeIds.push_back(Node); // Ascending: N is scanned in order.
      if (Graph.isPhi(Node)) {
        std::vector<LocId> PhiLoc{Graph.phi(Node).L};
        JoinRestricted(R.In[Node], PhiLoc);
        JoinRestricted(R.Out[Node], PhiLoc);
      } else {
        JoinRestricted(R.In[Node], Graph.NodeUses[Node]);
        JoinRestricted(R.Out[Node], Graph.NodeDefs[Node]);
      }
    }
    SPA_OBS_GAUGE_SET("fixpoint.degraded_points", NumAffected);
    SPA_OBS_JOURNAL(DegradeTier, /*Engine=*/2, NumAffected);
  }

  for (const AbsState &S : R.In)
    R.StateEntries += S.size();
  for (const AbsState &S : R.Out)
    R.StateEntries += S.size();
  R.Seconds = Clock.seconds();
  SPA_OBS_COUNT("fixpoint.visits", R.Visits);
  SPA_OBS_GAUGE_SET("fixpoint.state_entries", R.StateEntries);
  return R;
}
