//===- Export.cpp - Graphviz and text exports --------------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Export.h"

#include <sstream>

using namespace spa;

namespace {

/// Escapes a label for dot.
std::string escape(const std::string &S) {
  std::string R;
  R.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      R.push_back('\\');
    R.push_back(C);
  }
  return R;
}

} // namespace

std::string spa::exportSupergraphDot(const Program &Prog,
                                     const CallGraphInfo &CG) {
  std::ostringstream OS;
  OS << "digraph supergraph {\n  node [shape=box, fontsize=9];\n";
  for (uint32_t F = 0; F < Prog.numFuncs(); ++F) {
    const FunctionInfo &Info = Prog.function(FuncId(F));
    OS << "  subgraph cluster_" << F << " {\n    label=\""
       << escape(Info.Name) << "\";\n";
    for (PointId P : Info.Points)
      OS << "    n" << P.value() << " [label=\""
         << escape(Prog.pointToString(P)) << "\"];\n";
    OS << "  }\n";
  }
  for (uint32_t P = 0; P < Prog.numPoints(); ++P) {
    const Command &Cmd = Prog.point(PointId(P)).Cmd;
    if (Cmd.Kind == CmdKind::Call && !CG.callees(PointId(P)).empty()) {
      for (FuncId G : CG.callees(PointId(P))) {
        OS << "  n" << P << " -> n"
           << Prog.function(G).Entry.value()
           << " [style=dashed, color=blue];\n";
        OS << "  n" << Prog.function(G).Exit.value() << " -> n"
           << Cmd.Pair.value() << " [style=dashed, color=blue];\n";
      }
      continue;
    }
    for (PointId S : Prog.succs(PointId(P)))
      OS << "  n" << P << " -> n" << S.value() << ";\n";
  }
  OS << "}\n";
  return OS.str();
}

std::string spa::exportDepGraphDot(const Program &Prog,
                                   const SparseGraph &Graph,
                                   size_t MaxEdges) {
  std::ostringstream OS;
  OS << "digraph deps {\n  node [shape=box, fontsize=9];\n";
  for (uint32_t P = 0; P < Graph.NumPoints; ++P) {
    if (Graph.NodeDefs[P].empty() && Graph.NodeUses[P].empty())
      continue;
    OS << "  n" << P << " [label=\""
       << escape(Prog.pointToString(PointId(P))) << "\"];\n";
  }
  for (size_t I = 0; I < Graph.Phis.size(); ++I) {
    const PhiNode &Phi = Graph.Phis[I];
    OS << "  n" << Graph.NumPoints + I << " [shape=circle, label=\"phi "
       << escape(Prog.loc(Phi.L).Name) << "@" << Phi.At.value()
       << "\"];\n";
  }
  size_t Emitted = 0;
  for (uint32_t N = 0; N < Graph.numNodes() && Emitted <= MaxEdges; ++N) {
    Graph.Edges->forEachOut(N, [&](LocId L, uint32_t Dst) {
      if (Emitted > MaxEdges)
        return;
      ++Emitted;
      OS << "  n" << N << " -> n" << Dst << " [label=\""
         << escape(Prog.loc(L).Name) << "\", fontsize=8];\n";
    });
  }
  if (Emitted > MaxEdges)
    OS << "  truncated [shape=plaintext, label=\"... truncated at "
       << MaxEdges << " edges ...\"];\n";
  OS << "}\n";
  return OS.str();
}

std::string spa::exportAnnotatedListing(const Program &Prog,
                                        const AnalysisRun &Run) {
  std::ostringstream OS;
  if (Run.degraded())
    OS << "!! degraded: resource budget exhausted ("
       << budgetReasonName(Run.BudgetStop)
       << "); values are sound but coarse\n";
  for (uint32_t F = 0; F < Prog.numFuncs(); ++F) {
    const FunctionInfo &Info = Prog.function(FuncId(F));
    OS << "function " << Info.Name << ":\n";
    for (PointId P : Info.Points) {
      OS << "  " << Prog.pointToString(P) << "\n";
      const std::vector<LocId> &Defs = Run.DU.Defs[P.value()];
      for (LocId L : Defs) {
        const Value *V = nullptr;
        if (Run.Sparse)
          V = &Run.Sparse->Out[P.value()].get(L);
        else if (Run.Dense)
          V = &Run.Dense->Post[P.value()].get(L);
        if (V)
          OS << "      " << Prog.loc(L).Name << " = " << V->str() << "\n";
      }
    }
  }
  return OS.str();
}
