//===- SparseAnalysis.h - Sparse fixpoint engine -------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sparse abstract semantic function F̂_s of Section 2.7: values
/// propagate along data-dependency edges instead of control flow.  Each
/// graph node keeps
///
///  * an input buffer over its use set Û(c), fed by incoming dependency
///    edges (the ⊔ over c_d ⇝ c of X̂(c_d)|l), and
///  * an output partial state over its definition set D̂(c).
///
/// A node's transfer re-runs f̂_c on the input buffer; spurious
/// definitions (D̂ − D) pass their input value through unchanged, which is
/// exactly why Definition 5 requires D̂ − D ⊆ Û.  Widening applies where a
/// dependency edge closes a cycle (loop-head phis and retreating edges),
/// mirroring the dense engine's widening points.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CORE_SPARSEANALYSIS_H
#define SPA_CORE_SPARSEANALYSIS_H

#include "core/DepGraph.h"
#include "core/Semantics.h"
#include "domains/AbsState.h"
#include "obs/Ledger.h"
#include "support/Budget.h"

#include <cstdint>
#include <vector>

namespace spa {

struct SparseOptions {
  SemanticsOptions Sem;
  double TimeLimitSec = 0;
  /// Changing arrivals on a cycle-closing dependency edge before widening
  /// applies (mirrors DenseOptions::WideningDelay).
  unsigned WideningDelay = 4;
  /// Worker lanes for the partitioned fixpoint (docs/PARALLELISM.md).
  /// The engine splits the graph into connected components of the
  /// cross-procedure dependency relation; components are fully
  /// independent subsystems, so running them on per-shard worklists is
  /// bit-identical to the sequential schedule.  1 = the sequential
  /// single-worklist engine; a single-component graph falls back to it
  /// regardless of Jobs.
  unsigned Jobs = 1;
  /// Cooperative resource budget shared by all shards, charged once per
  /// node visit.  On exhaustion every shard stops within one visit and
  /// the result degrades soundly (see DegradeTo).  Null = no budget.
  Budget *Bud = nullptr;
  /// Sound degradation fallback: nodes forward-reachable from pending
  /// worklist entries join this state restricted to their def/use sets
  /// (normally T̂pre; null = all-⊤).
  const AbsState *DegradeTo = nullptr;
  /// Per-node cost ledger (docs/OBSERVABILITY.md "Ledger").  The engine
  /// resizes it to the node count and fills count rows deterministically
  /// (shards own disjoint node ids).  Null = no ledger recording.
  obs::Ledger *Led = nullptr;
  /// Optional restriction of the fixpoint to a subset of graph nodes
  /// (ascending node ids).  The set must be closed under dependency
  /// edges — i.e. a union of whole dependency components — because the
  /// engine still delivers along every outgoing edge of a visited node.
  /// Within the restricted set the computed In/Out buffers are
  /// bit-identical to a full run (each component is a closed fixpoint
  /// subsystem; see the component invariant in SparseAnalysis.cpp);
  /// nodes outside the set keep bottom buffers.  The incremental server
  /// (docs/SERVER.md) uses this to re-solve only invalidated partitions.
  /// Null = all nodes.
  const std::vector<uint32_t> *RestrictNodes = nullptr;
};

struct SparseResult {
  /// Input buffer per graph node (partial state over Û).
  std::vector<AbsState> In;
  /// Output partial state per graph node (over D̂).
  std::vector<AbsState> Out;
  bool TimedOut = false;
  /// The budget tripped; the affected nodes were widened to the
  /// degradation state, so In/Out remain over-approximations.
  bool Degraded = false;
  uint64_t Visits = 0;
  uint64_t StateEntries = 0; ///< Total entries across In and Out.
  double Seconds = 0;
  /// Nodes the sound degradation widened to the fallback state (sorted
  /// ascending; empty unless Degraded).  Alarm provenance flags slice
  /// nodes that appear here.
  std::vector<uint32_t> DegradedNodeIds;

  /// Output value of location \p L at point \p P (bottom if P does not
  /// define L).  Lemma 2 equates this with the dense result on D̂(c).
  const Value &outValue(PointId P, LocId L) const {
    return Out[P.value()].get(L);
  }
};

/// Runs the sparse analysis over \p Graph.
SparseResult runSparseAnalysis(const Program &Prog, const CallGraphInfo &CG,
                               const SparseGraph &Graph,
                               const SparseOptions &Opts);

} // namespace spa

#endif // SPA_CORE_SPARSEANALYSIS_H
