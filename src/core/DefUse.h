//===- DefUse.h - Approximated definition and use sets -------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The safe approximations D̂(c) and Û(c) (Definition 5) derived from the
/// pre-analysis invariant, plus the interprocedural summaries of Section 5:
/// per-function accessed-definition / accessed-use sets (transitive over
/// the callgraph) and the node-level def/use sets the per-procedure
/// dependency builder works with, where
///
///   * a call point defines/uses everything its callees access (values
///     route caller -> callee entry through the call point),
///   * a return point defines everything its callees define (values route
///     callee exit -> caller through the return point),
///   * a function entry defines, and its exit uses, the function's
///     accessed locations.
///
/// The same sets drive the access-based localization of the Base engine.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CORE_DEFUSE_H
#define SPA_CORE_DEFUSE_H

#include "core/PreAnalysis.h"
#include "ir/Program.h"

#include <vector>

namespace spa {

/// Sorted, deduplicated def/use information for one program.
struct DefUseInfo {
  /// Semantic D̂(c)/Û(c) per point, without interprocedural summaries
  /// (Section 3.2's recipe applied to T̂pre).
  std::vector<std::vector<LocId>> Defs, Uses;

  /// Per-function transitive accessed sets:
  /// AccessDefs(f) = ∪ local defs of f ∪ AccessDefs(callees),
  /// AccessUses(f) likewise.
  std::vector<std::vector<LocId>> AccessDefs, AccessUses;

  /// Node-level sets with the interprocedural summaries folded in; this
  /// is what the dependency builder and the sparse engine see.
  std::vector<std::vector<LocId>> NodeDefs, NodeUses;

  /// Average |D̂(c)| and |Û(c)| over all points measured on the
  /// node-level sets (with interprocedural summaries folded in).
  double avgDefSize() const;
  double avgUseSize() const;

  /// Average |D̂(c)| and |Û(c)| over the *semantic* per-point sets
  /// (Section 3.2's definition, what Tables 2 and 3 report).
  double avgSemanticDefSize() const;
  double avgSemanticUseSize() const;

  /// True if \p L is a *semantic* def at \p P (present in Defs, not only
  /// a summary/passthrough def).  Bypass contraction keys on this.
  bool isSemanticDef(PointId P, LocId L) const;
  bool isSemanticUse(PointId P, LocId L) const;
};

/// Computes all def/use structures from the pre-analysis result.  The
/// per-point collection (Steps 1 and 3) writes disjoint slots and runs on
/// \p Jobs pool lanes; the result is independent of Jobs.  \p Bud, when
/// non-null, is charged per point (including inside worker lanes); this
/// phase is structural, so it always runs to completion — exhaustion
/// here only accelerates degradation of the downstream fixpoint.
DefUseInfo computeDefUse(const Program &Prog, const PreAnalysisResult &Pre,
                         unsigned Jobs = 1, Budget *Bud = nullptr);

/// Completes \p Info from its per-point Defs/Uses: computes the
/// per-function transitive access sets and the node-level sets with the
/// Section 5 call/entry/exit summaries.  Shared by the non-relational
/// analysis (location space) and the relational analysis (pack space —
/// the "location" ids are then pack ids).
void foldInterproceduralSummaries(const Program &Prog,
                                  const CallGraphInfo &CG, DefUseInfo &Info,
                                  unsigned Jobs = 1, Budget *Bud = nullptr);

} // namespace spa

#endif // SPA_CORE_DEFUSE_H
