//===- Analyzer.cpp - End-to-end analyzer facade --------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"

#include "support/Resource.h"

using namespace spa;

double AnalysisRun::depSeconds() const {
  double S = PreSeconds + DefUseSeconds;
  if (Graph)
    S += Graph->BuildSeconds;
  return S;
}

double AnalysisRun::fixSeconds() const {
  if (Dense)
    return Dense->Seconds;
  if (Sparse)
    return Sparse->Seconds;
  return 0;
}

bool AnalysisRun::timedOut() const {
  if (Dense && Dense->TimedOut)
    return true;
  if (Sparse && Sparse->TimedOut)
    return true;
  return false;
}

AnalysisRun spa::analyzeProgram(const Program &Prog,
                                const AnalyzerOptions &Opts) {
  Timer PreClock;
  AnalysisRun Run{runPreAnalysis(Prog, Opts.Sem, /*WidenAfterSweeps=*/3,
                                 Opts.Pre),
                  DefUseInfo{}, {}, {}, {}, 0, 0};
  Run.PreSeconds = PreClock.seconds();

  Timer DuClock;
  Run.DU = computeDefUse(Prog, Run.Pre);
  Run.DefUseSeconds = DuClock.seconds();

  switch (Opts.Engine) {
  case EngineKind::Vanilla:
  case EngineKind::Base: {
    DenseOptions DOpts;
    DOpts.Sem = Opts.Sem;
    DOpts.Localize = Opts.Engine == EngineKind::Base;
    DOpts.TimeLimitSec = Opts.TimeLimitSec;
    DOpts.NarrowingPasses = Opts.NarrowingPasses;
    DOpts.WideningDelay = Opts.WideningDelay;
    Run.Dense = runDenseAnalysis(Prog, Run.Pre.CG, &Run.DU, DOpts);
    break;
  }
  case EngineKind::Sparse: {
    Run.Graph = buildDepGraph(Prog, Run.Pre.CG, Run.DU, Opts.Dep);
    SparseOptions SOpts;
    SOpts.Sem = Opts.Sem;
    SOpts.TimeLimitSec = Opts.TimeLimitSec;
    SOpts.WideningDelay = Opts.WideningDelay;
    Run.Sparse = runSparseAnalysis(Prog, Run.Pre.CG, *Run.Graph, SOpts);
    break;
  }
  }
  return Run;
}
