//===- Analyzer.cpp - End-to-end analyzer facade --------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"

#include "domains/Interner.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "obs/Postmortem.h"
#include "obs/Trace.h"
#include "support/Fault.h"
#include "support/Resource.h"
#include "support/ThreadPool.h"

using namespace spa;

namespace {

/// Journals PhaseBegin/PhaseEnd around an analyzer phase (names from the
/// fixed table in obs/Journal.cpp).  Complements SPA_OBS_TRACE, which
/// logs; the journal survives into postmortems.
struct PhaseJournalScope {
  uint16_t Id;
  explicit PhaseJournalScope(const char *Phase)
      : Id(obs::journalPhaseId(Phase)) {
    SPA_OBS_JOURNAL(PhaseBegin, Id, 0);
  }
  ~PhaseJournalScope() { SPA_OBS_JOURNAL(PhaseEnd, Id, 0); }
  PhaseJournalScope(const PhaseJournalScope &) = delete;
  PhaseJournalScope &operator=(const PhaseJournalScope &) = delete;
};

} // namespace

void spa::exportValueSharingStats() {
  InternStats P = combinedInternerStats();
  SPA_OBS_GAUGE_SET("value.pool.nodes", P.Nodes);
  SPA_OBS_GAUGE_SET("value.pool.hits", P.Hits);
  SPA_OBS_GAUGE_SET("value.pool.misses", P.Misses);
  SPA_OBS_GAUGE_SET("value.pool.hit_rate",
                    P.Hits + P.Misses
                        ? static_cast<double>(P.Hits) / (P.Hits + P.Misses)
                        : 0);
  SPA_OBS_GAUGE_SET("value.pool.join_cache_hits", P.JoinCacheHits);
  SPA_OBS_GAUGE_SET("value.pool.join_cache_misses", P.JoinCacheMisses);
  SPA_OBS_GAUGE_SET("value.pool.bytes", P.Bytes);
  SPA_OBS_GAUGE_SET("state.cow.detaches",
                    CowStats::Detaches.load(std::memory_order_relaxed));
  SPA_OBS_GAUGE_SET("state.cow.adoptions",
                    CowStats::Adoptions.load(std::memory_order_relaxed));
}

double AnalysisRun::depBuildSeconds() const {
  return Graph ? Graph->BuildSeconds : 0;
}

double AnalysisRun::depSeconds() const {
  return PreSeconds + DefUseSeconds + depBuildSeconds();
}

double AnalysisRun::fixSeconds() const {
  if (Dense)
    return Dense->Seconds;
  if (Sparse)
    return Sparse->Seconds;
  return 0;
}

bool AnalysisRun::timedOut() const {
  if (Dense && Dense->TimedOut)
    return true;
  if (Sparse && Sparse->TimedOut)
    return true;
  return false;
}

std::string spa::ledgerNodeLabel(const Program &Prog, const SparseGraph *Graph,
                                 uint32_t Node) {
  if (Graph && Graph->isPhi(Node)) {
    const PhiNode &Phi = Graph->phi(Node);
    return "phi(" + Prog.loc(Phi.L).Name + ") @ " +
           Prog.pointToString(Phi.At);
  }
  PointId P = Graph ? Graph->anchor(Node) : PointId(Node);
  return Prog.pointToString(P);
}

void spa::attributeLedger(obs::Ledger &Led, const Program &Prog,
                          const SparseGraph *Graph,
                          const CallGraphInfo *CG) {
  uint32_t N = Led.numRows();
  std::vector<uint32_t> FuncOfNode(N, 0);
  for (uint32_t Node = 0; Node < N; ++Node) {
    PointId P = Graph ? Graph->anchor(Node) : PointId(Node);
    FuncOfNode[Node] = Prog.point(P).Func.value();
  }
  // Inter-procedural phi co-attribution: a phi at a function entry joins
  // values arriving from call sites, so its cost is as much the caller's
  // as the callee's; a phi at a return site likewise merges callee exit
  // values into the caller.  Charge half to the co-function (the
  // smallest one for determinism across callgraph orderings); all other
  // nodes keep whole-cost attribution (CoFuncOf == FuncOf).
  std::vector<uint32_t> CoFuncOfNode;
  if (Graph && CG) {
    CoFuncOfNode = FuncOfNode;
    bool AnySplit = false;
    for (uint32_t Node = 0; Node < N; ++Node) {
      if (!Graph->isPhi(Node))
        continue;
      PointId At = Graph->phi(Node).At;
      const Command &Cmd = Prog.point(At).Cmd;
      if (Cmd.Kind == CmdKind::Entry) {
        const std::vector<PointId> &Sites =
            CG->callSitesOf(Prog.point(At).Func);
        if (Sites.empty())
          continue;
        PointId Min = Sites[0];
        for (PointId S : Sites)
          if (S.value() < Min.value())
            Min = S;
        CoFuncOfNode[Node] = Prog.point(Min).Func.value();
      } else if (Cmd.Kind == CmdKind::Return) {
        const std::vector<FuncId> &Cs = CG->callees(Cmd.Pair);
        if (Cs.empty())
          continue;
        FuncId Min = Cs[0];
        for (FuncId F : Cs)
          if (F.value() < Min.value())
            Min = F;
        CoFuncOfNode[Node] = Min.value();
      }
      AnySplit |= CoFuncOfNode[Node] != FuncOfNode[Node];
    }
    if (!AnySplit)
      CoFuncOfNode.clear(); // Intra-procedural program: no split rows.
  }
  // Partition attribution uses the same union-find components the
  // parallel fixpoint shards by; the numbering (smallest member
  // function) is independent of --jobs, so partition rows match across
  // job counts.  A dense run has no graph: one implicit partition.
  std::vector<uint32_t> CompOfNode;
  uint32_t NumComps = 1;
  if (Graph) {
    DepComponents DC = computeDepComponents(Prog, *Graph);
    CompOfNode = std::move(DC.CompOfNode);
    NumComps = DC.NumComps;
  }
  std::vector<std::string> FuncNames;
  FuncNames.reserve(Prog.numFuncs());
  for (uint32_t F = 0; F < Prog.numFuncs(); ++F)
    FuncNames.push_back(Prog.function(FuncId(F)).Name);
  Led.attribute(std::move(FuncOfNode), std::move(CompOfNode),
                std::move(FuncNames), std::move(CoFuncOfNode));

  obs::PointCost T = Led.totals();
  SPA_OBS_GAUGE_SET("ledger.nodes", N);
  SPA_OBS_GAUGE_SET("ledger.partitions", NumComps);
  SPA_OBS_GAUGE_SET("ledger.growth", T.Growth);
  SPA_OBS_GAUGE_SET("ledger.time_micros", T.TimeMicros);
  // Snapshot for crash forensics: a postmortem written after this point
  // carries the fixpoint's final cost rollup even if the process dies in
  // a later phase (check, export, a second batch item).
  obs::postmortemSetLedgerRollup(T.Visits, T.Widenings, T.Growth,
                                 T.TimeMicros);
}

bool AnalysisRun::degraded() const {
  if (Pre.Degraded)
    return true;
  if (Dense && Dense->Degraded)
    return true;
  if (Sparse && Sparse->Degraded)
    return true;
  return false;
}

AnalysisRun spa::analyzeProgram(const Program &Prog,
                                const AnalyzerOptions &Opts) {
  SPA_OBS_TRACE("analyze");
  // Freeze the metrics registry into the signal-safe postmortem index:
  // instruments touched by earlier runs (or registered eagerly below)
  // become readable from the crash handler without locking.
  obs::postmortemRefreshRegistryIndex();
  SPA_OBS_GAUGE_SET("program.points", Prog.numPoints());
  SPA_OBS_GAUGE_SET("program.locs", Prog.numLocs());
  SPA_OBS_GAUGE_SET("program.funcs", Prog.numFuncs());
  unsigned Jobs = Opts.Jobs ? Opts.Jobs : ThreadPool::defaultJobs();
  SPA_OBS_GAUGE_SET("par.jobs", Jobs);

  // One cooperative budget for the whole run: every phase (and every
  // worker lane) charges the same token, so the first limit to trip
  // stops all of them within a bounded number of steps.
  std::optional<Budget> BudgetStorage;
  if (Opts.Budget.enabled())
    BudgetStorage.emplace(Opts.Budget);
  Budget *Bud = BudgetStorage ? &*BudgetStorage : nullptr;

  // Per-point cost ledger for the main fixpoint (never allocated when
  // observability is compiled out).
  std::shared_ptr<obs::Ledger> Led;
  if constexpr (obs::LedgerEnabled)
    Led = std::make_shared<obs::Ledger>();

  Timer PreClock;
  CpuTimer TotalCpu;
  AnalysisRun Run{[&] {
                    SPA_OBS_TRACE("pre-analysis");
                    PhaseJournalScope PJ("pre");
                    maybeInjectFault("pre");
                    return runPreAnalysis(Prog, Opts.Sem,
                                          /*WidenAfterSweeps=*/3, Opts.Pre,
                                          Bud);
                  }(),
                  DefUseInfo{}, {}, {}, {}, 0, 0};
  Run.PreSeconds = PreClock.seconds();
  SPA_OBS_GAUGE_SET("phase.pre.seconds", Run.PreSeconds);

  Timer DuClock;
  CpuTimer DuCpu;
  {
    SPA_OBS_TRACE("def-use");
    PhaseJournalScope PJ("defuse");
    maybeInjectFault("defuse");
    Run.DU = computeDefUse(Prog, Run.Pre, Jobs, Bud);
  }
  Run.DefUseSeconds = DuClock.seconds();
  SPA_OBS_GAUGE_SET("phase.defuse.seconds", Run.DefUseSeconds);
  SPA_OBS_GAUGE_SET("phase.defuse.cpu_seconds", DuCpu.seconds());

  switch (Opts.Engine) {
  case EngineKind::Vanilla:
  case EngineKind::Base: {
    DenseOptions DOpts;
    DOpts.Sem = Opts.Sem;
    DOpts.Localize = Opts.Engine == EngineKind::Base;
    DOpts.TimeLimitSec = Opts.TimeLimitSec;
    DOpts.NarrowingPasses = Opts.NarrowingPasses;
    DOpts.WideningDelay = Opts.WideningDelay;
    DOpts.Bud = Bud;
    DOpts.DegradeTo = &Run.Pre.Global;
    DOpts.Led = Led.get();
    SPA_OBS_TRACE("fixpoint");
    PhaseJournalScope PJ("fix");
    maybeInjectFault("fix");
    Run.Dense = runDenseAnalysis(Prog, Run.Pre.CG, &Run.DU, DOpts);
    break;
  }
  case EngineKind::Sparse: {
    if (Opts.PrebuiltGraph) {
      // Warm start from a snapshot-embedded graph: the whole depbuild
      // phase collapses to a move.  BuildSeconds stays whatever the
      // decoder left (0), which is the honest Dep cost of this run.
      Run.Graph = std::move(*Opts.PrebuiltGraph);
    } else {
      SPA_OBS_TRACE("dep-build");
      PhaseJournalScope PJ("depbuild");
      maybeInjectFault("depbuild");
      CpuTimer DepCpu;
      DepOptions DepOpts = Opts.Dep;
      DepOpts.Jobs = Jobs;
      DepOpts.Bud = Bud;
      Run.Graph = buildDepGraph(Prog, Run.Pre.CG, Run.DU, DepOpts);
      SPA_OBS_GAUGE_SET("phase.depbuild.cpu_seconds", DepCpu.seconds());
    }
    SparseOptions SOpts;
    SOpts.Sem = Opts.Sem;
    SOpts.TimeLimitSec = Opts.TimeLimitSec;
    SOpts.WideningDelay = Opts.WideningDelay;
    SOpts.Jobs = Jobs;
    SOpts.Bud = Bud;
    SOpts.DegradeTo = &Run.Pre.Global;
    SOpts.Led = Led.get();
    if (Opts.BeforeSparseFix)
      Opts.BeforeSparseFix(Run, SOpts);
    SPA_OBS_TRACE("fixpoint");
    PhaseJournalScope PJ("fix");
    maybeInjectFault("fix");
    CpuTimer FixCpu;
    Run.Sparse = runSparseAnalysis(Prog, Run.Pre.CG, *Run.Graph, SOpts);
    SPA_OBS_GAUGE_SET("phase.fix.cpu_seconds", FixCpu.seconds());
    break;
  }
  }

  if (Led) {
    attributeLedger(*Led, Prog, Run.Graph ? &*Run.Graph : nullptr,
                    &Run.Pre.CG);
    Run.Ledger = std::move(Led);
  }

  SPA_OBS_GAUGE_SET("phase.depbuild.seconds", Run.depBuildSeconds());
  SPA_OBS_GAUGE_SET("phase.fix.seconds", Run.fixSeconds());
  SPA_OBS_GAUGE_SET("phase.total.seconds", Run.totalSeconds());
  // Wall vs. cpu per phase: cpu_seconds > seconds means the phase ran on
  // multiple lanes; cpu_seconds ≈ seconds means it was sequential.
  SPA_OBS_GAUGE_SET("phase.total.cpu_seconds", TotalCpu.seconds());
  SPA_OBS_GAUGE_MAX("mem.peak_rss_kib", currentPeakRssKiB());
  exportValueSharingStats();

  if (Bud) {
    Run.BudgetStop = Bud->reason();
    Run.BudgetSteps = Bud->steps();
    SPA_OBS_GAUGE_SET("budget.steps", double(Bud->steps()));
    SPA_OBS_GAUGE_SET("budget.exhausted", Bud->exhausted() ? 1 : 0);
    // SPA_OBS_COUNT needs a literal name per call site, hence the chain.
    switch (Bud->reason()) {
    case BudgetReason::None:
      break;
    case BudgetReason::Deadline:
      SPA_OBS_COUNT("budget.stops.deadline", 1);
      break;
    case BudgetReason::Steps:
      SPA_OBS_COUNT("budget.stops.steps", 1);
      break;
    case BudgetReason::Memory:
      SPA_OBS_COUNT("budget.stops.memory", 1);
      break;
    case BudgetReason::Cancelled:
      SPA_OBS_COUNT("budget.stops.cancelled", 1);
      break;
    }
  }
  SPA_OBS_GAUGE_SET("analysis.degraded", Run.degraded() ? 1 : 0);
  // Re-freeze the postmortem index: instruments created during this run
  // (counter/gauge call sites register lazily) become crash-readable.
  obs::postmortemRefreshRegistryIndex();
  return Run;
}
