//===- BddDepStorage.cpp - BDD-backed dependency storage -----------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/BddDepStorage.h"

#include "obs/Metrics.h"

#include <cassert>

using namespace spa;

uint32_t BddDepStorage::bitsFor(uint32_t N) {
  uint32_t Bits = 1;
  while ((1u << Bits) < N)
    ++Bits;
  return Bits;
}

BddDepStorage::BddDepStorage(uint32_t NumNodes, uint32_t NumLocs)
    : SrcBits(bitsFor(NumNodes)), DstBits(bitsFor(NumNodes)),
      LocBits(bitsFor(NumLocs)), Mgr(SrcBits + DstBits + LocBits),
      Root(Mgr.falseBdd()) {
  assert(DstBits + LocBits <= 64 && "model word too wide");
}

bool BddDepStorage::add(uint32_t Src, LocId L, uint32_t Dst) {
  // Variable order: source bits (MSB first), then target bits, then
  // location bits.  Cube construction from the bottom up keeps every
  // intermediate node reduced.
  BddRef Cube = Mgr.trueBdd();
  uint32_t Var = SrcBits + DstBits + LocBits;
  auto Emit = [&](uint32_t Value, uint32_t Bits) {
    for (uint32_t I = 0; I < Bits; ++I) {
      --Var;
      bool Bit = (Value >> I) & 1;
      BddRef Lit = Bit ? Mgr.var(Var) : Mgr.nvar(Var);
      Cube = Mgr.andOp(Lit, Cube);
    }
  };
  Emit(L.value(), LocBits);
  Emit(Dst, DstBits);
  Emit(Src, SrcBits);

  BddRef NewRoot = Mgr.orOp(Root, Cube);
  if (NewRoot == Root)
    return false;
  Root = NewRoot;
  CofactorCache.clear();
  ++Edges;
  return true;
}

void BddDepStorage::forEachOut(
    uint32_t Src, const std::function<void(LocId, uint32_t)> &F) const {
  // Fix the source bits, then enumerate (target, location) models.
  if (CofactorCache.empty())
    CofactorCache.assign(1u << SrcBits, BddRef(UINT32_MAX));
  BddRef Sub = CofactorCache[Src];
  if (Sub == UINT32_MAX) {
    SPA_OBS_COUNT("bdd.cofactor.misses", 1);
    Sub = Root;
    for (uint32_t I = 0; I < SrcBits; ++I) {
      uint32_t Var = SrcBits - 1 - I; // MSB of Src has the smallest index.
      bool Bit = (Src >> (SrcBits - 1 - Var)) & 1;
      Sub = Mgr.restrict(Sub, Var, Bit);
    }
    CofactorCache[Src] = Sub;
  } else {
    SPA_OBS_COUNT("bdd.cofactor.hits", 1);
  }
  Mgr.forEachModel(Sub, SrcBits, SrcBits + DstBits + LocBits,
                   [&](uint64_t Word) {
                     // Bit i of Word is variable SrcBits + i.  Variables
                     // SrcBits..SrcBits+DstBits-1 hold Dst MSB-first.
                     uint32_t Dst = 0, Loc = 0;
                     for (uint32_t I = 0; I < DstBits; ++I)
                       if (Word & (1ULL << I))
                         Dst |= 1u << (DstBits - 1 - I);
                     for (uint32_t I = 0; I < LocBits; ++I)
                       if (Word & (1ULL << (DstBits + I)))
                         Loc |= 1u << (LocBits - 1 - I);
                     F(LocId(Loc), Dst);
                   });
}
