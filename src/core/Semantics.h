//===- Semantics.h - Abstract semantics of commands ----------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract semantic function f̂_c of Section 3.1 and the semantic
/// definition/use extraction of Section 3.2, shared by every engine:
///
///  * the dense engines apply commands to full abstract states;
///  * the flow-insensitive pre-analysis applies them to one global state
///    through a join-only adapter;
///  * the sparse engine applies them to partial states assembled from
///    data-dependency edges.
///
/// All three instantiate the same templates with a state-like type that
/// provides `const Value &get(LocId)`, `void set(LocId, Value)` (strong)
/// and `bool weakSet(LocId, const Value &)` (join).
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CORE_SEMANTICS_H
#define SPA_CORE_SEMANTICS_H

#include "domains/AbsState.h"
#include "ir/CallGraphInfo.h"
#include "ir/Program.h"

#include <vector>

namespace spa {

/// Knobs of the abstract semantics.
struct SemanticsOptions {
  /// Apply strong updates on stores through a singleton non-summary
  /// points-to set.  The paper treats strong updates as orthogonal to the
  /// sparse design (Section 3.1, footnote 2); both settings are exercised
  /// by tests.
  bool StrongUpdates = true;
};

/// Evaluates expression \p E under \p S (the paper's Ê).
template <typename StateT>
Value evalExpr(const Program &Prog, const IExpr &E, const StateT &S) {
  switch (E.Kind) {
  case IExprKind::Num:
    return Value::constant(E.Num);
  case IExprKind::Input:
    return Value::topInt();
  case IExprKind::Var:
    return S.get(E.Loc);
  case IExprKind::AddrOf:
    return Value::pointerTo(E.Loc, Interval::constant(1));
  case IExprKind::FuncAddr:
    return Value::functionRef(E.Func);
  case IExprKind::Deref: {
    Value R;
    for (LocId L : S.get(E.Loc).Pts)
      R = R.join(S.get(L));
    return R;
  }
  case IExprKind::Binary: {
    Value A = evalExpr(Prog, *E.Lhs, S);
    Value B = evalExpr(Prog, *E.Rhs, S);
    Value R;
    switch (E.Op) {
    case BinOp::Add:
      R.Itv = A.Itv.add(B.Itv);
      // ptr + int and int + ptr shift the offset.
      if (!A.Pts.empty() && !B.Itv.isBot()) {
        R.Pts = R.Pts.join(A.Pts);
        R.Offset = R.Offset.join(A.Offset.add(B.Itv));
        R.Size = R.Size.join(A.Size);
      }
      if (!B.Pts.empty() && !A.Itv.isBot()) {
        R.Pts = R.Pts.join(B.Pts);
        R.Offset = R.Offset.join(B.Offset.add(A.Itv));
        R.Size = R.Size.join(B.Size);
      }
      return R;
    case BinOp::Sub:
      R.Itv = A.Itv.sub(B.Itv);
      if (!A.Pts.empty() && !B.Itv.isBot()) {
        R.Pts = A.Pts;
        R.Offset = A.Offset.sub(B.Itv);
        R.Size = A.Size;
      }
      return R;
    case BinOp::Mul:
      R.Itv = A.Itv.mul(B.Itv);
      return R;
    case BinOp::Div:
      R.Itv = A.Itv.div(B.Itv);
      return R;
    case BinOp::Mod:
      R.Itv = A.Itv.rem(B.Itv);
      return R;
    }
    return R;
  }
  }
  return Value::bot();
}

/// Refines \p V's interval by `V.Itv Op RhsItv` (the assume filter of
/// Section 3.1).  Non-numeric components pass through unrefined.
Value refineByRel(const Value &V, RelOp Op, const Interval &RhsItv);

/// Applies the abstract semantic function of the command at \p P to \p S
/// in place.
///
/// Callee resolution: when \p CG is non-null, call points use its fixed
/// callee sets (the main analyses run against the pre-analysis-resolved
/// callgraph); when null, callees are resolved from the state's own
/// function-pointer values (how the pre-analysis discovers the callgraph).
template <typename StateT>
void applyCommand(const Program &Prog, const CallGraphInfo *CG, PointId P,
                  StateT &S, const SemanticsOptions &Opts) {
  const Command &Cmd = Prog.point(P).Cmd;
  switch (Cmd.Kind) {
  case CmdKind::Skip:
  case CmdKind::Entry:
  case CmdKind::Exit:
    return;
  case CmdKind::Assign:
  case CmdKind::RetStmt:
    S.set(Cmd.Target, evalExpr(Prog, *Cmd.E, S));
    return;
  case CmdKind::Alloc: {
    Interval Size = evalExpr(Prog, *Cmd.E, S).Itv;
    S.set(Cmd.Target, Value::pointerTo(Cmd.AllocSite, Size));
    // Cells start zeroed; the site is a summary, so join.
    S.weakSet(Cmd.AllocSite, Value::constant(0));
    return;
  }
  case CmdKind::Store: {
    Value V = evalExpr(Prog, *Cmd.E, S);
    const PtsSet Targets = S.get(Cmd.Target).Pts;
    bool Strong = Opts.StrongUpdates && Targets.size() == 1 &&
                  !Prog.loc(*Targets.begin()).isSummary();
    for (LocId L : Targets) {
      if (Strong)
        S.set(L, V);
      else
        S.weakSet(L, V);
    }
    return;
  }
  case CmdKind::Assume: {
    const ICond &C = *Cmd.Cnd;
    Value LV = evalExpr(Prog, *C.Lhs, S);
    Value RV = evalExpr(Prog, *C.Rhs, S);
    if (C.Lhs->Kind == IExprKind::Var)
      S.set(C.Lhs->Loc, refineByRel(LV, C.Op, RV.Itv));
    if (C.Rhs->Kind == IExprKind::Var)
      S.set(C.Rhs->Loc, refineByRel(RV, swapRelOp(C.Op), LV.Itv));
    return;
  }
  case CmdKind::Call: {
    if (Cmd.External)
      return; // No side effects (Section 6: unknown procedures).
    std::vector<FuncId> Callees;
    if (CG) {
      Callees = CG->callees(P);
    } else if (Cmd.DirectCallee.isValid()) {
      Callees.push_back(Cmd.DirectCallee);
    } else {
      for (FuncId F : S.get(Cmd.Target).Funcs)
        Callees.push_back(F);
    }
    if (Callees.empty())
      return;
    std::vector<Value> ArgVals(Cmd.Args.size());
    for (size_t I = 0; I < Cmd.Args.size(); ++I)
      ArgVals[I] = evalExpr(Prog, *Cmd.Args[I], S);
    // With a unique callee the binding is a strong update; with several
    // possible callees only one of them executes, so the parameters of
    // the others keep their old values — a weak update per callee.
    bool Strong = Callees.size() == 1;
    for (FuncId G : Callees) {
      const FunctionInfo &F = Prog.function(G);
      size_t N = std::min(F.Params.size(), Cmd.Args.size());
      for (size_t I = 0; I < N; ++I) {
        if (Strong)
          S.set(F.Params[I], ArgVals[I]);
        else
          S.weakSet(F.Params[I], ArgVals[I]);
      }
    }
    return;
  }
  case CmdKind::Return: {
    if (!Cmd.Target.isValid())
      return;
    const Command &CallCmd = Prog.point(Cmd.Pair).Cmd;
    if (CallCmd.External) {
      S.set(Cmd.Target, Value::topInt());
      return;
    }
    std::vector<FuncId> Callees;
    if (CG) {
      Callees = CG->callees(Cmd.Pair);
    } else if (CallCmd.DirectCallee.isValid()) {
      Callees.push_back(CallCmd.DirectCallee);
    } else {
      for (FuncId F : S.get(CallCmd.Target).Funcs)
        Callees.push_back(F);
    }
    if (Callees.empty()) {
      // Unresolvable indirect call behaves like an external one.
      S.set(Cmd.Target, Value::topInt());
      return;
    }
    Value R;
    for (FuncId G : Callees)
      R = R.join(S.get(Prog.function(G).RetSlot));
    S.set(Cmd.Target, R);
    return;
  }
  }
}

/// Semantic definition set D(c) under \p S (Definition 1 evaluated against
/// a given state; with S = T̂pre this is the safe approximation D̂ of
/// Section 3.2).  Results are appended to \p Out unsorted.
template <typename StateT>
void collectDefs(const Program &Prog, const CallGraphInfo *CG, PointId P,
                 const StateT &S, std::vector<LocId> &Out) {
  const Command &Cmd = Prog.point(P).Cmd;
  switch (Cmd.Kind) {
  case CmdKind::Skip:
  case CmdKind::Entry:
  case CmdKind::Exit:
    return;
  case CmdKind::Assign:
  case CmdKind::RetStmt:
    Out.push_back(Cmd.Target);
    return;
  case CmdKind::Alloc:
    Out.push_back(Cmd.Target);
    Out.push_back(Cmd.AllocSite);
    return;
  case CmdKind::Store:
    for (LocId L : S.get(Cmd.Target).Pts)
      Out.push_back(L);
    return;
  case CmdKind::Assume:
    if (Cmd.Cnd->Lhs->Kind == IExprKind::Var)
      Out.push_back(Cmd.Cnd->Lhs->Loc);
    if (Cmd.Cnd->Rhs->Kind == IExprKind::Var)
      Out.push_back(Cmd.Cnd->Rhs->Loc);
    return;
  case CmdKind::Call: {
    if (Cmd.External)
      return;
    auto BindParams = [&](FuncId G) {
      const FunctionInfo &F = Prog.function(G);
      size_t N = std::min(F.Params.size(), Cmd.Args.size());
      for (size_t I = 0; I < N; ++I)
        Out.push_back(F.Params[I]);
    };
    if (CG) {
      for (FuncId G : CG->callees(P))
        BindParams(G);
    } else if (Cmd.DirectCallee.isValid()) {
      BindParams(Cmd.DirectCallee);
    } else {
      for (FuncId G : S.get(Cmd.Target).Funcs)
        BindParams(G);
    }
    return;
  }
  case CmdKind::Return:
    if (Cmd.Target.isValid())
      Out.push_back(Cmd.Target);
    return;
  }
}

/// Semantic use set of evaluating \p E under \p S (the auxiliary U of
/// Section 3.2): variable reads plus, for derefs, the pointed-to
/// locations.
template <typename StateT>
void collectExprUses(const IExpr &E, const StateT &S,
                     std::vector<LocId> &Out) {
  switch (E.Kind) {
  case IExprKind::Num:
  case IExprKind::Input:
  case IExprKind::AddrOf:
  case IExprKind::FuncAddr:
    return;
  case IExprKind::Var:
    Out.push_back(E.Loc);
    return;
  case IExprKind::Deref:
    Out.push_back(E.Loc);
    for (LocId L : S.get(E.Loc).Pts)
      Out.push_back(L);
    return;
  case IExprKind::Binary:
    collectExprUses(*E.Lhs, S, Out);
    collectExprUses(*E.Rhs, S, Out);
    return;
  }
}

/// Semantic use set U(c) under \p S (Definition 2 evaluated against a
/// given state; with S = T̂pre this is the safe approximation Û).  Weak
/// updates read the stored-through locations, so stores include their
/// points-to sets (the paper's key example of implicit uses).
template <typename StateT>
void collectUses(const Program &Prog, const CallGraphInfo *CG, PointId P,
                 const StateT &S, std::vector<LocId> &Out) {
  const Command &Cmd = Prog.point(P).Cmd;
  switch (Cmd.Kind) {
  case CmdKind::Skip:
  case CmdKind::Entry:
  case CmdKind::Exit:
    return;
  case CmdKind::Assign:
  case CmdKind::RetStmt:
  case CmdKind::Alloc:
    collectExprUses(*Cmd.E, S, Out);
    if (Cmd.Kind == CmdKind::Alloc)
      Out.push_back(Cmd.AllocSite); // Weak zero-init joins the old value.
    return;
  case CmdKind::Store:
    Out.push_back(Cmd.Target);
    collectExprUses(*Cmd.E, S, Out);
    // Spurious definitions must be uses (Definition 5 condition 2), and
    // weak updates genuinely read the old values.
    for (LocId L : S.get(Cmd.Target).Pts)
      Out.push_back(L);
    return;
  case CmdKind::Assume:
    collectExprUses(*Cmd.Cnd->Lhs, S, Out);
    collectExprUses(*Cmd.Cnd->Rhs, S, Out);
    return;
  case CmdKind::Call: {
    if (Cmd.External)
      return;
    if (Cmd.isIndirectCall())
      Out.push_back(Cmd.Target);
    for (const auto &A : Cmd.Args)
      collectExprUses(*A, S, Out);
    // Weak parameter binding (several possible callees) reads the old
    // parameter values, so they are uses (Definition 5 condition 2).
    std::vector<FuncId> Callees;
    if (CG) {
      Callees = CG->callees(P);
    } else if (Cmd.DirectCallee.isValid()) {
      Callees.push_back(Cmd.DirectCallee);
    } else {
      for (FuncId G : S.get(Cmd.Target).Funcs)
        Callees.push_back(G);
    }
    if (Callees.size() > 1) {
      for (FuncId G : Callees) {
        const FunctionInfo &F = Prog.function(G);
        size_t N = std::min(F.Params.size(), Cmd.Args.size());
        for (size_t I = 0; I < N; ++I)
          Out.push_back(F.Params[I]);
      }
    }
    return;
  }
  case CmdKind::Return: {
    if (!Cmd.Target.isValid())
      return;
    const Command &CallCmd = Prog.point(Cmd.Pair).Cmd;
    if (CallCmd.External)
      return;
    auto UseRet = [&](FuncId G) { Out.push_back(Prog.function(G).RetSlot); };
    if (CG) {
      for (FuncId G : CG->callees(Cmd.Pair))
        UseRet(G);
    } else if (CallCmd.DirectCallee.isValid()) {
      UseRet(CallCmd.DirectCallee);
    } else {
      for (FuncId G : S.get(CallCmd.Target).Funcs)
        UseRet(G);
    }
    return;
  }
  }
}

} // namespace spa

#endif // SPA_CORE_SEMANTICS_H
