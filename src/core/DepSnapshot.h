//===- DepSnapshot.h - Dependency-graph serialization ----------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encoding of a SparseGraph to/from the opaque `depgraph` section of a
/// v2 spa-ir snapshot (ir/Snapshot.h).  The IR library cannot name graph
/// types — they live up here in core — so the snapshot treats the section
/// as a checksummed byte range and this pair does the real work:
///
///   encodeDepGraph(Graph, Opts)  -> bytes to pass to saveSnapshot()
///   decodeDepGraph(Prog, bytes)  -> SparseGraph + the DepOptions it was
///                                   built under, or a one-line error
///
/// The payload records the dependency-generation options (builder kind,
/// bypass, BDD storage) it was produced with; a consumer must only adopt
/// the embedded graph when those match its own configuration — a graph
/// built with bypass contraction is *not* the graph a bypass-less run
/// would compute.  decodeDepGraph always materializes adjacency-vector
/// storage (SetDepStorage): the edge *relation* is what the fixpoint
/// consumes, and it is representation-independent.
///
/// The decoder follows the snapshot loader's discipline: every count and
/// id is bounds-checked against \p Prog before use, trailing bytes are an
/// error, and malformed input yields an error string — never UB.  The
/// section checksum upstream already caught random corruption, so what
/// arrives here is either valid producer output or a crafted payload.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CORE_DEPSNAPSHOT_H
#define SPA_CORE_DEPSNAPSHOT_H

#include "core/DepBuilder.h"

#include <cstdint>
#include <string>
#include <vector>

namespace spa {

/// Serializes \p Graph (with the generation options that produced it) to
/// the depgraph-section payload.  Deterministic: SetDepStorage keeps
/// per-node edge lists sorted and forEachOut walks them in order, so the
/// same graph always yields the same bytes.
std::vector<uint8_t> encodeDepGraph(const SparseGraph &Graph,
                                    const DepOptions &Opts);

/// Result of decoding a depgraph payload against the Program it rides
/// with: the reconstructed graph plus the recorded generation options.
struct DepSnapshotResult {
  SparseGraph Graph;
  DepBuilderKind Kind = DepBuilderKind::Ssa;
  bool Bypass = true;
  bool UseBdd = false;
  std::string Error; ///< Non-empty on failure (Graph is then unusable).
  bool ok() const { return Error.empty(); }
};

DepSnapshotResult decodeDepGraph(const Program &Prog,
                                 const std::vector<uint8_t> &Payload);

/// True when the recorded generation options allow a consumer configured
/// with \p Opts to adopt the decoded graph (NumLocsOverride users encode
/// their own graphs and never go through snapshots, so only the three
/// semantic knobs matter).
inline bool depSnapshotUsable(const DepSnapshotResult &Dec,
                              const DepOptions &Opts) {
  return Dec.ok() && Dec.Kind == Opts.Kind && Dec.Bypass == Opts.Bypass &&
         Dec.UseBdd == Opts.UseBdd && Opts.NumLocsOverride == 0;
}

} // namespace spa

#endif // SPA_CORE_DEPSNAPSHOT_H
