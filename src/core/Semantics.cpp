//===- Semantics.cpp - Abstract semantics of commands --------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Semantics.h"

using namespace spa;

Value spa::refineByRel(const Value &V, RelOp Op, const Interval &RhsItv) {
  Value R = V;
  switch (Op) {
  case RelOp::Lt:
    R.Itv = V.Itv.filterLt(RhsItv);
    break;
  case RelOp::Le:
    R.Itv = V.Itv.filterLe(RhsItv);
    break;
  case RelOp::Gt:
    R.Itv = V.Itv.filterGt(RhsItv);
    break;
  case RelOp::Ge:
    R.Itv = V.Itv.filterGe(RhsItv);
    break;
  case RelOp::Eq:
    R.Itv = V.Itv.filterEq(RhsItv);
    break;
  case RelOp::Ne:
    R.Itv = V.Itv.filterNe(RhsItv);
    break;
  }
  return R;
}
