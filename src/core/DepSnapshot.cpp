//===- DepSnapshot.cpp - Dependency-graph serialization --------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/DepSnapshot.h"

#include <algorithm>

namespace spa {
namespace {

/// Payload-internal format version, independent of the snapshot
/// container version (the container only promises an opaque byte range).
constexpr uint32_t DepPayloadVersion = 1;

void putU32(std::vector<uint8_t> &B, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    B.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putU64(std::vector<uint8_t> &B, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    B.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

struct Reader {
  const std::vector<uint8_t> &B;
  size_t Pos = 0;
  bool Ok = true;

  explicit Reader(const std::vector<uint8_t> &B) : B(B) {}

  bool need(size_t N) {
    if (!Ok || B.size() - Pos < N) {
      Ok = false;
      return false;
    }
    return true;
  }
  uint8_t u8() {
    if (!need(1))
      return 0;
    return B[Pos++];
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(B[Pos + I]) << (8 * I);
    Pos += 4;
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(B[Pos + I]) << (8 * I);
    Pos += 8;
    return V;
  }
};

void writeLocList(std::vector<uint8_t> &B, const std::vector<LocId> &Ls) {
  putU32(B, static_cast<uint32_t>(Ls.size()));
  for (LocId L : Ls)
    putU32(B, L.value());
}

bool readLocList(Reader &R, uint64_t NumLocs, std::vector<LocId> &Out) {
  uint32_t N = R.u32();
  // Each entry costs at least 4 bytes; reject counts the remaining
  // buffer cannot possibly hold before reserving.
  if (!R.Ok || static_cast<uint64_t>(N) * 4 > R.B.size() - R.Pos) {
    R.Ok = false;
    return false;
  }
  Out.reserve(N);
  for (uint32_t I = 0; I < N; ++I) {
    uint32_t Raw = R.u32();
    if (Raw >= NumLocs) {
      R.Ok = false;
      return false;
    }
    Out.push_back(LocId(Raw));
  }
  return R.Ok;
}

} // namespace

std::vector<uint8_t> encodeDepGraph(const SparseGraph &Graph,
                                    const DepOptions &Opts) {
  std::vector<uint8_t> B;
  putU32(B, DepPayloadVersion);
  B.push_back(static_cast<uint8_t>(Opts.Kind));
  B.push_back(Opts.Bypass ? 1 : 0);
  B.push_back(Opts.UseBdd ? 1 : 0);
  B.push_back(0); // Pad.

  putU32(B, Graph.NumPoints);
  putU32(B, static_cast<uint32_t>(Graph.Phis.size()));
  for (const PhiNode &P : Graph.Phis) {
    putU32(B, P.At.value());
    putU32(B, P.L.value());
  }

  for (const auto &Defs : Graph.NodeDefs)
    writeLocList(B, Defs);
  for (const auto &Uses : Graph.NodeUses)
    writeLocList(B, Uses);

  // Edges per source node, count-prefixed.  BDD storage enumerates in
  // its own internal order, so edges are sorted here to make the bytes
  // representation-independent (and thus digest-stable).
  size_t NumNodes = Graph.numNodes();
  for (uint32_t Src = 0; Src < NumNodes; ++Src) {
    std::vector<std::pair<uint32_t, uint32_t>> Out;
    Graph.Edges->forEachOut(Src, [&](LocId L, uint32_t Dst) {
      Out.emplace_back(L.value(), Dst);
    });
    std::sort(Out.begin(), Out.end());
    putU32(B, static_cast<uint32_t>(Out.size()));
    for (const auto &[L, Dst] : Out) {
      putU32(B, L);
      putU32(B, Dst);
    }
  }

  putU64(B, Graph.EdgesBeforeBypass);
  putU64(B, Graph.BypassRemoved);
  return B;
}

DepSnapshotResult decodeDepGraph(const Program &Prog,
                                 const std::vector<uint8_t> &Payload) {
  DepSnapshotResult Res;
  auto Fail = [&](const std::string &Msg) {
    Res.Error = "depgraph payload: " + Msg;
    return std::move(Res);
  };

  Reader R(Payload);
  uint32_t Ver = R.u32();
  if (!R.Ok || Ver != DepPayloadVersion)
    return Fail("unknown payload version " + std::to_string(Ver));
  uint8_t RawKind = R.u8();
  if (RawKind > static_cast<uint8_t>(DepBuilderKind::WholeProgram))
    return Fail("bad builder kind " + std::to_string(RawKind));
  Res.Kind = static_cast<DepBuilderKind>(RawKind);
  Res.Bypass = R.u8() != 0;
  Res.UseBdd = R.u8() != 0;
  R.u8(); // Pad.

  uint64_t NumPoints = Prog.numPoints();
  uint64_t NumLocs = Prog.numLocs();
  Res.Graph.NumPoints = R.u32();
  if (!R.Ok || Res.Graph.NumPoints != NumPoints)
    return Fail("point count does not match the program");
  uint32_t NumPhis = R.u32();
  if (!R.Ok || static_cast<uint64_t>(NumPhis) * 8 > Payload.size() - R.Pos)
    return Fail("phi count exceeds payload size");
  Res.Graph.Phis.reserve(NumPhis);
  for (uint32_t I = 0; I < NumPhis; ++I) {
    uint32_t At = R.u32();
    uint32_t L = R.u32();
    if (!R.Ok || At >= NumPoints || L >= NumLocs)
      return Fail("phi node " + std::to_string(I) + " out of bounds");
    Res.Graph.Phis.push_back({PointId(At), LocId(L)});
  }

  size_t NumNodes = Res.Graph.numNodes();
  Res.Graph.NodeDefs.resize(NumNodes);
  Res.Graph.NodeUses.resize(NumNodes);
  for (size_t I = 0; I < NumNodes; ++I)
    if (!readLocList(R, NumLocs, Res.Graph.NodeDefs[I]))
      return Fail("bad def list for node " + std::to_string(I));
  for (size_t I = 0; I < NumNodes; ++I)
    if (!readLocList(R, NumLocs, Res.Graph.NodeUses[I]))
      return Fail("bad use list for node " + std::to_string(I));

  auto Storage = std::make_unique<SetDepStorage>(
      static_cast<uint32_t>(NumNodes));
  for (uint32_t Src = 0; Src < NumNodes; ++Src) {
    uint32_t N = R.u32();
    if (!R.Ok || static_cast<uint64_t>(N) * 8 > Payload.size() - R.Pos)
      return Fail("edge count for node " + std::to_string(Src) +
                  " exceeds payload size");
    for (uint32_t J = 0; J < N; ++J) {
      uint32_t L = R.u32();
      uint32_t Dst = R.u32();
      if (!R.Ok || L >= NumLocs || Dst >= NumNodes)
        return Fail("edge " + std::to_string(J) + " of node " +
                    std::to_string(Src) + " out of bounds");
      Storage->add(Src, LocId(L), Dst);
    }
  }
  Res.Graph.Edges = std::move(Storage);

  Res.Graph.EdgesBeforeBypass = R.u64();
  Res.Graph.BypassRemoved = R.u64();
  if (!R.Ok)
    return Fail("truncated trailer");
  if (R.Pos != Payload.size())
    return Fail(std::to_string(Payload.size() - R.Pos) + " trailing bytes");
  return Res;
}

} // namespace spa
