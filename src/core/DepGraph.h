//===- DepGraph.h - Data-dependency graph --------------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data-dependency relation ⇝ ⊆ C × L̂ × C (Definition 4) as a graph,
/// plus the storage abstraction behind it.  Section 5 of the paper stores
/// this relation in BDDs because set-based storage exhausts memory on
/// large programs; DepStorage has both backends so the trade-off can be
/// measured (bench/ablation_bdd).
///
/// Graph nodes are program points plus SSA phi pseudo-nodes: a phi node
/// (j, l) joins the values of l arriving at join point j and passes the
/// result through, which is what keeps the number of dependency edges
/// near-linear (Section 5: "SSA ... reduces the size of def-use chains").
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CORE_DEPGRAPH_H
#define SPA_CORE_DEPGRAPH_H

#include "ir/Program.h"
#include "support/Ids.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace spa {

/// Storage behind the ternary dependency relation.  Node ids are dense
/// indices (program points first, then phi nodes).
class DepStorage {
public:
  virtual ~DepStorage() = default;

  /// Inserts edge (Src, L, Dst); returns true if it was new.
  virtual bool add(uint32_t Src, LocId L, uint32_t Dst) = 0;

  /// Invokes \p F for every out-edge of \p Src.
  virtual void
  forEachOut(uint32_t Src,
             const std::function<void(LocId, uint32_t)> &F) const = 0;

  virtual uint64_t edgeCount() const = 0;

  /// Estimated resident bytes of the representation (what Table 2's
  /// memory comparison for dependency storage is about).
  virtual uint64_t memoryBytes() const = 0;
};

/// Plain adjacency-vector storage: fast iteration, memory proportional to
/// the edge count.
class SetDepStorage : public DepStorage {
public:
  explicit SetDepStorage(uint32_t NumNodes) : Out(NumNodes) {}

  bool add(uint32_t Src, LocId L, uint32_t Dst) override;
  void forEachOut(
      uint32_t Src,
      const std::function<void(LocId, uint32_t)> &F) const override;
  uint64_t edgeCount() const override { return Edges; }
  uint64_t memoryBytes() const override;

private:
  struct Edge {
    LocId L;
    uint32_t Dst;
    friend bool operator<(const Edge &A, const Edge &B) {
      if (A.L != B.L)
        return A.L < B.L;
      return A.Dst < B.Dst;
    }
    friend bool operator==(const Edge &A, const Edge &B) {
      return A.L == B.L && A.Dst == B.Dst;
    }
  };
  std::vector<std::vector<Edge>> Out; // Sorted per node.
  uint64_t Edges = 0;
};

/// An SSA phi pseudo-node: joins location \p L at join point \p At.
struct PhiNode {
  PointId At;
  LocId L;
};

/// The sparse analysis graph: nodes, their def/use sets, and the labeled
/// dependency edges.
struct SparseGraph {
  uint32_t NumPoints = 0;
  std::vector<PhiNode> Phis; ///< Node id = NumPoints + phi index.
  std::unique_ptr<DepStorage> Edges;

  /// Per-node defs (the partial state a node's output holds) and uses
  /// (the partial state its input buffer assembles).  For program points
  /// these are the DefUseInfo node sets; a phi node defs/uses exactly its
  /// location.
  std::vector<std::vector<LocId>> NodeDefs, NodeUses;

  // Construction statistics (the Dep column of Tables 2 and 3).
  double BuildSeconds = 0;
  uint64_t EdgesBeforeBypass = 0;
  uint64_t BypassRemoved = 0;

  size_t numNodes() const { return NumPoints + Phis.size(); }
  bool isPhi(uint32_t Node) const { return Node >= NumPoints; }
  const PhiNode &phi(uint32_t Node) const { return Phis[Node - NumPoints]; }

  /// The program point a node evaluates at (phi nodes: their join point).
  PointId anchor(uint32_t Node) const {
    return isPhi(Node) ? phi(Node).At : PointId(Node);
  }
};

/// Connected components of the function graph induced by dependency
/// edges (functions tied by any interprocedural dependency share a
/// component; every node of a function lands in its function's
/// component).  This is the partition the parallel sparse fixpoint
/// shards by (docs/PARALLELISM.md) and the ledger aggregates by:
/// component ids are dense, numbered by smallest member function, so
/// the numbering is independent of --jobs.
struct DepComponents {
  std::vector<uint32_t> CompOfNode; ///< Graph node -> component id.
  uint32_t NumComps = 0;
};

DepComponents computeDepComponents(const Program &Prog,
                                   const SparseGraph &Graph);

/// Reverse adjacency over a SparseGraph's dependency edges, built by one
/// forward sweep.  DepStorage only enumerates out-edges (the fixpoint
/// never walks backward), but alarm provenance does: forEachIn(Dst)
/// yields every edge Src -L-> Dst in deterministic (ascending Src, then
/// storage) order.
class ReverseDepIndex {
public:
  explicit ReverseDepIndex(const SparseGraph &Graph);

  void forEachIn(uint32_t Dst,
                 const std::function<void(LocId, uint32_t)> &F) const;

  uint64_t edgeCount() const { return Edges; }

private:
  struct InEdge {
    LocId L;
    uint32_t Src;
  };
  std::vector<std::vector<InEdge>> In;
  uint64_t Edges = 0;
};

} // namespace spa

#endif // SPA_CORE_DEPGRAPH_H
