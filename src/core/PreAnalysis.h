//===- PreAnalysis.h - Flow-insensitive pre-analysis ---------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pre-analysis of Section 3.2: a further abstraction of the main
/// analysis that ignores control flow and computes one global invariant
/// (α_pre collapses all control points).  It is sound with respect to the
/// main analysis, so the D̂/Û sets derived from its result satisfy the
/// safe-approximation conditions of Definition 5.  Following Section 5, it
/// also resolves function pointers to fix the callgraph ("the pointer
/// abstraction of our pre-analysis is basically inclusion-based pointer
/// analysis ... combined with numeric analysis").
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CORE_PREANALYSIS_H
#define SPA_CORE_PREANALYSIS_H

#include "core/Semantics.h"
#include "domains/AbsState.h"
#include "ir/CallGraphInfo.h"
#include "ir/Program.h"
#include "support/Budget.h"

namespace spa {

/// Pre-analysis flavors.  Section 3.2 shows that prior scalable sparse
/// pointer analyses are restricted instances of this framework, differing
/// only in how coarse the pre-analysis is:
enum class PreAnalysisKind {
  /// The paper's own choice: flow-insensitive inclusion-based points-to
  /// combined with numeric analysis.
  Precise,
  /// Semi-sparse analysis [Hardekopf & Lin, POPL 2009]: only top-level
  /// (never address-taken) variables are tracked precisely; the
  /// points-to sets of address-taken variables are coarsened to "every
  /// address-taken location", so sparsity is only exploited for
  /// top-level variables.
  SemiSparse,
  /// Staged flow-sensitive pointer analysis [Hardekopf & Lin, CGO
  /// 2011]: an auxiliary *pointer-only* pre-analysis; numeric values are
  /// not tracked (their components go to ⊤ wherever read).
  Staged,
};

/// Pre-analysis outcome: the single global invariant T̂pre and the
/// callgraph resolved from it.
struct PreAnalysisResult {
  AbsState Global;
  CallGraphInfo CG;
  uint64_t Sweeps = 0;
  /// The resource budget tripped before the sweeps converged; Global was
  /// replaced by the all-⊤ state (every location bound to the top value),
  /// which trivially over-approximates any invariant, so downstream
  /// phases stay sound (docs/ROBUSTNESS.md).
  bool Degraded = false;

  /// View of T̂pre usable as the state argument of the semantics
  /// templates (T̂pre(c) is the same state at every point).
  const AbsState &state() const { return Global; }
};

/// The all-⊤ abstract state over \p Prog: every location maps to the top
/// value (full interval, points-to/function universe, top offset/size).
/// The sound last rung of the degradation ladder.
AbsState topAbsState(const Program &Prog);

/// Runs the flow-insensitive pre-analysis to its fixpoint.  Termination:
/// the pointer components live in finite powersets and the interval
/// components are widened after \p WidenAfterSweeps whole-program sweeps.
/// \p Bud, when non-null, is charged per point; on exhaustion the result
/// degrades to the all-⊤ state (which also resolves indirect calls to
/// every function, keeping the callgraph sound).
PreAnalysisResult runPreAnalysis(const Program &Prog,
                                 const SemanticsOptions &Opts,
                                 unsigned WidenAfterSweeps = 3,
                                 PreAnalysisKind Kind =
                                     PreAnalysisKind::Precise,
                                 Budget *Bud = nullptr);

} // namespace spa

#endif // SPA_CORE_PREANALYSIS_H
