//===- IdSet.h - Sorted id sets (points-to / function sets) -------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Finite powerset domains over typed ids: points-to sets (2^L̂, the
/// paper's P̂) and callee sets for function pointers.  Backed by sorted
/// vectors: sets are small in practice and linear merges keep joins cheap
/// and iteration deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_DOMAINS_IDSET_H
#define SPA_DOMAINS_IDSET_H

#include "support/Ids.h"

#include <algorithm>
#include <initializer_list>
#include <vector>

namespace spa {

/// Sorted set of typed ids with lattice operations (⊆ order, ∪ join).
template <typename IdT> class IdSet {
public:
  IdSet() = default;
  IdSet(std::initializer_list<IdT> Init) : Items(Init) {
    std::sort(Items.begin(), Items.end());
    Items.erase(std::unique(Items.begin(), Items.end()), Items.end());
  }

  static IdSet singleton(IdT Id) {
    IdSet S;
    S.Items.push_back(Id);
    return S;
  }

  bool empty() const { return Items.empty(); }
  size_t size() const { return Items.size(); }
  auto begin() const { return Items.begin(); }
  auto end() const { return Items.end(); }

  bool contains(IdT Id) const {
    return std::binary_search(Items.begin(), Items.end(), Id);
  }

  /// Inserts \p Id; returns true if it was new.
  bool insert(IdT Id) {
    auto It = std::lower_bound(Items.begin(), Items.end(), Id);
    if (It != Items.end() && *It == Id)
      return false;
    Items.insert(It, Id);
    return true;
  }

  bool operator==(const IdSet &O) const { return Items == O.Items; }
  bool operator!=(const IdSet &O) const { return !(*this == O); }

  /// Subset test (the lattice order).
  bool leq(const IdSet &O) const {
    return std::includes(O.Items.begin(), O.Items.end(), Items.begin(),
                         Items.end());
  }

  /// Set union (the lattice join).
  IdSet join(const IdSet &O) const {
    IdSet R;
    R.Items.reserve(Items.size() + O.Items.size());
    std::set_union(Items.begin(), Items.end(), O.Items.begin(), O.Items.end(),
                   std::back_inserter(R.Items));
    return R;
  }

  IdSet meet(const IdSet &O) const {
    IdSet R;
    std::set_intersection(Items.begin(), Items.end(), O.Items.begin(),
                          O.Items.end(), std::back_inserter(R.Items));
    return R;
  }

  /// In-place union; returns true if this set grew.
  bool unionWith(const IdSet &O) {
    if (O.leq(*this))
      return false;
    *this = join(O);
    return true;
  }

private:
  std::vector<IdT> Items;
};

/// Points-to set over abstract locations (the paper's P̂ = 2^L̂).
using PtsSet = IdSet<LocId>;
/// Callee set for function-pointer values.
using FuncSet = IdSet<FuncId>;

} // namespace spa

#endif // SPA_DOMAINS_IDSET_H
