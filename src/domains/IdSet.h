//===- IdSet.h - Interned id sets (points-to / function sets) -----------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Finite powerset domains over typed ids: points-to sets (2^L̂, the
/// paper's P̂) and callee sets for function pointers.  Two-tier
/// representation with a canonical-form invariant:
///
///  * up to two ids live inline in the object (no allocation — the vast
///    majority of sets the analyses build are singletons or pairs);
///  * three or more ids promote to a hash-consed node in the process-wide
///    Interner pool, and the set holds only the node's 32-bit id.
///
/// Because the representation is canonical (a given content has exactly
/// one form), equality is a tag/id compare, copies are trivial 16-byte
/// moves regardless of set size, and joins of pooled sets are memoized.
/// Iteration stays sorted and deterministic, which the fixpoint engines
/// rely on.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_DOMAINS_IDSET_H
#define SPA_DOMAINS_IDSET_H

#include "domains/Interner.h"
#include "support/Ids.h"

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <vector>

namespace spa {

/// Sorted set of typed ids with lattice operations (⊆ order, ∪ join).
/// Cheap to copy: the representation is at most two inline ids or one
/// pool id (see file comment).
template <typename IdT> class IdSet {
public:
  using const_iterator = const IdT *;

  IdSet() = default;
  IdSet(std::initializer_list<IdT> Init) {
    std::vector<IdT> V(Init);
    std::sort(V.begin(), V.end());
    V.erase(std::unique(V.begin(), V.end()), V.end());
    *this = fromSorted(std::move(V));
  }

  static IdSet singleton(IdT Id) {
    IdSet S;
    S.Small[0] = Id;
    S.Count = 1;
    return S;
  }

  bool empty() const { return Count == 0; }
  size_t size() const {
    return isInterned() ? pool().contents(PoolId).size() : Count;
  }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size(); }

  bool contains(IdT Id) const {
    if (isInterned()) {
      const std::vector<IdT> &C = pool().contents(PoolId);
      return std::binary_search(C.begin(), C.end(), Id);
    }
    for (uint8_t I = 0; I < Count; ++I)
      if (Small[I] == Id)
        return true;
    return false;
  }

  /// Inserts \p Id; returns true if it was new.
  bool insert(IdT Id) {
    if (isInterned()) {
      const std::vector<IdT> &C = pool().contents(PoolId);
      auto It = std::lower_bound(C.begin(), C.end(), Id);
      if (It != C.end() && *It == Id)
        return false;
      std::vector<IdT> V;
      V.reserve(C.size() + 1);
      V.insert(V.end(), C.begin(), It);
      V.push_back(Id);
      V.insert(V.end(), It, C.end());
      PoolId = pool().intern(std::move(V));
      return true;
    }
    uint8_t Pos = 0;
    while (Pos < Count && Small[Pos] < Id)
      ++Pos;
    if (Pos < Count && Small[Pos] == Id)
      return false;
    if (Count < MaxInline) {
      for (uint8_t I = Count; I > Pos; --I)
        Small[I] = Small[I - 1];
      Small[Pos] = Id;
      ++Count;
      return true;
    }
    // Inline capacity exceeded: promote to a pool node.
    std::vector<IdT> V;
    V.reserve(Count + 1);
    V.insert(V.end(), Small, Small + Pos);
    V.push_back(Id);
    V.insert(V.end(), Small + Pos, Small + Count);
    *this = internedSet(pool().intern(std::move(V)));
    return true;
  }

  /// Canonical-form equality: inline contents compare or pool-id compare.
  bool operator==(const IdSet &O) const {
    if (Count != O.Count)
      return false;
    if (isInterned())
      return PoolId == O.PoolId;
    for (uint8_t I = 0; I < Count; ++I)
      if (Small[I] != O.Small[I])
        return false;
    return true;
  }
  bool operator!=(const IdSet &O) const { return !(*this == O); }

  /// Subset test (the lattice order).
  bool leq(const IdSet &O) const {
    if (Count == 0)
      return true;
    if (*this == O)
      return true;
    if (!isInterned()) {
      for (uint8_t I = 0; I < Count; ++I)
        if (!O.contains(Small[I]))
          return false;
      return true;
    }
    if (!O.isInterned())
      return false; // |this| >= 3 > |O|.
    const std::vector<IdT> &A = pool().contents(PoolId);
    const std::vector<IdT> &B = pool().contents(O.PoolId);
    return A.size() <= B.size() &&
           std::includes(B.begin(), B.end(), A.begin(), A.end());
  }

  /// Set union (the lattice join).  Subset fast paths return one of the
  /// operands without allocating; pooled-pooled unions are memoized in
  /// the interner's join cache.
  IdSet join(const IdSet &O) const {
    if (Count == 0)
      return O;
    if (O.Count == 0)
      return *this;
    if (isInterned() && O.isInterned()) {
      if (PoolId == O.PoolId)
        return *this;
      return internedSet(pool().joinInterned(PoolId, O.PoolId));
    }
    // At least one side is inline (<= 2 ids): membership-test it against
    // the bigger side, so a no-growth join is allocation-free.
    const IdSet &Big = size() >= O.size() ? *this : O;
    const IdSet &Sml = (&Big == this) ? O : *this;
    bool Sub = true;
    for (uint8_t I = 0; I < Sml.Count; ++I)
      if (!Big.contains(Sml.Small[I])) {
        Sub = false;
        break;
      }
    if (Sub)
      return Big;
    std::vector<IdT> U;
    U.reserve(size() + O.size());
    std::set_union(begin(), end(), O.begin(), O.end(),
                   std::back_inserter(U));
    return fromSorted(std::move(U));
  }

  IdSet meet(const IdSet &O) const {
    if (*this == O)
      return *this;
    std::vector<IdT> V;
    std::set_intersection(begin(), end(), O.begin(), O.end(),
                          std::back_inserter(V));
    return fromSorted(std::move(V));
  }

  /// In-place union; returns true if this set grew.
  bool unionWith(const IdSet &O) {
    IdSet J = join(O);
    if (J == *this)
      return false;
    *this = J;
    return true;
  }

  /// True when the contents live in the interner pool (>= 3 ids).
  bool interned() const { return isInterned(); }

  /// Builds a canonical set from sorted, duplicate-free \p V.
  static IdSet fromSorted(std::vector<IdT> &&V) {
    IdSet S;
    if (V.size() <= MaxInline) {
      S.Count = static_cast<uint8_t>(V.size());
      for (uint8_t I = 0; I < S.Count; ++I)
        S.Small[I] = V[I];
      return S;
    }
    return internedSet(pool().intern(std::move(V)));
  }

private:
  static constexpr uint8_t MaxInline = 2;
  static constexpr uint8_t InternedTag = 0xff;

  bool isInterned() const { return Count == InternedTag; }
  static Interner<IdT> &pool() { return Interner<IdT>::global(); }

  static IdSet internedSet(uint32_t Id) {
    IdSet S;
    S.PoolId = Id;
    S.Count = InternedTag;
    return S;
  }

  const IdT *data() const {
    return isInterned() ? pool().contents(PoolId).data() : Small;
  }

  IdT Small[MaxInline] = {};
  uint32_t PoolId = 0;
  uint8_t Count = 0; ///< 0..MaxInline inline size, or InternedTag.
};

/// Points-to set over abstract locations (the paper's P̂ = 2^L̂).
using PtsSet = IdSet<LocId>;
/// Callee set for function-pointer values.
using FuncSet = IdSet<FuncId>;

} // namespace spa

#endif // SPA_DOMAINS_IDSET_H
