//===- AbsState.cpp - Abstract state -------------------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "domains/AbsState.h"

#include <sstream>

using namespace spa;

const Value AbsState::Bottom = Value();
const AbsState::Map AbsState::EmptyMap;

std::atomic<uint64_t> CowStats::Detaches{0};
std::atomic<uint64_t> CowStats::Adoptions{0};

std::string AbsState::str() const {
  std::ostringstream OS;
  OS << "{";
  bool First = true;
  for (const auto &[L, V] : *this) {
    if (!First)
      OS << ", ";
    First = false;
    OS << "l" << L.value() << " -> " << V.str();
  }
  OS << "}";
  return OS.str();
}
