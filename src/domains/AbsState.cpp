//===- AbsState.cpp - Abstract state -------------------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "domains/AbsState.h"

#include <sstream>

using namespace spa;

const Value AbsState::Bottom = Value();

std::string AbsState::str() const {
  std::ostringstream OS;
  OS << "{";
  bool First = true;
  for (const auto &[L, V] : Entries) {
    if (!First)
      OS << ", ";
    First = false;
    OS << "l" << L.value() << " -> " << V.str();
  }
  OS << "}";
  return OS.str();
}
