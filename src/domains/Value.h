//===- Value.h - Product abstract value ----------------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract value V̂ = Ẑ × P̂ of Section 3, extended the way the
/// paper's evaluation analyzer (SPARROW) extends it: pointers carry an
/// array tuple (offset, size) so buffer accesses can be bounds-checked,
/// and function pointers carry callee sets for callgraph resolution.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_DOMAINS_VALUE_H
#define SPA_DOMAINS_VALUE_H

#include "domains/IdSet.h"
#include "domains/Interval.h"

#include <string>

namespace spa {

/// Product abstract value: an interval for the numeric component, a
/// points-to set with an (offset, size) array tuple for the pointer
/// component, and a callee set for the function-pointer component.
/// Bottom is the value with every component bottom/empty.
struct Value {
  Interval Itv;    ///< Numeric component.
  PtsSet Pts;      ///< Pointer targets (variables and allocation sites).
  Interval Offset; ///< Pointer offset from the block base (cells).
  Interval Size;   ///< Size of the pointed-to block (cells).
  FuncSet Funcs;   ///< Possible function-pointer targets.

  static Value bot() { return Value(); }
  static Value topInt() {
    Value V;
    V.Itv = Interval::top();
    return V;
  }
  static Value constant(int64_t N) {
    Value V;
    V.Itv = Interval::constant(N);
    return V;
  }
  /// Pointer to one block of \p Size cells at offset 0.
  static Value pointerTo(LocId L, Interval Size) {
    Value V;
    V.Pts = PtsSet::singleton(L);
    V.Offset = Interval::constant(0);
    V.Size = Size;
    return V;
  }
  static Value functionRef(FuncId F) {
    Value V;
    V.Funcs = FuncSet::singleton(F);
    return V;
  }

  bool isBot() const {
    return Itv.isBot() && Pts.empty() && Funcs.empty() && Offset.isBot() &&
           Size.isBot();
  }

  bool operator==(const Value &O) const {
    return Itv == O.Itv && Pts == O.Pts && Offset == O.Offset &&
           Size == O.Size && Funcs == O.Funcs;
  }
  bool operator!=(const Value &O) const { return !(*this == O); }

  bool leq(const Value &O) const {
    return Itv.leq(O.Itv) && Pts.leq(O.Pts) && Offset.leq(O.Offset) &&
           Size.leq(O.Size) && Funcs.leq(O.Funcs);
  }

  Value join(const Value &O) const {
    Value R;
    R.Itv = Itv.join(O.Itv);
    R.Pts = Pts.join(O.Pts);
    R.Offset = Offset.join(O.Offset);
    R.Size = Size.join(O.Size);
    R.Funcs = Funcs.join(O.Funcs);
    return R;
  }

  /// Widening: intervals widen, finite set components join.
  Value widen(const Value &O) const {
    Value R;
    R.Itv = Itv.widen(O.Itv);
    R.Pts = Pts.join(O.Pts);
    R.Offset = Offset.widen(O.Offset);
    R.Size = Size.widen(O.Size);
    R.Funcs = Funcs.join(O.Funcs);
    return R;
  }

  /// Narrowing: intervals narrow, set components keep the old value.
  Value narrow(const Value &O) const {
    Value R;
    R.Itv = Itv.narrow(O.Itv);
    R.Pts = Pts;
    R.Offset = Offset.narrow(O.Offset);
    R.Size = Size.narrow(O.Size);
    R.Funcs = Funcs;
    return R;
  }

  /// In-place join; returns true if this value grew.
  bool joinWith(const Value &O) {
    if (O.leq(*this))
      return false;
    *this = join(O);
    return true;
  }

  std::string str() const;
};

} // namespace spa

#endif // SPA_DOMAINS_VALUE_H
