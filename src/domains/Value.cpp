//===- Value.cpp - Product abstract value ---------------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "domains/Value.h"

#include <sstream>

using namespace spa;

std::string Value::str() const {
  if (isBot())
    return "_|_";
  std::ostringstream OS;
  OS << Itv.str();
  if (!Pts.empty()) {
    OS << " ptr{";
    bool First = true;
    for (LocId L : Pts) {
      if (!First)
        OS << ",";
      First = false;
      OS << "l" << L.value();
    }
    OS << "}@" << Offset.str() << "/" << Size.str();
  }
  if (!Funcs.empty()) {
    OS << " fn{";
    bool First = true;
    for (FuncId F : Funcs) {
      if (!First)
        OS << ",";
      First = false;
      OS << "f" << F.value();
    }
    OS << "}";
  }
  return OS.str();
}
