//===- Interval.h - Interval abstract domain ----------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interval domain Ẑ = {[l, u] | l ≤ u, l, u ∈ Z ∪ {±∞}} ∪ {⊥} of
/// Cousot & Cousot, used by the paper's non-relational analysis (Section 3)
/// and as the projection target of the octagon analysis (Section 4).
/// Bounds are int64 with the extreme values reserved as ±∞; arithmetic
/// saturates toward the infinities.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_DOMAINS_INTERVAL_H
#define SPA_DOMAINS_INTERVAL_H

#include <algorithm>
#include <cstdint>
#include <string>

namespace spa {

/// Saturating interval bound arithmetic.  Bound::NegInf/PosInf are the
/// reserved extreme int64 values.
namespace bound {
constexpr int64_t NegInf = INT64_MIN;
constexpr int64_t PosInf = INT64_MAX;

/// Saturating addition of two bounds.  NegInf + PosInf is a programming
/// error (callers never combine opposite infinities).
int64_t add(int64_t A, int64_t B);
/// Saturating multiplication.
int64_t mul(int64_t A, int64_t B);
} // namespace bound

/// An interval value; Lo > Hi encodes bottom (canonically [+∞, −∞]).
class Interval {
public:
  /// Bottom (empty) interval.
  constexpr Interval() : Lo(bound::PosInf), Hi(bound::NegInf) {}
  constexpr Interval(int64_t Lo, int64_t Hi) : Lo(Lo), Hi(Hi) {}

  static constexpr Interval bot() { return Interval(); }
  static constexpr Interval top() {
    return Interval(bound::NegInf, bound::PosInf);
  }
  static constexpr Interval constant(int64_t N) { return Interval(N, N); }

  bool isBot() const { return Lo > Hi; }
  int64_t lo() const { return Lo; }
  int64_t hi() const { return Hi; }

  /// True if this interval is a single finite constant.
  bool isConstant() const { return !isBot() && Lo == Hi; }
  /// True if \p N is contained.
  bool contains(int64_t N) const { return !isBot() && Lo <= N && N <= Hi; }

  bool operator==(const Interval &O) const {
    if (isBot() && O.isBot())
      return true;
    return Lo == O.Lo && Hi == O.Hi;
  }
  bool operator!=(const Interval &O) const { return !(*this == O); }

  /// Lattice order.
  bool leq(const Interval &O) const {
    if (isBot())
      return true;
    if (O.isBot())
      return false;
    return O.Lo <= Lo && Hi <= O.Hi;
  }

  Interval join(const Interval &O) const {
    if (isBot())
      return O;
    if (O.isBot())
      return *this;
    return Interval(std::min(Lo, O.Lo), std::max(Hi, O.Hi));
  }

  Interval meet(const Interval &O) const {
    if (isBot() || O.isBot())
      return bot();
    int64_t L = std::max(Lo, O.Lo), H = std::min(Hi, O.Hi);
    if (L > H)
      return bot();
    return Interval(L, H);
  }

  /// Standard widening: unstable bounds jump to ±∞.
  Interval widen(const Interval &O) const {
    if (isBot())
      return O;
    if (O.isBot())
      return *this;
    int64_t L = O.Lo < Lo ? bound::NegInf : Lo;
    int64_t H = O.Hi > Hi ? bound::PosInf : Hi;
    return Interval(L, H);
  }

  /// Standard narrowing: refines only infinite bounds.
  Interval narrow(const Interval &O) const {
    if (isBot() || O.isBot())
      return O;
    int64_t L = Lo == bound::NegInf ? O.Lo : Lo;
    int64_t H = Hi == bound::PosInf ? O.Hi : Hi;
    if (L > H)
      return bot();
    return Interval(L, H);
  }

  Interval add(const Interval &O) const {
    if (isBot() || O.isBot())
      return bot();
    return Interval(bound::add(Lo, O.Lo), bound::add(Hi, O.Hi));
  }

  Interval sub(const Interval &O) const {
    if (isBot() || O.isBot())
      return bot();
    return Interval(bound::add(Lo, negate(O.Hi)),
                    bound::add(Hi, negate(O.Lo)));
  }

  Interval mul(const Interval &O) const {
    if (isBot() || O.isBot())
      return bot();
    int64_t C[4] = {bound::mul(Lo, O.Lo), bound::mul(Lo, O.Hi),
                    bound::mul(Hi, O.Lo), bound::mul(Hi, O.Hi)};
    return Interval(*std::min_element(C, C + 4), *std::max_element(C, C + 4));
  }

  /// Truncated integer division (C semantics).  Division by zero has no
  /// result (the concrete execution traps), so the zero slice of \p O is
  /// excluded; a divisor of exactly [0, 0] yields bottom.
  Interval div(const Interval &O) const;

  /// Truncated integer remainder (C semantics: the result has the
  /// dividend's sign and |result| < |divisor|).
  Interval rem(const Interval &O) const;

  /// Largest sub-interval whose elements can satisfy `x < [O.Lo, O.Hi]`,
  /// i.e. meet with (−∞, O.Hi − 1].
  Interval filterLt(const Interval &O) const {
    if (isBot() || O.isBot())
      return bot();
    return meet(Interval(bound::NegInf, bound::add(O.Hi, -1)));
  }
  Interval filterLe(const Interval &O) const {
    if (isBot() || O.isBot())
      return bot();
    return meet(Interval(bound::NegInf, O.Hi));
  }
  Interval filterGt(const Interval &O) const {
    if (isBot() || O.isBot())
      return bot();
    return meet(Interval(bound::add(O.Lo, 1), bound::PosInf));
  }
  Interval filterGe(const Interval &O) const {
    if (isBot() || O.isBot())
      return bot();
    return meet(Interval(O.Lo, bound::PosInf));
  }
  Interval filterEq(const Interval &O) const { return meet(O); }
  /// `x != [n, n]` removes a boundary constant; otherwise no refinement.
  Interval filterNe(const Interval &O) const;

  std::string str() const;

private:
  static int64_t negate(int64_t B) {
    if (B == bound::NegInf)
      return bound::PosInf;
    if (B == bound::PosInf)
      return bound::NegInf;
    return -B;
  }

  int64_t Lo, Hi;
};

} // namespace spa

#endif // SPA_DOMAINS_INTERVAL_H
