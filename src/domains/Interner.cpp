//===- Interner.cpp - Hash-consing pool for id sets -----------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "domains/Interner.h"

namespace spa {

// The two pool instantiations the value domain uses (IdSet.h).
template class Interner<LocId>;
template class Interner<FuncId>;

InternStats combinedInternerStats() {
  InternStats T = Interner<LocId>::global().stats();
  T += Interner<FuncId>::global().stats();
  return T;
}

} // namespace spa
