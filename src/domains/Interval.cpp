//===- Interval.cpp - Interval abstract domain --------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "domains/Interval.h"

#include <cassert>
#include <sstream>

using namespace spa;

int64_t spa::bound::add(int64_t A, int64_t B) {
  if (A == NegInf || B == NegInf) {
    assert(A != PosInf && B != PosInf && "adding opposite infinities");
    return NegInf;
  }
  if (A == PosInf || B == PosInf)
    return PosInf;
  __int128 R = static_cast<__int128>(A) + B;
  if (R <= NegInf)
    return NegInf + 1; // Keep finite results out of the sentinel values.
  if (R >= PosInf)
    return PosInf - 1;
  return static_cast<int64_t>(R);
}

int64_t spa::bound::mul(int64_t A, int64_t B) {
  bool AInf = A == NegInf || A == PosInf;
  bool BInf = B == NegInf || B == PosInf;
  if (AInf || BInf) {
    if (A == 0 || B == 0)
      return 0;
    bool Negative = (A < 0) != (B < 0);
    return Negative ? NegInf : PosInf;
  }
  __int128 R = static_cast<__int128>(A) * B;
  if (R <= NegInf)
    return NegInf + 1;
  if (R >= PosInf)
    return PosInf - 1;
  return static_cast<int64_t>(R);
}

namespace {

/// Saturating truncated division of bounds (divisor nonzero, finite).
int64_t divBound(int64_t A, int64_t B) {
  if (A == bound::NegInf || A == bound::PosInf) {
    bool Negative = (A < 0) != (B < 0);
    return Negative ? bound::NegInf : bound::PosInf;
  }
  // INT64_MIN / -1 would overflow; saturate.
  if (A == INT64_MIN + 1 && B == -1)
    return bound::PosInf - 1;
  return A / B;
}

} // namespace

Interval Interval::div(const Interval &O) const {
  if (isBot() || O.isBot())
    return bot();
  // Split the divisor around zero: only the nonzero slices divide.
  Interval Result = bot();
  auto DivideBy = [&](const Interval &Divisor) {
    if (Divisor.isBot())
      return;
    // With a sign-constant divisor, x/y is monotone in x for fixed y and
    // attains extremes at divisor endpoints, so the four corner
    // candidates bound the result.
    int64_t C[4] = {
        divBound(Lo, Divisor.Lo), divBound(Lo, Divisor.Hi),
        divBound(Hi, Divisor.Lo), divBound(Hi, Divisor.Hi)};
    Result = Result.join(Interval(*std::min_element(C, C + 4),
                                  *std::max_element(C, C + 4)));
  };
  DivideBy(O.meet(Interval(bound::NegInf, -1)));
  DivideBy(O.meet(Interval(1, bound::PosInf)));
  return Result;
}

Interval Interval::rem(const Interval &O) const {
  if (isBot() || O.isBot())
    return bot();
  // |result| < max(|c|, |d|) over the nonzero divisor slices; the result
  // carries the dividend's sign (C truncation semantics).
  int64_t MaxAbs = 0;
  auto Consider = [&](int64_t B) {
    if (B == bound::NegInf || B == bound::PosInf) {
      MaxAbs = bound::PosInf;
      return;
    }
    int64_t Abs = B < 0 ? -B : B;
    MaxAbs = std::max(MaxAbs, Abs);
  };
  Consider(O.lo());
  Consider(O.hi());
  if (MaxAbs == 0)
    return bot(); // Divisor is exactly zero: always traps.
  int64_t M = MaxAbs == bound::PosInf ? bound::PosInf
                                      : MaxAbs - 1;
  Interval Full(M == bound::PosInf ? bound::NegInf : -M, M);
  // Sign refinement from the dividend.
  if (Lo >= 0)
    Full = Full.meet(Interval(0, bound::PosInf));
  if (Hi <= 0)
    Full = Full.meet(Interval(bound::NegInf, 0));
  // The magnitude never exceeds the dividend's.
  if (Lo != bound::NegInf && Hi != bound::PosInf) {
    int64_t DivAbs = std::max(Lo < 0 ? -Lo : Lo, Hi < 0 ? -Hi : Hi);
    Full = Full.meet(Interval(-DivAbs, DivAbs));
  }
  return Full;
}

Interval Interval::filterNe(const Interval &O) const {
  if (isBot() || O.isBot())
    return bot();
  if (!O.isConstant())
    return *this;
  int64_t N = O.lo();
  if (Lo == Hi && Lo == N)
    return bot();
  if (Lo == N)
    return Interval(bound::add(Lo, 1), Hi);
  if (Hi == N)
    return Interval(Lo, bound::add(Hi, -1));
  return *this;
}

std::string Interval::str() const {
  if (isBot())
    return "_|_";
  std::ostringstream OS;
  OS << "[";
  if (Lo == bound::NegInf)
    OS << "-inf";
  else
    OS << Lo;
  OS << ", ";
  if (Hi == bound::PosInf)
    OS << "+inf";
  else
    OS << Hi;
  OS << "]";
  return OS.str();
}
