//===- AbsState.h - Abstract state: L̂ -> V̂ ----------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract state Ŝ = L̂ → V̂ (Section 2.3).  Missing entries denote
/// bottom values, so the empty state is the bottom state; this is what
/// makes the *sparse* representation possible: a point's state holds only
/// the locations the analysis actually wrote.
///
/// The binding table is a copy-on-write shared buffer: copying a state
/// (the In/Out tables of the fixpoint engines, the pre-analysis snapshot,
/// localization filters) shares one buffer, and mutation detaches a
/// private clone only when the buffer is actually shared.  Joining into
/// an empty state adopts the other side's buffer in O(1).  Read paths
/// never detach; weakSet/joinWith test for no-change on the shared
/// buffer first, so the fixpoint's frequent no-op joins stay
/// allocation-free (state.cow.* metrics in docs/OBSERVABILITY.md).
///
//===----------------------------------------------------------------------===//

#ifndef SPA_DOMAINS_ABSSTATE_H
#define SPA_DOMAINS_ABSSTATE_H

#include "domains/Value.h"
#include "support/FlatMap.h"

#include <atomic>
#include <memory>
#include <string>

namespace spa {

/// Process-wide copy-on-write statistics (exported as state.cow.*).
struct CowStats {
  static std::atomic<uint64_t> Detaches; ///< Shared buffers cloned on write.
  static std::atomic<uint64_t> Adoptions; ///< O(1) buffer adoptions by joins.
};

/// Finite map from abstract locations to abstract values.
class AbsState {
public:
  using Map = FlatMap<LocId, Value>;

  bool empty() const { return !Entries || Entries->empty(); }
  size_t size() const { return Entries ? Entries->size() : 0; }
  void clear() { Entries.reset(); }
  /// Reserves storage for \p N bindings (hot-path builders that know the
  /// output size, e.g. the sparse transfer's def-set extraction).
  void reserve(size_t N) { mut().reserve(N); }

  Map::const_iterator begin() const { return ro().begin(); }
  Map::const_iterator end() const { return ro().end(); }

  /// Value bound to \p L (bottom if unbound).
  const Value &get(LocId L) const {
    const Value *V = Entries ? Entries->lookup(L) : nullptr;
    return V ? *V : Bottom;
  }

  bool contains(LocId L) const { return Entries && Entries->contains(L); }

  /// Strong update: bind \p L to \p V, discarding the old value.  Binding
  /// bottom removes the entry so states stay canonical.
  void set(LocId L, Value V) {
    if (V.isBot()) {
      if (contains(L))
        mut().erase(L);
      return;
    }
    mut().set(L, std::move(V));
  }

  /// Weak update (the paper's ⊔-update): join \p V into \p L's binding.
  /// Returns true if the binding grew.  The no-change test runs on the
  /// shared buffer, so a no-op weak update never detaches.
  bool weakSet(LocId L, const Value &V) {
    if (V.isBot())
      return false;
    const Value *Old = Entries ? Entries->lookup(L) : nullptr;
    if (Old && V.leq(*Old))
      return false;
    Value New = Old ? Old->join(V) : V;
    mut().set(L, std::move(New));
    return true;
  }

  bool operator==(const AbsState &O) const {
    return Entries == O.Entries || ro() == O.ro();
  }
  bool operator!=(const AbsState &O) const { return !(*this == O); }

  bool leq(const AbsState &O) const {
    if (Entries == O.Entries)
      return true;
    for (const auto &[L, V] : ro())
      if (!V.leq(O.get(L)))
        return false;
    return true;
  }

  /// In-place join with \p O; returns true if this state grew.  Joining
  /// into an empty state adopts \p O's buffer without copying; when the
  /// buffer is shared, a no-change join is detected read-only before
  /// paying for the detach.
  bool joinWith(const AbsState &O) {
    if (O.empty())
      return false;
    if (empty()) {
      Entries = O.Entries;
      CowStats::Adoptions.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (Entries == O.Entries)
      return false;
    if (Entries.use_count() > 1 && O.leq(*this))
      return false;
    return mut().mergeWith(
        *O.Entries, [](Value &A, const Value &B) { return A.joinWith(B); });
  }

  /// In-place widening with \p O (this ∇ (this ⊔ O) per entry); returns
  /// true if this state changed.
  bool widenWith(const AbsState &O) {
    if (O.empty())
      return false;
    if (empty()) {
      Entries = O.Entries;
      CowStats::Adoptions.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return mut().mergeWith(*O.Entries, [](Value &A, const Value &B) {
      Value W = A.widen(A.join(B));
      if (W == A)
        return false;
      A = std::move(W);
      return true;
    });
  }

  /// In-place narrowing with \p O (pointwise Value::narrow; entries whose
  /// refined value is bottom are dropped).  Returns true if changed.
  bool narrowWith(const AbsState &O) {
    bool Changed = false;
    Map New;
    for (const auto &[L, V] : ro()) {
      Value N = V.narrow(O.get(L));
      if (N != V)
        Changed = true;
      if (!N.isBot())
        New.set(L, std::move(N));
    }
    if (Changed)
      Entries = std::make_shared<Map>(std::move(New));
    return Changed;
  }

  /// Keeps only the entries whose location satisfies \p Keep.  Shares
  /// this state's buffer when the filter keeps everything.
  template <typename Pred> AbsState filtered(Pred Keep) const {
    AbsState R;
    if (!Entries)
      return R;
    Map New = Entries->filtered(Keep);
    if (New.size() == Entries->size()) {
      R.Entries = Entries;
      return R;
    }
    if (!New.empty())
      R.Entries = std::make_shared<Map>(std::move(New));
    return R;
  }

  std::string str() const;

private:
  /// Read-only view (the shared empty map when unallocated).
  const Map &ro() const { return Entries ? *Entries : EmptyMap; }

  /// Mutable view: allocates a private buffer, cloning the shared one
  /// when other states still reference it.
  Map &mut() {
    if (!Entries) {
      Entries = std::make_shared<Map>();
    } else if (Entries.use_count() > 1) {
      CowStats::Detaches.fetch_add(1, std::memory_order_relaxed);
      Entries = std::make_shared<Map>(*Entries);
    }
    return *Entries;
  }

  std::shared_ptr<Map> Entries;
  static const Map EmptyMap;
  static const Value Bottom;
};

} // namespace spa

#endif // SPA_DOMAINS_ABSSTATE_H
