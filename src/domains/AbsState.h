//===- AbsState.h - Abstract state: L̂ -> V̂ ----------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract state Ŝ = L̂ → V̂ (Section 2.3).  Missing entries denote
/// bottom values, so the empty state is the bottom state; this is what
/// makes the *sparse* representation possible: a point's state holds only
/// the locations the analysis actually wrote.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_DOMAINS_ABSSTATE_H
#define SPA_DOMAINS_ABSSTATE_H

#include "domains/Value.h"
#include "support/FlatMap.h"

#include <string>

namespace spa {

/// Finite map from abstract locations to abstract values.
class AbsState {
public:
  using Map = FlatMap<LocId, Value>;

  bool empty() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }
  void clear() { Entries.clear(); }
  /// Reserves storage for \p N bindings (hot-path builders that know the
  /// output size, e.g. the sparse transfer's def-set extraction).
  void reserve(size_t N) { Entries.reserve(N); }

  auto begin() const { return Entries.begin(); }
  auto end() const { return Entries.end(); }

  /// Value bound to \p L (bottom if unbound).
  const Value &get(LocId L) const {
    const Value *V = Entries.lookup(L);
    return V ? *V : Bottom;
  }

  bool contains(LocId L) const { return Entries.contains(L); }

  /// Strong update: bind \p L to \p V, discarding the old value.  Binding
  /// bottom removes the entry so states stay canonical.
  void set(LocId L, Value V) {
    if (V.isBot())
      Entries.erase(L);
    else
      Entries.set(L, std::move(V));
  }

  /// Weak update (the paper's ⊔-update): join \p V into \p L's binding.
  /// Returns true if the binding grew.
  bool weakSet(LocId L, const Value &V) {
    if (V.isBot())
      return false;
    Value &Slot = Entries.getOrCreate(L);
    return Slot.joinWith(V);
  }

  bool operator==(const AbsState &O) const { return Entries == O.Entries; }
  bool operator!=(const AbsState &O) const { return !(*this == O); }

  bool leq(const AbsState &O) const {
    for (const auto &[L, V] : Entries)
      if (!V.leq(O.get(L)))
        return false;
    return true;
  }

  /// In-place join with \p O; returns true if this state grew.
  bool joinWith(const AbsState &O) {
    return Entries.mergeWith(
        O.Entries, [](Value &A, const Value &B) { return A.joinWith(B); });
  }

  /// In-place widening with \p O (this ∇ (this ⊔ O) per entry); returns
  /// true if this state changed.
  bool widenWith(const AbsState &O) {
    return Entries.mergeWith(O.Entries, [](Value &A, const Value &B) {
      Value W = A.widen(A.join(B));
      if (W == A)
        return false;
      A = std::move(W);
      return true;
    });
  }

  /// In-place narrowing with \p O (pointwise Value::narrow; entries whose
  /// refined value is bottom are dropped).  Returns true if changed.
  bool narrowWith(const AbsState &O) {
    bool Changed = false;
    Map New;
    for (const auto &[L, V] : Entries) {
      Value N = V.narrow(O.get(L));
      if (N != V)
        Changed = true;
      if (!N.isBot())
        New.set(L, std::move(N));
    }
    if (Changed)
      Entries = std::move(New);
    return Changed;
  }

  /// Keeps only the entries whose location satisfies \p Keep.
  template <typename Pred> AbsState filtered(Pred Keep) const {
    AbsState R;
    for (const auto &[L, V] : Entries)
      if (Keep(L))
        R.Entries.set(L, V);
    return R;
  }

  std::string str() const;

private:
  Map Entries;
  static const Value Bottom;
};

} // namespace spa

#endif // SPA_DOMAINS_ABSSTATE_H
