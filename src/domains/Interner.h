//===- Interner.h - Hash-consing pool for id sets -------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-consing (interning) pool for the set-valued domain components:
/// sorted id sequences of three or more elements are canonicalized into
/// immutable pool nodes with stable 32-bit ids, so equal sets always
/// carry equal ids, set equality is an integer compare, and the union of
/// two pooled sets can be memoized.  This extends the sharing idea the
/// dependency relation already uses (BDD storage, paper Section 5.4) to
/// the value layer: the sparse fixpoint copies points-to sets into every
/// In/Out buffer along dependency edges, and with interning those copies
/// are 4-byte handles onto one node.
///
/// Concurrency: the pool is process-wide and shared by every analysis
/// (the partitioned parallel fixpoint interns from worker lanes).  It is
/// sharded by content hash; each shard takes a mutex for intern lookups
/// and join-cache probes, while dereferencing an already-published id is
/// lock-free (node slabs are append-only and published with a
/// release-store / acquire-load pair).  Nodes are immortal for the
/// process lifetime — the deliberate SPARROW/SVF-style trade: no
/// refcount traffic on the copy hot path, at the cost of monotone pool
/// growth (bounded by the number of *distinct* sets ever built, which
/// Tables 2-3 show is small compared to the number of set copies).
///
/// Observability: stats() feeds the value.pool.* gauges
/// (docs/OBSERVABILITY.md).
///
//===----------------------------------------------------------------------===//

#ifndef SPA_DOMAINS_INTERNER_H
#define SPA_DOMAINS_INTERNER_H

#include "support/Ids.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace spa {

/// Aggregated statistics of one (or several) interner pools; exported as
/// the value.pool.* gauges.
struct InternStats {
  uint64_t Nodes = 0;         ///< Live interned nodes (pool occupancy).
  uint64_t Hits = 0;          ///< intern() calls resolved to an existing node.
  uint64_t Misses = 0;        ///< intern() calls that created a node.
  uint64_t JoinCacheHits = 0; ///< Memoized pooled-join results served.
  uint64_t JoinCacheMisses = 0;
  uint64_t Bytes = 0; ///< Approx. heap bytes held by node storage.

  InternStats &operator+=(const InternStats &O) {
    Nodes += O.Nodes;
    Hits += O.Hits;
    Misses += O.Misses;
    JoinCacheHits += O.JoinCacheHits;
    JoinCacheMisses += O.JoinCacheMisses;
    Bytes += O.Bytes;
    return *this;
  }
};

/// Sharded, thread-safe hash-consing pool over sorted \p IdT sequences.
/// One process-wide instance per id type (global()).
template <typename IdT> class Interner {
public:
  static Interner &global() {
    static Interner P;
    return P;
  }

  /// Canonicalizes \p Elems — which must be sorted, duplicate-free, and
  /// hold at least two elements — into a pool node and returns its
  /// stable id.  Equal contents always yield equal ids.
  uint32_t intern(std::vector<IdT> &&Elems) {
    uint64_t H = hashContents(Elems);
    Shard &S = Shards[H & ShardMask];
    std::lock_guard<std::mutex> Lock(S.M);
    auto [B, E] = S.Table.equal_range(H);
    for (auto It = B; It != E; ++It)
      if (nodeInShard(S, It->second) == Elems) {
        ++S.Hits;
        return It->second;
      }
    uint32_t Idx = S.NumNodes.load(std::memory_order_relaxed);
    uint32_t SlabIdx = Idx >> SlabBits;
    if (SlabIdx >= MaxSlabs) {
      std::fprintf(stderr, "spa::Interner: pool shard overflow\n");
      std::abort();
    }
    std::vector<IdT> *Slab = S.Slabs[SlabIdx].load(std::memory_order_acquire);
    if (!Slab) {
      Slab = new std::vector<IdT>[SlabSize];
      S.Bytes += SlabSize * sizeof(std::vector<IdT>);
      S.Slabs[SlabIdx].store(Slab, std::memory_order_release);
    }
    Elems.shrink_to_fit();
    S.Bytes += Elems.capacity() * sizeof(IdT);
    Slab[Idx & (SlabSize - 1)] = std::move(Elems);
    uint32_t Id = (Idx << ShardBits) | static_cast<uint32_t>(H & ShardMask);
    S.Table.emplace(H, Id);
    // Publish after the node is fully constructed: a racing intern of
    // the same contents synchronizes on S.M; a reader holding the id
    // got it through that intern (or a fork/join edge) and pairs its
    // acquire slab load with the release store above.
    S.NumNodes.store(Idx + 1, std::memory_order_release);
    ++S.Misses;
    return Id;
  }

  /// The node behind \p Id (lock-free; nodes are immutable and their
  /// storage never moves, so the reference and iterators into it are
  /// stable for the process lifetime).
  const std::vector<IdT> &contents(uint32_t Id) const {
    const Shard &S = Shards[Id & ShardMask];
    uint32_t Idx = Id >> ShardBits;
    const std::vector<IdT> *Slab =
        S.Slabs[Idx >> SlabBits].load(std::memory_order_acquire);
    return Slab[Idx & (SlabSize - 1)];
  }

  /// Union of two pooled sets, memoized in a per-shard direct-mapped
  /// cache (the fixpoint joins the same pair of invariants over and
  /// over along dependency edges).
  uint32_t joinInterned(uint32_t A, uint32_t B) {
    if (A == B)
      return A;
    if (A > B)
      std::swap(A, B); // Union commutes; one cache line per pair.
    uint64_t Key = (static_cast<uint64_t>(A) << 32) | B;
    uint64_t KH = mix64(Key);
    Shard &S = Shards[KH & ShardMask];
    size_t Slot = (KH >> ShardBits) & (JoinCacheSize - 1);
    {
      std::lock_guard<std::mutex> Lock(S.M);
      if (S.JoinCache.empty())
        S.JoinCache.assign(JoinCacheSize, JoinEntry{EmptyKey, 0});
      if (S.JoinCache[Slot].Key == Key) {
        ++S.JoinCacheHits;
        return S.JoinCache[Slot].Result;
      }
      ++S.JoinCacheMisses;
    }
    const std::vector<IdT> &CA = contents(A);
    const std::vector<IdT> &CB = contents(B);
    uint32_t R;
    // Subset fast paths: supersets are canonical already, no allocation.
    if (CA.size() <= CB.size() &&
        std::includes(CB.begin(), CB.end(), CA.begin(), CA.end()))
      R = B;
    else if (CB.size() < CA.size() &&
             std::includes(CA.begin(), CA.end(), CB.begin(), CB.end()))
      R = A;
    else {
      std::vector<IdT> U;
      U.reserve(CA.size() + CB.size());
      std::set_union(CA.begin(), CA.end(), CB.begin(), CB.end(),
                     std::back_inserter(U));
      R = intern(std::move(U));
    }
    std::lock_guard<std::mutex> Lock(S.M);
    if (S.JoinCache.empty())
      S.JoinCache.assign(JoinCacheSize, JoinEntry{EmptyKey, 0});
    S.JoinCache[Slot] = JoinEntry{Key, R};
    return R;
  }

  InternStats stats() const {
    InternStats T;
    for (const Shard &S : Shards) {
      std::lock_guard<std::mutex> Lock(S.M);
      T.Nodes += S.NumNodes.load(std::memory_order_relaxed);
      T.Hits += S.Hits;
      T.Misses += S.Misses;
      T.JoinCacheHits += S.JoinCacheHits;
      T.JoinCacheMisses += S.JoinCacheMisses;
      T.Bytes += S.Bytes;
    }
    return T;
  }

private:
  static constexpr unsigned ShardBits = 3;
  static constexpr uint32_t NumShards = 1u << ShardBits;
  static constexpr uint32_t ShardMask = NumShards - 1;
  // Slabs are sized so a barely-used pool costs a few KiB, not hundreds
  // (the table harnesses fork one process per run, so fixed pool costs
  // land on every measured child): 256 nodes per slab, up to 1M nodes
  // per shard (8M per pool).
  static constexpr unsigned SlabBits = 8;
  static constexpr uint32_t SlabSize = 1u << SlabBits;
  static constexpr uint32_t MaxSlabs = 1u << 12;
  static constexpr size_t JoinCacheSize = 1u << 9;
  static constexpr uint64_t EmptyKey = ~0ull;

  struct JoinEntry {
    uint64_t Key;
    uint32_t Result;
  };

  struct Shard {
    mutable std::mutex M;
    /// Content hash -> node id; duplicates hold genuine hash collisions.
    std::unordered_multimap<uint64_t, uint32_t> Table;
    /// Append-only node storage: fixed-capacity array of lazily
    /// allocated slabs, so published node references never move and
    /// readers need no lock.
    std::array<std::atomic<std::vector<IdT> *>, MaxSlabs> Slabs{};
    std::atomic<uint32_t> NumNodes{0};
    /// Direct-mapped (idA, idB) -> union-id memo, guarded by M; lazily
    /// sized so idle pools cost nothing.
    std::vector<JoinEntry> JoinCache;
    uint64_t Hits = 0, Misses = 0;
    uint64_t JoinCacheHits = 0, JoinCacheMisses = 0;
    uint64_t Bytes = 0;
  };

  Interner() = default;
  ~Interner() {
    for (Shard &S : Shards)
      for (auto &SlabPtr : S.Slabs)
        delete[] SlabPtr.load(std::memory_order_relaxed);
  }

  static uint64_t mix64(uint64_t X) {
    X ^= X >> 33;
    X *= 0xff51afd7ed558ccdull;
    X ^= X >> 33;
    X *= 0xc4ceb9fe1a85ec53ull;
    X ^= X >> 33;
    return X;
  }

  static uint64_t hashContents(const std::vector<IdT> &Elems) {
    uint64_t H = 0xcbf29ce484222325ull ^ Elems.size();
    for (IdT E : Elems) {
      H ^= E.value();
      H *= 0x100000001b3ull;
    }
    return mix64(H);
  }

  const std::vector<IdT> &nodeInShard(const Shard &S, uint32_t Id) const {
    uint32_t Idx = Id >> ShardBits;
    return S.Slabs[Idx >> SlabBits].load(std::memory_order_acquire)
        [Idx & (SlabSize - 1)];
  }

  Shard Shards[NumShards];
};

/// Combined statistics of the points-to and callee-set pools (the two
/// instantiations the value domain uses).
InternStats combinedInternerStats();

} // namespace spa

#endif // SPA_DOMAINS_INTERNER_H
