//===- Command.h - Control-point commands -------------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Commands attached to control points.  Each control point carries exactly
/// one command (the paper's cmd(c)).  Structured control flow is lowered to
/// Assume commands on branch edges; calls are lowered to a Call point
/// (argument/parameter binding, control transfer to callees) paired with a
/// Return point (return-value binding after the callee exits).
///
//===----------------------------------------------------------------------===//

#ifndef SPA_IR_COMMAND_H
#define SPA_IR_COMMAND_H

#include "ir/IExpr.h"
#include "support/Ids.h"

#include <memory>
#include <vector>

namespace spa {

enum class CmdKind {
  Skip,   ///< No-op (also join points and loop heads).
  Assign, ///< Target := E.
  Store,  ///< *Target := E (Target is the pointer variable's location).
  Alloc,  ///< Target := alloc(E); mints summary location AllocSite.
  Assume, ///< Filters states by Cnd.
  Call,   ///< Binds callee parameters to Args; control enters callees.
  Return, ///< Return site: Target := join of callee return slots.
  Entry,  ///< Function entry.
  Exit,   ///< Function exit (single, shared by all returns).
  RetStmt ///< `return E`: assigns the function's return slot.
};

/// One command.  Field use depends on \c Kind; unused fields are invalid.
struct Command {
  CmdKind Kind = CmdKind::Skip;

  /// Assign/Alloc: assigned location.  Store: the pointer variable.
  /// Call: function-pointer variable for indirect calls (invalid if
  /// direct).  Return: the variable receiving the return value (invalid
  /// for value-less calls).  RetStmt: the function's return slot.
  LocId Target;

  /// Assign/Store RHS, Alloc size, RetStmt value.
  std::unique_ptr<IExpr> E;

  /// Assume condition.
  std::unique_ptr<ICond> Cnd;

  /// Alloc: the heap location minted here.
  LocId AllocSite;

  /// Call: statically resolved direct callee (invalid for indirect or
  /// external calls).
  FuncId DirectCallee;
  /// Call: true when the callee is named but not defined in this program.
  /// External calls return an unknown value and have no side effects.
  bool External = false;
  /// Call: actual arguments.
  std::vector<std::unique_ptr<IExpr>> Args;
  /// Call: the paired Return point.  Return: the paired Call point.
  PointId Pair;

  bool isCall() const { return Kind == CmdKind::Call; }
  /// True for an indirect call through a function pointer.
  bool isIndirectCall() const { return isCall() && Target.isValid(); }
};

} // namespace spa

#endif // SPA_IR_COMMAND_H
