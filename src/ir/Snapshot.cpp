//===- Snapshot.cpp - spa-ir-v1 writer and strict loader ----------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Snapshot.h"

#include "obs/Journal.h"
#include "obs/Metrics.h"

#include <cstdio>
#include <cstring>

namespace spa {
namespace {

constexpr uint8_t Magic[8] = {'S', 'P', 'A', 'I', 'R', '\n', 0x1a, 0};

enum SectionKind : uint32_t {
  SecMeta = 1,
  SecLocs = 2,
  SecFuncs = 3,
  SecPoints = 4,
  SecEdges = 5,
  SecDepGraph = 6, // v2+, optional: opaque payload (core/DepSnapshot.h).
};
constexpr uint32_t NumRequiredSections = 5;
constexpr size_t HeaderBytes = 16;   // magic + version + section count
constexpr size_t TableEntryBytes = 32;

/// Expression trees are decoded recursively; a crafted chain of Binary
/// nodes must not be able to blow the stack, so nesting is capped far
/// above anything the frontend emits.
constexpr uint32_t MaxExprDepth = 1024;

const char *sectionName(uint32_t Kind) {
  switch (Kind) {
  case SecMeta: return "meta";
  case SecLocs: return "locs";
  case SecFuncs: return "funcs";
  case SecPoints: return "points";
  case SecEdges: return "edges";
  case SecDepGraph: return "depgraph";
  }
  return "?";
}

uint64_t fnv1a64(const uint8_t *Data, size_t Size) {
  uint64_t H = 14695981039346656037ull;
  for (size_t I = 0; I < Size; ++I) {
    H ^= Data[I];
    H *= 1099511628211ull;
  }
  return H;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

/// Byte-by-byte little-endian append buffer; one per section payload.
struct Writer {
  std::vector<uint8_t> Buf;

  void u8(uint8_t V) { Buf.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void id(PointId V) { u32(V.value()); }
  void id(LocId V) { u32(V.value()); }
  void id(FuncId V) { u32(V.value()); }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Buf.insert(Buf.end(), S.begin(), S.end());
  }
};

void writeExpr(Writer &W, const IExpr &E) {
  W.u8(static_cast<uint8_t>(E.Kind));
  switch (E.Kind) {
  case IExprKind::Num:
    W.i64(E.Num);
    break;
  case IExprKind::Var:
  case IExprKind::AddrOf:
  case IExprKind::Deref:
    W.id(E.Loc);
    break;
  case IExprKind::Binary:
    W.u8(static_cast<uint8_t>(E.Op));
    writeExpr(W, *E.Lhs);
    writeExpr(W, *E.Rhs);
    break;
  case IExprKind::Input:
    break;
  case IExprKind::FuncAddr:
    W.id(E.Func);
    break;
  }
}

void writeOptExpr(Writer &W, const IExpr *E) {
  W.u8(E != nullptr);
  if (E)
    writeExpr(W, *E);
}

void writeCommand(Writer &W, const Command &C) {
  W.u8(static_cast<uint8_t>(C.Kind));
  W.id(C.Target);
  writeOptExpr(W, C.E.get());
  W.u8(C.Cnd != nullptr);
  if (C.Cnd) {
    W.u8(static_cast<uint8_t>(C.Cnd->Op));
    writeExpr(W, *C.Cnd->Lhs);
    writeExpr(W, *C.Cnd->Rhs);
  }
  W.id(C.AllocSite);
  W.id(C.DirectCallee);
  W.u8(C.External);
  W.u32(static_cast<uint32_t>(C.Args.size()));
  for (const auto &A : C.Args)
    writeExpr(W, *A);
  W.id(C.Pair);
}

void writeEdgeList(Writer &W, const std::vector<PointId> &Edges) {
  W.u32(static_cast<uint32_t>(Edges.size()));
  for (PointId P : Edges)
    W.id(P);
}

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

/// Bounds-checked little-endian cursor over one section's payload.  The
/// first failed read latches Err; subsequent reads return zero and keep
/// the cursor put, so decode loops can bail on `R.failed()` at their
/// natural checkpoints without checking every call.
struct Reader {
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  const char *Section;
  SnapshotError Err;

  Reader(const uint8_t *D, size_t N, const char *Sec)
      : Data(D), Size(N), Section(Sec) {}

  bool failed() const { return !Err.ok(); }
  size_t remaining() const { return Size - Pos; }

  void fail(SnapErrc C, const std::string &What) {
    if (Err.ok())
      Err = {C, std::string(Section) + " section: " + What + " at offset " +
                    std::to_string(Pos)};
  }
  bool need(size_t N) {
    if (failed())
      return false;
    if (remaining() < N) {
      fail(SnapErrc::Malformed, "unexpected end of section");
      return false;
    }
    return true;
  }
  uint8_t u8() {
    if (!need(1))
      return 0;
    return Data[Pos++];
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos++]) << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos++]) << (8 * I);
    return V;
  }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  std::string str() {
    uint32_t N = u32();
    if (!need(N))
      return {};
    std::string S(reinterpret_cast<const char *>(Data + Pos), N);
    Pos += N;
    return S;
  }
  /// Reads an element count that is about to drive a decode loop.  Each
  /// element occupies at least \p MinElemBytes on the wire, so a count
  /// beyond remaining()/MinElemBytes is provably a lie — reject it before
  /// any allocation, not after.
  uint32_t count(size_t MinElemBytes, const char *What) {
    uint32_t N = u32();
    if (failed())
      return 0;
    if (static_cast<uint64_t>(N) * MinElemBytes > remaining()) {
      fail(SnapErrc::Malformed, std::string("impossible ") + What +
                                    " count " + std::to_string(N));
      return 0;
    }
    return N;
  }
};

/// Id-bounds context: table sizes from the Meta section, against which
/// every id in later sections is validated (InvalidValue is legal
/// wherever the in-memory IR uses it as "absent").
struct Bounds {
  uint64_t Points = 0, Funcs = 0, Locs = 0;
};

template <typename IdT>
IdT readId(Reader &R, uint64_t Limit, const char *What) {
  uint32_t Raw = R.u32();
  if (R.failed())
    return IdT();
  if (Raw != IdT::InvalidValue && Raw >= Limit) {
    R.fail(SnapErrc::BadId, std::string(What) + " id " + std::to_string(Raw) +
                                " out of bounds (table size " +
                                std::to_string(Limit) + ")");
    return IdT();
  }
  return Raw == IdT::InvalidValue ? IdT() : IdT(Raw);
}

std::unique_ptr<IExpr> readExpr(Reader &R, const Bounds &B, uint32_t Depth) {
  if (Depth > MaxExprDepth) {
    R.fail(SnapErrc::Malformed, "expression nesting too deep");
    return nullptr;
  }
  uint8_t RawKind = R.u8();
  if (R.failed())
    return nullptr;
  if (RawKind > static_cast<uint8_t>(IExprKind::FuncAddr)) {
    R.fail(SnapErrc::Malformed,
           "bad expression kind " + std::to_string(RawKind));
    return nullptr;
  }
  auto E = std::make_unique<IExpr>();
  E->Kind = static_cast<IExprKind>(RawKind);
  switch (E->Kind) {
  case IExprKind::Num:
    E->Num = R.i64();
    break;
  case IExprKind::Var:
  case IExprKind::AddrOf:
  case IExprKind::Deref:
    E->Loc = readId<LocId>(R, B.Locs, "loc");
    // Var/AddrOf/Deref must reference an actual location.
    if (!R.failed() && !E->Loc.isValid())
      R.fail(SnapErrc::BadId, "variable reference without a location");
    break;
  case IExprKind::Binary: {
    uint8_t RawOp = R.u8();
    if (RawOp > static_cast<uint8_t>(BinOp::Mod)) {
      R.fail(SnapErrc::Malformed, "bad binary op " + std::to_string(RawOp));
      return nullptr;
    }
    E->Op = static_cast<BinOp>(RawOp);
    E->Lhs = readExpr(R, B, Depth + 1);
    E->Rhs = readExpr(R, B, Depth + 1);
    break;
  }
  case IExprKind::Input:
    break;
  case IExprKind::FuncAddr:
    E->Func = readId<FuncId>(R, B.Funcs, "func");
    if (!R.failed() && !E->Func.isValid())
      R.fail(SnapErrc::BadId, "function address without a function");
    break;
  }
  return R.failed() ? nullptr : std::move(E);
}

bool readCommand(Reader &R, const Bounds &B, Command &C) {
  uint8_t RawKind = R.u8();
  if (RawKind > static_cast<uint8_t>(CmdKind::RetStmt)) {
    R.fail(SnapErrc::Malformed, "bad command kind " + std::to_string(RawKind));
    return false;
  }
  C.Kind = static_cast<CmdKind>(RawKind);
  C.Target = readId<LocId>(R, B.Locs, "target loc");
  uint8_t HasE = R.u8();
  if (HasE > 1) {
    R.fail(SnapErrc::Malformed, "bad expression presence flag");
    return false;
  }
  if (HasE)
    C.E = readExpr(R, B, 0);
  uint8_t HasCnd = R.u8();
  if (HasCnd > 1) {
    R.fail(SnapErrc::Malformed, "bad condition presence flag");
    return false;
  }
  if (HasCnd) {
    uint8_t RawOp = R.u8();
    if (RawOp > static_cast<uint8_t>(RelOp::Ne)) {
      R.fail(SnapErrc::Malformed, "bad relational op " + std::to_string(RawOp));
      return false;
    }
    C.Cnd = std::make_unique<ICond>();
    C.Cnd->Op = static_cast<RelOp>(RawOp);
    C.Cnd->Lhs = readExpr(R, B, 0);
    C.Cnd->Rhs = readExpr(R, B, 0);
  }
  C.AllocSite = readId<LocId>(R, B.Locs, "alloc site");
  C.DirectCallee = readId<FuncId>(R, B.Funcs, "direct callee");
  uint8_t Ext = R.u8();
  if (Ext > 1) {
    R.fail(SnapErrc::Malformed, "bad external flag");
    return false;
  }
  C.External = Ext;
  uint32_t NumArgs = R.count(1, "argument");
  for (uint32_t I = 0; I < NumArgs && !R.failed(); ++I)
    C.Args.push_back(readExpr(R, B, 0));
  C.Pair = readId<PointId>(R, B.Points, "pair point");
  return !R.failed();
}

//===----------------------------------------------------------------------===//
// Section table parsing (shared by load and inspect)
//===----------------------------------------------------------------------===//

struct SectionEntry {
  uint32_t Kind = 0;
  uint64_t Offset = 0, Length = 0, Checksum = 0;
};

/// Parses the fixed header and the section table, enforcing the strict
/// layout invariants: known kinds, each exactly once, sections contiguous
/// in table order and tiling the file exactly.  Checksum verification is
/// the caller's choice (the inspector reports mismatches; the loader
/// rejects them).
SnapshotError parseTable(const uint8_t *Data, size_t Size, uint32_t &Version,
                         std::vector<SectionEntry> &Table) {
  if (Size < HeaderBytes)
    return {SnapErrc::Truncated, "file shorter than the 16-byte header"};
  if (std::memcmp(Data, Magic, sizeof(Magic)) != 0)
    return {SnapErrc::BadMagic, "bad magic bytes"};
  auto U32At = [&](size_t Off) {
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Data[Off + I]) << (8 * I);
    return V;
  };
  auto U64At = [&](size_t Off) {
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Data[Off + I]) << (8 * I);
    return V;
  };
  Version = U32At(8);
  if (Version < MinSnapshotVersion || Version > SnapshotVersion)
    return {SnapErrc::BadVersion, "format version " + std::to_string(Version) +
                                      ", this reader understands only " +
                                      std::to_string(MinSnapshotVersion) +
                                      ".." + std::to_string(SnapshotVersion)};
  // v1 has exactly the five required sections; v2 may append the
  // optional depgraph section.
  uint32_t Count = U32At(12);
  uint32_t MaxCount = Version >= 2 ? NumRequiredSections + 1
                                   : NumRequiredSections;
  if (Count < NumRequiredSections || Count > MaxCount)
    return {SnapErrc::BadSectionTable,
            "section count " + std::to_string(Count) + ", want " +
                std::to_string(NumRequiredSections) +
                (MaxCount > NumRequiredSections
                     ? " or " + std::to_string(MaxCount)
                     : "")};
  size_t TableEnd = HeaderBytes + static_cast<size_t>(Count) * TableEntryBytes;
  if (TableEnd > Size)
    return {SnapErrc::Truncated, "section table extends past end of file"};

  uint64_t Expected = TableEnd;
  uint32_t SeenMask = 0;
  for (uint32_t I = 0; I < Count; ++I) {
    size_t Off = HeaderBytes + static_cast<size_t>(I) * TableEntryBytes;
    SectionEntry E;
    E.Kind = U32At(Off);
    // Off+4 is a reserved u32 (zero on write, ignored on read).
    E.Offset = U64At(Off + 8);
    E.Length = U64At(Off + 16);
    E.Checksum = U64At(Off + 24);
    uint32_t MaxKind = Version >= 2 ? SecDepGraph : SecEdges;
    if (E.Kind < SecMeta || E.Kind > MaxKind)
      return {SnapErrc::BadSectionTable,
              "unknown section kind " + std::to_string(E.Kind)};
    if (SeenMask & (1u << E.Kind))
      return {SnapErrc::DuplicateSection,
              std::string("duplicate ") + sectionName(E.Kind) + " section"};
    SeenMask |= 1u << E.Kind;
    // Contiguity: sections must tile [TableEnd, Size) exactly, in table
    // order.  Offset/length lies (overlap, gaps, out of bounds) all fail
    // this one check; comparing against Expected also sidesteps
    // offset+length overflow.
    if (E.Offset != Expected || E.Length > Size - Expected)
      return {SnapErrc::BadSectionTable,
              std::string(sectionName(E.Kind)) + " section offset " +
                  std::to_string(E.Offset) + " length " +
                  std::to_string(E.Length) + " does not tile the file"};
    Expected += E.Length;
    Table.push_back(E);
  }
  if (Expected != Size)
    return {SnapErrc::BadSectionTable,
            std::to_string(Size - Expected) + " trailing bytes after the last section"};
  for (uint32_t K = SecMeta; K <= SecEdges; ++K)
    if (!(SeenMask & (1u << K)))
      return {SnapErrc::MissingSection,
              std::string("missing ") + sectionName(K) + " section"};
  return {};
}

} // namespace

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

const char *snapshotErrorName(SnapErrc C) {
  switch (C) {
  case SnapErrc::None: return "ok";
  case SnapErrc::Io: return "io";
  case SnapErrc::BadMagic: return "bad_magic";
  case SnapErrc::BadVersion: return "bad_version";
  case SnapErrc::Truncated: return "truncated";
  case SnapErrc::BadSectionTable: return "bad_section_table";
  case SnapErrc::DuplicateSection: return "duplicate_section";
  case SnapErrc::MissingSection: return "missing_section";
  case SnapErrc::ChecksumMismatch: return "checksum_mismatch";
  case SnapErrc::Malformed: return "malformed";
  case SnapErrc::BadId: return "bad_id";
  }
  return "unknown";
}

std::string SnapshotError::str() const {
  std::string S = snapshotErrorName(Code);
  if (!Message.empty()) {
    S += ": ";
    S += Message;
  }
  return S;
}

std::vector<uint8_t>
saveSnapshot(const Program &Prog,
             const std::vector<uint8_t> *DepGraphPayload) {
  Writer Meta, Locs, Funcs, Points, Edges;

  Meta.u64(Prog.numPoints());
  Meta.u64(Prog.numFuncs());
  Meta.u64(Prog.numLocs());
  Meta.id(Prog.Start);
  Meta.id(Prog.Main);

  for (const LocInfo &L : Prog.Locs) {
    Locs.u8(static_cast<uint8_t>(L.Kind));
    Locs.str(L.Name);
    Locs.id(L.Owner);
    Locs.id(L.Site);
  }

  for (const FunctionInfo &F : Prog.Funcs) {
    Funcs.str(F.Name);
    Funcs.u32(static_cast<uint32_t>(F.Params.size()));
    for (LocId L : F.Params)
      Funcs.id(L);
    Funcs.u32(static_cast<uint32_t>(F.Locals.size()));
    for (LocId L : F.Locals)
      Funcs.id(L);
    Funcs.id(F.RetSlot);
    Funcs.id(F.Entry);
    Funcs.id(F.Exit);
    Funcs.u32(static_cast<uint32_t>(F.Points.size()));
    for (PointId P : F.Points)
      Funcs.id(P);
  }

  for (const Point &P : Prog.Points) {
    writeCommand(Points, P.Cmd);
    Points.id(P.Func);
    Points.u32(P.Line);
  }

  // Both edge directions are serialized verbatim: predecessor order feeds
  // deterministic joins, so rebuilding Preds from Succs on load would
  // have to reproduce the builder's insertion order exactly — storing it
  // is cheaper and future-proof.
  for (const auto &S : Prog.Succs)
    writeEdgeList(Edges, S);
  for (const auto &P : Prog.Preds)
    writeEdgeList(Edges, P);

  Writer DepGraph;
  if (DepGraphPayload && !DepGraphPayload->empty())
    DepGraph.Buf = *DepGraphPayload;

  std::vector<std::pair<uint32_t, const Writer *>> Sections = {
      {SecMeta, &Meta},
      {SecLocs, &Locs},
      {SecFuncs, &Funcs},
      {SecPoints, &Points},
      {SecEdges, &Edges},
  };
  if (!DepGraph.Buf.empty())
    Sections.emplace_back(SecDepGraph, &DepGraph);

  Writer Out;
  Out.Buf.insert(Out.Buf.end(), Magic, Magic + sizeof(Magic));
  Out.u32(SnapshotVersion);
  Out.u32(static_cast<uint32_t>(Sections.size()));
  uint64_t Offset = HeaderBytes + Sections.size() * TableEntryBytes;
  for (const auto &[Kind, W] : Sections) {
    Out.u32(Kind);
    Out.u32(0); // reserved
    Out.u64(Offset);
    Out.u64(W->Buf.size());
    Out.u64(fnv1a64(W->Buf.data(), W->Buf.size()));
    Offset += W->Buf.size();
  }
  for (const auto &[Kind, W] : Sections)
    Out.Buf.insert(Out.Buf.end(), W->Buf.begin(), W->Buf.end());

  SPA_OBS_COUNT("snapshot.saves", 1);
  SPA_OBS_GAUGE_SET("snapshot.save.bytes", Out.Buf.size());
  SPA_OBS_JOURNAL(SnapshotSave, Out.Buf.size(), Sections.size());
  return std::move(Out.Buf);
}

SnapshotLoadResult loadSnapshot(const uint8_t *Data, size_t Size) {
  SnapshotLoadResult Res;
  auto Fail = [&](SnapshotError E) {
    Res.Error = std::move(E);
    Res.Prog.reset();
    SPA_OBS_COUNT("snapshot.load.errors", 1);
    SPA_OBS_JOURNAL(SnapshotLoad, Size,
                    static_cast<uint64_t>(Res.Error.Code));
    return std::move(Res);
  };

  uint32_t Version = 0;
  std::vector<SectionEntry> Table;
  if (SnapshotError E = parseTable(Data, Size, Version, Table); !E.ok())
    return Fail(std::move(E));

  // Checksums gate deep decoding: a flipped bit anywhere in a payload is
  // caught here, so the structural decoders below only ever see either
  // valid producer output or a *structurally* crafted attack, and the
  // bounds checks handle the latter.
  for (const SectionEntry &E : Table)
    if (fnv1a64(Data + E.Offset, E.Length) != E.Checksum)
      return Fail({SnapErrc::ChecksumMismatch,
                   std::string(sectionName(E.Kind)) +
                       " section payload does not match its checksum"});

  auto section = [&](uint32_t Kind) -> const SectionEntry & {
    for (const SectionEntry &E : Table)
      if (E.Kind == Kind)
        return E;
    __builtin_unreachable(); // parseTable guarantees the required five.
  };
  auto readerFor = [&](uint32_t Kind) {
    const SectionEntry &E = section(Kind);
    return Reader(Data + E.Offset, E.Length, sectionName(Kind));
  };

  // Meta first: its table sizes bound every id in the other sections.
  Bounds B;
  PointId Dummy;
  (void)Dummy;
  Reader MetaR = readerFor(SecMeta);
  B.Points = MetaR.u64();
  B.Funcs = MetaR.u64();
  B.Locs = MetaR.u64();
  auto Prog = std::make_unique<Program>();
  Prog->Start = readId<FuncId>(MetaR, B.Funcs, "start func");
  Prog->Main = readId<FuncId>(MetaR, B.Funcs, "main func");
  if (!MetaR.failed() && MetaR.remaining() != 0)
    MetaR.fail(SnapErrc::Malformed, "trailing bytes");
  if (MetaR.failed())
    return Fail(std::move(MetaR.Err));
  // Counts are decoded as u64 but ids are u32: a table bigger than the
  // id space could never have been written by the serializer.
  if (B.Points >= LocId::InvalidValue || B.Funcs >= LocId::InvalidValue ||
      B.Locs >= LocId::InvalidValue)
    return Fail({SnapErrc::Malformed, "meta section: table size exceeds id space"});

  Reader LocsR = readerFor(SecLocs);
  if (B.Locs * 13 > LocsR.Size) // kind + len + owner + site minimum
    return Fail({SnapErrc::Malformed,
                 "locs section too short for its declared count"});
  for (uint64_t I = 0; I < B.Locs && !LocsR.failed(); ++I) {
    LocInfo L;
    uint8_t RawKind = LocsR.u8();
    if (RawKind > static_cast<uint8_t>(LocKind::AllocSite)) {
      LocsR.fail(SnapErrc::Malformed,
                 "bad loc kind " + std::to_string(RawKind));
      break;
    }
    L.Kind = static_cast<LocKind>(RawKind);
    L.Name = LocsR.str();
    L.Owner = readId<FuncId>(LocsR, B.Funcs, "loc owner");
    L.Site = readId<PointId>(LocsR, B.Points, "loc site");
    Prog->Locs.push_back(std::move(L));
  }
  if (!LocsR.failed() && LocsR.remaining() != 0)
    LocsR.fail(SnapErrc::Malformed, "trailing bytes");
  if (LocsR.failed())
    return Fail(std::move(LocsR.Err));

  Reader FuncsR = readerFor(SecFuncs);
  if (B.Funcs * 28 > FuncsR.Size) // name len + 2 counts + 3 ids + count
    return Fail({SnapErrc::Malformed,
                 "funcs section too short for its declared count"});
  for (uint64_t I = 0; I < B.Funcs && !FuncsR.failed(); ++I) {
    FunctionInfo F;
    F.Name = FuncsR.str();
    uint32_t NumParams = FuncsR.count(4, "param");
    for (uint32_t J = 0; J < NumParams && !FuncsR.failed(); ++J)
      F.Params.push_back(readId<LocId>(FuncsR, B.Locs, "param"));
    uint32_t NumLocals = FuncsR.count(4, "local");
    for (uint32_t J = 0; J < NumLocals && !FuncsR.failed(); ++J)
      F.Locals.push_back(readId<LocId>(FuncsR, B.Locs, "local"));
    F.RetSlot = readId<LocId>(FuncsR, B.Locs, "ret slot");
    F.Entry = readId<PointId>(FuncsR, B.Points, "entry");
    F.Exit = readId<PointId>(FuncsR, B.Points, "exit");
    uint32_t NumPoints = FuncsR.count(4, "point");
    for (uint32_t J = 0; J < NumPoints && !FuncsR.failed(); ++J)
      F.Points.push_back(readId<PointId>(FuncsR, B.Points, "func point"));
    Prog->Funcs.push_back(std::move(F));
  }
  if (!FuncsR.failed() && FuncsR.remaining() != 0)
    FuncsR.fail(SnapErrc::Malformed, "trailing bytes");
  if (FuncsR.failed())
    return Fail(std::move(FuncsR.Err));

  Reader PointsR = readerFor(SecPoints);
  if (B.Points * 28 > PointsR.Size) // minimum encoded command + func + line
    return Fail({SnapErrc::Malformed,
                 "points section too short for its declared count"});
  for (uint64_t I = 0; I < B.Points && !PointsR.failed(); ++I) {
    Point P;
    if (!readCommand(PointsR, B, P.Cmd))
      break;
    P.Func = readId<FuncId>(PointsR, B.Funcs, "point func");
    P.Line = PointsR.u32();
    Prog->Points.push_back(std::move(P));
  }
  if (!PointsR.failed() && PointsR.remaining() != 0)
    PointsR.fail(SnapErrc::Malformed, "trailing bytes");
  if (PointsR.failed())
    return Fail(std::move(PointsR.Err));

  Reader EdgesR = readerFor(SecEdges);
  if (B.Points * 8 > EdgesR.Size) // two u32 counts per point minimum
    return Fail({SnapErrc::Malformed,
                 "edges section too short for its declared count"});
  for (auto *Vec : {&Prog->Succs, &Prog->Preds}) {
    for (uint64_t I = 0; I < B.Points && !EdgesR.failed(); ++I) {
      std::vector<PointId> Edges;
      uint32_t N = EdgesR.count(4, "edge");
      for (uint32_t J = 0; J < N && !EdgesR.failed(); ++J)
        Edges.push_back(readId<PointId>(EdgesR, B.Points, "edge"));
      Vec->push_back(std::move(Edges));
    }
  }
  if (!EdgesR.failed() && EdgesR.remaining() != 0)
    EdgesR.fail(SnapErrc::Malformed, "trailing bytes");
  if (EdgesR.failed())
    return Fail(std::move(EdgesR.Err));

  // FuncByName is derived state: rebuilding it here (first id wins, same
  // as the builder's insertion behavior — names are unique anyway) keeps
  // hash-map iteration artifacts out of the wire format.
  for (uint32_t I = 0; I < Prog->Funcs.size(); ++I)
    Prog->FuncByName.emplace(Prog->Funcs[I].Name, FuncId(I));

  // Optional depgraph payload (v2): opaque here, handed back verbatim —
  // its checksum was verified with the others above.
  for (const SectionEntry &E : Table)
    if (E.Kind == SecDepGraph) {
      Res.DepGraph.assign(Data + E.Offset, Data + E.Offset + E.Length);
      Res.HasDepGraph = true;
    }

  SPA_OBS_COUNT("snapshot.loads", 1);
  SPA_OBS_GAUGE_SET("snapshot.load.bytes", Size);
  SPA_OBS_JOURNAL(SnapshotLoad, Size, 0);
  Res.Prog = std::move(Prog);
  return Res;
}

SnapshotLoadResult loadSnapshot(const std::vector<uint8_t> &Bytes) {
  return loadSnapshot(Bytes.data(), Bytes.size());
}

SnapshotLoadResult loadSnapshotFile(const std::string &Path) {
  SnapshotLoadResult Res;
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Res.Error = {SnapErrc::Io, "cannot open " + Path};
    return Res;
  }
  std::vector<uint8_t> Bytes;
  uint8_t Chunk[1 << 16];
  size_t N;
  while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Bytes.insert(Bytes.end(), Chunk, Chunk + N);
  bool ReadErr = std::ferror(F);
  std::fclose(F);
  if (ReadErr) {
    Res.Error = {SnapErrc::Io, "read error on " + Path};
    return Res;
  }
  return loadSnapshot(Bytes);
}

bool writeSnapshotFile(const std::string &Path, const Program &Prog,
                       std::string &Error,
                       const std::vector<uint8_t> *DepGraphPayload) {
  std::vector<uint8_t> Bytes = saveSnapshot(Prog, DepGraphPayload);
  FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    Error = "cannot open " + Path + " for writing";
    return false;
  }
  size_t Written = std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  bool Ok = Written == Bytes.size() && std::fclose(F) == 0;
  if (!Ok) {
    if (Written != Bytes.size())
      std::fclose(F);
    Error = "short write to " + Path;
    return false;
  }
  return true;
}

SnapshotError inspectSnapshot(const uint8_t *Data, size_t Size,
                              SnapshotInfo &Info) {
  Info.TotalBytes = Size;
  std::vector<SectionEntry> Table;
  SnapshotError Err = parseTable(Data, Size, Info.Version, Table);
  for (const SectionEntry &E : Table) {
    SnapshotSectionInfo S;
    S.Kind = E.Kind;
    S.Name = sectionName(E.Kind);
    S.Offset = E.Offset;
    S.Length = E.Length;
    S.Checksum = E.Checksum;
    S.ChecksumOk = fnv1a64(Data + E.Offset, E.Length) == E.Checksum;
    Info.Sections.push_back(S);
  }
  return Err;
}

//===----------------------------------------------------------------------===//
// Structural equality
//===----------------------------------------------------------------------===//

namespace {

bool exprEq(const IExpr *A, const IExpr *B) {
  if (!A || !B)
    return A == B;
  if (A->Kind != B->Kind)
    return false;
  switch (A->Kind) {
  case IExprKind::Num:
    return A->Num == B->Num;
  case IExprKind::Var:
  case IExprKind::AddrOf:
  case IExprKind::Deref:
    return A->Loc == B->Loc;
  case IExprKind::Binary:
    return A->Op == B->Op && exprEq(A->Lhs.get(), B->Lhs.get()) &&
           exprEq(A->Rhs.get(), B->Rhs.get());
  case IExprKind::Input:
    return true;
  case IExprKind::FuncAddr:
    return A->Func == B->Func;
  }
  return false;
}

bool cmdEq(const Command &A, const Command &B) {
  if (A.Kind != B.Kind || A.Target != B.Target ||
      A.AllocSite != B.AllocSite || A.DirectCallee != B.DirectCallee ||
      A.External != B.External || A.Pair != B.Pair ||
      A.Args.size() != B.Args.size())
    return false;
  if (!exprEq(A.E.get(), B.E.get()))
    return false;
  if ((A.Cnd != nullptr) != (B.Cnd != nullptr))
    return false;
  if (A.Cnd && (A.Cnd->Op != B.Cnd->Op ||
                !exprEq(A.Cnd->Lhs.get(), B.Cnd->Lhs.get()) ||
                !exprEq(A.Cnd->Rhs.get(), B.Cnd->Rhs.get())))
    return false;
  for (size_t I = 0; I < A.Args.size(); ++I)
    if (!exprEq(A.Args[I].get(), B.Args[I].get()))
      return false;
  return true;
}

} // namespace

std::string programDiff(const Program &A, const Program &B) {
  auto at = [](const char *What, size_t I) {
    return std::string(What) + " " + std::to_string(I) + " differs";
  };
  if (A.numLocs() != B.numLocs())
    return "loc table size differs";
  for (size_t I = 0; I < A.numLocs(); ++I) {
    const LocInfo &LA = A.Locs[I], &LB = B.Locs[I];
    if (LA.Kind != LB.Kind || LA.Name != LB.Name || LA.Owner != LB.Owner ||
        LA.Site != LB.Site)
      return at("loc", I);
  }
  if (A.numFuncs() != B.numFuncs())
    return "function table size differs";
  for (size_t I = 0; I < A.numFuncs(); ++I) {
    const FunctionInfo &FA = A.Funcs[I], &FB = B.Funcs[I];
    if (FA.Name != FB.Name || FA.Params != FB.Params ||
        FA.Locals != FB.Locals || FA.RetSlot != FB.RetSlot ||
        FA.Entry != FB.Entry || FA.Exit != FB.Exit || FA.Points != FB.Points)
      return at("function", I);
  }
  if (A.numPoints() != B.numPoints())
    return "point table size differs";
  for (size_t I = 0; I < A.numPoints(); ++I) {
    const Point &PA = A.Points[I], &PB = B.Points[I];
    if (PA.Func != PB.Func || PA.Line != PB.Line || !cmdEq(PA.Cmd, PB.Cmd))
      return at("point", I);
  }
  if (A.Succs != B.Succs)
    return "successor edges differ";
  if (A.Preds != B.Preds)
    return "predecessor edges differ";
  if (A.Start != B.Start || A.Main != B.Main)
    return "start/main function differs";
  if (A.FuncByName.size() != B.FuncByName.size())
    return "function name index size differs";
  for (const auto &[Name, Id] : A.FuncByName) {
    auto It = B.FuncByName.find(Name);
    if (It == B.FuncByName.end() || It->second != Id)
      return "function name index entry '" + Name + "' differs";
  }
  return "";
}

} // namespace spa
