//===- CallGraphInfo.h - Resolved call graph ---------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resolved callee sets per call point and the derived callgraph: call
/// sites per function, strongly connected components (the paper's maxSCC
/// column in Table 1, and the recursion cut points the fixpoint engines
/// widen at), and the interprocedural successor/predecessor helpers that
/// turn the intraprocedural skeleton into the supergraph.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_IR_CALLGRAPHINFO_H
#define SPA_IR_CALLGRAPHINFO_H

#include "ir/Program.h"

#include <vector>

namespace spa {

/// Resolved call graph.  Indirect calls need the pre-analysis; direct
/// calls can be resolved syntactically (buildDirectCallGraph) which tests
/// without function pointers use.
class CallGraphInfo {
public:
  /// Builds SCC and call-site indices from per-point callee sets.
  CallGraphInfo(const Program &Prog,
                std::vector<std::vector<FuncId>> CalleesPerPoint);

  /// Possible callees of call point \p P (empty for external calls).
  const std::vector<FuncId> &callees(PointId P) const {
    return Callees[P.value()];
  }
  /// Call points that may invoke \p F.
  const std::vector<PointId> &callSitesOf(FuncId F) const {
    return CallSites[F.value()];
  }
  /// Size of the largest callgraph SCC (Table 1's maxSCC).
  uint32_t maxSccSize() const { return MaxSccSize; }
  /// True if \p F sits on a callgraph cycle (recursive, directly or
  /// mutually); such entries are widening points.
  bool isRecursive(FuncId F) const { return Recursive[F.value()]; }

  /// SCC id of \p F in the callgraph condensation.
  uint32_t sccOf(FuncId F) const { return SccOfFunc[F.value()]; }
  /// SCC ids in reverse topological order (callees before callers), with
  /// their member functions; summary fixpoints process them in order.
  const std::vector<std::vector<FuncId>> &sccMembersInOrder() const {
    return SccMembers;
  }

  /// Enumerates the supergraph successors of \p P: callee entries for call
  /// points (falling back to the paired return point for external or
  /// unresolved calls), return sites of all call sites for exits, and
  /// skeleton successors otherwise.
  template <typename Fn>
  void forEachSuperSucc(const Program &Prog, PointId P, Fn &&F) const {
    const Command &Cmd = Prog.point(P).Cmd;
    if (Cmd.Kind == CmdKind::Call) {
      const std::vector<FuncId> &Cs = callees(P);
      if (Cs.empty()) {
        F(Cmd.Pair); // External/unresolved: skip straight to the return.
        return;
      }
      for (FuncId G : Cs)
        F(Prog.function(G).Entry);
      return;
    }
    if (Cmd.Kind == CmdKind::Exit) {
      for (PointId Site : callSitesOf(Prog.point(P).Func))
        F(Prog.point(Site).Cmd.Pair);
      return;
    }
    for (PointId S : Prog.succs(P))
      F(S);
  }

  /// Enumerates the supergraph predecessors of \p P (inverse of
  /// forEachSuperSucc).
  template <typename Fn>
  void forEachSuperPred(const Program &Prog, PointId P, Fn &&F) const {
    const Command &Cmd = Prog.point(P).Cmd;
    if (Cmd.Kind == CmdKind::Entry) {
      for (PointId Site : callSitesOf(Prog.point(P).Func))
        F(Site);
      return;
    }
    if (Cmd.Kind == CmdKind::Return) {
      const std::vector<FuncId> &Cs = callees(Cmd.Pair);
      if (Cs.empty()) {
        F(Cmd.Pair);
        return;
      }
      for (FuncId G : Cs)
        F(Prog.function(G).Exit);
      return;
    }
    for (PointId S : Prog.preds(P))
      F(S);
  }

private:
  std::vector<std::vector<FuncId>> Callees;
  std::vector<std::vector<PointId>> CallSites;
  std::vector<bool> Recursive;
  std::vector<uint32_t> SccOfFunc;
  std::vector<std::vector<FuncId>> SccMembers;
  uint32_t MaxSccSize = 0;
};

/// Resolves direct calls only; indirect call points get empty callee sets.
CallGraphInfo buildDirectCallGraph(const Program &Prog);

/// Scheduling priorities: supergraph reverse postorder from the start
/// point (unreached points are appended after all reached ones).
std::vector<uint32_t> computeSuperRpo(const Program &Prog,
                                      const CallGraphInfo &CG);

/// Widening points: back-edge targets of a supergraph DFS (cutting every
/// supergraph cycle) plus entries of recursive functions.
///
/// \p IncludeCallToReturn adds call-point -> return-point edges to the
/// DFS.  The access-based localized engine propagates the bypassed part
/// of the state along exactly that edge, so its value-flow cycles can
/// take the bypass route around a callee; cycles must be cut on that
/// route too or loops containing calls may never widen.
std::vector<bool> computeWideningPoints(const Program &Prog,
                                        const CallGraphInfo &CG,
                                        bool IncludeCallToReturn = false);

} // namespace spa

#endif // SPA_IR_CALLGRAPHINFO_H
