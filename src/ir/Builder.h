//===- Builder.h - AST-to-IR lowering ------------------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef SPA_IR_BUILDER_H
#define SPA_IR_BUILDER_H

#include "ir/Program.h"
#include "lang/AST.h"

#include <memory>
#include <string>

namespace spa {

/// Result of lowering an AST to IR.  On failure \c Error describes the
/// first problem found (e.g. missing main, store to an unknown name).
struct BuildResult {
  std::unique_ptr<Program> Prog;
  std::string Error;
  bool ok() const { return Prog != nullptr; }
};

/// Lowers \p Ast to a Program.  Lowering:
///  * structured `if`/`while` become Assume commands on branch edges, with
///    a Skip loop head for each `while` (the widening point);
///  * every call becomes a Call/Return point pair;
///  * a synthetic `_start` function zero-initializes the globals, applies
///    declared initializers, and calls `main`;
///  * statements that cannot execute (after `return`) are dropped, so
///    every emitted point is reachable from its function's entry.
BuildResult buildProgram(const ProgramAST &Ast);

/// Convenience: parse + build.  On parse or build failure, returns a null
/// program with the diagnostic in Error.
BuildResult buildProgramFromSource(std::string_view Source);

} // namespace spa

#endif // SPA_IR_BUILDER_H
