//===- Snapshot.h - Versioned binary IR serialization --------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `spa-ir-v1` snapshot: a versioned, endian-fixed binary serialization
/// of ir::Program.  A snapshot is the unit of work the batch/shard drivers
/// ship across process (and eventually machine) boundaries: the parent
/// parses and lowers a program once, and every isolated child or shard
/// worker reconstructs the identical Program from the bytes instead of
/// re-running the frontend (the single biggest per-item cold-start cost).
///
/// Wire format (all integers little-endian, fixed width):
///
///   [0..8)    magic  "SPAIR\n\x1a\0"  (PNG-style: catches text-mode and
///                                      truncation mangling up front)
///   [8..12)   u32    version (1 or 2; 2 adds the optional depgraph section)
///   [12..16)  u32    section count
///   [16..)    section table: per section 32 bytes
///               { u32 kind; u32 reserved; u64 offset; u64 length;
///                 u64 checksum }            (checksum = FNV-1a 64 of the
///                                            section's payload bytes)
///   sections, contiguous and in table order, tiling the rest of the file
///
/// Section kinds: 1 = Meta (table sizes + start/main ids, decoded first so
/// every id in later sections can be bounds-checked), 2 = Locs, 3 = Funcs,
/// 4 = Points (commands with their expression trees), 5 = Edges (Succs and
/// Preds vectors verbatim — predecessor *order* is part of deterministic
/// join/phi behavior, so it is serialized, not rebuilt).  All five are
/// required exactly once.  FuncByName is derived state and is rebuilt on
/// load.
///
/// Version 2 adds an *optional* sixth section, 6 = DepGraph: the sparse
/// dependency graph serialized alongside the IR, so a consumer (the
/// spa-serve daemon, `spa-analyze --snapshot-in`) can warm-start the
/// fixpoint without re-running dependency generation.  Its payload is
/// opaque at this layer — the graph types live above the IR library —
/// and is encoded/decoded by core/DepSnapshot.h; here it is just a
/// checksummed byte range handed back verbatim.  Version-1 files (five
/// sections, no depgraph) still load unchanged.
///
/// The loader is strict: every offset, length, count, enum and id is
/// validated against bounds before use, unconsumed section bytes are an
/// error, and any malformed input yields a typed SnapshotError — never UB,
/// never abort.  Mutated bytes that sneak past the header are caught by the
/// per-section checksums before deep decoding begins.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_IR_SNAPSHOT_H
#define SPA_IR_SNAPSHOT_H

#include "ir/Program.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace spa {

/// Current snapshot format version (the version new writers emit).
/// Readers accept [MinSnapshotVersion, SnapshotVersion] and reject
/// anything else with SnapErrc::BadVersion; bumping this is a format
/// change that must be announced by regenerating tests/golden/*.snap
/// (a v1 artifact stays checked in as tests/golden/v1_baseline.snap to
/// pin backward compatibility).
constexpr uint32_t SnapshotVersion = 2;
constexpr uint32_t MinSnapshotVersion = 1;

/// Loader failure taxonomy.  Every malformed input maps to exactly one of
/// these; the batch driver classifies any of them as a build_error outcome
/// (the snapshot equivalent of a source file that does not parse).
enum class SnapErrc {
  None = 0,
  Io,                ///< File could not be opened/read.
  BadMagic,          ///< First 8 bytes are not the spa-ir magic.
  BadVersion,        ///< Version outside [MinSnapshotVersion, SnapshotVersion].
  Truncated,         ///< Header or section table extends past the buffer.
  BadSectionTable,   ///< Sections overlap, leave gaps, or exceed bounds.
  DuplicateSection,  ///< A section kind appears twice.
  MissingSection,    ///< A required section kind is absent.
  ChecksumMismatch,  ///< Section payload does not hash to its table entry.
  Malformed,         ///< In-section structure error (bad count, enum,
                     ///< string length, trailing bytes, expr nesting).
  BadId,             ///< A point/func/loc id is out of bounds.
};

/// Stable lowercase name of \p C ("bad_magic", "checksum_mismatch", ...).
const char *snapshotErrorName(SnapErrc C);

/// One typed loader error: the code plus a human message naming the
/// offending section/offset.
struct SnapshotError {
  SnapErrc Code = SnapErrc::None;
  std::string Message;

  bool ok() const { return Code == SnapErrc::None; }
  /// "checksum_mismatch: section 4 (points) payload hash ..." rendering.
  std::string str() const;
};

/// Serializes \p Prog to spa-ir snapshot bytes.  Deterministic: the same
/// Program always produces the same bytes (pinned byte-for-byte by the
/// golden corpus test), so snapshots can be content-compared and cached.
/// When \p DepGraphPayload is non-null and non-empty, it is embedded
/// verbatim as the optional depgraph section (see the file comment); the
/// IR sections' bytes are unaffected.
std::vector<uint8_t>
saveSnapshot(const Program &Prog,
             const std::vector<uint8_t> *DepGraphPayload = nullptr);

/// Result of loading a snapshot: the Program, or a typed error.
struct SnapshotLoadResult {
  std::unique_ptr<Program> Prog;
  SnapshotError Error;
  /// Verbatim payload of the optional depgraph section (empty when the
  /// snapshot carried none).  Decoded by core/DepSnapshot.h.
  std::vector<uint8_t> DepGraph;
  bool HasDepGraph = false;
  bool ok() const { return Prog != nullptr; }
};

/// Strict loader (see file comment).  \p Data need not outlive the call.
SnapshotLoadResult loadSnapshot(const uint8_t *Data, size_t Size);
SnapshotLoadResult loadSnapshot(const std::vector<uint8_t> &Bytes);

/// Reads and loads a snapshot file.  I/O failures come back as
/// SnapErrc::Io; everything else is the in-memory loader's verdict.
SnapshotLoadResult loadSnapshotFile(const std::string &Path);

/// Serializes \p Prog (plus an optional depgraph payload) and writes it
/// to \p Path.  Returns false with \p Error set on I/O failure.
bool writeSnapshotFile(const std::string &Path, const Program &Prog,
                       std::string &Error,
                       const std::vector<uint8_t> *DepGraphPayload = nullptr);

/// Shallow header/section inspection for the spa-snapshot tool: parses
/// the header and section table and re-hashes every section without deep
/// decoding.  Fills \p Info for whatever was readable.
struct SnapshotSectionInfo {
  uint32_t Kind = 0;
  const char *Name = "?"; ///< "meta", "locs", ... ("?" for unknown kinds).
  uint64_t Offset = 0, Length = 0;
  uint64_t Checksum = 0;  ///< Value recorded in the table.
  bool ChecksumOk = false;
};
struct SnapshotInfo {
  uint32_t Version = 0;
  uint64_t TotalBytes = 0;
  std::vector<SnapshotSectionInfo> Sections;
};
SnapshotError inspectSnapshot(const uint8_t *Data, size_t Size,
                              SnapshotInfo &Info);

/// Structural equality of two Programs (every table, command, expression
/// tree, and edge vector).  Returns "" when identical, else a one-line
/// description of the first difference — the roundtrip property the fuzz
/// suite pins is programDiff(P, load(save(P))) == "".
std::string programDiff(const Program &A, const Program &B);

} // namespace spa

#endif // SPA_IR_SNAPSHOT_H
