//===- IExpr.h - Resolved IR expressions -------------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name-resolved expression trees used by IR commands.  Unlike the surface
/// AST, variable references carry abstract-location ids and function
/// references carry function ids, so analyses never touch strings.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_IR_IEXPR_H
#define SPA_IR_IEXPR_H

#include "lang/AST.h"
#include "support/Ids.h"

#include <memory>
#include <vector>

namespace spa {

enum class IExprKind { Num, Var, AddrOf, Deref, Binary, Input, FuncAddr };

/// Resolved expression node.
struct IExpr {
  IExprKind Kind = IExprKind::Num;
  int64_t Num = 0;       ///< IExprKind::Num.
  LocId Loc;             ///< Var / AddrOf / Deref.
  FuncId Func;           ///< FuncAddr.
  BinOp Op = BinOp::Add; ///< Binary.
  std::unique_ptr<IExpr> Lhs, Rhs;

  static std::unique_ptr<IExpr> makeNum(int64_t N) {
    auto E = std::make_unique<IExpr>();
    E->Kind = IExprKind::Num;
    E->Num = N;
    return E;
  }
  static std::unique_ptr<IExpr> makeVar(LocId L) {
    auto E = std::make_unique<IExpr>();
    E->Kind = IExprKind::Var;
    E->Loc = L;
    return E;
  }
  static std::unique_ptr<IExpr> makeAddrOf(LocId L) {
    auto E = std::make_unique<IExpr>();
    E->Kind = IExprKind::AddrOf;
    E->Loc = L;
    return E;
  }
  static std::unique_ptr<IExpr> makeDeref(LocId L) {
    auto E = std::make_unique<IExpr>();
    E->Kind = IExprKind::Deref;
    E->Loc = L;
    return E;
  }
  static std::unique_ptr<IExpr> makeBinary(BinOp Op, std::unique_ptr<IExpr> L,
                                           std::unique_ptr<IExpr> R) {
    auto E = std::make_unique<IExpr>();
    E->Kind = IExprKind::Binary;
    E->Op = Op;
    E->Lhs = std::move(L);
    E->Rhs = std::move(R);
    return E;
  }
  static std::unique_ptr<IExpr> makeInput() {
    auto E = std::make_unique<IExpr>();
    E->Kind = IExprKind::Input;
    return E;
  }
  static std::unique_ptr<IExpr> makeFuncAddr(FuncId F) {
    auto E = std::make_unique<IExpr>();
    E->Kind = IExprKind::FuncAddr;
    E->Func = F;
    return E;
  }
};

/// Resolved relational condition `Lhs Op Rhs`.
struct ICond {
  RelOp Op = RelOp::Ne;
  std::unique_ptr<IExpr> Lhs, Rhs;
};

/// Invokes \p Fn for every variable-reference location in \p E.  Deref
/// nodes report the pointer variable only; the pointed-to locations depend
/// on the abstract state and are handled semantically (Section 3.2's Û).
template <typename Fn> void forEachVarLoc(const IExpr &E, Fn &&F) {
  switch (E.Kind) {
  case IExprKind::Num:
  case IExprKind::Input:
  case IExprKind::FuncAddr:
  case IExprKind::AddrOf:
    return;
  case IExprKind::Var:
  case IExprKind::Deref:
    F(E.Loc);
    return;
  case IExprKind::Binary:
    forEachVarLoc(*E.Lhs, F);
    forEachVarLoc(*E.Rhs, F);
    return;
  }
}

} // namespace spa

#endif // SPA_IR_IEXPR_H
