//===- Builder.cpp - AST-to-IR lowering ----------------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"

#include "lang/Parser.h"

#include <cassert>
#include <set>
#include <unordered_map>
#include <unordered_set>

using namespace spa;

namespace {

class Builder {
public:
  explicit Builder(const ProgramAST &Ast) : Ast(Ast) {}

  BuildResult run() {
    Prog = std::make_unique<Program>();
    declareGlobals();
    declareFunctions();
    if (Failed)
      return finish();

    FuncId Main = Prog->findFunction("main");
    if (!Main.isValid()) {
      fail(0, "program has no 'main' function");
      return finish();
    }
    Prog->Main = Main;
    if (!Prog->function(Main).Params.empty()) {
      fail(0, "'main' must take no parameters");
      return finish();
    }

    for (size_t I = 0; I < Ast.Functions.size(); ++I)
      buildFunctionBody(FuncId(static_cast<uint32_t>(I)));
    if (Failed)
      return finish();

    synthesizeStart();
    return finish();
  }

private:
  BuildResult finish() {
    BuildResult R;
    if (Failed) {
      R.Error = ErrorMessage;
      return R;
    }
    R.Prog = std::move(Prog);
    return R;
  }

  void fail(unsigned Line, const std::string &Message) {
    if (Failed)
      return;
    Failed = true;
    ErrorMessage = "line " + std::to_string(Line) + ": " + Message;
  }

  //===------------------------------------------------------------------===//
  // Declarations
  //===------------------------------------------------------------------===//

  LocId newLoc(LocKind Kind, std::string Name, FuncId Owner, PointId Site) {
    LocId Id(static_cast<uint32_t>(Prog->Locs.size()));
    LocInfo Info;
    Info.Kind = Kind;
    Info.Name = std::move(Name);
    Info.Owner = Owner;
    Info.Site = Site;
    Prog->Locs.push_back(std::move(Info));
    return Id;
  }

  void declareGlobals() {
    for (const GlobalDecl &G : Ast.Globals) {
      if (GlobalByName.count(G.Name)) {
        fail(G.Line, "global '" + G.Name + "' redeclared");
        return;
      }
      GlobalByName[G.Name] = newLoc(LocKind::Global, G.Name, FuncId(),
                                    PointId());
    }
  }

  void declareFunctions() {
    for (const FunctionDecl &F : Ast.Functions) {
      if (Prog->FuncByName.count(F.Name)) {
        fail(F.Line, "function '" + F.Name + "' redefined");
        return;
      }
      FuncId Id(static_cast<uint32_t>(Prog->Funcs.size()));
      Prog->FuncByName[F.Name] = Id;
      FunctionInfo Info;
      Info.Name = F.Name;
      std::unordered_set<std::string> Seen;
      for (const std::string &P : F.Params) {
        if (!Seen.insert(P).second) {
          fail(F.Line, "parameter '" + P + "' repeated in '" + F.Name + "'");
          return;
        }
        Info.Params.push_back(
            newLoc(LocKind::Param, F.Name + "::" + P, Id, PointId()));
      }
      Info.RetSlot = newLoc(LocKind::RetSlot, F.Name + "::$ret", Id,
                            PointId());
      Prog->Funcs.push_back(std::move(Info));
    }
  }

  //===------------------------------------------------------------------===//
  // Per-function lowering
  //===------------------------------------------------------------------===//

  /// Name resolution context for the function being built.
  struct Scope {
    FuncId Func;
    std::unordered_map<std::string, LocId> Vars; // Params and locals.
  };

  /// Collects every name that syntactically occurs as a variable in \p F's
  /// body and is neither a global, nor a parameter, nor a function name;
  /// those become locals.
  void collectLocals(const FunctionDecl &F, Scope &S) {
    std::set<std::string> Names;
    for (const auto &St : F.Body)
      collectStmtNames(*St, Names);
    FunctionInfo &Info = Prog->Funcs[S.Func.value()];
    for (const std::string &Name : Names) {
      if (S.Vars.count(Name) || GlobalByName.count(Name) ||
          Prog->FuncByName.count(Name))
        continue;
      LocId L = newLoc(LocKind::Local, Info.Name + "::" + Name, S.Func,
                       PointId());
      Info.Locals.push_back(L);
      S.Vars[Name] = L;
    }
  }

  void collectExprNames(const Expr &E, std::set<std::string> &Names) {
    switch (E.Kind) {
    case ExprKind::Num:
    case ExprKind::Input:
      return;
    case ExprKind::Var:
    case ExprKind::AddrOf:
    case ExprKind::Deref:
      Names.insert(E.Name);
      return;
    case ExprKind::Binary:
      collectExprNames(*E.Lhs, Names);
      collectExprNames(*E.Rhs, Names);
      return;
    }
  }

  void collectStmtNames(const Stmt &S, std::set<std::string> &Names) {
    if (!S.Target.empty())
      Names.insert(S.Target);
    if (S.E)
      collectExprNames(*S.E, Names);
    if (S.Cnd) {
      collectExprNames(*S.Cnd->Lhs, Names);
      collectExprNames(*S.Cnd->Rhs, Names);
    }
    if (S.Kind == StmtKind::Call && S.Indirect)
      Names.insert(S.Callee);
    for (const auto &A : S.Args)
      collectExprNames(*A, Names);
    for (const auto &Sub : S.Then)
      collectStmtNames(*Sub, Names);
    for (const auto &Sub : S.Else)
      collectStmtNames(*Sub, Names);
  }

  /// Resolves variable \p Name in \p S; reports an error if unresolvable.
  LocId resolveVar(const Scope &S, const std::string &Name, unsigned Line) {
    auto It = S.Vars.find(Name);
    if (It != S.Vars.end())
      return It->second;
    auto G = GlobalByName.find(Name);
    if (G != GlobalByName.end())
      return G->second;
    fail(Line, "cannot resolve variable '" + Name + "'");
    return LocId();
  }

  std::unique_ptr<IExpr> resolveExpr(const Scope &S, const Expr &E) {
    switch (E.Kind) {
    case ExprKind::Num:
      return IExpr::makeNum(E.Num);
    case ExprKind::Input:
      return IExpr::makeInput();
    case ExprKind::Var: {
      // A bare function name evaluates to the function's address.
      if (!S.Vars.count(E.Name) && !GlobalByName.count(E.Name)) {
        FuncId F = Prog->findFunction(E.Name);
        if (F.isValid())
          return IExpr::makeFuncAddr(F);
      }
      return IExpr::makeVar(resolveVar(S, E.Name, E.Line));
    }
    case ExprKind::AddrOf: {
      if (!S.Vars.count(E.Name) && !GlobalByName.count(E.Name)) {
        FuncId F = Prog->findFunction(E.Name);
        if (F.isValid())
          return IExpr::makeFuncAddr(F);
      }
      return IExpr::makeAddrOf(resolveVar(S, E.Name, E.Line));
    }
    case ExprKind::Deref:
      return IExpr::makeDeref(resolveVar(S, E.Name, E.Line));
    case ExprKind::Binary:
      return IExpr::makeBinary(E.Op, resolveExpr(S, *E.Lhs),
                               resolveExpr(S, *E.Rhs));
    }
    assert(false && "unknown expression kind");
    return IExpr::makeNum(0);
  }

  std::unique_ptr<ICond> resolveCond(const Scope &S, const Cond &C,
                                     bool Negate) {
    auto IC = std::make_unique<ICond>();
    IC->Op = Negate ? negateRelOp(C.Op) : C.Op;
    IC->Lhs = resolveExpr(S, *C.Lhs);
    IC->Rhs = resolveExpr(S, *C.Rhs);
    return IC;
  }

  PointId newPoint(FuncId F, Command Cmd, unsigned Line) {
    PointId Id(static_cast<uint32_t>(Prog->Points.size()));
    Point P;
    P.Cmd = std::move(Cmd);
    P.Func = F;
    P.Line = Line;
    Prog->Points.push_back(std::move(P));
    Prog->Succs.emplace_back();
    Prog->Preds.emplace_back();
    Prog->Funcs[F.value()].Points.push_back(Id);
    return Id;
  }

  void addEdge(PointId From, PointId To) {
    Prog->Succs[From.value()].push_back(To);
    Prog->Preds[To.value()].push_back(From);
  }

  /// Creates a point whose predecessors are the current frontier, then
  /// replaces the frontier with it.
  PointId emit(Scope &S, Command Cmd, unsigned Line,
               std::vector<PointId> &Frontier) {
    PointId P = newPoint(S.Func, std::move(Cmd), Line);
    for (PointId F : Frontier)
      addEdge(F, P);
    Frontier.assign(1, P);
    return P;
  }

  void buildFunctionBody(FuncId Id) {
    const FunctionDecl &F = Ast.Functions[Id.value()];
    Scope S;
    S.Func = Id;
    FunctionInfo &Info = Prog->Funcs[Id.value()];
    for (size_t I = 0; I < F.Params.size(); ++I)
      S.Vars[F.Params[I]] = Info.Params[I];
    collectLocals(F, S);

    Command EntryCmd;
    EntryCmd.Kind = CmdKind::Entry;
    Info.Entry = newPoint(Id, std::move(EntryCmd), F.Line);

    std::vector<PointId> Frontier{Info.Entry};
    buildBody(S, F.Body, Frontier);
    if (Failed)
      return;

    Command ExitCmd;
    ExitCmd.Kind = CmdKind::Exit;
    Info.Exit = newPoint(Id, std::move(ExitCmd), F.Line);
    for (PointId P : PendingExits[Id.value()])
      addEdge(P, Info.Exit);
    for (PointId P : Frontier)
      addEdge(P, Info.Exit);
  }

  /// Lowers a statement list.  \p Frontier holds the dangling points that
  /// flow into the next statement; it becomes empty when control cannot
  /// continue (all paths returned), at which point the remaining
  /// statements are dropped as unreachable.
  void buildBody(Scope &S, const std::vector<std::unique_ptr<Stmt>> &Body,
                 std::vector<PointId> &Frontier) {
    for (const auto &St : Body) {
      if (Failed || Frontier.empty())
        return;
      buildStmt(S, *St, Frontier);
    }
  }

  void buildStmt(Scope &S, const Stmt &St, std::vector<PointId> &Frontier) {
    switch (St.Kind) {
    case StmtKind::Skip: {
      Command C;
      C.Kind = CmdKind::Skip;
      emit(S, std::move(C), St.Line, Frontier);
      return;
    }
    case StmtKind::Assign: {
      Command C;
      C.Kind = CmdKind::Assign;
      C.Target = resolveVar(S, St.Target, St.Line);
      C.E = resolveExpr(S, *St.E);
      emit(S, std::move(C), St.Line, Frontier);
      return;
    }
    case StmtKind::Store: {
      Command C;
      C.Kind = CmdKind::Store;
      C.Target = resolveVar(S, St.Target, St.Line);
      C.E = resolveExpr(S, *St.E);
      emit(S, std::move(C), St.Line, Frontier);
      return;
    }
    case StmtKind::Alloc: {
      Command C;
      C.Kind = CmdKind::Alloc;
      C.Target = resolveVar(S, St.Target, St.Line);
      C.E = resolveExpr(S, *St.E);
      PointId P = emit(S, std::move(C), St.Line, Frontier);
      Prog->Points[P.value()].Cmd.AllocSite =
          newLoc(LocKind::AllocSite, "alloc@" + std::to_string(P.value()),
                 S.Func, P);
      return;
    }
    case StmtKind::Assume: {
      Command C;
      C.Kind = CmdKind::Assume;
      C.Cnd = resolveCond(S, *St.Cnd, /*Negate=*/false);
      emit(S, std::move(C), St.Line, Frontier);
      return;
    }
    case StmtKind::Return: {
      if (St.E) {
        Command C;
        C.Kind = CmdKind::RetStmt;
        C.Target = Prog->Funcs[S.Func.value()].RetSlot;
        C.E = resolveExpr(S, *St.E);
        emit(S, std::move(C), St.Line, Frontier);
      } else {
        Command C;
        C.Kind = CmdKind::Skip;
        emit(S, std::move(C), St.Line, Frontier);
      }
      // Control flows to the function exit (created after the body).
      auto &Pending = PendingExits[S.Func.value()];
      Pending.insert(Pending.end(), Frontier.begin(), Frontier.end());
      Frontier.clear();
      return;
    }
    case StmtKind::If: {
      Command TrueCmd;
      TrueCmd.Kind = CmdKind::Assume;
      TrueCmd.Cnd = resolveCond(S, *St.Cnd, /*Negate=*/false);
      Command FalseCmd;
      FalseCmd.Kind = CmdKind::Assume;
      FalseCmd.Cnd = resolveCond(S, *St.Cnd, /*Negate=*/true);

      PointId TruePt = newPoint(S.Func, std::move(TrueCmd), St.Line);
      PointId FalsePt = newPoint(S.Func, std::move(FalseCmd), St.Line);
      for (PointId F : Frontier) {
        addEdge(F, TruePt);
        addEdge(F, FalsePt);
      }
      std::vector<PointId> ThenFrontier{TruePt};
      std::vector<PointId> ElseFrontier{FalsePt};
      buildBody(S, St.Then, ThenFrontier);
      buildBody(S, St.Else, ElseFrontier);
      Frontier = std::move(ThenFrontier);
      Frontier.insert(Frontier.end(), ElseFrontier.begin(),
                      ElseFrontier.end());
      return;
    }
    case StmtKind::While: {
      Command HeadCmd;
      HeadCmd.Kind = CmdKind::Skip;
      PointId Head = emit(S, std::move(HeadCmd), St.Line, Frontier);

      Command TrueCmd;
      TrueCmd.Kind = CmdKind::Assume;
      TrueCmd.Cnd = resolveCond(S, *St.Cnd, /*Negate=*/false);
      Command FalseCmd;
      FalseCmd.Kind = CmdKind::Assume;
      FalseCmd.Cnd = resolveCond(S, *St.Cnd, /*Negate=*/true);
      PointId TruePt = newPoint(S.Func, std::move(TrueCmd), St.Line);
      PointId FalsePt = newPoint(S.Func, std::move(FalseCmd), St.Line);
      addEdge(Head, TruePt);
      addEdge(Head, FalsePt);

      std::vector<PointId> BodyFrontier{TruePt};
      buildBody(S, St.Then, BodyFrontier);
      for (PointId P : BodyFrontier)
        addEdge(P, Head); // Back edge; Head is the widening point.
      Frontier.assign(1, FalsePt);
      return;
    }
    case StmtKind::Call: {
      buildCall(S, St, Frontier);
      return;
    }
    }
  }

  void buildCall(Scope &S, const Stmt &St, std::vector<PointId> &Frontier) {
    Command CallCmd;
    CallCmd.Kind = CmdKind::Call;
    for (const auto &A : St.Args)
      CallCmd.Args.push_back(resolveExpr(S, *A));

    if (St.Indirect) {
      CallCmd.Target = resolveVar(S, St.Callee, St.Line);
    } else {
      FuncId Callee = Prog->findFunction(St.Callee);
      if (Callee.isValid()) {
        CallCmd.DirectCallee = Callee;
      } else if (S.Vars.count(St.Callee) || GlobalByName.count(St.Callee)) {
        // `p(...)` where p is a variable: indirect call through p.
        CallCmd.Target = resolveVar(S, St.Callee, St.Line);
      } else {
        CallCmd.External = true;
      }
    }

    PointId CallPt = emit(S, std::move(CallCmd), St.Line, Frontier);

    Command RetCmd;
    RetCmd.Kind = CmdKind::Return;
    if (!St.Target.empty())
      RetCmd.Target = resolveVar(S, St.Target, St.Line);
    RetCmd.Pair = CallPt;
    PointId RetPt = emit(S, std::move(RetCmd), St.Line, Frontier);
    Prog->Points[CallPt.value()].Cmd.Pair = RetPt;
  }

  //===------------------------------------------------------------------===//
  // _start synthesis
  //===------------------------------------------------------------------===//

  /// Builds `_start`: zero-initialize every global (C semantics), apply the
  /// declared initializers, then call main.
  void synthesizeStart() {
    FuncId Id(static_cast<uint32_t>(Prog->Funcs.size()));
    Prog->FuncByName["_start"] = Id;
    FunctionInfo Info;
    Info.Name = "_start";
    Info.RetSlot = newLoc(LocKind::RetSlot, "_start::$ret", Id, PointId());
    Prog->Funcs.push_back(std::move(Info));
    Prog->Start = Id;

    Command EntryCmd;
    EntryCmd.Kind = CmdKind::Entry;
    Prog->Funcs[Id.value()].Entry = newPoint(Id, std::move(EntryCmd), 0);
    std::vector<PointId> Frontier{Prog->Funcs[Id.value()].Entry};

    Scope S;
    S.Func = Id;
    for (const GlobalDecl &G : Ast.Globals) {
      Command C;
      C.Kind = CmdKind::Assign;
      C.Target = GlobalByName[G.Name];
      C.E = IExpr::makeNum(G.Init.value_or(0));
      emit(S, std::move(C), G.Line, Frontier);
    }

    Stmt CallMain;
    CallMain.Kind = StmtKind::Call;
    CallMain.Callee = "main";
    buildCall(S, CallMain, Frontier);

    Command ExitCmd;
    ExitCmd.Kind = CmdKind::Exit;
    PointId Exit = newPoint(Id, std::move(ExitCmd), 0);
    for (PointId P : Frontier)
      addEdge(P, Exit);
    Prog->Funcs[Id.value()].Exit = Exit;
  }

  const ProgramAST &Ast;
  std::unique_ptr<Program> Prog;
  std::unordered_map<std::string, LocId> GlobalByName;
  /// Per function: points whose successor is the (later-created) exit.
  std::unordered_map<uint32_t, std::vector<PointId>> PendingExits;
  bool Failed = false;
  std::string ErrorMessage;
};

} // namespace

BuildResult spa::buildProgram(const ProgramAST &Ast) {
  return Builder(Ast).run();
}

BuildResult spa::buildProgramFromSource(std::string_view Source) {
  ParseResult P = parseProgram(Source);
  if (!P.Ok) {
    BuildResult R;
    R.Error = "parse error: " + P.Error;
    return R;
  }
  return buildProgram(P.Program);
}
