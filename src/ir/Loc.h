//===- Loc.h - Abstract locations -------------------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract locations (the paper's finite set L̂): global variables,
/// function-local variables and parameters, per-function return slots, and
/// allocation sites.  Allocation sites are summary locations: they stand
/// for arbitrarily many concrete cells, so they only admit weak updates.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_IR_LOC_H
#define SPA_IR_LOC_H

#include "support/Ids.h"

#include <string>

namespace spa {

enum class LocKind {
  Global,    ///< Program-wide variable.
  Local,     ///< Function-local variable.
  Param,     ///< Function parameter (bound at call sites).
  RetSlot,   ///< Per-function return-value slot.
  AllocSite, ///< Heap memory minted by one `alloc` command (summary).
};

/// Metadata for one abstract location.
struct LocInfo {
  LocKind Kind = LocKind::Global;
  std::string Name;        ///< Pretty name, e.g. "g", "f::x", "f::$ret".
  FuncId Owner;            ///< Owning function (invalid for globals/sites).
  PointId Site;            ///< Minting point for allocation sites.

  /// Summary locations abstract multiple concrete cells and therefore only
  /// admit weak updates.
  bool isSummary() const { return Kind == LocKind::AllocSite; }
};

} // namespace spa

#endif // SPA_IR_LOC_H
