//===- Dominators.h - Dominator tree and dominance frontiers -----------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-function dominator trees and dominance frontiers over the
/// intraprocedural skeleton, computed with the Cooper–Harvey–Kennedy
/// iterative algorithm.  Section 5 of the paper generates data dependencies
/// with "the standard SSA algorithm"; phi placement needs iterated
/// dominance frontiers, which this provides.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_IR_DOMINATORS_H
#define SPA_IR_DOMINATORS_H

#include "ir/Program.h"

#include <vector>

namespace spa {

/// Dominator information for one function.  All queries use program-wide
/// PointIds; only points of the analyzed function are valid inputs.
class Dominators {
public:
  /// Computes dominators for \p F in \p Prog.  Every point of a function
  /// is reachable from its entry (builder invariant), so the tree covers
  /// all of the function's points.
  Dominators(const Program &Prog, FuncId F);

  /// Immediate dominator of \p P (invalid for the entry).
  PointId idom(PointId P) const { return Idom[P.value() - Base]; }

  /// Dominance frontier of \p P.
  const std::vector<PointId> &frontier(PointId P) const {
    return Frontier[P.value() - Base];
  }

  /// Children of \p P in the dominator tree, in deterministic order.
  const std::vector<PointId> &children(PointId P) const {
    return Children[P.value() - Base];
  }

  /// Reverse postorder index of \p P within the function (entry is 0).
  uint32_t rpoIndex(PointId P) const { return RpoIndex[P.value() - Base]; }

  /// The function's points in reverse postorder.
  const std::vector<PointId> &rpo() const { return Rpo; }

private:
  uint32_t Base; ///< First PointId value of the function (ids contiguous).
  std::vector<PointId> Idom;
  std::vector<std::vector<PointId>> Frontier;
  std::vector<std::vector<PointId>> Children;
  std::vector<uint32_t> RpoIndex;
  std::vector<PointId> Rpo;
};

} // namespace spa

#endif // SPA_IR_DOMINATORS_H
