//===- CallGraphInfo.cpp - Resolved call graph --------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/CallGraphInfo.h"

#include <algorithm>
#include <cassert>

using namespace spa;

namespace {

/// Iterative Tarjan SCC over the function-level callgraph.
class SccFinder {
public:
  SccFinder(size_t N, const std::vector<std::vector<uint32_t>> &Adj)
      : Adj(Adj), Index(N, UINT32_MAX), LowLink(N, 0), OnStack(N, false) {
    SccOf.assign(N, UINT32_MAX);
  }

  void run() {
    for (uint32_t V = 0; V < Index.size(); ++V)
      if (Index[V] == UINT32_MAX)
        strongConnect(V);
  }

  std::vector<uint32_t> SccSizes;
  std::vector<uint32_t> SccOf;
  /// True for SCCs that are cycles (size > 1, or a self loop).
  std::vector<bool> SccCyclic;

private:
  void strongConnect(uint32_t Root) {
    struct Frame {
      uint32_t V;
      size_t NextEdge;
    };
    std::vector<Frame> CallStack;
    CallStack.push_back({Root, 0});
    visit(Root);
    while (!CallStack.empty()) {
      Frame &F = CallStack.back();
      if (F.NextEdge < Adj[F.V].size()) {
        uint32_t W = Adj[F.V][F.NextEdge++];
        if (Index[W] == UINT32_MAX) {
          visit(W);
          CallStack.push_back({W, 0});
        } else if (OnStack[W]) {
          LowLink[F.V] = std::min(LowLink[F.V], Index[W]);
        }
        continue;
      }
      // All edges of F.V processed.
      if (LowLink[F.V] == Index[F.V]) {
        uint32_t SccId = static_cast<uint32_t>(SccSizes.size());
        uint32_t Size = 0;
        bool SelfLoop = false;
        for (;;) {
          uint32_t W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          SccOf[W] = SccId;
          ++Size;
          for (uint32_t X : Adj[W])
            if (X == W)
              SelfLoop = true;
          if (W == F.V)
            break;
        }
        SccSizes.push_back(Size);
        SccCyclic.push_back(Size > 1 || SelfLoop);
      }
      uint32_t V = F.V;
      CallStack.pop_back();
      if (!CallStack.empty())
        LowLink[CallStack.back().V] =
            std::min(LowLink[CallStack.back().V], LowLink[V]);
    }
  }

  void visit(uint32_t V) {
    Index[V] = LowLink[V] = NextIndex++;
    Stack.push_back(V);
    OnStack[V] = true;
  }

  const std::vector<std::vector<uint32_t>> &Adj;
  std::vector<uint32_t> Index, LowLink;
  std::vector<bool> OnStack;
  std::vector<uint32_t> Stack;
  uint32_t NextIndex = 0;

public:
  using SccOfVector = std::vector<uint32_t>;
};

} // namespace

CallGraphInfo::CallGraphInfo(const Program &Prog,
                             std::vector<std::vector<FuncId>> CalleesPerPoint)
    : Callees(std::move(CalleesPerPoint)), CallSites(Prog.numFuncs()),
      Recursive(Prog.numFuncs(), false) {
  assert(Callees.size() == Prog.numPoints() && "callee table size mismatch");

  // Deduplicate callee lists and build the inverse call-site index.
  for (uint32_t P = 0; P < Callees.size(); ++P) {
    auto &Cs = Callees[P];
    std::sort(Cs.begin(), Cs.end());
    Cs.erase(std::unique(Cs.begin(), Cs.end()), Cs.end());
    for (FuncId G : Cs)
      CallSites[G.value()].push_back(PointId(P));
  }

  // Function-level adjacency for SCC computation.
  std::vector<std::vector<uint32_t>> Adj(Prog.numFuncs());
  for (uint32_t P = 0; P < Callees.size(); ++P) {
    FuncId Caller = Prog.point(PointId(P)).Func;
    for (FuncId G : Callees[P])
      Adj[Caller.value()].push_back(G.value());
  }

  SccFinder Finder(Prog.numFuncs(), Adj);
  Finder.run();
  SccOfFunc.assign(Prog.numFuncs(), 0);
  SccMembers.assign(Finder.SccSizes.size(), {});
  for (uint32_t F = 0; F < Prog.numFuncs(); ++F) {
    uint32_t Scc = Finder.SccOf[F];
    MaxSccSize = std::max(MaxSccSize, Finder.SccSizes[Scc]);
    Recursive[F] = Finder.SccCyclic[Scc];
    SccOfFunc[F] = Scc;
    // Tarjan emits an SCC only once everything it reaches is emitted, so
    // ascending SCC ids are already reverse topological order.
    SccMembers[Scc].push_back(FuncId(F));
  }
}

CallGraphInfo spa::buildDirectCallGraph(const Program &Prog) {
  std::vector<std::vector<FuncId>> Callees(Prog.numPoints());
  for (uint32_t P = 0; P < Prog.numPoints(); ++P) {
    const Command &Cmd = Prog.point(PointId(P)).Cmd;
    if (Cmd.Kind == CmdKind::Call && Cmd.DirectCallee.isValid())
      Callees[P].push_back(Cmd.DirectCallee);
  }
  return CallGraphInfo(Prog, std::move(Callees));
}

std::vector<uint32_t> spa::computeSuperRpo(const Program &Prog,
                                           const CallGraphInfo &CG) {
  size_t N = Prog.numPoints();
  std::vector<uint32_t> Order(N, UINT32_MAX);
  std::vector<uint8_t> State(N, 0); // 0 = unseen, 1 = open, 2 = done.
  std::vector<uint32_t> Postorder;
  Postorder.reserve(N);

  auto Dfs = [&](PointId Root) {
    if (State[Root.value()])
      return;
    struct Frame {
      uint32_t V;
      std::vector<PointId> Succs;
      size_t Next;
    };
    std::vector<Frame> Stack;
    auto Open = [&](uint32_t V) {
      State[V] = 1;
      Frame F;
      F.V = V;
      F.Next = 0;
      CG.forEachSuperSucc(Prog, PointId(V),
                          [&](PointId S) { F.Succs.push_back(S); });
      Stack.push_back(std::move(F));
    };
    Open(Root.value());
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      if (F.Next < F.Succs.size()) {
        uint32_t W = F.Succs[F.Next++].value();
        if (!State[W])
          Open(W);
        continue;
      }
      State[F.V] = 2;
      Postorder.push_back(F.V);
      Stack.pop_back();
    }
  };

  Dfs(Prog.startPoint());
  // Cover points unreachable in the supergraph (e.g. never-called
  // functions) so every point still gets a deterministic priority.
  for (uint32_t F = 0; F < Prog.numFuncs(); ++F)
    Dfs(Prog.Funcs[F].Entry);
  for (uint32_t P = 0; P < N; ++P)
    Dfs(PointId(P));

  uint32_t Rank = 0;
  for (auto It = Postorder.rbegin(); It != Postorder.rend(); ++It)
    Order[*It] = Rank++;
  return Order;
}

std::vector<bool> spa::computeWideningPoints(const Program &Prog,
                                             const CallGraphInfo &CG,
                                             bool IncludeCallToReturn) {
  size_t N = Prog.numPoints();
  std::vector<bool> Widen(N, false);

  // Back-edge targets of a DFS over the *supergraph*.  Every supergraph
  // cycle contains a DFS back edge, so widening at the targets cuts all
  // of them — including loops, recursion, and the unrealizable
  // call-return "butterfly" cycles a context-insensitive supergraph has
  // when one function is called from several sites.
  std::vector<uint8_t> State(N, 0);
  auto Dfs = [&](PointId Root) {
    if (State[Root.value()])
      return;
    struct Frame {
      uint32_t V;
      std::vector<PointId> Succs;
      size_t Next;
    };
    std::vector<Frame> Stack;
    auto Open = [&](uint32_t V) {
      State[V] = 1;
      Frame F;
      F.V = V;
      F.Next = 0;
      CG.forEachSuperSucc(Prog, PointId(V),
                          [&](PointId S) { F.Succs.push_back(S); });
      const Command &Cmd = Prog.point(PointId(V)).Cmd;
      if (IncludeCallToReturn && Cmd.Kind == CmdKind::Call &&
          Cmd.Pair.isValid())
        F.Succs.push_back(Cmd.Pair);
      Stack.push_back(std::move(F));
    };
    Open(Root.value());
    while (!Stack.empty()) {
      Frame &Fr = Stack.back();
      if (Fr.Next < Fr.Succs.size()) {
        uint32_t W = Fr.Succs[Fr.Next++].value();
        if (State[W] == 1)
          Widen[W] = true; // Back edge target.
        else if (State[W] == 0)
          Open(W);
        continue;
      }
      State[Fr.V] = 2;
      Stack.pop_back();
    }
  };

  Dfs(Prog.startPoint());
  for (uint32_t F = 0; F < Prog.numFuncs(); ++F)
    Dfs(Prog.Funcs[F].Entry);
  for (uint32_t P = 0; P < N; ++P)
    Dfs(PointId(P));

  // Recursive functions additionally widen at their entries regardless of
  // where the DFS happened to place back edges.
  for (uint32_t F = 0; F < Prog.numFuncs(); ++F)
    if (CG.isRecursive(FuncId(F)))
      Widen[Prog.Funcs[F].Entry.value()] = true;

  return Widen;
}
