//===- Dominators.cpp - Dominator tree and dominance frontiers ---------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Dominators.h"

#include <algorithm>
#include <cassert>

using namespace spa;

Dominators::Dominators(const Program &Prog, FuncId F) {
  const FunctionInfo &Info = Prog.function(F);
  size_t N = Info.Points.size();
  assert(N > 0 && "function without points");
  Base = Info.Points.front().value();
  assert(Info.Points.back().value() == Base + N - 1 &&
         "function points must be contiguous");

  // Reverse postorder via iterative DFS from the entry.
  RpoIndex.assign(N, UINT32_MAX);
  std::vector<uint8_t> State(N, 0);
  std::vector<uint32_t> Postorder;
  Postorder.reserve(N);
  {
    struct Frame {
      uint32_t V;
      size_t Next;
    };
    std::vector<Frame> Stack;
    uint32_t EntryIdx = Info.Entry.value() - Base;
    State[EntryIdx] = 1;
    Stack.push_back({EntryIdx, 0});
    while (!Stack.empty()) {
      Frame &Fr = Stack.back();
      const auto &Ss = Prog.succs(PointId(Base + Fr.V));
      if (Fr.Next < Ss.size()) {
        uint32_t W = Ss[Fr.Next++].value() - Base;
        assert(W < N && "skeleton edge leaves function");
        if (!State[W]) {
          State[W] = 1;
          Stack.push_back({W, 0});
        }
        continue;
      }
      Postorder.push_back(Fr.V);
      Stack.pop_back();
    }
  }
  assert(Postorder.size() == N && "unreachable point inside function");

  Rpo.reserve(N);
  for (auto It = Postorder.rbegin(); It != Postorder.rend(); ++It) {
    RpoIndex[*It] = static_cast<uint32_t>(Rpo.size());
    Rpo.push_back(PointId(Base + *It));
  }

  // Cooper–Harvey–Kennedy iteration.  Idom indexed by local offset.
  Idom.assign(N, PointId());
  uint32_t EntryIdx = Info.Entry.value() - Base;
  Idom[EntryIdx] = Info.Entry; // Self, as the algorithm's sentinel.

  auto Intersect = [&](PointId A, PointId B) {
    uint32_t IA = A.value() - Base, IB = B.value() - Base;
    while (IA != IB) {
      while (RpoIndex[IA] > RpoIndex[IB])
        IA = Idom[IA].value() - Base;
      while (RpoIndex[IB] > RpoIndex[IA])
        IB = Idom[IB].value() - Base;
    }
    return PointId(Base + IA);
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (PointId P : Rpo) {
      if (P == Info.Entry)
        continue;
      PointId NewIdom;
      for (PointId Pred : Prog.preds(P)) {
        if (!Idom[Pred.value() - Base].isValid())
          continue; // Not yet processed.
        NewIdom = NewIdom.isValid() ? Intersect(NewIdom, Pred) : Pred;
      }
      assert(NewIdom.isValid() && "reachable point with no processed pred");
      if (Idom[P.value() - Base] != NewIdom) {
        Idom[P.value() - Base] = NewIdom;
        Changed = true;
      }
    }
  }
  Idom[EntryIdx] = PointId(); // Entry has no immediate dominator.

  // Dominator-tree children.
  Children.assign(N, {});
  for (uint32_t I = 0; I < N; ++I)
    if (Idom[I].isValid())
      Children[Idom[I].value() - Base].push_back(PointId(Base + I));

  // Dominance frontiers (Cytron et al.): only join points (>= 2 preds)
  // appear in frontiers.
  Frontier.assign(N, {});
  for (uint32_t I = 0; I < N; ++I) {
    PointId P(Base + I);
    const auto &Ps = Prog.preds(P);
    if (Ps.size() < 2)
      continue;
    for (PointId Pred : Ps) {
      uint32_t Runner = Pred.value() - Base;
      uint32_t Stop = Idom[I].isValid() ? Idom[I].value() - Base : UINT32_MAX;
      while (Runner != Stop) {
        Frontier[Runner].push_back(P);
        PointId Up = Idom[Runner];
        if (!Up.isValid())
          break;
        Runner = Up.value() - Base;
      }
    }
  }
  for (auto &Fr : Frontier) {
    std::sort(Fr.begin(), Fr.end());
    Fr.erase(std::unique(Fr.begin(), Fr.end()), Fr.end());
  }
}
