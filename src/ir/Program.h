//===- Program.h - Program representation: points, CFG, functions -----------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analyzed program: the paper's (C, ↪) pair.  A Program holds the
/// table of control points (each with one command), the intraprocedural
/// control-flow skeleton, the function table, and the abstract-location
/// table.  Interprocedural edges (call -> callee entry, callee exit ->
/// return site) are derived from a CallGraphInfo, which in turn comes from
/// the flow-insensitive pre-analysis (Section 5: "we use the
/// flow-insensitive analysis to prior resolve function pointers").
///
//===----------------------------------------------------------------------===//

#ifndef SPA_IR_PROGRAM_H
#define SPA_IR_PROGRAM_H

#include "ir/Command.h"
#include "ir/Loc.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace spa {

/// One control point: a command plus its owning function.
struct Point {
  Command Cmd;
  FuncId Func;
  unsigned Line = 0;
};

/// Per-function metadata.
struct FunctionInfo {
  std::string Name;
  std::vector<LocId> Params;
  std::vector<LocId> Locals; ///< Non-parameter locals.
  LocId RetSlot;
  PointId Entry, Exit;
  std::vector<PointId> Points; ///< All points, Entry first, Exit last.
};

/// The whole program.  Invariants established by the builder:
///  * every point is intraprocedurally reachable from its function's entry;
///  * each function has exactly one Entry and one Exit point;
///  * Call points have exactly one static successor, their Return point
///    (the skeleton edge that interprocedural traversals replace).
class Program {
public:
  const Point &point(PointId P) const { return Points[P.value()]; }
  Point &point(PointId P) { return Points[P.value()]; }
  const FunctionInfo &function(FuncId F) const { return Funcs[F.value()]; }
  const LocInfo &loc(LocId L) const { return Locs[L.value()]; }

  size_t numPoints() const { return Points.size(); }
  size_t numFuncs() const { return Funcs.size(); }
  size_t numLocs() const { return Locs.size(); }

  const std::vector<PointId> &succs(PointId P) const {
    return Succs[P.value()];
  }
  const std::vector<PointId> &preds(PointId P) const {
    return Preds[P.value()];
  }

  /// The synthesized start function (global initializers, then a call to
  /// main).  Analysis begins at its entry.
  FuncId startFunc() const { return Start; }
  FuncId mainFunc() const { return Main; }
  PointId startPoint() const { return Funcs[Start.value()].Entry; }

  /// Looks up a function by name; returns an invalid id if absent.
  FuncId findFunction(const std::string &Name) const {
    auto It = FuncByName.find(Name);
    return It == FuncByName.end() ? FuncId() : It->second;
  }

  /// Renders point \p P as "f:12 cmd" for diagnostics and tests.
  std::string pointToString(PointId P) const;
  /// Renders a resolved expression using location names.
  std::string exprToString(const IExpr &E) const;

  // The builder populates these directly.
  std::vector<Point> Points;
  std::vector<FunctionInfo> Funcs;
  std::vector<LocInfo> Locs;
  std::vector<std::vector<PointId>> Succs, Preds;
  std::unordered_map<std::string, FuncId> FuncByName;
  FuncId Start, Main;
};

} // namespace spa

#endif // SPA_IR_PROGRAM_H
