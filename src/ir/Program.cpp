//===- Program.cpp - Program representation ----------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"

#include <sstream>

using namespace spa;

std::string Program::exprToString(const IExpr &E) const {
  std::ostringstream OS;
  switch (E.Kind) {
  case IExprKind::Num:
    OS << E.Num;
    break;
  case IExprKind::Var:
    OS << loc(E.Loc).Name;
    break;
  case IExprKind::AddrOf:
    OS << "&" << loc(E.Loc).Name;
    break;
  case IExprKind::Deref:
    OS << "*" << loc(E.Loc).Name;
    break;
  case IExprKind::Input:
    OS << "input()";
    break;
  case IExprKind::FuncAddr:
    OS << "&" << function(E.Func).Name;
    break;
  case IExprKind::Binary:
    OS << "(" << exprToString(*E.Lhs) << " " << binOpSpelling(E.Op) << " "
       << exprToString(*E.Rhs) << ")";
    break;
  }
  return OS.str();
}

std::string Program::pointToString(PointId P) const {
  const Point &Pt = point(P);
  std::ostringstream OS;
  OS << function(Pt.Func).Name << ":" << P.value() << " ";
  const Command &C = Pt.Cmd;
  switch (C.Kind) {
  case CmdKind::Skip:
    OS << "skip";
    break;
  case CmdKind::Assign:
    OS << loc(C.Target).Name << " := " << exprToString(*C.E);
    break;
  case CmdKind::Store:
    OS << "*" << loc(C.Target).Name << " := " << exprToString(*C.E);
    break;
  case CmdKind::Alloc:
    OS << loc(C.Target).Name << " := alloc(" << exprToString(*C.E) << ")";
    break;
  case CmdKind::Assume:
    OS << "assume(" << exprToString(*C.Cnd->Lhs) << " "
       << relOpSpelling(C.Cnd->Op) << " " << exprToString(*C.Cnd->Rhs) << ")";
    break;
  case CmdKind::Call:
    OS << "call ";
    if (C.isIndirectCall())
      OS << "(*" << loc(C.Target).Name << ")";
    else if (C.DirectCallee.isValid())
      OS << function(C.DirectCallee).Name;
    else
      OS << "<external>";
    OS << "(";
    for (size_t I = 0; I < C.Args.size(); ++I) {
      if (I)
        OS << ", ";
      OS << exprToString(*C.Args[I]);
    }
    OS << ")";
    break;
  case CmdKind::Return:
    OS << "ret-bind";
    if (C.Target.isValid())
      OS << " " << loc(C.Target).Name;
    break;
  case CmdKind::Entry:
    OS << "entry";
    break;
  case CmdKind::Exit:
    OS << "exit";
    break;
  case CmdKind::RetStmt:
    OS << loc(C.Target).Name << " := " << exprToString(*C.E);
    break;
  }
  return OS.str();
}
