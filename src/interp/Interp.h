//===- Interp.h - Concrete interpreter -----------------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic concrete interpreter for the IR.  Its role is to sample
/// the collecting semantics: soundness tests execute a program and check
/// that every observed concrete state is contained in the abstractions the
/// analyzers compute.
///
/// The modeled concrete semantics matches what the abstract domains
/// abstract:
///  * locals are statically allocated (one cell per abstract location, so
///    recursive invocations share frames, mirroring the context-insensitive
///    abstraction);
///  * `alloc(n)` creates a zero-initialized block of n cells tagged with
///    its allocation site;
///  * reading an uninitialized cell, arithmetic on pointers other than
///    offset adjustment, out-of-bounds dereferences, and int64 overflow
///    all *trap* (halt execution cleanly) — trapped paths have no
///    continuation to be covered.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_INTERP_INTERP_H
#define SPA_INTERP_INTERP_H

#include "ir/CallGraphInfo.h"
#include "ir/Program.h"
#include "support/Rng.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace spa {

/// A concrete runtime value.
struct CValue {
  enum class Kind { Uninit, Int, Ptr, Fun };
  Kind K = Kind::Uninit;
  int64_t I = 0;      ///< Int payload.
  bool Heap = false;  ///< Ptr: heap block vs. variable cell.
  uint32_t Block = 0; ///< Ptr: heap block index when Heap.
  LocId VarBase;      ///< Ptr: variable location when !Heap.
  int64_t Off = 0;    ///< Ptr: offset in cells.
  FuncId F;           ///< Fun payload.

  static CValue intVal(int64_t V) {
    CValue C;
    C.K = Kind::Int;
    C.I = V;
    return C;
  }
};

/// One concrete heap block (from one `alloc` execution).
struct HeapBlock {
  LocId Site; ///< The allocation-site abstract location.
  std::vector<CValue> Cells;
};

/// Why execution stopped.
enum class StopReason {
  Finished, ///< main returned.
  Fuel,     ///< Step budget exhausted (e.g. infinite loop).
  Trap,     ///< Runtime error (uninitialized read, type error, overflow).
  Blocked,  ///< A standalone `assume` condition evaluated to false.
  Overrun,  ///< Out-of-bounds dereference (kept separate: it is the
            ///< defect class the buffer-overrun checker reports).
};

struct InterpOptions {
  uint64_t MaxSteps = 200000;
  uint64_t InputSeed = 1; ///< Seed for the `input()` value stream.
  int64_t InputMin = -100, InputMax = 100;
};

struct InterpResult {
  StopReason Reason = StopReason::Finished;
  uint64_t Steps = 0;
  /// Points at which an out-of-bounds dereference occurred (first only).
  std::vector<PointId> OverrunPoints;
};

/// The interpreter.  Construct, then run(); query memory from the
/// per-point observer callback.
class Interp {
public:
  /// Observer invoked after each executed point with the post-state
  /// available through the interpreter's query interface.
  using Observer = std::function<void(PointId, const Interp &)>;

  Interp(const Program &Prog, const CallGraphInfo &CG,
         InterpOptions Opts = InterpOptions());

  /// Runs from _start's entry.  \p Obs may be null.
  InterpResult run(const Observer &Obs);

  /// Current value of a variable-like location (Global/Local/Param/
  /// RetSlot).
  const CValue &varValue(LocId L) const { return Vars[L.value()]; }
  /// All heap blocks allocated so far.
  const std::vector<HeapBlock> &heapBlocks() const { return Heap; }
  /// Number of cells of the block \p P points into (1 for variables).
  int64_t blockSize(const CValue &P) const;

private:
  struct EvalResult {
    bool Ok = false;
    CValue V;
  };

  EvalResult eval(const IExpr &E);
  bool evalCond(const ICond &C, bool &Out);
  bool readCell(const CValue &Ptr, CValue &Out, bool &Oob);
  bool writeCell(const CValue &Ptr, const CValue &V, bool &Oob);

  const Program &Prog;
  const CallGraphInfo &CG;
  InterpOptions Opts;
  Rng Inputs;

  std::vector<CValue> Vars; ///< One cell per non-heap abstract location.
  std::vector<HeapBlock> Heap;
  std::vector<PointId> CallStack; ///< Return points of active calls.
  bool OobHit = false; ///< Set when an eval failure was an overrun.
};

} // namespace spa

#endif // SPA_INTERP_INTERP_H
