//===- Interp.cpp - Concrete interpreter ----------------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include <cassert>

using namespace spa;

Interp::Interp(const Program &Prog, const CallGraphInfo &CG,
               InterpOptions Opts)
    : Prog(Prog), CG(CG), Opts(Opts), Inputs(Opts.InputSeed),
      Vars(Prog.numLocs()) {}

int64_t Interp::blockSize(const CValue &P) const {
  assert(P.K == CValue::Kind::Ptr && "not a pointer");
  if (P.Heap)
    return static_cast<int64_t>(Heap[P.Block].Cells.size());
  return 1;
}

Interp::EvalResult Interp::eval(const IExpr &E) {
  EvalResult R;
  switch (E.Kind) {
  case IExprKind::Num:
    R.Ok = true;
    R.V = CValue::intVal(E.Num);
    return R;
  case IExprKind::Input:
    R.Ok = true;
    R.V = CValue::intVal(Inputs.range(Opts.InputMin, Opts.InputMax));
    return R;
  case IExprKind::Var: {
    const CValue &V = Vars[E.Loc.value()];
    if (V.K == CValue::Kind::Uninit)
      return R; // Uninitialized read traps.
    R.Ok = true;
    R.V = V;
    return R;
  }
  case IExprKind::AddrOf: {
    R.Ok = true;
    R.V.K = CValue::Kind::Ptr;
    R.V.Heap = false;
    R.V.VarBase = E.Loc;
    R.V.Off = 0;
    return R;
  }
  case IExprKind::FuncAddr: {
    R.Ok = true;
    R.V.K = CValue::Kind::Fun;
    R.V.F = E.Func;
    return R;
  }
  case IExprKind::Deref: {
    const CValue &P = Vars[E.Loc.value()];
    if (P.K != CValue::Kind::Ptr)
      return R;
    bool Oob = false;
    if (!readCell(P, R.V, Oob)) {
      R.Ok = false;
      if (Oob)
        OobHit = true;
      return R;
    }
    R.Ok = true;
    return R;
  }
  case IExprKind::Binary: {
    EvalResult L = eval(*E.Lhs);
    if (!L.Ok)
      return R;
    EvalResult Rv = eval(*E.Rhs);
    if (!Rv.Ok)
      return R;
    const CValue &A = L.V, &B = Rv.V;
    // Pointer arithmetic: ptr ± int adjusts the offset.
    if (A.K == CValue::Kind::Ptr && B.K == CValue::Kind::Int &&
        (E.Op == BinOp::Add || E.Op == BinOp::Sub)) {
      R.Ok = true;
      R.V = A;
      R.V.Off += E.Op == BinOp::Add ? B.I : -B.I;
      return R;
    }
    if (A.K == CValue::Kind::Int && B.K == CValue::Kind::Ptr &&
        E.Op == BinOp::Add) {
      R.Ok = true;
      R.V = B;
      R.V.Off += A.I;
      return R;
    }
    if (A.K != CValue::Kind::Int || B.K != CValue::Kind::Int)
      return R; // Type error traps.
    __int128 Wide = 0;
    switch (E.Op) {
    case BinOp::Add:
      Wide = static_cast<__int128>(A.I) + B.I;
      break;
    case BinOp::Sub:
      Wide = static_cast<__int128>(A.I) - B.I;
      break;
    case BinOp::Mul:
      Wide = static_cast<__int128>(A.I) * B.I;
      break;
    case BinOp::Div:
    case BinOp::Mod:
      if (B.I == 0)
        return R; // Division by zero traps.
      Wide = E.Op == BinOp::Div ? static_cast<__int128>(A.I) / B.I
                                : static_cast<__int128>(A.I) % B.I;
      break;
    }
    // int64 overflow traps: the abstract domain saturates instead of
    // wrapping, so wrapped results would not be covered.
    if (Wide < INT64_MIN + 2 || Wide > INT64_MAX - 2)
      return R;
    R.Ok = true;
    R.V = CValue::intVal(static_cast<int64_t>(Wide));
    return R;
  }
  }
  return R;
}

bool Interp::evalCond(const ICond &C, bool &Out) {
  EvalResult L = eval(*C.Lhs);
  if (!L.Ok)
    return false;
  EvalResult R = eval(*C.Rhs);
  if (!R.Ok)
    return false;
  if (L.V.K != CValue::Kind::Int || R.V.K != CValue::Kind::Int)
    return false;
  int64_t A = L.V.I, B = R.V.I;
  switch (C.Op) {
  case RelOp::Lt:
    Out = A < B;
    return true;
  case RelOp::Le:
    Out = A <= B;
    return true;
  case RelOp::Gt:
    Out = A > B;
    return true;
  case RelOp::Ge:
    Out = A >= B;
    return true;
  case RelOp::Eq:
    Out = A == B;
    return true;
  case RelOp::Ne:
    Out = A != B;
    return true;
  }
  return false;
}

bool Interp::readCell(const CValue &Ptr, CValue &Out, bool &Oob) {
  if (Ptr.Heap) {
    const HeapBlock &B = Heap[Ptr.Block];
    if (Ptr.Off < 0 || Ptr.Off >= static_cast<int64_t>(B.Cells.size())) {
      Oob = true;
      return false;
    }
    Out = B.Cells[Ptr.Off];
    return Out.K != CValue::Kind::Uninit;
  }
  if (Ptr.Off != 0) {
    Oob = true;
    return false;
  }
  Out = Vars[Ptr.VarBase.value()];
  return Out.K != CValue::Kind::Uninit;
}

bool Interp::writeCell(const CValue &Ptr, const CValue &V, bool &Oob) {
  if (Ptr.Heap) {
    HeapBlock &B = Heap[Ptr.Block];
    if (Ptr.Off < 0 || Ptr.Off >= static_cast<int64_t>(B.Cells.size())) {
      Oob = true;
      return false;
    }
    B.Cells[Ptr.Off] = V;
    return true;
  }
  if (Ptr.Off != 0) {
    Oob = true;
    return false;
  }
  Vars[Ptr.VarBase.value()] = V;
  return true;
}

InterpResult Interp::run(const Observer &Obs) {
  InterpResult Result;
  PointId Pc = Prog.startPoint();
  // Callee whose Exit most recently executed; consumed by the next Return
  // point for return-value binding (invalid for external calls).
  FuncId ReturnedFrom;
  bool ReturnedFromValid = false;

  auto Stop = [&](StopReason Reason) {
    Result.Reason = Reason;
    if (Reason == StopReason::Overrun)
      Result.OverrunPoints.push_back(Pc);
    return Result;
  };

  for (;;) {
    if (Result.Steps++ >= Opts.MaxSteps)
      return Stop(StopReason::Fuel);

    const Point &Pt = Prog.point(Pc);
    const Command &Cmd = Pt.Cmd;
    PointId Next; // Overrides successor selection when set.
    OobHit = false;

    switch (Cmd.Kind) {
    case CmdKind::Skip:
    case CmdKind::Entry:
      break;
    case CmdKind::Assign: {
      EvalResult V = eval(*Cmd.E);
      if (!V.Ok)
        return Stop(OobHit ? StopReason::Overrun : StopReason::Trap);
      Vars[Cmd.Target.value()] = V.V;
      break;
    }
    case CmdKind::RetStmt: {
      EvalResult V = eval(*Cmd.E);
      if (!V.Ok)
        return Stop(OobHit ? StopReason::Overrun : StopReason::Trap);
      Vars[Cmd.Target.value()] = V.V;
      break;
    }
    case CmdKind::Store: {
      const CValue &P = Vars[Cmd.Target.value()];
      if (P.K != CValue::Kind::Ptr)
        return Stop(StopReason::Trap);
      EvalResult V = eval(*Cmd.E);
      if (!V.Ok)
        return Stop(OobHit ? StopReason::Overrun : StopReason::Trap);
      bool Oob = false;
      if (!writeCell(P, V.V, Oob))
        return Stop(Oob ? StopReason::Overrun : StopReason::Trap);
      break;
    }
    case CmdKind::Alloc: {
      EvalResult N = eval(*Cmd.E);
      if (!N.Ok)
        return Stop(OobHit ? StopReason::Overrun : StopReason::Trap);
      if (N.V.K != CValue::Kind::Int || N.V.I < 0 || N.V.I > (1 << 20))
        return Stop(StopReason::Trap);
      HeapBlock B;
      B.Site = Cmd.AllocSite;
      B.Cells.assign(static_cast<size_t>(N.V.I), CValue::intVal(0));
      uint32_t Idx = static_cast<uint32_t>(Heap.size());
      Heap.push_back(std::move(B));
      CValue P;
      P.K = CValue::Kind::Ptr;
      P.Heap = true;
      P.Block = Idx;
      P.Off = 0;
      Vars[Cmd.Target.value()] = P;
      break;
    }
    case CmdKind::Assume: {
      bool Holds = false;
      if (!evalCond(*Cmd.Cnd, Holds))
        return Stop(StopReason::Trap);
      if (!Holds)
        return Stop(StopReason::Blocked);
      break;
    }
    case CmdKind::Call: {
      // Resolve the concrete callee.
      FuncId Callee = Cmd.DirectCallee;
      if (Cmd.isIndirectCall()) {
        const CValue &FP = Vars[Cmd.Target.value()];
        if (FP.K != CValue::Kind::Fun)
          return Stop(StopReason::Trap);
        Callee = FP.F;
      }
      if (!Callee.isValid()) {
        // External call: no side effects; the Return point binds input().
        Next = Cmd.Pair;
        ReturnedFromValid = false;
        break;
      }
      const FunctionInfo &G = Prog.function(Callee);
      size_t NBind = std::min(G.Params.size(), Cmd.Args.size());
      std::vector<CValue> ArgVals(NBind);
      for (size_t I = 0; I < NBind; ++I) {
        EvalResult A = eval(*Cmd.Args[I]);
        if (!A.Ok)
          return Stop(OobHit ? StopReason::Overrun : StopReason::Trap);
        ArgVals[I] = A.V;
      }
      for (size_t I = 0; I < NBind; ++I)
        Vars[G.Params[I].value()] = ArgVals[I];
      CallStack.push_back(Cmd.Pair);
      Next = G.Entry;
      break;
    }
    case CmdKind::Exit: {
      if (CallStack.empty()) {
        if (Obs)
          Obs(Pc, *this);
        return Stop(StopReason::Finished);
      }
      ReturnedFrom = Pt.Func;
      ReturnedFromValid = true;
      Next = CallStack.back();
      CallStack.pop_back();
      break;
    }
    case CmdKind::Return: {
      if (Cmd.Target.isValid()) {
        if (ReturnedFromValid) {
          const CValue &Ret =
              Vars[Prog.function(ReturnedFrom).RetSlot.value()];
          if (Ret.K == CValue::Kind::Uninit)
            return Stop(StopReason::Trap); // Callee never returned a value.
          Vars[Cmd.Target.value()] = Ret;
        } else {
          // External call result: an arbitrary input.
          Vars[Cmd.Target.value()] =
              CValue::intVal(Inputs.range(Opts.InputMin, Opts.InputMax));
        }
      }
      break;
    }
    }

    if (Obs)
      Obs(Pc, *this);

    if (Next.isValid()) {
      Pc = Next;
      continue;
    }

    const auto &Succs = Prog.succs(Pc);
    if (Succs.empty())
      return Stop(StopReason::Finished); // Only _start's exit has no succ.
    if (Succs.size() == 1) {
      Pc = Succs[0];
      continue;
    }
    // Branch: successors are an assume pair; follow the satisfied one.
    PointId Chosen;
    for (PointId S : Succs) {
      const Command &SC = Prog.point(S).Cmd;
      if (SC.Kind != CmdKind::Assume)
        return Stop(StopReason::Trap);
      bool Holds = false;
      if (!evalCond(*SC.Cnd, Holds))
        return Stop(StopReason::Trap);
      if (Holds) {
        Chosen = S;
        break;
      }
    }
    if (!Chosen.isValid())
      return Stop(StopReason::Blocked);
    Pc = Chosen;
  }
}
