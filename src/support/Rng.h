//===- Rng.h - Deterministic random number generator -----------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small splitmix64-based RNG.  All randomized tests and the synthetic
/// workload generator take explicit seeds so every run is reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SUPPORT_RNG_H
#define SPA_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace spa {

/// splitmix64: tiny, fast, and statistically fine for workload generation.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a value uniform in [0, Bound).  \p Bound must be positive.
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "empty range");
    return next() % Bound;
  }

  /// Returns a value uniform in [Lo, Hi] (inclusive).
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability \p Percent / 100.
  bool chance(unsigned Percent) { return below(100) < Percent; }

  /// Derives an independent child generator (for nested structures).
  Rng fork() { return Rng(next()); }

private:
  uint64_t State;
};

} // namespace spa

#endif // SPA_SUPPORT_RNG_H
