//===- ThreadPool.h - Fixed-size worker pool -------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analyzer's parallel execution layer: one process-wide fixed-size
/// worker pool plus the parallelFor / parallelForChunks primitives the
/// pipeline phases are built on.  Design constraints, in order:
///
///  1. *Determinism.*  Every primitive here is index-based: tasks write
///     results into caller-preallocated per-index slots, so the final
///     data structures are independent of scheduling.  Callers that need
///     an ordered aggregate (the dependency builder's edge list) merge
///     the slots sequentially in index order afterwards.
///  2. *Nesting degrades to inline.*  A parallelFor issued from inside a
///     worker thread runs inline on that worker: the batch driver can
///     fan out over programs while each program's phases keep their
///     parallel code paths without deadlocking the pool.
///  3. *Opt-in.*  Everything runs sequentially (no threads touched) for
///     Jobs <= 1, so single-job behavior is byte-for-byte the pre-pool
///     code path.
///
/// Observability: par.tasks counts executed tasks, par.queue_waits
/// counts worker blocks on an empty queue, and par.pool_threads reports
/// the pool size (taxonomy in docs/OBSERVABILITY.md).
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SUPPORT_THREADPOOL_H
#define SPA_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace spa {

/// Fixed-size worker pool.  Most callers use ThreadPool::global() (sized
/// by SPA_JOBS, lazily started); benchmarks that compare pool sizes can
/// construct their own.
class ThreadPool {
public:
  /// Starts \p Threads workers (0 = defaultJobs()).
  explicit ThreadPool(unsigned Threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of worker threads (>= 1).
  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p Fn for execution on a worker; the future resolves when
  /// it finishes (exceptions propagate through the future).
  std::future<void> submit(std::function<void()> Fn);

  /// Runs Fn(I) for every I in [0, N), using up to \p Jobs lanes (the
  /// calling thread participates, so Jobs lanes need Jobs - 1 workers).
  /// Jobs <= 1, N <= 1, or a call from inside a worker runs inline.
  /// Blocks until every index completes; the first task exception, if
  /// any, is rethrown in the caller.
  void parallelFor(size_t N, unsigned Jobs,
                   const std::function<void(size_t)> &Fn);

  /// Chunked variant: partitions [0, N) into at most \p Jobs contiguous
  /// chunks and runs Fn(Begin, End) per chunk.  Lets callers hoist
  /// per-lane scratch state out of the element loop.  The chunk
  /// boundaries depend only on (N, Jobs), never on scheduling.
  void parallelForChunks(size_t N, unsigned Jobs,
                         const std::function<void(size_t, size_t)> &Fn);

  /// The process-wide pool, started on first use with defaultJobs()
  /// workers.
  static ThreadPool &global();

  /// Default parallelism: SPA_JOBS when set to a positive integer, else
  /// std::thread::hardware_concurrency().
  static unsigned defaultJobs();

  /// True when called from one of this process's pool worker threads
  /// (any pool); nested parallel primitives use this to degrade inline.
  static bool inWorker();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex M;
  std::condition_variable CV;
  bool Stopping = false;
};

} // namespace spa

#endif // SPA_SUPPORT_THREADPOOL_H
