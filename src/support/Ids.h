//===- Ids.h - Strongly typed index wrappers ------------------------------===//
//
// Part of the SPA project: a reproduction of "Design and Implementation of
// Sparse Global Analyses for C-like Languages" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strongly typed integer id wrappers used across the analyzer: control
/// points, abstract locations, functions, variables, and variable packs.
/// Each id is a dense index into a per-program table, so vectors indexed by
/// ids replace hash maps on hot paths.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SUPPORT_IDS_H
#define SPA_SUPPORT_IDS_H

#include <cstdint>
#include <functional>
#include <limits>

namespace spa {

/// CRTP base for typed ids.  \p Tag distinguishes unrelated id spaces at
/// compile time so a PointId cannot be passed where a LocId is expected.
template <typename Tag> class Id {
public:
  using ValueType = uint32_t;
  static constexpr ValueType InvalidValue =
      std::numeric_limits<ValueType>::max();

  constexpr Id() : Value(InvalidValue) {}
  constexpr explicit Id(ValueType V) : Value(V) {}

  /// Returns the raw index.  Only valid ids may be used as indices.
  constexpr ValueType value() const { return Value; }
  constexpr bool isValid() const { return Value != InvalidValue; }

  friend constexpr bool operator==(Id A, Id B) { return A.Value == B.Value; }
  friend constexpr bool operator!=(Id A, Id B) { return A.Value != B.Value; }
  friend constexpr bool operator<(Id A, Id B) { return A.Value < B.Value; }
  friend constexpr bool operator<=(Id A, Id B) { return A.Value <= B.Value; }
  friend constexpr bool operator>(Id A, Id B) { return A.Value > B.Value; }
  friend constexpr bool operator>=(Id A, Id B) { return A.Value >= B.Value; }

private:
  ValueType Value;
};

struct PointTag {};
struct LocTag {};
struct FuncTag {};
struct VarTag {};
struct PackTag {};
struct BlockTag {};

/// A control point in the program's supergraph (one command each).
using PointId = Id<PointTag>;
/// An abstract location (variable, allocation site, or return slot).
using LocId = Id<LocTag>;
/// A procedure.
using FuncId = Id<FuncTag>;
/// A source-level variable (global or function-local).
using VarId = Id<VarTag>;
/// A variable pack for the packed relational (octagon) analysis.
using PackId = Id<PackTag>;

} // namespace spa

namespace std {
template <typename Tag> struct hash<spa::Id<Tag>> {
  size_t operator()(spa::Id<Tag> V) const {
    return std::hash<uint32_t>()(V.value());
  }
};
} // namespace std

#endif // SPA_SUPPORT_IDS_H
