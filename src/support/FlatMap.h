//===- FlatMap.h - Sorted-vector map --------------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A map backed by a sorted vector of (key, value) pairs.  Abstract states
/// (finite maps from abstract locations to abstract values) are FlatMaps:
/// joins and inclusion tests are linear merges, and iteration order is
/// deterministic, which the fixpoint engines rely on.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SUPPORT_FLATMAP_H
#define SPA_SUPPORT_FLATMAP_H

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

namespace spa {

/// Sorted-vector map with deterministic iteration.  Keys must be totally
/// ordered.  Lookup is O(log n); insertion of a fresh key is O(n).
template <typename K, typename V> class FlatMap {
public:
  using value_type = std::pair<K, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  FlatMap() = default;

  iterator begin() { return Entries.begin(); }
  iterator end() { return Entries.end(); }
  const_iterator begin() const { return Entries.begin(); }
  const_iterator end() const { return Entries.end(); }

  bool empty() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }
  void clear() { Entries.clear(); }

  /// Returns the value for \p Key, or null if absent.
  const V *lookup(const K &Key) const {
    auto It = lowerBound(Key);
    if (It != Entries.end() && It->first == Key)
      return &It->second;
    return nullptr;
  }

  V *lookup(const K &Key) {
    auto It = lowerBound(Key);
    if (It != Entries.end() && It->first == Key)
      return &It->second;
    return nullptr;
  }

  bool contains(const K &Key) const { return lookup(Key) != nullptr; }

  /// Returns the value slot for \p Key, default-constructing it if absent.
  V &getOrCreate(const K &Key) {
    auto It = lowerBound(Key);
    if (It != Entries.end() && It->first == Key)
      return It->second;
    It = Entries.insert(It, value_type(Key, V()));
    return It->second;
  }

  /// Sets \p Key to \p Val, overwriting any previous binding.
  void set(const K &Key, V Val) { getOrCreate(Key) = std::move(Val); }

  /// Removes \p Key if present; returns true if it was present.
  bool erase(const K &Key) {
    auto It = lowerBound(Key);
    if (It == Entries.end() || It->first != Key)
      return false;
    Entries.erase(It);
    return true;
  }

  /// Reserves storage for \p N entries.
  void reserve(size_t N) { Entries.reserve(N); }

  /// Returns the sub-map of entries whose key satisfies \p Keep.
  template <typename Pred> FlatMap filtered(Pred Keep) const {
    FlatMap R;
    for (const auto &[K2, V2] : Entries)
      if (Keep(K2))
        R.Entries.push_back({K2, V2});
    return R;
  }

  friend bool operator==(const FlatMap &A, const FlatMap &B) {
    return A.Entries == B.Entries;
  }

  /// Merges \p Other into this map: for keys present in both, applies
  /// \p Combine(ours, theirs) in place and keeps the result; keys only in
  /// \p Other are copied.  Returns true if this map changed.  \p Combine
  /// must return true iff it changed its first argument.
  template <typename Fn> bool mergeWith(const FlatMap &Other, Fn Combine) {
    bool Changed = false;
    std::vector<value_type> Out;
    Out.reserve(std::max(Entries.size(), Other.Entries.size()));
    auto A = Entries.begin(), AE = Entries.end();
    auto B = Other.Entries.begin(), BE = Other.Entries.end();
    while (A != AE && B != BE) {
      if (A->first < B->first) {
        Out.push_back(std::move(*A));
        ++A;
      } else if (B->first < A->first) {
        Out.push_back(*B);
        Changed = true;
        ++B;
      } else {
        Changed |= Combine(A->second, B->second);
        Out.push_back(std::move(*A));
        ++A;
        ++B;
      }
    }
    for (; A != AE; ++A)
      Out.push_back(std::move(*A));
    for (; B != BE; ++B) {
      Out.push_back(*B);
      Changed = true;
    }
    Entries = std::move(Out);
    return Changed;
  }

private:
  const_iterator lowerBound(const K &Key) const {
    return std::lower_bound(
        Entries.begin(), Entries.end(), Key,
        [](const value_type &E, const K &Key2) { return E.first < Key2; });
  }
  iterator lowerBound(const K &Key) {
    return std::lower_bound(
        Entries.begin(), Entries.end(), Key,
        [](const value_type &E, const K &Key2) { return E.first < Key2; });
  }

  std::vector<value_type> Entries;
};

} // namespace spa

#endif // SPA_SUPPORT_FLATMAP_H
