//===- Fault.cpp - Deterministic fault-injection hook ----------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Fault.h"

#include <cstdlib>

#include <unistd.h>

using namespace spa;

namespace {

struct ArmedFault {
  FaultPlan Plan;
  std::string Name;
  ArmedFault *Prev = nullptr;
};

thread_local ArmedFault *Armed = nullptr;

} // namespace

FaultPlan FaultPlan::parse(const char *Spec) {
  FaultPlan P;
  if (!Spec || !*Spec)
    return P;
  std::string S(Spec);
  size_t At = S.find('@');
  if (At == std::string::npos)
    return P;
  std::string KindStr = S.substr(0, At);
  std::string Rest = S.substr(At + 1);
  size_t Colon = Rest.find(':');
  if (Colon != std::string::npos) {
    P.NameSub = Rest.substr(Colon + 1);
    Rest = Rest.substr(0, Colon);
  }
  P.Phase = Rest;
  if (KindStr == "crash")
    P.K = Kind::Crash;
  else if (KindStr == "oom")
    P.K = Kind::Oom;
  else if (KindStr == "timeout")
    P.K = Kind::Timeout;
  else
    P.Phase.clear(); // Unknown kind: inactive plan.
  return P;
}

FaultPlan FaultPlan::fromEnv() { return parse(std::getenv("SPA_FAULT")); }

FaultScope::FaultScope(const FaultPlan &Plan, std::string ProgramName) {
  ArmedFault *A = new ArmedFault{Plan, std::move(ProgramName), Armed};
  Armed = A;
}

FaultScope::~FaultScope() {
  ArmedFault *A = Armed;
  Armed = A->Prev;
  delete A;
}

void spa::maybeInjectFault(const char *Phase) {
  ArmedFault *A = Armed;
  if (!A || !A->Plan.active())
    return;
  if (A->Plan.Phase != "*" && A->Plan.Phase != Phase)
    return;
  if (!A->Plan.NameSub.empty() &&
      A->Name.find(A->Plan.NameSub) == std::string::npos)
    return;
  switch (A->Plan.K) {
  case FaultPlan::Kind::None:
    return;
  case FaultPlan::Kind::Crash:
    std::abort();
  case FaultPlan::Kind::Oom:
    _exit(OomExitCode);
  case FaultPlan::Kind::Timeout:
    // Hang until the batch parent's hard kill limit reaps this child.
    for (;;)
      usleep(100000);
  }
}
