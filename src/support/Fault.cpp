//===- Fault.cpp - Deterministic fault-injection hook ----------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Fault.h"

#include "obs/Journal.h"
#include "obs/Postmortem.h"

#include <cstdlib>

#include <unistd.h>

using namespace spa;

namespace {

struct ArmedFault {
  FaultPlan Plan;
  std::string Name;
  ArmedFault *Prev = nullptr;
};

thread_local ArmedFault *Armed = nullptr;

} // namespace

FaultPlan FaultPlan::parse(const char *Spec) {
  FaultPlan P;
  if (!Spec || !*Spec)
    return P;
  std::string S(Spec);
  size_t At = S.find('@');
  if (At == std::string::npos)
    return P;
  std::string KindStr = S.substr(0, At);
  std::string Rest = S.substr(At + 1);
  size_t Colon = Rest.find(':');
  if (Colon != std::string::npos) {
    P.NameSub = Rest.substr(Colon + 1);
    Rest = Rest.substr(0, Colon);
  }
  P.Phase = Rest;
  if (KindStr == "crash")
    P.K = Kind::Crash;
  else if (KindStr == "oom")
    P.K = Kind::Oom;
  else if (KindStr == "timeout")
    P.K = Kind::Timeout;
  else if (KindStr == "stall")
    P.K = Kind::Stall;
  else if (KindStr == "truncate")
    P.K = Kind::Truncate;
  else if (KindStr == "partial")
    P.K = Kind::Partial;
  else
    P.Phase.clear(); // Unknown kind: inactive plan.
  return P;
}

FaultPlan FaultPlan::fromEnv() { return parse(std::getenv("SPA_FAULT")); }

FaultScope::FaultScope(const FaultPlan &Plan, std::string ProgramName) {
  ArmedFault *A = new ArmedFault{Plan, std::move(ProgramName), Armed};
  Armed = A;
  if (Plan.active())
    SPA_OBS_JOURNAL(FaultArm, static_cast<uint64_t>(Plan.K), 0);
}

FaultScope::~FaultScope() {
  ArmedFault *A = Armed;
  Armed = A->Prev;
  delete A;
}

namespace {

/// Shared phase/name filter of maybeInjectFault and faultMatches.
bool armedPlanMatches(const ArmedFault *A, const char *Phase) {
  if (!A || !A->Plan.active())
    return false;
  if (A->Plan.Phase != "*" && A->Plan.Phase != Phase)
    return false;
  if (!A->Plan.NameSub.empty() &&
      A->Name.find(A->Plan.NameSub) == std::string::npos)
    return false;
  return true;
}

} // namespace

void spa::maybeInjectFault(const char *Phase) {
  ArmedFault *A = Armed;
  if (!armedPlanMatches(A, Phase))
    return;
  switch (A->Plan.K) {
  case FaultPlan::Kind::None:
  case FaultPlan::Kind::Truncate: // Parent-side: simulated by the reader,
  case FaultPlan::Kind::Partial:  // never injected here.
    return;
  case FaultPlan::Kind::Crash:
    std::abort();
  case FaultPlan::Kind::Oom:
    obs::journalRecord(obs::JournalEventKind::OomTrip, 0, 0);
    obs::postmortemWriteNow(obs::PostmortemReason::Oom, 0);
    _exit(OomExitCode);
  case FaultPlan::Kind::Timeout:
  case FaultPlan::Kind::Stall:
    // Hang until something external reaps this process: the batch
    // parent's hard kill limit, or — when armed at the in-fixpoint
    // "fixloop" checkpoint with the watchdog running — the heartbeat
    // monitor, which writes a stall postmortem and exits StallExitCode.
    for (;;)
      usleep(100000);
  }
}

bool spa::faultMatches(const char *Phase, FaultPlan::Kind K) {
  ArmedFault *A = Armed;
  return armedPlanMatches(A, Phase) && A->Plan.K == K;
}
