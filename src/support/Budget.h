//===- Budget.h - Cooperative resource budget / cancellation token ---------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resource-governance token (docs/ROBUSTNESS.md): a wall-clock
/// deadline, a step budget, and an RSS ceiling carried by one shared
/// Budget object that every fixpoint loop charges cooperatively.  When
/// any limit trips, the token goes *sticky-exhausted*: every later
/// charge() fails immediately, so all lanes of a parallel phase observe
/// the stop within a bounded number of steps.  Engines react by sound
/// degradation (falling back to the flow-insensitive pre-analysis
/// invariant), never by returning a partial unsound result.
///
/// Cost model: charge() is one relaxed fetch_add plus a relaxed load on
/// the hot path; the clock is read only when the step count crosses a
/// 1024-step boundary.  Memory is checked on the same boundary through
/// the counting-allocator hook (support/MemHook.cpp) — two relaxed
/// loads, no syscall — so an RSS trip fires on the allocation spike
/// itself; builds without the hook (sanitizers) fall back to polling
/// VmHWM on 8192-step boundaries.  A null Budget pointer in the engine
/// options removes even that (the guard-overhead acceptance bar of
/// BENCH_pipeline.json).
///
/// Every 1024-step boundary also drops a budget.charge milestone into
/// the flight recorder, and a trip records budget.trip — the journal
/// tail of a dying run shows how far the budget got (obs/Journal.h).
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SUPPORT_BUDGET_H
#define SPA_SUPPORT_BUDGET_H

#include "obs/Journal.h"
#include "support/Resource.h"

#include <atomic>
#include <cstdint>

namespace spa {

/// Why a budget stopped the analysis (None = it never tripped).
enum class BudgetReason : uint8_t {
  None = 0,
  Deadline,  ///< Wall-clock deadline passed.
  Steps,     ///< Step budget consumed.
  Memory,    ///< Peak RSS crossed the ceiling.
  Cancelled, ///< cancel() was called (external abort).
};

const char *budgetReasonName(BudgetReason R);

/// Declarative limits; 0 disables the corresponding check (matching the
/// TimeLimitSec convention everywhere else).  A *negative* DeadlineSec
/// means "already expired": the budget trips on the very first charge,
/// which is how tests pin deterministic full degradation.
struct BudgetLimits {
  double DeadlineSec = 0;
  uint64_t StepLimit = 0;
  uint64_t MemLimitKiB = 0;

  bool enabled() const {
    return DeadlineSec != 0 || StepLimit != 0 || MemLimitKiB != 0;
  }
};

/// The shared cooperative token.  Thread-safe: parallel lanes charge the
/// same Budget; exhaustion is sticky and the first tripping reason wins.
class Budget {
public:
  explicit Budget(const BudgetLimits &L) : Limits(L) {
    if (Limits.MemLimitKiB && heapTrackingActive()) {
      // Byte-accurate mode: estimate the process peak as the RSS at
      // budget creation plus tracked heap growth since.  Both reads are
      // then syscall-free on the charge path.
      BaseRssKiB = currentPeakRssKiB();
      BaseHeapBytes = peakTrackedHeapBytes();
    }
    if (Limits.DeadlineSec < 0)
      trip(BudgetReason::Deadline);
  }

  /// Consumes \p N steps and re-evaluates the limits at amortized
  /// intervals.  Returns false when the budget is (now) exhausted; the
  /// caller must stop and degrade.
  bool charge(uint64_t N = 1) {
    uint64_t Now = StepsUsed.fetch_add(N, std::memory_order_relaxed) + N;
    if (exhausted())
      return false;
    if (Limits.StepLimit && Now >= Limits.StepLimit) {
      trip(BudgetReason::Steps);
      return false;
    }
    // Amortized limit checks: only when this charge crossed a 1024-step
    // boundary (or is the first).  With the allocator hook the memory
    // estimate is two relaxed loads, so it runs on every boundary; the
    // VmHWM fallback reads /proc and runs 8x less often.
    if ((Now >> 10) != ((Now - N) >> 10) || Now == N) {
      SPA_OBS_JOURNAL(BudgetCharge, Now, 0);
      if (Limits.DeadlineSec > 0 && Clock.seconds() >= Limits.DeadlineSec) {
        trip(BudgetReason::Deadline);
        return false;
      }
      if (Limits.MemLimitKiB && estimatedPeakRssKiB(Now, N) >
                                    Limits.MemLimitKiB) {
        trip(BudgetReason::Memory);
        return false;
      }
    }
    return true;
  }

  bool exhausted() const {
    return R.load(std::memory_order_relaxed) !=
           static_cast<uint8_t>(BudgetReason::None);
  }

  BudgetReason reason() const {
    return static_cast<BudgetReason>(R.load(std::memory_order_relaxed));
  }

  /// External abort: later charges fail with Cancelled.
  void cancel() { trip(BudgetReason::Cancelled); }

  uint64_t steps() const {
    return StepsUsed.load(std::memory_order_relaxed);
  }

  double elapsedSeconds() const { return Clock.seconds(); }

  const BudgetLimits &limits() const { return Limits; }

private:
  void trip(BudgetReason Why) {
    uint8_t Expected = static_cast<uint8_t>(BudgetReason::None);
    if (R.compare_exchange_strong(Expected, static_cast<uint8_t>(Why),
                                  std::memory_order_relaxed))
      SPA_OBS_JOURNAL(BudgetTrip, static_cast<uint8_t>(Why),
                      StepsUsed.load(std::memory_order_relaxed));
  }

  /// Peak RSS estimate for the memory check.  Hook mode: creation-time
  /// RSS plus tracked heap growth, no syscall.  Fallback: the VmHWM
  /// poll, further amortized to 8192-step boundaries.
  uint64_t estimatedPeakRssKiB(uint64_t Now, uint64_t N) const {
    if (heapTrackingActive()) {
      uint64_t Peak = peakTrackedHeapBytes();
      uint64_t Delta = Peak > BaseHeapBytes ? Peak - BaseHeapBytes : 0;
      return BaseRssKiB + (Delta >> 10);
    }
    if ((Now >> 13) != ((Now - N) >> 13) || Now == N)
      return currentPeakRssKiB();
    return 0; // Off-boundary: skip the poll (0 never exceeds a limit).
  }

  BudgetLimits Limits;
  Timer Clock;
  uint64_t BaseRssKiB = 0;
  uint64_t BaseHeapBytes = 0;
  std::atomic<uint64_t> StepsUsed{0};
  std::atomic<uint8_t> R{static_cast<uint8_t>(BudgetReason::None)};
};

} // namespace spa

#endif // SPA_SUPPORT_BUDGET_H
