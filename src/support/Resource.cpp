//===- Resource.cpp - Wall-clock timing and memory measurement -------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Resource.h"

#include <cstdio>
#include <cstring>
#include <string>

#include <signal.h>
#include <sys/resource.h>
#include <sys/time.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace spa;

uint64_t spa::currentPeakRssKiB() {
  FILE *F = std::fopen("/proc/self/status", "r");
  if (!F)
    return 0;
  char Line[256];
  uint64_t KiB = 0;
  while (std::fgets(Line, sizeof(Line), F)) {
    if (std::strncmp(Line, "VmHWM:", 6) == 0) {
      KiB = std::strtoull(Line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(F);
  return KiB;
}

ChildRunResult spa::runInChild(const std::function<std::vector<double>()> &Job,
                               double TimeLimitSec) {
  ChildRunResult Result;

  int Pipe[2];
  if (pipe(Pipe) != 0)
    return Result;

  Timer Clock;
  pid_t Child = fork();
  if (Child < 0) {
    close(Pipe[0]);
    close(Pipe[1]);
    return Result;
  }

  if (Child == 0) {
    // Child: run the job, ship the payload doubles through the pipe.
    close(Pipe[0]);
    std::vector<double> Payload = Job();
    uint32_t Count = static_cast<uint32_t>(Payload.size());
    if (Count > 8)
      Count = 8;
    ssize_t Ignored = write(Pipe[1], &Count, sizeof(Count));
    (void)Ignored;
    for (uint32_t I = 0; I < Count; ++I) {
      Ignored = write(Pipe[1], &Payload[I], sizeof(double));
      (void)Ignored;
    }
    close(Pipe[1]);
    _exit(0);
  }

  // Parent: poll for exit up to the limit, then kill.
  close(Pipe[1]);
  bool Exited = false;
  int Status = 0;
  struct rusage Usage;
  std::memset(&Usage, 0, sizeof(Usage));
  for (;;) {
    pid_t W = wait4(Child, &Status, WNOHANG, &Usage);
    if (W == Child) {
      Exited = true;
      break;
    }
    if (W < 0)
      break;
    if (TimeLimitSec > 0 && Clock.seconds() > TimeLimitSec) {
      kill(Child, SIGKILL);
      wait4(Child, &Status, 0, &Usage);
      Result.TimedOut = true;
      break;
    }
    usleep(2000);
  }

  Result.Seconds = Clock.seconds();
  Result.PeakRssKiB = static_cast<uint64_t>(Usage.ru_maxrss);

  if (Exited && WIFEXITED(Status) && WEXITSTATUS(Status) == 0) {
    uint32_t Count = 0;
    if (read(Pipe[0], &Count, sizeof(Count)) == sizeof(Count) && Count <= 8) {
      Result.Ok = true;
      for (uint32_t I = 0; I < Count; ++I) {
        double D = 0;
        if (read(Pipe[0], &D, sizeof(D)) != sizeof(D)) {
          Result.Ok = false;
          break;
        }
        Result.Payload[I] = D;
        Result.PayloadCount = static_cast<int>(I) + 1;
      }
    }
  }
  close(Pipe[0]);
  return Result;
}
