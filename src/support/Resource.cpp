//===- Resource.cpp - Wall-clock timing and memory measurement -------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Resource.h"

#include "obs/Trace.h"
#include "support/Fault.h"

#include <cstdio>
#include <cstring>
#include <new>
#include <string>

#include <signal.h>
#include <sys/resource.h>
#include <sys/time.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace spa;

namespace {

/// Payload ceiling in doubles.  The parent drains the pipe only after
/// the child exits, so the whole payload must fit in the kernel pipe
/// buffer (64 KiB by default on Linux); 8000 doubles plus the length
/// prefix stays under it.  Bulk data (e.g. bench JSON records) goes
/// through files, not the pipe.
constexpr size_t MaxPayloadDoubles = 8000;

/// Whole-pipe byte budget the child may fill before exiting (the parent
/// drains only after exit, so everything must fit the kernel pipe
/// buffer).  Kept below the Linux default 64 KiB with headroom for the
/// payload prefix.
constexpr size_t PipeByteBudget = 60 * 1024;

/// Ceiling on a span-section length prefix the parent will trust.
constexpr uint32_t MaxSpanSectionBytes = 1u << 20;

} // namespace

double CpuTimer::now() {
  struct rusage RU;
  if (getrusage(RUSAGE_SELF, &RU) != 0)
    return 0;
  auto ToSec = [](const timeval &TV) {
    return static_cast<double>(TV.tv_sec) +
           static_cast<double>(TV.tv_usec) / 1e6;
  };
  return ToSec(RU.ru_utime) + ToSec(RU.ru_stime);
}

uint64_t spa::currentPeakRssKiB() {
  FILE *F = std::fopen("/proc/self/status", "r");
  if (!F)
    return 0;
  char Line[256];
  uint64_t KiB = 0;
  while (std::fgets(Line, sizeof(Line), F)) {
    if (std::strncmp(Line, "VmHWM:", 6) == 0) {
      KiB = std::strtoull(Line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(F);
  return KiB;
}

ChildRunResult spa::runInChild(
    const std::function<std::vector<double>()> &Job, double TimeLimitSec,
    uint64_t MemLimitKiB,
    const std::function<void(int ResultPipeFd)> &ChildSetup) {
  ChildRunResult Result;

  int Pipe[2];
  if (pipe(Pipe) != 0)
    return Result;

  Timer Clock;
  pid_t Child = fork();
  if (Child < 0) {
    close(Pipe[0]);
    close(Pipe[1]);
    return Result;
  }

  if (Child == 0) {
    // Child: run the job, ship the length-prefixed payload through the
    // pipe.  Writes loop because payloads may exceed PIPE_BUF.
    close(Pipe[0]);
    if (ChildSetup)
      ChildSetup(Pipe[1]);
    if (MemLimitKiB > 0) {
      // A hard address-space cap with a classifiable failure mode: the
      // new-handler dumps an OOM postmortem (pipe summary + file, when
      // installed — write(2) only, no allocation), then bad_alloc
      // becomes OomExitCode instead of an unhandled-exception abort.
      std::set_new_handler([] {
        obs::journalRecord(obs::JournalEventKind::OomTrip, 0, 0);
        obs::postmortemWriteNow(obs::PostmortemReason::Oom, 0);
        _exit(OomExitCode);
      });
      struct rlimit RL;
      RL.rlim_cur = RL.rlim_max = MemLimitKiB * 1024;
      setrlimit(RLIMIT_AS, &RL);
    }
    std::vector<double> Payload = Job();
    uint32_t Count = static_cast<uint32_t>(
        Payload.size() < MaxPayloadDoubles ? Payload.size()
                                           : MaxPayloadDoubles);
    auto WriteAll = [&](const void *Data, size_t Len) {
      const char *P = static_cast<const char *>(Data);
      while (Len > 0) {
        ssize_t N = write(Pipe[1], P, Len);
        if (N <= 0)
          _exit(1);
        P += N;
        Len -= static_cast<size_t>(N);
      }
    };
    WriteAll(&Count, sizeof(Count));
    if (Count > 0)
      WriteAll(Payload.data(), Count * sizeof(double));
    if (obs::Tracer::global().enabled()) {
      // Ship locally recorded trace spans as a trailing length-prefixed
      // section, sized to what remains of the pipe budget (newest spans
      // win when the budget truncates).
      size_t PayloadBytes = sizeof(Count) + Count * sizeof(double);
      if (PipeByteBudget > PayloadBytes + 64) {
        std::vector<uint8_t> Spans = obs::Tracer::global().drainSerialized(
            PipeByteBudget - PayloadBytes - sizeof(uint32_t));
        uint32_t Len = static_cast<uint32_t>(Spans.size());
        WriteAll(&Len, sizeof(Len));
        WriteAll(Spans.data(), Spans.size());
      }
    }
    close(Pipe[1]);
    _exit(0);
  }

  // Parent: poll for exit up to the limit, then kill.
  close(Pipe[1]);
  bool Exited = false;
  int Status = 0;
  struct rusage Usage;
  std::memset(&Usage, 0, sizeof(Usage));
  for (;;) {
    pid_t W = wait4(Child, &Status, WNOHANG, &Usage);
    if (W == Child) {
      Exited = true;
      break;
    }
    if (W < 0)
      break;
    if (TimeLimitSec > 0 && Clock.seconds() > TimeLimitSec) {
      kill(Child, SIGKILL);
      wait4(Child, &Status, 0, &Usage);
      Result.TimedOut = true;
      break;
    }
    usleep(2000);
  }

  Result.Seconds = Clock.seconds();
  Result.PeakRssKiB = static_cast<uint64_t>(Usage.ru_maxrss);
  if (Exited && WIFEXITED(Status))
    Result.ExitCode = WEXITSTATUS(Status);
  if (Exited && WIFSIGNALED(Status))
    Result.TermSignal = WTERMSIG(Status);

  // Injected reader faults (SPA_FAULT=truncate@reader / partial@reader,
  // armed parent-side by the batch driver) simulate a torn pipe: no
  // length prefix at all, or a payload cut off mid-write.  Both take
  // the same !Ok path a real short read does.
  bool DropPrefix = faultMatches("reader", FaultPlan::Kind::Truncate);
  bool TearPayload = faultMatches("reader", FaultPlan::Kind::Partial);
  uint32_t Count = 0;
  bool HavePrefix =
      !DropPrefix &&
      read(Pipe[0], &Count, sizeof(Count)) == sizeof(Count);
  if (HavePrefix && Count == obs::PostmortemPipeMagic) {
    // A dying child's postmortem summary, not a payload: the magic
    // exceeds any legal payload count, so the branch is unambiguous.
    obs::PostmortemSummary Sum;
    char *P = reinterpret_cast<char *>(&Sum);
    size_t Left = sizeof(Sum);
    while (Left > 0) {
      ssize_t N = read(Pipe[0], P, Left);
      if (N <= 0)
        break;
      P += N;
      Left -= static_cast<size_t>(N);
    }
    if (Left == 0) {
      Result.Crash = Sum;
      Result.HasCrashSummary = true;
    }
  } else if (Exited && WIFEXITED(Status) && WEXITSTATUS(Status) == 0 &&
             HavePrefix && Count <= MaxPayloadDoubles) {
    Result.Ok = true;
    Result.Payload.resize(Count);
    char *P = reinterpret_cast<char *>(Result.Payload.data());
    size_t Left = Count * sizeof(double);
    if (TearPayload)
      Left /= 2;
    while (Left > 0) {
      ssize_t N = read(Pipe[0], P, Left);
      if (N <= 0) {
        Result.Ok = false;
        Result.Payload.clear();
        break;
      }
      P += N;
      Left -= static_cast<size_t>(N);
    }
    if (TearPayload && Result.Ok) {
      Result.Ok = false;
      Result.Payload.clear();
    }
    if (Result.Ok) {
      // Optional trailing span section: u32 length + serialized spans.
      // EOF here just means the child was not tracing.
      uint32_t SpanLen = 0;
      if (read(Pipe[0], &SpanLen, sizeof(SpanLen)) == sizeof(SpanLen) &&
          SpanLen > 0 && SpanLen <= MaxSpanSectionBytes) {
        Result.SpanBuf.resize(SpanLen);
        char *SP = reinterpret_cast<char *>(Result.SpanBuf.data());
        size_t SLeft = SpanLen;
        while (SLeft > 0) {
          ssize_t N = read(Pipe[0], SP, SLeft);
          if (N <= 0) {
            // A torn span section degrades tracing, not the result.
            Result.SpanBuf.clear();
            break;
          }
          SP += N;
          SLeft -= static_cast<size_t>(N);
        }
      }
    }
  }
  close(Pipe[0]);
  return Result;
}
