//===- WorkList.h - Deduplicating priority worklist ------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worklist used by every fixpoint engine in the analyzer.  Items carry
/// a precomputed priority (weak-topological / reverse-postorder index) so
/// the engine visits points in a stable, near-topological order, and a
/// membership bitmap deduplicates re-insertions.
///
/// Priorities are dense small integers (2 * RPO index + 1 at most), so the
/// queue is a bucket queue indexed by priority: push and pop are O(1) on
/// the fixpoint hot path instead of the O(log n) of a binary heap.  The
/// pop order is exactly the old heap's order — ascending (priority, item)
/// — which the engines' results depend on and
/// tests/worklist_test.cpp pins.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SUPPORT_WORKLIST_H
#define SPA_SUPPORT_WORKLIST_H

#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

namespace spa {

/// Priority worklist over dense item indices [0, Size).  Lower priority
/// values pop first; ties pop the smallest item index.  Duplicate pushes
/// of an in-queue item are ignored.
class WorkList {
public:
  /// \p Priorities maps item index to its scheduling priority.
  explicit WorkList(std::vector<uint32_t> Priorities)
      : Priority(std::move(Priorities)), InQueue(Priority.size(), false) {
    uint32_t MaxPrio = 0;
    for (uint32_t P : Priority)
      MaxPrio = std::max(MaxPrio, P);
    Buckets.resize(static_cast<size_t>(MaxPrio) + 1);
  }

  bool empty() const { return Count == 0; }
  size_t size() const { return Count; }

  /// Enqueues \p Item unless it is already pending.
  void push(uint32_t Item) {
    assert(Item < InQueue.size() && "worklist item out of range");
    if (InQueue[Item]) {
      SPA_OBS_COUNT("fixpoint.worklist.deduped", 1);
      return;
    }
    InQueue[Item] = true;
    SPA_OBS_COUNT("fixpoint.worklist.pushes", 1);
    uint32_t P = Priority[Item];
    std::vector<uint32_t> &B = Buckets[P];
    // Kept descending so pop_back yields the smallest item index; a
    // bucket holds the same-priority pending items (phis sharing a join
    // point), which stay small, so the sorted insert is effectively
    // constant-time.
    B.insert(std::upper_bound(B.begin(), B.end(), Item,
                              std::greater<uint32_t>()),
             Item);
    if (P < Cursor)
      Cursor = P;
    ++Count;
  }

  /// Invokes \p F on every pending item, in ascending item order.  The
  /// engines enumerate the unprocessed entries this way when a resource
  /// budget trips mid-fixpoint, to seed the degradation frontier.
  template <typename Fn> void forEachPending(Fn F) const {
    for (uint32_t I = 0; I < InQueue.size(); ++I)
      if (InQueue[I])
        F(I);
  }

  /// Pops the pending item with the smallest (priority, index).
  uint32_t pop() {
    assert(Count > 0 && "pop from empty worklist");
    // The cursor only moves backward on push (retreating edges), so the
    // forward scan over buckets amortizes across the run.
    while (Buckets[Cursor].empty())
      ++Cursor;
    uint32_t Item = Buckets[Cursor].back();
    Buckets[Cursor].pop_back();
    --Count;
    InQueue[Item] = false;
    SPA_OBS_COUNT("fixpoint.worklist.pops", 1);
    return Item;
  }

private:
  std::vector<uint32_t> Priority;
  std::vector<bool> InQueue;
  std::vector<std::vector<uint32_t>> Buckets; ///< Indexed by priority.
  uint32_t Cursor = 0; ///< No pending item has priority below this.
  size_t Count = 0;
};

} // namespace spa

#endif // SPA_SUPPORT_WORKLIST_H
