//===- WorkList.h - Deduplicating priority worklist ------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worklist used by every fixpoint engine in the analyzer.  Items carry
/// a precomputed priority (weak-topological / reverse-postorder index) so
/// the engine visits points in a stable, near-topological order, and a
/// membership bitmap deduplicates re-insertions.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SUPPORT_WORKLIST_H
#define SPA_SUPPORT_WORKLIST_H

#include "obs/Metrics.h"

#include <cassert>
#include <cstdint>
#include <queue>
#include <vector>

namespace spa {

/// Priority worklist over dense item indices [0, Size).  Lower priority
/// values pop first.  Duplicate pushes of an in-queue item are ignored.
class WorkList {
public:
  /// \p Priorities maps item index to its scheduling priority.
  explicit WorkList(std::vector<uint32_t> Priorities)
      : Priority(std::move(Priorities)), InQueue(Priority.size(), false) {}

  bool empty() const { return Heap.empty(); }
  size_t size() const { return Heap.size(); }

  /// Enqueues \p Item unless it is already pending.
  void push(uint32_t Item) {
    assert(Item < InQueue.size() && "worklist item out of range");
    if (InQueue[Item]) {
      SPA_OBS_COUNT("fixpoint.worklist.deduped", 1);
      return;
    }
    InQueue[Item] = true;
    SPA_OBS_COUNT("fixpoint.worklist.pushes", 1);
    Heap.push(Entry{Priority[Item], Item});
  }

  /// Pops the pending item with the smallest priority.
  uint32_t pop() {
    assert(!Heap.empty() && "pop from empty worklist");
    uint32_t Item = Heap.top().Item;
    Heap.pop();
    InQueue[Item] = false;
    SPA_OBS_COUNT("fixpoint.worklist.pops", 1);
    return Item;
  }

private:
  struct Entry {
    uint32_t Prio;
    uint32_t Item;
    friend bool operator>(const Entry &A, const Entry &B) {
      if (A.Prio != B.Prio)
        return A.Prio > B.Prio;
      return A.Item > B.Item;
    }
  };

  std::vector<uint32_t> Priority;
  std::vector<bool> InQueue;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> Heap;
};

} // namespace spa

#endif // SPA_SUPPORT_WORKLIST_H
