//===- Resource.h - Wall-clock timing and memory measurement ---------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Timing and peak-memory helpers used by the benchmark harnesses.  Peak
/// memory of an analyzer configuration is measured by running it in a forked
/// child and reading the child's ru_maxrss, mirroring the per-process peak
/// memory the paper reports.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SUPPORT_RESOURCE_H
#define SPA_SUPPORT_RESOURCE_H

#include "obs/Postmortem.h"

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

namespace spa {

/// Monotonic wall-clock stopwatch.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  void reset() { Start = Clock::now(); }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Process CPU-time stopwatch (user + system across all threads, from
/// getrusage).  Paired with Timer around a parallel phase it yields the
/// wall vs. cpu split the par.* gauges report: cpu/wall ≈ effective
/// parallelism, cpu >> wall flags contention or oversubscription.
class CpuTimer {
public:
  CpuTimer() : Start(now()) {}

  /// CPU seconds consumed by the process since construction/reset().
  double seconds() const { return now() - Start; }

  void reset() { Start = now(); }

private:
  static double now();
  double Start;
};

/// Result of running a job in a forked child process.
struct ChildRunResult {
  bool Ok = false;         ///< Child exited 0 within the time limit.
  bool TimedOut = false;   ///< Child was killed at the limit.
  double Seconds = 0.0;    ///< Wall-clock time of the child.
  uint64_t PeakRssKiB = 0; ///< Child's ru_maxrss (KiB on Linux).
  /// Exit status of the child: WEXITSTATUS when it exited normally, -1
  /// otherwise.  Lets callers classify failures (e.g. the batch driver's
  /// crash/oom taxonomy) instead of collapsing everything into !Ok.
  int ExitCode = -1;
  /// Terminating signal when the child died on one (0 otherwise; a child
  /// the parent killed at the time limit reports TimedOut, not a signal
  /// failure).
  int TermSignal = 0;
  /// Doubles reported back by the child, length-prefixed over the pipe
  /// (no fixed cap, so rich per-run metric payloads survive the fork
  /// boundary).
  std::vector<double> Payload;
  /// Compact diagnosis a dying child shipped over the pipe (its
  /// postmortem writer tags it with a magic length prefix no legal
  /// payload can produce).  Valid only when HasCrashSummary.
  obs::PostmortemSummary Crash;
  bool HasCrashSummary = false;
  /// Serialized trace spans the child recorded (obs/Trace.h
  /// drainSerialized format), shipped after the payload when the child's
  /// tracer was recording.  Empty otherwise; the caller feeds it to
  /// Tracer::ingestSerialized to merge the child's timeline.
  std::vector<uint8_t> SpanBuf;
};

/// Runs \p Job in a forked child with a wall-clock limit of
/// \p TimeLimitSec seconds (0 = unlimited).  The child's return values
/// (vector of doubles written to a pipe) and ru_maxrss are reported back.
/// Used by the table benchmarks so each analyzer run gets an isolated
/// peak-RSS measurement, like the per-process numbers in the paper.
///
/// \p MemLimitKiB > 0 caps the child's address space (RLIMIT_AS); an
/// allocation beyond it makes the child exit with OomExitCode (a
/// new-handler writes an OOM postmortem, then turns bad_alloc into that
/// exit, so the failure is classifiable instead of an
/// unhandled-exception abort).
///
/// \p ChildSetup, when set, runs first thing in the child with the
/// write end of the result pipe — the batch driver uses it to install
/// the postmortem writer (pipe summaries + file) and the stall
/// watchdog before any analysis work starts.
ChildRunResult
runInChild(const std::function<std::vector<double>()> &Job,
           double TimeLimitSec, uint64_t MemLimitKiB = 0,
           const std::function<void(int ResultPipeFd)> &ChildSetup = {});

/// Peak RSS of the current process in KiB (VmHWM from /proc/self/status).
uint64_t currentPeakRssKiB();

/// Byte-accurate heap accounting from the counting-allocator hook
/// (support/MemHook.cpp): global operator new/delete are replaced with
/// counting wrappers, so the memory budget can trip on an allocation
/// spike instead of waiting for the next amortized /proc poll.  Inactive
/// (always 0 / false) in sanitizer builds, where replacing the global
/// allocator would fight the sanitizer's own interposer — Budget falls
/// back to the VmHWM poll there.
uint64_t currentTrackedHeapBytes();
uint64_t peakTrackedHeapBytes();
bool heapTrackingActive();

} // namespace spa

#endif // SPA_SUPPORT_RESOURCE_H
