//===- Budget.cpp - Cooperative resource budget ----------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"

using namespace spa;

const char *spa::budgetReasonName(BudgetReason R) {
  switch (R) {
  case BudgetReason::None:
    return "none";
  case BudgetReason::Deadline:
    return "deadline";
  case BudgetReason::Steps:
    return "steps";
  case BudgetReason::Memory:
    return "memory";
  case BudgetReason::Cancelled:
    return "cancelled";
  }
  return "unknown";
}
