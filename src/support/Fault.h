//===- Fault.h - Deterministic fault-injection hook ------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for testing the batch driver's failure
/// isolation (docs/ROBUSTNESS.md).  A fault plan is parsed from
///
///   SPA_FAULT=<kind>@<phase>[:<name-substr>]
///
/// where <kind> is crash | oom | timeout | stall | truncate | partial,
/// <phase> is one of the analyzer phase names (build, pre, defuse,
/// depbuild, fix, check), the amortized in-fixpoint checkpoint
/// ("fixloop" — the only site where `stall` makes sense: it hangs the
/// loop *between* heartbeats, which is what the watchdog of
/// obs/Postmortem.h exists to catch), the batch parent's pipe-reader
/// phase ("reader"), or "*", and the optional <name-substr> restricts
/// the fault to programs whose batch-item name contains the substring.  The plan only fires inside a
/// FaultScope, which the batch driver installs exclusively in *isolated*
/// child processes — injected faults therefore kill at most one
/// program's subprocess, exactly the failure domain the isolation layer
/// must contain.
///
/// The truncate/partial kinds are the one exception: they model a child
/// whose result pipe tore (no length prefix at all, or a payload cut off
/// mid-write), which is inherently a *parent-side* failure to observe.
/// The batch driver arms them around its reader instead of in the child,
/// and the reader simulates the short read itself (faultMatches below)
/// rather than killing anything.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SUPPORT_FAULT_H
#define SPA_SUPPORT_FAULT_H

#include <string>

namespace spa {

/// Exit code an isolated child uses to report memory exhaustion (both
/// injected "oom" faults and a real operator-new failure under
/// setrlimit), distinguishable from crashes (signals) and build errors.
constexpr int OomExitCode = 86;

/// A parsed SPA_FAULT specification.
struct FaultPlan {
  enum class Kind { None, Crash, Oom, Timeout, Stall, Truncate, Partial };
  Kind K = Kind::None;
  std::string Phase;   ///< Phase name or "*".
  std::string NameSub; ///< Empty = any program.

  bool active() const { return K != Kind::None; }

  /// The kinds the batch driver arms in the parent (around its pipe
  /// reader) instead of in the isolated child.
  bool parentSide() const {
    return K == Kind::Truncate || K == Kind::Partial;
  }

  /// Parses \p Spec; returns an inactive plan for null/empty/bad specs.
  static FaultPlan parse(const char *Spec);

  /// Plan from the SPA_FAULT environment variable (re-read every call so
  /// tests can vary it between batch runs).
  static FaultPlan fromEnv();
};

/// Arms \p Plan for the current thread while in scope, tagging it with
/// the program name the \p NameSub filter matches against.  Installed
/// only in isolated batch children; nesting restores the outer scope.
class FaultScope {
public:
  FaultScope(const FaultPlan &Plan, std::string ProgramName);
  ~FaultScope();
  FaultScope(const FaultScope &) = delete;
  FaultScope &operator=(const FaultScope &) = delete;
};

/// Fires the armed fault if its phase filter matches \p Phase: crash
/// calls abort(), oom exits with OomExitCode, timeout and stall sleep
/// until something external reaps the process (the batch parent's kill
/// limit, or — for a stall armed at the "fixloop" checkpoint — the
/// heartbeat watchdog, which classifies it `stalled` first).  The
/// parent-side kinds (truncate/partial) are no-ops here.  No-op outside
/// a FaultScope or when the filters do not match.
void maybeInjectFault(const char *Phase);

/// True when a plan of kind \p K is armed on this thread and its
/// phase/name filters match \p Phase.  Query form for faults the caller
/// simulates itself (the runInChild reader's truncate/partial); never
/// kills the process.
bool faultMatches(const char *Phase, FaultPlan::Kind K);

} // namespace spa

#endif // SPA_SUPPORT_FAULT_H
