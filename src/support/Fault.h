//===- Fault.h - Deterministic fault-injection hook ------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for testing the batch driver's failure
/// isolation (docs/ROBUSTNESS.md).  A fault plan is parsed from
///
///   SPA_FAULT=<kind>@<phase>[:<name-substr>]
///
/// where <kind> is crash | oom | timeout, <phase> is one of the analyzer
/// phase names (build, pre, defuse, depbuild, fix, check) or "*", and
/// the optional <name-substr> restricts the fault to programs whose
/// batch-item name contains the substring.  The plan only fires inside a
/// FaultScope, which the batch driver installs exclusively in *isolated*
/// child processes — injected faults therefore kill at most one
/// program's subprocess, exactly the failure domain the isolation layer
/// must contain.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SUPPORT_FAULT_H
#define SPA_SUPPORT_FAULT_H

#include <string>

namespace spa {

/// Exit code an isolated child uses to report memory exhaustion (both
/// injected "oom" faults and a real operator-new failure under
/// setrlimit), distinguishable from crashes (signals) and build errors.
constexpr int OomExitCode = 86;

/// A parsed SPA_FAULT specification.
struct FaultPlan {
  enum class Kind { None, Crash, Oom, Timeout };
  Kind K = Kind::None;
  std::string Phase;   ///< Phase name or "*".
  std::string NameSub; ///< Empty = any program.

  bool active() const { return K != Kind::None; }

  /// Parses \p Spec; returns an inactive plan for null/empty/bad specs.
  static FaultPlan parse(const char *Spec);

  /// Plan from the SPA_FAULT environment variable (re-read every call so
  /// tests can vary it between batch runs).
  static FaultPlan fromEnv();
};

/// Arms \p Plan for the current thread while in scope, tagging it with
/// the program name the \p NameSub filter matches against.  Installed
/// only in isolated batch children; nesting restores the outer scope.
class FaultScope {
public:
  FaultScope(const FaultPlan &Plan, std::string ProgramName);
  ~FaultScope();
  FaultScope(const FaultScope &) = delete;
  FaultScope &operator=(const FaultScope &) = delete;
};

/// Fires the armed fault if its phase filter matches \p Phase: crash
/// calls abort(), oom exits with OomExitCode, timeout sleeps until the
/// batch parent's kill limit reaps the child.  No-op outside a
/// FaultScope or when the filters do not match.
void maybeInjectFault(const char *Phase);

} // namespace spa

#endif // SPA_SUPPORT_FAULT_H
