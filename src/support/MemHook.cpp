//===- MemHook.cpp - Counting-allocator hook for memory budgets ------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-accurate heap accounting: global operator new/delete are
/// replaced with wrappers that keep a relaxed-atomic current/peak byte
/// count via malloc_usable_size.  Budget (support/Budget.h) reads the
/// peak on its amortized check boundaries, so an RSS budget trips on
/// the allocation spike itself instead of up to 8192 steps later when
/// the /proc/self/status poll would next run (the carried ROADMAP
/// item).
///
/// Rules of the road in here: the wrappers run under every allocation
/// in the process, including inside the metrics registry and the
/// journal, so they must not call back into either — plain malloc/free
/// plus two atomics, nothing else.
///
/// SPA_NO_MEM_HOOK (set by CMake for -DSPA_SANITIZE builds) compiles
/// the operator replacements out: ASan/TSan interpose the allocator
/// themselves and two interposers cannot coexist.  The query functions
/// then report the hook inactive and Budget uses the VmHWM poll.
///
//===----------------------------------------------------------------------===//

#include "support/Resource.h"

#include <atomic>
#include <cstdlib>
#include <new>

#ifdef __linux__
#include <malloc.h>
#endif

namespace {

std::atomic<uint64_t> HeapCurrentBytes{0};
std::atomic<uint64_t> HeapPeakBytes{0};

#if !defined(SPA_NO_MEM_HOOK) && defined(__linux__)
constexpr bool HookActive = true;

inline void accountAlloc(void *P) {
  if (!P)
    return;
  uint64_t N = malloc_usable_size(P);
  uint64_t Cur =
      HeapCurrentBytes.fetch_add(N, std::memory_order_relaxed) + N;
  uint64_t Peak = HeapPeakBytes.load(std::memory_order_relaxed);
  while (Cur > Peak && !HeapPeakBytes.compare_exchange_weak(
                           Peak, Cur, std::memory_order_relaxed)) {
  }
}

inline void accountFree(void *P) {
  if (!P)
    return;
  HeapCurrentBytes.fetch_sub(malloc_usable_size(P),
                             std::memory_order_relaxed);
}

/// malloc with the standard new-handler retry loop, so a hard RLIMIT_AS
/// cap still reaches the installed new-handler (the isolated batch
/// child's classifiable-OOM path) instead of returning null into code
/// that expects throwing new.
void *allocOrHandle(size_t N) {
  if (N == 0)
    N = 1;
  for (;;) {
    if (void *P = std::malloc(N)) {
      accountAlloc(P);
      return P;
    }
    std::new_handler H = std::get_new_handler();
    if (!H)
      throw std::bad_alloc();
    H();
  }
}

void *allocAlignedOrHandle(size_t N, size_t Align) {
  if (N == 0)
    N = 1;
  for (;;) {
    void *P = nullptr;
    if (posix_memalign(&P, Align < sizeof(void *) ? sizeof(void *) : Align,
                       N) == 0) {
      accountAlloc(P);
      return P;
    }
    std::new_handler H = std::get_new_handler();
    if (!H)
      throw std::bad_alloc();
    H();
  }
}

#else
constexpr bool HookActive = false;
#endif

} // namespace

uint64_t spa::currentTrackedHeapBytes() {
  return HeapCurrentBytes.load(std::memory_order_relaxed);
}

uint64_t spa::peakTrackedHeapBytes() {
  return HeapPeakBytes.load(std::memory_order_relaxed);
}

bool spa::heapTrackingActive() { return HookActive; }

#if !defined(SPA_NO_MEM_HOOK) && defined(__linux__)

void *operator new(size_t N) { return allocOrHandle(N); }
void *operator new[](size_t N) { return allocOrHandle(N); }
void *operator new(size_t N, std::align_val_t A) {
  return allocAlignedOrHandle(N, static_cast<size_t>(A));
}
void *operator new[](size_t N, std::align_val_t A) {
  return allocAlignedOrHandle(N, static_cast<size_t>(A));
}

void *operator new(size_t N, const std::nothrow_t &) noexcept {
  void *P = std::malloc(N ? N : 1);
  accountAlloc(P);
  return P;
}
void *operator new[](size_t N, const std::nothrow_t &) noexcept {
  void *P = std::malloc(N ? N : 1);
  accountAlloc(P);
  return P;
}

void operator delete(void *P) noexcept {
  accountFree(P);
  std::free(P);
}
void operator delete[](void *P) noexcept {
  accountFree(P);
  std::free(P);
}
void operator delete(void *P, size_t) noexcept {
  accountFree(P);
  std::free(P);
}
void operator delete[](void *P, size_t) noexcept {
  accountFree(P);
  std::free(P);
}
void operator delete(void *P, std::align_val_t) noexcept {
  accountFree(P);
  std::free(P);
}
void operator delete[](void *P, std::align_val_t) noexcept {
  accountFree(P);
  std::free(P);
}
void operator delete(void *P, std::align_val_t, size_t) noexcept {
  accountFree(P);
  std::free(P);
}
void operator delete[](void *P, std::align_val_t, size_t) noexcept {
  accountFree(P);
  std::free(P);
}
void operator delete(void *P, const std::nothrow_t &) noexcept {
  accountFree(P);
  std::free(P);
}
void operator delete[](void *P, const std::nothrow_t &) noexcept {
  accountFree(P);
  std::free(P);
}

#endif // !SPA_NO_MEM_HOOK && __linux__
