//===- ThreadPool.cpp - Fixed-size worker pool ------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "obs/Metrics.h"

#include <atomic>
#include <cstdlib>

using namespace spa;

namespace {

/// Set while the current thread is executing inside a pool worker loop.
thread_local bool InWorkerThread = false;

} // namespace

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = defaultJobs();
  if (Threads < 1)
    Threads = 1;
  Workers.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
  SPA_OBS_GAUGE_MAX("par.pool_threads", Threads);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopping = true;
  }
  CV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  InWorkerThread = true;
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(M);
      if (Queue.empty() && !Stopping) {
        SPA_OBS_COUNT("par.queue_waits", 1);
        CV.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      }
      if (Queue.empty()) {
        if (Stopping)
          return;
        continue;
      }
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    SPA_OBS_COUNT("par.tasks", 1);
    Task();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> Fn) {
  auto P = std::make_shared<std::promise<void>>();
  std::future<void> F = P->get_future();
  {
    std::lock_guard<std::mutex> Lock(M);
    Queue.push_back([P, Fn = std::move(Fn)] {
      try {
        Fn();
        P->set_value();
      } catch (...) {
        P->set_exception(std::current_exception());
      }
    });
  }
  CV.notify_one();
  return F;
}

void ThreadPool::parallelFor(size_t N, unsigned Jobs,
                             const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  if (Jobs > numThreads())
    Jobs = numThreads();
  if (Jobs <= 1 || N <= 1 || InWorkerThread) {
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }

  // Shared dynamic index: lanes strip-mine [0, N).  Each index writes
  // only caller-owned per-index state, so the claim order is free to be
  // nondeterministic without the results being so.
  struct SharedState {
    std::atomic<size_t> Next{0};
    std::atomic<size_t> Done{0};
    std::exception_ptr FirstError;
    std::mutex ErrM;
    std::mutex DoneM;
    std::condition_variable DoneCV;
  };
  auto State = std::make_shared<SharedState>();
  size_t Total = N;
  auto Lane = [State, Total, &Fn] {
    size_t Claimed = 0;
    for (;;) {
      size_t I = State->Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Total)
        break;
      ++Claimed;
      try {
        Fn(I);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(State->ErrM);
        if (!State->FirstError)
          State->FirstError = std::current_exception();
      }
    }
    if (State->Done.fetch_add(Claimed, std::memory_order_acq_rel) + Claimed ==
        Total) {
      std::lock_guard<std::mutex> Lock(State->DoneM);
      State->DoneCV.notify_all();
    }
  };

  unsigned Helpers = Jobs - 1; // The caller is a lane too.
  {
    std::lock_guard<std::mutex> Lock(M);
    for (unsigned I = 0; I < Helpers; ++I)
      Queue.push_back(Lane);
  }
  CV.notify_all();
  Lane();

  // All indices claimed by someone; wait for the stragglers to finish
  // theirs.  (A helper still sitting unexecuted in the queue claims
  // nothing and completes immediately.)
  {
    std::unique_lock<std::mutex> Lock(State->DoneM);
    State->DoneCV.wait(Lock, [&] {
      return State->Done.load(std::memory_order_acquire) >= Total;
    });
  }
  if (State->FirstError)
    std::rethrow_exception(State->FirstError);
}

void ThreadPool::parallelForChunks(
    size_t N, unsigned Jobs, const std::function<void(size_t, size_t)> &Fn) {
  if (N == 0)
    return;
  if (Jobs > numThreads())
    Jobs = numThreads();
  size_t Chunks = Jobs;
  if (Chunks > N)
    Chunks = N;
  if (Chunks <= 1 || InWorkerThread) {
    Fn(0, N);
    return;
  }
  // Chunk boundaries depend only on (N, Chunks): index I covers
  // [I*N/Chunks, (I+1)*N/Chunks).
  parallelFor(Chunks, Jobs, [&](size_t I) {
    size_t Begin = I * N / Chunks;
    size_t End = (I + 1) * N / Chunks;
    if (Begin < End)
      Fn(Begin, End);
  });
}

ThreadPool &ThreadPool::global() {
  static ThreadPool Pool(defaultJobs());
  return Pool;
}

unsigned ThreadPool::defaultJobs() {
  if (const char *Env = std::getenv("SPA_JOBS")) {
    long V = std::strtol(Env, nullptr, 10);
    if (V > 0)
      return static_cast<unsigned>(V);
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW > 0 ? HW : 1;
}

bool ThreadPool::inWorker() { return InWorkerThread; }
