//===- Octagon.h - Octagon abstract domain (DBM) --------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The octagon abstract domain of Miné (HOSC 2006), the relational domain
/// of the paper's Section 4 and Table 3.  An octagon over k variables
/// captures conjunctions of constraints (±vi ± vj ≤ c) in a difference
/// bound matrix over 2k "signed" variables: index 2i stands for +vi and
/// 2i+1 for −vi, and M[i][j] bounds xj − xi ≤ M[i][j].
///
/// The implementation keeps matrices strongly closed (shortest paths plus
/// the unary-constraint strengthening step and integer tightening), which
/// makes inclusion, equality, join, and projection exact.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_OCT_OCTAGON_H
#define SPA_OCT_OCTAGON_H

#include "domains/Interval.h"

#include <cstdint>
#include <string>
#include <vector>

namespace spa {

namespace oct_detail {
/// Thread-local count of closure executions across both octagon
/// backends (dense sweeps, sparse full and incremental drains).  The
/// analysis engines snapshot deltas around each visit to attribute
/// closure cost per control point in the ledger (PointCost::Closures).
uint64_t closureTicks();
void bumpClosureTick();
} // namespace oct_detail

/// An octagon over a fixed number of variables (the pack's size).
/// Default-constructed octagons are ⊤ over zero variables; use the
/// explicit constructors for real packs.
class Oct {
public:
  /// ⊤ over \p NumVars variables (no constraints).
  explicit Oct(uint32_t NumVars = 0);

  static Oct top(uint32_t NumVars) { return Oct(NumVars); }
  static Oct bottom(uint32_t NumVars);

  uint32_t numVars() const { return N; }
  bool isBottom() const { return Empty; }

  bool operator==(const Oct &O) const;
  bool operator!=(const Oct &O) const { return !(*this == O); }

  /// Lattice order, join, meet, widening, narrowing (all arguments must
  /// have the same variable count).
  bool leq(const Oct &O) const;
  Oct join(const Oct &O) const;
  Oct meet(const Oct &O) const;
  Oct widen(const Oct &O) const;
  Oct narrow(const Oct &O) const;

  /// Removes all constraints involving variable \p V (projection).
  Oct forget(uint32_t V) const;

  /// v := [lo, hi] (forget then bound).
  Oct assignInterval(uint32_t V, const Interval &Itv) const;
  /// v := w + c, exact relational assignment (also handles v := v + c).
  Oct assignVarPlusConst(uint32_t V, uint32_t W, int64_t C) const;

  /// Adds constraint  (PosV ? v : −v) + (PosW ? w : −w) ≤ C  and closes.
  /// Use addUpperBound/addLowerBound for unary constraints.
  Oct addSumConstraint(uint32_t V, bool PosV, uint32_t W, bool PosW,
                       int64_t C) const;
  /// v ≤ C.
  Oct addUpperBound(uint32_t V, int64_t C) const;
  /// v ≥ C.
  Oct addLowerBound(uint32_t V, int64_t C) const;
  /// v − w ≤ C.
  Oct addDiffConstraint(uint32_t V, uint32_t W, int64_t C) const;

  /// The interval of variable \p V implied by the constraints (the
  /// projection π_x of Section 4.1).
  Interval project(uint32_t V) const;

  /// The interval of (v − w) implied by the constraints.
  Interval projectDiff(uint32_t V, uint32_t W) const;
  /// The interval of (v + w) implied by the constraints.
  Interval projectSum(uint32_t V, uint32_t W) const;

  std::string str() const;

  /// Total bytes for memory accounting: object header plus matrix heap.
  /// Empty (bottom) octagons carry no matrix — bottom() never allocates
  /// one and close() releases it on infeasibility — so both backends
  /// charge infeasible states the same near-constant footprint and
  /// --mem-limit budgets compare them fairly.
  uint64_t memoryBytes() const {
    return M.capacity() * sizeof(int64_t) + sizeof(*this);
  }

private:
  int64_t &at(uint32_t I, uint32_t J) { return M[I * 2 * N + J]; }
  int64_t at(uint32_t I, uint32_t J) const { return M[I * 2 * N + J]; }
  static uint32_t bar(uint32_t I) { return I ^ 1; } // +v <-> −v.

  /// Strong closure with integer tightening; sets Empty on infeasibility.
  void close();

  /// Marks the octagon infeasible and releases the matrix (see
  /// memoryBytes: Empty states account no dead storage).
  void dropMatrix();

  uint32_t N = 0;   ///< Variables (matrix is 2N x 2N).
  bool Empty = false;
  std::vector<int64_t> M; ///< Row-major bounds; bound::PosInf = absent.
};

} // namespace spa

#endif // SPA_OCT_OCTAGON_H
