//===- SplitOct.h - Sparse split-normal-form octagon domain ---------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A graph-backed octagon representation in the split-normal-form style of
/// crab's split_oct domain: instead of a dense 2N x 2N difference bound
/// matrix, the unary channel (±2v ≤ c bounds, one slot per signed vertex)
/// is split out into a flat array and the binary ±x±y constraints live in
/// per-vertex adaptive adjacency lists (inline small-buffer, spilling to
/// the heap only for high-degree vertices).
///
/// The representation maintains exactly the same canonical form as the
/// dense `Oct`: the tight closure, i.e. the least fixpoint of the
/// shortest-path, integer-tightening, and strengthening rules.  Because
/// that fixpoint is the unique entrywise minimum regardless of rule
/// application order, every operation here is bit-identical to its dense
/// counterpart — the equivalence fuzz suite (tests/split_oct_test.cpp)
/// pins projections, ordering, and canonical structure against the DBM.
///
/// What changes is the cost model: after a single constraint addition the
/// domain runs an *incremental* closure — a worklist relaxation seeded
/// only with the new edge, the sparse analogue of adding one edge to a
/// closed graph — instead of the dense O(n³) Floyd–Warshall sweep, and
/// `widen` restabilizes (skips re-closure entirely) when the widening
/// dropped no constraint, which is the steady state of a converging
/// fixpoint.  Counters under `oct.split.*` expose full vs incremental
/// closures, restabilize skips, and edge-relaxation volume
/// (docs/OBSERVABILITY.md).
///
//===----------------------------------------------------------------------===//

#ifndef SPA_OCT_SPLITOCT_H
#define SPA_OCT_SPLITOCT_H

#include "domains/Interval.h"

#include <cstdint>
#include <string>
#include <vector>

namespace spa {

namespace oct_detail {
/// Reusable per-thread closure scratch (worklist, in-queue stamps, drain
/// snapshot buffers); defined in SplitOct.cpp.
struct CloseScratch;
} // namespace oct_detail

/// One directed binary constraint edge: x_Dst − x_Src ≤ W, stored in the
/// source vertex's adjacency list.
struct OctEdge {
  uint32_t Dst = 0;
  int64_t W = 0;

  bool operator==(const OctEdge &O) const { return Dst == O.Dst && W == O.W; }
};

/// Adaptive adjacency storage: a small inline sorted array that spills to
/// a heap vector past InlineCap entries.  Sparse octagons keep most
/// vertices at degree ≤ InlineCap, so copies (which the analysis performs
/// on every transfer) stay allocation-free; high-degree vertices — packs
/// with many mutually bounded variables, where strengthening materializes
/// a near-clique — pay one spill vector.
class OctEdgeList {
public:
  OctEdgeList() = default;

  const OctEdge *begin() const { return spilled() ? Spill.data() : Inl; }
  const OctEdge *end() const { return begin() + Sz; }
  OctEdge *begin() { return mutBegin(); }
  OctEdge *end() { return mutEnd(); }
  uint32_t size() const { return Sz; }
  bool empty() const { return Sz == 0; }

  bool operator==(const OctEdgeList &O) const {
    if (Sz != O.Sz)
      return false;
    const OctEdge *A = begin(), *B = O.begin();
    for (uint32_t I = 0; I < Sz; ++I)
      if (!(A[I] == B[I]))
        return false;
    return true;
  }

  /// Weight slot of the edge to \p Dst, or null when absent.
  int64_t *find(uint32_t Dst) {
    OctEdge *E = lowerBound(Dst);
    return (E != mutEnd() && E->Dst == Dst) ? &E->W : nullptr;
  }
  const int64_t *find(uint32_t Dst) const {
    return const_cast<OctEdgeList *>(this)->find(Dst);
  }

  /// Inserts an edge to \p Dst (must be absent), keeping the list sorted.
  void insert(uint32_t Dst, int64_t W);

  /// Removes the edge to \p Dst; returns false when absent.
  bool erase(uint32_t Dst);

  void clear() {
    Sz = 0;
    Spill.clear();
  }

  /// Heap bytes owned beyond the inline buffer (memory accounting).
  uint64_t heapBytes() const { return Spill.capacity() * sizeof(OctEdge); }

  static constexpr uint32_t InlineCap = 4;

private:
  bool spilled() const { return !Spill.empty(); }
  OctEdge *mutBegin() { return spilled() ? Spill.data() : Inl; }
  OctEdge *mutEnd() { return mutBegin() + Sz; }
  OctEdge *lowerBound(uint32_t Dst);

  uint32_t Sz = 0;
  OctEdge Inl[InlineCap];
  std::vector<OctEdge> Spill; ///< Non-empty iff spilled; then holds all Sz.
};

/// Split-normal-form octagon over a fixed number of variables.  Signed
/// vertex 2i stands for +vi and 2i+1 for −vi (same indexing as `Oct`);
/// the conceptual matrix entry M[i][j] bounds x_j − x_i ≤ c.  Unary[k]
/// holds M[bar(k)][k] (the ±2v channel) and Adj[i] the binary rows, with
/// the coherence mirror M[bar(j)][bar(i)] always materialized so row
/// iteration never needs a transpose.
class SplitOct {
public:
  explicit SplitOct(uint32_t NumVars = 0);

  static SplitOct top(uint32_t NumVars) { return SplitOct(NumVars); }
  static SplitOct bottom(uint32_t NumVars);

  uint32_t numVars() const { return N; }
  bool isBottom() const { return Empty; }

  bool operator==(const SplitOct &O) const;
  bool operator!=(const SplitOct &O) const { return !(*this == O); }

  bool leq(const SplitOct &O) const;
  SplitOct join(const SplitOct &O) const;
  SplitOct meet(const SplitOct &O) const;
  /// Widening with restabilization: when no constraint of *this is
  /// dropped the widened value IS *this (already closed) and the
  /// re-closure is skipped — the steady state once a loop stabilizes.
  SplitOct widen(const SplitOct &O) const;
  SplitOct narrow(const SplitOct &O) const;

  SplitOct forget(uint32_t V) const;
  SplitOct assignInterval(uint32_t V, const Interval &Itv) const;
  SplitOct assignVarPlusConst(uint32_t V, uint32_t W, int64_t C) const;

  /// Adds (PosV ? v : −v) + (PosW ? w : −w) ≤ C and re-closes
  /// *incrementally* from the one new edge (no-op when the constraint is
  /// already entailed — the closed form makes entailment a lookup).
  SplitOct addSumConstraint(uint32_t V, bool PosV, uint32_t W, bool PosW,
                            int64_t C) const;
  SplitOct addUpperBound(uint32_t V, int64_t C) const;
  SplitOct addLowerBound(uint32_t V, int64_t C) const;
  SplitOct addDiffConstraint(uint32_t V, uint32_t W, int64_t C) const;

  Interval project(uint32_t V) const;
  Interval projectDiff(uint32_t V, uint32_t W) const;
  Interval projectSum(uint32_t V, uint32_t W) const;

  std::string str() const;

  /// Heap + object bytes, including the unary array and every spilled
  /// adjacency list.  Empty (bottom) octagons release their storage, so
  /// they account a near-constant footprint (the dense backend matches
  /// this: its matrix is freed on infeasibility).
  uint64_t memoryBytes() const;

  /// Number of stored directed binary edges (mirrors counted); tests and
  /// benchmarks use it to assert sparsity.
  uint32_t numBinaryEdges() const;

private:
  static uint32_t bar(uint32_t I) { return I ^ 1; }
  uint32_t dim() const { return 2 * N; }

  /// Conceptual matrix read: 0 on the diagonal, the unary slot for
  /// J == bar(I), the adjacency list otherwise; bound::PosInf = absent.
  int64_t entry(uint32_t I, uint32_t J) const;

  /// Unconditional min-store without closure bookkeeping (bulk builds:
  /// meet/narrow seeds).  Keeps the coherence mirror in sync.
  void rawMin(uint32_t I, uint32_t J, int64_t W);

  /// Min-store that records newly tightened entries on the closure
  /// worklist and fires the unary tighten/strengthen consequences.
  /// Returns true if the stored bound strictly decreased.
  bool updateEntry(uint32_t I, uint32_t J, int64_t W,
                   oct_detail::CloseScratch &S);

  /// Integer tightening + strengthening candidates after Unary[U]
  /// decreased (also detects per-variable infeasibility).
  void onUnaryTightened(uint32_t U, oct_detail::CloseScratch &S);

  void push(oct_detail::CloseScratch &S, uint32_t I, uint32_t J);

  /// Chaotic-iteration closure: relaxes paths through every queued entry
  /// (ins(I) × outs(J) one-hop extensions), firing tighten/strengthen on
  /// unary changes, until the queue drains or infeasibility is found.
  /// Monotone rule application converges to the unique tight closure, so
  /// any seed that fires every rule instance at least once yields the
  /// same canonical form as the dense fixpoint sweep.
  void drain(oct_detail::CloseScratch &S);

  /// Full closure: seeds the queue with every present entry and every
  /// unary consequence (meet/narrow/widen-after-drop paths).  The
  /// incremental path (addSumConstraint) seeds with just the new edge.
  void closeFromScratch();

  void makeEmpty();

  uint32_t N = 0;
  bool Empty = false;
  std::vector<int64_t> Unary;     ///< 2N slots; Unary[k] = M[bar(k)][k].
  std::vector<OctEdgeList> Adj;   ///< 2N rows of binary edges.
};

} // namespace spa

#endif // SPA_OCT_SPLITOCT_H
