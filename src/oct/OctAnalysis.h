//===- OctAnalysis.h - Packed relational (octagon) analyzers ---------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The packed relational analysis of Section 4 instantiated with octagons
/// (Table 3's Octagon_vanilla / Octagon_base / Octagon_sparse).  Abstract
/// locations are variable packs (Ŝ = Packs → Oct); definition and use
/// sets are pack sets; the sparse machinery (pre-analysis, SSA dependency
/// construction, bypass, BDD storage) is reused verbatim over pack ids.
///
/// Pointer and function-pointer reasoning is delegated to the
/// flow-insensitive pre-analysis (which Table 2's analyzers also use for
/// the callgraph): loads and stores go through the pre-analysis points-to
/// sets and degrade to interval updates on the touched singleton packs,
/// matching the paper's setup where non-numerical values are "handled in
/// the same way as the interval analysis".
///
//===----------------------------------------------------------------------===//

#ifndef SPA_OCT_OCTANALYSIS_H
#define SPA_OCT_OCTANALYSIS_H

#include "core/Analyzer.h"
#include "oct/OctBackend.h"
#include "oct/Packing.h"
#include "support/FlatMap.h"

#include <optional>

namespace spa {

/// Abstract state of the relational analysis: packs to octagons.
/// Missing entries are bottom for joins; transfers treat them as ⊤ (the
/// same non-strictness the interval engine has for constant effects).
/// Values are OctVal — the representation (dense DBM or sparse split
/// form) is uniform per run, chosen by OctOptions::Backend.
using OctState = FlatMap<PackId, OctVal>;

struct OctOptions {
  EngineKind Engine = EngineKind::Sparse;
  /// Octagon value representation.  Split (the sparse split-normal-form
  /// graph with incremental closure) is the default; Dbm is the dense
  /// oracle the equivalence suite compares against.  Results are
  /// bit-identical either way.
  OctBackendKind Backend = OctBackendKind::Split;
  DepOptions Dep;
  double TimeLimitSec = 0;
  unsigned WideningDelay = 4;
  /// Hard iteration cut: after this many changing arrivals an entry jumps
  /// straight to ⊤ (octagon widening through closure needs a backstop).
  unsigned HardLimitFactor = 8;
  unsigned MaxPackSize = 10;
  /// Resource-governance limits; same cooperative semantics as
  /// AnalyzerOptions::Budget (docs/ROBUSTNESS.md).
  BudgetLimits Budget;
  /// Degradation ladder tier 2: when the octagon fixpoint degrades, also
  /// run the (cheaper) interval analyzer with a fresh budget of the same
  /// limits, so consumers keep a flow-sensitive non-relational result
  /// (OctRun::Fallback).  Meeting two over-approximations is sound.
  bool IntervalFallback = true;
};

struct OctDenseResult {
  std::vector<OctState> Post;
  bool TimedOut = false;
  /// The budget tripped; affected points had every pack bound to ⊤
  /// (missing entries read as ⊥ downstream, so they must be filled).
  bool Degraded = false;
  uint64_t Visits = 0;
  uint64_t StateEntries = 0;
  double Seconds = 0;
};

struct OctSparseResult {
  std::vector<OctState> In, Out;
  bool TimedOut = false;
  /// The budget tripped; affected nodes had their def/use packs bound to
  /// ⊤ in Out/In, keeping both buffers over-approximate.
  bool Degraded = false;
  uint64_t Visits = 0;
  uint64_t StateEntries = 0;
  double Seconds = 0;
};

/// Everything one octagon-analyzer run produces.
struct OctRun {
  PreAnalysisResult Pre;
  Packing Packs;
  DefUseInfo DU; ///< Pack-space def/use ("locations" are pack ids).
  std::optional<OctDenseResult> Dense;
  std::optional<SparseGraph> Graph;
  std::optional<OctSparseResult> Sparse;
  /// Interval-analyzer fallback run, present when the octagon run
  /// degraded and OctOptions::IntervalFallback was set.
  std::optional<AnalysisRun> Fallback;

  double PreSeconds = 0;
  double DefUseSeconds = 0;
  double depSeconds() const;
  double fixSeconds() const;
  double totalSeconds() const { return depSeconds() + fixSeconds(); }
  bool timedOut() const;
  /// Any phase fell back to the degradation ladder (still sound, coarser).
  bool degraded() const;

  /// Interval of location \p L at point \p P as the analysis sees it
  /// (projection from L's singleton pack; dense engines only).
  Interval denseIntervalAt(PointId P, LocId L) const;

  /// Per-point cost ledger of the octagon fixpoint (not the interval
  /// fallback's — that one lives in Fallback->Ledger).  Null with
  /// -DSPA_OBS=OFF.
  std::shared_ptr<obs::Ledger> Ledger = nullptr;
};

OctRun runOctAnalysis(const Program &Prog, const OctOptions &Opts);

/// Pack-space def/use sets (exposed for tests).
DefUseInfo computeOctDefUse(const Program &Prog, const PreAnalysisResult &Pre,
                            const Packing &Packs);

} // namespace spa

#endif // SPA_OCT_OCTANALYSIS_H
