//===- Packing.cpp - Variable packs for the relational analysis -------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "oct/Packing.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <numeric>

using namespace spa;

int Packing::indexIn(PackId P, LocId L) const {
  const auto &V = Packs[P.value()];
  auto It = std::lower_bound(V.begin(), V.end(), L);
  if (It != V.end() && *It == L)
    return static_cast<int>(It - V.begin());
  return -1;
}

double Packing::avgGroupSize() const {
  uint64_t Total = 0;
  uint32_t Count = 0;
  for (const auto &P : Packs) {
    if (P.size() < 2)
      continue;
    Total += P.size();
    ++Count;
  }
  return Count ? static_cast<double>(Total) / Count : 0;
}

namespace {

/// Size-capped union-find over locations.
class Grouper {
public:
  Grouper(size_t N, unsigned MaxSize) : Parent(N), Size(N, 1),
                                        MaxSize(MaxSize) {
    std::iota(Parent.begin(), Parent.end(), 0);
  }

  uint32_t find(uint32_t X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }

  /// Unions the groups of \p A and \p B unless the result would exceed
  /// the cap (the paper's pack splitting).
  void unite(uint32_t A, uint32_t B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return;
    if (Size[A] + Size[B] > MaxSize)
      return;
    if (Size[A] < Size[B])
      std::swap(A, B);
    Parent[B] = A;
    Size[A] += Size[B];
  }

private:
  std::vector<uint32_t> Parent;
  std::vector<uint32_t> Size;
  unsigned MaxSize;
};

/// Scalar variables appearing in \p E (Var nodes only: deref and
/// address-of operands relate through the pointer abstraction, not the
/// relational domain).
void collectScalarVars(const IExpr &E, std::vector<LocId> &Out) {
  switch (E.Kind) {
  case IExprKind::Var:
    Out.push_back(E.Loc);
    return;
  case IExprKind::Binary:
    collectScalarVars(*E.Lhs, Out);
    collectScalarVars(*E.Rhs, Out);
    return;
  default:
    return;
  }
}

} // namespace

Packing spa::computePacking(const Program &Prog,
                            const PreAnalysisResult &Pre,
                            unsigned MaxPackSize) {
  size_t NL = Prog.numLocs();
  Grouper G(NL, MaxPackSize);

  auto Relatable = [&](LocId L) { return !Prog.loc(L).isSummary(); };
  auto UniteAll = [&](const std::vector<LocId> &Vars) {
    for (size_t I = 1; I < Vars.size(); ++I)
      if (Relatable(Vars[0]) && Relatable(Vars[I]))
        G.unite(Vars[0].value(), Vars[I].value());
  };

  for (uint32_t P = 0; P < Prog.numPoints(); ++P) {
    const Command &Cmd = Prog.point(PointId(P)).Cmd;
    std::vector<LocId> Vars;
    switch (Cmd.Kind) {
    case CmdKind::Assign:
    case CmdKind::RetStmt:
      Vars.push_back(Cmd.Target);
      collectScalarVars(*Cmd.E, Vars);
      UniteAll(Vars);
      break;
    case CmdKind::Assume:
      collectScalarVars(*Cmd.Cnd->Lhs, Vars);
      collectScalarVars(*Cmd.Cnd->Rhs, Vars);
      UniteAll(Vars);
      break;
    case CmdKind::Call:
      // Group actuals with formals, per callee and per position.
      for (FuncId Callee : Pre.CG.callees(PointId(P))) {
        const FunctionInfo &F = Prog.function(Callee);
        size_t NArgs = std::min(F.Params.size(), Cmd.Args.size());
        for (size_t I = 0; I < NArgs; ++I) {
          std::vector<LocId> ArgVars{F.Params[I]};
          collectScalarVars(*Cmd.Args[I], ArgVars);
          UniteAll(ArgVars);
        }
      }
      break;
    case CmdKind::Return:
      // Group the call target with the callee return slots.
      if (Cmd.Target.isValid()) {
        Vars.push_back(Cmd.Target);
        for (FuncId Callee : Pre.CG.callees(Cmd.Pair))
          Vars.push_back(Prog.function(Callee).RetSlot);
        UniteAll(Vars);
      }
      break;
    default:
      break;
    }
  }

  Packing Result;
  Result.Singleton.resize(NL);
  Result.Of.resize(NL);

  // Multi-member groups first.
  std::vector<std::vector<LocId>> Groups(NL);
  for (uint32_t L = 0; L < NL; ++L)
    Groups[G.find(L)].push_back(LocId(L));
  for (auto &Members : Groups) {
    if (Members.size() < 2)
      continue;
    PackId Id(static_cast<uint32_t>(Result.Packs.size()));
    std::sort(Members.begin(), Members.end());
    for (LocId L : Members)
      Result.Of[L.value()].push_back(Id);
    Result.Packs.push_back(std::move(Members));
    ++Result.NumGroups;
  }
  // Singleton packs for every location (Section 4.2's assumption).
  for (uint32_t L = 0; L < NL; ++L) {
    PackId Id(static_cast<uint32_t>(Result.Packs.size()));
    Result.Packs.push_back({LocId(L)});
    Result.Singleton[L] = Id;
    Result.Of[L].push_back(Id);
  }
  // Pack-size distribution (docs/OBSERVABILITY.md): the split backend's
  // payoff scales with pack arity, so the histogram is the first thing
  // to read when oct.split.* counters look off.
  for (const auto &Members : Result.Packs)
    SPA_OBS_HIST("oct.pack.size", static_cast<double>(Members.size()));
  return Result;
}
