//===- SplitOct.cpp - Sparse split-normal-form octagon domain -------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "oct/SplitOct.h"

#include "oct/Octagon.h" // oct_detail closure ticks (shared with the DBM).
#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace spa;

namespace {

/// Floor division by 2 that is exact for negative odd bounds (identical
/// to the dense backend's tightening helper — the two must agree bit for
/// bit for the canonical forms to coincide).
int64_t halfFloor(int64_t B) {
  if (B == bound::PosInf || B == bound::NegInf)
    return B;
  return B >= 0 ? B / 2 : (B - 1) / 2;
}

} // namespace

namespace spa::oct_detail {

/// Per-thread closure scratch.  One incremental closure on a pack-sized
/// octagon otherwise pays several heap allocations (worklist, in-queue
/// bitmap, drain snapshot buffers) that dwarf the propagation itself at
/// the singleton/pair arities packing produces most of; reusing one
/// arena per thread makes the steady-state incremental path
/// allocation-free.  The in-queue map is epoch-stamped so reuse needs no
/// clearing.  Closures never nest (no operation re-enters the domain),
/// so a single thread_local instance suffices.
struct CloseScratch {
  std::vector<uint32_t> WL;    ///< Packed (I * 2N + J) entry keys.
  std::vector<uint32_t> Stamp; ///< In queue <=> Stamp[key] == Epoch.
  uint32_t Epoch = 0;
  std::vector<std::pair<uint32_t, int64_t>> Ins, Outs;

  /// Readies the scratch for a closure over a Dim² key space.
  void begin(uint32_t Dim) {
    WL.clear();
    size_t Keys = static_cast<size_t>(Dim) * Dim;
    if (Stamp.size() < Keys)
      Stamp.resize(Keys, 0);
    if (++Epoch == 0) { // Wrapped: stale stamps could alias; restart.
      std::fill(Stamp.begin(), Stamp.end(), 0u);
      Epoch = 1;
    }
  }
  bool inQueue(uint32_t Key) const { return Stamp[Key] == Epoch; }
  void markQueued(uint32_t Key) { Stamp[Key] = Epoch; }
  void unqueue(uint32_t Key) { Stamp[Key] = Epoch - 1; }
};

/// The arena: per-thread, lazily grown to the largest pack seen.
CloseScratch &closeScratch() {
  thread_local CloseScratch S;
  return S;
}

} // namespace spa::oct_detail

using spa::oct_detail::CloseScratch;

//===----------------------------------------------------------------------===//
// OctEdgeList
//===----------------------------------------------------------------------===//

OctEdge *OctEdgeList::lowerBound(uint32_t Dst) {
  OctEdge *B = mutBegin(), *E = B + Sz;
  // Lists are tiny (at most 2N - 2 entries, N capped at pack size);
  // a branchy linear scan beats binary search at these sizes.
  while (B != E && B->Dst < Dst)
    ++B;
  return B;
}

void OctEdgeList::insert(uint32_t Dst, int64_t W) {
  if (!spilled() && Sz == InlineCap)
    Spill.assign(Inl, Inl + Sz);
  if (spilled()) {
    auto It = std::lower_bound(
        Spill.begin(), Spill.end(), Dst,
        [](const OctEdge &E, uint32_t D) { return E.Dst < D; });
    assert((It == Spill.end() || It->Dst != Dst) && "duplicate edge");
    Spill.insert(It, OctEdge{Dst, W});
    ++Sz;
    return;
  }
  OctEdge *P = lowerBound(Dst);
  assert((P == Inl + Sz || P->Dst != Dst) && "duplicate edge");
  for (OctEdge *Q = Inl + Sz; Q != P; --Q)
    *Q = *(Q - 1);
  *P = OctEdge{Dst, W};
  ++Sz;
}

bool OctEdgeList::erase(uint32_t Dst) {
  if (spilled()) {
    auto It = std::lower_bound(
        Spill.begin(), Spill.end(), Dst,
        [](const OctEdge &E, uint32_t D) { return E.Dst < D; });
    if (It == Spill.end() || It->Dst != Dst)
      return false;
    Spill.erase(It);
    --Sz;
    if (Sz == 0)
      Spill.clear(); // Back to (empty) inline mode.
    return true;
  }
  OctEdge *P = lowerBound(Dst);
  if (P == Inl + Sz || P->Dst != Dst)
    return false;
  for (; P + 1 != Inl + Sz; ++P)
    *P = *(P + 1);
  --Sz;
  return true;
}

//===----------------------------------------------------------------------===//
// Construction, equality, order
//===----------------------------------------------------------------------===//

SplitOct::SplitOct(uint32_t NumVars) : N(NumVars) {
  Unary.assign(2ull * N, bound::PosInf);
  Adj.assign(2ull * N, OctEdgeList());
}

SplitOct SplitOct::bottom(uint32_t NumVars) {
  SplitOct O(0);
  O.N = NumVars;
  O.Empty = true;
  return O;
}

void SplitOct::makeEmpty() {
  Empty = true;
  // Bottom carries no constraints; release the storage so --mem-limit
  // accounting charges infeasible states their true (near-zero) size.
  std::vector<int64_t>().swap(Unary);
  std::vector<OctEdgeList>().swap(Adj);
}

int64_t SplitOct::entry(uint32_t I, uint32_t J) const {
  if (I == J)
    return 0;
  if (J == bar(I))
    return Unary[J];
  const int64_t *W = Adj[I].find(J);
  return W ? *W : bound::PosInf;
}

bool SplitOct::operator==(const SplitOct &O) const {
  assert(N == O.N && "octagon arity mismatch");
  if (Empty || O.Empty)
    return Empty == O.Empty;
  return Unary == O.Unary && Adj == O.Adj;
}

bool SplitOct::leq(const SplitOct &O) const {
  assert(N == O.N && "octagon arity mismatch");
  if (Empty)
    return true;
  if (O.Empty)
    return false;
  uint32_t D = dim();
  for (uint32_t I = 0; I < D; ++I)
    if (O.Unary[I] != bound::PosInf && Unary[I] > O.Unary[I])
      return false;
  for (uint32_t I = 0; I < D; ++I)
    for (const OctEdge &E : O.Adj[I])
      if (entry(I, E.Dst) > E.W)
        return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Closure machinery
//===----------------------------------------------------------------------===//

void SplitOct::push(CloseScratch &S, uint32_t I, uint32_t J) {
  uint32_t Key = I * dim() + J;
  if (S.inQueue(Key))
    return;
  S.markQueued(Key);
  S.WL.push_back(Key);
}

void SplitOct::rawMin(uint32_t I, uint32_t J, int64_t W) {
  if (I == J) {
    if (W < 0)
      makeEmpty();
    return;
  }
  if (J == bar(I)) {
    Unary[J] = std::min(Unary[J], W);
    return;
  }
  if (int64_t *Slot = Adj[I].find(J))
    *Slot = std::min(*Slot, W);
  else
    Adj[I].insert(J, W);
  uint32_t MI = bar(J), MJ = bar(I);
  if (int64_t *Slot = Adj[MI].find(MJ))
    *Slot = std::min(*Slot, W);
  else
    Adj[MI].insert(MJ, W);
}

bool SplitOct::updateEntry(uint32_t I, uint32_t J, int64_t W,
                           CloseScratch &S) {
  if (I == J) {
    if (W < 0)
      makeEmpty();
    return false;
  }
  if (J == bar(I)) {
    if (W >= Unary[J])
      return false;
    Unary[J] = W;
    push(S, I, J);
    onUnaryTightened(J, S);
    return true;
  }
  int64_t *Slot = Adj[I].find(J);
  if (Slot) {
    if (W >= *Slot)
      return false;
    *Slot = W;
  } else {
    Adj[I].insert(J, W);
  }
  // Coherence mirror M[bar(J)][bar(I)] — kept materialized and equal.
  uint32_t MI = bar(J), MJ = bar(I);
  if (int64_t *MSlot = Adj[MI].find(MJ))
    *MSlot = std::min(*MSlot, W);
  else
    Adj[MI].insert(MJ, W);
  push(S, I, J);
  return true;
}

void SplitOct::onUnaryTightened(uint32_t U, CloseScratch &S) {
  // Integer tightening: ±2v ≤ c implies ±2v ≤ 2⌊c/2⌋.
  if (Unary[U] != bound::NegInf) {
    int64_t T = 2 * halfFloor(Unary[U]);
    if (T < Unary[U]) {
      Unary[U] = T;
      push(S, bar(U), U);
    }
  }
  int64_t HU = halfFloor(Unary[U]);
  // Strengthening onto the diagonal: ⌊U_u/2⌋ + ⌊U_ū/2⌋ < 0 means the
  // variable's own range is empty (the dense backend reaches the same
  // conclusion through a negative diagonal after strengthening).
  if (Unary[bar(U)] != bound::PosInf &&
      bound::add(HU, halfFloor(Unary[bar(U)])) < 0) {
    makeEmpty();
    return;
  }
  // Strengthening: entry(bar(U), v) ≤ ⌊U_u/2⌋ + ⌊U_v/2⌋.  The mirror
  // store inside updateEntry covers the instances reading Unary[U] on
  // the right-hand side.
  uint32_t D = dim();
  for (uint32_t V = 0; V < D; ++V) {
    if (V == U || V == bar(U) || Unary[V] == bound::PosInf)
      continue;
    int64_t Cand = bound::add(HU, halfFloor(Unary[V]));
    updateEntry(bar(U), V, Cand, S);
    if (Empty)
      return;
  }
}

void SplitOct::drain(CloseScratch &S) {
  uint64_t Relaxed = 0, Tightened = 0;
  uint32_t D = dim();
  std::vector<std::pair<uint32_t, int64_t>> &Ins = S.Ins, &Outs = S.Outs;
  size_t Head = 0;
  while (Head < S.WL.size() && !Empty) {
    uint32_t Key = S.WL[Head++];
    S.unqueue(Key);
    uint32_t I = Key / D, J = Key % D;
    int64_t W = entry(I, J);
    if (W == bound::PosInf)
      continue;
    // Snapshot predecessors of I and successors of J: the one-hop path
    // extensions through the changed edge.  In-edges of I are read off
    // row bar(I) via coherence (M[k][I] = M[bar(I)][bar(k)]), so no
    // transposed index is ever needed.
    Ins.clear();
    Outs.clear();
    if (Unary[I] != bound::PosInf)
      Ins.emplace_back(bar(I), Unary[I]);
    for (const OctEdge &E : Adj[bar(I)])
      Ins.emplace_back(bar(E.Dst), E.W);
    Ins.emplace_back(I, 0);
    if (Unary[bar(J)] != bound::PosInf)
      Outs.emplace_back(bar(J), Unary[bar(J)]);
    for (const OctEdge &E : Adj[J])
      Outs.emplace_back(E.Dst, E.W);
    Outs.emplace_back(J, 0);
    for (const auto &[K, WK] : Ins) {
      for (const auto &[L, WL2] : Outs) {
        ++Relaxed;
        int64_t Cand = bound::add(bound::add(WK, W), WL2);
        if (K == L) {
          if (Cand < 0) {
            makeEmpty();
            goto done;
          }
          continue;
        }
        if (updateEntry(K, L, Cand, S))
          ++Tightened;
        if (Empty)
          goto done;
      }
    }
  }
done:
  SPA_OBS_COUNT("oct.split.edges.relaxed", Relaxed);
  SPA_OBS_COUNT("oct.split.edges.tightened", Tightened);
}

void SplitOct::closeFromScratch() {
  if (Empty)
    return;
  uint32_t D = dim();
  if (D == 0)
    return;
  SPA_OBS_COUNT("oct.closures", 1);
  SPA_OBS_COUNT("oct.split.close.full", 1);
  oct_detail::bumpClosureTick();
  CloseScratch &S = oct_detail::closeScratch();
  S.begin(D);
  // Seed every present entry (path-rule instances) ...
  for (uint32_t I = 0; I < D; ++I) {
    if (Unary[I] != bound::PosInf)
      push(S, bar(I), I);
    for (const OctEdge &E : Adj[I])
      push(S, I, E.Dst);
  }
  // ... then every tighten/strengthen instance over the current unaries
  // (a monotone rule system: firing each instance at least once and
  // re-firing on input changes reaches the unique least fixpoint, the
  // same canonical form as the dense sweep).
  for (uint32_t U = 0; U < D && !Empty; ++U)
    if (Unary[U] != bound::PosInf)
      onUnaryTightened(U, S);
  if (!Empty)
    drain(S);
}

//===----------------------------------------------------------------------===//
// Lattice operations
//===----------------------------------------------------------------------===//

SplitOct SplitOct::join(const SplitOct &O) const {
  assert(N == O.N && "octagon arity mismatch");
  if (Empty)
    return O;
  if (O.Empty)
    return *this;
  SplitOct R(N);
  uint32_t D = dim();
  for (uint32_t I = 0; I < D; ++I)
    if (Unary[I] != bound::PosInf && O.Unary[I] != bound::PosInf)
      R.Unary[I] = std::max(Unary[I], O.Unary[I]);
  // Entrywise max = sorted-list intersection keeping the larger weight;
  // the max of tightly closed forms is tightly closed, so no re-closure
  // (same theorem the dense join relies on).
  for (uint32_t I = 0; I < D; ++I) {
    const OctEdge *A = Adj[I].begin(), *AE = Adj[I].end();
    const OctEdge *B = O.Adj[I].begin(), *BE = O.Adj[I].end();
    while (A != AE && B != BE) {
      if (A->Dst < B->Dst) {
        ++A;
      } else if (B->Dst < A->Dst) {
        ++B;
      } else {
        R.Adj[I].insert(A->Dst, std::max(A->W, B->W));
        ++A;
        ++B;
      }
    }
  }
  return R;
}

SplitOct SplitOct::meet(const SplitOct &O) const {
  assert(N == O.N && "octagon arity mismatch");
  if (Empty || O.Empty)
    return bottom(N);
  SplitOct R = *this;
  uint32_t D = dim();
  for (uint32_t I = 0; I < D; ++I)
    if (O.Unary[I] < R.Unary[I])
      R.Unary[I] = O.Unary[I];
  for (uint32_t I = 0; I < D && !R.Empty; ++I)
    for (const OctEdge &E : O.Adj[I])
      R.rawMin(I, E.Dst, E.W);
  R.closeFromScratch();
  return R;
}

SplitOct SplitOct::widen(const SplitOct &O) const {
  assert(N == O.N && "octagon arity mismatch");
  if (Empty)
    return O;
  if (O.Empty)
    return *this;
  // Keep our constraints the newcomer still satisfies, drop the rest
  // (identical index set to the dense formula: cells where we are ⊤ stay
  // ⊤ under it, so only our stored entries need inspection).
  SplitOct R(N);
  bool Dropped = false;
  uint32_t D = dim();
  for (uint32_t I = 0; I < D; ++I) {
    if (Unary[I] != bound::PosInf) {
      if (O.Unary[I] != bound::PosInf && O.Unary[I] <= Unary[I])
        R.Unary[I] = Unary[I];
      else
        Dropped = true;
    }
    for (const OctEdge &E : Adj[I]) {
      int64_t OE = O.entry(I, E.Dst);
      if (OE != bound::PosInf && OE <= E.W)
        R.Adj[I].insert(E.Dst, E.W);
      else
        Dropped = true;
    }
  }
  if (!Dropped) {
    // widen_restabilize: nothing dropped means the widened value is
    // exactly *this, which is already closed — the re-closure the dense
    // backend runs would be an O(n³) no-op.  This is the steady state of
    // every converged loop head.
    SPA_OBS_COUNT("oct.split.widen.restab_skips", 1);
    return *this;
  }
  // Dropped entries may be re-derivable from the kept ones (the kept
  // entries themselves are stable: every derivation over a subset of the
  // old closed matrix is bounded below by the old closed values).
  SPA_OBS_COUNT("oct.split.widen.restabs", 1);
  R.closeFromScratch();
  return R;
}

SplitOct SplitOct::narrow(const SplitOct &O) const {
  assert(N == O.N && "octagon arity mismatch");
  if (Empty || O.Empty)
    return O;
  SplitOct R = *this;
  uint32_t D = dim();
  for (uint32_t I = 0; I < D; ++I)
    if (R.Unary[I] == bound::PosInf)
      R.Unary[I] = O.Unary[I];
  // Refine only where we are ⊤ (both operands are mirror-consistent, so
  // inserting O's stored edges at our holes preserves the invariant).
  for (uint32_t I = 0; I < D; ++I)
    for (const OctEdge &E : O.Adj[I])
      if (!R.Adj[I].find(E.Dst))
        R.Adj[I].insert(E.Dst, E.W);
  R.closeFromScratch();
  return R;
}

//===----------------------------------------------------------------------===//
// Transfer-function primitives
//===----------------------------------------------------------------------===//

SplitOct SplitOct::forget(uint32_t V) const {
  assert(V < N && "variable out of range");
  if (Empty)
    return *this;
  SplitOct R = *this;
  uint32_t P = 2 * V, Q = P + 1;
  for (uint32_t X : {P, Q}) {
    for (const OctEdge &E : R.Adj[X])
      R.Adj[bar(E.Dst)].erase(bar(X)); // Drop the coherence mirror.
    R.Adj[X].clear();
  }
  R.Unary[P] = R.Unary[Q] = bound::PosInf;
  return R; // Closed before, closed after: projection of a closed form.
}

SplitOct SplitOct::addSumConstraint(uint32_t V, bool PosV, uint32_t W,
                                    bool PosW, int64_t C) const {
  assert(V < N && W < N && "variable out of range");
  if (Empty)
    return *this;
  uint32_t A = 2 * V + (PosV ? 0 : 1);
  uint32_t B = 2 * W + (PosW ? 0 : 1);
  // (sV·v) + (sW·w) ≤ C is the edge x_A − x_bar(B) ≤ C: entry (bar(B), A).
  uint32_t I = bar(B), J = A;
  SplitOct R = *this;
  if (I == J) { // v − v ≤ C: infeasible iff C < 0, vacuous otherwise.
    if (C < 0)
      R.makeEmpty();
    return R;
  }
  CloseScratch &S = oct_detail::closeScratch();
  S.begin(R.dim());
  if (!R.updateEntry(I, J, C, S)) {
    // Already entailed: the closed form answers entailment by lookup and
    // the dense backend's re-closure would change nothing.
    SPA_OBS_COUNT("oct.split.close.noop", 1);
    return R;
  }
  if (R.Empty)
    return R;
  // Incremental closure: relax only paths through the new edge and its
  // tighten/strengthen consequences instead of a full-matrix sweep.
  SPA_OBS_COUNT("oct.closures", 1);
  SPA_OBS_COUNT("oct.split.close.inc", 1);
  oct_detail::bumpClosureTick();
  R.drain(S);
  return R;
}

SplitOct SplitOct::addUpperBound(uint32_t V, int64_t C) const {
  if (C == bound::PosInf)
    return *this;
  int64_t Twice = bound::mul(C, 2);
  return addSumConstraint(V, true, V, true, Twice);
}

SplitOct SplitOct::addLowerBound(uint32_t V, int64_t C) const {
  if (C == bound::NegInf)
    return *this;
  int64_t Twice = bound::mul(C, -2);
  return addSumConstraint(V, false, V, false, Twice);
}

SplitOct SplitOct::addDiffConstraint(uint32_t V, uint32_t W, int64_t C) const {
  if (C == bound::PosInf)
    return *this;
  return addSumConstraint(V, true, W, false, C);
}

SplitOct SplitOct::assignInterval(uint32_t V, const Interval &Itv) const {
  if (Empty)
    return *this;
  if (Itv.isBot())
    return forget(V);
  SplitOct R = forget(V);
  if (Itv.hi() != bound::PosInf)
    R = R.addUpperBound(V, Itv.hi());
  if (Itv.lo() != bound::NegInf)
    R = R.addLowerBound(V, Itv.lo());
  return R;
}

SplitOct SplitOct::assignVarPlusConst(uint32_t V, uint32_t W, int64_t C) const {
  if (Empty)
    return *this;
  if (V == W) {
    // v := v + c: an exact translation; shift every bound mentioning v.
    // Row P holds M[P][j] (shrinks by c) and row Q holds M[Q][j], which
    // by coherence is the in-edge column M[j̄][P] (grows by c) — so the
    // two row sweeps cover all four dense update groups, with the
    // explicit mirrors patched alongside.
    SplitOct R = *this;
    uint32_t P = 2 * V, Q = P + 1;
    for (OctEdge &E : R.Adj[P]) {
      E.W = bound::add(E.W, -C);
      *R.Adj[bar(E.Dst)].find(Q) = E.W;
    }
    for (OctEdge &E : R.Adj[Q]) {
      E.W = bound::add(E.W, C);
      *R.Adj[bar(E.Dst)].find(P) = E.W;
    }
    if (R.Unary[P] != bound::PosInf)
      R.Unary[P] = bound::add(R.Unary[P], 2 * C);
    if (R.Unary[Q] != bound::PosInf)
      R.Unary[Q] = bound::add(R.Unary[Q], -2 * C);
    return R;
  }
  SplitOct R = forget(V);
  R = R.addDiffConstraint(V, W, C);
  R = R.addDiffConstraint(W, V, -C);
  return R;
}

//===----------------------------------------------------------------------===//
// Projections and rendering
//===----------------------------------------------------------------------===//

Interval SplitOct::project(uint32_t V) const {
  assert(V < N && "variable out of range");
  if (Empty)
    return Interval::bot();
  int64_t Up = Unary[2 * V];       // M[2v+1][2v]: 2v ≤ c.
  int64_t Down = Unary[2 * V + 1]; // M[2v][2v+1]: −2v ≤ c.
  int64_t Hi = Up == bound::PosInf ? bound::PosInf : halfFloor(Up);
  int64_t Lo = Down == bound::PosInf ? bound::NegInf : -halfFloor(Down);
  return Interval(Lo, Hi);
}

Interval SplitOct::projectDiff(uint32_t V, uint32_t W) const {
  assert(V < N && W < N && "variable out of range");
  if (Empty)
    return Interval::bot();
  if (V == W)
    return Interval::constant(0);
  int64_t Up = entry(2 * W, 2 * V);
  int64_t Down = entry(2 * V, 2 * W);
  int64_t Hi = Up == bound::PosInf ? bound::PosInf : Up;
  int64_t Lo = Down == bound::PosInf ? bound::NegInf : -Down;
  return Interval(Lo, Hi);
}

Interval SplitOct::projectSum(uint32_t V, uint32_t W) const {
  assert(V < N && W < N && "variable out of range");
  if (Empty)
    return Interval::bot();
  if (V == W) {
    Interval P = project(V);
    return P.add(P);
  }
  int64_t Up = entry(2 * W + 1, 2 * V);
  int64_t Down = entry(2 * W, 2 * V + 1);
  int64_t Hi = Up == bound::PosInf ? bound::PosInf : Up;
  int64_t Lo = Down == bound::PosInf ? bound::NegInf : -Down;
  return Interval(Lo, Hi);
}

std::string SplitOct::str() const {
  if (Empty)
    return "_|_";
  std::ostringstream OS;
  OS << "{";
  bool First = true;
  for (uint32_t V = 0; V < N; ++V) {
    Interval I = project(V);
    if (I == Interval::top())
      continue;
    if (!First)
      OS << ", ";
    First = false;
    OS << "v" << V << " in " << I.str();
  }
  for (uint32_t V = 0; V < N; ++V) {
    for (uint32_t W = V + 1; W < N; ++W) {
      int64_t D = entry(2 * W, 2 * V); // v − w ≤ D.
      if (D != bound::PosInf) {
        if (!First)
          OS << ", ";
        First = false;
        OS << "v" << V << "-v" << W << "<=" << D;
      }
    }
  }
  OS << "}";
  return OS.str();
}

uint64_t SplitOct::memoryBytes() const {
  uint64_t B = sizeof(*this);
  B += Unary.capacity() * sizeof(int64_t);
  B += Adj.capacity() * sizeof(OctEdgeList);
  for (const OctEdgeList &L : Adj)
    B += L.heapBytes();
  return B;
}

uint32_t SplitOct::numBinaryEdges() const {
  uint32_t Total = 0;
  for (const OctEdgeList &L : Adj)
    Total += L.size();
  return Total;
}
