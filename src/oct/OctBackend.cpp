//===- OctBackend.cpp - Octagon backend dispatch --------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "oct/OctBackend.h"

#include <cassert>

namespace spa {

OctVal OctVal::top(OctBackendKind K, uint32_t NumVars) {
  if (K == OctBackendKind::Dbm)
    return OctVal(Oct::top(NumVars));
  return OctVal(SplitOct::top(NumVars));
}

OctVal OctVal::bottom(OctBackendKind K, uint32_t NumVars) {
  if (K == OctBackendKind::Dbm)
    return OctVal(Oct::bottom(NumVars));
  return OctVal(SplitOct::bottom(NumVars));
}

// Unary forwarders: dispatch on the held alternative.
#define SPA_OCTVAL_DISPATCH(Expr)                                              \
  do {                                                                         \
    if (const Oct *D = std::get_if<Oct>(&V))                                   \
      return (Expr);                                                           \
    const SplitOct *D = std::get_if<SplitOct>(&V);                             \
    return (Expr);                                                             \
  } while (0)

// Unary domain ops that return a new value of the same backend.
#define SPA_OCTVAL_WRAP(Expr)                                                  \
  do {                                                                         \
    if (const Oct *D = std::get_if<Oct>(&V))                                   \
      return OctVal((Expr));                                                   \
    const SplitOct *D = std::get_if<SplitOct>(&V);                             \
    return OctVal((Expr));                                                     \
  } while (0)

// Binary lattice ops: both operands must carry the same backend (the
// engines guarantee it — every value in a run comes from the same
// OctOptions::Backend).
#define SPA_OCTVAL_BINARY(Op)                                                  \
  do {                                                                         \
    assert(backend() == O.backend() && "mixed octagon backends");              \
    if (const Oct *D = std::get_if<Oct>(&V))                                   \
      return OctVal(D->Op(*std::get_if<Oct>(&O.V)));                           \
    const SplitOct *D = std::get_if<SplitOct>(&V);                             \
    return OctVal(D->Op(*std::get_if<SplitOct>(&O.V)));                        \
  } while (0)

uint32_t OctVal::numVars() const { SPA_OCTVAL_DISPATCH(D->numVars()); }

bool OctVal::isBottom() const { SPA_OCTVAL_DISPATCH(D->isBottom()); }

bool OctVal::operator==(const OctVal &O) const {
  assert(backend() == O.backend() && "mixed octagon backends");
  if (const Oct *D = std::get_if<Oct>(&V))
    return *D == *std::get_if<Oct>(&O.V);
  return *std::get_if<SplitOct>(&V) == *std::get_if<SplitOct>(&O.V);
}

bool OctVal::leq(const OctVal &O) const {
  assert(backend() == O.backend() && "mixed octagon backends");
  if (const Oct *D = std::get_if<Oct>(&V))
    return D->leq(*std::get_if<Oct>(&O.V));
  return std::get_if<SplitOct>(&V)->leq(*std::get_if<SplitOct>(&O.V));
}

OctVal OctVal::join(const OctVal &O) const { SPA_OCTVAL_BINARY(join); }
OctVal OctVal::meet(const OctVal &O) const { SPA_OCTVAL_BINARY(meet); }
OctVal OctVal::widen(const OctVal &O) const { SPA_OCTVAL_BINARY(widen); }
OctVal OctVal::narrow(const OctVal &O) const { SPA_OCTVAL_BINARY(narrow); }

OctVal OctVal::forget(uint32_t Var) const { SPA_OCTVAL_WRAP(D->forget(Var)); }

OctVal OctVal::assignInterval(uint32_t Var, const Interval &Itv) const {
  SPA_OCTVAL_WRAP(D->assignInterval(Var, Itv));
}

OctVal OctVal::assignVarPlusConst(uint32_t Var, uint32_t W, int64_t C) const {
  SPA_OCTVAL_WRAP(D->assignVarPlusConst(Var, W, C));
}

OctVal OctVal::addSumConstraint(uint32_t Var, bool PosV, uint32_t W, bool PosW,
                                int64_t C) const {
  SPA_OCTVAL_WRAP(D->addSumConstraint(Var, PosV, W, PosW, C));
}

OctVal OctVal::addUpperBound(uint32_t Var, int64_t C) const {
  SPA_OCTVAL_WRAP(D->addUpperBound(Var, C));
}

OctVal OctVal::addLowerBound(uint32_t Var, int64_t C) const {
  SPA_OCTVAL_WRAP(D->addLowerBound(Var, C));
}

OctVal OctVal::addDiffConstraint(uint32_t Var, uint32_t W, int64_t C) const {
  SPA_OCTVAL_WRAP(D->addDiffConstraint(Var, W, C));
}

Interval OctVal::project(uint32_t Var) const {
  SPA_OCTVAL_DISPATCH(D->project(Var));
}

Interval OctVal::projectDiff(uint32_t Var, uint32_t W) const {
  SPA_OCTVAL_DISPATCH(D->projectDiff(Var, W));
}

Interval OctVal::projectSum(uint32_t Var, uint32_t W) const {
  SPA_OCTVAL_DISPATCH(D->projectSum(Var, W));
}

std::string OctVal::str() const { SPA_OCTVAL_DISPATCH(D->str()); }

uint64_t OctVal::memoryBytes() const {
  // The variant header replaces the member's own sizeof(*this) share, so
  // charge heap bytes plus our footprint, not both object headers.
  if (const Oct *D = std::get_if<Oct>(&V))
    return D->memoryBytes() - sizeof(Oct) + sizeof(*this);
  const SplitOct *D = std::get_if<SplitOct>(&V);
  return D->memoryBytes() - sizeof(SplitOct) + sizeof(*this);
}

#undef SPA_OCTVAL_DISPATCH
#undef SPA_OCTVAL_WRAP
#undef SPA_OCTVAL_BINARY

bool parseOctBackend(const std::string &Name, OctBackendKind &Out) {
  if (Name == "dbm") {
    Out = OctBackendKind::Dbm;
    return true;
  }
  if (Name == "split") {
    Out = OctBackendKind::Split;
    return true;
  }
  return false;
}

const char *octBackendName(OctBackendKind K) {
  return K == OctBackendKind::Dbm ? "dbm" : "split";
}

} // namespace spa
