//===- Packing.h - Variable packs for the relational analysis --------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Variable packing for the packed relational analysis (Section 4).  The
/// strategy mirrors the paper's (and Miné's) syntactic heuristic: locations
/// that appear together in one statement (assignment, condition) are
/// grouped, actual arguments are grouped with formal parameters and return
/// slots with call targets, and packs exceeding the size threshold stop
/// growing ("large packs whose sizes exceed a threshold (10) were split").
/// Every location additionally gets a singleton pack — the assumption
/// Section 4.2 makes so interval projection is always available.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_OCT_PACKING_H
#define SPA_OCT_PACKING_H

#include "core/PreAnalysis.h"
#include "ir/Program.h"

#include <vector>

namespace spa {

/// The pack table: abstract locations of the relational analysis.
class Packing {
public:
  uint32_t numPacks() const { return static_cast<uint32_t>(Packs.size()); }

  /// Members of \p P, sorted.
  const std::vector<LocId> &vars(PackId P) const {
    return Packs[P.value()];
  }

  /// The singleton pack of \p L.
  PackId singleton(LocId L) const { return Singleton[L.value()]; }

  /// All packs containing \p L (the paper's pack(x)); includes the
  /// singleton.
  const std::vector<PackId> &packsOf(LocId L) const {
    return Of[L.value()];
  }

  /// Index of \p L inside pack \p P, or -1 when absent.
  int indexIn(PackId P, LocId L) const;

  /// Average size of the non-singleton packs (the paper reports 5–7).
  double avgGroupSize() const;
  /// Number of non-singleton packs.
  uint32_t numGroups() const { return NumGroups; }

  // Populated by computePacking.
  std::vector<std::vector<LocId>> Packs;
  std::vector<PackId> Singleton;
  std::vector<std::vector<PackId>> Of;
  uint32_t NumGroups = 0;
};

/// Computes the syntactic packing for \p Prog (callgraph from the
/// pre-analysis links actuals to formals of resolved callees).
Packing computePacking(const Program &Prog, const PreAnalysisResult &Pre,
                       unsigned MaxPackSize = 10);

} // namespace spa

#endif // SPA_OCT_PACKING_H
