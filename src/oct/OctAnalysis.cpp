//===- OctAnalysis.cpp - Packed relational (octagon) analyzers -------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "oct/OctAnalysis.h"

#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Fault.h"
#include "support/Resource.h"
#include "support/WorkList.h"

#include <algorithm>
#include <cassert>

using namespace spa;

namespace {

LocId packAsLoc(PackId P) { return LocId(P.value()); }
PackId locAsPack(LocId L) { return PackId(L.value()); }

//===----------------------------------------------------------------------===//
// Pack-space def/use sets
//===----------------------------------------------------------------------===//

class OctDefUseBuilder {
public:
  OctDefUseBuilder(const Program &Prog, const PreAnalysisResult &Pre,
                   const Packing &Packs)
      : Prog(Prog), Pre(Pre), Packs(Packs) {}

  DefUseInfo run() {
    DefUseInfo Info;
    size_t N = Prog.numPoints();
    Info.Defs.resize(N);
    Info.Uses.resize(N);
    for (uint32_t P = 0; P < N; ++P)
      collect(PointId(P), Info.Defs[P], Info.Uses[P]);
    for (uint32_t P = 0; P < N; ++P) {
      sortUnique(Info.Defs[P]);
      sortUnique(Info.Uses[P]);
    }
    foldInterproceduralSummaries(Prog, Pre.CG, Info);
    return Info;
  }

private:
  static void sortUnique(std::vector<LocId> &V) {
    std::sort(V.begin(), V.end());
    V.erase(std::unique(V.begin(), V.end()), V.end());
  }

  void addPacksOf(LocId L, std::vector<LocId> &Out) const {
    for (PackId P : Packs.packsOf(L))
      Out.push_back(packAsLoc(P));
  }

  void addSingleton(LocId L, std::vector<LocId> &Out) const {
    Out.push_back(packAsLoc(Packs.singleton(L)));
  }

  /// Packs the interval evaluation of \p E reads: singleton packs of
  /// variables and of dereference targets, plus shared packs of variable
  /// pairs (the pairwise-projection reads of the transfer).
  void addExprUses(const IExpr &E, std::vector<LocId> &Out) const {
    switch (E.Kind) {
    case IExprKind::Var:
      addSingleton(E.Loc, Out);
      return;
    case IExprKind::Deref:
      for (LocId T : Pre.state().get(E.Loc).Pts)
        addSingleton(T, Out);
      return;
    case IExprKind::Binary:
      if ((E.Op == BinOp::Add || E.Op == BinOp::Sub) &&
          E.Lhs->Kind == IExprKind::Var &&
          E.Rhs->Kind == IExprKind::Var) {
        for (PackId P : Packs.packsOf(E.Lhs->Loc))
          if (Packs.indexIn(P, E.Rhs->Loc) >= 0)
            Out.push_back(packAsLoc(P));
      }
      addExprUses(*E.Lhs, Out);
      addExprUses(*E.Rhs, Out);
      return;
    default:
      return;
    }
  }

  void collect(PointId P, std::vector<LocId> &Defs,
               std::vector<LocId> &Uses) {
    const Command &Cmd = Prog.point(P).Cmd;
    switch (Cmd.Kind) {
    case CmdKind::Skip:
    case CmdKind::Entry:
    case CmdKind::Exit:
      return;
    case CmdKind::Assign:
    case CmdKind::RetStmt:
      addPacksOf(Cmd.Target, Defs);
      addPacksOf(Cmd.Target, Uses); // Relational update reads the pack.
      addExprUses(*Cmd.E, Uses);
      return;
    case CmdKind::Alloc:
      addPacksOf(Cmd.Target, Defs);
      addPacksOf(Cmd.Target, Uses);
      addSingleton(Cmd.AllocSite, Defs);
      addSingleton(Cmd.AllocSite, Uses); // Weak zero-init join.
      addExprUses(*Cmd.E, Uses);
      return;
    case CmdKind::Store:
      for (LocId T : Pre.state().get(Cmd.Target).Pts) {
        addPacksOf(T, Defs);
        addPacksOf(T, Uses); // Weak updates read the old pack value.
      }
      addExprUses(*Cmd.E, Uses);
      return;
    case CmdKind::Assume: {
      auto Side = [&](const IExpr &E) {
        if (E.Kind == IExprKind::Var) {
          addPacksOf(E.Loc, Defs);
          addPacksOf(E.Loc, Uses);
        }
      };
      Side(*Cmd.Cnd->Lhs);
      Side(*Cmd.Cnd->Rhs);
      addExprUses(*Cmd.Cnd->Lhs, Uses);
      addExprUses(*Cmd.Cnd->Rhs, Uses);
      return;
    }
    case CmdKind::Call: {
      if (Cmd.External)
        return;
      for (FuncId G : Pre.CG.callees(P)) {
        const FunctionInfo &F = Prog.function(G);
        size_t NArgs = std::min(F.Params.size(), Cmd.Args.size());
        for (size_t I = 0; I < NArgs; ++I) {
          addPacksOf(F.Params[I], Defs);
          addPacksOf(F.Params[I], Uses); // Binding reads (weak/relational).
          addExprUses(*Cmd.Args[I], Uses);
        }
      }
      return;
    }
    case CmdKind::Return: {
      if (!Cmd.Target.isValid())
        return;
      addPacksOf(Cmd.Target, Defs);
      addPacksOf(Cmd.Target, Uses);
      const Command &CallCmd = Prog.point(Cmd.Pair).Cmd;
      if (CallCmd.External)
        return;
      for (FuncId G : Pre.CG.callees(Cmd.Pair))
        addSingleton(Prog.function(G).RetSlot, Uses);
      return;
    }
    }
  }

  const Program &Prog;
  const PreAnalysisResult &Pre;
  const Packing &Packs;
};

//===----------------------------------------------------------------------===//
// Transfer function
//===----------------------------------------------------------------------===//

/// Shared octagon transfer, templated over a state-like type providing
/// `const OctVal &get(PackId)` (⊤ of the right arity when unbound) and
/// `void set(PackId, OctVal)`.
template <typename StateT> class OctTransfer {
public:
  OctTransfer(const Program &Prog, const PreAnalysisResult &Pre,
              const Packing &Packs, StateT &S)
      : Prog(Prog), Pre(Pre), Packs(Packs), S(S) {}

  void apply(PointId P) {
    const Command &Cmd = Prog.point(P).Cmd;
    switch (Cmd.Kind) {
    case CmdKind::Skip:
    case CmdKind::Entry:
    case CmdKind::Exit:
      return;
    case CmdKind::Assign:
    case CmdKind::RetStmt:
      assignExpr(Cmd.Target, *Cmd.E, /*Weak=*/false);
      return;
    case CmdKind::Alloc: {
      // The pointer's numeric projection is unconstrained; the summary
      // cells start at zero (weak join).
      assignIntervalToLoc(Cmd.Target, Interval::top(), /*Weak=*/false);
      assignIntervalToLoc(Cmd.AllocSite, Interval::constant(0),
                          /*Weak=*/true);
      return;
    }
    case CmdKind::Store: {
      Interval V = evalInterval(*Cmd.E);
      for (LocId T : Pre.state().get(Cmd.Target).Pts)
        assignIntervalToLoc(T, V, /*Weak=*/true);
      return;
    }
    case CmdKind::Assume:
      applyAssume(*Cmd.Cnd);
      return;
    case CmdKind::Call: {
      if (Cmd.External)
        return;
      const auto &Callees = Pre.CG.callees(P);
      bool Weak = Callees.size() > 1;
      for (FuncId G : Callees) {
        const FunctionInfo &F = Prog.function(G);
        size_t NArgs = std::min(F.Params.size(), Cmd.Args.size());
        for (size_t I = 0; I < NArgs; ++I)
          assignExpr(F.Params[I], *Cmd.Args[I], Weak);
      }
      return;
    }
    case CmdKind::Return: {
      if (!Cmd.Target.isValid())
        return;
      const Command &CallCmd = Prog.point(Cmd.Pair).Cmd;
      const auto &Callees =
          CallCmd.External ? std::vector<FuncId>{} : Pre.CG.callees(Cmd.Pair);
      if (Callees.empty()) {
        assignIntervalToLoc(Cmd.Target, Interval::top(), /*Weak=*/false);
        return;
      }
      if (Callees.size() == 1) {
        // Exact relational copy when the return slot shares a pack.
        IExpr RetVar;
        RetVar.Kind = IExprKind::Var;
        RetVar.Loc = Prog.function(Callees[0]).RetSlot;
        assignVarLike(Cmd.Target, RetVar.Loc, 0, /*Weak=*/false);
        return;
      }
      Interval V;
      for (FuncId G : Callees)
        V = V.join(projectLoc(Prog.function(G).RetSlot));
      assignIntervalToLoc(Cmd.Target, V, /*Weak=*/false);
      return;
    }
    }
  }

private:
  /// Interval of \p L from its singleton pack (the projection p_x).
  Interval projectLoc(LocId L) const {
    PackId P = Packs.singleton(L);
    return S.get(P).project(0);
  }

  Interval evalInterval(const IExpr &E) const {
    switch (E.Kind) {
    case IExprKind::Num:
      return Interval::constant(E.Num);
    case IExprKind::Input:
    case IExprKind::AddrOf:   // Non-numeric values project to ⊤.
    case IExprKind::FuncAddr:
      return Interval::top();
    case IExprKind::Var:
      return projectLoc(E.Loc);
    case IExprKind::Deref: {
      Interval R;
      for (LocId T : Pre.state().get(E.Loc).Pts)
        R = R.join(projectLoc(T));
      return R;
    }
    case IExprKind::Binary: {
      Interval A = evalInterval(*E.Lhs), B = evalInterval(*E.Rhs);
      switch (E.Op) {
      case BinOp::Add:
        return A.add(B);
      case BinOp::Sub:
        return A.sub(B);
      case BinOp::Mul:
        return A.mul(B);
      case BinOp::Div:
        return A.div(B);
      case BinOp::Mod:
        return A.rem(B);
      }
      return Interval::top();
    }
    }
    return Interval::top();
  }

  void setPack(PackId P, OctVal New, bool Weak) {
    if (Weak)
      New = S.get(P).join(New);
    S.set(P, std::move(New));
  }

  /// x := y + c, relational where the pack allows it.
  void assignVarLike(LocId X, LocId Y, int64_t C, bool Weak) {
    for (PackId P : Packs.packsOf(X)) {
      int IX = Packs.indexIn(P, X);
      int IY = Packs.indexIn(P, Y);
      const OctVal &Old = S.get(P);
      OctVal New = IY >= 0 ? Old.assignVarPlusConst(IX, IY, C)
                        : Old.assignInterval(
                              IX, projectLoc(Y).add(Interval::constant(C)));
      setPack(P, std::move(New), Weak);
    }
  }

  void assignIntervalToLoc(LocId X, const Interval &V, bool Weak) {
    for (PackId P : Packs.packsOf(X)) {
      int IX = Packs.indexIn(P, X);
      setPack(P, S.get(P).assignInterval(IX, V), Weak);
    }
  }

  /// Interval of (a ± b) using a pack that relates both variables, when
  /// one exists (a strictly better bound than combining the singleton
  /// projections).
  Interval projectPairwise(LocId A, LocId B, bool Sum) const {
    Interval Best = Interval::top();
    for (PackId P : Packs.packsOf(A)) {
      int IA = Packs.indexIn(P, A);
      int IB = Packs.indexIn(P, B);
      if (IB < 0)
        continue;
      const OctVal &O = S.get(P);
      Interval V = Sum ? O.projectSum(IA, IB) : O.projectDiff(IA, IB);
      Best = Best.meet(V);
    }
    return Best;
  }

  /// x := e with the Section 4.1 command transformation: out-of-pack
  /// variables are replaced by their projected intervals.
  void assignExpr(LocId X, const IExpr &E, bool Weak) {
    // Exact forms: y, y + n, y - n, n + y.
    if (E.Kind == IExprKind::Var) {
      assignVarLike(X, E.Loc, 0, Weak);
      return;
    }
    if (E.Kind == IExprKind::Binary &&
        (E.Op == BinOp::Add || E.Op == BinOp::Sub)) {
      const IExpr &L = *E.Lhs, &R = *E.Rhs;
      if (L.Kind == IExprKind::Var && R.Kind == IExprKind::Num) {
        assignVarLike(X, L.Loc, E.Op == BinOp::Add ? R.Num : -R.Num, Weak);
        return;
      }
      if (E.Op == BinOp::Add && L.Kind == IExprKind::Num &&
          R.Kind == IExprKind::Var) {
        assignVarLike(X, R.Loc, L.Num, Weak);
        return;
      }
      // y ± z with both variables in one pack: project the pairwise
      // bound (e.g. d := y - x is exact when the pack knows y - x).
      if (L.Kind == IExprKind::Var && R.Kind == IExprKind::Var) {
        Interval V =
            projectPairwise(L.Loc, R.Loc, /*Sum=*/E.Op == BinOp::Add)
                .meet(evalInterval(E));
        assignIntervalToLoc(X, V, Weak);
        return;
      }
    }
    assignIntervalToLoc(X, evalInterval(E), Weak);
  }

  /// Octagonal constraint for `x Op y` on pack \p P (indices IX, IY).
  static OctVal applyRelVarVar(const OctVal &O, int IX, int IY, RelOp Op) {
    switch (Op) {
    case RelOp::Lt:
      return O.addDiffConstraint(IX, IY, -1);
    case RelOp::Le:
      return O.addDiffConstraint(IX, IY, 0);
    case RelOp::Gt:
      return O.addDiffConstraint(IY, IX, -1);
    case RelOp::Ge:
      return O.addDiffConstraint(IY, IX, 0);
    case RelOp::Eq:
      return O.addDiffConstraint(IX, IY, 0).addDiffConstraint(IY, IX, 0);
    case RelOp::Ne:
      return O;
    }
    return O;
  }

  /// Interval constraint for `x Op [lo, hi]` on variable IX of \p O.
  static OctVal applyRelVarItv(const OctVal &O, int IX, RelOp Op,
                               const Interval &R) {
    if (R.isBot())
      return O;
    switch (Op) {
    case RelOp::Lt:
      return R.hi() == bound::PosInf ? O
                                     : O.addUpperBound(IX, R.hi() - 1);
    case RelOp::Le:
      return R.hi() == bound::PosInf ? O : O.addUpperBound(IX, R.hi());
    case RelOp::Gt:
      return R.lo() == bound::NegInf ? O
                                     : O.addLowerBound(IX, R.lo() + 1);
    case RelOp::Ge:
      return R.lo() == bound::NegInf ? O : O.addLowerBound(IX, R.lo());
    case RelOp::Eq: {
      OctVal Res = O;
      if (R.hi() != bound::PosInf)
        Res = Res.addUpperBound(IX, R.hi());
      if (R.lo() != bound::NegInf)
        Res = Res.addLowerBound(IX, R.lo());
      return Res;
    }
    case RelOp::Ne:
      return O;
    }
    return O;
  }

  void applyAssume(const ICond &C) {
    auto RefineSide = [&](const IExpr &Side, const IExpr &Other, RelOp Op) {
      if (Side.Kind != IExprKind::Var)
        return;
      LocId X = Side.Loc;
      Interval OtherItv = evalInterval(Other);
      for (PackId P : Packs.packsOf(X)) {
        int IX = Packs.indexIn(P, X);
        const OctVal &Old = S.get(P);
        OctVal New = Old;
        if (Other.Kind == IExprKind::Var) {
          int IY = Packs.indexIn(P, Other.Loc);
          if (IY >= 0)
            New = applyRelVarVar(Old, IX, IY, Op);
          else
            New = applyRelVarItv(Old, IX, Op, OtherItv);
        } else {
          New = applyRelVarItv(Old, IX, Op, OtherItv);
        }
        S.set(P, std::move(New));
      }
    };
    RefineSide(*C.Lhs, *C.Rhs, C.Op);
    RefineSide(*C.Rhs, *C.Lhs, swapRelOp(C.Op));
  }

  const Program &Prog;
  const PreAnalysisResult &Pre;
  const Packing &Packs;
  StateT &S;
};

//===----------------------------------------------------------------------===//
// State plumbing shared by the engines
//===----------------------------------------------------------------------===//

/// Cache of ⊤ octagons per pack arity (arities are small), in the run's
/// backend representation.
class TopCache {
public:
  explicit TopCache(OctBackendKind Backend) : Backend(Backend) {}

  const OctVal &top(uint32_t Arity) {
    if (Arity >= Tops.size())
      Tops.resize(Arity + 1);
    if (!Tops[Arity])
      Tops[Arity] = std::make_unique<OctVal>(OctVal::top(Backend, Arity));
    return *Tops[Arity];
  }

private:
  OctBackendKind Backend;
  std::vector<std::unique_ptr<OctVal>> Tops;
};

/// Dense view: reads fall back to ⊤ (non-strict transfers); writes go to
/// the underlying state.
class DenseOctView {
public:
  DenseOctView(OctState &S, const Packing &Packs, TopCache &Tops)
      : S(S), Packs(Packs), Tops(Tops) {}

  const OctVal &get(PackId P) const {
    const OctVal *V = S.lookup(P);
    if (V)
      return *V;
    return Tops.top(static_cast<uint32_t>(Packs.vars(P).size()));
  }

  void set(PackId P, OctVal V) { S.set(P, std::move(V)); }

private:
  OctState &S;
  const Packing &Packs;
  TopCache &Tops;
};

/// Sparse view: reads fall back to the node's input buffer, then ⊤;
/// writes land in an overlay.
class SparseOctView {
public:
  SparseOctView(const OctState &In, const Packing &Packs, TopCache &Tops)
      : In(In), Packs(Packs), Tops(Tops) {}

  const OctVal &get(PackId P) const {
    if (const OctVal *V = Overlay.lookup(P))
      return *V;
    if (const OctVal *V = In.lookup(P))
      return *V;
    return Tops.top(static_cast<uint32_t>(Packs.vars(P).size()));
  }

  void set(PackId P, OctVal V) { Overlay.set(P, std::move(V)); }

  /// Output over \p Defs: overlay where written, input passthrough
  /// otherwise.
  OctState extract(const std::vector<LocId> &Defs) const {
    OctState Out;
    for (LocId DL : Defs) {
      PackId P = locAsPack(DL);
      if (const OctVal *V = Overlay.lookup(P))
        Out.set(P, *V);
      else if (const OctVal *V = In.lookup(P))
        Out.set(P, *V);
    }
    return Out;
  }

private:
  const OctState &In;
  const Packing &Packs;
  TopCache &Tops;
  OctState Overlay;
};

/// Pointwise join; returns true if \p A grew.
bool octJoinInto(OctState &A, const OctState &B) {
  return A.mergeWith(B, [](OctVal &X, const OctVal &Y) {
    OctVal J = X.join(Y);
    if (J == X)
      return false;
    X = std::move(J);
    return true;
  });
}

} // namespace

//===----------------------------------------------------------------------===//
// Pack-space def/use entry point
//===----------------------------------------------------------------------===//

DefUseInfo spa::computeOctDefUse(const Program &Prog,
                                 const PreAnalysisResult &Pre,
                                 const Packing &Packs) {
  return OctDefUseBuilder(Prog, Pre, Packs).run();
}

//===----------------------------------------------------------------------===//
// Engines
//===----------------------------------------------------------------------===//

namespace {

OctDenseResult runOctDense(const Program &Prog, const PreAnalysisResult &Pre,
                           const Packing &Packs, const DefUseInfo &DU,
                           bool Localize, const OctOptions &Opts,
                           Budget *Bud, obs::Ledger *Led) {
  OctDenseResult R;
  size_t N = Prog.numPoints();
  R.Post.resize(N);
  if (Led)
    Led->resize(static_cast<uint32_t>(N));
  TopCache Tops(Opts.Backend);

  const CallGraphInfo &CG = Pre.CG;
  std::vector<uint32_t> Rpo = computeSuperRpo(Prog, CG);
  std::vector<bool> Widen =
      computeWideningPoints(Prog, CG, /*IncludeCallToReturn=*/Localize);
  std::vector<uint32_t> ChangeCount(N, 0);
  WorkList WL(std::move(Rpo));
  for (uint32_t P = 0; P < N; ++P)
    WL.push(P);

  // Access sets per function, in pack space.
  std::vector<std::vector<LocId>> Access(Prog.numFuncs());
  if (Localize) {
    for (uint32_t F = 0; F < Prog.numFuncs(); ++F) {
      Access[F] = DU.AccessDefs[F];
      Access[F].insert(Access[F].end(), DU.AccessUses[F].begin(),
                       DU.AccessUses[F].end());
      std::sort(Access[F].begin(), Access[F].end());
      Access[F].erase(std::unique(Access[F].begin(), Access[F].end()),
                      Access[F].end());
    }
  }
  auto InAccess = [&](FuncId F, PackId P) {
    const auto &A = Access[F.value()];
    return std::binary_search(A.begin(), A.end(), packAsLoc(P));
  };

  auto ComputeInput = [&](PointId C) {
    const Command &Cmd = Prog.point(C).Cmd;
    OctState In;
    if (Localize && Cmd.Kind == CmdKind::Entry) {
      FuncId F = Prog.point(C).Func;
      for (PointId Site : CG.callSitesOf(F))
        octJoinInto(In, R.Post[Site.value()].filtered([&](PackId P) {
          return InAccess(F, P);
        }));
      return In;
    }
    if (Localize && Cmd.Kind == CmdKind::Return) {
      const std::vector<FuncId> &Cs = CG.callees(Cmd.Pair);
      if (!Cs.empty()) {
        for (FuncId G : Cs)
          octJoinInto(In,
                      R.Post[Prog.function(G).Exit.value()].filtered(
                          [&](PackId P) { return InAccess(G, P); }));
        octJoinInto(In, R.Post[Cmd.Pair.value()].filtered([&](PackId P) {
          for (FuncId G : Cs)
            if (InAccess(G, P))
              return false;
          return true;
        }));
        return In;
      }
    }
    CG.forEachSuperPred(Prog, C,
                        [&](PointId P) { octJoinInto(In, R.Post[P.value()]); });
    return In;
  };

  Timer Clock;
  uint64_t LastSampleUs = 0;
  uint64_t WidenCount = 0;
  unsigned HardLimit = Opts.WideningDelay * Opts.HardLimitFactor;
  SPA_OBS_FIX_SCOPE();
  SPA_OBS_JOURNAL(PartitionBegin, 0, N);
  while (!WL.empty()) {
    SPA_OBS_HEARTBEAT();
    if ((R.Visits & 255) == 0) {
      obs::journalSetWorklistDepth(WL.size());
      maybeInjectFault("fixloop");
    }
    if (Opts.TimeLimitSec > 0 && (R.Visits & 255) == 0 &&
        Clock.seconds() > Opts.TimeLimitSec) {
      R.TimedOut = true;
      break;
    }
    // One budget step per visit, before the pop (mirrors the interval
    // engines: an expired budget stops at zero visits).
    if (Bud && !Bud->charge()) {
      R.Degraded = true;
      break;
    }
    PointId C(WL.pop());
    ++R.Visits;
    if (Led) {
      ++Led->row(C.value()).Visits;
      if ((R.Visits & 31) == 0) {
        uint64_t NowUs = static_cast<uint64_t>(Clock.seconds() * 1e6);
        Led->row(C.value()).TimeMicros += NowUs - LastSampleUs;
        LastSampleUs = NowUs;
      }
    }

    uint64_t TicksBefore = oct_detail::closureTicks();
    OctState Out = ComputeInput(C);
    DenseOctView View(Out, Packs, Tops);
    OctTransfer<DenseOctView>(Prog, Pre, Packs, View).apply(C);

    bool DoWiden =
        Widen[C.value()] && ChangeCount[C.value()] >= Opts.WideningDelay;
    bool Hard = ChangeCount[C.value()] >= HardLimit;
    if (Hard)
      SPA_OBS_COUNT("oct.hard_tops", 1);
    else if (DoWiden)
      SPA_OBS_COUNT("fixpoint.widenings", 1);
    else
      SPA_OBS_COUNT("fixpoint.joins", 1);
    if ((Hard || DoWiden) && (((++WidenCount) & 63) == 0))
      SPA_OBS_JOURNAL(WidenBurst, C.value(), WidenCount);
    uint64_t EntriesBefore = Led ? R.Post[C.value()].size() : 0;
    bool Changed = R.Post[C.value()].mergeWith(
        Out, [&](OctVal &A, const OctVal &B) {
          OctVal New = Hard ? OctVal::top(Opts.Backend, A.numVars())
                            : (DoWiden ? A.widen(A.join(B)) : A.join(B));
          if (New == A)
            return false;
          A = std::move(New);
          return true;
        });
    uint64_t TicksAfter = oct_detail::closureTicks();
    // A visit that crosses a 4096-closure boundary is a closure burst
    // (the relational analogue of WidenBurst): heavy packs re-closing.
    if ((TicksBefore >> 12) != (TicksAfter >> 12))
      SPA_OBS_JOURNAL(OctCloseBurst, C.value(), TicksAfter);
    if (Led) {
      obs::PointCost &PC = Led->row(C.value());
      PC.Closures += static_cast<uint32_t>(TicksAfter - TicksBefore);
      // A hard ⊤ cut is the most aggressive widening; count it as one.
      if (Hard || DoWiden)
        ++PC.Widenings;
      else
        ++PC.Joins;
      if (!Changed)
        ++PC.NoChangeSkips;
      else
        // Dense growth unit: net new pack entries at the point (merges
        // are monotone in the entry count).
        PC.Growth += R.Post[C.value()].size() - EntriesBefore;
    }
    if (!Changed)
      continue;
    ++ChangeCount[C.value()];
    CG.forEachSuperSucc(Prog, C, [&](PointId S) { WL.push(S.value()); });
    if (Localize && Prog.point(C).Cmd.Kind == CmdKind::Call)
      WL.push(Prog.point(C).Cmd.Pair.value());
  }
  SPA_OBS_JOURNAL(PartitionEnd, 0, R.Visits);

  if (R.Degraded) {
    // Sound degradation (docs/ROBUSTNESS.md): the affected set — pending
    // entries plus forward reachability along the propagation edges — is
    // where the fixpoint might still have risen.  Every pack of an
    // affected point goes to ⊤; all-⊤ over-approximates every concrete
    // memory, and downstream projections read missing packs as ⊥, so the
    // entries must be materialized.
    std::vector<bool> Affected(N, false);
    std::vector<uint32_t> Stack;
    WL.forEachPending([&](uint32_t P) {
      Affected[P] = true;
      Stack.push_back(P);
    });
    while (!Stack.empty()) {
      PointId C(Stack.back());
      Stack.pop_back();
      auto Visit = [&](PointId S) {
        if (!Affected[S.value()]) {
          Affected[S.value()] = true;
          Stack.push_back(S.value());
        }
      };
      CG.forEachSuperSucc(Prog, C, Visit);
      if (Localize && Prog.point(C).Cmd.Kind == CmdKind::Call)
        Visit(Prog.point(C).Cmd.Pair);
    }
    uint64_t NumAffected = 0;
    for (uint32_t P = 0; P < N; ++P) {
      if (!Affected[P])
        continue;
      ++NumAffected;
      for (uint32_t PK = 0; PK < Packs.numPacks(); ++PK) {
        PackId Pack(PK);
        R.Post[P].set(
            Pack,
            Tops.top(static_cast<uint32_t>(Packs.vars(Pack).size())));
      }
    }
    SPA_OBS_GAUGE_SET("fixpoint.degraded_points", NumAffected);
    SPA_OBS_JOURNAL(DegradeTier, /*Engine=*/3, NumAffected);
  }

  for (const OctState &S : R.Post)
    R.StateEntries += S.size();
  R.Seconds = Clock.seconds();
  SPA_OBS_COUNT("fixpoint.visits", R.Visits);
  SPA_OBS_GAUGE_SET("fixpoint.state_entries", R.StateEntries);
  return R;
}

OctSparseResult runOctSparse(const Program &Prog,
                             const PreAnalysisResult &Pre,
                             const Packing &Packs, const SparseGraph &Graph,
                             const OctOptions &Opts, Budget *Bud,
                             obs::Ledger *Led) {
  OctSparseResult R;
  size_t N = Graph.numNodes();
  R.In.resize(N);
  R.Out.resize(N);
  if (Led)
    Led->resize(static_cast<uint32_t>(N));
  TopCache Tops(Opts.Backend);
  const CallGraphInfo &CG = Pre.CG;

  std::vector<uint32_t> PointRpo = computeSuperRpo(Prog, CG);
  std::vector<uint32_t> Prio(N);
  for (uint32_t I = 0; I < N; ++I) {
    uint32_t R2 = 2 * PointRpo[Graph.anchor(I).value()] + 1;
    Prio[I] = Graph.isPhi(I) ? R2 - 1 : R2;
  }
  std::vector<bool> WidenPoint = computeWideningPoints(Prog, CG);
  std::vector<bool> WidenNode(N);
  for (uint32_t I = 0; I < N; ++I)
    WidenNode[I] = WidenPoint[Graph.anchor(I).value()];

  WorkList WL(Prio);
  for (uint32_t I = 0; I < N; ++I)
    WL.push(I);
  std::vector<FlatMap<PackId, uint32_t>> ArrivalCount(N);

  Timer Clock;
  uint64_t LastSampleUs = 0;
  uint64_t WidenCount = 0;
  unsigned HardLimit = Opts.WideningDelay * Opts.HardLimitFactor;
  SPA_OBS_FIX_SCOPE();
  SPA_OBS_JOURNAL(PartitionBegin, 0, N);
  while (!WL.empty()) {
    SPA_OBS_HEARTBEAT();
    if ((R.Visits & 255) == 0) {
      obs::journalSetWorklistDepth(WL.size());
      maybeInjectFault("fixloop");
    }
    if (Opts.TimeLimitSec > 0 && (R.Visits & 255) == 0 &&
        Clock.seconds() > Opts.TimeLimitSec) {
      R.TimedOut = true;
      break;
    }
    if (Bud && !Bud->charge()) {
      R.Degraded = true;
      break;
    }
    uint32_t Node = WL.pop();
    ++R.Visits;
    if (Led) {
      ++Led->row(Node).Visits;
      if ((R.Visits & 31) == 0) {
        uint64_t NowUs = static_cast<uint64_t>(Clock.seconds() * 1e6);
        Led->row(Node).TimeMicros += NowUs - LastSampleUs;
        LastSampleUs = NowUs;
      }
    }

    uint64_t TicksBefore = oct_detail::closureTicks();
    OctState NewOut;
    if (Graph.isPhi(Node)) {
      const PhiNode &Phi = Graph.phi(Node);
      PackId P = locAsPack(Phi.L);
      if (const OctVal *V = R.In[Node].lookup(P))
        NewOut.set(P, *V);
    } else {
      SparseOctView View(R.In[Node], Packs, Tops);
      OctTransfer<SparseOctView>(Prog, Pre, Packs, View)
          .apply(PointId(Node));
      NewOut = View.extract(Graph.NodeDefs[Node]);
    }

    OctState &Out = R.Out[Node];
    std::vector<LocId> ChangedLocs;
    for (const auto &[P, V] : NewOut) {
      OctVal *Slot = Out.lookup(P);
      if (!Slot) {
        Out.set(P, V);
        ChangedLocs.push_back(packAsLoc(P));
        continue;
      }
      OctVal J = Slot->join(V);
      if (J != *Slot) {
        *Slot = std::move(J);
        ChangedLocs.push_back(packAsLoc(P));
      }
    }
    {
      uint64_t TicksAfter = oct_detail::closureTicks();
      if ((TicksBefore >> 12) != (TicksAfter >> 12))
        SPA_OBS_JOURNAL(OctCloseBurst, Node, TicksAfter);
      if (Led)
        Led->row(Node).Closures +=
            static_cast<uint32_t>(TicksAfter - TicksBefore);
    }
    if (ChangedLocs.empty())
      continue;

    Graph.Edges->forEachOut(Node, [&](LocId L, uint32_t Dst) {
      if (!std::binary_search(ChangedLocs.begin(), ChangedLocs.end(), L))
        return;
      PackId P = locAsPack(L);
      const OctVal &V = *R.Out[Node].lookup(P);
      bool CutsCycle = WidenNode[Dst] || Prio[Node] >= Prio[Dst];
      OctState &InDst = R.In[Dst];
      OctVal *Old = InDst.lookup(P);
      uint32_t Count = 0;
      if (CutsCycle) {
        uint32_t &Slot = ArrivalCount[Dst].getOrCreate(P);
        Count = Slot;
      }
      uint64_t DeliverTicks = oct_detail::closureTicks();
      OctVal New = Old ? Old->join(V) : V;
      bool Widened = false;
      if (CutsCycle && Old) {
        if (Count >= HardLimit) {
          SPA_OBS_COUNT("oct.hard_tops", 1);
          New = OctVal::top(Opts.Backend, New.numVars());
          Widened = true; // Hard ⊤ cut: the most aggressive widening.
        } else if (Count >= Opts.WideningDelay) {
          SPA_OBS_COUNT("fixpoint.widenings", 1);
          New = Old->widen(New);
          Widened = true;
        } else {
          SPA_OBS_COUNT("fixpoint.joins", 1);
        }
        if (Widened && (((++WidenCount) & 63) == 0))
          SPA_OBS_JOURNAL(WidenBurst, Dst, WidenCount);
      } else {
        SPA_OBS_COUNT("fixpoint.joins", 1);
      }
      if (Led) {
        obs::PointCost &PC = Led->row(Dst);
        if (Widened)
          ++PC.Widenings;
        else
          ++PC.Joins;
        // Widening re-closures during delivery belong to the receiver.
        PC.Closures += static_cast<uint32_t>(oct_detail::closureTicks() -
                                             DeliverTicks);
      }
      if (Old && New == *Old) {
        if (Led)
          ++Led->row(Dst).NoChangeSkips;
        return;
      }
      if (CutsCycle)
        ++ArrivalCount[Dst].getOrCreate(P);
      if (Led) {
        obs::PointCost &PC = Led->row(Dst);
        ++PC.Deliveries;
        // Sparse growth unit: a pack entry materialized in the input
        // buffer for the first time.
        PC.Growth += Old ? 0 : 1;
      }
      InDst.set(P, std::move(New));
      WL.push(Dst);
    });
  }
  SPA_OBS_JOURNAL(PartitionEnd, 0, R.Visits);

  if (R.Degraded) {
    // Affected = pending nodes plus forward reachability along dependency
    // edges; their def/use packs go to ⊤ in Out/In so both buffers stay
    // over-approximations (a phi's single pack likewise).
    std::vector<bool> Affected(N, false);
    std::vector<uint32_t> Stack;
    WL.forEachPending([&](uint32_t I) {
      Affected[I] = true;
      Stack.push_back(I);
    });
    while (!Stack.empty()) {
      uint32_t Node = Stack.back();
      Stack.pop_back();
      Graph.Edges->forEachOut(Node, [&](LocId, uint32_t Dst) {
        if (!Affected[Dst]) {
          Affected[Dst] = true;
          Stack.push_back(Dst);
        }
      });
    }
    auto TopFill = [&](OctState &S, PackId P) {
      S.set(P, Tops.top(static_cast<uint32_t>(Packs.vars(P).size())));
    };
    uint64_t NumAffected = 0;
    for (uint32_t I = 0; I < N; ++I) {
      if (!Affected[I])
        continue;
      ++NumAffected;
      if (Graph.isPhi(I)) {
        PackId P = locAsPack(Graph.phi(I).L);
        TopFill(R.In[I], P);
        TopFill(R.Out[I], P);
      } else {
        for (LocId L : Graph.NodeUses[I])
          TopFill(R.In[I], locAsPack(L));
        for (LocId L : Graph.NodeDefs[I])
          TopFill(R.Out[I], locAsPack(L));
      }
    }
    SPA_OBS_GAUGE_SET("fixpoint.degraded_points", NumAffected);
    SPA_OBS_JOURNAL(DegradeTier, /*Engine=*/4, NumAffected);
  }

  for (const OctState &S : R.In)
    R.StateEntries += S.size();
  for (const OctState &S : R.Out)
    R.StateEntries += S.size();
  R.Seconds = Clock.seconds();
  SPA_OBS_COUNT("fixpoint.visits", R.Visits);
  SPA_OBS_GAUGE_SET("fixpoint.state_entries", R.StateEntries);
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// OctRun
//===----------------------------------------------------------------------===//

double OctRun::depSeconds() const {
  double S = PreSeconds + DefUseSeconds;
  if (Graph)
    S += Graph->BuildSeconds;
  return S;
}

double OctRun::fixSeconds() const {
  if (Dense)
    return Dense->Seconds;
  if (Sparse)
    return Sparse->Seconds;
  return 0;
}

bool OctRun::timedOut() const {
  if (Dense && Dense->TimedOut)
    return true;
  if (Sparse && Sparse->TimedOut)
    return true;
  return false;
}

bool OctRun::degraded() const {
  if (Pre.Degraded)
    return true;
  if (Dense && Dense->Degraded)
    return true;
  if (Sparse && Sparse->Degraded)
    return true;
  return false;
}

Interval OctRun::denseIntervalAt(PointId P, LocId L) const {
  assert(Dense && "dense result required");
  PackId S = Packs.singleton(L);
  const OctVal *V = Dense->Post[P.value()].lookup(S);
  return V ? V->project(0) : Interval::bot();
}

OctRun spa::runOctAnalysis(const Program &Prog, const OctOptions &Opts) {
  SPA_OBS_TRACE("oct-analyze");
  SPA_OBS_GAUGE_SET("program.points", Prog.numPoints());
  SPA_OBS_GAUGE_SET("program.locs", Prog.numLocs());
  SPA_OBS_GAUGE_SET("program.funcs", Prog.numFuncs());

  std::optional<Budget> BudgetStorage;
  if (Opts.Budget.enabled())
    BudgetStorage.emplace(Opts.Budget);
  Budget *Bud = BudgetStorage ? &*BudgetStorage : nullptr;

  // Per-point cost ledger for the octagon fixpoint (never allocated when
  // observability is compiled out).
  std::shared_ptr<obs::Ledger> Led;
  if constexpr (obs::LedgerEnabled)
    Led = std::make_shared<obs::Ledger>();

  Timer PreClock;
  SemanticsOptions Sem;
  OctRun Run{[&] {
               SPA_OBS_TRACE("pre-analysis");
               maybeInjectFault("pre");
               return runPreAnalysis(Prog, Sem, /*WidenAfterSweeps=*/3,
                                     PreAnalysisKind::Precise, Bud);
             }(),
             Packing{}, DefUseInfo{}, {}, {}, {}, {}, 0, 0};
  Run.PreSeconds = PreClock.seconds();
  SPA_OBS_GAUGE_SET("phase.pre.seconds", Run.PreSeconds);

  Timer DuClock;
  {
    SPA_OBS_TRACE("packing+def-use");
    Run.Packs = computePacking(Prog, Run.Pre, Opts.MaxPackSize);
    Run.DU = computeOctDefUse(Prog, Run.Pre, Run.Packs);
  }
  Run.DefUseSeconds = DuClock.seconds();
  SPA_OBS_GAUGE_SET("phase.defuse.seconds", Run.DefUseSeconds);
  SPA_OBS_GAUGE_SET("oct.packs", Run.Packs.numPacks());
  SPA_OBS_GAUGE_SET("oct.backend.split",
                    Opts.Backend == OctBackendKind::Split ? 1 : 0);
  SPA_OBS_GAUGE_SET("oct.groups", Run.Packs.numGroups());
  SPA_OBS_GAUGE_SET("oct.avg_group_size", Run.Packs.avgGroupSize());
  SPA_OBS_GAUGE_SET("defuse.avg_def_size", Run.DU.avgSemanticDefSize());
  SPA_OBS_GAUGE_SET("defuse.avg_use_size", Run.DU.avgSemanticUseSize());

  switch (Opts.Engine) {
  case EngineKind::Vanilla:
  case EngineKind::Base: {
    SPA_OBS_TRACE("fixpoint");
    maybeInjectFault("fix");
    Run.Dense = runOctDense(Prog, Run.Pre, Run.Packs, Run.DU,
                            Opts.Engine == EngineKind::Base, Opts, Bud,
                            Led.get());
    break;
  }
  case EngineKind::Sparse: {
    DepOptions Dep = Opts.Dep;
    Dep.NumLocsOverride = Run.Packs.numPacks();
    Dep.Bud = Bud;
    {
      SPA_OBS_TRACE("dep-build");
      maybeInjectFault("depbuild");
      Run.Graph = buildDepGraph(Prog, Run.Pre.CG, Run.DU, Dep);
    }
    SPA_OBS_TRACE("fixpoint");
    maybeInjectFault("fix");
    Run.Sparse = runOctSparse(Prog, Run.Pre, Run.Packs, *Run.Graph, Opts,
                              Bud, Led.get());
    break;
  }
  }

  // Degradation ladder tier 2: a degraded octagon run also produces an
  // interval result.  The fallback analyzer gets a *fresh* budget with
  // the same limits (the shared one is already exhausted, and an
  // instantly-degrading fallback would add nothing); it degrades soundly
  // itself if the limits are genuinely too tight.  Run before the final
  // gauge writes so the octagon run's phase gauges win.
  if (Opts.IntervalFallback && Run.degraded()) {
    SPA_OBS_COUNT("oct.interval_fallbacks", 1);
    AnalyzerOptions FOpts;
    FOpts.Engine = EngineKind::Sparse;
    FOpts.Dep = Opts.Dep;
    FOpts.TimeLimitSec = Opts.TimeLimitSec;
    FOpts.WideningDelay = Opts.WideningDelay;
    FOpts.Budget = Opts.Budget;
    Run.Fallback.emplace(analyzeProgram(Prog, FOpts));
  }

  // Attribute after the fallback: the fallback's own analyzeProgram wrote
  // its ledger gauges, and the octagon run's should win.
  if (Led) {
    attributeLedger(*Led, Prog, Run.Graph ? &*Run.Graph : nullptr,
                    &Run.Pre.CG);
    Run.Ledger = std::move(Led);
  }

  SPA_OBS_GAUGE_SET("phase.depbuild.seconds",
                    Run.Graph ? Run.Graph->BuildSeconds : 0);
  SPA_OBS_GAUGE_SET("phase.fix.seconds", Run.fixSeconds());
  SPA_OBS_GAUGE_SET("phase.total.seconds", Run.depSeconds() + Run.fixSeconds());
  SPA_OBS_GAUGE_MAX("mem.peak_rss_kib", currentPeakRssKiB());
  // The octagon engines consume the interval pre-analysis invariant
  // (interned points-to sets) and COW pre-state snapshots, so the value
  // sharing gauges are meaningful here too.
  exportValueSharingStats();

  if (Bud) {
    SPA_OBS_GAUGE_SET("budget.steps", double(Bud->steps()));
    SPA_OBS_GAUGE_SET("budget.exhausted", Bud->exhausted() ? 1 : 0);
  }
  SPA_OBS_GAUGE_SET("analysis.degraded", Run.degraded() ? 1 : 0);
  return Run;
}
