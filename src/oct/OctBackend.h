//===- OctBackend.h - Octagon backend dispatch ----------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OctVal: a tagged union over the two octagon representations — the
/// dense DBM (`Oct`) and the sparse split-normal-form graph
/// (`SplitOct`) — exposing the shared domain API.  The octagon engines,
/// transfer functions, and consumers are written once against OctVal;
/// the backend is chosen per run (OctOptions::Backend, spa-analyze
/// --oct-backend) and every value in a run carries the same
/// representation, so binary operations never cross backends.
///
/// Both representations maintain the identical tight-closed canonical
/// form, which makes the dense DBM a drop-in oracle for the split
/// backend (tests/split_oct_test.cpp pins the equivalence).
///
//===----------------------------------------------------------------------===//

#ifndef SPA_OCT_OCTBACKEND_H
#define SPA_OCT_OCTBACKEND_H

#include "core/Analyzer.h" // OctBackendKind.
#include "oct/Octagon.h"
#include "oct/SplitOct.h"

#include <variant>

namespace spa {

/// One octagon value in either representation.  Default-constructed
/// values are a dense ⊤ over zero variables (the FlatMap default);
/// real values come from top()/bottom() with an explicit backend.
class OctVal {
public:
  OctVal() : V(std::in_place_type<Oct>, 0u) {}
  explicit OctVal(Oct O) : V(std::move(O)) {}
  explicit OctVal(SplitOct O) : V(std::move(O)) {}

  static OctVal top(OctBackendKind K, uint32_t NumVars);
  static OctVal bottom(OctBackendKind K, uint32_t NumVars);

  OctBackendKind backend() const {
    return std::holds_alternative<Oct>(V) ? OctBackendKind::Dbm
                                          : OctBackendKind::Split;
  }

  /// Representation accessors (tests and benchmarks; null when the value
  /// holds the other backend).
  const Oct *asDbm() const { return std::get_if<Oct>(&V); }
  const SplitOct *asSplit() const { return std::get_if<SplitOct>(&V); }

  uint32_t numVars() const;
  bool isBottom() const;

  bool operator==(const OctVal &O) const;
  bool operator!=(const OctVal &O) const { return !(*this == O); }

  bool leq(const OctVal &O) const;
  OctVal join(const OctVal &O) const;
  OctVal meet(const OctVal &O) const;
  OctVal widen(const OctVal &O) const;
  OctVal narrow(const OctVal &O) const;

  OctVal forget(uint32_t V) const;
  OctVal assignInterval(uint32_t V, const Interval &Itv) const;
  OctVal assignVarPlusConst(uint32_t V, uint32_t W, int64_t C) const;

  OctVal addSumConstraint(uint32_t V, bool PosV, uint32_t W, bool PosW,
                          int64_t C) const;
  OctVal addUpperBound(uint32_t V, int64_t C) const;
  OctVal addLowerBound(uint32_t V, int64_t C) const;
  OctVal addDiffConstraint(uint32_t V, uint32_t W, int64_t C) const;

  Interval project(uint32_t V) const;
  Interval projectDiff(uint32_t V, uint32_t W) const;
  Interval projectSum(uint32_t V, uint32_t W) const;

  std::string str() const;
  uint64_t memoryBytes() const;

private:
  std::variant<Oct, SplitOct> V;
};

/// Parses "dbm" / "split"; returns false on anything else.
bool parseOctBackend(const std::string &Name, OctBackendKind &Out);
/// "dbm" or "split".
const char *octBackendName(OctBackendKind K);

} // namespace spa

#endif // SPA_OCT_OCTBACKEND_H
