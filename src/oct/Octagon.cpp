//===- Octagon.cpp - Octagon abstract domain (DBM) -------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "oct/Octagon.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace spa;

namespace {

/// Floor division by 2 that is exact for negative odd bounds.
int64_t halfFloor(int64_t B) {
  if (B == bound::PosInf || B == bound::NegInf)
    return B;
  return B >= 0 ? B / 2 : (B - 1) / 2;
}

} // namespace

namespace {
thread_local uint64_t ClosureTicks = 0;
} // namespace

uint64_t spa::oct_detail::closureTicks() { return ClosureTicks; }
void spa::oct_detail::bumpClosureTick() { ++ClosureTicks; }

Oct::Oct(uint32_t NumVars) : N(NumVars) {
  M.assign(4ull * N * N, bound::PosInf);
  for (uint32_t I = 0; I < 2 * N; ++I)
    at(I, I) = 0;
}

Oct Oct::bottom(uint32_t NumVars) {
  // Bottom carries no constraints; skip the 4N² allocation so Empty
  // octagons account the same near-constant footprint as the split
  // backend's (every operation guards on Empty before touching M).
  Oct O(0);
  O.N = NumVars;
  O.Empty = true;
  return O;
}

void Oct::dropMatrix() {
  Empty = true;
  std::vector<int64_t>().swap(M);
}

void Oct::close() {
  if (Empty)
    return;
  uint32_t D = 2 * N;
  if (D == 0)
    return;
  SPA_OBS_COUNT("oct.closures", 1);
  oct_detail::bumpClosureTick();

  // Iterate (shortest paths; strengthening; integer tightening) to a
  // fixpoint.  Matrices are at most 20x20 (pack size cap), so the extra
  // robustness costs little.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Floyd–Warshall.
    for (uint32_t K = 0; K < D; ++K) {
      for (uint32_t I = 0; I < D; ++I) {
        int64_t MIK = at(I, K);
        if (MIK == bound::PosInf)
          continue;
        for (uint32_t J = 0; J < D; ++J) {
          int64_t MKJ = at(K, J);
          if (MKJ == bound::PosInf)
            continue;
          int64_t Via = bound::add(MIK, MKJ);
          if (Via < at(I, J)) {
            at(I, J) = Via;
            Changed = true;
          }
        }
      }
    }
    // Infeasible systems drive entries unboundedly negative; stop at the
    // first negative diagonal entry.
    for (uint32_t I = 0; I < D; ++I) {
      if (at(I, I) < 0) {
        dropMatrix();
        return;
      }
    }
    // Integer tightening of unary bounds: ±2v ≤ c implies ±2v ≤ 2⌊c/2⌋.
    for (uint32_t I = 0; I < D; ++I) {
      int64_t B = at(I, bar(I));
      if (B != bound::PosInf) {
        int64_t T = 2 * halfFloor(B);
        if (T < B) {
          at(I, bar(I)) = T;
          Changed = true;
        }
      }
    }
    // Strengthening: xj − xi ≤ (ubar(i) + ubar(j)) / 2.
    for (uint32_t I = 0; I < D; ++I) {
      int64_t UI = at(I, bar(I));
      if (UI == bound::PosInf)
        continue;
      for (uint32_t J = 0; J < D; ++J) {
        int64_t UJ = at(bar(J), J);
        if (UJ == bound::PosInf)
          continue;
        int64_t S = bound::add(halfFloor(UI), halfFloor(UJ));
        if (S < at(I, J)) {
          at(I, J) = S;
          Changed = true;
        }
      }
    }
  }

  for (uint32_t I = 0; I < D; ++I) {
    if (at(I, I) < 0) {
      dropMatrix();
      return;
    }
  }
}

bool Oct::operator==(const Oct &O) const {
  assert(N == O.N && "octagon arity mismatch");
  if (Empty || O.Empty)
    return Empty == O.Empty;
  return M == O.M;
}

bool Oct::leq(const Oct &O) const {
  assert(N == O.N && "octagon arity mismatch");
  if (Empty)
    return true;
  if (O.Empty)
    return false;
  for (size_t I = 0; I < M.size(); ++I)
    if (M[I] > O.M[I])
      return false;
  return true;
}

Oct Oct::join(const Oct &O) const {
  assert(N == O.N && "octagon arity mismatch");
  if (Empty)
    return O;
  if (O.Empty)
    return *this;
  Oct R(N);
  // The elementwise max of strongly closed DBMs is strongly closed.
  for (size_t I = 0; I < M.size(); ++I)
    R.M[I] = std::max(M[I], O.M[I]);
  return R;
}

Oct Oct::meet(const Oct &O) const {
  assert(N == O.N && "octagon arity mismatch");
  if (Empty || O.Empty)
    return bottom(N);
  Oct R(N);
  for (size_t I = 0; I < M.size(); ++I)
    R.M[I] = std::min(M[I], O.M[I]);
  R.close();
  return R;
}

Oct Oct::widen(const Oct &O) const {
  assert(N == O.N && "octagon arity mismatch");
  if (Empty)
    return O;
  if (O.Empty)
    return *this;
  Oct R(N);
  for (size_t I = 0; I < M.size(); ++I)
    R.M[I] = O.M[I] <= M[I] ? M[I] : bound::PosInf;
  // Note: re-closing a widened octagon can in principle defeat
  // termination; the analysis engines guard with a hard cut to ⊤ after
  // excessive iterations, so we keep results canonical (closed) here.
  R.close();
  return R;
}

Oct Oct::narrow(const Oct &O) const {
  assert(N == O.N && "octagon arity mismatch");
  if (Empty || O.Empty)
    return O;
  Oct R(N);
  for (size_t I = 0; I < M.size(); ++I)
    R.M[I] = M[I] == bound::PosInf ? O.M[I] : M[I];
  R.close();
  return R;
}

Oct Oct::forget(uint32_t V) const {
  assert(V < N && "variable out of range");
  if (Empty)
    return *this;
  Oct R = *this; // Closed, so dropping rows/columns loses nothing.
  uint32_t P = 2 * V;
  for (uint32_t I = 0; I < 2 * N; ++I) {
    R.at(P, I) = bound::PosInf;
    R.at(P + 1, I) = bound::PosInf;
    R.at(I, P) = bound::PosInf;
    R.at(I, P + 1) = bound::PosInf;
  }
  R.at(P, P) = 0;
  R.at(P + 1, P + 1) = 0;
  return R;
}

Oct Oct::addSumConstraint(uint32_t V, bool PosV, uint32_t W, bool PosW,
                          int64_t C) const {
  assert(V < N && W < N && "variable out of range");
  if (Empty)
    return *this;
  // (sV·v) + (sW·w) ≤ C  with signed indices a, b:  x_a − x_b̄ ≤ C.
  uint32_t A = 2 * V + (PosV ? 0 : 1);
  uint32_t B = 2 * W + (PosW ? 0 : 1);
  Oct R = *this;
  R.at(bar(B), A) = std::min(R.at(bar(B), A), C);
  R.at(bar(A), B) = std::min(R.at(bar(A), B), C); // Coherence mirror.
  R.close();
  return R;
}

Oct Oct::addUpperBound(uint32_t V, int64_t C) const {
  if (C == bound::PosInf)
    return *this;
  int64_t Twice = bound::mul(C, 2);
  return addSumConstraint(V, true, V, true, Twice);
}

Oct Oct::addLowerBound(uint32_t V, int64_t C) const {
  if (C == bound::NegInf)
    return *this;
  int64_t Twice = bound::mul(C, -2);
  return addSumConstraint(V, false, V, false, Twice);
}

Oct Oct::addDiffConstraint(uint32_t V, uint32_t W, int64_t C) const {
  if (C == bound::PosInf)
    return *this;
  return addSumConstraint(V, true, W, false, C);
}

Oct Oct::assignInterval(uint32_t V, const Interval &Itv) const {
  if (Empty)
    return *this;
  if (Itv.isBot()) {
    // Assigning an unreachable value: the whole state is unreachable in
    // the concrete; keep it conservative as ⊤ on v (the non-relational
    // engine handles reachability the same way).
    return forget(V);
  }
  Oct R = forget(V);
  if (Itv.hi() != bound::PosInf)
    R = R.addUpperBound(V, Itv.hi());
  if (Itv.lo() != bound::NegInf)
    R = R.addLowerBound(V, Itv.lo());
  return R;
}

Oct Oct::assignVarPlusConst(uint32_t V, uint32_t W, int64_t C) const {
  if (Empty)
    return *this;
  if (V == W) {
    // v := v + c: shift every bound mentioning v.
    Oct R = *this;
    uint32_t P = 2 * V, Q = 2 * V + 1;
    for (uint32_t I = 0; I < 2 * N; ++I) {
      if (I == P || I == Q)
        continue;
      // x_P − x_I grows by c; x_I − x_P shrinks by c (and dually for Q).
      if (R.at(I, P) != bound::PosInf)
        R.at(I, P) = bound::add(R.at(I, P), C);
      if (R.at(P, I) != bound::PosInf)
        R.at(P, I) = bound::add(R.at(P, I), -C);
      if (R.at(I, Q) != bound::PosInf)
        R.at(I, Q) = bound::add(R.at(I, Q), -C);
      if (R.at(Q, I) != bound::PosInf)
        R.at(Q, I) = bound::add(R.at(Q, I), C);
    }
    if (R.at(Q, P) != bound::PosInf)
      R.at(Q, P) = bound::add(R.at(Q, P), 2 * C);
    if (R.at(P, Q) != bound::PosInf)
      R.at(P, Q) = bound::add(R.at(P, Q), -2 * C);
    return R;
  }
  // v := w + c: forget v, then v − w ≤ c and w − v ≤ −c.
  Oct R = forget(V);
  R = R.addDiffConstraint(V, W, C);
  R = R.addDiffConstraint(W, V, -C);
  return R;
}

Interval Oct::projectDiff(uint32_t V, uint32_t W) const {
  assert(V < N && W < N && "variable out of range");
  if (Empty)
    return Interval::bot();
  if (V == W)
    return Interval::constant(0);
  // v − w ≤ M[2w][2v]; w − v ≤ M[2v][2w].
  int64_t Up = at(2 * W, 2 * V);
  int64_t Down = at(2 * V, 2 * W);
  int64_t Hi = Up == bound::PosInf ? bound::PosInf : Up;
  int64_t Lo = Down == bound::PosInf ? bound::NegInf : -Down;
  return Interval(Lo, Hi);
}

Interval Oct::projectSum(uint32_t V, uint32_t W) const {
  assert(V < N && W < N && "variable out of range");
  if (Empty)
    return Interval::bot();
  if (V == W) {
    Interval P = project(V);
    return P.add(P); // 2v; exact since it is one variable.
  }
  // v + w ≤ M[2w+1][2v]; −v − w ≤ M[2w][2v+1].
  int64_t Up = at(2 * W + 1, 2 * V);
  int64_t Down = at(2 * W, 2 * V + 1);
  int64_t Hi = Up == bound::PosInf ? bound::PosInf : Up;
  int64_t Lo = Down == bound::PosInf ? bound::NegInf : -Down;
  return Interval(Lo, Hi);
}

Interval Oct::project(uint32_t V) const {
  assert(V < N && "variable out of range");
  if (Empty)
    return Interval::bot();
  // 2v ≤ M[2v+1][2v]  and  −2v ≤ M[2v][2v+1].
  int64_t Up = at(2 * V + 1, 2 * V);
  int64_t Down = at(2 * V, 2 * V + 1);
  int64_t Hi = Up == bound::PosInf ? bound::PosInf : halfFloor(Up);
  int64_t Lo = Down == bound::PosInf ? bound::NegInf : -halfFloor(Down);
  return Interval(Lo, Hi);
}

std::string Oct::str() const {
  if (Empty)
    return "_|_";
  std::ostringstream OS;
  OS << "{";
  bool First = true;
  for (uint32_t V = 0; V < N; ++V) {
    Interval I = project(V);
    if (I == Interval::top())
      continue;
    if (!First)
      OS << ", ";
    First = false;
    OS << "v" << V << " in " << I.str();
  }
  for (uint32_t V = 0; V < N; ++V) {
    for (uint32_t W = V + 1; W < N; ++W) {
      int64_t D = at(2 * W, 2 * V); // v − w ≤ D.
      if (D != bound::PosInf) {
        if (!First)
          OS << ", ";
        First = false;
        OS << "v" << V << "-v" << W << "<=" << D;
      }
    }
  }
  OS << "}";
  return OS.str();
}
