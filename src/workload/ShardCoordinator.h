//===- ShardCoordinator.h - Work-stealing multi-process shard driver -----------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Splits a batch across N forked shard workers with a pull-based
/// (work-stealing) dispatch protocol over pipes.  The parent serializes
/// every program to an spa-ir-v1 snapshot once, forks the workers (which
/// inherit the snapshot bytes copy-on-write), and then plays dealer:
///
///   parent -> worker:  16-byte frame { u32 item index, u32 tier,
///                      u64 parent trace-span id }
///                      (index 0xFFFFFFFF = shutdown)
///   worker -> parent:  length-prefixed result frame
///                      { u32 len, payload: u32 index + encoded
///                        BatchItemResult + serialized trace spans }
///
/// Each worker holds exactly one item at a time and asks for the next by
/// finishing the last, so fast workers drain the shared queue — stealing
/// items a static contiguous-block split would have pinned to a slow
/// sibling (the Steals counter measures exactly that displacement).
///
/// A worker that dies (crash, OOM-kill, injected fault) closes its
/// result pipe; the parent observes EOF, reassigns the in-flight item to
/// a surviving worker, and classifies it Crash only after every shard
/// has had a chance (assignment cap = shard count).  Memory-aware
/// bin-packing rides the same loop: items whose RssHintKiB meets the
/// heavy threshold take a single "heavy token", so no two of them are
/// ever in flight together and they cannot OOM each other.
///
/// Results land in input-order slots, so the merged BatchResult is
/// bit-identical (deterministic fields) to a --shards=1 run and to plain
/// runBatch.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_WORKLOAD_SHARDCOORDINATOR_H
#define SPA_WORKLOAD_SHARDCOORDINATOR_H

#include "workload/Batch.h"

namespace spa {

struct ShardOptions {
  /// Per-item analysis options; Analyzer.Jobs pins to 1 inside workers
  /// (each worker is one lane of the process-level pool).  Isolate is
  /// ignored: the worker process *is* the isolation boundary.
  BatchOptions Batch;
  /// Worker process count (clamped to [1, item count]).
  unsigned Shards = 2;
  /// Heavy-item threshold (KiB; 0 = off): items with RssHintKiB at or
  /// above it are serialized through the single heavy token.
  uint64_t HeavyRssKiB = 0;
};

/// Dispatch/completion record of one item, in parent batch-clock seconds
/// (the bin-packing tests prove serialization from disjoint windows).
struct ShardItemTiming {
  double DispatchSeconds = 0; ///< Last dispatch of this item.
  double DoneSeconds = 0;     ///< Result arrival (0 if never finished).
  unsigned Shard = 0;         ///< Worker that produced the result.
  unsigned Assignments = 0;   ///< Dispatch count (>1 = reassigned).
};

struct ShardRunResult {
  BatchResult Batch;                  ///< Merged, in input order.
  std::vector<ShardItemTiming> Timing; ///< Parallel to Batch.Items.
  unsigned WorkerDeaths = 0; ///< Workers that died before shutdown.
  uint64_t Steals = 0; ///< Items executed off their static home shard.
};

/// Runs \p Items across Opts.Shards forked workers.  Exports the shard.*
/// gauges and appends a "shard" bench record.
ShardRunResult runSharded(const std::vector<BatchItem> &Items,
                          const ShardOptions &Opts);

} // namespace spa

#endif // SPA_WORKLOAD_SHARDCOORDINATOR_H
