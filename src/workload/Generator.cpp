//===- Generator.cpp - Synthetic C-like program generator -----------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "workload/Generator.h"

#include "support/Rng.h"

#include <cassert>

using namespace spa;

namespace {

class Generator {
public:
  explicit Generator(const GenConfig &C) : C(C), Rand(C.Seed) {}

  ProgramAST run() {
    // Globals: g0..  plus function-pointer globals when enabled.
    for (unsigned I = 0; I < C.NumGlobals; ++I) {
      GlobalDecl G;
      G.Name = Generator::numbered("g", I);
      G.Init = Rand.range(-4, 8);
      Ast.Globals.push_back(std::move(G));
    }
    if (C.UseFunctionPointers && C.NumFunctions > 0) {
      GlobalDecl G;
      G.Name = "fp0";
      Ast.Globals.push_back(std::move(G));
    }

    // Signatures first, so calls know arity.
    ParamCounts.resize(C.NumFunctions);
    for (unsigned I = 0; I < C.NumFunctions; ++I)
      ParamCounts[I] =
          C.MaxParams == 0 ? 0 : static_cast<unsigned>(Rand.below(C.MaxParams + 1));
    Called.assign(C.NumFunctions, false);

    for (unsigned I = 0; I < C.NumFunctions; ++I)
      Ast.Functions.push_back(makeFunction(I));
    Ast.Functions.push_back(makeMain());
    return std::move(Ast);
  }

private:
  //===------------------------------------------------------------------===//
  // Naming
  //===------------------------------------------------------------------===//

  // Append form: GCC 12's -O3 -Wrestrict misfires on the
  // `"literal" + std::to_string(...)` chain (GCC PR105651).
  static std::string numbered(const char *Prefix, uint64_t I) {
    std::string S = Prefix;
    S += std::to_string(I);
    return S;
  }

  static std::string funcName(unsigned I) { return numbered("f", I); }

  /// Variable pools for the function currently being generated.
  struct Pools {
    std::vector<std::string> Numeric;  ///< Initialized numeric variables.
    std::vector<std::string> Pointers; ///< Initialized pointer variables.
    std::vector<std::string> Globals;  ///< This function's global subset.
    unsigned FuncIndex = 0;            ///< C.NumFunctions for main.
    unsigned NextTemp = 0;
  };

  /// Real programs exhibit locality: each function references a small
  /// subset of the globals, which is what keeps the def/use sets sparse
  /// (the key observation of Section 6.3).
  void pickGlobalSubset(Pools &P) {
    if (C.NumGlobals == 0)
      return;
    unsigned Want = 1 + static_cast<unsigned>(Rand.below(4));
    for (unsigned I = 0; I < Want; ++I)
      P.Globals.push_back(numbered("g", Rand.below(C.NumGlobals)));
    // The SCC guard counter must stay referencable.
    if (C.SccGroupSize > 1 && P.FuncIndex < C.SccGroupSize)
      P.Globals.push_back("g0");
  }

  std::string pickGlobal(Pools &P) {
    return P.Globals[Rand.below(P.Globals.size())];
  }

  std::string freshName(Pools &P, const char *Prefix) {
    return std::string(Prefix) + std::to_string(P.FuncIndex) + "_" +
           std::to_string(P.NextTemp++);
  }

  //===------------------------------------------------------------------===//
  // Expressions
  //===------------------------------------------------------------------===//

  std::unique_ptr<Expr> numAtom(Pools &P) {
    // Weighted atom choice: locals/params, globals, constants, derefs,
    // unknown inputs.
    uint64_t K = Rand.below(100);
    if (K < 45 && !P.Numeric.empty())
      return Expr::makeVar(
          P.Numeric[Rand.below(P.Numeric.size())], 0);
    if (K < 55 && !P.Globals.empty())
      return Expr::makeVar(pickGlobal(P), 0);
    if (K < 65 && !P.Pointers.empty())
      return Expr::makeDeref(
          P.Pointers[Rand.below(P.Pointers.size())], 0);
    if (K < 75)
      return Expr::makeInput(0);
    return Expr::makeNum(Rand.range(-8, 8), 0);
  }

  std::unique_ptr<Expr> numExpr(Pools &P) {
    auto E = numAtom(P);
    unsigned Terms = static_cast<unsigned>(Rand.below(3));
    for (unsigned I = 0; I < Terms; ++I) {
      uint64_t K = Rand.below(100);
      if (K < 10) {
        E = Expr::makeBinary(BinOp::Mul, std::move(E), numAtom(P), 0);
      } else if (K < 22) {
        // Division/modulo by a nonzero constant: interesting for the
        // domains, never traps concretely.
        int64_t D = Rand.range(1, 6) * (Rand.chance(30) ? -1 : 1);
        E = Expr::makeBinary(Rand.chance(50) ? BinOp::Div : BinOp::Mod,
                             std::move(E), Expr::makeNum(D, 0), 0);
      } else {
        E = Expr::makeBinary(K < 61 ? BinOp::Add : BinOp::Sub, std::move(E),
                             numAtom(P), 0);
      }
    }
    return E;
  }

  std::unique_ptr<Cond> numCond(Pools &P) {
    auto Cd = std::make_unique<Cond>();
    static const RelOp Ops[] = {RelOp::Lt, RelOp::Le, RelOp::Gt,
                                RelOp::Ge, RelOp::Eq, RelOp::Ne};
    Cd->Op = Ops[Rand.below(6)];
    Cd->Lhs = P.Numeric.empty()
                  ? numAtom(P)
                  : Expr::makeVar(P.Numeric[Rand.below(P.Numeric.size())], 0);
    Cd->Rhs = Rand.chance(60) ? Expr::makeNum(Rand.range(-8, 12), 0)
                              : numAtom(P);
    return Cd;
  }

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  std::unique_ptr<Stmt> assignStmt(Pools &P) {
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::Assign;
    bool ToGlobal =
        !P.Globals.empty() && (P.Numeric.empty() || Rand.chance(18));
    assert((ToGlobal || !P.Numeric.empty()) && "no assignable variable");
    S->Target = ToGlobal ? pickGlobal(P)
                         : P.Numeric[Rand.below(P.Numeric.size())];
    S->E = numExpr(P);
    return S;
  }

  std::unique_ptr<Stmt> pointerStmt(Pools &P) {
    auto S = std::make_unique<Stmt>();
    uint64_t K = Rand.below(100);
    const std::string &Ptr = P.Pointers[Rand.below(P.Pointers.size())];
    if (K < C.AllocPercent) {
      S->Kind = StmtKind::Alloc;
      S->Target = Ptr;
      S->E = Expr::makeNum(Rand.range(1, 8), 0);
      return S;
    }
    if (K < 25) { // Retarget: p = &x or p = q.
      S->Kind = StmtKind::Assign;
      S->Target = Ptr;
      if (Rand.chance(60)) {
        bool Global = !P.Globals.empty() && Rand.chance(40);
        std::string X = Global ? pickGlobal(P)
                               : P.Numeric[Rand.below(P.Numeric.size())];
        S->E = Expr::makeAddrOf(X, 0);
      } else {
        S->E = Expr::makeVar(P.Pointers[Rand.below(P.Pointers.size())], 0);
      }
      return S;
    }
    if (K < 60) { // Store through pointer.
      S->Kind = StmtKind::Store;
      S->Target = Ptr;
      S->E = numExpr(P);
      return S;
    }
    // Load through pointer.
    S->Kind = StmtKind::Assign;
    S->Target = P.Numeric[Rand.below(P.Numeric.size())];
    S->E = Expr::makeDeref(Ptr, 0);
    return S;
  }

  /// Picks a callee for a call in function \p CallerIndex, honoring the
  /// forward/recursive and single-call-site policies.  Returns
  /// C.NumFunctions when no callee is available.
  unsigned pickCallee(unsigned CallerIndex) {
    std::vector<unsigned> Candidates;
    for (unsigned J = 0; J < C.NumFunctions; ++J) {
      bool Forward = CallerIndex >= C.NumFunctions || J < CallerIndex;
      if (!C.AllowRecursion && !Forward)
        continue;
      if (C.SingleCallSite && Called[J])
        continue;
      Candidates.push_back(J);
    }
    if (Candidates.empty())
      return C.NumFunctions;
    unsigned J = Candidates[Rand.below(Candidates.size())];
    Called[J] = true;
    return J;
  }

  std::unique_ptr<Stmt> callStmt(Pools &P, unsigned Callee,
                                 bool Indirect = false) {
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::Call;
    if (!P.Numeric.empty() && Rand.chance(80))
      S->Target = P.Numeric[Rand.below(P.Numeric.size())];
    if (Indirect) {
      S->Indirect = true;
      S->Callee = "fp0";
      // Arity of the pointed-to function is unknown; pass MaxParams args
      // (extra arguments are dropped at binding).
      for (unsigned I = 0; I < C.MaxParams; ++I)
        S->Args.push_back(numExpr(P));
      return S;
    }
    S->Callee = funcName(Callee);
    for (unsigned I = 0; I < ParamCounts[Callee]; ++I)
      S->Args.push_back(numExpr(P));
    return S;
  }

  void genBody(Pools &P, std::vector<std::unique_ptr<Stmt>> &Out,
               unsigned Slots, unsigned Depth) {
    for (unsigned I = 0; I < Slots; ++I) {
      uint64_t K = Rand.below(100);
      if (Depth < C.MaxDepth && K < C.BranchPercent) {
        auto S = std::make_unique<Stmt>();
        S->Kind = StmtKind::If;
        S->Cnd = numCond(P);
        genBody(P, S->Then, 1 + Rand.below(3), Depth + 1);
        if (Rand.chance(60))
          genBody(P, S->Else, 1 + Rand.below(3), Depth + 1);
        Out.push_back(std::move(S));
        continue;
      }
      K -= C.BranchPercent;
      if (C.AllowLoops && Depth < C.MaxDepth && K < C.LoopPercent) {
        // Bounded counter loop: terminates concretely, widens abstractly.
        std::string Counter = freshName(P, "i");
        auto Init = std::make_unique<Stmt>();
        Init->Kind = StmtKind::Assign;
        Init->Target = Counter;
        Init->E = Expr::makeNum(0, 0);
        Out.push_back(std::move(Init));

        auto Loop = std::make_unique<Stmt>();
        Loop->Kind = StmtKind::While;
        Loop->Cnd = std::make_unique<Cond>();
        Loop->Cnd->Op = RelOp::Lt;
        Loop->Cnd->Lhs = Expr::makeVar(Counter, 0);
        Loop->Cnd->Rhs = Expr::makeNum(Rand.range(2, 6), 0);

        P.Numeric.push_back(Counter);
        genBody(P, Loop->Then, 1 + Rand.below(3), Depth + 1);
        P.Numeric.pop_back();

        auto Step = std::make_unique<Stmt>();
        Step->Kind = StmtKind::Assign;
        Step->Target = Counter;
        Step->E = Expr::makeBinary(BinOp::Add, Expr::makeVar(Counter, 0),
                                   Expr::makeNum(1, 0), 0);
        Loop->Then.push_back(std::move(Step));
        Out.push_back(std::move(Loop));
        continue;
      }
      K -= C.LoopPercent;
      if (K < C.CallPercent && C.NumFunctions > 0) {
        if (C.UseFunctionPointers && Rand.chance(25) &&
            P.FuncIndex == C.NumFunctions) {
          Out.push_back(callStmt(P, 0, /*Indirect=*/true));
          continue;
        }
        unsigned Callee = pickCallee(P.FuncIndex);
        if (Callee < C.NumFunctions) {
          Out.push_back(callStmt(P, Callee));
          continue;
        }
        // Fall through to a plain assignment when no callee is legal.
      } else {
        K -= C.CallPercent;
        if (K < C.PointerPercent && !P.Pointers.empty()) {
          Out.push_back(pointerStmt(P));
          continue;
        }
      }
      Out.push_back(assignStmt(P));
    }
  }

  /// Initializers establishing the def-before-use discipline.
  void genInits(Pools &P, const FunctionDecl &F,
                std::vector<std::unique_ptr<Stmt>> &Out) {
    pickGlobalSubset(P);
    for (unsigned I = 0; I < C.NumericLocals; ++I) {
      std::string Name = numbered("n", I);
      auto S = std::make_unique<Stmt>();
      S->Kind = StmtKind::Assign;
      S->Target = Name;
      if (!F.Params.empty() && Rand.chance(40))
        S->E = Expr::makeVar(F.Params[Rand.below(F.Params.size())], 0);
      else if (Rand.chance(25))
        S->E = Expr::makeInput(0);
      else
        S->E = Expr::makeNum(Rand.range(-8, 8), 0);
      Out.push_back(std::move(S));
      P.Numeric.push_back(Name);
    }
    for (const std::string &Param : F.Params)
      P.Numeric.push_back(Param);
    for (unsigned I = 0; I < C.PointerLocals; ++I) {
      std::string Name = numbered("p", I);
      auto S = std::make_unique<Stmt>();
      if (Rand.chance(25)) {
        S->Kind = StmtKind::Alloc;
        S->Target = Name;
        S->E = Expr::makeNum(Rand.range(1, 8), 0);
      } else {
        S->Kind = StmtKind::Assign;
        S->Target = Name;
        bool Global = !P.Globals.empty() && Rand.chance(40);
        std::string X = Global ? pickGlobal(P)
                               : P.Numeric[Rand.below(P.Numeric.size())];
        S->E = Expr::makeAddrOf(X, 0);
      }
      Out.push_back(std::move(S));
      P.Pointers.push_back(Name);
    }
  }

  FunctionDecl makeFunction(unsigned Index) {
    FunctionDecl F;
    F.Name = funcName(Index);
    for (unsigned I = 0; I < ParamCounts[Index]; ++I)
      F.Params.push_back(numbered("a", I));

    Pools P;
    P.FuncIndex = Index;
    genInits(P, F, F.Body);

    // Forced SCC edge: fi calls f((i+1) % SccGroupSize).
    if (Index < C.SccGroupSize && C.SccGroupSize > 1) {
      unsigned Next = (Index + 1) % C.SccGroupSize;
      // Guard the recursive call so concrete executions terminate.
      auto Guard = std::make_unique<Stmt>();
      Guard->Kind = StmtKind::If;
      Guard->Cnd = std::make_unique<Cond>();
      Guard->Cnd->Op = RelOp::Gt;
      Guard->Cnd->Lhs = Expr::makeVar("g0", 0);
      Guard->Cnd->Rhs = Expr::makeNum(0, 0);
      auto Dec = std::make_unique<Stmt>();
      Dec->Kind = StmtKind::Assign;
      Dec->Target = "g0";
      Dec->E = Expr::makeBinary(BinOp::Sub, Expr::makeVar("g0", 0),
                                Expr::makeNum(1, 0), 0);
      Guard->Then.push_back(std::move(Dec));
      Guard->Then.push_back(callStmt(P, Next));
      Called[Next] = true;
      F.Body.push_back(std::move(Guard));
    }

    genBody(P, F.Body, C.StmtsPerFunction, 0);

    auto Ret = std::make_unique<Stmt>();
    Ret->Kind = StmtKind::Return;
    Ret->E = numExpr(P);
    F.Body.push_back(std::move(Ret));
    return F;
  }

  FunctionDecl makeMain() {
    FunctionDecl F;
    F.Name = "main";
    Pools P;
    P.FuncIndex = C.NumFunctions;
    genInits(P, F, F.Body);

    if (C.UseFunctionPointers && C.NumFunctions > 0) {
      auto S = std::make_unique<Stmt>();
      S->Kind = StmtKind::Assign;
      S->Target = "fp0";
      S->E = Expr::makeVar(funcName(Rand.below(C.NumFunctions)), 0);
      F.Body.push_back(std::move(S));
      if (C.NumFunctions > 1 && Rand.chance(70)) {
        auto Re = std::make_unique<Stmt>();
        Re->Kind = StmtKind::If;
        Re->Cnd = numCond(P);
        auto Set = std::make_unique<Stmt>();
        Set->Kind = StmtKind::Assign;
        Set->Target = "fp0";
        Set->E = Expr::makeVar(funcName(Rand.below(C.NumFunctions)), 0);
        Re->Then.push_back(std::move(Set));
        F.Body.push_back(std::move(Re));
      }
    }

    genBody(P, F.Body, C.StmtsPerFunction, 0);

    // The paper calls procedures unreachable from main explicitly; do the
    // same so every function participates in the analysis.
    for (unsigned J = 0; J < C.NumFunctions; ++J) {
      if (Called[J])
        continue;
      Called[J] = true;
      F.Body.push_back(callStmt(P, J));
    }

    auto Ret = std::make_unique<Stmt>();
    Ret->Kind = StmtKind::Return;
    Ret->E = numExpr(P);
    F.Body.push_back(std::move(Ret));
    return F;
  }

  const GenConfig &C;
  Rng Rand;
  ProgramAST Ast;
  std::vector<unsigned> ParamCounts;
  std::vector<bool> Called;
};

} // namespace

ProgramAST spa::generateProgram(const GenConfig &Config) {
  return Generator(Config).run();
}

std::string spa::generateSource(const GenConfig &Config) {
  return printProgram(generateProgram(Config));
}
