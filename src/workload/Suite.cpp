//===- Suite.cpp - The 16-program benchmark suite --------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "workload/Suite.h"

#include <cstdlib>

using namespace spa;

namespace {

/// Raw per-benchmark shape, before scaling.  Functions and maxSCC are the
/// Table 1 values divided by 8; statements-per-function tracks the
/// original Statements/Functions ratio (divided by 4 to keep function
/// bodies readable).
struct Shape {
  const char *Name;
  unsigned Kloc;       ///< Original LOC (thousands).
  unsigned PaperScc;   ///< Original maxSCC.
  unsigned Funcs;      ///< Scaled function count.
  unsigned Stmts;      ///< Statements per function.
  unsigned Scc;        ///< Scaled SCC group size.
  bool FuncPtrs;
};

const Shape Shapes[] = {
    {"gzip-1.2.4a", 7, 2, 16, 12, 2, false},
    {"bc-1.06", 13, 1, 16, 19, 0, false},
    {"tar-1.13", 20, 13, 27, 14, 3, false},
    {"less-382", 23, 46, 48, 15, 6, false},
    {"make-3.76.1", 27, 57, 24, 18, 7, false},
    {"wget-1.9", 35, 13, 54, 16, 2, true},
    {"screen-4.0.2", 45, 65, 73, 17, 8, false},
    {"a2ps-4.14", 64, 6, 122, 22, 0, true},
    {"sendmail-8.13.6", 130, 60, 94, 25, 7, true},
    {"nethack-3.3.0", 211, 997, 276, 27, 125, false},
    {"vim60", 227, 1668, 346, 14, 208, true},
    {"emacs-22.1", 399, 1554, 423, 15, 194, false},
    // The three giants are additionally compressed (fewer functions and
    // shorter bodies than a pure ratio would give): their transitive
    // access-set volume grows superlinearly with function count — the
    // very effect that cost the paper hours of Dep time — and the bench
    // harness targets minutes, not hours.  Relative ordering and the
    // no-big-SCC structure are preserved.
    {"python-2.5.1", 435, 723, 374, 20, 90, true},
    {"linux-3.0", 710, 493, 700, 6, 62, false},
    {"gimp-2.6", 959, 2, 340, 20, 0, true},
    {"ghostscript-9.00", 1363, 39, 380, 22, 5, false},
};

SuiteEntry makeEntry(const Shape &S, double Scale, uint64_t Seed) {
  SuiteEntry E;
  E.Name = S.Name;
  E.PaperKloc = S.Kloc;
  E.PaperMaxScc = S.PaperScc;
  GenConfig &C = E.Config;
  C.Seed = Seed;
  C.NumFunctions =
      std::max(3u, static_cast<unsigned>(S.Funcs * Scale + 0.5));
  C.StmtsPerFunction = S.Stmts;
  C.NumGlobals = std::max(4u, C.NumFunctions / 4);
  C.SccGroupSize =
      S.Scc > 1 ? std::max(2u, static_cast<unsigned>(S.Scc * Scale + 0.5))
                : 0;
  if (C.SccGroupSize > C.NumFunctions)
    C.SccGroupSize = C.NumFunctions;
  // Random calls stay forward: the callgraph SCC profile is set by the
  // forced SccGroupSize cycle alone, matching the Table 1 maxSCC column.
  C.AllowRecursion = false;
  C.UseFunctionPointers = S.FuncPtrs;
  return E;
}

} // namespace

std::vector<SuiteEntry> spa::paperSuite(double Scale) {
  std::vector<SuiteEntry> Suite;
  uint64_t Seed = 0x5eed;
  for (const Shape &S : Shapes)
    Suite.push_back(makeEntry(S, Scale, Seed++));
  return Suite;
}

std::vector<SuiteEntry> spa::octagonSuite(double Scale) {
  std::vector<SuiteEntry> Suite = paperSuite(Scale);
  Suite.resize(9); // gzip .. sendmail, as in Table 3.
  return Suite;
}

double spa::suiteScaleFromEnv(double Default) {
  const char *Env = std::getenv("SPA_SCALE");
  if (!Env)
    return Default;
  double V = std::atof(Env);
  return V > 0 ? V : Default;
}
