//===- Suite.h - The 16-program benchmark suite ---------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic stand-ins for the paper's 16 open-source benchmarks
/// (Table 1: gzip-1.2.4a ... ghostscript-9.00).  Each entry scales the
/// generator so the suite preserves the paper's *relative* structure:
/// size ratios across programs, statements-per-function, and the
/// callgraph maxSCC profile (the nethack/vim/emacs analogues get large
/// recursive components, which Section 6.1 identifies as the dominant
/// cost driver).  Absolute sizes are scaled down so the whole suite runs
/// on one machine in minutes; set the scale factor to trade time for
/// fidelity.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_WORKLOAD_SUITE_H
#define SPA_WORKLOAD_SUITE_H

#include "workload/Generator.h"

#include <string>
#include <vector>

namespace spa {

/// One synthetic benchmark mirroring a Table 1 row.
struct SuiteEntry {
  std::string Name;      ///< The mirrored program, e.g. "gzip-1.2.4a".
  unsigned PaperKloc;    ///< The original's LOC (for the report).
  unsigned PaperMaxScc;  ///< The original's maxSCC (for the report).
  GenConfig Config;
};

/// The 16-program interval-analysis suite at \p Scale (1.0 = the default
/// laptop-scale calibration; >1 grows programs linearly).
std::vector<SuiteEntry> paperSuite(double Scale = 1.0);

/// The 9 smaller programs Table 3 uses for the octagon analysis.
std::vector<SuiteEntry> octagonSuite(double Scale = 1.0);

/// Reads a scale factor from the SPA_SCALE environment variable
/// (default \p Default: the calibration that keeps the full benchmark
/// suite within a few minutes on one core).
double suiteScaleFromEnv(double Default = 0.25);

} // namespace spa

#endif // SPA_WORKLOAD_SUITE_H
