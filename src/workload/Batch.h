//===- Batch.h - Multi-program batch analysis driver ----------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-batch front-end: analyze K programs across the thread pool, one
/// program per lane (the embarrassingly-parallel outer loop; the
/// analyzer's own parallel phases degrade to inline execution on worker
/// lanes, so nesting is safe).  Per-program results land in input-order
/// slots, so batch output is deterministic regardless of lane scheduling,
/// and throughput is reported as programs/sec via the SPA_BENCH_JSON
/// records of docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_WORKLOAD_BATCH_H
#define SPA_WORKLOAD_BATCH_H

#include "core/Analyzer.h"

#include <string>
#include <vector>

namespace spa {

/// One program of a batch: a display name plus its surface source text,
/// or a pre-serialized spa-ir-v1 snapshot to analyze instead of source.
struct BatchItem {
  BatchItem() = default;
  BatchItem(std::string Name, std::string Source)
      : Name(std::move(Name)), Source(std::move(Source)) {}

  std::string Name;
  std::string Source;
  /// When set, the program comes from this snapshot file and Source is
  /// ignored.  The bytes are shipped to isolated children *unvalidated*:
  /// a corrupt file is the child's loader's problem and classifies as
  /// BuildError, the snapshot equivalent of unparseable source.
  std::string SnapshotPath;
  /// Expected peak RSS (KiB; 0 = unknown).  The shard coordinator's
  /// memory-aware bin-packing serializes items at or above its heavy
  /// threshold so they cannot OOM each other.
  uint64_t RssHintKiB = 0;
};

/// Failure taxonomy of one batch item (docs/ROBUSTNESS.md).
enum class BatchOutcome {
  Ok,         ///< Full-precision analysis completed.
  Degraded,   ///< Budget tripped; result is sound but coarse (usable).
  BuildError, ///< The source did not build.
  Timeout,    ///< Analyzer time limit, or the isolation kill limit.
  Oom,        ///< Isolated child exceeded its hard memory cap.
  Crash,      ///< Isolated child died on a signal or unexpected exit.
  Stalled,    ///< Watchdog: fixpoint heartbeats stopped (a hang with a
              ///< diagnosis, unlike Timeout's bare kill at the limit).
};

const char *batchOutcomeName(BatchOutcome O);

/// Outcome of one batch item (deterministic: independent of Jobs).
struct BatchItemResult {
  std::string Name;
  /// The item produced a usable result: Outcome is Ok or Degraded.
  bool Ok = false;
  BatchOutcome Outcome = BatchOutcome::Crash;
  std::string Error; ///< Failure reason when !Ok.
  bool TimedOut = false;
  /// The producing run degraded under its resource budget (provenance
  /// bit; also set on an adopted lower-tier retry result).
  bool Degraded = false;
  /// A failed first attempt was retried at a tightened budget tier.
  bool Retried = false;
  unsigned Checks = 0;      ///< Dereferences checked (with Check).
  unsigned Alarms = 0;      ///< Checker alarms (with Check).
  /// Wall time summed over this item's attempts (first pass + retry).
  double Seconds = 0;
  uint64_t PeakRssKiB = 0;  ///< Child's peak RSS (isolated runs only).
  /// Cooperative budget steps the (first-pass) run consumed — the
  /// per-item cost signal the retry pass sorts on.  0 when the run had
  /// no budget or died before reporting (e.g. a crashed child).
  uint64_t BudgetSteps = 0;
  /// Ledger totals of the adopted run's main fixpoint (the per-item cost
  /// rollup batch --ledger-out reports).  All zero with -DSPA_OBS=OFF or
  /// when the item produced no run (build error, crashed child).
  uint64_t LedgerVisits = 0;
  uint64_t LedgerWidenings = 0;
  uint64_t LedgerGrowth = 0;
  uint64_t LedgerTimeMicros = 0;
  /// Human rendering of the postmortem summary a dying isolated child
  /// shipped over the result pipe ("stall in partition 3, worklist depth
  /// 17, ..."); empty when the child died silently or completed.
  std::string CrashNote;
  /// A postmortem summary arrived for this item (CrashNote is set, and
  /// with a postmortem directory configured a .pm.json file exists).
  bool HasPostmortem = false;
};

struct BatchOptions {
  AnalyzerOptions Analyzer;
  /// Also run the buffer-overrun checker per program (forces the
  /// no-bypass graph the checker needs).
  bool Check = false;
  /// Fault isolation: fork one child per program so a crash, OOM kill,
  /// or hang loses only that item, never the rest of the batch.
  bool Isolate = false;
  /// Hard wall-clock kill limit per isolated child, in seconds.  0
  /// derives 4 * max(Budget.DeadlineSec, TimeLimitSec) + 1 when either
  /// is set (a cooperative deadline that far overdue means the child is
  /// stuck); unlimited when neither is.
  double KillLimitSec = 0;
  /// Hard address-space cap per isolated child (KiB; 0 = none).  Unlike
  /// Budget.MemLimitKiB this is enforced by the kernel: blowing it is an
  /// Oom outcome, not a graceful degradation.
  uint64_t HardMemLimitKiB = 0;
  /// Stall watchdog interval for isolated children, in milliseconds
  /// (0 = no watchdog).  A child whose fixpoint stops heartbeating for
  /// two consecutive intervals is killed with a stall postmortem and
  /// classified Stalled instead of waiting for the kill limit.
  uint32_t WatchdogMs = 0;
  /// Directory for per-item crash/stall/OOM postmortem files
  /// (`<dir>/<item-name>.pm.json`, schema spa-postmortem-v1).  Empty =
  /// no files; pipe summaries still flow back to the parent.
  std::string PostmortemDir;
  /// Isolated children receive a serialized IR snapshot over a memfd
  /// instead of rebuilding from source: the parent parses and lowers each
  /// program exactly once (first pass and retry share the bytes), and the
  /// child only runs the strict snapshot loader.  Off = the pre-snapshot
  /// behavior, kept for the fork-with-rebuild bench ablation
  /// (snapshot_speedup in BENCH_pipeline.json).
  bool UseSnapshots = true;
  /// Memory-aware retry serialization (KiB; 0 = off): retryable items
  /// whose first attempt peaked at or above this RSS rerun sequentially
  /// before the parallel retry pass, so two memory-heavy retries can
  /// never OOM each other.
  uint64_t SerializeRetryRssKiB = 0;
  /// Retry a Timeout/Oom/Crash/Stalled item once with a tightened budget
  /// (halved deadline and step limit; a step limit is imposed if there
  /// was none) and adopt the retry result when it is usable.  Retries
  /// run as a dedicated second pass over the pool, ordered by the
  /// first pass's per-item BudgetSteps descending, so the heaviest
  /// retries start first instead of straggling at the batch tail.
  bool RetryAtLowerTier = true;
};

struct BatchResult {
  std::vector<BatchItemResult> Items; ///< In input order.
  double Seconds = 0;                 ///< Whole-batch wall time.

  size_t numFailed() const; ///< Items without a usable result (!Ok).
  size_t numDegraded() const;
  size_t countOutcome(BatchOutcome O) const;
  double programsPerSec() const {
    return Seconds > 0 ? static_cast<double>(Items.size()) / Seconds : 0;
  }
};

/// Process exit code for a batch run: 0 = every item completed at full
/// precision, 3 = all usable but some degraded, 2 = at least one item
/// failed (build error, timeout, OOM, or crash).
int exitCodeFor(const BatchResult &R);

/// The retry tier: \p A with a tightened budget (halved deadline and
/// step limit; a step limit imposed if there was none) that forces early
/// sound degradation instead of repeating whatever exhausted the first
/// attempt.  Shared by the batch retry pass and the shard coordinator.
AnalyzerOptions lowerTierOptions(const AnalyzerOptions &A);

/// Analyzes every item, fanning programs out over Analyzer.Jobs pool
/// lanes, and appends one "batch" bench record (SPA_BENCH_JSON) with the
/// batch.* gauges.
BatchResult runBatch(const std::vector<BatchItem> &Items,
                     const BatchOptions &Opts);

/// The paper's 16-program suite as a batch (generated sources).
std::vector<BatchItem> suiteBatch(double Scale);

/// Loads a batch list file: one .spa program path per line; blank lines
/// and '#' comments are skipped; relative paths resolve against the list
/// file's directory.  Returns false with \p Error set on I/O failure.
bool loadBatchFile(const std::string &Path, std::vector<BatchItem> &Items,
                   std::string &Error);

} // namespace spa

#endif // SPA_WORKLOAD_BATCH_H
