//===- Batch.h - Multi-program batch analysis driver ----------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-batch front-end: analyze K programs across the thread pool, one
/// program per lane (the embarrassingly-parallel outer loop; the
/// analyzer's own parallel phases degrade to inline execution on worker
/// lanes, so nesting is safe).  Per-program results land in input-order
/// slots, so batch output is deterministic regardless of lane scheduling,
/// and throughput is reported as programs/sec via the SPA_BENCH_JSON
/// records of docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_WORKLOAD_BATCH_H
#define SPA_WORKLOAD_BATCH_H

#include "core/Analyzer.h"

#include <string>
#include <vector>

namespace spa {

/// One program of a batch: a display name plus its surface source text.
struct BatchItem {
  std::string Name;
  std::string Source;
};

/// Outcome of one batch item (deterministic: independent of Jobs).
struct BatchItemResult {
  std::string Name;
  bool Ok = false;
  std::string Error; ///< Build failure reason when !Ok.
  bool TimedOut = false;
  unsigned Checks = 0; ///< Dereferences checked (with Check).
  unsigned Alarms = 0; ///< Checker alarms (with Check).
  double Seconds = 0;  ///< This item's analysis wall time.
};

struct BatchOptions {
  AnalyzerOptions Analyzer;
  /// Also run the buffer-overrun checker per program (forces the
  /// no-bypass graph the checker needs).
  bool Check = false;
};

struct BatchResult {
  std::vector<BatchItemResult> Items; ///< In input order.
  double Seconds = 0;                 ///< Whole-batch wall time.

  size_t numFailed() const;
  double programsPerSec() const {
    return Seconds > 0 ? static_cast<double>(Items.size()) / Seconds : 0;
  }
};

/// Analyzes every item, fanning programs out over Analyzer.Jobs pool
/// lanes, and appends one "batch" bench record (SPA_BENCH_JSON) with the
/// batch.* gauges.
BatchResult runBatch(const std::vector<BatchItem> &Items,
                     const BatchOptions &Opts);

/// The paper's 16-program suite as a batch (generated sources).
std::vector<BatchItem> suiteBatch(double Scale);

/// Loads a batch list file: one .spa program path per line; blank lines
/// and '#' comments are skipped; relative paths resolve against the list
/// file's directory.  Returns false with \p Error set on I/O failure.
bool loadBatchFile(const std::string &Path, std::vector<BatchItem> &Items,
                   std::string &Error);

} // namespace spa

#endif // SPA_WORKLOAD_BATCH_H
