//===- ShardCoordinator.cpp - Work-stealing multi-process shard driver ---------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "workload/ShardCoordinator.h"

#include "core/Checker.h"
#include "ir/Builder.h"
#include "ir/Snapshot.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "obs/MetricsSink.h"
#include "obs/Trace.h"
#include "support/Fault.h"
#include "support/Resource.h"
#include "support/ThreadPool.h"

#include <cstring>
#include <deque>
#include <fstream>
#include <optional>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace spa;

namespace {

constexpr uint32_t ShutdownIndex = 0xFFFFFFFFu;
/// A result frame bigger than this is a protocol violation, not a result.
constexpr uint32_t MaxFrameBytes = 1u << 24;
/// Dispatch frame: u32 index, u32 tier, u64 parent span id (the
/// coordinator's dispatch span, under which the worker roots its spans).
constexpr size_t DispatchFrameBytes = 16;
/// Per-item ceiling on the serialized span section a worker ships in its
/// result frame (newest spans win past it).
constexpr size_t MaxResultSpanBytes = 256 * 1024;

//===----------------------------------------------------------------------===//
// Result frame encoding (worker -> parent)
//===----------------------------------------------------------------------===//

void putU32(std::vector<uint8_t> &B, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    B.push_back(static_cast<uint8_t>(V >> (8 * I)));
}
void putU64(std::vector<uint8_t> &B, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    B.push_back(static_cast<uint8_t>(V >> (8 * I)));
}
void putF64(std::vector<uint8_t> &B, double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, 8);
  putU64(B, Bits);
}

struct FrameCursor {
  const uint8_t *Data;
  size_t Size, Pos = 0;
  bool Fail = false;

  bool need(size_t N) {
    if (Fail || Size - Pos < N) {
      Fail = true;
      return false;
    }
    return true;
  }
  uint8_t u8() { return need(1) ? Data[Pos++] : 0; }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos++]) << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos++]) << (8 * I);
    return V;
  }
  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, 8);
    return V;
  }
  std::string str() {
    uint32_t N = u32();
    if (!need(N))
      return {};
    std::string S(reinterpret_cast<const char *>(Data + Pos), N);
    Pos += N;
    return S;
  }
};

std::vector<uint8_t> encodeResult(uint32_t Index, const BatchItemResult &R,
                                  const std::vector<uint8_t> &SpanBuf) {
  std::vector<uint8_t> B;
  putU32(B, Index);
  B.push_back(R.Ok);
  B.push_back(static_cast<uint8_t>(R.Outcome));
  B.push_back(R.TimedOut);
  B.push_back(R.Degraded);
  putU32(B, R.Checks);
  putU32(B, R.Alarms);
  putF64(B, R.Seconds);
  putU64(B, R.PeakRssKiB);
  putU64(B, R.BudgetSteps);
  putU64(B, R.LedgerVisits);
  putU64(B, R.LedgerWidenings);
  putU64(B, R.LedgerGrowth);
  putU64(B, R.LedgerTimeMicros);
  putU32(B, static_cast<uint32_t>(R.Error.size()));
  B.insert(B.end(), R.Error.begin(), R.Error.end());
  // Trailing span section: the worker's locally recorded trace spans
  // (obs/Trace.h drainSerialized format; zero length = not tracing).
  putU32(B, static_cast<uint32_t>(SpanBuf.size()));
  B.insert(B.end(), SpanBuf.begin(), SpanBuf.end());
  return B;
}

bool decodeResult(const uint8_t *Data, size_t Size, uint32_t &Index,
                  BatchItemResult &R, std::vector<uint8_t> &SpanBuf) {
  FrameCursor C{Data, Size};
  Index = C.u32();
  R.Ok = C.u8();
  uint8_t Outcome = C.u8();
  if (Outcome > static_cast<uint8_t>(BatchOutcome::Stalled))
    return false;
  R.Outcome = static_cast<BatchOutcome>(Outcome);
  R.TimedOut = C.u8();
  R.Degraded = C.u8();
  R.Checks = C.u32();
  R.Alarms = C.u32();
  R.Seconds = C.f64();
  R.PeakRssKiB = C.u64();
  R.BudgetSteps = C.u64();
  R.LedgerVisits = C.u64();
  R.LedgerWidenings = C.u64();
  R.LedgerGrowth = C.u64();
  R.LedgerTimeMicros = C.u64();
  R.Error = C.str();
  uint32_t SpanLen = C.u32();
  if (!C.Fail && SpanLen > 0 && C.need(SpanLen)) {
    SpanBuf.assign(C.Data + C.Pos, C.Data + C.Pos + SpanLen);
    C.Pos += SpanLen;
  }
  return !C.Fail && C.Pos == C.Size;
}

bool writeAll(int Fd, const uint8_t *Data, size_t Size) {
  size_t Off = 0;
  while (Off < Size) {
    ssize_t N = write(Fd, Data + Off, Size - Off);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool readAll(int Fd, uint8_t *Data, size_t Size) {
  size_t Off = 0;
  while (Off < Size) {
    ssize_t N = read(Fd, Data + Off, Size - Off);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Worker side
//===----------------------------------------------------------------------===//

/// One item inside a shard worker: strict-load the inherited snapshot,
/// analyze, check, classify.  Mirrors the batch's in-process attempt,
/// with the loader standing where the frontend stood.
void runSnapshotItem(const std::vector<uint8_t> &Snap,
                     const BatchOptions &Opts, const AnalyzerOptions &AOpts,
                     BatchItemResult &R) {
  SnapshotLoadResult L = loadSnapshot(Snap);
  if (!L.ok()) {
    R.Error = L.Error.str();
    R.Outcome = BatchOutcome::BuildError;
    return;
  }
  AnalysisRun Run = analyzeProgram(*L.Prog, AOpts);
  R.TimedOut = Run.timedOut();
  R.Degraded = Run.degraded();
  R.BudgetSteps = Run.BudgetSteps;
  if (Run.Ledger) {
    obs::PointCost T = Run.Ledger->totals();
    R.LedgerVisits = T.Visits;
    R.LedgerWidenings = T.Widenings;
    R.LedgerGrowth = T.Growth;
    R.LedgerTimeMicros = T.TimeMicros;
  }
  if (Opts.Check && !R.TimedOut) {
    CheckerSummary S = checkBufferOverruns(*L.Prog, Run);
    R.Checks = static_cast<unsigned>(S.Checks.size());
    R.Alarms = S.numAlarms();
  }
  if (R.TimedOut) {
    R.Outcome = BatchOutcome::Timeout;
    return;
  }
  R.Outcome = R.Degraded ? BatchOutcome::Degraded : BatchOutcome::Ok;
  R.Ok = true;
}

/// The worker main loop: pull a dispatch frame, run the item, push the
/// result frame, repeat until shutdown.  Never returns.
[[noreturn]] void workerLoop(unsigned Shard, int DispatchFd, int ResultFd,
                             const std::vector<std::vector<uint8_t>> &Snaps,
                             const std::vector<std::string> &Names,
                             const BatchOptions &Opts,
                             const AnalyzerOptions &AOpts,
                             const FaultPlan &Plan) {
  // The fault plan arms for the worker's whole life under the shard's
  // name, so SPA_FAULT=crash@shardloop:shard0 kills exactly worker 0 —
  // the reassignment tests' deterministic murder weapon.
  FaultScope Scope(Plan, "shard" + std::to_string(Shard));
  AnalyzerOptions WA = AOpts;
  WA.Jobs = 1; // One lane per worker; parallelism is the worker count.
  AnalyzerOptions Lower = lowerTierOptions(WA);
  for (;;) {
    uint8_t Frame[DispatchFrameBytes];
    if (!readAll(DispatchFd, Frame, sizeof(Frame)))
      _exit(0); // Parent died or closed the pipe: nothing left to do.
    uint32_t Index = 0, Tier = 0;
    uint64_t ParentSpan = 0;
    for (int I = 0; I < 4; ++I) {
      Index |= static_cast<uint32_t>(Frame[I]) << (8 * I);
      Tier |= static_cast<uint32_t>(Frame[4 + I]) << (8 * I);
    }
    for (int I = 0; I < 8; ++I)
      ParentSpan |= static_cast<uint64_t>(Frame[8 + I]) << (8 * I);
    if (Index == ShutdownIndex)
      _exit(0);
    maybeInjectFault("shardloop");
    if (Index >= Snaps.size())
      _exit(1); // Protocol violation; die loudly, parent reassigns.
    BatchItemResult R;
    R.Name = Names[Index];
    obs::Tracer::global().setProcessParent(ParentSpan);
    std::vector<uint8_t> SpanBuf;
    Timer ItemClock;
    {
      // The worker's analysis spans (phases, per-procedure dep builds,
      // fixpoint) nest under this item-root span, which itself parents
      // to the coordinator's dispatch span from the frame.
      SPA_OBS_TRACE("shard.analyze:" + R.Name);
      runSnapshotItem(Snaps[Index], Opts, Tier ? Lower : WA, R);
    }
    R.Seconds = ItemClock.seconds();
    R.PeakRssKiB = currentPeakRssKiB();
    if (obs::Tracer::global().enabled())
      SpanBuf = obs::Tracer::global().drainSerialized(MaxResultSpanBytes);
    std::vector<uint8_t> Payload = encodeResult(Index, R, SpanBuf);
    std::vector<uint8_t> Out;
    putU32(Out, static_cast<uint32_t>(Payload.size()));
    Out.insert(Out.end(), Payload.begin(), Payload.end());
    if (!writeAll(ResultFd, Out.data(), Out.size()))
      _exit(0);
  }
}

//===----------------------------------------------------------------------===//
// Parent side
//===----------------------------------------------------------------------===//

struct WorkerHandle {
  pid_t Pid = -1;
  int DispatchFd = -1; ///< Parent writes dispatch frames here.
  int ResultFd = -1;   ///< Parent reads result frames here.
  bool Alive = false;
  bool ShutdownSent = false;
  int Item = -1;       ///< In-flight item index (-1 = idle).
  uint32_t Tier = 0;
  uint64_t SpanId = 0;     ///< Dispatch span of the in-flight item.
  double DispatchTs = 0;   ///< obsNowMicros at dispatch (span start).
  std::vector<uint8_t> Buf; ///< Partial result frame accumulator.
};

const char *shardEngineName(EngineKind E) {
  switch (E) {
  case EngineKind::Vanilla:
    return "vanilla";
  case EngineKind::Base:
    return "base";
  case EngineKind::Sparse:
    return "sparse";
  }
  return "unknown";
}

} // namespace

ShardRunResult spa::runSharded(const std::vector<BatchItem> &Items,
                               const ShardOptions &Opts) {
  ShardRunResult Result;
  Result.Batch.Items.resize(Items.size());
  Result.Timing.resize(Items.size());
  for (size_t I = 0; I < Items.size(); ++I)
    Result.Batch.Items[I].Name = Items[I].Name;
  if (Items.empty())
    return Result;

  AnalyzerOptions AOpts = Opts.Batch.Analyzer;
  if (Opts.Batch.Check)
    AOpts.Dep.Bypass = false; // The checker reads input buffers.
  unsigned NumWorkers = std::max(1u, Opts.Shards);
  NumWorkers = std::min<unsigned>(NumWorkers, Items.size());
  FaultPlan Plan = FaultPlan::fromEnv();
  Timer Clock;

  // Root span of the sharded run: dispatch/steal spans parent here, and
  // worker-side item spans parent to the dispatch spans, so the merged
  // Chrome trace is one tree rooted at the coordinator.
  obs::TraceScope RunSpan(obs::Tracer::global().enabled() ? "shard.run"
                                                          : std::string());
  uint64_t RunSpanId = RunSpan.spanId();

  // Phase 1: serialize every program once, in parallel, before any fork —
  // the workers inherit the bytes copy-on-write, so "shipping" an item is
  // an 8-byte index frame.  Parent-side build failures classify here and
  // never enter the queue.
  std::vector<std::vector<uint8_t>> Snaps(Items.size());
  std::vector<std::string> Names(Items.size());
  std::vector<uint8_t> BuildFailed(Items.size(), 0);
  unsigned PoolJobs = AOpts.Jobs ? AOpts.Jobs : ThreadPool::defaultJobs();
  ThreadPool::global().parallelFor(Items.size(), PoolJobs, [&](size_t I) {
    SPA_OBS_TRACE("shard.serialize:" + Items[I].Name);
    Names[I] = Items[I].Name;
    const BatchItem &It = Items[I];
    if (!It.SnapshotPath.empty()) {
      // Raw, unvalidated: the worker's strict loader is the boundary and
      // a corrupt file costs one BuildError item, not the run.
      std::ifstream In(It.SnapshotPath, std::ios::binary);
      if (!In) {
        BuildFailed[I] = 1;
        Result.Batch.Items[I].Outcome = BatchOutcome::BuildError;
        Result.Batch.Items[I].Error = "cannot read snapshot " + It.SnapshotPath;
        return;
      }
      Snaps[I].assign(std::istreambuf_iterator<char>(In),
                      std::istreambuf_iterator<char>());
      return;
    }
    BuildResult Built = buildProgramFromSource(It.Source);
    if (!Built.ok()) {
      BuildFailed[I] = 1;
      Result.Batch.Items[I].Outcome = BatchOutcome::BuildError;
      Result.Batch.Items[I].Error = Built.Error;
      return;
    }
    Snaps[I] = saveSnapshot(*Built.Prog);
  });

  // Phase 2: fork the workers.
  std::vector<WorkerHandle> Workers(NumWorkers);
  for (unsigned W = 0; W < NumWorkers; ++W) {
    int Dispatch[2], Res[2];
    if (pipe(Dispatch) != 0 || pipe(Res) != 0) {
      // Out of fds: run with however many workers we managed.
      NumWorkers = W;
      Workers.resize(NumWorkers);
      break;
    }
    pid_t Pid = fork();
    if (Pid == 0) {
      // Child: keep only this worker's two pipe ends.
      close(Dispatch[1]);
      close(Res[0]);
      for (unsigned P = 0; P < W; ++P) {
        close(Workers[P].DispatchFd);
        close(Workers[P].ResultFd);
      }
      obs::journalResetForChild();
      // Span hygiene after fork: drop the parent's buffered spans; the
      // per-item process parent arrives in each dispatch frame.
      obs::Tracer::global().resetForChild(RunSpanId);
      workerLoop(W, Dispatch[0], Res[1], Snaps, Names, Opts.Batch, AOpts,
                 Plan);
    }
    close(Dispatch[0]);
    close(Res[1]);
    Workers[W].Pid = Pid;
    Workers[W].DispatchFd = Dispatch[1];
    Workers[W].ResultFd = Res[0];
    Workers[W].Alive = Pid > 0;
    if (Pid < 0) {
      close(Dispatch[1]);
      close(Res[0]);
      Workers[W].DispatchFd = Workers[W].ResultFd = -1;
    }
  }

  // A dead worker's dispatch pipe raises SIGPIPE on write; we want the
  // EPIPE errno instead, handled as a death.
  struct sigaction IgnorePipe {}, OldPipe {};
  IgnorePipe.sa_handler = SIG_IGN;
  sigaction(SIGPIPE, &IgnorePipe, &OldPipe);

  // Phase 3: the dealer loop.
  std::deque<std::pair<uint32_t, uint32_t>> Queue; // (index, tier)
  for (uint32_t I = 0; I < Items.size(); ++I)
    if (!BuildFailed[I])
      Queue.emplace_back(I, 0);
  size_t Outstanding = 0;
  bool HeavyInFlight = false;
  unsigned Reassigned = 0;
  uint64_t HeavyCount = 0;
  // First BatchItemResult of an item whose retry is pending: kept so a
  // failed retry restores the original classification (same contract as
  // runBatch's retry pass).
  std::vector<std::optional<BatchItemResult>> FirstTry(Items.size());

  auto IsHeavy = [&](uint32_t I) {
    return Opts.HeavyRssKiB && Items[I].RssHintKiB >= Opts.HeavyRssKiB;
  };
  auto HomeShard = [&](uint32_t I) {
    return static_cast<unsigned>(static_cast<uint64_t>(I) * NumWorkers /
                                 Items.size());
  };
  auto Retryable = [](BatchOutcome O) {
    return O == BatchOutcome::Timeout || O == BatchOutcome::Oom ||
           O == BatchOutcome::Crash || O == BatchOutcome::Stalled;
  };

  auto MarkDead = [&](WorkerHandle &W) {
    if (!W.Alive)
      return;
    W.Alive = false;
    bool Unexpected = !W.ShutdownSent;
    if (Unexpected)
      ++Result.WorkerDeaths;
    SPA_OBS_JOURNAL(ShardWorkerExit, static_cast<unsigned>(&W - &Workers[0]),
                    Unexpected ? 1 : 0);
    close(W.DispatchFd);
    close(W.ResultFd);
    W.DispatchFd = W.ResultFd = -1;
    if (W.Pid > 0)
      waitpid(W.Pid, nullptr, 0);
    if (W.Item >= 0) {
      uint32_t I = static_cast<uint32_t>(W.Item);
      --Outstanding;
      if (IsHeavy(I))
        HeavyInFlight = false;
      if (Result.Timing[I].Assignments < NumWorkers) {
        // Front of the queue: a reassigned item has already waited once.
        Queue.emplace_front(I, W.Tier);
        ++Reassigned;
      } else {
        BatchItemResult &R = Result.Batch.Items[I];
        R.Outcome = BatchOutcome::Crash;
        R.Ok = false;
        R.Error = "shard worker died (" +
                  std::to_string(Result.Timing[I].Assignments) +
                  " assignments)";
      }
      W.Item = -1;
    }
  };

  auto TryDispatch = [&](unsigned WIdx) {
    WorkerHandle &W = Workers[WIdx];
    if (!W.Alive || W.Item >= 0)
      return;
    // Pull the first dispatchable item: heavy items wait for the single
    // heavy token, everything else goes in queue order.
    for (auto It = Queue.begin(); It != Queue.end(); ++It) {
      uint32_t I = It->first, Tier = It->second;
      if (IsHeavy(I) && HeavyInFlight)
        continue;
      Queue.erase(It);
      uint64_t Span = obs::Tracer::global().enabled()
                          ? obs::Tracer::global().allocSpanId()
                          : 0;
      uint8_t Frame[DispatchFrameBytes];
      for (int K = 0; K < 4; ++K) {
        Frame[K] = static_cast<uint8_t>(I >> (8 * K));
        Frame[4 + K] = static_cast<uint8_t>(Tier >> (8 * K));
      }
      for (int K = 0; K < 8; ++K)
        Frame[8 + K] = static_cast<uint8_t>(Span >> (8 * K));
      if (!writeAll(W.DispatchFd, Frame, sizeof(Frame))) {
        Queue.emplace_front(I, Tier);
        MarkDead(W);
        return;
      }
      W.Item = static_cast<int>(I);
      W.Tier = Tier;
      W.SpanId = Span;
      W.DispatchTs = obs::obsNowMicros();
      ++Outstanding;
      if (IsHeavy(I)) {
        HeavyInFlight = true;
        ++HeavyCount;
      }
      Result.Timing[I].DispatchSeconds = Clock.seconds();
      Result.Timing[I].Assignments += 1;
      SPA_OBS_JOURNAL(ShardDispatch, I, WIdx);
      return;
    }
  };

  auto OnResult = [&](unsigned WIdx, uint32_t Index, BatchItemResult &&R) {
    WorkerHandle &W = Workers[WIdx];
    if (Index >= Items.size() || W.Item != static_cast<int>(Index))
      return; // Stale or corrupt frame; the poll loop resyncs on EOF.
    W.Item = -1;
    --Outstanding;
    if (IsHeavy(Index))
      HeavyInFlight = false;
    Result.Timing[Index].DoneSeconds = Clock.seconds();
    Result.Timing[Index].Shard = WIdx;
    bool Stolen = HomeShard(Index) != WIdx;
    if (Stolen)
      ++Result.Steals;
    if (W.SpanId != 0) {
      // Close the coordinator-side dispatch span now that the result is
      // back; the worker's shard.analyze span nests under it.
      obs::Tracer::global().addSpan(
          std::string(Stolen ? "shard.steal:" : "shard.dispatch:") +
              Result.Batch.Items[Index].Name,
          W.DispatchTs, obs::obsNowMicros() - W.DispatchTs, W.SpanId,
          RunSpanId);
      W.SpanId = 0;
    }

    BatchItemResult &Slot = Result.Batch.Items[Index];
    if (W.Tier == 0 && Opts.Batch.RetryAtLowerTier && Retryable(R.Outcome)) {
      // First attempt failed retryably: bank it and re-enqueue at the
      // tightened tier (back of the queue; the batch is still draining).
      SPA_OBS_COUNT("batch.retries", 1);
      FirstTry[Index] = std::move(R);
      Queue.emplace_back(Index, 1);
      return;
    }
    if (FirstTry[Index]) {
      // This was the retry.  Adopt it when usable, else keep the first
      // classification; either way the item counts as retried and its
      // wall time spans both attempts.
      BatchItemResult First = std::move(*FirstTry[Index]);
      FirstTry[Index].reset();
      double Total = First.Seconds + R.Seconds;
      if (!R.Ok)
        R = std::move(First);
      R.Retried = true;
      R.Seconds = Total;
    }
    R.Name = Slot.Name;
    Slot = std::move(R);
  };

  for (;;) {
    unsigned AliveCount = 0;
    for (unsigned W = 0; W < NumWorkers; ++W)
      if (Workers[W].Alive) {
        ++AliveCount;
        TryDispatch(W);
      }
    if (Outstanding == 0 && Queue.empty())
      break;
    if (AliveCount == 0) {
      // Every worker is gone with work still pending: classify the
      // leftovers so the caller sees failures, not silence.
      for (auto &[I, Tier] : Queue) {
        (void)Tier;
        BatchItemResult &R = Result.Batch.Items[I];
        if (FirstTry[I]) {
          R = std::move(*FirstTry[I]);
          R.Retried = true;
        } else if (R.Outcome == BatchOutcome::BuildError) {
          // Keep the parent-side classification.
        } else {
          R.Outcome = BatchOutcome::Crash;
          R.Error = "no shard workers left";
        }
      }
      Queue.clear();
      break;
    }

    std::vector<pollfd> Fds;
    std::vector<unsigned> FdWorker;
    for (unsigned W = 0; W < NumWorkers; ++W)
      if (Workers[W].Alive) {
        Fds.push_back({Workers[W].ResultFd, POLLIN, 0});
        FdWorker.push_back(W);
      }
    int N = poll(Fds.data(), Fds.size(), 1000);
    if (N <= 0)
      continue;
    for (size_t F = 0; F < Fds.size(); ++F) {
      if (!(Fds[F].revents & (POLLIN | POLLHUP | POLLERR)))
        continue;
      WorkerHandle &W = Workers[FdWorker[F]];
      uint8_t Chunk[1 << 16];
      ssize_t Got = read(W.ResultFd, Chunk, sizeof(Chunk));
      if (Got <= 0) {
        if (Got < 0 && errno == EINTR)
          continue;
        MarkDead(W);
        continue;
      }
      W.Buf.insert(W.Buf.end(), Chunk, Chunk + Got);
      while (W.Buf.size() >= 4) {
        uint32_t Len = 0;
        for (int K = 0; K < 4; ++K)
          Len |= static_cast<uint32_t>(W.Buf[K]) << (8 * K);
        if (Len > MaxFrameBytes) {
          MarkDead(W); // Protocol violation: resync by reassignment.
          break;
        }
        if (W.Buf.size() < 4 + static_cast<size_t>(Len))
          break;
        uint32_t Index = 0;
        BatchItemResult R;
        std::vector<uint8_t> SpanBuf;
        if (decodeResult(W.Buf.data() + 4, Len, Index, R, SpanBuf)) {
          if (!SpanBuf.empty())
            obs::Tracer::global().ingestSerialized(SpanBuf.data(),
                                                   SpanBuf.size());
          OnResult(FdWorker[F], Index, std::move(R));
        }
        W.Buf.erase(W.Buf.begin(), W.Buf.begin() + 4 + Len);
      }
    }
  }

  // Phase 4: shutdown and reap.
  uint8_t Bye[DispatchFrameBytes] = {0};
  for (int K = 0; K < 4; ++K)
    Bye[K] = static_cast<uint8_t>(ShutdownIndex >> (8 * K));
  for (WorkerHandle &W : Workers) {
    if (!W.Alive)
      continue;
    W.ShutdownSent = true;
    writeAll(W.DispatchFd, Bye, sizeof(Bye));
    close(W.DispatchFd);
    close(W.ResultFd);
    W.DispatchFd = W.ResultFd = -1;
    if (W.Pid > 0)
      waitpid(W.Pid, nullptr, 0);
    W.Alive = false;
  }
  sigaction(SIGPIPE, &OldPipe, nullptr);
  Result.Batch.Seconds = Clock.seconds();

  obs::Registry::global().resetGauges();
  SPA_OBS_GAUGE_MAX("mem.peak_rss_kib", currentPeakRssKiB());
  SPA_OBS_GAUGE_SET("shard.workers", NumWorkers);
  SPA_OBS_GAUGE_SET("shard.items", Items.size());
  SPA_OBS_GAUGE_SET("shard.steals", Result.Steals);
  SPA_OBS_GAUGE_SET("shard.deaths", Result.WorkerDeaths);
  SPA_OBS_GAUGE_SET("shard.reassigned", Reassigned);
  SPA_OBS_GAUGE_SET("shard.heavy.serialized", HeavyCount);
  SPA_OBS_GAUGE_SET("batch.programs", Items.size());
  SPA_OBS_GAUGE_SET("batch.failed", Result.Batch.numFailed());
  SPA_OBS_GAUGE_SET("batch.seconds", Result.Batch.Seconds);
  obs::MetricsSink::appendBenchRecord("shard", shardEngineName(AOpts.Engine),
                                      Result.Batch.numFailed() == 0);
  return Result;
}
