//===- Batch.cpp - Multi-program batch analysis driver --------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "workload/Batch.h"

#include "core/Checker.h"
#include "ir/Builder.h"
#include "obs/Metrics.h"
#include "obs/MetricsSink.h"
#include "support/Resource.h"
#include "support/ThreadPool.h"
#include "workload/Suite.h"

#include <fstream>
#include <sstream>

using namespace spa;

size_t BatchResult::numFailed() const {
  size_t N = 0;
  for (const BatchItemResult &R : Items)
    N += !R.Ok;
  return N;
}

static const char *batchEngineName(EngineKind E) {
  switch (E) {
  case EngineKind::Vanilla:
    return "vanilla";
  case EngineKind::Base:
    return "base";
  case EngineKind::Sparse:
    return "sparse";
  }
  return "unknown";
}

BatchResult spa::runBatch(const std::vector<BatchItem> &Items,
                          const BatchOptions &Opts) {
  BatchResult Result;
  Result.Items.resize(Items.size());

  AnalyzerOptions AOpts = Opts.Analyzer;
  if (Opts.Check)
    AOpts.Dep.Bypass = false; // The checker reads input buffers.
  unsigned Jobs = AOpts.Jobs ? AOpts.Jobs : ThreadPool::defaultJobs();

  Timer Clock;
  // One program per index: each lane builds and analyzes its own Program
  // (no shared mutable state beyond the obs registry, whose counters are
  // atomic).  Inside a worker lane the analyzer's parallel phases run
  // inline, so the batch does not oversubscribe the pool.
  ThreadPool::global().parallelFor(Items.size(), Jobs, [&](size_t I) {
    BatchItemResult &R = Result.Items[I];
    R.Name = Items[I].Name;
    Timer ItemClock;
    BuildResult Built = buildProgramFromSource(Items[I].Source);
    if (!Built.ok()) {
      R.Error = Built.Error;
      R.Seconds = ItemClock.seconds();
      return;
    }
    AnalysisRun Run = analyzeProgram(*Built.Prog, AOpts);
    R.TimedOut = Run.timedOut();
    if (Opts.Check && !R.TimedOut) {
      CheckerSummary Summary = checkBufferOverruns(*Built.Prog, Run);
      R.Checks = static_cast<unsigned>(Summary.Checks.size());
      R.Alarms = Summary.numAlarms();
    }
    R.Ok = !R.TimedOut;
    R.Seconds = ItemClock.seconds();
  });
  Result.Seconds = Clock.seconds();

  SPA_OBS_GAUGE_SET("batch.programs", Items.size());
  SPA_OBS_GAUGE_SET("batch.failed", Result.numFailed());
  SPA_OBS_GAUGE_SET("batch.jobs", Jobs);
  SPA_OBS_GAUGE_SET("batch.seconds", Result.Seconds);
  SPA_OBS_GAUGE_SET("batch.programs_per_sec", Result.programsPerSec());
  obs::MetricsSink::appendBenchRecord("batch",
                                      batchEngineName(AOpts.Engine),
                                      Result.numFailed() == 0);
  return Result;
}

std::vector<BatchItem> spa::suiteBatch(double Scale) {
  std::vector<BatchItem> Items;
  for (const SuiteEntry &E : paperSuite(Scale))
    Items.push_back({E.Name, generateSource(E.Config)});
  return Items;
}

bool spa::loadBatchFile(const std::string &Path,
                        std::vector<BatchItem> &Items, std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open " + Path;
    return false;
  }
  std::string Dir;
  if (size_t Slash = Path.find_last_of('/'); Slash != std::string::npos)
    Dir = Path.substr(0, Slash + 1);
  std::string Line;
  while (std::getline(In, Line)) {
    size_t B = Line.find_first_not_of(" \t\r");
    if (B == std::string::npos || Line[B] == '#')
      continue;
    size_t E = Line.find_last_not_of(" \t\r");
    std::string Entry = Line.substr(B, E - B + 1);
    std::string Full =
        (Entry[0] == '/' || Dir.empty()) ? Entry : Dir + Entry;
    std::ifstream Src(Full);
    if (!Src) {
      Error = "cannot open " + Full;
      return false;
    }
    std::ostringstream OS;
    OS << Src.rdbuf();
    Items.push_back({Entry, OS.str()});
  }
  return true;
}
