//===- Batch.cpp - Multi-program batch analysis driver --------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "workload/Batch.h"

#include "core/Checker.h"
#include "ir/Builder.h"
#include "ir/Snapshot.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "obs/MetricsSink.h"
#include "obs/Postmortem.h"
#include "obs/Trace.h"
#include "support/Fault.h"
#include "support/Resource.h"
#include "support/ThreadPool.h"
#include "workload/Suite.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>

#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace spa;

const char *spa::batchOutcomeName(BatchOutcome O) {
  switch (O) {
  case BatchOutcome::Ok:
    return "ok";
  case BatchOutcome::Degraded:
    return "degraded";
  case BatchOutcome::BuildError:
    return "build_error";
  case BatchOutcome::Timeout:
    return "timeout";
  case BatchOutcome::Oom:
    return "oom";
  case BatchOutcome::Crash:
    return "crash";
  case BatchOutcome::Stalled:
    return "stalled";
  }
  return "unknown";
}

size_t BatchResult::numFailed() const {
  size_t N = 0;
  for (const BatchItemResult &R : Items)
    N += !R.Ok;
  return N;
}

size_t BatchResult::numDegraded() const {
  return countOutcome(BatchOutcome::Degraded);
}

size_t BatchResult::countOutcome(BatchOutcome O) const {
  size_t N = 0;
  for (const BatchItemResult &R : Items)
    N += R.Outcome == O;
  return N;
}

int spa::exitCodeFor(const BatchResult &R) {
  if (R.numFailed() > 0)
    return 2;
  if (R.numDegraded() > 0)
    return 3;
  return 0;
}

static const char *batchEngineName(EngineKind E) {
  switch (E) {
  case EngineKind::Vanilla:
    return "vanilla";
  case EngineKind::Base:
    return "base";
  case EngineKind::Sparse:
    return "sparse";
  }
  return "unknown";
}

namespace {

/// Stages snapshot bytes in an anonymous in-memory file a forked child
/// can pread back (tmp-file fallback when memfd_create is unavailable).
/// Returns -1 on failure.
int fdFromBytes(const std::vector<uint8_t> &Bytes) {
  int Fd = memfd_create("spa-snapshot", 0);
  if (Fd < 0) {
    char Tmpl[] = "/tmp/spa-snap-XXXXXX";
    Fd = mkstemp(Tmpl);
    if (Fd < 0)
      return -1;
    unlink(Tmpl);
  }
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = pwrite(Fd, Bytes.data() + Off, Bytes.size() - Off,
                       static_cast<off_t>(Off));
    if (N <= 0) {
      close(Fd);
      return -1;
    }
    Off += static_cast<size_t>(N);
  }
  return Fd;
}

/// Child-side read-back of a staged snapshot (pread: the fd's offset is
/// shared with the parent and possibly a retry, so never seek it).
std::vector<uint8_t> readAllFd(int Fd) {
  std::vector<uint8_t> Bytes;
  struct stat St;
  if (fstat(Fd, &St) == 0 && St.st_size > 0)
    Bytes.reserve(static_cast<size_t>(St.st_size));
  uint8_t Chunk[1 << 16];
  size_t Off = 0;
  ssize_t N;
  while ((N = pread(Fd, Chunk, sizeof(Chunk), static_cast<off_t>(Off))) > 0) {
    Bytes.insert(Bytes.end(), Chunk, Chunk + N);
    Off += static_cast<size_t>(N);
  }
  return Bytes;
}

/// Reads a file's raw bytes without interpreting them.
bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Bytes) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream OS;
  OS << In.rdbuf();
  std::string S = OS.str();
  Bytes.assign(S.begin(), S.end());
  return true;
}

/// One in-process attempt: build (or load the item's snapshot), analyze,
/// check, classify.
void runItemInProcess(const BatchItem &Item, const BatchOptions &Opts,
                      const AnalyzerOptions &AOpts, BatchItemResult &R) {
  std::unique_ptr<Program> Owned;
  if (!Item.SnapshotPath.empty()) {
    SnapshotLoadResult L = loadSnapshotFile(Item.SnapshotPath);
    if (!L.ok()) {
      R.Error = L.Error.str();
      R.Outcome = BatchOutcome::BuildError;
      return;
    }
    Owned = std::move(L.Prog);
  } else {
    BuildResult Built = buildProgramFromSource(Item.Source);
    if (!Built.ok()) {
      R.Error = Built.Error;
      R.Outcome = BatchOutcome::BuildError;
      return;
    }
    Owned = std::move(Built.Prog);
  }
  AnalysisRun Run = analyzeProgram(*Owned, AOpts);
  R.TimedOut = Run.timedOut();
  R.Degraded = Run.degraded();
  R.BudgetSteps = Run.BudgetSteps;
  if (Run.Ledger) {
    obs::PointCost T = Run.Ledger->totals();
    R.LedgerVisits = T.Visits;
    R.LedgerWidenings = T.Widenings;
    R.LedgerGrowth = T.Growth;
    R.LedgerTimeMicros = T.TimeMicros;
  }
  if (Opts.Check && !R.TimedOut) {
    CheckerSummary Summary = checkBufferOverruns(*Owned, Run);
    R.Checks = static_cast<unsigned>(Summary.Checks.size());
    R.Alarms = Summary.numAlarms();
  }
  if (R.TimedOut) {
    R.Outcome = BatchOutcome::Timeout;
    return;
  }
  R.Outcome = R.Degraded ? BatchOutcome::Degraded : BatchOutcome::Ok;
  R.Ok = true;
}

/// Folds a shipped postmortem summary into the item's failure text, so
/// `--batch` output answers "why did this run die" without opening the
/// .pm.json file.
void appendCrashNote(BatchItemResult &R) {
  if (R.HasPostmortem && !R.CrashNote.empty())
    R.Error += "; postmortem: " + R.CrashNote;
}

/// One isolated attempt: the same work in a forked child, classified
/// from the child's exit.  The fault plan (SPA_FAULT) arms only inside
/// the child, so injected faults take down the child, not the batch.
/// \p SnapFd >= 0 ships a staged spa-ir-v1 snapshot: the child runs the
/// strict loader instead of the frontend, and a load failure classifies
/// as BuildError exactly like unparseable source.
void runItemIsolated(const BatchItem &Item, const BatchOptions &Opts,
                     const AnalyzerOptions &AOpts, const FaultPlan &Plan,
                     BatchItemResult &R, int SnapFd) {
  double Kill = Opts.KillLimitSec;
  if (Kill <= 0) {
    double D =
        std::max(AOpts.Budget.DeadlineSec > 0 ? AOpts.Budget.DeadlineSec : 0.0,
                 AOpts.TimeLimitSec > 0 ? AOpts.TimeLimitSec : 0.0);
    Kill = D > 0 ? 4 * D + 1 : 0;
  }

  // Reader faults (truncate@reader / partial@reader) simulate torn pipe
  // reads in the *parent*, so they arm here, around runInChild, and only
  // for those kinds — process-killing kinds stay confined to the child.
  std::optional<FaultScope> ReaderScope;
  if (Plan.parentSide())
    ReaderScope.emplace(Plan, Item.Name);

  // Parent-side span covering the whole isolated attempt; its id crosses
  // the fork so the child's spans nest under it on the merged timeline.
  obs::TraceScope ItemSpan(obs::Tracer::global().enabled()
                               ? "batch.isolate:" + Item.Name
                               : std::string());
  uint64_t ItemSpanId = ItemSpan.spanId();

  ChildRunResult CR = runInChild(
      [&]() -> std::vector<double> {
        // The fork may happen on a pool worker lane; nested parallel
        // phases already degrade inline there, but pin Jobs anyway so
        // the child never touches the (not forked) pool threads.
        AnalyzerOptions CA = AOpts;
        CA.Jobs = 1;
        FaultScope Scope(Plan, Item.Name);
        // The "build" fault phase covers program *construction* whichever
        // way it happens — frontend or snapshot loader — so crash@build
        // keeps meaning "the child died producing its Program".
        maybeInjectFault("build");
        std::unique_ptr<Program> Owned;
        if (SnapFd >= 0) {
          SnapshotLoadResult L = loadSnapshot(readAllFd(SnapFd));
          if (!L.ok())
            return {1, static_cast<double>(L.Error.Code), 0, 0, 0, 0};
          Owned = std::move(L.Prog);
        } else {
          BuildResult Built = buildProgramFromSource(Item.Source);
          if (!Built.ok())
            return {1, 0, 0, 0, 0, 0};
          Owned = std::move(Built.Prog);
        }
        AnalysisRun Run = analyzeProgram(*Owned, CA);
        double Checks = 0, Alarms = 0;
        if (Opts.Check && !Run.timedOut()) {
          maybeInjectFault("check");
          CheckerSummary S = checkBufferOverruns(*Owned, Run);
          Checks = static_cast<double>(S.Checks.size());
          Alarms = S.numAlarms();
        }
        obs::PointCost T =
            Run.Ledger ? Run.Ledger->totals() : obs::PointCost{};
        // A clean finish tears the forensics down so the postmortem file
        // (pre-opened empty) is unlinked, not left as a false positive.
        obs::postmortemUninstall();
        return {0, Run.timedOut() ? 1.0 : 0.0, Run.degraded() ? 1.0 : 0.0,
                Checks, Alarms, static_cast<double>(Run.BudgetSteps),
                static_cast<double>(T.Visits),
                static_cast<double>(T.Widenings),
                static_cast<double>(T.Growth),
                static_cast<double>(T.TimeMicros)};
      },
      Kill, Opts.HardMemLimitKiB,
      /*ChildSetup=*/[&](int ResultPipeFd) {
        // First thing after fork: scrub inherited journal slots and the
        // inherited span buffer (the child's spans root under the
        // parent's item span), then install the postmortem writer (file
        // + pipe summaries) and the stall watchdog before any analysis
        // work starts.
        obs::journalResetForChild();
        obs::Tracer::global().resetForChild(ItemSpanId);
        obs::PostmortemOptions PO;
        PO.Dir = Opts.PostmortemDir.empty() ? nullptr
                                            : Opts.PostmortemDir.c_str();
        PO.RunId = Item.Name.c_str();
        PO.PipeFd = ResultPipeFd;
        obs::postmortemInstall(PO);
        obs::watchdogStart(Opts.WatchdogMs);
      });

  if (!CR.SpanBuf.empty())
    obs::Tracer::global().ingestSerialized(CR.SpanBuf.data(),
                                           CR.SpanBuf.size());

  R.PeakRssKiB = CR.PeakRssKiB;
  if (CR.HasCrashSummary) {
    R.CrashNote = obs::postmortemSummaryText(CR.Crash);
    R.HasPostmortem = true;
  }
  if (CR.TimedOut) {
    R.TimedOut = true;
    R.Outcome = BatchOutcome::Timeout;
    R.Error = "killed at the isolation kill limit";
    appendCrashNote(R);
    return;
  }
  if (CR.Ok && CR.Payload.size() >= 5) {
    if (CR.Payload[0] != 0) {
      R.Outcome = BatchOutcome::BuildError;
      // Payload[1] carries the child loader's SnapErrc for snapshot-fed
      // items (0 for a frontend build error), so the parent can say
      // *which* way the bytes were bad without a string channel.
      auto Errc = CR.Payload.size() >= 2
                      ? static_cast<SnapErrc>(static_cast<int>(CR.Payload[1]))
                      : SnapErrc::None;
      R.Error = Errc != SnapErrc::None
                    ? std::string("snapshot load error (isolated child): ") +
                          snapshotErrorName(Errc)
                    : "build error (isolated child)";
      return;
    }
    R.TimedOut = CR.Payload[1] != 0;
    R.Degraded = CR.Payload[2] != 0;
    R.Checks = static_cast<unsigned>(CR.Payload[3]);
    R.Alarms = static_cast<unsigned>(CR.Payload[4]);
    if (CR.Payload.size() >= 6)
      R.BudgetSteps = static_cast<uint64_t>(CR.Payload[5]);
    if (CR.Payload.size() >= 10) {
      R.LedgerVisits = static_cast<uint64_t>(CR.Payload[6]);
      R.LedgerWidenings = static_cast<uint64_t>(CR.Payload[7]);
      R.LedgerGrowth = static_cast<uint64_t>(CR.Payload[8]);
      R.LedgerTimeMicros = static_cast<uint64_t>(CR.Payload[9]);
    }
    if (R.TimedOut) {
      R.Outcome = BatchOutcome::Timeout;
      return;
    }
    R.Outcome = R.Degraded ? BatchOutcome::Degraded : BatchOutcome::Ok;
    R.Ok = true;
    return;
  }
  if (CR.ExitCode == OomExitCode) {
    R.Outcome = BatchOutcome::Oom;
    R.Error = "out of memory (isolated child)";
    appendCrashNote(R);
    return;
  }
  if (CR.ExitCode == obs::StallExitCode) {
    // The child's watchdog diagnosed a heartbeat-dead fixpoint and shot
    // the process — a hang with forensics, not a timeout.
    R.Outcome = BatchOutcome::Stalled;
    R.Error = "fixpoint stalled (watchdog)";
    appendCrashNote(R);
    return;
  }
  if (CR.ExitCode == 0) {
    // The child exited cleanly but its result never made it through the
    // pipe intact (torn write, or an injected reader fault): the item is
    // lost, not the batch.
    R.Outcome = BatchOutcome::Crash;
    R.Error = "truncated result payload from child";
    return;
  }
  R.Outcome = BatchOutcome::Crash;
  R.Error = CR.TermSignal
                ? "child killed by signal " + std::to_string(CR.TermSignal)
                : "child exited with status " + std::to_string(CR.ExitCode);
  appendCrashNote(R);
}

} // namespace

AnalyzerOptions spa::lowerTierOptions(const AnalyzerOptions &A) {
  AnalyzerOptions T = A;
  if (T.Budget.DeadlineSec > 0)
    T.Budget.DeadlineSec /= 2;
  T.Budget.StepLimit = T.Budget.StepLimit ? T.Budget.StepLimit / 2 : 50000;
  return T;
}

BatchResult spa::runBatch(const std::vector<BatchItem> &Items,
                          const BatchOptions &Opts) {
  BatchResult Result;
  Result.Items.resize(Items.size());

  AnalyzerOptions AOpts = Opts.Analyzer;
  if (Opts.Check)
    AOpts.Dep.Bypass = false; // The checker reads input buffers.
  unsigned Jobs = AOpts.Jobs ? AOpts.Jobs : ThreadPool::defaultJobs();
  // Parsed once per batch so tests can flip SPA_FAULT between runs.
  FaultPlan Plan = FaultPlan::fromEnv();

  // Staged snapshots, one per item: the parent builds (or reads) each
  // program's bytes exactly once, and both the first pass and the retry
  // ship the same memfd.  Each slot is touched only by its own item's
  // lane (first pass and retry of one index never overlap), so no locks.
  struct StagedSnapshot {
    int Fd = -1;
    bool Failed = false;
    std::string Error;
  };
  std::vector<StagedSnapshot> Staged(Items.size());
  std::atomic<uint64_t> ShipItems{0}, ShipBytes{0};
  auto NeedShip = [&](const BatchItem &It) {
    // Snapshot-file items have no source to rebuild from, so their bytes
    // ship even with UseSnapshots off (the bench ablation toggle).
    return Opts.Isolate && (Opts.UseSnapshots || !It.SnapshotPath.empty());
  };
  auto Stage = [&](size_t I) -> StagedSnapshot & {
    StagedSnapshot &S = Staged[I];
    if (S.Fd >= 0 || S.Failed)
      return S;
    const BatchItem &It = Items[I];
    std::vector<uint8_t> Bytes;
    if (!It.SnapshotPath.empty()) {
      // Raw and unvalidated on purpose: the *child's* strict loader is
      // the validation boundary, and a corrupt file must classify as
      // that item's BuildError, not abort the parent.
      if (!readFileBytes(It.SnapshotPath, Bytes)) {
        S.Failed = true;
        S.Error = "cannot read snapshot " + It.SnapshotPath;
        return S;
      }
    } else {
      BuildResult Built = buildProgramFromSource(It.Source);
      if (!Built.ok()) {
        S.Failed = true;
        S.Error = Built.Error;
        return S;
      }
      Bytes = saveSnapshot(*Built.Prog);
    }
    S.Fd = fdFromBytes(Bytes);
    if (S.Fd < 0) {
      S.Failed = true;
      S.Error = "cannot stage snapshot in memory";
      return S;
    }
    ShipItems += 1;
    ShipBytes += Bytes.size();
    return S;
  };

  auto RunOnce = [&](size_t I, const AnalyzerOptions &A, BatchItemResult &R) {
    const BatchItem &Item = Items[I];
    if (!Opts.Isolate) {
      runItemInProcess(Item, Opts, A, R);
      return;
    }
    int SnapFd = -1;
    if (NeedShip(Item)) {
      StagedSnapshot &S = Stage(I);
      if (S.Failed) {
        // Parent-side build/read failure: same deterministic BuildError
        // the child would have reported, without paying for a fork.
        R.Outcome = BatchOutcome::BuildError;
        R.Error = S.Error;
        return;
      }
      SnapFd = S.Fd;
    }
    runItemIsolated(Item, Opts, A, Plan, R, SnapFd);
  };
  auto Retryable = [](BatchOutcome O) {
    return O == BatchOutcome::Timeout || O == BatchOutcome::Oom ||
           O == BatchOutcome::Crash || O == BatchOutcome::Stalled;
  };

  Timer Clock;
  // One program per index: each lane builds and analyzes its own Program
  // (no shared mutable state beyond the obs registry, whose counters are
  // atomic).  Inside a worker lane the analyzer's parallel phases run
  // inline, so the batch does not oversubscribe the pool.
  ThreadPool::global().parallelFor(Items.size(), Jobs, [&](size_t I) {
    BatchItemResult &R = Result.Items[I];
    R.Name = Items[I].Name;
    SPA_OBS_JOURNAL(BatchItemBegin, I, 0);
    Timer ItemClock;
    RunOnce(I, AOpts, R);
    R.Seconds = ItemClock.seconds();
    SPA_OBS_JOURNAL(BatchItemEnd, I, static_cast<uint64_t>(R.Outcome));
  });

  // Second pass: retry the retryable failures at the tightened tier.
  // The queue is ordered by first-pass cost, heaviest first — budget
  // steps when the run reported them, peak RSS as the tie-break (the
  // only signal a crashed/OOM child leaves) — so the longest retries
  // enter the pool first instead of straggling at the batch tail.
  // parallelFor lanes claim indices in submission order, which makes
  // this a priority order even under dynamic scheduling.
  uint64_t HeavySerialized = 0;
  std::vector<size_t> RetryQueue;
  if (Opts.RetryAtLowerTier)
    for (size_t I = 0; I < Result.Items.size(); ++I)
      if (Retryable(Result.Items[I].Outcome))
        RetryQueue.push_back(I);
  if (!RetryQueue.empty()) {
    std::stable_sort(RetryQueue.begin(), RetryQueue.end(),
                     [&](size_t A, size_t B) {
                       const BatchItemResult &RA = Result.Items[A];
                       const BatchItemResult &RB = Result.Items[B];
                       if (RA.BudgetSteps != RB.BudgetSteps)
                         return RA.BudgetSteps > RB.BudgetSteps;
                       return RA.PeakRssKiB > RB.PeakRssKiB;
                     });
    AnalyzerOptions Tier = lowerTierOptions(AOpts);
    auto RetryOne = [&](size_t I) {
      BatchItemResult &R = Result.Items[I];
      SPA_OBS_COUNT("batch.retries", 1);
      double FirstSeconds = R.Seconds;
      Timer ItemClock;
      BatchItemResult Retry;
      Retry.Name = R.Name;
      RunOnce(I, Tier, Retry);
      Retry.Retried = true;
      // Keep the first classification when the retry fails too (a
      // deterministic fault re-fires, so taxonomy counts stay equal to
      // the injected faults).
      if (Retry.Ok)
        R = std::move(Retry);
      else
        R.Retried = true;
      R.Seconds = FirstSeconds + ItemClock.seconds();
    };
    // Memory-aware serialization: items whose first attempt peaked at or
    // above the heavy threshold retry one at a time, before the parallel
    // pass, so two memory-heavy retries can never be in flight together
    // and OOM each other.  Heavy items are already at the front of the
    // cost-sorted queue.
    std::vector<size_t> Parallel;
    for (size_t I : RetryQueue) {
      if (Opts.SerializeRetryRssKiB &&
          Result.Items[I].PeakRssKiB >= Opts.SerializeRetryRssKiB) {
        ++HeavySerialized;
        RetryOne(I);
      } else {
        Parallel.push_back(I);
      }
    }
    ThreadPool::global().parallelFor(Parallel.size(), Jobs,
                                     [&](size_t K) { RetryOne(Parallel[K]); });
  }
  Result.Seconds = Clock.seconds();

  for (StagedSnapshot &S : Staged)
    if (S.Fd >= 0)
      close(S.Fd);

  // Gauge scoping: per-run gauges (program.points, analysis.degraded,
  // phase.*.seconds, ledger.*) hold whichever item's run wrote them
  // last — meaningless at batch level and misleading in the batch's
  // --metrics-out snapshot.  Zero them so the export carries only
  // batch-scoped gauges; counters and histograms accumulate as before.
  // Peak RSS is a genuine process-wide maximum, so it is re-measured.
  obs::Registry::global().resetGauges();
  SPA_OBS_GAUGE_MAX("mem.peak_rss_kib", currentPeakRssKiB());

  SPA_OBS_GAUGE_SET("batch.programs", Items.size());
  SPA_OBS_GAUGE_SET("batch.failed", Result.numFailed());
  SPA_OBS_GAUGE_SET("batch.jobs", Jobs);
  SPA_OBS_GAUGE_SET("batch.isolated", Opts.Isolate ? 1 : 0);
  SPA_OBS_GAUGE_SET("batch.seconds", Result.Seconds);
  SPA_OBS_GAUGE_SET("batch.programs_per_sec", Result.programsPerSec());
  SPA_OBS_GAUGE_SET("batch.degraded", Result.numDegraded());
  SPA_OBS_GAUGE_SET("batch.failures.timeout",
                    Result.countOutcome(BatchOutcome::Timeout));
  SPA_OBS_GAUGE_SET("batch.failures.oom",
                    Result.countOutcome(BatchOutcome::Oom));
  SPA_OBS_GAUGE_SET("batch.failures.crash",
                    Result.countOutcome(BatchOutcome::Crash));
  SPA_OBS_GAUGE_SET("batch.failures.stalled",
                    Result.countOutcome(BatchOutcome::Stalled));
  SPA_OBS_GAUGE_SET("batch.failures.build_error",
                    Result.countOutcome(BatchOutcome::BuildError));
  SPA_OBS_GAUGE_SET("batch.snapshot.items", ShipItems.load());
  SPA_OBS_GAUGE_SET("batch.snapshot.bytes", ShipBytes.load());
  SPA_OBS_GAUGE_SET("batch.retries.serialized", HeavySerialized);
  obs::MetricsSink::appendBenchRecord("batch",
                                      batchEngineName(AOpts.Engine),
                                      Result.numFailed() == 0);
  return Result;
}

std::vector<BatchItem> spa::suiteBatch(double Scale) {
  std::vector<BatchItem> Items;
  for (const SuiteEntry &E : paperSuite(Scale)) {
    BatchItem It;
    It.Name = E.Name;
    It.Source = generateSource(E.Config);
    Items.push_back(std::move(It));
  }
  return Items;
}

bool spa::loadBatchFile(const std::string &Path,
                        std::vector<BatchItem> &Items, std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open " + Path;
    return false;
  }
  std::string Dir;
  if (size_t Slash = Path.find_last_of('/'); Slash != std::string::npos)
    Dir = Path.substr(0, Slash + 1);
  std::string Line;
  while (std::getline(In, Line)) {
    size_t B = Line.find_first_not_of(" \t\r");
    if (B == std::string::npos || Line[B] == '#')
      continue;
    size_t E = Line.find_last_not_of(" \t\r");
    std::string Entry = Line.substr(B, E - B + 1);
    std::string Full =
        (Entry[0] == '/' || Dir.empty()) ? Entry : Dir + Entry;
    BatchItem It;
    It.Name = Entry;
    // .snap entries are pre-serialized IR: loaded by the snapshot
    // loader at analysis time, never opened here.
    if (Entry.size() > 5 && Entry.rfind(".snap") == Entry.size() - 5) {
      It.SnapshotPath = Full;
    } else {
      std::ifstream Src(Full);
      if (!Src) {
        Error = "cannot open " + Full;
        return false;
      }
      std::ostringstream OS;
      OS << Src.rdbuf();
      It.Source = OS.str();
    }
    Items.push_back(std::move(It));
  }
  return true;
}
