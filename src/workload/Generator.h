//===- Generator.h - Synthetic C-like program generator -------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic random program generator.  It substitutes for the paper's
/// 16 open-source benchmarks (gzip ... ghostscript-9.00): the cost drivers
/// the evaluation studies — statement count, abstract-location count,
/// def/use sparsity, callgraph SCC size, pointer density — are all
/// explicit knobs here, so the benchmark harness can reproduce the
/// *shape* of Tables 1–3 at laptop scale.
///
/// Generated programs respect the disciplines the concrete interpreter
/// expects (locals initialized before use, numeric/pointer variables kept
/// apart, counter-bounded loops), so the same programs drive the
/// interpreter-based soundness tests.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_WORKLOAD_GENERATOR_H
#define SPA_WORKLOAD_GENERATOR_H

#include "lang/AST.h"

#include <cstdint>
#include <string>

namespace spa {

/// Generator knobs.  Percentages are out of 100.
struct GenConfig {
  uint64_t Seed = 1;

  unsigned NumFunctions = 6;     ///< Excluding main.
  unsigned StmtsPerFunction = 18;///< Target top-level statements per body.
  unsigned NumGlobals = 4;
  unsigned MaxParams = 3;
  unsigned NumericLocals = 5;
  unsigned PointerLocals = 2;

  unsigned BranchPercent = 25;  ///< Chance a slot becomes an `if`.
  unsigned LoopPercent = 12;    ///< Chance a slot becomes a bounded loop.
  unsigned CallPercent = 18;    ///< Chance a slot becomes a call.
  unsigned PointerPercent = 18; ///< Chance a slot is a pointer operation.
  unsigned AllocPercent = 6;    ///< Chance a pointer op allocates.
  unsigned MaxDepth = 3;        ///< Nesting bound for if/while.

  bool AllowLoops = true;
  /// Let calls target earlier functions too, creating callgraph cycles
  /// (mutual recursion).  Off = strictly forward (acyclic) calls.
  bool AllowRecursion = false;
  /// Limit every function to at most one call site program-wide: the
  /// supergraph stays acyclic when loops/recursion are off, making dense
  /// and sparse least fixpoints exactly comparable (no widening).
  bool SingleCallSite = false;
  /// Route some calls through function-pointer variables.
  bool UseFunctionPointers = false;
  /// The first SccGroupSize functions call the next one cyclically,
  /// forcing a callgraph SCC of that size (the maxSCC knob of Table 1).
  unsigned SccGroupSize = 0;
};

/// Generates a whole program (globals + NumFunctions helpers + main).
ProgramAST generateProgram(const GenConfig &Config);

/// Convenience: generate and render to surface syntax (exercises the
/// lexer/parser round trip the benchmarks measure under "frontend").
std::string generateSource(const GenConfig &Config);

} // namespace spa

#endif // SPA_WORKLOAD_GENERATOR_H
