//===- Provenance.h - Bounded backward dependency slicing ------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Alarm provenance: given a seed node (the control point where the
/// checker raised an alarm) and a predecessor callback over the sparse
/// dependency relation c0 -l-> cn, walk the relation *backward* with
/// bounded depth, per-node fanout, and total node budget, producing the
/// slice of definition points whose abstract values flowed into the
/// alarm.  The walk is budget-aware: an optional charge callback (wired
/// to the run's Budget token by the caller) is consulted per edge and a
/// refusal truncates the slice instead of aborting it.
///
/// Like the ledger, this layer is Program-agnostic: nodes are dense
/// uint32 ids and all structure (predecessors, labels) comes in through
/// callbacks, so src/core can attribute phi nodes, widening points, and
/// degraded-tier values on top of the raw slice.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_OBS_PROVENANCE_H
#define SPA_OBS_PROVENANCE_H

#include <cstdint>
#include <functional>
#include <vector>

namespace spa {
namespace obs {

/// Bounds for the backward walk.  Defaults keep a slice readable and the
/// walk O(MaxNodes * MaxFanout) regardless of graph size.
struct ProvenanceOptions {
  uint32_t MaxDepth = 8;    ///< BFS radius from the seed.
  uint32_t MaxFanout = 16;  ///< Predecessor edges taken per node.
  uint32_t MaxNodes = 256;  ///< Total slice size cap.
};

/// One node of the slice, in BFS (deterministic) discovery order.  The
/// seed is always first with Depth 0.
struct SliceNode {
  uint32_t Node = 0;
  uint32_t Depth = 0;
  uint32_t ViaLabel = 0; ///< Edge label (LocId) this node was reached over.
};

struct ProvenanceSlice {
  std::vector<SliceNode> Nodes; ///< BFS order; seed first.
  bool Truncated = false;       ///< A bound or the budget cut the walk short.
  uint64_t EdgesWalked = 0;

  bool contains(uint32_t N) const {
    for (const SliceNode &S : Nodes)
      if (S.Node == N)
        return true;
    return false;
  }
};

/// Enumerates predecessors of a node: calls Each(Pred, Label) for every
/// dependency edge Pred -Label-> Node.
using PredFn = std::function<void(
    uint32_t Node, const std::function<void(uint32_t, uint32_t)> &Each)>;

/// Per-edge budget charge; returning false truncates the walk (sets
/// ProvenanceSlice::Truncated).  Null means unbudgeted.
using ChargeFn = std::function<bool()>;

/// Bounded backward BFS from \p Seed over \p Preds.  Deterministic: the
/// visit order depends only on the seed, the bounds, and the order in
/// which Preds enumerates edges.
ProvenanceSlice backwardSlice(uint32_t Seed, const PredFn &Preds,
                              const ProvenanceOptions &Opts = {},
                              const ChargeFn &Charge = nullptr);

} // namespace obs
} // namespace spa

#endif // SPA_OBS_PROVENANCE_H
