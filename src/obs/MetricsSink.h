//===- MetricsSink.h - Structured metrics export ---------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialization of the metrics registry: a flat JSON object for
/// machine consumption (spa-analyze --metrics-out, the bench JSON
/// records) and a stable `key=value` text form (spa-analyze --stats).
/// Key order is lexicographic in both, so diffs between runs line up.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_OBS_METRICSSINK_H
#define SPA_OBS_METRICSSINK_H

#include "obs/Metrics.h"

#include <string>

namespace spa {
namespace obs {

class MetricsSink {
public:
  /// Formats \p V the way both exports do: integral values without a
  /// fraction, others with up to 9 significant digits.
  static std::string formatValue(double V);

  /// `{"name": value, ...}` over Registry::snapshot(), sorted by name.
  static std::string toJson(const Registry &R);

  /// One `name=value` line per snapshot leaf, sorted by name.
  static std::string toKeyValueText(const Registry &R);

  /// Writes \p Content to \p Path ("-" means stdout).  Returns false on
  /// I/O failure.
  static bool writeFile(const std::string &Path, const std::string &Content);

  /// Path of the JSON-lines bench record file (SPA_BENCH_JSON); empty
  /// disables recording.
  static std::string benchJsonPathFromEnv();

  /// Appends one JSON-lines record combining run labels with the global
  /// registry snapshot:
  ///
  ///   {"bench": NAME, "engine": NAME, "ok": 0|1, "metrics": {...}}
  ///
  /// No-op unless SPA_BENCH_JSON names a file.  The single O_APPEND
  /// write keeps lines whole even if several recorders (forked bench
  /// children, batch lanes) share the file.
  static void appendBenchRecord(const std::string &Bench,
                                const std::string &Engine, bool Ok);
};

} // namespace obs
} // namespace spa

#endif // SPA_OBS_METRICSSINK_H
