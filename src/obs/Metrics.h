//===- Metrics.h - Low-overhead metrics registry ---------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analyzer's metrics registry: named Counter / Gauge / Histogram
/// instruments aggregated in one process-wide Registry, serialized by
/// obs/MetricsSink.h.  Instrumentation sites use the SPA_OBS_* macros,
/// which resolve the registry slot once per call site (function-local
/// static) so the steady-state cost of a hot-loop counter is a single
/// 64-bit increment.  Compiling with -DSPA_OBS_ENABLED=0 removes every
/// macro body, so the disabled build pays nothing.
///
/// The taxonomy of metric names (phase.*, fixpoint.*, depgraph.*, bdd.*,
/// oct.*, mem.*) is documented in docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_OBS_METRICS_H
#define SPA_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

/// Build-time switch: 1 (default) compiles the instrumentation in, 0
/// turns every SPA_OBS_* macro into a no-op (the CMake option SPA_OBS
/// drives this).
#ifndef SPA_OBS_ENABLED
#define SPA_OBS_ENABLED 1
#endif

namespace spa {
namespace obs {

/// Monotonically increasing event count.  Thread-safe: parallel phases
/// (support/ThreadPool.h) bump counters from worker threads; relaxed
/// atomics keep the hot-path cost at one uncontended RMW and the total
/// is scheduling-independent (addition commutes).
class Counter {
public:
  void add(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Last-written scalar (phase seconds, structure sizes, peak RSS).
/// Thread-safe stores; concurrent set() calls race benignly (last write
/// wins), so parallel code should prefer max() or per-phase gauges
/// written from the orchestrating thread.
class Gauge {
public:
  void set(double X) { V.store(X, std::memory_order_relaxed); }
  /// Keeps the running maximum (peak-style gauges).
  void max(double X) {
    double Cur = V.load(std::memory_order_relaxed);
    while (X > Cur &&
           !V.compare_exchange_weak(Cur, X, std::memory_order_relaxed)) {
    }
  }
  double value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<double> V{0};
};

/// Power-of-two bucketed distribution of non-negative samples, plus
/// count/sum/min/max.  Bucket i counts samples in [2^(i-1), 2^i) (bucket
/// 0 counts zeros and ones).
///
/// NOT thread-safe: observe() from parallel regions is a data race.
/// Histograms are reserved for single-threaded call sites (none of the
/// parallel phases sample one); use a Counter from worker code.
class Histogram {
public:
  void observe(double X);
  uint64_t count() const { return Count; }
  double sum() const { return Sum; }
  double min() const { return Count ? Min : 0; }
  double max() const { return Count ? Max : 0; }
  double avg() const { return Count ? Sum / Count : 0; }
  /// Estimated value at quantile \p Q in [0, 1]: linear interpolation
  /// inside the power-of-two bucket holding that rank, clamped to the
  /// observed [min, max].  0 when empty.
  double quantile(double Q) const;
  const std::vector<uint64_t> &buckets() const { return Buckets; }
  void reset();

private:
  uint64_t Count = 0;
  double Sum = 0, Min = 0, Max = 0;
  std::vector<uint64_t> Buckets;
};

/// Process-wide instrument registry.  Instruments register on first use
/// and live until process exit; reset() zeroes values but never
/// invalidates references, so call sites may cache the returned
/// reference (the SPA_OBS_* macros do).
///
/// Registration and snapshots lock a registry mutex (instruments may
/// register lazily from pool workers); the steady state — bumping an
/// already-registered instrument through a cached reference — takes no
/// lock.  std::map nodes are stable, so handed-out references survive
/// later registrations.
class Registry {
public:
  static Registry &global();

  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  /// Zeroes every instrument (tests and multi-run drivers); registered
  /// names and references stay valid.
  void reset();

  /// Zeroes only the gauges.  Batch drivers call this between items /
  /// before the whole-batch export so last-value gauges (program.*,
  /// phase.*, analysis.degraded, ...) of the final item do not leak into
  /// the batch-level snapshot, while monotone counters keep accumulating
  /// across the batch.
  void resetGauges();

  /// Flat numeric view, sorted by name.  Histograms expand into
  /// name.count / name.sum / name.min / name.max / name.avg plus the
  /// estimated name.p50 / name.p95 / name.p99 quantile leaves.
  std::vector<std::pair<std::string, double>> snapshot() const;

  /// Prometheus text exposition (version 0.0.4) of every instrument:
  /// counters as `spa_<name>_total`, gauges as `spa_<name>`, histograms
  /// as `spa_<name>` with cumulative `le` buckets at the power-of-two
  /// upper bounds plus `_sum`/`_count`.  Dots and dashes in metric
  /// names mangle to underscores; output is sorted by name, each family
  /// preceded by `# HELP` and `# TYPE`.
  std::string renderProm() const;

  /// Value of one snapshot leaf; \p Default when absent (a metric whose
  /// instrumentation site never ran).
  double value(const std::string &Name, double Default = 0) const;

  /// Enumerates counters and gauges with their *stable addresses* (map
  /// nodes never move or erase), under the registry mutex.  The crash
  /// postmortem (obs/Postmortem.h) uses this in normal context to build
  /// a frozen name/address index its signal handler can later read with
  /// atomics only.  Histograms are excluded: they are not readable
  /// without synchronization.
  void forEachInstrument(
      const std::function<void(const std::string &, const Counter &)> &OnCtr,
      const std::function<void(const std::string &, const Gauge &)> &OnGauge)
      const;

private:
  Registry() = default;
  mutable std::mutex M;
  std::map<std::string, Counter> Counters;
  std::map<std::string, Gauge> Gauges;
  std::map<std::string, Histogram> Histograms;
};

} // namespace obs
} // namespace spa

#define SPA_OBS_CONCAT_IMPL(A, B) A##B
#define SPA_OBS_CONCAT(A, B) SPA_OBS_CONCAT_IMPL(A, B)

#if SPA_OBS_ENABLED

/// Bumps counter \p Name by \p N.  The registry lookup happens once per
/// call site.
#define SPA_OBS_COUNT(Name, N)                                                 \
  do {                                                                         \
    static ::spa::obs::Counter &SPA_OBS_CONCAT(ObsCnt_, __LINE__) =            \
        ::spa::obs::Registry::global().counter(Name);                          \
    SPA_OBS_CONCAT(ObsCnt_, __LINE__).add(N);                                  \
  } while (0)

/// Sets gauge \p Name to \p V (cold paths: phase boundaries, run ends).
#define SPA_OBS_GAUGE_SET(Name, V)                                             \
  ::spa::obs::Registry::global().gauge(Name).set(static_cast<double>(V))

/// Raises gauge \p Name to \p V if larger (peak-style gauges).
#define SPA_OBS_GAUGE_MAX(Name, V)                                             \
  ::spa::obs::Registry::global().gauge(Name).max(static_cast<double>(V))

/// Records one sample into histogram \p Name.
#define SPA_OBS_HIST(Name, V)                                                  \
  do {                                                                         \
    static ::spa::obs::Histogram &SPA_OBS_CONCAT(ObsHist_, __LINE__) =         \
        ::spa::obs::Registry::global().histogram(Name);                        \
    SPA_OBS_CONCAT(ObsHist_, __LINE__).observe(static_cast<double>(V));        \
  } while (0)

#else

// The value expression is kept in never-taken dead code so variables
// that feed only the metrics layer still count as used (the compiler
// removes it; side effects never run, matching the enabled-mode
// contract that V is evaluated at most once).
#define SPA_OBS_DISCARD(V)                                                     \
  do {                                                                         \
    if (false)                                                                 \
      (void)(V);                                                               \
  } while (0)

#define SPA_OBS_COUNT(Name, N) SPA_OBS_DISCARD(N)
#define SPA_OBS_GAUGE_SET(Name, V) SPA_OBS_DISCARD(V)
#define SPA_OBS_GAUGE_MAX(Name, V) SPA_OBS_DISCARD(V)
#define SPA_OBS_HIST(Name, V) SPA_OBS_DISCARD(V)

#endif // SPA_OBS_ENABLED

#endif // SPA_OBS_METRICS_H
