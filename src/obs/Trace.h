//===- Trace.h - Cross-process distributed tracer --------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII span tracing across a *process tree*.  A TraceScope allocates a
/// span id at construction and records one completed span (start, dur,
/// pid, tid, span id, parent span id) at destruction, so nesting scopes
/// (pre-analysis -> def/use -> dep-build -> fixpoint, with per-procedure
/// spans inside the dependency builder) yields a hierarchical span tree
/// that survives serialization.  The Tracer exports everything as Chrome
/// trace-event JSON (complete 'X' events with real pid/tid rows, the
/// chrome://tracing / Perfetto format).
///
/// Distribution: every process shares one 64-bit trace id, minted by the
/// coordinator and propagated to forked children in memory and to exec'd
/// descendants through the SPA_TRACE_CONTEXT environment variable
/// ("traceid:parentspan", both hex).  Children record spans locally,
/// drain them as a compact binary buffer (drainSerialized) shipped back
/// over the existing result pipes, and the parent merges them
/// (ingestSerialized) into one timeline.  Span ids embed the recording
/// pid, so ids stay unique across the tree without coordination.
///
/// Timebase: all timestamps are microseconds since the process-wide
/// observability epoch (obsEpochNanos), which the flight-recorder
/// journal shares — CLOCK_MONOTONIC is system-wide on Linux, so spans
/// and journal events from forked children land on the same axis as the
/// coordinator's.  Both artifact headers record the epoch.
///
/// Recording is off by default: an inactive TraceScope costs one branch.
/// Drivers that pass --trace-out enable the tracer before analysis runs;
/// the spa-serve daemon enables it with a bounded ring so request span
/// trees are retained without unbounded growth.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_OBS_TRACE_H
#define SPA_OBS_TRACE_H

#include "obs/Metrics.h" // SPA_OBS_CONCAT

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace spa {
namespace obs {

/// Environment variable carrying "traceid:parentspan" (hex) into exec'd
/// descendants; forked children inherit the tracer state directly.
constexpr const char *TraceContextEnvVar = "SPA_TRACE_CONTEXT";

/// Environment variable pinning the shared observability epoch
/// (nanoseconds on the steady clock) for exec'd descendants.
constexpr const char *ObsEpochEnvVar = "SPA_OBS_EPOCH_NS";

/// Nanoseconds on the steady clock at which this process's observability
/// epoch was captured: the SPA_OBS_EPOCH_NS override when set, otherwise
/// the first call in this process.  Fork children inherit the captured
/// value, so one process tree shares one timebase (the tracer and the
/// journal both stamp against it).
uint64_t obsEpochNanos();

/// Microseconds elapsed since the shared observability epoch.
double obsNowMicros();

/// One completed span.  TsMicros/DurMicros are relative to the shared
/// observability epoch; Pid/Tid identify the recording thread; SpanId is
/// unique across the process tree (the pid is folded into the id) and
/// ParentSpanId links the tree (0 = root).
struct TraceSpan {
  std::string Name;
  double TsMicros = 0;
  double DurMicros = 0;
  uint32_t Pid = 0;
  uint32_t Tid = 0;
  uint64_t SpanId = 0;
  uint64_t ParentSpanId = 0;
};

/// Process-wide span collector.  Recording is mutex-guarded (spans close
/// from pool workers); parent links use a per-thread scope stack, so
/// cross-thread spans nest correctly by construction.
class Tracer {
public:
  static Tracer &global();

  void enable() { Enabled.store(true, std::memory_order_relaxed); }
  void disable() { Enabled.store(false, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// The 64-bit trace id every span in this process tree shares.  Minted
  /// lazily from pid + clock when neither setTraceId nor the
  /// SPA_TRACE_CONTEXT environment variable supplied one.
  uint64_t traceId();
  void setTraceId(uint64_t Id) { TraceId.store(Id, std::memory_order_relaxed); }

  /// Parent span id adopted by spans opened with no enclosing scope on
  /// their thread — how a worker process roots its spans under the
  /// coordinator's dispatch span.
  void setProcessParent(uint64_t SpanId) {
    ProcessParent.store(SpanId, std::memory_order_relaxed);
  }
  uint64_t processParent() const {
    return ProcessParent.load(std::memory_order_relaxed);
  }

  /// Allocates a globally unique span id (pid in the high half, a local
  /// counter in the low) without recording anything — the shard
  /// coordinator mints dispatch-span ids before the span completes so
  /// the id can travel in the dispatch frame.
  uint64_t allocSpanId();

  /// Records one completed span with a caller-supplied id (allocSpanId)
  /// on behalf of the current process.
  void addSpan(std::string Name, double TsMicros, double DurMicros,
               uint64_t SpanId, uint64_t ParentSpanId);

  /// Bounds the retained span buffer: once Cap spans are held, recording
  /// another drops the oldest (counted in trace.dropped).  0 = unbounded
  /// (the --trace-out CLI default); the serve daemon sets a cap so
  /// request span trees recycle.
  void setRingCapacity(size_t Cap);

  /// Moves the recorded spans out as a compact binary buffer (at most
  /// \p MaxBytes when nonzero; excess spans are dropped oldest-first),
  /// leaving the tracer empty.  The format round-trips through
  /// ingestSerialized in a parent process.
  std::vector<uint8_t> drainSerialized(size_t MaxBytes = 0);

  /// Appends spans serialized by a child's drainSerialized.  Returns
  /// false (ingesting nothing) on a malformed buffer.
  bool ingestSerialized(const uint8_t *Data, size_t Len);

  /// Serializes every span (local + ingested) as Chrome trace-event JSON
  /// ({"traceEvents": [...]}), loadable in chrome://tracing.  Spans are
  /// complete 'X' events ordered by (ts, pid, span id), so the merge is
  /// deterministic in content; the document header carries the trace id
  /// and the shared observability epoch.
  std::string toChromeJson() const;

  /// Copy of the retained spans, in recording/ingestion order (tests).
  std::vector<TraceSpan> spans() const;

  /// Number of spans dropped by the ring bound or a drain byte budget.
  uint64_t droppedSpans() const;

  void clear();

  /// Fork-child hygiene, the tracer analogue of journalResetForChild:
  /// drops spans inherited from the parent's buffer (the parent keeps
  /// the originals) and roots this process's future spans under
  /// \p ParentSpanId.  The trace id and enablement are inherited.
  void resetForChild(uint64_t ParentSpanId);

  /// "traceid:currentparent" in hex — the value a spawner exports as
  /// SPA_TRACE_CONTEXT for exec'd descendants.
  std::string contextString(uint64_t ParentSpanId);

private:
  Tracer();
  friend class TraceScope;
  void record(TraceSpan S);

  std::atomic<bool> Enabled{false};
  std::atomic<uint64_t> TraceId{0};
  std::atomic<uint64_t> ProcessParent{0};
  std::atomic<uint64_t> NextLocalId{1};
  mutable std::mutex M;
  std::deque<TraceSpan> Spans;
  size_t RingCap = 0; ///< 0 = unbounded.
  uint64_t Dropped = 0;
};

/// RAII span: allocates an id and captures the start time at
/// construction, records the completed span at destruction.  An empty
/// name or a disabled tracer makes the scope inert.
class TraceScope {
public:
  explicit TraceScope(std::string Name);
  ~TraceScope();
  TraceScope(const TraceScope &) = delete;
  TraceScope &operator=(const TraceScope &) = delete;

  /// Id of the open span (0 when inert) — what a coordinator hands to a
  /// child process as the parent of the child's spans.
  uint64_t spanId() const { return SpanId; }

private:
  std::string N;
  double StartMicros = 0;
  uint64_t SpanId = 0;
  uint64_t Parent = 0;
  uint64_t PrevThreadParent = 0;
};

} // namespace obs
} // namespace spa

/// Opens a span named by \p NameExpr for the rest of the enclosing
/// scope.  \p NameExpr is evaluated only when the tracer is recording,
/// so dynamic names (per-procedure spans) cost nothing otherwise.
#define SPA_OBS_TRACE(NameExpr)                                                \
  ::spa::obs::TraceScope SPA_OBS_CONCAT(ObsTrace_, __LINE__)(                  \
      ::spa::obs::Tracer::global().enabled() ? std::string(NameExpr)           \
                                             : std::string())

#endif // SPA_OBS_TRACE_H
