//===- Trace.h - Hierarchical scoped tracer --------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII phase tracing.  A TraceScope records a begin event at
/// construction and the matching end event at destruction, so nesting
/// scopes (pre-analysis -> def/use -> dep-build -> fixpoint, with
/// per-procedure spans inside the dependency builder) yields a balanced,
/// hierarchical span tree.  The Tracer serializes it as Chrome
/// trace-event JSON (the chrome://tracing / Perfetto format).
///
/// Recording is off by default: an inactive TraceScope costs one branch.
/// Drivers that pass --trace-out enable the tracer before analysis runs.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_OBS_TRACE_H
#define SPA_OBS_TRACE_H

#include "obs/Metrics.h" // SPA_OBS_CONCAT

#include <chrono>
#include <mutex>
#include <string>
#include <vector>

namespace spa {
namespace obs {

/// One begin ('B') or end ('E') event, timestamped in microseconds since
/// the tracer's epoch.
struct TraceEvent {
  std::string Name;
  char Phase; ///< 'B' or 'E'.
  double TsMicros;
};

/// Process-wide event collector.  begin/end are mutex-guarded so spans
/// opened from pool workers cannot corrupt the buffer, but interleaved
/// cross-thread spans would still nest wrongly in the Chrome view —
/// phases that fan out keep their per-item spans on the orchestrating
/// thread (or skip them) and only record the enclosing phase span.
class Tracer {
public:
  static Tracer &global();

  void enable() { Enabled = true; }
  void disable() { Enabled = false; }
  bool enabled() const { return Enabled; }

  void begin(std::string Name);
  void end(std::string Name);

  void clear() { Events.clear(); }
  const std::vector<TraceEvent> &events() const { return Events; }

  /// Serializes the recorded events as Chrome trace-event JSON
  /// ({"traceEvents": [...]}), loadable in chrome://tracing.
  std::string toChromeJson() const;

private:
  Tracer() : Epoch(std::chrono::steady_clock::now()) {}
  double nowMicros() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - Epoch)
        .count();
  }

  bool Enabled = false;
  std::chrono::steady_clock::time_point Epoch;
  std::mutex M;
  std::vector<TraceEvent> Events;
};

/// RAII span: begin on construction, end on destruction.  An empty name
/// or a disabled tracer makes the scope inert.
class TraceScope {
public:
  explicit TraceScope(std::string Name) {
    if (!Name.empty() && Tracer::global().enabled()) {
      N = std::move(Name);
      Tracer::global().begin(N);
    }
  }
  ~TraceScope() {
    if (!N.empty())
      Tracer::global().end(std::move(N));
  }
  TraceScope(const TraceScope &) = delete;
  TraceScope &operator=(const TraceScope &) = delete;

private:
  std::string N;
};

} // namespace obs
} // namespace spa

/// Opens a span named by \p NameExpr for the rest of the enclosing
/// scope.  \p NameExpr is evaluated only when the tracer is recording,
/// so dynamic names (per-procedure spans) cost nothing otherwise.
#define SPA_OBS_TRACE(NameExpr)                                                \
  ::spa::obs::TraceScope SPA_OBS_CONCAT(ObsTrace_, __LINE__)(                  \
      ::spa::obs::Tracer::global().enabled() ? std::string(NameExpr)           \
                                             : std::string())

#endif // SPA_OBS_TRACE_H
