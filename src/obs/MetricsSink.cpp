//===- MetricsSink.cpp - Structured metrics export -------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/MetricsSink.h"

#include <cmath>
#include <cstdio>

using namespace spa::obs;

std::string MetricsSink::formatValue(double V) {
  char Buf[40];
  if (std::isfinite(V) && V == std::floor(V) && std::fabs(V) < 1e15)
    std::snprintf(Buf, sizeof(Buf), "%.0f", V);
  else
    std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  return Buf;
}

std::string MetricsSink::toJson(const Registry &R) {
  std::string Out = "{";
  bool First = true;
  for (const auto &[Name, V] : R.snapshot()) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  \"" + Name + "\": " + formatValue(V);
  }
  Out += "\n}\n";
  return Out;
}

std::string MetricsSink::toKeyValueText(const Registry &R) {
  std::string Out;
  for (const auto &[Name, V] : R.snapshot())
    Out += Name + "=" + formatValue(V) + "\n";
  return Out;
}

bool MetricsSink::writeFile(const std::string &Path,
                            const std::string &Content) {
  if (Path == "-") {
    std::fwrite(Content.data(), 1, Content.size(), stdout);
    return true;
  }
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t N = std::fwrite(Content.data(), 1, Content.size(), F);
  bool Ok = N == Content.size();
  return std::fclose(F) == 0 && Ok;
}
