//===- MetricsSink.cpp - Structured metrics export -------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/MetricsSink.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fcntl.h>
#include <unistd.h>

using namespace spa::obs;

std::string MetricsSink::formatValue(double V) {
  char Buf[40];
  if (std::isfinite(V) && V == std::floor(V) && std::fabs(V) < 1e15)
    std::snprintf(Buf, sizeof(Buf), "%.0f", V);
  else
    std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  return Buf;
}

std::string MetricsSink::toJson(const Registry &R) {
  std::string Out = "{";
  bool First = true;
  for (const auto &[Name, V] : R.snapshot()) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  \"" + Name + "\": " + formatValue(V);
  }
  Out += "\n}\n";
  return Out;
}

std::string MetricsSink::toKeyValueText(const Registry &R) {
  std::string Out;
  for (const auto &[Name, V] : R.snapshot())
    Out += Name + "=" + formatValue(V) + "\n";
  return Out;
}

bool MetricsSink::writeFile(const std::string &Path,
                            const std::string &Content) {
  if (Path == "-") {
    std::fwrite(Content.data(), 1, Content.size(), stdout);
    return true;
  }
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t N = std::fwrite(Content.data(), 1, Content.size(), F);
  bool Ok = N == Content.size();
  return std::fclose(F) == 0 && Ok;
}

std::string MetricsSink::benchJsonPathFromEnv() {
  const char *Env = std::getenv("SPA_BENCH_JSON");
  return Env ? Env : "";
}

void MetricsSink::appendBenchRecord(const std::string &Bench,
                                    const std::string &Engine, bool Ok) {
  std::string Path = benchJsonPathFromEnv();
  if (Path.empty())
    return;
  auto Quote = [](const std::string &S) {
    std::string R = "\"";
    for (char C : S) {
      if (C == '"' || C == '\\')
        R += '\\';
      R += C;
    }
    return R += '"';
  };
  // toJson pretty-prints across lines; a JSONL record must stay on one.
  std::string Metrics = toJson(Registry::global());
  std::string Flat;
  for (char C : Metrics)
    if (C != '\n')
      Flat += C;
  std::string Line = "{\"bench\": " + Quote(Bench) +
                     ", \"engine\": " + Quote(Engine) +
                     ", \"ok\": " + (Ok ? "1" : "0") +
                     ", \"metrics\": " + Flat + "}\n";
  int Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (Fd < 0)
    return;
  size_t Off = 0;
  while (Off < Line.size()) {
    ssize_t N = ::write(Fd, Line.data() + Off, Line.size() - Off);
    if (N <= 0)
      break;
    Off += static_cast<size_t>(N);
  }
  ::close(Fd);
}
