//===- Trace.cpp - Cross-process distributed tracer ------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <sys/syscall.h>
#include <unistd.h>

namespace spa {
namespace obs {

namespace {

/// Leading u32 of a serialized span buffer.  Distinct from the crash
/// postmortem pipe magic (0xDEADD00D) so the two optional sections of a
/// child result pipe can't be confused.
constexpr uint32_t SpanBufMagic = 0x53504254u; // "SPBT"

/// Serialized span buffers arrive over pipes that can tear; cap the
/// per-span name so a corrupt length prefix can't ask for gigabytes.
constexpr uint32_t MaxSpanNameBytes = 1u << 20;

/// Span id of the innermost open TraceScope on this thread (0 = none;
/// new spans then root under the tracer's process parent).
thread_local uint64_t ThreadParentSpan = 0;

struct PidTid {
  uint32_t Pid;
  uint32_t Tid;
};

/// Pid/tid of the calling thread.  The tid is cached per thread but
/// revalidated against getpid() so values stay correct across fork.
PidTid currentPidTid() {
  thread_local pid_t CachedPid = -1;
  thread_local pid_t CachedTid = -1;
  pid_t P = ::getpid();
  if (P != CachedPid) {
    CachedPid = P;
    CachedTid = static_cast<pid_t>(::syscall(SYS_gettid));
  }
  return {static_cast<uint32_t>(P), static_cast<uint32_t>(CachedTid)};
}

uint64_t steadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Appends \p S to \p Out with JSON string escaping.
void appendEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  Out.insert(Out.end(), reinterpret_cast<const uint8_t *>(&V),
             reinterpret_cast<const uint8_t *>(&V) + sizeof(V));
}

void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  Out.insert(Out.end(), reinterpret_cast<const uint8_t *>(&V),
             reinterpret_cast<const uint8_t *>(&V) + sizeof(V));
}

void putF64(std::vector<uint8_t> &Out, double V) {
  Out.insert(Out.end(), reinterpret_cast<const uint8_t *>(&V),
             reinterpret_cast<const uint8_t *>(&V) + sizeof(V));
}

/// Bounds-checked reader over a serialized span buffer.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Len) : P(Data), End(Data + Len) {}

  bool readU32(uint32_t &V) { return readRaw(&V, sizeof(V)); }
  bool readU64(uint64_t &V) { return readRaw(&V, sizeof(V)); }
  bool readF64(double &V) { return readRaw(&V, sizeof(V)); }

  bool readString(std::string &S, uint32_t Len) {
    if (static_cast<size_t>(End - P) < Len)
      return false;
    S.assign(reinterpret_cast<const char *>(P), Len);
    P += Len;
    return true;
  }

private:
  bool readRaw(void *Out, size_t N) {
    if (static_cast<size_t>(End - P) < N)
      return false;
    std::memcpy(Out, P, N);
    P += N;
    return true;
  }

  const uint8_t *P;
  const uint8_t *End;
};

size_t serializedSpanBytes(const TraceSpan &S) {
  return 8 + 8 + 4 + 4 + 8 + 8 + 4 + S.Name.size();
}

} // namespace

uint64_t obsEpochNanos() {
  static const uint64_t Epoch = [] {
    if (const char *Env = std::getenv(ObsEpochEnvVar)) {
      char *EndP = nullptr;
      unsigned long long V = std::strtoull(Env, &EndP, 10);
      if (EndP && EndP != Env && *EndP == '\0')
        return static_cast<uint64_t>(V);
    }
    return steadyNowNanos();
  }();
  return Epoch;
}

double obsNowMicros() {
  // Pin the epoch BEFORE sampling the clock: if this is the process's
  // first epoch touch, the lazy init would otherwise capture a stamp
  // later than the minuend and the subtraction underflows.
  uint64_t Epoch = obsEpochNanos();
  return static_cast<double>(steadyNowNanos() - Epoch) / 1000.0;
}

Tracer &Tracer::global() {
  static Tracer T;
  return T;
}

Tracer::Tracer() {
  // Pin the shared timebase before any span can be stamped.
  (void)obsEpochNanos();
  if (const char *Env = std::getenv(TraceContextEnvVar)) {
    // "traceid:parentspan", both hex.  A parseable context also enables
    // recording: the spawner only exports it when tracing.
    unsigned long long Id = 0, Parent = 0;
    if (std::sscanf(Env, "%llx:%llx", &Id, &Parent) == 2 && Id != 0) {
      TraceId.store(static_cast<uint64_t>(Id), std::memory_order_relaxed);
      ProcessParent.store(static_cast<uint64_t>(Parent),
                          std::memory_order_relaxed);
      Enabled.store(true, std::memory_order_relaxed);
    }
  }
}

uint64_t Tracer::traceId() {
  uint64_t Id = TraceId.load(std::memory_order_relaxed);
  if (Id != 0)
    return Id;
  // Mint from pid + clock; the multiplier is the 64-bit FNV prime.
  uint64_t Minted = (static_cast<uint64_t>(::getpid()) << 32) ^
                    (steadyNowNanos() * 1099511628211ull);
  if (Minted == 0)
    Minted = 1;
  uint64_t Expected = 0;
  if (TraceId.compare_exchange_strong(Expected, Minted,
                                      std::memory_order_relaxed))
    return Minted;
  return Expected;
}

uint64_t Tracer::allocSpanId() {
  uint64_t Local = NextLocalId.fetch_add(1, std::memory_order_relaxed);
  return (static_cast<uint64_t>(::getpid()) << 32) | (Local & 0xffffffffull);
}

void Tracer::record(TraceSpan S) {
  SPA_OBS_COUNT("trace.spans", 1);
  std::lock_guard<std::mutex> Lock(M);
  if (RingCap != 0 && Spans.size() >= RingCap) {
    Spans.pop_front();
    ++Dropped;
    SPA_OBS_COUNT("trace.dropped", 1);
  }
  Spans.push_back(std::move(S));
}

void Tracer::addSpan(std::string Name, double TsMicros, double DurMicros,
                     uint64_t SpanId, uint64_t ParentSpanId) {
  if (!enabled())
    return;
  PidTid PT = currentPidTid();
  TraceSpan S;
  S.Name = std::move(Name);
  S.TsMicros = TsMicros;
  S.DurMicros = DurMicros;
  S.Pid = PT.Pid;
  S.Tid = PT.Tid;
  S.SpanId = SpanId;
  S.ParentSpanId = ParentSpanId;
  record(std::move(S));
}

void Tracer::setRingCapacity(size_t Cap) {
  std::lock_guard<std::mutex> Lock(M);
  RingCap = Cap;
  while (Cap != 0 && Spans.size() > Cap) {
    Spans.pop_front();
    ++Dropped;
  }
}

std::vector<uint8_t> Tracer::drainSerialized(size_t MaxBytes) {
  std::lock_guard<std::mutex> Lock(M);
  constexpr size_t HeaderBytes = 4 + 4 + 8;
  // Keep the newest suffix that fits the byte budget.
  size_t First = 0;
  if (MaxBytes != 0) {
    size_t Used = HeaderBytes;
    First = Spans.size();
    while (First > 0 &&
           Used + serializedSpanBytes(Spans[First - 1]) <= MaxBytes)
      Used += serializedSpanBytes(Spans[--First]);
  }
  Dropped += First;

  std::vector<uint8_t> Out;
  putU32(Out, SpanBufMagic);
  putU32(Out, static_cast<uint32_t>(Spans.size() - First));
  putU64(Out, TraceId.load(std::memory_order_relaxed));
  for (size_t I = First, E = Spans.size(); I != E; ++I) {
    const TraceSpan &S = Spans[I];
    putU64(Out, S.SpanId);
    putU64(Out, S.ParentSpanId);
    putU32(Out, S.Pid);
    putU32(Out, S.Tid);
    putF64(Out, S.TsMicros);
    putF64(Out, S.DurMicros);
    putU32(Out, static_cast<uint32_t>(S.Name.size()));
    Out.insert(Out.end(), S.Name.begin(), S.Name.end());
  }
  Spans.clear();
  return Out;
}

bool Tracer::ingestSerialized(const uint8_t *Data, size_t Len) {
  ByteReader R(Data, Len);
  uint32_t Magic = 0, Count = 0;
  uint64_t BufTraceId = 0;
  if (!R.readU32(Magic) || Magic != SpanBufMagic || !R.readU32(Count) ||
      !R.readU64(BufTraceId))
    return false;

  std::vector<TraceSpan> Parsed;
  Parsed.reserve(std::min<uint32_t>(Count, 4096));
  for (uint32_t I = 0; I < Count; ++I) {
    TraceSpan S;
    uint32_t NameLen = 0;
    if (!R.readU64(S.SpanId) || !R.readU64(S.ParentSpanId) ||
        !R.readU32(S.Pid) || !R.readU32(S.Tid) || !R.readF64(S.TsMicros) ||
        !R.readF64(S.DurMicros) || !R.readU32(NameLen) ||
        NameLen > MaxSpanNameBytes || !R.readString(S.Name, NameLen))
      return false;
    Parsed.push_back(std::move(S));
  }

  // Adopt the child's trace id when none was established here.
  uint64_t Expected = 0;
  if (BufTraceId != 0)
    TraceId.compare_exchange_strong(Expected, BufTraceId,
                                    std::memory_order_relaxed);

  std::lock_guard<std::mutex> Lock(M);
  for (TraceSpan &S : Parsed) {
    if (RingCap != 0 && Spans.size() >= RingCap) {
      Spans.pop_front();
      ++Dropped;
    }
    Spans.push_back(std::move(S));
  }
  return true;
}

std::string Tracer::toChromeJson() const {
  std::vector<TraceSpan> Sorted;
  uint64_t Id;
  {
    std::lock_guard<std::mutex> Lock(M);
    Sorted.assign(Spans.begin(), Spans.end());
    Id = TraceId.load(std::memory_order_relaxed);
  }
  std::sort(Sorted.begin(), Sorted.end(),
            [](const TraceSpan &A, const TraceSpan &B) {
              if (A.TsMicros != B.TsMicros)
                return A.TsMicros < B.TsMicros;
              if (A.Pid != B.Pid)
                return A.Pid < B.Pid;
              return A.SpanId < B.SpanId;
            });

  std::string Out;
  Out.reserve(128 + Sorted.size() * 160);
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "{\"traceId\":\"0x%" PRIx64 "\",\"epochNanos\":%" PRIu64
                ",\"traceEvents\":[",
                Id, obsEpochNanos());
  Out += Buf;
  bool FirstEv = true;
  for (const TraceSpan &S : Sorted) {
    if (!FirstEv)
      Out += ",";
    FirstEv = false;
    Out += "\n{\"name\":\"";
    appendEscaped(Out, S.Name);
    std::snprintf(Buf, sizeof(Buf),
                  "\",\"cat\":\"spa\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                  "\"pid\":%u,\"tid\":%u,\"args\":{\"id\":\"0x%" PRIx64
                  "\",\"parent\":\"0x%" PRIx64 "\"}}",
                  S.TsMicros, S.DurMicros, S.Pid, S.Tid, S.SpanId,
                  S.ParentSpanId);
    Out += Buf;
  }
  Out += "\n]}\n";
  return Out;
}

std::vector<TraceSpan> Tracer::spans() const {
  std::lock_guard<std::mutex> Lock(M);
  return std::vector<TraceSpan>(Spans.begin(), Spans.end());
}

uint64_t Tracer::droppedSpans() const {
  std::lock_guard<std::mutex> Lock(M);
  return Dropped;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> Lock(M);
  Spans.clear();
  Dropped = 0;
}

void Tracer::resetForChild(uint64_t ParentSpanId) {
  {
    std::lock_guard<std::mutex> Lock(M);
    Spans.clear();
    Dropped = 0;
  }
  ProcessParent.store(ParentSpanId, std::memory_order_relaxed);
  // The forking thread is the only one alive in the child; its open-scope
  // chain belongs to the parent process.
  ThreadParentSpan = 0;
}

std::string Tracer::contextString(uint64_t ParentSpanId) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%" PRIx64 ":%" PRIx64, traceId(),
                ParentSpanId);
  return Buf;
}

TraceScope::TraceScope(std::string Name) : N(std::move(Name)) {
  if (N.empty())
    return;
  Tracer &T = Tracer::global();
  if (!T.enabled())
    return;
  StartMicros = obsNowMicros();
  SpanId = T.allocSpanId();
  Parent = ThreadParentSpan != 0 ? ThreadParentSpan : T.processParent();
  PrevThreadParent = ThreadParentSpan;
  ThreadParentSpan = SpanId;
}

TraceScope::~TraceScope() {
  if (SpanId == 0)
    return;
  ThreadParentSpan = PrevThreadParent;
  PidTid PT = currentPidTid();
  TraceSpan S;
  S.Name = std::move(N);
  S.TsMicros = StartMicros;
  S.DurMicros = obsNowMicros() - StartMicros;
  S.Pid = PT.Pid;
  S.Tid = PT.Tid;
  S.SpanId = SpanId;
  S.ParentSpanId = Parent;
  Tracer::global().record(std::move(S));
}

} // namespace obs
} // namespace spa
