//===- Trace.cpp - Hierarchical scoped tracer ------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include <cstdio>

using namespace spa::obs;

Tracer &Tracer::global() {
  static Tracer T;
  return T;
}

void Tracer::begin(std::string Name) {
  if (!Enabled)
    return;
  std::lock_guard<std::mutex> Lock(M);
  Events.push_back(TraceEvent{std::move(Name), 'B', nowMicros()});
}

void Tracer::end(std::string Name) {
  if (!Enabled)
    return;
  std::lock_guard<std::mutex> Lock(M);
  Events.push_back(TraceEvent{std::move(Name), 'E', nowMicros()});
}

namespace {

void appendEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

} // namespace

std::string Tracer::toChromeJson() const {
  std::string Out = "{\"traceEvents\":[";
  bool First = true;
  for (const TraceEvent &E : Events) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n{\"name\":\"";
    appendEscaped(Out, E.Name);
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf),
                  "\",\"cat\":\"spa\",\"ph\":\"%c\",\"ts\":%.3f,"
                  "\"pid\":1,\"tid\":1}",
                  E.Phase, E.TsMicros);
    Out += Buf;
  }
  Out += "\n]}\n";
  return Out;
}
