//===- Postmortem.cpp - Crash postmortems and the stall watchdog -----------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Postmortem.h"

#include "obs/Metrics.h"

#include <atomic>
#include <cstring>
#include <string>
#include <thread>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/syscall.h>
#endif

using namespace spa::obs;

const char *spa::obs::postmortemReasonName(PostmortemReason R) {
  switch (R) {
  case PostmortemReason::None:
    return "none";
  case PostmortemReason::Signal:
    return "signal";
  case PostmortemReason::Stall:
    return "stall";
  case PostmortemReason::Oom:
    return "oom";
  }
  return "unknown";
}

std::string spa::obs::postmortemSummaryText(const PostmortemSummary &S) {
  PostmortemReason R = static_cast<PostmortemReason>(S.Reason);
  std::string Out = postmortemReasonName(R);
  // Built with append only: GCC 12's -O3 -Wrestrict misfires on the
  // `"literal" + std::string(...)` chain form (GCC PR105651).
  if (R == PostmortemReason::Signal) {
    Out += ' ';
    Out += std::to_string(S.Detail);
  }
  if (R == PostmortemReason::Stall) {
    Out += " in partition ";
    Out += std::to_string(S.Partition);
    Out += ", worklist depth ";
    Out += std::to_string(S.WorklistDepth);
  }
  Out += "; last event ";
  Out += journalEventName(static_cast<JournalEventKind>(S.LastEventKind));
  Out += '(';
  Out += std::to_string(S.LastEventA);
  Out += ',';
  Out += std::to_string(S.LastEventB);
  Out += ')';
  Out += "; heartbeats ";
  Out += std::to_string(S.HeartbeatTotal);
  return Out;
}

#if SPA_OBS_ENABLED

namespace {

// ---- State shared with the signal handler: plain atomics and fixed
// ---- buffers only.  The handler never allocates or locks.

std::atomic<int> OutFd{-1};
std::atomic<int> PipeFd{-1};
std::atomic<bool> Installed{false};
std::atomic<bool> Wrote{false};
std::atomic<int> WriteOnce{0};
char FilePath[512] = {0};
char RunId[128] = {0};

std::atomic<uint64_t> RollVisits{0}, RollWidenings{0}, RollGrowth{0},
    RollTimeMicros{0};

/// Frozen registry index.  Instrument addresses are stable for the
/// process lifetime (Registry never erases), so the handler can read
/// the atomics behind them without touching the registry mutex.
constexpr uint32_t MaxIndexEntries = 768;
struct IndexEntry {
  char Name[48];
  const void *Ptr;
  bool IsGauge;
};
IndexEntry Index[MaxIndexEntries];
std::atomic<uint32_t> IndexCount{0};

struct sigaction OldSegv, OldBus, OldAbrt;

// ---- Async-signal-safe formatting: raw write(2) plus integer/decimal
// ---- renderers on stack buffers.  No stdio, no allocation.

void wrRaw(const void *P, size_t N) {
  int Fd = OutFd.load(std::memory_order_relaxed);
  if (Fd < 0)
    return;
  const char *C = static_cast<const char *>(P);
  while (N > 0) {
    ssize_t W = write(Fd, C, N);
    if (W <= 0)
      return;
    C += W;
    N -= static_cast<size_t>(W);
  }
}

void wr(const char *S) { wrRaw(S, std::strlen(S)); }

void wrU64(uint64_t V) {
  char Buf[24];
  char *P = Buf + sizeof(Buf);
  do {
    *--P = static_cast<char>('0' + V % 10);
    V /= 10;
  } while (V);
  wrRaw(P, static_cast<size_t>(Buf + sizeof(Buf) - P));
}

/// Fixed-point rendering of a gauge double: sign, integer part, and six
/// decimals (values beyond u64 range clamp).  Postmortem gauges are
/// seconds / sizes / rates, all comfortably inside that envelope.
void wrF(double V) {
  if (V != V) { // NaN
    wr("0");
    return;
  }
  if (V < 0) {
    wr("-");
    V = -V;
  }
  if (V >= 1.8e19) {
    wrU64(UINT64_MAX);
    return;
  }
  uint64_t I = static_cast<uint64_t>(V);
  uint64_t Frac = static_cast<uint64_t>((V - static_cast<double>(I)) * 1e6);
  if (Frac >= 1000000) { // rounding edge
    Frac = 0;
    ++I;
  }
  wrU64(I);
  if (Frac) {
    char Buf[8] = {'.', '0', '0', '0', '0', '0', '0', 0};
    for (int D = 6; D >= 1; --D) {
      Buf[D] = static_cast<char>('0' + Frac % 10);
      Frac /= 10;
    }
    int Len = 7;
    while (Len > 1 && Buf[Len - 1] == '0')
      --Len;
    wrRaw(Buf, static_cast<size_t>(Len));
  }
}

void wrQuoted(const char *S) {
  wr("\"");
  for (; *S; ++S) {
    char C = *S;
    if (C == '"' || C == '\\') {
      char Esc[2] = {'\\', C};
      wrRaw(Esc, 2);
    } else if (static_cast<unsigned char>(C) < 0x20) {
      wrRaw("?", 1);
    } else {
      wrRaw(&C, 1);
    }
  }
  wr("\"");
}

uint32_t currentOsTid() {
#ifdef __linux__
  return static_cast<uint32_t>(syscall(SYS_gettid));
#else
  return static_cast<uint32_t>(getpid());
#endif
}

/// Newest record of \p S, if any (acquire-load pairs with the writer's
/// release publication).
bool lastRecord(const JournalSlot &S, JournalRecord &R) {
  uint64_t H = S.Head.load(std::memory_order_acquire);
  if (H == 0)
    return false;
  R = S.Ring[(H - 1) & (JournalRingCap - 1)];
  return true;
}

/// Fills the compact pipe summary.  \p Reason / \p Detail as in
/// postmortemWriteNow; the context slot is the stalled one for stalls,
/// else the current thread's slot, else the slot with the newest event.
void buildSummary(PostmortemReason Reason, uint64_t Detail,
                  PostmortemSummary &Sum) {
  Sum.Reason = static_cast<uint64_t>(Reason);
  Sum.Detail = Detail;
  Sum.ElapsedMicros = journalNowMicros();
  JournalSlot *Slots = journalSlots();
  const JournalSlot *Ctx = nullptr;
  if (Reason == PostmortemReason::Stall && Detail < journalNumSlots())
    Ctx = &Slots[Detail];
  uint32_t Tid = currentOsTid();
  uint64_t BestSeq = 0;
  JournalRecord Last;
  for (uint32_t I = 0; I < journalNumSlots(); ++I) {
    const JournalSlot &S = Slots[I];
    Sum.HeartbeatTotal += S.Heartbeat.load(std::memory_order_relaxed);
    if (!Ctx && S.Used.load(std::memory_order_relaxed) &&
        S.OsTid.load(std::memory_order_relaxed) == Tid)
      Ctx = &S;
    JournalRecord R;
    if (lastRecord(S, R) && R.Seq > BestSeq) {
      BestSeq = R.Seq;
      Last = R;
    }
  }
  if (!Ctx) {
    // Fall back to the slot owning the globally newest event.
    for (uint32_t I = 0; I < journalNumSlots(); ++I) {
      JournalRecord R;
      if (lastRecord(Slots[I], R) && R.Seq == BestSeq && BestSeq) {
        Ctx = &Slots[I];
        break;
      }
    }
  }
  if (Ctx) {
    Sum.WorklistDepth = Ctx->WorklistDepth.load(std::memory_order_relaxed);
    Sum.Partition = Ctx->Partition.load(std::memory_order_relaxed);
    JournalRecord R;
    if (lastRecord(*Ctx, R)) {
      Sum.LastEventKind = R.Kind;
      Sum.LastEventA = R.A;
      Sum.LastEventB = R.B;
    }
  } else if (BestSeq) {
    Sum.LastEventKind = Last.Kind;
    Sum.LastEventA = Last.A;
    Sum.LastEventB = Last.B;
  }
}

void shipPipeSummary(const PostmortemSummary &Sum) {
  int Fd = PipeFd.load(std::memory_order_relaxed);
  if (Fd < 0)
    return;
  uint32_t Magic = PostmortemPipeMagic;
  // Magic + summary total 76 bytes: one atomic pipe write (< PIPE_BUF).
  char Buf[sizeof(Magic) + sizeof(Sum)];
  std::memcpy(Buf, &Magic, sizeof(Magic));
  std::memcpy(Buf + sizeof(Magic), &Sum, sizeof(Sum));
  size_t N = sizeof(Buf);
  const char *P = Buf;
  while (N > 0) {
    ssize_t W = write(Fd, P, N);
    if (W <= 0)
      break;
    P += W;
    N -= static_cast<size_t>(W);
  }
}

void writeDocument(PostmortemReason Reason, uint64_t Detail,
                   const PostmortemSummary &Sum) {
  wr("{\n  \"schema\": \"spa-postmortem-v1\",\n  \"run_id\": ");
  wrQuoted(RunId);
  wr(",\n  \"pid\": ");
  wrU64(static_cast<uint64_t>(getpid()));
  wr(",\n  \"reason\": ");
  wrQuoted(postmortemReasonName(Reason));
  if (Reason == PostmortemReason::Signal) {
    wr(",\n  \"signal\": ");
    wrU64(Detail);
  }
  if (Reason == PostmortemReason::Stall) {
    wr(",\n  \"stalled_slot\": ");
    wrU64(Detail);
  }
  wr(",\n  \"elapsed_micros\": ");
  wrU64(Sum.ElapsedMicros);
  wr(",\n  \"heartbeat_total\": ");
  wrU64(Sum.HeartbeatTotal);
  wr(",\n  \"last_event\": {\"kind\": ");
  wrQuoted(journalEventName(
      static_cast<JournalEventKind>(Sum.LastEventKind)));
  wr(", \"a\": ");
  wrU64(Sum.LastEventA);
  wr(", \"b\": ");
  wrU64(Sum.LastEventB);
  wr("},\n  \"ledger_rollup\": {\"visits\": ");
  wrU64(RollVisits.load(std::memory_order_relaxed));
  wr(", \"widenings\": ");
  wrU64(RollWidenings.load(std::memory_order_relaxed));
  wr(", \"growth\": ");
  wrU64(RollGrowth.load(std::memory_order_relaxed));
  wr(", \"time_micros\": ");
  wrU64(RollTimeMicros.load(std::memory_order_relaxed));
  wr("},\n  \"counters\": {");
  uint32_t N = IndexCount.load(std::memory_order_acquire);
  bool First = true;
  for (uint32_t I = 0; I < N; ++I) {
    if (Index[I].IsGauge)
      continue;
    wr(First ? "\n    " : ",\n    ");
    First = false;
    wrQuoted(Index[I].Name);
    wr(": ");
    wrU64(static_cast<const Counter *>(Index[I].Ptr)->value());
  }
  wr(First ? "}" : "\n  }");
  wr(",\n  \"gauges\": {");
  First = true;
  for (uint32_t I = 0; I < N; ++I) {
    if (!Index[I].IsGauge)
      continue;
    wr(First ? "\n    " : ",\n    ");
    First = false;
    wrQuoted(Index[I].Name);
    wr(": ");
    wrF(static_cast<const Gauge *>(Index[I].Ptr)->value());
  }
  wr(First ? "}" : "\n  }");
  wr(",\n  \"threads\": [");
  JournalSlot *Slots = journalSlots();
  bool FirstSlot = true;
  for (uint32_t I = 0; I < journalNumSlots(); ++I) {
    const JournalSlot &S = Slots[I];
    uint64_t Head = S.Head.load(std::memory_order_acquire);
    if (Head == 0 && !S.Used.load(std::memory_order_relaxed) &&
        S.Heartbeat.load(std::memory_order_relaxed) == 0)
      continue;
    wr(FirstSlot ? "\n    {" : ",\n    {");
    FirstSlot = false;
    wr("\"slot\": ");
    wrU64(I);
    wr(", \"tid\": ");
    wrU64(S.OsTid.load(std::memory_order_relaxed));
    wr(", \"heartbeat\": ");
    wrU64(S.Heartbeat.load(std::memory_order_relaxed));
    wr(", \"in_fix\": ");
    wrU64(S.FixDepth.load(std::memory_order_relaxed));
    wr(", \"worklist_depth\": ");
    wrU64(S.WorklistDepth.load(std::memory_order_relaxed));
    wr(", \"partition\": ");
    wrU64(S.Partition.load(std::memory_order_relaxed));
    wr(",\n     \"events\": [");
    uint64_t Count = Head < JournalRingCap ? Head : JournalRingCap;
    for (uint64_t K = 0; K < Count; ++K) {
      const JournalRecord &R =
          S.Ring[(Head - Count + K) & (JournalRingCap - 1)];
      wr(K ? ",\n       {" : "\n       {");
      wr("\"seq\": ");
      wrU64(R.Seq);
      wr(", \"t_us\": ");
      wrU64(R.TimeMicros);
      wr(", \"kind\": ");
      wrQuoted(journalEventName(static_cast<JournalEventKind>(R.Kind)));
      wr(", \"a\": ");
      wrU64(R.A);
      wr(", \"b\": ");
      wrU64(R.B);
      wr("}");
    }
    wr(Count ? "\n     ]}" : "]}");
  }
  wr(FirstSlot ? "]\n}\n" : "\n  ]\n}\n");
}

void onFatalSignal(int Sig) {
  postmortemWriteNow(PostmortemReason::Signal, static_cast<uint64_t>(Sig));
  // SA_RESETHAND restored the default disposition; re-raise so the
  // process still dies with the true signal status.
  raise(Sig);
}

// ---- Watchdog ----

std::atomic<bool> WdStopFlag{false};
std::thread *WdThread = nullptr;

void watchdogLoop(uint32_t IntervalMs) {
  uint64_t LastBeat[JournalMaxSlots] = {0};
  uint8_t StaleIntervals[JournalMaxSlots] = {0};
  JournalSlot *Slots = journalSlots();
  for (;;) {
    uint32_t SleptMs = 0;
    while (SleptMs < IntervalMs) {
      if (WdStopFlag.load(std::memory_order_relaxed))
        return;
      uint32_t Chunk = IntervalMs - SleptMs < 10 ? IntervalMs - SleptMs : 10;
      usleep(Chunk * 1000);
      SleptMs += Chunk;
    }
    for (uint32_t I = 0; I < JournalMaxSlots; ++I) {
      JournalSlot &S = Slots[I];
      uint64_t Beat = S.Heartbeat.load(std::memory_order_relaxed);
      // Only a thread *inside a fixpoint scope* is expected to make
      // progress; parsing, building, or idling lanes are exempt.
      if (!S.Used.load(std::memory_order_relaxed) ||
          S.FixDepth.load(std::memory_order_relaxed) == 0 ||
          Beat != LastBeat[I]) {
        LastBeat[I] = Beat;
        StaleIntervals[I] = 0;
        continue;
      }
      if (++StaleIntervals[I] < 2)
        continue;
      // Two consecutive intervals without one heartbeat: stalled.
      journalRecord(JournalEventKind::HeartbeatStall, I, Beat);
      postmortemWriteNow(PostmortemReason::Stall, I);
      const char Msg[] = "spa: watchdog: fixpoint stalled, aborting run\n";
      ssize_t W = write(2, Msg, sizeof(Msg) - 1);
      (void)W;
      _exit(StallExitCode);
    }
  }
}

} // namespace

bool spa::obs::postmortemInstall(const PostmortemOptions &Opts) {
  postmortemUninstall();
  const char *Id = Opts.RunId && *Opts.RunId ? Opts.RunId : "run";
  std::strncpy(RunId, Id, sizeof(RunId) - 1);
  RunId[sizeof(RunId) - 1] = 0;
  PipeFd.store(Opts.PipeFd, std::memory_order_relaxed);
  Wrote.store(false, std::memory_order_relaxed);
  WriteOnce.store(0, std::memory_order_relaxed);
  FilePath[0] = 0;

  bool FileOk = true;
  if (Opts.Dir && *Opts.Dir) {
    // <dir>/<sanitized-runid>.pm.json, pre-opened so the handler only
    // ever write(2)s.
    std::string Path(Opts.Dir);
    if (Path.back() != '/')
      Path += '/';
    for (const char *P = Id; *P; ++P) {
      char C = *P;
      bool Word = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                  (C >= '0' && C <= '9') || C == '-' || C == '.';
      Path += Word ? C : '_';
    }
    Path += ".pm.json";
    int Fd = open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
    if (Fd >= 0) {
      std::strncpy(FilePath, Path.c_str(), sizeof(FilePath) - 1);
      FilePath[sizeof(FilePath) - 1] = 0;
      OutFd.store(Fd, std::memory_order_relaxed);
    } else {
      FileOk = false;
    }
  }

  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onFatalSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = SA_RESETHAND;
  sigaction(SIGSEGV, &SA, &OldSegv);
  sigaction(SIGBUS, &SA, &OldBus);
  sigaction(SIGABRT, &SA, &OldAbrt);
  Installed.store(true, std::memory_order_relaxed);
  postmortemRefreshRegistryIndex();
  return FileOk;
}

void spa::obs::postmortemUninstall() {
  if (!Installed.exchange(false, std::memory_order_relaxed))
    return;
  watchdogStop();
  sigaction(SIGSEGV, &OldSegv, nullptr);
  sigaction(SIGBUS, &OldBus, nullptr);
  sigaction(SIGABRT, &OldAbrt, nullptr);
  int Fd = OutFd.exchange(-1, std::memory_order_relaxed);
  if (Fd >= 0) {
    close(Fd);
    // A clean run leaves an empty file behind; remove it so the
    // postmortem directory holds only actual deaths.
    if (!Wrote.load(std::memory_order_relaxed) && FilePath[0])
      unlink(FilePath);
  }
  PipeFd.store(-1, std::memory_order_relaxed);
}

bool spa::obs::postmortemActive() {
  return Installed.load(std::memory_order_relaxed);
}

std::string spa::obs::postmortemFilePath() { return FilePath; }

void spa::obs::postmortemRefreshRegistryIndex() {
  // Normal-context only: snapshots under the registry mutex, publishes
  // the frozen arrays with a release store the handler acquires.
  uint32_t N = 0;
  Registry::global().forEachInstrument(
      [&](const std::string &Name, const Counter &C) {
        if (N >= MaxIndexEntries)
          return;
        std::strncpy(Index[N].Name, Name.c_str(), sizeof(Index[N].Name) - 1);
        Index[N].Name[sizeof(Index[N].Name) - 1] = 0;
        Index[N].Ptr = &C;
        Index[N].IsGauge = false;
        ++N;
      },
      [&](const std::string &Name, const Gauge &G) {
        if (N >= MaxIndexEntries)
          return;
        std::strncpy(Index[N].Name, Name.c_str(), sizeof(Index[N].Name) - 1);
        Index[N].Name[sizeof(Index[N].Name) - 1] = 0;
        Index[N].Ptr = &G;
        Index[N].IsGauge = true;
        ++N;
      });
  IndexCount.store(N, std::memory_order_release);
}

void spa::obs::postmortemSetLedgerRollup(uint64_t Visits, uint64_t Widenings,
                                         uint64_t Growth,
                                         uint64_t TimeMicros) {
  RollVisits.store(Visits, std::memory_order_relaxed);
  RollWidenings.store(Widenings, std::memory_order_relaxed);
  RollGrowth.store(Growth, std::memory_order_relaxed);
  RollTimeMicros.store(TimeMicros, std::memory_order_relaxed);
}

bool spa::obs::postmortemWriteNow(PostmortemReason Reason, uint64_t Detail) {
  // First fatal event wins: a stall report racing the crash handler (or
  // a handler recursing through a second signal) must not interleave
  // two documents into one file.
  if (WriteOnce.exchange(1, std::memory_order_acq_rel))
    return false;
  PostmortemSummary Sum;
  buildSummary(Reason, Detail, Sum);
  shipPipeSummary(Sum);
  int Fd = OutFd.load(std::memory_order_relaxed);
  if (Fd < 0)
    return false;
  writeDocument(Reason, Detail, Sum);
  Wrote.store(true, std::memory_order_relaxed);
  return true;
}

void spa::obs::watchdogStart(uint32_t IntervalMs) {
  if (IntervalMs == 0 || WdThread)
    return;
  WdStopFlag.store(false, std::memory_order_relaxed);
  WdThread = new std::thread(watchdogLoop, IntervalMs);
}

void spa::obs::watchdogStop() {
  if (!WdThread)
    return;
  WdStopFlag.store(true, std::memory_order_relaxed);
  WdThread->join();
  delete WdThread;
  WdThread = nullptr;
}

#endif // SPA_OBS_ENABLED
