//===- Postmortem.h - Crash postmortems and the stall watchdog -------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forensics for runs that never complete (docs/OBSERVABILITY.md).  Two
/// cooperating pieces:
///
///  * The postmortem writer.  postmortemInstall() pre-opens an output
///    file and hooks SIGSEGV/SIGBUS/SIGABRT; when the process dies — or
///    when a hard memory cap turns operator new into a fatal trip — an
///    async-signal-safe writer dumps the run identity, every thread's
///    journal tail (obs/Journal.h), a registry snapshot taken through a
///    pre-built index of atomic instrument addresses, and the last
///    ledger rollups as one `spa-postmortem-v1` JSON document.  The
///    handler path performs no allocation, takes no locks, and touches
///    the registry only through relaxed atomic loads.
///
///  * The watchdog.  watchdogStart(IntervalMs) spawns a monitor thread
///    that samples the per-slot heartbeat counters every fixpoint loop
///    bumps; a thread that sits inside a fixpoint scope without a single
///    heartbeat across two consecutive intervals is declared stalled.
///    The watchdog then records the stall in the journal, emits a stall
///    postmortem (stuck partition, worklist depth, last event), ships
///    the compact summary through the batch pipe when one is attached,
///    and exits with StallExitCode — which the batch parent classifies
///    as `stalled`, distinct from `timeout`.
///
/// A compact fixed-size PostmortemSummary additionally travels over the
/// isolated-batch result pipe (support/Resource.h), tagged by a magic
/// length prefix no legitimate payload can produce, so crash/oom/stall
/// items carry a diagnosis back to the parent instead of a bare exit
/// code.
///
/// With -DSPA_OBS=OFF everything here compiles to no-ops: install
/// reports failure, the watchdog never starts, and no handler is hooked.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_OBS_POSTMORTEM_H
#define SPA_OBS_POSTMORTEM_H

#include "obs/Journal.h"

#include <string>

namespace spa {
namespace obs {

/// Exit code of a process the watchdog killed for lack of fixpoint
/// progress.  Distinct from OomExitCode (support/Fault.h) and from any
/// signal death; the batch parent maps it to BatchOutcome::Stalled.
constexpr int StallExitCode = 87;

/// Why a postmortem was written.
enum class PostmortemReason : uint8_t {
  None = 0,
  Signal = 1, ///< SIGSEGV / SIGBUS / SIGABRT.
  Stall = 2,  ///< Watchdog: heartbeats stopped inside a fixpoint.
  Oom = 3,    ///< Hard memory cap: operator new failed.
};

const char *postmortemReasonName(PostmortemReason R);

/// Compact diagnosis shipped over the isolated-batch result pipe.  All
/// fields are u64 so the struct has no padding surprises across the
/// fork boundary (same binary on both sides).
struct PostmortemSummary {
  uint64_t Reason = 0;         ///< PostmortemReason.
  uint64_t Detail = 0;         ///< Signal number, or stalled slot index.
  uint64_t HeartbeatTotal = 0; ///< Sum of all slots at death.
  uint64_t WorklistDepth = 0;  ///< Stuck/reporting slot's last depth.
  uint64_t Partition = 0;      ///< Stuck/reporting slot's partition.
  uint64_t LastEventKind = 0;  ///< JournalEventKind of the newest event.
  uint64_t LastEventA = 0;
  uint64_t LastEventB = 0;
  uint64_t ElapsedMicros = 0;  ///< Since journal epoch.
};

/// Length-prefix magic tagging a PostmortemSummary on the result pipe.
/// Greater than any legal payload count (MaxPayloadDoubles), so the
/// parent's reader can branch on the first u32.
constexpr uint32_t PostmortemPipeMagic = 0xDEADD00Du;

/// One line of human text for a shipped summary ("stalled in partition
/// 3, worklist depth 17, last event widen.burst").  Not signal-safe;
/// parent-side rendering only.
std::string postmortemSummaryText(const PostmortemSummary &S);

#if SPA_OBS_ENABLED

struct PostmortemOptions {
  /// Directory for the postmortem file; null or empty writes no file
  /// (the pipe summary, if any, still ships).
  const char *Dir = nullptr;
  /// Run identity baked into the file name and the JSON (batch item
  /// name, program path, ...).  Null defaults to "run".
  const char *RunId = nullptr;
  /// Write end of the isolated-batch result pipe; -1 = none.
  int PipeFd = -1;
};

/// Installs the signal hooks and pre-opens the output file.  Safe to
/// call again (e.g. in a fork child) — the previous file is released.
/// Returns false when the file could not be created.
bool postmortemInstall(const PostmortemOptions &Opts);

/// Clean-exit teardown: stops the watchdog, restores default handlers,
/// and unlinks the (empty) postmortem file when nothing was written.
void postmortemUninstall();

/// True between install and uninstall.
bool postmortemActive();

/// Path of the pre-opened postmortem file ("" when none).
std::string postmortemFilePath();

/// Rebuilds the frozen registry index the signal handler reads: names
/// are copied into a static arena and instrument addresses (stable for
/// the process lifetime) are published atomically.  Call from normal
/// context only — typically once per run start; instruments registered
/// after the last refresh are absent from postmortems.
void postmortemRefreshRegistryIndex();

/// Last ledger rollup, re-published after attribution so a later crash
/// report carries the most recent completed fixpoint's totals.
void postmortemSetLedgerRollup(uint64_t Visits, uint64_t Widenings,
                               uint64_t Growth, uint64_t TimeMicros);

/// Writes the postmortem immediately (async-signal-safe; also the
/// new-handler OOM path).  \p Detail is the signal number or stalled
/// slot.  Returns true when a file was written.
bool postmortemWriteNow(PostmortemReason Reason, uint64_t Detail);

/// Starts/stops the stall watchdog.  IntervalMs <= 0 is a no-op.  The
/// watchdog declares a stall only for threads inside a fixpoint scope
/// (JournalFixScope), writes the stall postmortem, and _exits with
/// StallExitCode.
void watchdogStart(uint32_t IntervalMs);
void watchdogStop();

#else // !SPA_OBS_ENABLED

struct PostmortemOptions {
  const char *Dir = nullptr;
  const char *RunId = nullptr;
  int PipeFd = -1;
};

inline bool postmortemInstall(const PostmortemOptions &) { return false; }
inline void postmortemUninstall() {}
inline bool postmortemActive() { return false; }
inline std::string postmortemFilePath() { return ""; }
inline void postmortemRefreshRegistryIndex() {}
inline void postmortemSetLedgerRollup(uint64_t, uint64_t, uint64_t, uint64_t) {}
inline bool postmortemWriteNow(PostmortemReason, uint64_t) { return false; }
inline void watchdogStart(uint32_t) {}
inline void watchdogStop() {}

#endif // SPA_OBS_ENABLED

} // namespace obs
} // namespace spa

#endif // SPA_OBS_POSTMORTEM_H
