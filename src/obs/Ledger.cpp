//===- Ledger.cpp - Per-control-point cost ledger --------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Ledger.h"

#include "obs/MetricsSink.h"

#include <algorithm>
#include <cstdio>

using namespace spa::obs;

void Ledger::attribute(std::vector<uint32_t> FuncOfNode,
                       std::vector<uint32_t> CompOfNode,
                       std::vector<std::string> FuncNames,
                       std::vector<uint32_t> CoFuncOfNode) {
  FuncOf = std::move(FuncOfNode);
  CompOf = std::move(CompOfNode);
  Funcs = std::move(FuncNames);
  CoFuncOf = std::move(CoFuncOfNode);
}

PointCost Ledger::totals() const {
  PointCost T;
  for (const PointCost &R : Rows)
    T.addFrom(R);
  return T;
}

std::vector<LedgerGroup>
Ledger::aggregate(const std::vector<uint32_t> &GroupOf, bool WithNames) const {
  // Group ids are small dense integers (FuncId / component number), so a
  // flat vector indexed by id keeps the aggregation deterministic and
  // allocation-cheap.
  uint32_t MaxGroup = 0;
  for (uint32_t N = 0; N < Rows.size(); ++N) {
    uint32_t G = N < GroupOf.size() ? GroupOf[N] : 0;
    MaxGroup = std::max(MaxGroup, G);
  }
  std::vector<LedgerGroup> Groups(static_cast<size_t>(MaxGroup) + 1);
  for (uint32_t G = 0; G < Groups.size(); ++G)
    Groups[G].Id = G;
  for (uint32_t N = 0; N < Rows.size(); ++N) {
    if (Rows[N].allZero())
      continue;
    uint32_t G = N < GroupOf.size() ? GroupOf[N] : 0;
    Groups[G].Cost.addFrom(Rows[N]);
    ++Groups[G].Nodes;
  }
  std::vector<LedgerGroup> Out;
  for (LedgerGroup &G : Groups) {
    if (G.Nodes == 0)
      continue;
    if (WithNames)
      G.Label = G.Id < Funcs.size() ? Funcs[G.Id] : "<unknown>";
    Out.push_back(std::move(G));
  }
  return Out;
}

namespace {

/// One side of a 50/50 inter-procedural split.  Integer halves with the
/// remainder going to the primary side, so primary + secondary equals
/// the original row field-for-field (count conservation the determinism
/// tests pin).
PointCost costShare(const PointCost &C, bool Primary) {
  auto Half = [&](auto V) -> decltype(V) {
    return Primary ? V - V / 2 : V / 2;
  };
  PointCost S;
  S.Visits = Half(C.Visits);
  S.Widenings = Half(C.Widenings);
  S.Narrowings = Half(C.Narrowings);
  S.Joins = Half(C.Joins);
  S.NoChangeSkips = Half(C.NoChangeSkips);
  S.Deliveries = Half(C.Deliveries);
  S.Closures = Half(C.Closures);
  S.Growth = Half(C.Growth);
  S.TimeMicros = Half(C.TimeMicros);
  return S;
}

} // namespace

std::vector<LedgerGroup> Ledger::byFunction() const {
  if (CoFuncOf.empty())
    return aggregate(FuncOf, /*WithNames=*/true);
  // Split-aware aggregation: a node with a co-function charges half its
  // cost to each side (remainder to the primary) and counts as a member
  // node of both.
  uint32_t MaxGroup = 0;
  for (uint32_t N = 0; N < Rows.size(); ++N) {
    MaxGroup = std::max(MaxGroup, N < FuncOf.size() ? FuncOf[N] : 0);
    MaxGroup = std::max(MaxGroup, N < CoFuncOf.size() ? CoFuncOf[N] : 0);
  }
  std::vector<LedgerGroup> Groups(static_cast<size_t>(MaxGroup) + 1);
  for (uint32_t G = 0; G < Groups.size(); ++G)
    Groups[G].Id = G;
  for (uint32_t N = 0; N < Rows.size(); ++N) {
    if (Rows[N].allZero())
      continue;
    uint32_t F = N < FuncOf.size() ? FuncOf[N] : 0;
    uint32_t Co = N < CoFuncOf.size() ? CoFuncOf[N] : F;
    if (Co == F) {
      Groups[F].Cost.addFrom(Rows[N]);
      ++Groups[F].Nodes;
      continue;
    }
    Groups[F].Cost.addFrom(costShare(Rows[N], /*Primary=*/true));
    ++Groups[F].Nodes;
    Groups[Co].Cost.addFrom(costShare(Rows[N], /*Primary=*/false));
    ++Groups[Co].Nodes;
  }
  std::vector<LedgerGroup> Out;
  for (LedgerGroup &G : Groups) {
    if (G.Nodes == 0)
      continue;
    G.Label = G.Id < Funcs.size() ? Funcs[G.Id] : "<unknown>";
    Out.push_back(std::move(G));
  }
  return Out;
}

std::vector<LedgerGroup> Ledger::byComponent() const {
  return aggregate(CompOf, /*WithNames=*/false);
}

std::vector<LedgerHotspot> Ledger::hotspots(uint32_t K,
                                            const LabelFn &Label) const {
  std::vector<uint32_t> Ids;
  Ids.reserve(Rows.size());
  for (uint32_t N = 0; N < Rows.size(); ++N)
    if (!Rows[N].allZero() && Rows[N].score() > 0)
      Ids.push_back(N);
  // score desc, node id asc — a total order, so the top-K set and its
  // order are identical across runs and job counts.
  std::sort(Ids.begin(), Ids.end(), [&](uint32_t A, uint32_t B) {
    uint64_t SA = Rows[A].score(), SB = Rows[B].score();
    return SA != SB ? SA > SB : A < B;
  });
  if (Ids.size() > K)
    Ids.resize(K);
  std::vector<LedgerHotspot> Out;
  Out.reserve(Ids.size());
  for (uint32_t N : Ids)
    Out.push_back({N, Label ? Label(N) : std::string(), Rows[N]});
  return Out;
}

namespace {

std::string jsonQuote(const std::string &S) {
  std::string R = "\"";
  for (char C : S) {
    if (C == '"' || C == '\\')
      R += '\\';
    if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      R += Buf;
      continue;
    }
    R += C;
  }
  return R += '"';
}

void appendCostFields(std::string &Out, const PointCost &C,
                      const char *Indent) {
  auto Field = [&](const char *Name, double V, bool Last = false) {
    Out += Indent;
    Out += '"';
    Out += Name;
    Out += "\": ";
    Out += MetricsSink::formatValue(V);
    if (!Last)
      Out += ',';
    Out += '\n';
  };
  Field("visits", C.Visits);
  Field("widenings", C.Widenings);
  Field("narrowings", C.Narrowings);
  Field("joins", C.Joins);
  Field("no_change_skips", C.NoChangeSkips);
  Field("deliveries", C.Deliveries);
  Field("closures", C.Closures);
  Field("growth", static_cast<double>(C.Growth));
  Field("score", static_cast<double>(C.score()));
  Field("time_micros", static_cast<double>(C.TimeMicros), /*Last=*/true);
}

void appendGroupArray(std::string &Out, const char *Key, const char *IdKey,
                      const std::vector<LedgerGroup> &Groups, bool WithLabel) {
  Out += "  \"";
  Out += Key;
  Out += "\": [";
  for (size_t I = 0; I < Groups.size(); ++I) {
    const LedgerGroup &G = Groups[I];
    Out += I ? ",\n    {\n" : "\n    {\n";
    Out += "      \"";
    Out += IdKey;
    Out += "\": " + MetricsSink::formatValue(G.Id) + ",\n";
    if (WithLabel)
      Out += "      \"name\": " + jsonQuote(G.Label) + ",\n";
    Out += "      \"nodes\": " + MetricsSink::formatValue(G.Nodes) + ",\n";
    appendCostFields(Out, G.Cost, "      ");
    Out += "    }";
  }
  Out += Groups.empty() ? "]" : "\n  ]";
}

} // namespace

std::string Ledger::toJson(uint32_t HotspotK, const LabelFn &Label,
                           const std::string &ProvenanceJsonArray) const {
  std::string Out = "{\n";
  Out += "  \"schema\": \"spa-ledger-v1\",\n";
  Out += "  \"nodes\": " + MetricsSink::formatValue(Rows.size()) + ",\n";
  Out += "  \"totals\": {\n";
  appendCostFields(Out, totals(), "    ");
  Out += "  },\n";
  appendGroupArray(Out, "functions", "func", byFunction(), /*WithLabel=*/true);
  Out += ",\n";
  appendGroupArray(Out, "partitions", "comp", byComponent(),
                   /*WithLabel=*/false);
  Out += ",\n";
  Out += "  \"hotspots\": [";
  std::vector<LedgerHotspot> Hot = hotspots(HotspotK, Label);
  for (size_t I = 0; I < Hot.size(); ++I) {
    Out += I ? ",\n    {\n" : "\n    {\n";
    Out += "      \"node\": " + MetricsSink::formatValue(Hot[I].Node) + ",\n";
    Out += "      \"label\": " + jsonQuote(Hot[I].Label) + ",\n";
    appendCostFields(Out, Hot[I].Cost, "      ");
    Out += "    }";
  }
  Out += Hot.empty() ? "]" : "\n  ]";
  if (!ProvenanceJsonArray.empty()) {
    Out += ",\n  \"provenance\": ";
    Out += ProvenanceJsonArray;
  }
  Out += "\n}\n";
  return Out;
}

std::string Ledger::hotspotText(uint32_t K, const LabelFn &Label) const {
  std::vector<LedgerHotspot> Hot = hotspots(K, Label);
  if (Hot.empty())
    return "";
  std::string Out = "ledger hotspots (top " + std::to_string(Hot.size()) +
                    " by deterministic score):\n";
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf), "  %-6s %8s %6s %6s %6s %6s %8s  %s\n",
                "score", "visits", "widen", "join", "skip", "deliv", "growth",
                "label");
  Out += Buf;
  for (const LedgerHotspot &H : Hot) {
    std::snprintf(Buf, sizeof(Buf),
                  "  %-6llu %8u %6u %6u %6u %6u %8llu  %s\n",
                  static_cast<unsigned long long>(H.Cost.score()),
                  H.Cost.Visits, H.Cost.Widenings, H.Cost.Joins,
                  H.Cost.NoChangeSkips, H.Cost.Deliveries,
                  static_cast<unsigned long long>(H.Cost.Growth),
                  H.Label.empty() ? ("node " + std::to_string(H.Node)).c_str()
                                  : H.Label.c_str());
    Out += Buf;
  }
  return Out;
}
