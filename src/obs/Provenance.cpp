//===- Provenance.cpp - Bounded backward dependency slicing ----------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Provenance.h"

#include <deque>
#include <unordered_set>

using namespace spa::obs;

ProvenanceSlice spa::obs::backwardSlice(uint32_t Seed, const PredFn &Preds,
                                        const ProvenanceOptions &Opts,
                                        const ChargeFn &Charge) {
  ProvenanceSlice Slice;
  if (Opts.MaxNodes == 0)
    return Slice;
  std::unordered_set<uint32_t> Seen{Seed};
  std::deque<SliceNode> Queue{{Seed, 0, 0}};
  while (!Queue.empty()) {
    SliceNode Cur = Queue.front();
    Queue.pop_front();
    Slice.Nodes.push_back(Cur);
    // Peeks at a frontier node's predecessors so Truncated reflects an
    // actual cut (an unseen predecessor beyond the bound), not a
    // frontier that happened to end at source nodes.  Peeked edges are
    // not charged and do not count as walked.
    auto CutsOffUnseen = [&] {
      bool Cut = false;
      Preds(Cur.Node, [&](uint32_t Pred, uint32_t) {
        Cut = Cut || !Seen.count(Pred);
      });
      return Cut;
    };
    if (Slice.Nodes.size() >= Opts.MaxNodes) {
      // Anything still queued (or expandable but never expanded) is cut.
      if (!Queue.empty() ||
          (Cur.Depth < Opts.MaxDepth && CutsOffUnseen()))
        Slice.Truncated = true;
      break;
    }
    if (Cur.Depth >= Opts.MaxDepth) {
      if (CutsOffUnseen())
        Slice.Truncated = true;
      continue;
    }
    uint32_t Taken = 0;
    bool Stop = false, BudgetDead = false;
    Preds(Cur.Node, [&](uint32_t Pred, uint32_t Label) {
      if (Stop)
        return;
      if (Taken >= Opts.MaxFanout) {
        Slice.Truncated = true;
        Stop = true;
        return;
      }
      if (Charge && !Charge()) {
        Slice.Truncated = true;
        Stop = BudgetDead = true;
        return;
      }
      ++Slice.EdgesWalked;
      ++Taken;
      if (!Seen.insert(Pred).second)
        return;
      Queue.push_back({Pred, Cur.Depth + 1, Label});
    });
    if (BudgetDead)
      break; // Exhaustion is sticky: stop expanding entirely.
  }
  return Slice;
}
