//===- Ledger.h - Per-control-point cost ledger ----------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fixpoint cost ledger: one PointCost row per control point / graph
/// node, filled by the dense, sparse, and octagon engines while they
/// run, then aggregated up to procedure and dependency-partition level
/// and exported as JSON (spa-analyze --ledger-out) with a top-K hotspot
/// table in --stats.
///
/// Determinism contract (pinned by tests/parallel_determinism_test):
/// every *count* field is bit-identical across --jobs 1/2/4/8.  The
/// partitioned sparse fixpoint gives this for free — shards own disjoint
/// node sets, so rows are written by exactly one lane and the counts do
/// not depend on lane interleaving.  TimeMicros is the one sampled
/// wall-clock field and is explicitly exempt.
///
/// Layering: obs sits below lang/ir/core, so the ledger knows nothing
/// about Program — rows are indexed by dense uint32 node ids and human
/// labels / attribution arrays are injected by the caller (the analyzer
/// facades in src/core and src/oct).
///
//===----------------------------------------------------------------------===//

#ifndef SPA_OBS_LEDGER_H
#define SPA_OBS_LEDGER_H

#include "obs/Metrics.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace spa {
namespace obs {

/// True when the build compiles instrumentation in.  Engine recording
/// sites guard with `if constexpr (LedgerEnabled)` so -DSPA_OBS=OFF
/// removes the ledger bookkeeping entirely, same as the SPA_OBS_*
/// macros.
constexpr bool LedgerEnabled = SPA_OBS_ENABLED != 0;

/// Cost of one control point / dependency-graph node across the whole
/// fixpoint run.  All fields except TimeMicros are deterministic counts.
struct PointCost {
  uint32_t Visits = 0;        ///< Times the node was popped and transferred.
  uint32_t Widenings = 0;     ///< Widening applications at this merge point.
  uint32_t Narrowings = 0;    ///< Narrowing-pass refinements.
  uint32_t Joins = 0;         ///< Plain lattice joins at this merge point.
  uint32_t NoChangeSkips = 0; ///< Arrivals absorbed by the no-change fast path.
  uint32_t Deliveries = 0;    ///< Sparse-edge values delivered into the node.
  /// Octagon closures executed while visiting this node (full sweeps and
  /// sparse incremental drains both count one; see oct_detail ticks).
  /// Zero for the interval engines.
  uint32_t Closures = 0;
  uint64_t Growth = 0;        ///< Abstract-value growth units (see engine docs).
  uint64_t TimeMicros = 0;    ///< Sampled wall time (NOT deterministic).

  bool allZero() const {
    return Visits == 0 && Widenings == 0 && Narrowings == 0 && Joins == 0 &&
           NoChangeSkips == 0 && Deliveries == 0 && Closures == 0 &&
           Growth == 0 && TimeMicros == 0;
  }

  void addFrom(const PointCost &O) {
    Visits += O.Visits;
    Widenings += O.Widenings;
    Narrowings += O.Narrowings;
    Joins += O.Joins;
    NoChangeSkips += O.NoChangeSkips;
    Deliveries += O.Deliveries;
    Closures += O.Closures;
    Growth += O.Growth;
    TimeMicros += O.TimeMicros;
  }

  /// Deterministic hotspot score: pure function of the count fields
  /// (time is excluded so rankings agree across machines and --jobs).
  /// Widenings weigh heaviest — each one is a lattice extrapolation that
  /// usually triggers a downstream re-propagation wave.  Closures are
  /// deliberately NOT part of the score: they measure domain-internal
  /// cost, and folding them in would reshuffle hotspot rankings between
  /// octagon backends whose fixpoints are otherwise identical.
  uint64_t score() const {
    return static_cast<uint64_t>(Visits) + Joins + NoChangeSkips + Deliveries +
           Narrowings + 4 * static_cast<uint64_t>(Widenings) + Growth;
  }
};

/// One aggregated row (per function or per dependency partition).
struct LedgerGroup {
  uint32_t Id = 0;    ///< FuncId or component number.
  std::string Label;  ///< Function name; empty for partitions.
  uint32_t Nodes = 0; ///< Member nodes with any recorded cost.
  PointCost Cost;
};

/// A ranked hotspot row.
struct LedgerHotspot {
  uint32_t Node = 0;
  std::string Label; ///< Caller-provided node label.
  PointCost Cost;
};

/// The per-run ledger.  Engines call resize() once and then mutate
/// row(N) freely; the facade attributes rows to functions/partitions
/// after the run and exports.  Not internally synchronized: correctness
/// relies on the engines' disjoint-write discipline (each node id is
/// owned by exactly one shard).
class Ledger {
public:
  /// Labels a node id for human output (e.g. "p12 main: x = y + 1").
  using LabelFn = std::function<std::string(uint32_t)>;

  /// Ensures rows [0, N) exist.  Idempotent; keeps existing rows.
  void resize(uint32_t N) {
    if (N > Rows.size())
      Rows.resize(N);
  }

  uint32_t numRows() const { return static_cast<uint32_t>(Rows.size()); }

  PointCost &row(uint32_t N) { return Rows[N]; }
  const PointCost &row(uint32_t N) const { return Rows[N]; }

  /// Attribution: node -> owning function and dependency partition, plus
  /// function names.  Filled by the facade post-run; any vector may be
  /// shorter than numRows() (missing entries attribute to group 0 /
  /// "<unknown>").
  ///
  /// \p CoFuncOfNode marks inter-procedural split nodes: where
  /// CoFuncOfNode[N] differs from FuncOfNode[N], node N's cost is
  /// charged half to each function (integer halves, remainder to the
  /// primary, so per-function totals conserve every count exactly and
  /// stay deterministic).  The facade uses this for phi nodes on
  /// call-edge points — an entry phi joins values the *callers* send, a
  /// return phi joins what the *callees* return, so charging either
  /// end alone over-charges callees in the per-function hotspot table.
  /// Empty or equal entries mean unsplit.
  void attribute(std::vector<uint32_t> FuncOfNode,
                 std::vector<uint32_t> CompOfNode,
                 std::vector<std::string> FuncNames,
                 std::vector<uint32_t> CoFuncOfNode = {});

  /// Sum over all rows (deterministic field-wise).
  PointCost totals() const;

  /// Aggregates in ascending group id, skipping all-zero groups.
  std::vector<LedgerGroup> byFunction() const;
  std::vector<LedgerGroup> byComponent() const;

  /// Top-K rows by PointCost::score(), ties broken by ascending node id
  /// (fully deterministic).  All-zero rows never rank.
  std::vector<LedgerHotspot> hotspots(uint32_t K,
                                      const LabelFn &Label = nullptr) const;

  /// Ledger JSON document ("spa-ledger-v1"): totals, per-function and
  /// per-partition aggregates, top-K hotspots, and (when non-empty) a
  /// caller-rendered `provenance` array of alarm slices.
  std::string toJson(uint32_t HotspotK, const LabelFn &Label = nullptr,
                     const std::string &ProvenanceJsonArray = "") const;

  /// Human table for --stats: header + one line per hotspot.  Returns ""
  /// when the ledger recorded nothing.
  std::string hotspotText(uint32_t K, const LabelFn &Label = nullptr) const;

private:
  std::vector<PointCost> Rows;
  std::vector<uint32_t> FuncOf, CompOf, CoFuncOf;
  std::vector<std::string> Funcs;

  std::vector<LedgerGroup> aggregate(const std::vector<uint32_t> &GroupOf,
                                     bool WithNames) const;
};

} // namespace obs
} // namespace spa

#endif // SPA_OBS_LEDGER_H
