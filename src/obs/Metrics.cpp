//===- Metrics.cpp - Low-overhead metrics registry -------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <algorithm>
#include <cmath>

using namespace spa::obs;

void Histogram::observe(double X) {
  if (X < 0)
    X = 0;
  if (Count == 0) {
    Min = Max = X;
  } else {
    if (X < Min)
      Min = X;
    if (X > Max)
      Max = X;
  }
  ++Count;
  Sum += X;
  // Bucket 0 holds [0, 2); bucket i holds [2^i, 2^(i+1)).
  size_t B = X < 2 ? 0 : static_cast<size_t>(std::log2(X));
  if (B >= Buckets.size())
    Buckets.resize(B + 1, 0);
  ++Buckets[B];
}

void Histogram::reset() {
  Count = 0;
  Sum = Min = Max = 0;
  Buckets.clear();
}

Registry &Registry::global() {
  static Registry R;
  return R;
}

Counter &Registry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  return Counters[Name];
}

Gauge &Registry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  return Gauges[Name];
}

Histogram &Registry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  return Histograms[Name];
}

void Registry::reset() {
  std::lock_guard<std::mutex> Lock(M);
  for (auto &[_, C] : Counters)
    C.reset();
  for (auto &[_, G] : Gauges)
    G.reset();
  for (auto &[_, H] : Histograms)
    H.reset();
}

void Registry::resetGauges() {
  std::lock_guard<std::mutex> Lock(M);
  for (auto &[_, G] : Gauges)
    G.reset();
}

std::vector<std::pair<std::string, double>> Registry::snapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<std::pair<std::string, double>> Out;
  Out.reserve(Counters.size() + Gauges.size() + 5 * Histograms.size());
  for (const auto &[Name, C] : Counters)
    Out.push_back({Name, static_cast<double>(C.value())});
  for (const auto &[Name, G] : Gauges)
    Out.push_back({Name, G.value()});
  for (const auto &[Name, H] : Histograms) {
    Out.push_back({Name + ".count", static_cast<double>(H.count())});
    Out.push_back({Name + ".sum", H.sum()});
    Out.push_back({Name + ".min", H.min()});
    Out.push_back({Name + ".max", H.max()});
    Out.push_back({Name + ".avg", H.avg()});
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

void Registry::forEachInstrument(
    const std::function<void(const std::string &, const Counter &)> &OnCtr,
    const std::function<void(const std::string &, const Gauge &)> &OnGauge)
    const {
  std::lock_guard<std::mutex> Lock(M);
  for (const auto &[Name, C] : Counters)
    OnCtr(Name, C);
  for (const auto &[Name, G] : Gauges)
    OnGauge(Name, G);
}

double Registry::value(const std::string &Name, double Default) const {
  for (const auto &[K, V] : snapshot())
    if (K == Name)
      return V;
  return Default;
}
