//===- Metrics.cpp - Low-overhead metrics registry -------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <algorithm>
#include <cmath>

using namespace spa::obs;

void Histogram::observe(double X) {
  if (X < 0)
    X = 0;
  if (Count == 0) {
    Min = Max = X;
  } else {
    if (X < Min)
      Min = X;
    if (X > Max)
      Max = X;
  }
  ++Count;
  Sum += X;
  // Bucket 0 holds [0, 2); bucket i holds [2^i, 2^(i+1)).
  size_t B = X < 2 ? 0 : static_cast<size_t>(std::log2(X));
  if (B >= Buckets.size())
    Buckets.resize(B + 1, 0);
  ++Buckets[B];
}

void Histogram::reset() {
  Count = 0;
  Sum = Min = Max = 0;
  Buckets.clear();
}

double Histogram::quantile(double Q) const {
  if (Count == 0)
    return 0;
  if (Q < 0)
    Q = 0;
  if (Q > 1)
    Q = 1;
  double Rank = Q * static_cast<double>(Count);
  double Cum = 0;
  for (size_t I = 0; I < Buckets.size(); ++I) {
    if (Buckets[I] == 0)
      continue;
    double Next = Cum + static_cast<double>(Buckets[I]);
    if (Next >= Rank) {
      // Bucket 0 holds [0, 2); bucket i holds [2^i, 2^(i+1)).
      double Lo = I == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(I));
      double Hi = std::ldexp(1.0, static_cast<int>(I) + 1);
      double Frac = (Rank - Cum) / static_cast<double>(Buckets[I]);
      double V = Lo + Frac * (Hi - Lo);
      return std::min(std::max(V, Min), Max);
    }
    Cum = Next;
  }
  return Max;
}

Registry &Registry::global() {
  static Registry R;
  return R;
}

Counter &Registry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  return Counters[Name];
}

Gauge &Registry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  return Gauges[Name];
}

Histogram &Registry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  return Histograms[Name];
}

void Registry::reset() {
  std::lock_guard<std::mutex> Lock(M);
  for (auto &[_, C] : Counters)
    C.reset();
  for (auto &[_, G] : Gauges)
    G.reset();
  for (auto &[_, H] : Histograms)
    H.reset();
}

void Registry::resetGauges() {
  std::lock_guard<std::mutex> Lock(M);
  for (auto &[_, G] : Gauges)
    G.reset();
}

std::vector<std::pair<std::string, double>> Registry::snapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<std::pair<std::string, double>> Out;
  Out.reserve(Counters.size() + Gauges.size() + 8 * Histograms.size());
  for (const auto &[Name, C] : Counters)
    Out.push_back({Name, static_cast<double>(C.value())});
  for (const auto &[Name, G] : Gauges)
    Out.push_back({Name, G.value()});
  for (const auto &[Name, H] : Histograms) {
    Out.push_back({Name + ".count", static_cast<double>(H.count())});
    Out.push_back({Name + ".sum", H.sum()});
    Out.push_back({Name + ".min", H.min()});
    Out.push_back({Name + ".max", H.max()});
    Out.push_back({Name + ".avg", H.avg()});
    Out.push_back({Name + ".p50", H.quantile(0.50)});
    Out.push_back({Name + ".p95", H.quantile(0.95)});
    Out.push_back({Name + ".p99", H.quantile(0.99)});
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

void Registry::forEachInstrument(
    const std::function<void(const std::string &, const Counter &)> &OnCtr,
    const std::function<void(const std::string &, const Gauge &)> &OnGauge)
    const {
  std::lock_guard<std::mutex> Lock(M);
  for (const auto &[Name, C] : Counters)
    OnCtr(Name, C);
  for (const auto &[Name, G] : Gauges)
    OnGauge(Name, G);
}

double Registry::value(const std::string &Name, double Default) const {
  for (const auto &[K, V] : snapshot())
    if (K == Name)
      return V;
  return Default;
}

namespace {

/// Mangles a registry name into a Prometheus metric name: spa_ prefix,
/// every character outside [A-Za-z0-9_] (dots, dashes) to '_'.
std::string promName(const std::string &Name) {
  std::string Out = "spa_";
  for (char C : Name) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_';
    Out += Ok ? C : '_';
  }
  return Out;
}

/// Prometheus sample value: integral values render without an exponent
/// or fraction, everything else as shortest round-trippable decimal.
std::string promValue(double V) {
  char Buf[64];
  if (V == static_cast<uint64_t>(V) && V >= 0 && V < 1e15)
    std::snprintf(Buf, sizeof(Buf), "%llu",
                  static_cast<unsigned long long>(V));
  else
    std::snprintf(Buf, sizeof(Buf), "%.10g", V);
  return Buf;
}

} // namespace

std::string Registry::renderProm() const {
  std::lock_guard<std::mutex> Lock(M);
  std::string Out;
  Out.reserve(256 + 96 * (Counters.size() + Gauges.size()) +
              256 * Histograms.size());
  for (const auto &[Name, C] : Counters) {
    std::string P = promName(Name) + "_total";
    Out += "# HELP " + P + " SPA counter " + Name + "\n";
    Out += "# TYPE " + P + " counter\n";
    Out += P + " " + std::to_string(C.value()) + "\n";
  }
  for (const auto &[Name, G] : Gauges) {
    std::string P = promName(Name);
    Out += "# HELP " + P + " SPA gauge " + Name + "\n";
    Out += "# TYPE " + P + " gauge\n";
    Out += P + " " + promValue(G.value()) + "\n";
  }
  for (const auto &[Name, H] : Histograms) {
    std::string P = promName(Name);
    Out += "# HELP " + P + " SPA histogram " + Name + "\n";
    Out += "# TYPE " + P + " histogram\n";
    uint64_t Cum = 0;
    const std::vector<uint64_t> &B = H.buckets();
    for (size_t I = 0; I < B.size(); ++I) {
      Cum += B[I];
      // Bucket i's upper bound is 2^(i+1) (bucket 0 holds [0, 2)).
      Out += P + "_bucket{le=\"" +
             promValue(std::ldexp(1.0, static_cast<int>(I) + 1)) + "\"} " +
             std::to_string(Cum) + "\n";
    }
    Out += P + "_bucket{le=\"+Inf\"} " + std::to_string(H.count()) + "\n";
    Out += P + "_sum " + promValue(H.sum()) + "\n";
    Out += P + "_count " + std::to_string(H.count()) + "\n";
  }
  return Out;
}
