//===- Journal.cpp - Per-thread flight-recorder journal --------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Journal.h"
#include "obs/Trace.h"

#include <chrono>
#include <cstring>

#include <unistd.h>
#ifdef __linux__
#include <sys/syscall.h>
#endif

using namespace spa::obs;

const char *spa::obs::journalEventName(JournalEventKind K) {
  switch (K) {
  case JournalEventKind::None:
    return "none";
  case JournalEventKind::PhaseBegin:
    return "phase.begin";
  case JournalEventKind::PhaseEnd:
    return "phase.end";
  case JournalEventKind::PartitionBegin:
    return "partition.begin";
  case JournalEventKind::PartitionEnd:
    return "partition.end";
  case JournalEventKind::BudgetCharge:
    return "budget.charge";
  case JournalEventKind::BudgetTrip:
    return "budget.trip";
  case JournalEventKind::DegradeTier:
    return "degrade.tier";
  case JournalEventKind::WidenBurst:
    return "widen.burst";
  case JournalEventKind::FaultArm:
    return "fault.arm";
  case JournalEventKind::BatchItemBegin:
    return "batch.item.begin";
  case JournalEventKind::BatchItemEnd:
    return "batch.item.end";
  case JournalEventKind::HeartbeatStall:
    return "heartbeat.stall";
  case JournalEventKind::OomTrip:
    return "oom.trip";
  case JournalEventKind::OctCloseBurst:
    return "oct.close.burst";
  case JournalEventKind::SnapshotSave:
    return "snapshot.save";
  case JournalEventKind::SnapshotLoad:
    return "snapshot.load";
  case JournalEventKind::ShardDispatch:
    return "shard.dispatch";
  case JournalEventKind::ShardWorkerExit:
    return "shard.worker.exit";
  case JournalEventKind::ServeRequest:
    return "serve.request";
  case JournalEventKind::ServeCacheHit:
    return "serve.cache.hit";
  case JournalEventKind::ServeEvict:
    return "serve.evict";
  case JournalEventKind::ServeAbort:
    return "serve.abort";
  }
  return "unknown";
}

namespace {

/// Fixed phase-name table.  Index is the wire id; 0 is the unknown
/// bucket, so every name here starts at id 1.
constexpr const char *PhaseNames[] = {
    "?",        "build", "pre",   "defuse", "depbuild",
    "fix",      "check", "batch", "reader", "oct-pack",
    "oct-close"};
constexpr uint16_t NumPhaseNames =
    static_cast<uint16_t>(sizeof(PhaseNames) / sizeof(PhaseNames[0]));

} // namespace

uint16_t spa::obs::journalPhaseId(const char *Phase) {
  if (!Phase)
    return 0;
  for (uint16_t I = 1; I < NumPhaseNames; ++I)
    if (std::strcmp(PhaseNames[I], Phase) == 0)
      return I;
  return 0;
}

const char *spa::obs::journalPhaseName(uint16_t Id) {
  return Id < NumPhaseNames ? PhaseNames[Id] : "?";
}

#if SPA_OBS_ENABLED

namespace {

/// The slot table lives in static storage: the signal-handler reader
/// must be able to reach it without any allocation or indirection that
/// could itself be mid-update when the process dies.
JournalSlot Slots[JournalMaxSlots];

/// Cross-thread publication order for merged timelines.
std::atomic<uint64_t> GlobalSeq{1};

uint32_t osTid() {
#ifdef __linux__
  return static_cast<uint32_t>(syscall(SYS_gettid));
#else
  return static_cast<uint32_t>(getpid());
#endif
}

/// Claims a free slot for the calling thread; releases it on thread
/// exit so pool churn cannot exhaust the table.  Threads past the cap
/// get a null slot and journal nothing (heartbeats included) — safe,
/// just invisible to forensics.
struct SlotLease {
  JournalSlot *S = nullptr;

  SlotLease() {
    for (uint32_t I = 0; I < JournalMaxSlots; ++I) {
      uint8_t Free = 0;
      if (Slots[I].Used.compare_exchange_strong(Free, 1,
                                                std::memory_order_acq_rel)) {
        S = &Slots[I];
        // A reused slot keeps its predecessor's ring (records carry
        // their own sequence numbers, so stale entries sort to the
        // past), but progress state restarts for the new owner.
        S->Heartbeat.store(0, std::memory_order_relaxed);
        S->FixDepth.store(0, std::memory_order_relaxed);
        S->WorklistDepth.store(0, std::memory_order_relaxed);
        S->Partition.store(0, std::memory_order_relaxed);
        S->OsTid.store(osTid(), std::memory_order_relaxed);
        break;
      }
    }
  }

  ~SlotLease() {
    if (S)
      S->Used.store(0, std::memory_order_release);
  }
};

JournalSlot *mySlot() {
  static thread_local SlotLease Lease;
  return Lease.S;
}

} // namespace

JournalSlot *spa::obs::journalSlots() { return Slots; }

uint64_t spa::obs::journalNowMicros() {
  // Shared observability epoch: journal t_us and tracer span ts line up
  // on one axis, across every process of the tree.
  return static_cast<uint64_t>(obsNowMicros());
}

void spa::obs::journalRecord(JournalEventKind Kind, uint64_t A, uint64_t B) {
  JournalSlot *S = mySlot();
  if (!S)
    return;
  uint64_t H = S->Head.load(std::memory_order_relaxed);
  JournalRecord &R = S->Ring[H & (JournalRingCap - 1)];
  R.Seq = GlobalSeq.fetch_add(1, std::memory_order_relaxed);
  R.TimeMicros = static_cast<uint32_t>(journalNowMicros());
  R.Kind = static_cast<uint16_t>(Kind);
  R.A = A;
  R.B = B;
  // Publish: readers that acquire-load Head see the record complete.
  S->Head.store(H + 1, std::memory_order_release);
}

void spa::obs::journalHeartbeat() {
  if (JournalSlot *S = mySlot())
    S->Heartbeat.fetch_add(1, std::memory_order_relaxed);
}

void spa::obs::journalSetWorklistDepth(uint64_t Depth) {
  if (JournalSlot *S = mySlot())
    S->WorklistDepth.store(Depth, std::memory_order_relaxed);
}

void spa::obs::journalSetPartition(uint64_t Part) {
  if (JournalSlot *S = mySlot())
    S->Partition.store(Part, std::memory_order_relaxed);
}

uint64_t spa::obs::journalHeartbeatTotal() {
  uint64_t T = 0;
  for (uint32_t I = 0; I < JournalMaxSlots; ++I)
    T += Slots[I].Heartbeat.load(std::memory_order_relaxed);
  return T;
}

std::string spa::obs::journalToJson() {
  std::string Out = "{\n  \"schema\": \"spa-journal-v1\",\n  \"epoch_ns\": " +
                    std::to_string(obsEpochNanos()) + ",\n  \"threads\": [";
  bool FirstSlot = true;
  for (uint32_t I = 0; I < JournalMaxSlots; ++I) {
    const JournalSlot &S = Slots[I];
    uint64_t Head = S.Head.load(std::memory_order_acquire);
    if (Head == 0 && !S.Used.load(std::memory_order_relaxed) &&
        S.Heartbeat.load(std::memory_order_relaxed) == 0)
      continue;
    Out += FirstSlot ? "\n    {" : ",\n    {";
    FirstSlot = false;
    Out += "\"slot\": " + std::to_string(I);
    Out += ", \"tid\": " +
           std::to_string(S.OsTid.load(std::memory_order_relaxed));
    Out += ", \"heartbeat\": " +
           std::to_string(S.Heartbeat.load(std::memory_order_relaxed));
    Out += ", \"partition\": " +
           std::to_string(S.Partition.load(std::memory_order_relaxed));
    Out += ",\n     \"events\": [";
    uint64_t Count = Head < JournalRingCap ? Head : JournalRingCap;
    for (uint64_t K = 0; K < Count; ++K) {
      const JournalRecord &R =
          S.Ring[(Head - Count + K) & (JournalRingCap - 1)];
      Out += K ? ",\n       {" : "\n       {";
      Out += "\"seq\": " + std::to_string(R.Seq);
      Out += ", \"t_us\": " + std::to_string(R.TimeMicros);
      Out += std::string(", \"kind\": \"") +
             journalEventName(static_cast<JournalEventKind>(R.Kind)) + "\"";
      Out += ", \"a\": " + std::to_string(R.A);
      Out += ", \"b\": " + std::to_string(R.B);
      Out += "}";
    }
    Out += Count ? "\n     ]}" : "]}";
  }
  Out += FirstSlot ? "]\n}\n" : "\n  ]\n}\n";
  return Out;
}

void spa::obs::journalResetForChild() {
  JournalSlot *Mine = mySlot();
  for (uint32_t I = 0; I < JournalMaxSlots; ++I) {
    JournalSlot *S = &Slots[I];
    if (S == Mine)
      continue;
    // After fork these are memory images of the parent's threads, which
    // do not exist in the child; scrub them so the child's postmortem
    // reports only its own activity.
    S->Head.store(0, std::memory_order_relaxed);
    S->Heartbeat.store(0, std::memory_order_relaxed);
    S->FixDepth.store(0, std::memory_order_relaxed);
    S->WorklistDepth.store(0, std::memory_order_relaxed);
    S->Partition.store(0, std::memory_order_relaxed);
    S->OsTid.store(0, std::memory_order_relaxed);
    S->Used.store(0, std::memory_order_relaxed);
  }
  if (Mine)
    Mine->OsTid.store(osTid(), std::memory_order_relaxed);
}

JournalFixScope::JournalFixScope() {
  if (JournalSlot *S = mySlot())
    S->FixDepth.fetch_add(1, std::memory_order_relaxed);
}

JournalFixScope::~JournalFixScope() {
  if (JournalSlot *S = mySlot())
    S->FixDepth.fetch_sub(1, std::memory_order_relaxed);
}

#endif // SPA_OBS_ENABLED
