//===- Journal.h - Per-thread flight-recorder journal ----------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flight recorder: a per-thread, fixed-size, lock-free ring buffer
/// of structured POD events (phase transitions, partition begin/end,
/// budget charges and trips, degradation-tier changes, widening bursts,
/// fault arms, batch item boundaries).  Unlike the metrics registry,
/// which aggregates, the journal keeps *recency*: after a crash or stall
/// the last few hundred events per thread reconstruct what the analyzer
/// was doing when it died (docs/OBSERVABILITY.md, "why did this run
/// die").
///
/// Concurrency contract: each thread writes only its own slot.  A record
/// is published by a release store of the slot head, so a reader that
/// acquire-loads the head sees fully written records at indices below
/// it.  Readers in the crashing thread's own signal handler are exact;
/// readers racing a *live* writer thread may observe the single record
/// at the head being overwritten (bounded, documented tearing — the
/// postmortem consumer treats the newest record of a still-running
/// thread as advisory).  Nothing here locks or allocates after slot
/// acquisition, so the reader side is async-signal-safe.
///
/// Heartbeats ride in the same slot: every fixpoint loop bumps a
/// monotonic per-slot counter each visit (one relaxed increment), and
/// the watchdog (obs/Postmortem.h) samples them to distinguish a stuck
/// fixpoint from a slow one.
///
/// -DSPA_OBS=OFF compiles all of this out: the macros become no-ops and
/// the inline stubs below keep call sites building with zero residue.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_OBS_JOURNAL_H
#define SPA_OBS_JOURNAL_H

#include "obs/Metrics.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace spa {
namespace obs {

/// Journal event taxonomy (docs/OBSERVABILITY.md).  Values are stable
/// across processes of the same build, so a child's numeric event kinds
/// shipped over the batch pipe decode in the parent.
enum class JournalEventKind : uint16_t {
  None = 0,
  PhaseBegin,      ///< A = phase id (journalPhaseId).
  PhaseEnd,        ///< A = phase id.
  PartitionBegin,  ///< A = partition id, B = nodes in partition.
  PartitionEnd,    ///< A = partition id, B = visits performed.
  BudgetCharge,    ///< A = total steps used (amortized milestone).
  BudgetTrip,      ///< A = BudgetReason, B = steps at trip.
  DegradeTier,     ///< A = engine id, B = nodes degraded.
  WidenBurst,      ///< A = node id of last widening, B = burst count.
  FaultArm,        ///< A = FaultPlan::Kind, B = 0.
  BatchItemBegin,  ///< A = item index.
  BatchItemEnd,    ///< A = item index, B = BatchOutcome.
  HeartbeatStall,  ///< Written by the watchdog: A = slot, B = heartbeat.
  OomTrip,         ///< Allocation failure under a hard memory cap.
  OctCloseBurst,   ///< A = node id, B = closure ticks (4096-crossing visit).
  SnapshotSave,    ///< A = bytes written, B = section count.
  SnapshotLoad,    ///< A = bytes consumed, B = SnapErrc (0 = ok).
  ShardDispatch,   ///< A = item index, B = shard index.
  ShardWorkerExit, ///< A = shard index, B = 1 if unexpected death.
  ServeRequest,    ///< A = program digest (low 64), B = partitions solved.
  ServeCacheHit,   ///< A = program digest, B = partitions served from cache.
  ServeEvict,      ///< A = evicted program digest, B = bytes released.
  ServeAbort,      ///< A = request id of a request killed mid-flight.
};

/// Human name of \p K ("phase.begin", "budget.trip", ...).
const char *journalEventName(JournalEventKind K);

/// Phase-name <-> small-integer mapping for PhaseBegin/PhaseEnd payloads
/// (the journal stores no pointers; a name outlives the process only as
/// an id).  Unknown names map to 0 ("?").
uint16_t journalPhaseId(const char *Phase);
const char *journalPhaseName(uint16_t Id);

/// One journal record: 32 bytes of PODs, written in place then published
/// by the slot-head release store.
struct JournalRecord {
  uint64_t Seq = 0;        ///< Global publication order (cross-thread).
  uint32_t TimeMicros = 0; ///< Since journal epoch (wraps after ~71 min).
  uint16_t Kind = 0;       ///< JournalEventKind.
  uint16_t Pad = 0;
  uint64_t A = 0, B = 0;   ///< Event payload (see the kind taxonomy).
};

#if SPA_OBS_ENABLED

/// Ring capacity per thread slot (power of two).  256 events is several
/// partitions' worth of tail at the amortized recording rates — enough
/// to reconstruct the last phase, small enough that a full dump of every
/// slot stays a few tens of KiB.
constexpr uint32_t JournalRingCap = 256;

/// Maximum concurrently journaled threads.  Slots free on thread exit
/// and are reused; a thread beyond the cap records nothing (still safe).
constexpr uint32_t JournalMaxSlots = 64;

/// One thread's journal slot.  The layout is read directly by the
/// async-signal-safe postmortem writer, hence everything is an atomic or
/// plain POD and the struct lives in a static table (no heap).
struct JournalSlot {
  /// Number of records ever written; Ring[(Head-1) & (Cap-1)] is the
  /// newest.  Release-stored after the record body.
  std::atomic<uint64_t> Head{0};
  /// Monotonic progress counter: fixpoint loops bump it every visit.
  std::atomic<uint64_t> Heartbeat{0};
  /// Nesting depth of fixpoint scopes; the watchdog only monitors slots
  /// with FixDepth > 0 (a thread parsing or building is not "stalled").
  std::atomic<uint32_t> FixDepth{0};
  /// Advisory context for stall reports (relaxed, amortized updates).
  std::atomic<uint64_t> WorklistDepth{0};
  std::atomic<uint64_t> Partition{0};
  std::atomic<uint32_t> OsTid{0}; ///< gettid() of the owning thread.
  std::atomic<uint8_t> Used{0};   ///< Slot claimed by a live thread.
  JournalRecord Ring[JournalRingCap];
};

/// The static slot table, exposed for the postmortem writer and the
/// watchdog (both read with atomics only; neither allocates).
JournalSlot *journalSlots();
constexpr uint32_t journalNumSlots() { return JournalMaxSlots; }

/// Appends one event to the calling thread's ring.  Hot-path cost: one
/// TLS load, one relaxed fetch_add (global sequence), one 32-byte store,
/// one release store.  Call sites are amortized (phase edges, partition
/// edges, 1024-step budget boundaries), never per-visit.
void journalRecord(JournalEventKind Kind, uint64_t A = 0, uint64_t B = 0);

/// Bumps the calling thread's heartbeat (every fixpoint visit).
void journalHeartbeat();

/// Amortized stall-report context updates (relaxed stores).
void journalSetWorklistDepth(uint64_t Depth);
void journalSetPartition(uint64_t Part);

/// Sum of all slots' heartbeats (tests; the stall summary).
uint64_t journalHeartbeatTotal();

/// Micros since the shared observability epoch (obs/Trace.h
/// obsEpochNanos) — the same timebase the tracer stamps spans with, so
/// journal events overlay directly on a merged Chrome trace.
uint64_t journalNowMicros();

/// Normal-context JSON dump of every live slot's ring (schema
/// spa-journal-v1; same per-thread layout as the postmortem "threads"
/// section).  The header records "epoch_ns", the shared observability
/// epoch all t_us values are relative to.  Not signal-safe — this is
/// the --journal-out path of a run that *survived*; the crash path is
/// the postmortem writer.
std::string journalToJson();

/// Drops every slot not owned by the calling thread and re-arms the
/// caller's slot in a fork child: the child inherits copies of the
/// parent's worker-thread slots, which would otherwise masquerade as
/// live threads in its postmortem.
void journalResetForChild();

/// Marks entry/exit of a fixpoint loop for the watchdog.
class JournalFixScope {
public:
  JournalFixScope();
  ~JournalFixScope();
  JournalFixScope(const JournalFixScope &) = delete;
  JournalFixScope &operator=(const JournalFixScope &) = delete;
};

#define SPA_OBS_JOURNAL(Kind, A, B)                                            \
  ::spa::obs::journalRecord(::spa::obs::JournalEventKind::Kind,                \
                            static_cast<uint64_t>(A),                          \
                            static_cast<uint64_t>(B))
#define SPA_OBS_HEARTBEAT() ::spa::obs::journalHeartbeat()
#define SPA_OBS_FIX_SCOPE() ::spa::obs::JournalFixScope SPA_OBS_CONCAT(ObsFix_, __LINE__)

#else // !SPA_OBS_ENABLED

inline void journalRecord(JournalEventKind, uint64_t = 0, uint64_t = 0) {}
inline void journalHeartbeat() {}
inline void journalSetWorklistDepth(uint64_t) {}
inline void journalSetPartition(uint64_t) {}
inline uint64_t journalHeartbeatTotal() { return 0; }
inline uint64_t journalNowMicros() { return 0; }
inline std::string journalToJson() {
  return "{\n  \"schema\": \"spa-journal-v1\",\n  \"threads\": []\n}\n";
}
inline void journalResetForChild() {}

class JournalFixScope {
public:
  JournalFixScope() = default;
};

#define SPA_OBS_JOURNAL(Kind, A, B)                                            \
  do {                                                                         \
    if (false) {                                                               \
      (void)(A);                                                               \
      (void)(B);                                                               \
    }                                                                          \
  } while (0)
#define SPA_OBS_HEARTBEAT()                                                    \
  do {                                                                         \
  } while (0)
#define SPA_OBS_FIX_SCOPE()                                                    \
  do {                                                                         \
  } while (0)

#endif // SPA_OBS_ENABLED

} // namespace obs
} // namespace spa

#endif // SPA_OBS_JOURNAL_H
