//===- Service.cpp - Resident incremental analysis service ----------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Service.h"

#include "core/Checker.h"
#include "core/DepSnapshot.h"
#include "ir/Builder.h"
#include "ir/Snapshot.h"
#include "obs/Journal.h"
#include "obs/MetricsSink.h"
#include "obs/Trace.h"
#include "support/Resource.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

using namespace spa;
using namespace spa::serve;

uint64_t spa::serve::fnv1a64(const void *Data, size_t Len, uint64_t Seed) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint64_t H = Seed ? Seed : 14695981039346656037ull;
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}

namespace {

/// Incremental FNV-1a accumulator for the structured hashes below.
struct Fnv {
  uint64_t H = 14695981039346656037ull;

  void bytes(const void *Data, size_t Len) { H = fnv1a64(Data, Len, H); }
  void u8(uint8_t V) { bytes(&V, 1); }
  void u32(uint32_t V) { bytes(&V, 4); }
  void u64(uint64_t V) { bytes(&V, 8); }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void f64(double V) {
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(V), "double width");
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }
};

//===----------------------------------------------------------------------===//
// Partition signatures
//===----------------------------------------------------------------------===//
//
// A partition's signature covers everything the sparse fixpoint reads
// about its nodes: commands (with callee bindings for call plumbing),
// def/use sets, widening flags, scheduling priority *ranks*, and the
// dependency edges — with cross-references remapped to member indices so
// a partition keeps its signature when unrelated code above it shifts
// node ids... which it deliberately does NOT do for LocIds: abstract
// values embed raw LocIds (points-to sets), so two partitions are only
// interchangeable when their locations are *identical*, not isomorphic.
// In practice edits keep the ids of untouched declarations stable (the
// builder numbers locations in declaration order), which is what makes
// partition reuse fire on single-function edits.

void hashExpr(Fnv &F, const IExpr &E) {
  F.u8(static_cast<uint8_t>(E.Kind));
  switch (E.Kind) {
  case IExprKind::Num:
    F.i64(E.Num);
    break;
  case IExprKind::Var:
  case IExprKind::AddrOf:
  case IExprKind::Deref:
    F.u32(E.Loc.value());
    break;
  case IExprKind::Binary:
    F.u8(static_cast<uint8_t>(E.Op));
    hashExpr(F, *E.Lhs);
    hashExpr(F, *E.Rhs);
    break;
  case IExprKind::Input:
    break;
  case IExprKind::FuncAddr:
    F.u32(E.Func.value());
    break;
  }
}

/// Hashes one command.  \p IdxOf maps graph point node -> member index
/// within the partition (UINT32_MAX for non-members); the Call/Return
/// pair pointer is remapped through it so a partition's signature
/// survives point-id shifts in *other* functions.
void hashCommand(Fnv &F, const Command &C,
                 const std::vector<uint32_t> &IdxOf) {
  F.u8(static_cast<uint8_t>(C.Kind));
  F.u32(C.Target.value());
  F.u8(C.E != nullptr);
  if (C.E)
    hashExpr(F, *C.E);
  F.u8(C.Cnd != nullptr);
  if (C.Cnd) {
    F.u8(static_cast<uint8_t>(C.Cnd->Op));
    hashExpr(F, *C.Cnd->Lhs);
    hashExpr(F, *C.Cnd->Rhs);
  }
  F.u32(C.AllocSite.value());
  F.u32(C.DirectCallee.value());
  F.u8(C.External ? 1 : 0);
  F.u32(static_cast<uint32_t>(C.Args.size()));
  for (const auto &A : C.Args)
    hashExpr(F, *A);
  if (C.Pair.isValid() && C.Pair.value() < IdxOf.size() &&
      IdxOf[C.Pair.value()] != UINT32_MAX) {
    F.u8(1);
    F.u32(IdxOf[C.Pair.value()]);
  } else {
    F.u8(0);
    F.u32(C.Pair.value());
  }
}

void hashLocList(Fnv &F, const Program &Prog,
                 const std::vector<LocId> &Ls) {
  F.u32(static_cast<uint32_t>(Ls.size()));
  for (LocId L : Ls) {
    F.u32(L.value());
    // Strong-update legality depends on the location's summary-ness,
    // which the transfer reads through Prog.loc(); fold it in so a
    // changed declaration kind invalidates the partitions touching it.
    F.u8(static_cast<uint8_t>(Prog.loc(L).Kind));
  }
}

struct PartitionInfo {
  std::vector<std::vector<uint32_t>> Members; ///< Per comp, ascending ids.
  std::vector<uint64_t> Sigs;
};

/// Fixed prefix folded into every signature: the option knobs that
/// change what the fixpoint computes.  Two daemons configured
/// differently must never adopt each other's partitions (they do not
/// share a cache today, but the salt also protects a daemon whose
/// options change across restarts against externally persisted state).
uint64_t optionsSalt(const AnalyzerOptions &Opts) {
  Fnv F;
  F.u32(Opts.WideningDelay);
  F.u8(Opts.Sem.StrongUpdates ? 1 : 0);
  F.u8(static_cast<uint8_t>(Opts.Pre));
  F.u8(static_cast<uint8_t>(Opts.Dep.Kind));
  F.u8(Opts.Dep.Bypass ? 1 : 0);
  F.u8(Opts.Dep.UseBdd ? 1 : 0);
  F.f64(Opts.TimeLimitSec);
  F.u8(Opts.Budget.enabled() ? 1 : 0);
  return F.H;
}

PartitionInfo computePartitions(const Program &Prog, const CallGraphInfo &CG,
                                const SparseGraph &Graph, uint64_t Salt) {
  PartitionInfo P;
  DepComponents DC = computeDepComponents(Prog, Graph);
  size_t N = Graph.numNodes();
  P.Members.resize(DC.NumComps);
  for (uint32_t Node = 0; Node < N; ++Node)
    P.Members[DC.CompOfNode[Node]].push_back(Node); // Ascending by loop.

  // Scheduling inputs the engine derives identically (SparseAnalysis.cpp).
  std::vector<uint32_t> PointRpo = computeSuperRpo(Prog, CG);
  std::vector<bool> WidenPoint = computeWideningPoints(Prog, CG);
  std::vector<uint32_t> Prio(N);
  for (uint32_t I = 0; I < N; ++I) {
    uint32_t R2 = 2 * PointRpo[Graph.anchor(I).value()] + 1;
    Prio[I] = Graph.isPhi(I) ? R2 - 1 : R2;
  }

  // Member-index map, rebuilt per component (only member slots are ever
  // read, so stale non-member slots from the previous component are
  // harmless — but reset them anyway to keep the invariant checkable).
  std::vector<uint32_t> IdxOf(N, UINT32_MAX);

  P.Sigs.resize(DC.NumComps);
  for (uint32_t C = 0; C < DC.NumComps; ++C) {
    const std::vector<uint32_t> &M = P.Members[C];
    for (uint32_t K = 0; K < M.size(); ++K)
      IdxOf[M[K]] = K;

    // Priority *ranks*: the worklist only compares priorities, so the
    // schedule depends on their relative order within the component, not
    // their absolute values (which shift whenever earlier functions
    // change size).  Dense-rank them: equal priorities share a rank.
    std::vector<uint32_t> SortedPrio;
    SortedPrio.reserve(M.size());
    for (uint32_t Node : M)
      SortedPrio.push_back(Prio[Node]);
    std::sort(SortedPrio.begin(), SortedPrio.end());
    SortedPrio.erase(std::unique(SortedPrio.begin(), SortedPrio.end()),
                     SortedPrio.end());
    auto RankOf = [&](uint32_t Pr) {
      return static_cast<uint32_t>(
          std::lower_bound(SortedPrio.begin(), SortedPrio.end(), Pr) -
          SortedPrio.begin());
    };

    Fnv F;
    F.u64(Salt);
    F.u32(static_cast<uint32_t>(M.size()));
    for (uint32_t Node : M) {
      if (Graph.isPhi(Node)) {
        const PhiNode &Phi = Graph.phi(Node);
        F.u8(1);
        // The join point is always in the same component; remap it.
        F.u32(IdxOf[Phi.At.value()]);
        F.u32(Phi.L.value());
        F.u8(static_cast<uint8_t>(Prog.loc(Phi.L).Kind));
      } else {
        F.u8(0);
        const Command &Cmd = Prog.point(PointId(Node)).Cmd;
        hashCommand(F, Cmd, IdxOf);
        // Call/Return plumbing reads the callee list and each callee's
        // parameter/return bindings from outside the command itself.
        PointId CallPt;
        if (Cmd.Kind == CmdKind::Call)
          CallPt = PointId(Node);
        else if (Cmd.Kind == CmdKind::Return)
          CallPt = Cmd.Pair;
        if (CallPt.isValid()) {
          const std::vector<FuncId> &Cs = CG.callees(CallPt);
          F.u32(static_cast<uint32_t>(Cs.size()));
          for (FuncId Callee : Cs) {
            const FunctionInfo &FI = Prog.function(Callee);
            F.u32(static_cast<uint32_t>(FI.Params.size()));
            for (LocId L : FI.Params)
              F.u32(L.value());
            F.u32(FI.RetSlot.value());
          }
        }
      }
      hashLocList(F, Prog, Graph.NodeDefs[Node]);
      hashLocList(F, Prog, Graph.NodeUses[Node]);
      F.u8(WidenPoint[Graph.anchor(Node).value()] ? 1 : 0);
      F.u32(RankOf(Prio[Node]));

      // Dependency edges, destination remapped (components are closed,
      // so every destination is a member).  Collected and sorted to be
      // independent of the storage backend's enumeration order.
      std::vector<std::pair<uint32_t, uint32_t>> Edges;
      Graph.Edges->forEachOut(Node, [&](LocId L, uint32_t Dst) {
        Edges.emplace_back(L.value(), IdxOf[Dst]);
      });
      std::sort(Edges.begin(), Edges.end());
      F.u32(static_cast<uint32_t>(Edges.size()));
      for (const auto &[L, Dst] : Edges) {
        F.u32(L);
        F.u32(Dst);
      }
    }
    P.Sigs[C] = F.H;

    for (uint32_t Node : M)
      IdxOf[Node] = UINT32_MAX;
  }
  return P;
}

void hashValue(Fnv &F, const Value &V) {
  auto Itv = [&](const Interval &I) {
    // Canonical bottom: isBot() admits any Lo > Hi representation but
    // operator== treats them all equal, so the digest must too.
    if (I.isBot()) {
      F.i64(bound::PosInf);
      F.i64(bound::NegInf);
    } else {
      F.i64(I.lo());
      F.i64(I.hi());
    }
  };
  Itv(V.Itv);
  Itv(V.Offset);
  Itv(V.Size);
  F.u32(static_cast<uint32_t>(V.Pts.size()));
  for (LocId L : V.Pts)
    F.u32(L.value());
  F.u32(static_cast<uint32_t>(V.Funcs.size()));
  for (FuncId G : V.Funcs)
    F.u32(G.value());
}

void hashState(Fnv &F, const AbsState &S) {
  F.u32(static_cast<uint32_t>(S.size()));
  for (const auto &[L, V] : S) { // FlatMap iterates sorted by LocId.
    F.u32(L.value());
    hashValue(F, V);
  }
}

/// Rough resident-size estimate of a cache entry (LRU accounting only;
/// no correctness rides on it).
uint64_t estimateEntryBytes(const CacheEntry &E) {
  uint64_t B = sizeof(CacheEntry);
  for (const AbsState &S : E.In)
    B += sizeof(AbsState) + S.size() * (sizeof(LocId) + sizeof(Value));
  for (const AbsState &S : E.Out)
    B += sizeof(AbsState) + S.size() * (sizeof(LocId) + sizeof(Value));
  for (const auto &M : E.Members)
    B += M.size() * sizeof(uint32_t);
  B += E.Sigs.size() * sizeof(uint64_t);
  B += E.Resp.AlarmsText.size() + E.Resp.InvariantsText.size();
  return B;
}

/// One line per non-safe check, indented exactly like the cold
/// `spa-analyze --check` listing so clients can print it verbatim.
std::string renderAlarms(const Program &Prog, const CheckerSummary &Sum) {
  std::string Out;
  for (const AccessCheck &C : Sum.Checks)
    if (C.Result != AccessCheck::Verdict::Safe) {
      Out += "  ";
      Out += C.str(Prog);
      Out += '\n';
    }
  return Out;
}

/// main's exit invariants, byte-identical to cold `spa-analyze` output
/// so the client can print the response verbatim.
std::string renderInvariants(const Program &Prog, const SparseResult &R) {
  std::string Out = "invariants at main's exit:\n";
  FuncId Main = Prog.mainFunc();
  if (!Main.isValid())
    return Out;
  PointId Exit = Prog.function(Main).Exit;
  char Line[512];
  for (const auto &[L, V] : R.In[Exit.value()]) {
    std::snprintf(Line, sizeof(Line), "  %-16s = %s\n",
                  Prog.loc(L).Name.c_str(), V.str().c_str());
    Out += Line;
  }
  return Out;
}

} // namespace

uint64_t spa::serve::hashSparseStates(const SparseResult &R) {
  Fnv F;
  F.u32(static_cast<uint32_t>(R.In.size()));
  for (const AbsState &S : R.In)
    hashState(F, S);
  for (const AbsState &S : R.Out)
    hashState(F, S);
  F.u8(R.TimedOut ? 1 : 0);
  F.u8(R.Degraded ? 1 : 0);
  F.u32(static_cast<uint32_t>(R.DegradedNodeIds.size()));
  for (uint32_t Node : R.DegradedNodeIds)
    F.u32(Node);
  return F.H;
}

Service::Service(ServiceOptions O) : Opts(std::move(O)) {
  // Partition reuse is a property of the sparse engine's dependency
  // components, and those only separate under the bypass contraction:
  // without it every local threads through _start's entry node and the
  // whole program is one component.  So the server analyzes exactly the
  // way a default `spa-analyze` run does (bypass on).  The checker stays
  // sound on the contracted buffers because it reads pointer operands
  // only at points that genuinely *use* them, which bypassing preserves
  // (tests/server_test.cpp pins this equivalence); keeping the options
  // fixed also makes cache entries independent of the per-request check
  // flag.
  Opts.Analyzer.Engine = EngineKind::Sparse;
  StartMicros = obs::obsNowMicros();
  LastTelemetryMicros = StartMicros;
}

Service::~Service() = default;

void Service::touch(CacheEntry &E) { E.LastUse = ++Tick; }

void Service::exportCacheGauges() {
  SPA_OBS_GAUGE_SET("serve.cache.entries", Entries.size());
  SPA_OBS_GAUGE_SET("serve.cache.bytes", TotalBytes);
}

void Service::evictToBudget() {
  while (!Entries.empty() && (TotalBytes > Opts.MaxCacheBytes ||
                              Entries.size() > Opts.MaxCacheEntries)) {
    auto Victim = Entries.begin();
    for (auto It = Entries.begin(); It != Entries.end(); ++It)
      if (It->second->LastUse < Victim->second->LastUse)
        Victim = It;
    uint64_t Digest = Victim->first;
    uint64_t Bytes = Victim->second->Bytes;
    for (auto It = SigIndex.begin(); It != SigIndex.end();)
      It = It->second.first == Digest ? SigIndex.erase(It) : std::next(It);
    for (auto It = SrcMemo.begin(); It != SrcMemo.end();)
      It = It->second == Digest ? SrcMemo.erase(It) : std::next(It);
    TotalBytes -= Bytes;
    Entries.erase(Victim);
    SPA_OBS_COUNT("serve.cache.evictions", 1);
    SPA_OBS_JOURNAL(ServeEvict, Digest, Bytes);
  }
}

void Service::insertEntry(std::unique_ptr<CacheEntry> E, uint64_t SrcDigest) {
  uint64_t Digest = E->ProgDigest;
  E->Bytes = estimateEntryBytes(*E);
  TotalBytes += E->Bytes;
  touch(*E);
  for (uint32_t C = 0; C < E->Sigs.size(); ++C)
    SigIndex.emplace(E->Sigs[C], std::make_pair(Digest, C));
  SrcMemo[SrcDigest] = Digest;
  Entries[Digest] = std::move(E);
  evictToBudget();
  exportCacheGauges();
}

double Service::uptimeSeconds() const {
  return (obs::obsNowMicros() - StartMicros) / 1e6;
}

std::string Service::statsJson() const {
  std::string Out = "{\n  \"schema\": \"spa-serve-stats-v1\",\n";
  Out += "  \"uptime_seconds\": " +
         obs::MetricsSink::formatValue(uptimeSeconds()) + ",\n";
  Out += "  \"epoch_ns\": " + std::to_string(obs::obsEpochNanos()) + ",\n";
  Out += "  \"cache\": {\"entries\": " + std::to_string(Entries.size()) +
         ", \"bytes\": " + std::to_string(TotalBytes) + "},\n";
  Out += "  \"metrics\": " +
         obs::MetricsSink::toJson(obs::Registry::global()) + "\n}\n";
  return Out;
}

std::string Service::statsProm() const {
  return obs::Registry::global().renderProm();
}

std::string Service::telemetryJson() {
  SPA_OBS_COUNT("telemetry.frames", 1);
  double Now = obs::obsNowMicros();
  double IntervalSec = (Now - LastTelemetryMicros) / 1e6;
  LastTelemetryMicros = Now;

  // serve.* counter deltas against the previous frame's baseline.
  std::vector<std::pair<std::string, double>> Deltas;
  obs::Registry::global().forEachInstrument(
      [&](const std::string &Name, const obs::Counter &C) {
        if (Name.rfind("serve.", 0) != 0)
          return;
        double V = static_cast<double>(C.value());
        double D = V - LastCounters[Name];
        LastCounters[Name] = V;
        Deltas.emplace_back(Name, D);
      },
      [](const std::string &, const obs::Gauge &) {});

  double Requests = obs::Registry::global().value("serve.requests");
  double Hits = obs::Registry::global().value("serve.cache.hits");
  double ReqDelta = 0;
  for (const auto &[Name, D] : Deltas)
    if (Name == "serve.requests")
      ReqDelta = D;

  auto Num = [](double V) { return obs::MetricsSink::formatValue(V); };
  std::string Out = "{\n  \"schema\": \"spa-serve-telemetry-v1\",\n";
  Out += "  \"seq\": " + std::to_string(++TelemetrySeq) + ",\n";
  Out += "  \"uptime_seconds\": " + Num(uptimeSeconds()) + ",\n";
  Out += "  \"interval_seconds\": " + Num(IntervalSec) + ",\n";
  Out += "  \"requests_total\": " + Num(Requests) + ",\n";
  Out += "  \"requests_delta\": " + Num(ReqDelta) + ",\n";
  Out += "  \"request_rate\": " +
         Num(IntervalSec > 0 ? ReqDelta / IntervalSec : 0) + ",\n";
  Out += "  \"hit_ratio\": " + Num(Requests > 0 ? Hits / Requests : 0) + ",\n";
  Out += "  \"cache_entries\": " + std::to_string(Entries.size()) + ",\n";
  Out += "  \"cache_bytes\": " + std::to_string(TotalBytes) + ",\n";
  Out += "  \"partitions_resolved\": " +
         Num(obs::Registry::global().value("serve.partitions.resolved")) +
         ",\n";
  Out += "  \"counters\": {";
  bool First = true;
  for (const auto &[Name, D] : Deltas) {
    Out += First ? "" : ", ";
    First = false;
    Out += "\"" + Name + "\": " + Num(D);
  }
  Out += "}\n}\n";
  return Out;
}

ServeErrc Service::analyze(const AnalyzeRequest &Req, AnalyzeResponse &Resp,
                           std::string &Error) {
  Timer Wall;
  // Per-request observability scoping: last-value gauges restart, while
  // monotone serve.* counters keep accumulating for --serve-stats.
  obs::Registry::global().resetGauges();
  SPA_OBS_COUNT("serve.requests", 1);
  uint64_t ReqId = ++RequestSeq;
  // Request-scoped span tree: everything the pipeline records below
  // (build, fixpoint, checker spans) nests under this root; the daemon
  // retains the tree in the tracer's bounded ring (tools/spa-serve.cpp
  // sets the capacity).
  SPA_OBS_TRACE("serve.request");

  if (Opts.FaultArmed) {
    // One-shot injected fault (SPA_FAULT): fail THIS request with a
    // typed error, then disarm — the lifecycle test asserts the daemon
    // survives and the next request succeeds.  The abort event keeps the
    // journal honest about the per-request gauges the recovery dropped:
    // resetGauges() above started the request's gauge scope, but no
    // ServeRequest record will ever follow for this id.
    Opts.FaultArmed = false;
    SPA_OBS_COUNT("serve.faults.injected", 1);
    SPA_OBS_JOURNAL(ServeAbort, ReqId, 0);
    Error = "injected fault (SPA_FAULT armed at daemon start)";
    return ServeErrc::Injected;
  }

  const bool Incremental =
      Opts.Incremental && !(Req.Flags & ReqFlagNoIncremental);

  auto FinishHit = [&](CacheEntry &E) {
    touch(E);
    Resp = E.Resp;
    Resp.CacheHit = 1;
    Resp.PartitionsReused = Resp.PartitionsTotal;
    Resp.PartitionsSolved = 0;
    SPA_OBS_COUNT("serve.cache.hits", 1);
    SPA_OBS_GAUGE_SET("serve.partitions.total", Resp.PartitionsTotal);
    SPA_OBS_GAUGE_SET("serve.partitions.reused", Resp.PartitionsReused);
    SPA_OBS_GAUGE_SET("serve.partitions.resolved", 0);
    SPA_OBS_JOURNAL(ServeCacheHit, E.ProgDigest, Resp.PartitionsTotal);
    exportCacheGauges();
    Resp.WallSeconds = Wall.seconds();
    SPA_OBS_GAUGE_SET("serve.request.seconds", Resp.WallSeconds);
    Resp.MetricsJson = obs::MetricsSink::toJson(obs::Registry::global());
    return ServeErrc::None;
  };

  // Fast path: byte-identical request (the repeated-CI-request case) —
  // skip even the parse.  Keyed on the raw bytes plus the snapshot flag,
  // which changes how they are interpreted.
  uint64_t SrcDigest = fnv1a64(Req.Program.data(), Req.Program.size(),
                               (Req.Flags & ReqFlagSnapshot) ? 0x9e3779b9ull
                                                             : 0);
  if (Incremental) {
    auto MIt = SrcMemo.find(SrcDigest);
    if (MIt != SrcMemo.end()) {
      auto EIt = Entries.find(MIt->second);
      if (EIt != Entries.end())
        return FinishHit(*EIt->second);
    }
  }

  // Materialize the program.
  std::unique_ptr<Program> Prog;
  SparseGraph DecodedGraph;
  bool HaveDecodedGraph = false;
  if (Req.Flags & ReqFlagSnapshot) {
    SnapshotLoadResult L = loadSnapshot(
        reinterpret_cast<const uint8_t *>(Req.Program.data()),
        Req.Program.size());
    if (!L.ok()) {
      Error = L.Error.str();
      return ServeErrc::SnapshotError;
    }
    Prog = std::move(L.Prog);
    if (L.HasDepGraph) {
      DepSnapshotResult Dec = decodeDepGraph(*Prog, L.DepGraph);
      if (depSnapshotUsable(Dec, Opts.Analyzer.Dep)) {
        DecodedGraph = std::move(Dec.Graph);
        HaveDecodedGraph = true;
        SPA_OBS_COUNT("serve.depgraph.warm_starts", 1);
      }
    }
  } else {
    BuildResult BR = buildProgramFromSource(Req.Program);
    if (!BR.ok()) {
      Error = BR.Error;
      return ServeErrc::BuildError;
    }
    Prog = std::move(BR.Prog);
  }

  // Canonical content digest: the deterministic snapshot encoding, so
  // source text and snapshot requests for the same program share one
  // cache entry.
  std::vector<uint8_t> Canon = saveSnapshot(*Prog);
  uint64_t ProgDigest = fnv1a64(Canon.data(), Canon.size());
  Canon.clear();
  Canon.shrink_to_fit();
  Resp = AnalyzeResponse{};
  Resp.ProgramDigest = ProgDigest;

  if (Incremental) {
    auto EIt = Entries.find(ProgDigest);
    if (EIt != Entries.end()) {
      SrcMemo[SrcDigest] = ProgDigest;
      return FinishHit(*EIt->second);
    }
  }
  SPA_OBS_COUNT("serve.cache.misses", 1);

  AnalyzerOptions AOpts = Opts.Analyzer;
  if (Req.Jobs)
    AOpts.Jobs = Req.Jobs;
  if (HaveDecodedGraph)
    AOpts.PrebuiltGraph = &DecodedGraph;

  // Incremental hook state: partitions of the new program, the restrict
  // list handed to the engine (must outlive analyzeProgram), and the
  // (new comp -> cached comp) adoption plan.
  PartitionInfo Parts;
  std::vector<uint32_t> Restrict;
  struct Adoption {
    uint32_t Comp;              ///< Component index in the new program.
    const CacheEntry *From;
    uint32_t FromComp;
  };
  std::vector<Adoption> Adoptions;
  uint64_t Salt = optionsSalt(Opts.Analyzer);

  if (Incremental) {
    AOpts.BeforeSparseFix = [&](const AnalysisRun &Run,
                                SparseOptions &SOpts) {
      Parts = computePartitions(*Prog, Run.Pre.CG, *Run.Graph, Salt);
      bool AnyReuse = false;
      for (uint32_t C = 0; C < Parts.Sigs.size(); ++C) {
        const CacheEntry *Found = nullptr;
        uint32_t FoundComp = 0;
        auto Range = SigIndex.equal_range(Parts.Sigs[C]);
        for (auto It = Range.first; It != Range.second; ++It) {
          auto EIt = Entries.find(It->second.first);
          if (EIt == Entries.end())
            continue;
          const CacheEntry &Cand = *EIt->second;
          uint32_t CC = It->second.second;
          // Validate before committing: a hash collision with a
          // different-sized partition must fall through to a re-solve.
          if (CC < Cand.Members.size() &&
              Cand.Members[CC].size() == Parts.Members[C].size()) {
            Found = &Cand;
            FoundComp = CC;
            break;
          }
        }
        if (Found) {
          Adoptions.push_back({C, Found, FoundComp});
          AnyReuse = true;
        } else {
          Restrict.insert(Restrict.end(), Parts.Members[C].begin(),
                          Parts.Members[C].end());
        }
      }
      if (AnyReuse) {
        std::sort(Restrict.begin(), Restrict.end());
        SOpts.RestrictNodes = &Restrict;
      } else {
        Restrict.clear();
      }
    };
  }

  AnalysisRun Run = analyzeProgram(*Prog, AOpts);
  if (!Run.Sparse) {
    Error = "analysis produced no sparse result";
    return ServeErrc::ServerError;
  }
  SparseResult &R = *Run.Sparse;

  // Adopt the untouched partitions' buffers from cache: the i-th member
  // of the new component corresponds to the i-th member of the cached
  // one (both ascending, equal count checked above).  COW states make
  // each copy O(1).
  for (const Adoption &A : Adoptions) {
    const std::vector<uint32_t> &NewM = Parts.Members[A.Comp];
    const std::vector<uint32_t> &OldM = A.From->Members[A.FromComp];
    for (size_t K = 0; K < NewM.size(); ++K) {
      R.In[NewM[K]] = A.From->In[OldM[K]];
      R.Out[NewM[K]] = A.From->Out[OldM[K]];
    }
    SPA_OBS_JOURNAL(ServeCacheHit, A.From->ProgDigest, 1);
  }

  uint32_t Total = Incremental ? static_cast<uint32_t>(Parts.Sigs.size()) : 0;
  uint32_t Reused = static_cast<uint32_t>(Adoptions.size());
  if (!Incremental) {
    // The ablation run never computes partitions; report the whole
    // program as one solved unit so the fields stay meaningful.
    Total = 1;
  }
  Resp.PartitionsTotal = Total;
  Resp.PartitionsReused = Reused;
  Resp.PartitionsSolved = Total - Reused;
  Resp.Degraded = Run.degraded() ? 1 : 0;
  Resp.TimedOut = Run.timedOut() ? 1 : 0;
  Resp.ResultDigest = hashSparseStates(R);

  CheckerSummary Sum = checkBufferOverruns(*Prog, Run);
  Resp.Checks = static_cast<uint32_t>(Sum.Checks.size());
  Resp.Alarms = Sum.numAlarms();
  Resp.AlarmsText = renderAlarms(*Prog, Sum);
  Resp.InvariantsText = renderInvariants(*Prog, R);

  if (Run.Ledger) {
    obs::PointCost Totals = Run.Ledger->totals();
    Resp.LedgerVisits = Totals.Visits;
    Resp.LedgerGrowth = Totals.Growth;
  }

  SPA_OBS_GAUGE_SET("serve.partitions.total", Resp.PartitionsTotal);
  SPA_OBS_GAUGE_SET("serve.partitions.reused", Resp.PartitionsReused);
  SPA_OBS_GAUGE_SET("serve.partitions.resolved", Resp.PartitionsSolved);
  SPA_OBS_JOURNAL(ServeRequest, ProgDigest, Resp.PartitionsSolved);

  // Cache the solution.  Degraded/timed-out runs are NOT cached: their
  // states depend on where the budget tripped, which is not a function
  // of the program content the signature covers.
  if (Incremental && !Resp.Degraded && !Resp.TimedOut) {
    auto E = std::make_unique<CacheEntry>();
    E->ProgDigest = ProgDigest;
    E->In = std::move(R.In);
    E->Out = std::move(R.Out);
    E->Members = std::move(Parts.Members);
    E->Sigs = std::move(Parts.Sigs);
    E->Resp = Resp; // Template; per-request fields fixed up on hit.
    E->Resp.WallSeconds = 0;
    E->Resp.MetricsJson.clear();
    insertEntry(std::move(E), SrcDigest);
  } else {
    exportCacheGauges();
  }

  Resp.WallSeconds = Wall.seconds();
  SPA_OBS_GAUGE_SET("serve.request.seconds", Resp.WallSeconds);
  Resp.MetricsJson = obs::MetricsSink::toJson(obs::Registry::global());
  return ServeErrc::None;
}
