//===- Service.h - Resident incremental analysis service ------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's brain, socket-free so tests and benches can drive it
/// in-process: an LRU-bounded cache of analyzed programs keyed by
/// spa-ir-v1 content digests, plus the incremental path (docs/SERVER.md).
/// On a request whose program differs from every cached entry, the
/// service runs the normal pipeline up to the dependency graph, computes
/// a content signature per dependency-graph partition (union-find
/// component), and re-runs the sparse fixpoint only for partitions whose
/// signature matches no cached partition — untouched partitions' In/Out
/// buffers are copied from cache.  Components are closed fixpoint
/// subsystems (SparseAnalysis.cpp), so the combined result is
/// bit-identical to a cold run; tests/server_test.cpp enforces this
/// across an edit-storm at several --jobs values.
///
/// Not thread-safe: the server handles one connection at a time, which
/// also keeps per-request metrics scoping (Registry::resetGauges)
/// race-free.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SERVE_SERVICE_H
#define SPA_SERVE_SERVICE_H

#include "core/Analyzer.h"
#include "serve/Protocol.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace spa {
namespace serve {

struct ServiceOptions {
  /// Base analyzer configuration for every request.  Engine is forced to
  /// Sparse; the bypass contraction is left on (its default) because the
  /// dependency partitions only separate under it — see Service.cpp.
  AnalyzerOptions Analyzer;
  /// Partition-level reuse.  Off = every request is a cold run
  /// (the --no-incremental ablation); the cache is neither read nor
  /// written so warm results cannot leak into the baseline.
  bool Incremental = true;
  /// LRU bounds on resident fixpoint solutions.
  uint64_t MaxCacheBytes = 256ull << 20;
  size_t MaxCacheEntries = 64;
  /// One-shot injected fault (SPA_FAULT=crash@serve, parsed at daemon
  /// start): the first request fails with ServeErrc::Injected instead of
  /// killing the daemon, then the trap disarms — the client sees a typed
  /// error and the next request succeeds (docs/SERVER.md "Faults").
  bool FaultArmed = false;
};

/// One resident analysis: full per-node state buffers plus per-partition
/// signatures so later requests can adopt untouched partitions.
struct CacheEntry {
  uint64_t ProgDigest = 0;
  std::vector<AbsState> In, Out;
  std::vector<std::vector<uint32_t>> Members; ///< Per partition, ascending.
  std::vector<uint64_t> Sigs;                 ///< Per partition.
  AnalyzeResponse Resp; ///< Response template (per-request fields blank).
  uint64_t Bytes = 0;
  uint64_t LastUse = 0;
};

class Service {
public:
  explicit Service(ServiceOptions Opts);
  ~Service();

  /// Serves one analyze request.  Returns ServeErrc::None and fills
  /// \p Resp, or a typed error code with \p Error set.  The daemon (and
  /// this object) remain usable after any error.
  ServeErrc analyze(const AnalyzeRequest &Req, AnalyzeResponse &Resp,
                    std::string &Error);

  /// Stats frame payload: a spa-serve-stats-v1 JSON document bundling
  /// daemon uptime, the shared observability epoch, cache occupancy
  /// (entries + bytes), and the full cumulative metrics registry under
  /// a nested "metrics" object.
  std::string statsJson() const;

  /// Prometheus text exposition of the metrics registry (the RespStats
  /// payload when the client set StatsFlagProm).
  std::string statsProm() const;

  /// One spa-serve-telemetry-v1 frame: monotone sequence number, uptime,
  /// request rate and serve.* counter deltas since the previous frame,
  /// cache hit ratio and occupancy.  Stateful — each call advances the
  /// delta baseline (the daemon serves one subscriber at a time, so one
  /// baseline suffices).
  std::string telemetryJson();

  size_t cacheEntries() const { return Entries.size(); }
  uint64_t cacheBytes() const { return TotalBytes; }
  double uptimeSeconds() const;

private:
  void touch(CacheEntry &E);
  void insertEntry(std::unique_ptr<CacheEntry> E, uint64_t SrcDigest);
  void evictToBudget();
  void exportCacheGauges();

  ServiceOptions Opts;
  /// Analyzed programs by canonical snapshot digest.
  std::unordered_map<uint64_t, std::unique_ptr<CacheEntry>> Entries;
  /// Raw request bytes -> program digest (skips parse + encode on
  /// byte-identical requests, the repeated-CI-request fast path).
  std::unordered_map<uint64_t, uint64_t> SrcMemo;
  /// Partition signature -> (program digest, partition index).  A
  /// multimap because distinct programs legitimately share partitions —
  /// that sharing is the whole point.
  std::unordered_multimap<uint64_t, std::pair<uint64_t, uint32_t>> SigIndex;
  uint64_t TotalBytes = 0;
  uint64_t Tick = 0;
  /// Daemon start on the shared observability timebase (obs/Trace.h).
  double StartMicros = 0;
  /// Request ids for the journal (ServeAbort carries the id of the
  /// request the injected fault killed mid-flight).
  uint64_t RequestSeq = 0;
  /// Telemetry delta baseline: counter values at the previous frame.
  uint64_t TelemetrySeq = 0;
  double LastTelemetryMicros = 0;
  std::unordered_map<std::string, double> LastCounters;
};

/// FNV-1a 64 over arbitrary bytes (the digest primitive the cache keys
/// on; matches the spa-ir-v1 section checksum function).
uint64_t fnv1a64(const void *Data, size_t Len, uint64_t Seed = 0);

/// Result digest: FNV-1a over every sparse In/Out buffer (sorted COW
/// map iteration and canonical bottom intervals make this deterministic
/// for identical results, at any --jobs).  The warm-vs-cold correctness
/// bar compares exactly this.
uint64_t hashSparseStates(const SparseResult &R);

} // namespace serve
} // namespace spa

#endif // SPA_SERVE_SERVICE_H
