//===- Protocol.cpp - spa-serve wire protocol -----------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include <cerrno>
#include <cstring>
#include <unistd.h>

using namespace spa;
using namespace spa::serve;

const unsigned char spa::serve::Magic[8] = {'S', 'P', 'A', 'S',
                                            'R', 'V', '1', '\n'};

const char *spa::serve::serveErrorName(ServeErrc Code) {
  switch (Code) {
  case ServeErrc::None:
    return "none";
  case ServeErrc::Io:
    return "io";
  case ServeErrc::BadMagic:
    return "bad_magic";
  case ServeErrc::BadVersion:
    return "bad_version";
  case ServeErrc::Malformed:
    return "malformed";
  case ServeErrc::TooLarge:
    return "too_large";
  case ServeErrc::BadRequest:
    return "bad_request";
  case ServeErrc::BuildError:
    return "build_error";
  case ServeErrc::SnapshotError:
    return "snapshot_error";
  case ServeErrc::Injected:
    return "fault_injected";
  case ServeErrc::ServerError:
    return "server_error";
  }
  return "unknown";
}

namespace {

bool writeAll(int Fd, const void *Buf, size_t Len) {
  const char *P = static_cast<const char *>(Buf);
  while (Len > 0) {
    ssize_t N = ::write(Fd, P, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

/// Reads exactly \p Len bytes.  Returns 1 on success, 0 on clean EOF at
/// offset 0, -1 on error/short read.
int readAll(int Fd, void *Buf, size_t Len) {
  char *P = static_cast<char *>(Buf);
  size_t Got = 0;
  while (Got < Len) {
    ssize_t N = ::read(Fd, P + Got, Len - Got);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (N == 0)
      return Got == 0 ? 0 : -1;
    Got += static_cast<size_t>(N);
  }
  return 1;
}

void putU16(std::vector<uint8_t> &B, uint16_t V) {
  B.push_back(V & 0xff);
  B.push_back((V >> 8) & 0xff);
}

void putU32(std::vector<uint8_t> &B, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    B.push_back((V >> (8 * I)) & 0xff);
}

void putU64(std::vector<uint8_t> &B, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    B.push_back((V >> (8 * I)) & 0xff);
}

void putStr(std::vector<uint8_t> &B, const std::string &S) {
  putU32(B, static_cast<uint32_t>(S.size()));
  B.insert(B.end(), S.begin(), S.end());
}

/// Bounds-checked little-endian payload reader (same failure discipline
/// as the snapshot Reader: any out-of-bounds access poisons the decode).
struct PayloadReader {
  const std::vector<uint8_t> &B;
  size_t Pos = 0;
  bool Ok = true;

  explicit PayloadReader(const std::vector<uint8_t> &B) : B(B) {}

  bool need(size_t N) {
    if (!Ok || B.size() - Pos < N) {
      Ok = false;
      return false;
    }
    return true;
  }
  uint16_t u16() {
    if (!need(2))
      return 0;
    uint16_t V = static_cast<uint16_t>(B[Pos] | (B[Pos + 1] << 8));
    Pos += 2;
    return V;
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(B[Pos + I]) << (8 * I);
    Pos += 4;
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(B[Pos + I]) << (8 * I);
    Pos += 8;
    return V;
  }
  uint8_t u8() {
    if (!need(1))
      return 0;
    return B[Pos++];
  }
  std::string str() {
    uint32_t Len = u32();
    if (!need(Len))
      return {};
    std::string S(reinterpret_cast<const char *>(B.data()) + Pos, Len);
    Pos += Len;
    return S;
  }
  bool done() const { return Ok && Pos == B.size(); }
};

uint64_t doubleBits(double D) {
  uint64_t Bits;
  std::memcpy(&Bits, &D, sizeof(Bits));
  return Bits;
}

double bitsDouble(uint64_t Bits) {
  double D;
  std::memcpy(&D, &Bits, sizeof(D));
  return D;
}

} // namespace

bool spa::serve::writeHandshake(int Fd) {
  unsigned char Buf[12];
  std::memcpy(Buf, Magic, 8);
  for (int I = 0; I < 4; ++I)
    Buf[8 + I] = (ProtocolVersion >> (8 * I)) & 0xff;
  return writeAll(Fd, Buf, sizeof(Buf));
}

ServeErrc spa::serve::readHandshake(int Fd) {
  unsigned char Buf[12];
  if (readAll(Fd, Buf, sizeof(Buf)) != 1)
    return ServeErrc::Io;
  if (std::memcmp(Buf, Magic, 8) != 0)
    return ServeErrc::BadMagic;
  uint32_t Ver = 0;
  for (int I = 0; I < 4; ++I)
    Ver |= static_cast<uint32_t>(Buf[8 + I]) << (8 * I);
  if (Ver != ProtocolVersion)
    return ServeErrc::BadVersion;
  return ServeErrc::None;
}

bool spa::serve::writeFrame(int Fd, FrameType Type,
                            const std::vector<uint8_t> &Payload,
                            uint16_t Flags) {
  if (Payload.size() > MaxFrameBytes)
    return false;
  std::vector<uint8_t> Header;
  Header.reserve(8);
  putU32(Header, static_cast<uint32_t>(Payload.size()));
  putU16(Header, static_cast<uint16_t>(Type));
  putU16(Header, Flags);
  return writeAll(Fd, Header.data(), Header.size()) &&
         (Payload.empty() ||
          writeAll(Fd, Payload.data(), Payload.size()));
}

ServeErrc spa::serve::readFrame(int Fd, Frame &Out) {
  unsigned char Header[8];
  int Rc = readAll(Fd, Header, sizeof(Header));
  if (Rc != 1)
    return ServeErrc::Io;
  uint32_t Len = 0;
  for (int I = 0; I < 4; ++I)
    Len |= static_cast<uint32_t>(Header[I]) << (8 * I);
  if (Len > MaxFrameBytes)
    return ServeErrc::TooLarge;
  Out.Type = static_cast<FrameType>(Header[4] | (Header[5] << 8));
  Out.Flags = static_cast<uint16_t>(Header[6] | (Header[7] << 8));
  Out.Payload.assign(Len, 0);
  if (Len > 0 && readAll(Fd, Out.Payload.data(), Len) != 1)
    return ServeErrc::Io;
  return ServeErrc::None;
}

std::vector<uint8_t>
spa::serve::encodeAnalyzeRequest(const AnalyzeRequest &Req) {
  std::vector<uint8_t> B;
  B.reserve(12 + Req.Program.size());
  putU32(B, Req.Flags);
  putU32(B, Req.Jobs);
  putStr(B, Req.Program);
  return B;
}

bool spa::serve::decodeAnalyzeRequest(const std::vector<uint8_t> &Payload,
                                      AnalyzeRequest &Out) {
  PayloadReader R(Payload);
  Out.Flags = R.u32();
  Out.Jobs = R.u32();
  Out.Program = R.str();
  return R.done();
}

std::vector<uint8_t>
spa::serve::encodeAnalyzeResponse(const AnalyzeResponse &Resp) {
  std::vector<uint8_t> B;
  putU64(B, Resp.ResultDigest);
  putU64(B, Resp.ProgramDigest);
  putU32(B, Resp.PartitionsTotal);
  putU32(B, Resp.PartitionsReused);
  putU32(B, Resp.PartitionsSolved);
  B.push_back(Resp.CacheHit);
  B.push_back(Resp.Degraded);
  B.push_back(Resp.TimedOut);
  B.push_back(0); // Pad.
  putU32(B, Resp.Checks);
  putU32(B, Resp.Alarms);
  putU64(B, doubleBits(Resp.WallSeconds));
  putU64(B, Resp.LedgerVisits);
  putU64(B, Resp.LedgerGrowth);
  putStr(B, Resp.AlarmsText);
  putStr(B, Resp.InvariantsText);
  putStr(B, Resp.MetricsJson);
  return B;
}

bool spa::serve::decodeAnalyzeResponse(const std::vector<uint8_t> &Payload,
                                       AnalyzeResponse &Out) {
  PayloadReader R(Payload);
  Out.ResultDigest = R.u64();
  Out.ProgramDigest = R.u64();
  Out.PartitionsTotal = R.u32();
  Out.PartitionsReused = R.u32();
  Out.PartitionsSolved = R.u32();
  Out.CacheHit = R.u8();
  Out.Degraded = R.u8();
  Out.TimedOut = R.u8();
  R.u8(); // Pad.
  Out.Checks = R.u32();
  Out.Alarms = R.u32();
  Out.WallSeconds = bitsDouble(R.u64());
  Out.LedgerVisits = R.u64();
  Out.LedgerGrowth = R.u64();
  Out.AlarmsText = R.str();
  Out.InvariantsText = R.str();
  Out.MetricsJson = R.str();
  return R.done();
}

std::vector<uint8_t> spa::serve::encodeError(ServeErrc Code,
                                             const std::string &Message) {
  std::vector<uint8_t> B;
  putU16(B, static_cast<uint16_t>(Code));
  putStr(B, Message);
  return B;
}

bool spa::serve::decodeError(const std::vector<uint8_t> &Payload,
                             ServeErrc &Code, std::string &Message) {
  PayloadReader R(Payload);
  Code = static_cast<ServeErrc>(R.u16());
  Message = R.str();
  return R.done();
}

std::vector<uint8_t> spa::serve::encodeString(const std::string &S) {
  std::vector<uint8_t> B;
  putStr(B, S);
  return B;
}

bool spa::serve::decodeString(const std::vector<uint8_t> &Payload,
                              std::string &Out) {
  PayloadReader R(Payload);
  Out = R.str();
  return R.done();
}

std::vector<uint8_t>
spa::serve::encodeSubscribeRequest(const SubscribeRequest &Req) {
  std::vector<uint8_t> B;
  B.reserve(8);
  putU32(B, Req.IntervalMs);
  putU32(B, Req.MaxFrames);
  return B;
}

bool spa::serve::decodeSubscribeRequest(const std::vector<uint8_t> &Payload,
                                        SubscribeRequest &Out) {
  PayloadReader R(Payload);
  Out.IntervalMs = R.u32();
  Out.MaxFrames = R.u32();
  return R.done();
}
