//===- Client.h - spa-serve client helpers ---------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Blocking one-shot client for the spa-serve socket (used by
/// `spa-analyze --connect=...`, the bench harness, and tests).  Each
/// helper opens a connection, exchanges the handshake, performs one
/// request/response, and closes — the daemon's cache is what persists,
/// not the connection.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SERVE_CLIENT_H
#define SPA_SERVE_CLIENT_H

#include "serve/Protocol.h"

#include <string>

namespace spa {
namespace serve {

/// Connected client socket with handshake already exchanged.  Movable,
/// closes on destruction.
class Client {
public:
  Client() = default;
  ~Client();
  Client(Client &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  Client &operator=(Client &&O) noexcept;
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to \p SocketPath and exchanges handshakes.  On failure
  /// returns the typed error with \p Error describing it.
  ServeErrc connect(const std::string &SocketPath, std::string &Error);

  bool connected() const { return Fd >= 0; }

  /// One analyze round trip.  Returns None and fills \p Resp, or the
  /// error the daemon sent (message in \p Error).
  ServeErrc analyze(const AnalyzeRequest &Req, AnalyzeResponse &Resp,
                    std::string &Error);

  /// Fetches the daemon's cumulative metrics JSON.
  ServeErrc stats(std::string &Json, std::string &Error);

  /// Asks the daemon to shut down (waits for the bye frame).
  ServeErrc shutdown(std::string &Error);

private:
  ServeErrc roundTrip(FrameType ReqType,
                      const std::vector<uint8_t> &Payload, Frame &Reply,
                      std::string &Error);

  int Fd = -1;
};

} // namespace serve
} // namespace spa

#endif // SPA_SERVE_CLIENT_H
