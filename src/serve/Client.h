//===- Client.h - spa-serve client helpers ---------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Blocking one-shot client for the spa-serve socket (used by
/// `spa-analyze --connect=...`, the bench harness, and tests).  Each
/// helper opens a connection, exchanges the handshake, performs one
/// request/response, and closes — the daemon's cache is what persists,
/// not the connection.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SERVE_CLIENT_H
#define SPA_SERVE_CLIENT_H

#include "serve/Protocol.h"

#include <functional>
#include <string>

namespace spa {
namespace serve {

/// Connected client socket with handshake already exchanged.  Movable,
/// closes on destruction.
class Client {
public:
  Client() = default;
  ~Client();
  Client(Client &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  Client &operator=(Client &&O) noexcept;
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to \p SocketPath and exchanges handshakes.  On failure
  /// returns the typed error with \p Error describing it.
  ServeErrc connect(const std::string &SocketPath, std::string &Error);

  bool connected() const { return Fd >= 0; }

  /// One analyze round trip.  Returns None and fills \p Resp, or the
  /// error the daemon sent (message in \p Error).
  ServeErrc analyze(const AnalyzeRequest &Req, AnalyzeResponse &Resp,
                    std::string &Error);

  /// Fetches the daemon's stats document: the spa-serve-stats-v1 JSON,
  /// or the Prometheus text exposition when \p Prom is set.
  ServeErrc stats(std::string &Doc, std::string &Error, bool Prom = false);

  /// Subscribes to the telemetry stream: sends ReqSubscribe and invokes
  /// \p OnFrame with each spa-serve-telemetry-v1 JSON document until the
  /// daemon has sent Req.MaxFrames (returning None), OnFrame returns
  /// false (also None — early unsubscribe by disconnecting), or the
  /// stream errors.  With MaxFrames = 0 the stream only ends via the
  /// callback or an error.
  ServeErrc subscribe(const SubscribeRequest &Req,
                      const std::function<bool(const std::string &)> &OnFrame,
                      std::string &Error);

  /// Asks the daemon to shut down (waits for the bye frame).
  ServeErrc shutdown(std::string &Error);

private:
  ServeErrc roundTrip(FrameType ReqType,
                      const std::vector<uint8_t> &Payload, Frame &Reply,
                      std::string &Error);

  int Fd = -1;
};

} // namespace serve
} // namespace spa

#endif // SPA_SERVE_CLIENT_H
