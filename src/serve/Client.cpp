//===- Client.cpp - spa-serve client helpers -------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace spa;
using namespace spa::serve;

Client::~Client() {
  if (Fd >= 0)
    ::close(Fd);
}

Client &Client::operator=(Client &&O) noexcept {
  if (this != &O) {
    if (Fd >= 0)
      ::close(Fd);
    Fd = O.Fd;
    O.Fd = -1;
  }
  return *this;
}

ServeErrc Client::connect(const std::string &SocketPath, std::string &Error) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long: " + SocketPath;
    return ServeErrc::BadRequest;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);

  int S = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (S < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return ServeErrc::Io;
  }
  if (::connect(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = "connect " + SocketPath + ": " + std::strerror(errno);
    ::close(S);
    return ServeErrc::Io;
  }
  // Server greets first; validate it before sending ours so a client
  // pointed at the wrong socket fails with BadMagic, not a hang.
  if (ServeErrc HS = readHandshake(S); HS != ServeErrc::None) {
    Error = std::string("server handshake: ") + serveErrorName(HS);
    ::close(S);
    return HS;
  }
  if (!writeHandshake(S)) {
    Error = "handshake write failed";
    ::close(S);
    return ServeErrc::Io;
  }
  Fd = S;
  return ServeErrc::None;
}

ServeErrc Client::roundTrip(FrameType ReqType,
                            const std::vector<uint8_t> &Payload, Frame &Reply,
                            std::string &Error) {
  if (Fd < 0) {
    Error = "not connected";
    return ServeErrc::Io;
  }
  if (!writeFrame(Fd, ReqType, Payload)) {
    Error = "request write failed";
    return ServeErrc::Io;
  }
  ServeErrc Rc = readFrame(Fd, Reply);
  if (Rc != ServeErrc::None) {
    Error = std::string("reading response: ") + serveErrorName(Rc);
    return Rc;
  }
  if (Reply.Type == FrameType::RespError) {
    ServeErrc Code = ServeErrc::ServerError;
    std::string Message;
    if (!decodeError(Reply.Payload, Code, Message)) {
      Error = "undecodable error frame";
      return ServeErrc::Malformed;
    }
    Error = Message.empty() ? serveErrorName(Code) : Message;
    return Code == ServeErrc::None ? ServeErrc::ServerError : Code;
  }
  return ServeErrc::None;
}

ServeErrc Client::analyze(const AnalyzeRequest &Req, AnalyzeResponse &Resp,
                          std::string &Error) {
  Frame Reply;
  ServeErrc Rc = roundTrip(FrameType::ReqAnalyze, encodeAnalyzeRequest(Req),
                           Reply, Error);
  if (Rc != ServeErrc::None)
    return Rc;
  if (Reply.Type != FrameType::RespResult ||
      !decodeAnalyzeResponse(Reply.Payload, Resp)) {
    Error = "malformed analyze response";
    return ServeErrc::Malformed;
  }
  return ServeErrc::None;
}

ServeErrc Client::stats(std::string &Doc, std::string &Error, bool Prom) {
  if (Fd < 0) {
    Error = "not connected";
    return ServeErrc::Io;
  }
  if (!writeFrame(Fd, FrameType::ReqStats, {},
                  Prom ? StatsFlagProm : uint16_t(0))) {
    Error = "request write failed";
    return ServeErrc::Io;
  }
  Frame Reply;
  ServeErrc Rc = readFrame(Fd, Reply);
  if (Rc != ServeErrc::None) {
    Error = std::string("reading response: ") + serveErrorName(Rc);
    return Rc;
  }
  if (Reply.Type != FrameType::RespStats ||
      !decodeString(Reply.Payload, Doc)) {
    Error = "malformed stats response";
    return ServeErrc::Malformed;
  }
  return ServeErrc::None;
}

ServeErrc Client::subscribe(
    const SubscribeRequest &Req,
    const std::function<bool(const std::string &)> &OnFrame,
    std::string &Error) {
  if (Fd < 0) {
    Error = "not connected";
    return ServeErrc::Io;
  }
  if (!writeFrame(Fd, FrameType::ReqSubscribe, encodeSubscribeRequest(Req))) {
    Error = "request write failed";
    return ServeErrc::Io;
  }
  for (uint32_t Got = 0; Req.MaxFrames == 0 || Got < Req.MaxFrames; ++Got) {
    Frame Reply;
    ServeErrc Rc = readFrame(Fd, Reply);
    if (Rc != ServeErrc::None) {
      Error = std::string("reading telemetry: ") + serveErrorName(Rc);
      return Rc;
    }
    if (Reply.Type == FrameType::RespError) {
      ServeErrc Code = ServeErrc::ServerError;
      std::string Message;
      if (!decodeError(Reply.Payload, Code, Message)) {
        Error = "undecodable error frame";
        return ServeErrc::Malformed;
      }
      Error = Message.empty() ? serveErrorName(Code) : Message;
      return Code == ServeErrc::None ? ServeErrc::ServerError : Code;
    }
    std::string Doc;
    if (Reply.Type != FrameType::RespTelemetry ||
        !decodeString(Reply.Payload, Doc)) {
      Error = "malformed telemetry frame";
      return ServeErrc::Malformed;
    }
    if (!OnFrame(Doc)) {
      // Early unsubscribe: the daemon stops at its next write once the
      // peer is gone, so disconnecting IS the unsubscribe protocol.
      ::close(Fd);
      Fd = -1;
      return ServeErrc::None;
    }
  }
  return ServeErrc::None;
}

ServeErrc Client::shutdown(std::string &Error) {
  Frame Reply;
  ServeErrc Rc = roundTrip(FrameType::ReqShutdown, {}, Reply, Error);
  if (Rc != ServeErrc::None)
    return Rc;
  if (Reply.Type != FrameType::RespBye) {
    Error = "malformed shutdown response";
    return ServeErrc::Malformed;
  }
  return ServeErrc::None;
}
