//===- Server.cpp - Unix-domain-socket daemon loop -------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "obs/Metrics.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace spa;
using namespace spa::serve;

Server::Server(ServerOptions O)
    : Opts(std::move(O)), Svc(Opts.Service) {}

Server::~Server() {
  int Fd = ListenFd.exchange(-1);
  if (Fd >= 0) {
    ::close(Fd);
    ::unlink(Opts.SocketPath.c_str());
  }
}

bool Server::listen(std::string &Error) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long: " + Opts.SocketPath;
    return false;
  }
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  // A stale socket file from a dead daemon would make bind fail; remove
  // it (a *live* daemon would still be reachable only through the new
  // file, which is the standard single-owner convention for UDS paths).
  ::unlink(Opts.SocketPath.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = "bind " + Opts.SocketPath + ": " + std::strerror(errno);
    ::close(Fd);
    return false;
  }
  // Generous backlog: concurrent clients park here while the service
  // handles one connection at a time.
  if (::listen(Fd, 64) < 0) {
    Error = std::string("listen: ") + std::strerror(errno);
    ::close(Fd);
    ::unlink(Opts.SocketPath.c_str());
    return false;
  }
  ListenFd.store(Fd);
  return true;
}

void Server::stop() {
  Stopping.store(true);
  int Fd = ListenFd.exchange(-1);
  if (Fd >= 0)
    ::close(Fd); // accept() in run() fails with EBADF and the loop exits.
}

void Server::run() {
  // Telemetry streaming writes into sockets whose peer may vanish at any
  // tick; the daemon must see EPIPE from write(), not die of SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);
  while (!Stopping.load()) {
    int LFd = ListenFd.load();
    if (LFd < 0)
      break;
    int Fd = ::accept(LFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // Listening socket closed (stop()) or fatal.
    }
    bool KeepGoing = serveConnection(Fd);
    ::close(Fd);
    if (!KeepGoing)
      break;
  }
  int Fd = ListenFd.exchange(-1);
  if (Fd >= 0)
    ::close(Fd);
  ::unlink(Opts.SocketPath.c_str());
}

bool Server::serveConnection(int Fd) {
  // Handshake both ways before any frame.  A bad peer greeting gets a
  // best-effort error frame (it may not even speak frames; that's fine).
  if (!writeHandshake(Fd))
    return true;
  if (ServeErrc HS = readHandshake(Fd); HS != ServeErrc::None) {
    writeFrame(Fd, FrameType::RespError,
               encodeError(HS, "bad client handshake"));
    return true;
  }

  Frame F;
  for (;;) {
    ServeErrc Rc = readFrame(Fd, F);
    if (Rc == ServeErrc::Io)
      return true; // Peer closed; next client.
    if (Rc != ServeErrc::None) {
      writeFrame(Fd, FrameType::RespError, encodeError(Rc, "bad frame"));
      return true;
    }
    switch (F.Type) {
    case FrameType::ReqAnalyze: {
      AnalyzeRequest Req;
      if (!decodeAnalyzeRequest(F.Payload, Req)) {
        writeFrame(Fd, FrameType::RespError,
                   encodeError(ServeErrc::Malformed,
                               "analyze request failed to decode"));
        break;
      }
      AnalyzeResponse Resp;
      std::string Error;
      ServeErrc Sc = Svc.analyze(Req, Resp, Error);
      if (Sc == ServeErrc::None)
        writeFrame(Fd, FrameType::RespResult, encodeAnalyzeResponse(Resp));
      else
        writeFrame(Fd, FrameType::RespError, encodeError(Sc, Error));
      break;
    }
    case FrameType::ReqStats:
      // StatsFlagProm selects the Prometheus text exposition; the flag
      // echoes back so the client can tell which rendering it got.
      if (F.Flags & StatsFlagProm)
        writeFrame(Fd, FrameType::RespStats, encodeString(Svc.statsProm()),
                   StatsFlagProm);
      else
        writeFrame(Fd, FrameType::RespStats, encodeString(Svc.statsJson()));
      break;
    case FrameType::ReqSubscribe: {
      SubscribeRequest Sub;
      if (!decodeSubscribeRequest(F.Payload, Sub)) {
        writeFrame(Fd, FrameType::RespError,
                   encodeError(ServeErrc::Malformed,
                               "subscribe request failed to decode"));
        break;
      }
      SPA_OBS_COUNT("telemetry.subscribes", 1);
      // Stream one telemetry frame per interval.  The first frame goes
      // out immediately so `--serve-watch` paints without waiting a full
      // tick; MaxFrames = 0 streams until the peer disconnects (the
      // write fails with EPIPE).  Afterwards the connection resumes
      // normal request handling.
      for (uint32_t Sent = 0; Sub.MaxFrames == 0 || Sent < Sub.MaxFrames;
           ++Sent) {
        if (Sent > 0)
          std::this_thread::sleep_for(
              std::chrono::milliseconds(Sub.IntervalMs));
        if (!writeFrame(Fd, FrameType::RespTelemetry,
                        encodeString(Svc.telemetryJson())))
          return true; // Peer gone; next client.
      }
      break;
    }
    case FrameType::ReqShutdown:
      writeFrame(Fd, FrameType::RespBye, {});
      Stopping.store(true);
      return false;
    default:
      writeFrame(Fd, FrameType::RespError,
                 encodeError(ServeErrc::BadRequest,
                             "unknown frame type " +
                                 std::to_string(static_cast<unsigned>(
                                     F.Type))));
      break;
    }
  }
}
