//===- Protocol.h - spa-serve wire protocol -------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The length-prefixed request/response protocol spoken over the
/// spa-serve Unix-domain socket (docs/SERVER.md).  A connection opens
/// with a fixed 12-byte handshake (8-byte magic + u32 protocol version)
/// in each direction; after that, every message is one frame:
///
///   u32 payload length | u16 frame type | u16 flags | payload bytes
///
/// All integers are little-endian, mirroring spa-ir-v1.  Errors travel
/// as typed frames (ServeErrc + message) following the SnapErrc
/// discipline: every failure mode has a stable enumerator a client can
/// dispatch on, never just a closed socket.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SERVE_PROTOCOL_H
#define SPA_SERVE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <vector>

namespace spa {
namespace serve {

/// Protocol version; bumped on any frame-layout change.  The handshake
/// rejects mismatches with ServeErrc::BadVersion before any frame flows.
constexpr uint32_t ProtocolVersion = 1;

/// 8-byte connection magic ("SPASRV1\n").
extern const unsigned char Magic[8];

/// Frames larger than this are malformed by definition; the reader
/// rejects them before allocating (hostile-input guard, same cap
/// discipline as the snapshot loader's count checks).
constexpr uint32_t MaxFrameBytes = 64u << 20;

enum class FrameType : uint16_t {
  ReqAnalyze = 1,   ///< Analyze a program (payload: AnalyzeRequest).
  ReqStats = 2,     ///< Fetch the daemon's metrics registry as JSON.
  ReqShutdown = 3,  ///< Graceful daemon shutdown.
  RespResult = 4,   ///< Analysis result (payload: AnalyzeResponse).
  RespError = 5,    ///< Typed error (u16 ServeErrc + message string).
  RespStats = 6,    ///< Stats document string (JSON, or Prometheus text
                    ///< when requested with StatsFlagProm).
  RespBye = 7,      ///< Shutdown acknowledged.
  ReqSubscribe = 8, ///< Stream telemetry (payload: SubscribeRequest).
  RespTelemetry = 9, ///< One telemetry delta frame (JSON string).
};

/// Frame-header flag bits for ReqStats: request the registry rendered as
/// Prometheus text exposition instead of the stats JSON document.
constexpr uint16_t StatsFlagProm = 1u << 0;

/// Typed protocol/server errors (stable values; do not renumber).
enum class ServeErrc : uint16_t {
  None = 0,
  Io = 1,          ///< Short read/write or closed peer mid-frame.
  BadMagic = 2,    ///< Handshake magic mismatch.
  BadVersion = 3,  ///< Handshake protocol version mismatch.
  Malformed = 4,   ///< Frame payload failed to decode.
  TooLarge = 5,    ///< Frame length exceeds MaxFrameBytes.
  BadRequest = 6,  ///< Unknown frame type or bad request field.
  BuildError = 7,  ///< Program source failed to parse/build.
  SnapshotError = 8, ///< spa-ir-v1 payload failed to load.
  Injected = 9,    ///< SPA_FAULT tripped while serving this request.
  ServerError = 10, ///< Internal failure; daemon keeps serving.
};

/// Stable lower_snake_case name of \p Code (mirrors snapshotErrorName).
const char *serveErrorName(ServeErrc Code);

/// AnalyzeRequest.Flags bits.
enum : uint32_t {
  ReqFlagNoIncremental = 1u << 0, ///< --no-incremental ablation.
  ReqFlagCheck = 1u << 1,         ///< Run the buffer-overrun checker.
  ReqFlagSnapshot = 1u << 2,      ///< Payload program is spa-ir-v1 bytes.
};

struct AnalyzeRequest {
  uint32_t Flags = 0;
  uint32_t Jobs = 0; ///< 0 = server default.
  std::string Program; ///< Source text, or snapshot bytes (ReqFlagSnapshot).
};

/// ReqSubscribe payload: the daemon streams one RespTelemetry frame
/// (spa-serve-telemetry-v1 JSON: uptime, counter deltas since the last
/// frame, request rate, cache hit ratio and occupancy) every IntervalMs
/// until MaxFrames have been sent (0 = until the client disconnects),
/// then resumes normal request handling on the same connection.
struct SubscribeRequest {
  uint32_t IntervalMs = 1000;
  uint32_t MaxFrames = 0;
};

/// Per-request result rollup.  The heavyweight payloads (alarm listing,
/// exit invariants, per-request metrics JSON) travel as strings so the
/// client can reproduce the cold `spa-analyze` output without holding
/// any analysis state.
struct AnalyzeResponse {
  uint64_t ResultDigest = 0;  ///< FNV-1a over all sparse In/Out buffers.
  uint64_t ProgramDigest = 0; ///< FNV-1a over the canonical snapshot bytes.
  uint32_t PartitionsTotal = 0;
  uint32_t PartitionsReused = 0;
  uint32_t PartitionsSolved = 0;
  uint8_t CacheHit = 0; ///< Whole-program hit: nothing re-solved.
  uint8_t Degraded = 0;
  uint8_t TimedOut = 0;
  uint32_t Checks = 0;
  uint32_t Alarms = 0;
  double WallSeconds = 0; ///< Server-side request wall clock.
  /// Ledger rollup of the work actually performed for this request
  /// (re-solved partitions only; reused partitions cost nothing).
  uint64_t LedgerVisits = 0;
  uint64_t LedgerGrowth = 0;
  std::string AlarmsText;     ///< One line per non-safe check.
  std::string InvariantsText; ///< main's exit invariants, cold format.
  std::string MetricsJson;    ///< Per-request registry snapshot.
};

/// One decoded frame.
struct Frame {
  FrameType Type = FrameType::RespError;
  uint16_t Flags = 0;
  std::vector<uint8_t> Payload;
};

// --- Blocking frame I/O over a connected socket fd. ---

/// Writes the 12-byte handshake (magic + version).
bool writeHandshake(int Fd);
/// Reads and validates the peer handshake.
ServeErrc readHandshake(int Fd);

bool writeFrame(int Fd, FrameType Type, const std::vector<uint8_t> &Payload,
                uint16_t Flags = 0);
/// Reads one frame; returns ServeErrc::None on success, Io on clean EOF
/// before any header byte (the caller treats that as connection end).
ServeErrc readFrame(int Fd, Frame &Out);

// --- Payload encode/decode. ---

std::vector<uint8_t> encodeAnalyzeRequest(const AnalyzeRequest &Req);
bool decodeAnalyzeRequest(const std::vector<uint8_t> &Payload,
                          AnalyzeRequest &Out);
std::vector<uint8_t> encodeAnalyzeResponse(const AnalyzeResponse &Resp);
bool decodeAnalyzeResponse(const std::vector<uint8_t> &Payload,
                           AnalyzeResponse &Out);
std::vector<uint8_t> encodeError(ServeErrc Code, const std::string &Message);
bool decodeError(const std::vector<uint8_t> &Payload, ServeErrc &Code,
                 std::string &Message);
std::vector<uint8_t> encodeString(const std::string &S);
bool decodeString(const std::vector<uint8_t> &Payload, std::string &Out);
std::vector<uint8_t> encodeSubscribeRequest(const SubscribeRequest &Req);
bool decodeSubscribeRequest(const std::vector<uint8_t> &Payload,
                            SubscribeRequest &Out);

} // namespace serve
} // namespace spa

#endif // SPA_SERVE_PROTOCOL_H
