//===- Server.h - Unix-domain-socket daemon loop ---------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The spa-serve daemon's socket front end: binds a Unix-domain socket,
/// accepts connections one at a time (concurrent clients queue in the
/// listen backlog — the Service is deliberately single-threaded so
/// per-request metrics scoping stays race-free), and speaks the framed
/// protocol of serve/Protocol.h.  Every protocol failure produces a
/// typed error frame and never kills the daemon; only ReqShutdown (or
/// stop()) ends the loop.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_SERVE_SERVER_H
#define SPA_SERVE_SERVER_H

#include "serve/Service.h"

#include <atomic>
#include <string>

namespace spa {
namespace serve {

struct ServerOptions {
  std::string SocketPath;
  ServiceOptions Service;
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();

  /// Binds and listens.  Returns false with \p Error set on socket
  /// failure (path too long, bind refused, ...).
  bool listen(std::string &Error);

  /// Accept loop; returns when a client sends ReqShutdown or stop() is
  /// called from another thread.  Requires listen() to have succeeded.
  void run();

  /// Unblocks run() from another thread / a signal context (closes the
  /// listening socket; the loop exits at the next accept).
  void stop();

  const std::string &socketPath() const { return Opts.SocketPath; }
  Service &service() { return Svc; }

private:
  /// Serves one connection until the peer closes or shutdown.  Returns
  /// true when the daemon should keep accepting.
  bool serveConnection(int Fd);

  ServerOptions Opts;
  Service Svc;
  std::atomic<int> ListenFd{-1};
  std::atomic<bool> Stopping{false};
};

} // namespace serve
} // namespace spa

#endif // SPA_SERVE_SERVER_H
