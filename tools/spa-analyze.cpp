//===- spa-analyze.cpp - Command-line analyzer driver -------------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analyzer as a command-line tool:
///
///   spa-analyze [options] <file.spa | ->
///
///   --engine=vanilla|base|sparse   analyzer generation (default sparse)
///   --domain=interval|octagon      abstract domain (default interval)
///   --oct-backend=dbm|split        octagon representation (default split)
///   --pre=precise|semisparse|staged  pre-analysis instance
///   --dep=ssa|rd|chains|whole      dependency builder (sparse engine)
///   --no-bypass                    disable the bypass contraction
///   --bdd                          store dependencies in a BDD
///   --check                        run the buffer-overrun checker
///   --list                         annotated listing (per-point values)
///   --dump-cfg                     supergraph in Graphviz dot
///   --dump-deps                    dependency graph in Graphviz dot
///   --run[=seed]                   execute concretely (input() seed)
///   --time-limit=SECONDS           analysis wall-clock budget
///   --deadline=SECONDS             resource budget: degrade soundly past
///                                  this wall-clock deadline (<0 = already
///                                  expired; the run degrades immediately)
///   --step-limit=N                 resource budget: degrade after N steps
///   --mem-limit=MIB                resource budget: degrade past this RSS
///   --isolate                      batch: one forked child per program
///                                  (crashes/OOM lose one item, not all)
///   --jobs=N                       thread-pool lanes (0 = SPA_JOBS/cores)
///   --batch=FILE                   analyze every program listed in FILE
///   --batch-suite[=scale]          analyze the generated paper suite
///   --stats                        metrics registry dump (key=value lines)
///                                  plus the ledger's top-K hotspot table
///   --metrics-out=FILE             write the metrics registry as JSON
///   --prom-out=FILE                write the metrics registry as
///                                  Prometheus text exposition (with
///                                  --connect --serve-stats: the daemon's
///                                  registry)
///   --trace-out=FILE               write Chrome trace-event JSON spans
///   --ledger-out=FILE              write the per-point cost ledger as JSON
///                                  (batch mode: per-item rollup)
///   --journal-out=FILE             write the flight-recorder journal as
///                                  JSON (spa-journal-v1)
///   --postmortem-dir=DIR           crash/stall/OOM forensics: write
///                                  spa-postmortem-v1 files here (batch
///                                  mode: one per dying child)
///   --watchdog=MS                  stall watchdog interval; a fixpoint
///                                  with no heartbeat for two intervals
///                                  dies with a stall postmortem
///   --explain-alarm=N              alarm provenance: print the backward
///                                  dependency slice of alarm #N (implies
///                                  --check; ids number the non-safe
///                                  checks in report order)
///   --snapshot-out=FILE            save the built IR as an spa-ir-v1
///                                  binary snapshot (DESIGN.md §8)
///   --snapshot-in=FILE             analyze a snapshot instead of source
///                                  (no frontend; strict typed loader;
///                                  a v2 embedded depgraph warm-starts
///                                  the sparse engine when compatible)
///   --snapshot-graph               with --snapshot-out: embed the built
///                                  dependency graph as the optional v2
///                                  depgraph section (sparse engine)
///   --shards=N                     batch: fan items out across N forked
///                                  worker processes with work-stealing
///                                  dispatch (DESIGN.md §8)
///   --connect=SOCK                 client mode: send the program to a
///                                  resident spa-serve daemon instead of
///                                  analyzing in-process (docs/SERVER.md)
///   --no-incremental               with --connect: ablation — ask the
///                                  daemon for a cold, cache-free run
///   --serve-stats                  with --connect: print the daemon's
///                                  stats document (uptime, cache
///                                  occupancy, cumulative metrics) and
///                                  exit
///   --serve-watch[=N]              with --connect: subscribe to the
///                                  daemon's live telemetry stream and
///                                  print each frame (N frames; omitted
///                                  or 0 = until the daemon goes away)
///   --watch-ms=MS                  telemetry frame interval (default
///                                  1000)
///   --serve-shutdown               with --connect: stop the daemon
///
/// Batch mode fans programs out across the pool (docs/PARALLELISM.md);
/// per-program results print in input order and are identical for every
/// --jobs value.  The metric taxonomy and both output formats are
/// documented in docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/Checker.h"
#include "core/DepSnapshot.h"
#include "core/Export.h"
#include "serve/Client.h"
#include "interp/Interp.h"
#include "ir/Builder.h"
#include "obs/Journal.h"
#include "obs/MetricsSink.h"
#include "obs/Postmortem.h"
#include "obs/Trace.h"
#include "oct/OctAnalysis.h"
#include "ir/Snapshot.h"
#include "workload/Batch.h"
#include "workload/ShardCoordinator.h"
#include "workload/Suite.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace spa;

namespace {

struct CliOptions {
  std::string Path;
  EngineKind Engine = EngineKind::Sparse;
  bool Octagon = false;
  OctBackendKind OctBackend = OctBackendKind::Split;
  PreAnalysisKind Pre = PreAnalysisKind::Precise;
  DepOptions Dep;
  bool Check = false;
  bool List = false;
  bool DumpCfg = false;
  bool DumpDeps = false;
  bool Run = false;
  uint64_t RunSeed = 1;
  bool Stats = false;
  std::string MetricsOut;
  std::string PromOut; ///< Prometheus text exposition sink.
  std::string TraceOut;
  std::string LedgerOut;
  std::string JournalOut;
  std::string PostmortemDir;
  uint32_t WatchdogMs = 0;
  long ExplainAlarm = -1; ///< Alarm id to explain; <0 = off.
  double TimeLimitSec = 0;
  BudgetLimits Budget;
  bool Isolate = false;
  unsigned Jobs = 1; ///< 0 = ThreadPool::defaultJobs().
  std::string BatchFile;
  bool BatchSuite = false;
  double BatchSuiteScale = 0; ///< 0 = suiteScaleFromEnv().
  std::string SnapshotOut;   ///< Save the built IR as spa-ir-v1.
  std::string SnapshotIn;    ///< Analyze a snapshot instead of source.
  bool SnapshotGraph = false; ///< Embed the depgraph in --snapshot-out.
  unsigned Shards = 0;       ///< Batch: fork N shard workers (0 = off).
  std::string Connect;       ///< spa-serve socket (client mode).
  bool NoIncremental = false; ///< --connect: request a cold run.
  bool ServeStats = false;    ///< --connect: dump daemon metrics.
  bool ServeShutdown = false; ///< --connect: stop the daemon.
  long ServeWatch = -1;  ///< --connect: stream N telemetry frames
                         ///< (0 = until the daemon goes away; -1 = off).
  uint32_t WatchMs = 1000; ///< Telemetry frame interval.
};

void usage() {
  std::fprintf(stderr,
               "usage: spa-analyze [options] <file | ->\n"
               "  --engine=vanilla|base|sparse --domain=interval|octagon\n"
               "  --oct-backend=dbm|split   (octagon representation; "
               "default split)\n"
               "  --pre=precise|semisparse|staged "
               "--dep=ssa|rd|chains|whole\n"
               "  --no-bypass --bdd --check --list --dump-cfg "
               "--dump-deps\n"
               "  --run[=seed] --time-limit=N --stats\n"
               "  --deadline=N --step-limit=N --mem-limit=MIB --isolate\n"
               "  --jobs=N --batch=FILE --batch-suite[=scale]\n"
               "  --metrics-out=FILE --prom-out=FILE --trace-out=FILE "
               "--ledger-out=FILE   (\"-\" = stdout)\n"
               "  --journal-out=FILE --postmortem-dir=DIR --watchdog=MS\n"
               "  --explain-alarm=N   (implies --check)\n"
               "  --snapshot-out=FILE --snapshot-in=FILE   (spa-ir-v1 "
               "binary IR)\n"
               "  --snapshot-graph    (embed the depgraph in "
               "--snapshot-out)\n"
               "  --shards=N          (batch: work-stealing worker "
               "processes)\n"
               "  --connect=SOCK --no-incremental --serve-stats "
               "--serve-shutdown\n"
               "  --serve-watch[=N] --watch-ms=MS   (live telemetry "
               "stream)\n"
               "                      (client mode against an spa-serve "
               "daemon)\n");
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t N = std::strlen(Prefix);
      return A.compare(0, N, Prefix) == 0 ? A.c_str() + N : nullptr;
    };
    if (const char *V = Value("--engine=")) {
      if (!std::strcmp(V, "vanilla"))
        Opts.Engine = EngineKind::Vanilla;
      else if (!std::strcmp(V, "base"))
        Opts.Engine = EngineKind::Base;
      else if (!std::strcmp(V, "sparse"))
        Opts.Engine = EngineKind::Sparse;
      else
        return false;
    } else if (const char *V = Value("--domain=")) {
      if (!std::strcmp(V, "interval"))
        Opts.Octagon = false;
      else if (!std::strcmp(V, "octagon"))
        Opts.Octagon = true;
      else
        return false;
    } else if (const char *V = Value("--oct-backend=")) {
      if (!parseOctBackend(V, Opts.OctBackend))
        return false;
    } else if (const char *V = Value("--pre=")) {
      if (!std::strcmp(V, "precise"))
        Opts.Pre = PreAnalysisKind::Precise;
      else if (!std::strcmp(V, "semisparse"))
        Opts.Pre = PreAnalysisKind::SemiSparse;
      else if (!std::strcmp(V, "staged"))
        Opts.Pre = PreAnalysisKind::Staged;
      else
        return false;
    } else if (const char *V = Value("--dep=")) {
      if (!std::strcmp(V, "ssa"))
        Opts.Dep.Kind = DepBuilderKind::Ssa;
      else if (!std::strcmp(V, "rd"))
        Opts.Dep.Kind = DepBuilderKind::ReachingDefs;
      else if (!std::strcmp(V, "chains"))
        Opts.Dep.Kind = DepBuilderKind::DefUseChains;
      else if (!std::strcmp(V, "whole"))
        Opts.Dep.Kind = DepBuilderKind::WholeProgram;
      else
        return false;
    } else if (A == "--no-bypass") {
      Opts.Dep.Bypass = false;
    } else if (A == "--bdd") {
      Opts.Dep.UseBdd = true;
    } else if (A == "--check") {
      Opts.Check = true;
    } else if (A == "--list") {
      Opts.List = true;
    } else if (A == "--dump-cfg") {
      Opts.DumpCfg = true;
    } else if (A == "--dump-deps") {
      Opts.DumpDeps = true;
    } else if (A == "--run") {
      Opts.Run = true;
    } else if (const char *V = Value("--run=")) {
      Opts.Run = true;
      Opts.RunSeed = std::strtoull(V, nullptr, 10);
    } else if (const char *V = Value("--time-limit=")) {
      Opts.TimeLimitSec = std::atof(V);
    } else if (const char *V = Value("--deadline=")) {
      Opts.Budget.DeadlineSec = std::atof(V);
    } else if (const char *V = Value("--step-limit=")) {
      Opts.Budget.StepLimit = std::strtoull(V, nullptr, 10);
    } else if (const char *V = Value("--mem-limit=")) {
      Opts.Budget.MemLimitKiB = std::strtoull(V, nullptr, 10) * 1024;
    } else if (A == "--isolate") {
      Opts.Isolate = true;
    } else if (const char *V = Value("--jobs=")) {
      Opts.Jobs = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (const char *V = Value("--batch=")) {
      Opts.BatchFile = V;
    } else if (A == "--batch-suite") {
      Opts.BatchSuite = true;
    } else if (const char *V = Value("--batch-suite=")) {
      Opts.BatchSuite = true;
      Opts.BatchSuiteScale = std::atof(V);
    } else if (A == "--stats") {
      Opts.Stats = true;
    } else if (const char *V = Value("--metrics-out=")) {
      Opts.MetricsOut = V;
    } else if (const char *V = Value("--prom-out=")) {
      Opts.PromOut = V;
    } else if (const char *V = Value("--trace-out=")) {
      Opts.TraceOut = V;
    } else if (const char *V = Value("--ledger-out=")) {
      Opts.LedgerOut = V;
    } else if (const char *V = Value("--journal-out=")) {
      Opts.JournalOut = V;
    } else if (const char *V = Value("--postmortem-dir=")) {
      Opts.PostmortemDir = V;
    } else if (const char *V = Value("--watchdog=")) {
      Opts.WatchdogMs = static_cast<uint32_t>(std::strtoul(V, nullptr, 10));
    } else if (const char *V = Value("--explain-alarm=")) {
      Opts.ExplainAlarm = std::strtol(V, nullptr, 10);
      Opts.Check = true; // The walk needs the checker's no-bypass run.
    } else if (const char *V = Value("--snapshot-out=")) {
      Opts.SnapshotOut = V;
    } else if (const char *V = Value("--snapshot-in=")) {
      Opts.SnapshotIn = V;
    } else if (A == "--snapshot-graph") {
      Opts.SnapshotGraph = true;
    } else if (const char *V = Value("--shards=")) {
      Opts.Shards = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (const char *V = Value("--connect=")) {
      Opts.Connect = V;
    } else if (A == "--no-incremental") {
      Opts.NoIncremental = true;
    } else if (A == "--serve-stats") {
      Opts.ServeStats = true;
    } else if (A == "--serve-shutdown") {
      Opts.ServeShutdown = true;
    } else if (A == "--serve-watch") {
      Opts.ServeWatch = 0;
    } else if (const char *V = Value("--serve-watch=")) {
      Opts.ServeWatch = std::strtol(V, nullptr, 10);
    } else if (const char *V = Value("--watch-ms=")) {
      Opts.WatchMs = static_cast<uint32_t>(std::strtoul(V, nullptr, 10));
    } else if (A == "--help" || A == "-h") {
      return false;
    } else if (!A.empty() && A[0] == '-' && A != "-") {
      std::fprintf(stderr, "unknown option: %s\n", A.c_str());
      return false;
    } else if (Opts.Path.empty()) {
      Opts.Path = A;
    } else {
      return false;
    }
  }
  // Batch modes and --snapshot-in supply their own program, and the
  // daemon control requests need none; otherwise a path is required.
  return !Opts.Path.empty() || !Opts.BatchFile.empty() || Opts.BatchSuite ||
         !Opts.SnapshotIn.empty() ||
         (!Opts.Connect.empty() &&
          (Opts.ServeStats || Opts.ServeShutdown || Opts.ServeWatch >= 0));
}

std::string readInput(const std::string &Path) {
  if (Path == "-") {
    std::ostringstream OS;
    OS << std::cin.rdbuf();
    return OS.str();
  }
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
    std::exit(1);
  }
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

/// --connect: ship the program to a resident spa-serve daemon and render
/// its response in the cold CLI's output format (docs/SERVER.md).  The
/// summary line carries the warm-path evidence (partition reuse, cache
/// hits) the server tests and the bench ablation grep for.
int runConnectMode(const CliOptions &Cli) {
  serve::Client C;
  std::string Error;
  if (C.connect(Cli.Connect, Error) != serve::ServeErrc::None) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  if (Cli.ServeStats) {
    std::string Doc;
    if (C.stats(Doc, Error) != serve::ServeErrc::None) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::fputs(Doc.c_str(), stdout);
    if (!Cli.PromOut.empty()) {
      // Second round trip on the same connection: the daemon's registry
      // rendered as Prometheus text.
      std::string Prom;
      if (C.stats(Prom, Error, /*Prom=*/true) != serve::ServeErrc::None) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return 1;
      }
      if (!obs::MetricsSink::writeFile(Cli.PromOut, Prom)) {
        std::fprintf(stderr, "error: cannot write %s\n", Cli.PromOut.c_str());
        return 1;
      }
    }
    return 0;
  }
  if (Cli.ServeWatch >= 0) {
    serve::SubscribeRequest Sub;
    Sub.IntervalMs = Cli.WatchMs;
    Sub.MaxFrames = static_cast<uint32_t>(Cli.ServeWatch);
    serve::ServeErrc Rc = C.subscribe(
        Sub,
        [](const std::string &Doc) {
          std::fputs(Doc.c_str(), stdout);
          std::fflush(stdout);
          return true;
        },
        Error);
    if (Rc != serve::ServeErrc::None) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    return 0;
  }
  if (Cli.ServeShutdown) {
    if (C.shutdown(Error) != serve::ServeErrc::None) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::printf("server shut down\n");
    return 0;
  }

  serve::AnalyzeRequest Req;
  Req.Jobs = Cli.Jobs;
  if (Cli.NoIncremental)
    Req.Flags |= serve::ReqFlagNoIncremental;
  if (Cli.Check)
    Req.Flags |= serve::ReqFlagCheck;
  if (!Cli.SnapshotIn.empty()) {
    std::ifstream In(Cli.SnapshotIn, std::ios::binary);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Cli.SnapshotIn.c_str());
      return 1;
    }
    std::ostringstream OS;
    OS << In.rdbuf();
    Req.Program = OS.str();
    Req.Flags |= serve::ReqFlagSnapshot;
  } else {
    Req.Program = readInput(Cli.Path);
  }

  serve::AnalyzeResponse Resp;
  serve::ServeErrc Rc = C.analyze(Req, Resp, Error);
  if (Rc != serve::ServeErrc::None) {
    std::fprintf(stderr, "error: %s: %s\n", serve::serveErrorName(Rc),
                 Error.c_str());
    return 1;
  }

  std::printf("digest=%016llx partitions=%u reused=%u solved=%u "
              "cache_hit=%u\n",
              static_cast<unsigned long long>(Resp.ResultDigest),
              Resp.PartitionsTotal, Resp.PartitionsReused,
              Resp.PartitionsSolved, Resp.CacheHit);
  if (Resp.TimedOut) {
    std::printf("analysis exceeded the time limit\n");
    return 2;
  }
  if (Resp.Degraded)
    std::printf("!! degraded: resource budget exhausted; results are "
                "sound but coarse\n");
  if (Cli.Check) {
    std::printf("checked %u dereferences: %u safe, %u alarms\n",
                Resp.Checks, Resp.Checks - Resp.Alarms, Resp.Alarms);
    std::fputs(Resp.AlarmsText.c_str(), stdout);
  } else {
    std::fputs(Resp.InvariantsText.c_str(), stdout);
  }
  if (!Cli.MetricsOut.empty() &&
      !obs::MetricsSink::writeFile(Cli.MetricsOut, Resp.MetricsJson)) {
    std::fprintf(stderr, "error: cannot write %s\n", Cli.MetricsOut.c_str());
    return 1;
  }
  return Resp.Degraded ? 3 : 0;
}

/// Emits --stats / --metrics-out / --trace-out / --ledger-out.  The
/// caller renders the mode-specific ledger document and hotspot table
/// (empty = none); the key=value dump always precedes the table so
/// line-oriented consumers keep working.
int emitObservability(const CliOptions &Cli,
                      const std::string &LedgerJson = "",
                      const std::string &HotspotText = "") {
  if (Cli.Stats) {
    std::fputs(
        obs::MetricsSink::toKeyValueText(obs::Registry::global()).c_str(),
        stdout);
    if (!HotspotText.empty())
      std::fputs(HotspotText.c_str(), stdout);
  }
  int Rc = 0;
  if (!Cli.MetricsOut.empty() &&
      !obs::MetricsSink::writeFile(Cli.MetricsOut,
                                   obs::MetricsSink::toJson(
                                       obs::Registry::global()))) {
    std::fprintf(stderr, "error: cannot write %s\n", Cli.MetricsOut.c_str());
    Rc = 1;
  }
  if (!Cli.PromOut.empty() &&
      !obs::MetricsSink::writeFile(Cli.PromOut,
                                   obs::Registry::global().renderProm())) {
    std::fprintf(stderr, "error: cannot write %s\n", Cli.PromOut.c_str());
    Rc = 1;
  }
  if (!Cli.TraceOut.empty() &&
      !obs::MetricsSink::writeFile(Cli.TraceOut,
                                   obs::Tracer::global().toChromeJson())) {
    std::fprintf(stderr, "error: cannot write %s\n", Cli.TraceOut.c_str());
    Rc = 1;
  }
  if (!Cli.LedgerOut.empty() &&
      !obs::MetricsSink::writeFile(Cli.LedgerOut, LedgerJson)) {
    std::fprintf(stderr, "error: cannot write %s\n", Cli.LedgerOut.c_str());
    Rc = 1;
  }
  if (!Cli.JournalOut.empty() &&
      !obs::MetricsSink::writeFile(Cli.JournalOut, obs::journalToJson())) {
    std::fprintf(stderr, "error: cannot write %s\n", Cli.JournalOut.c_str());
    Rc = 1;
  }
  return Rc;
}

/// RAII for the single-run forensics the CLI flags install in *this*
/// process (batch children install their own around each item).
struct ForensicsScope {
  bool Active = false;

  void install(const CliOptions &Cli) {
    if (Cli.PostmortemDir.empty() && Cli.WatchdogMs == 0)
      return;
    obs::PostmortemOptions PO;
    PO.Dir = Cli.PostmortemDir.empty() ? nullptr : Cli.PostmortemDir.c_str();
    PO.RunId = Cli.Path.empty() ? "run" : Cli.Path.c_str();
    if (!obs::postmortemInstall(PO))
      std::fprintf(stderr, "warning: cannot create postmortem file in %s\n",
                   Cli.PostmortemDir.c_str());
    obs::watchdogStart(Cli.WatchdogMs);
    Active = true;
  }

  ~ForensicsScope() {
    if (Active)
      obs::postmortemUninstall(); // Also stops the watchdog.
  }
};

/// Provenance walk budget: the run's own token is spent by now, so the
/// walk gets a fresh one with the CLI limits (null = unbudgeted walk).
struct WalkBudget {
  std::optional<Budget> Storage;
  ProvenanceQuery Query;

  explicit WalkBudget(const BudgetLimits &Limits) {
    if (Limits.enabled()) {
      Storage.emplace(Limits);
      Query.Bud = &*Storage;
    }
  }
};

int runOctagonMode(const Program &Prog, const CliOptions &Cli) {
  OctOptions Opts;
  Opts.Engine = Cli.Engine;
  Opts.Backend = Cli.OctBackend;
  Opts.Dep = Cli.Dep;
  // Exit invariants are printed from the exit input buffers, which the
  // bypass contraction would (correctly) thin out.
  Opts.Dep.Bypass = false;
  Opts.TimeLimitSec = Cli.TimeLimitSec;
  Opts.Budget = Cli.Budget;
  OctRun Run = runOctAnalysis(Prog, Opts);
  if (Run.timedOut()) {
    std::printf("analysis exceeded the time limit\n");
    return 2;
  }
  if (Run.degraded())
    std::printf("!! degraded: resource budget exhausted; invariants are "
                "sound but coarse\n");

  // Octagon ledger nodes live in pack space, so phi labels name the pack
  // rather than a source location.
  auto Label = [&](uint32_t Node) -> std::string {
    const SparseGraph *G = Run.Graph ? &*Run.Graph : nullptr;
    if (G && G->isPhi(Node)) {
      const PhiNode &Phi = G->phi(Node);
      return "phi(pack" + std::to_string(Phi.L.value()) + ") @ " +
             Prog.pointToString(Phi.At);
    }
    return Prog.pointToString(G ? G->anchor(Node) : PointId(Node));
  };

  // Alarm provenance in octagon mode comes from the degradation ladder's
  // interval fallback (the only checker-consumable result an octagon run
  // carries); its slices are tagged interval_fallback.
  std::optional<CheckerSummary> Summary;
  std::vector<AlarmProvenance> Slices;
  std::string ProvJson;
  if ((Cli.Check || Cli.ExplainAlarm >= 0) && Run.Fallback) {
    Summary.emplace(checkBufferOverruns(Prog, *Run.Fallback));
    WalkBudget WB(Cli.Budget);
    Slices = collectAlarmProvenance(Prog, *Run.Fallback, *Summary, WB.Query);
    for (AlarmProvenance &AP : Slices)
      AP.IntervalFallback = true;
    ProvJson = provenanceJsonArray(Prog, *Run.Fallback, Slices);
  }

  obs::Ledger EmptyLedger;
  const obs::Ledger &Led = Run.Ledger ? *Run.Ledger : EmptyLedger;
  std::string LedgerJson;
  if (!Cli.LedgerOut.empty())
    LedgerJson = Led.toJson(/*HotspotK=*/10, Label, ProvJson);
  if (int Rc = emitObservability(Cli, LedgerJson,
                                 Cli.Stats ? Led.hotspotText(10, Label)
                                           : std::string()))
    return Rc;

  if (Summary) {
    std::printf("checked %zu dereferences (interval fallback): %u safe, "
                "%u alarms\n",
                Summary->Checks.size(), Summary->numSafe(),
                Summary->numAlarms());
    for (const AccessCheck &C : Summary->Checks)
      if (C.Result != AccessCheck::Verdict::Safe)
        std::printf("  %s\n", C.str(Prog).c_str());
  }
  if (Cli.ExplainAlarm >= 0) {
    size_t Id = static_cast<size_t>(Cli.ExplainAlarm);
    if (!Run.Fallback) {
      std::fprintf(stderr,
                   "error: --explain-alarm with --domain=octagon needs the "
                   "degraded run's interval fallback (none present)\n");
      return 1;
    }
    if (Id >= Slices.size()) {
      std::fprintf(stderr, "error: no alarm #%zu (%zu alarms)\n", Id,
                   Slices.size());
      return 1;
    }
    std::fputs(Slices[Id].str(Prog, *Run.Fallback).c_str(), stdout);
  }

  // Per-function exit intervals via singleton-pack projection.
  for (uint32_t F = 0; F < Prog.numFuncs(); ++F) {
    const FunctionInfo &Info = Prog.function(FuncId(F));
    if (Info.Name == "_start")
      continue;
    std::printf("%s at exit:\n", Info.Name.c_str());
    for (uint32_t L = 0; L < Prog.numLocs(); ++L) {
      const LocInfo &Loc = Prog.loc(LocId(L));
      if (Loc.Owner != FuncId(F) && Loc.Kind != LocKind::Global)
        continue;
      Interval Itv;
      if (Run.Dense) {
        Itv = Run.denseIntervalAt(Info.Exit, LocId(L));
      } else {
        PackId S = Run.Packs.singleton(LocId(L));
        const OctVal *O = Run.Sparse->In[Info.Exit.value()].lookup(S);
        Itv = O ? O->project(0) : Interval::bot();
      }
      if (!Itv.isBot())
        std::printf("  %-16s in %s\n", Loc.Name.c_str(),
                    Itv.str().c_str());
    }
  }
  return Run.degraded() ? 3 : 0;
}

/// --batch / --batch-suite: analyze many programs across the pool.
/// Per-item lines print in input order (independent of --jobs).
int runBatchMode(const CliOptions &Cli) {
  std::vector<BatchItem> Items;
  if (Cli.BatchSuite) {
    double Scale =
        Cli.BatchSuiteScale > 0 ? Cli.BatchSuiteScale : suiteScaleFromEnv();
    Items = suiteBatch(Scale);
  }
  if (!Cli.BatchFile.empty()) {
    std::string Error;
    if (!loadBatchFile(Cli.BatchFile, Items, Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
  }
  if (Items.empty()) {
    std::fprintf(stderr, "error: batch contains no programs\n");
    return 1;
  }

  BatchOptions Opts;
  Opts.Analyzer.Engine = Cli.Engine;
  Opts.Analyzer.Pre = Cli.Pre;
  Opts.Analyzer.Dep = Cli.Dep;
  Opts.Analyzer.TimeLimitSec = Cli.TimeLimitSec;
  Opts.Analyzer.Budget = Cli.Budget;
  Opts.Analyzer.Jobs = Cli.Jobs;
  Opts.Check = Cli.Check;
  Opts.Isolate = Cli.Isolate;
  Opts.WatchdogMs = Cli.WatchdogMs;
  Opts.PostmortemDir = Cli.PostmortemDir;

  BatchResult R;
  unsigned WorkerDeaths = 0;
  uint64_t Steals = 0;
  if (Cli.Shards > 0) {
    ShardOptions SOpts;
    SOpts.Batch = Opts;
    SOpts.Shards = Cli.Shards;
    ShardRunResult SR = runSharded(Items, SOpts);
    R = std::move(SR.Batch);
    WorkerDeaths = SR.WorkerDeaths;
    Steals = SR.Steals;
  } else {
    R = runBatch(Items, Opts);
  }
  for (const BatchItemResult &I : R.Items) {
    std::string Tag;
    if (I.Degraded)
      Tag += " [degraded]";
    if (I.Retried)
      Tag += " [retried]";
    if (!I.Ok && !I.Error.empty())
      std::printf("%-24s %s: %s%s\n", I.Name.c_str(),
                  batchOutcomeName(I.Outcome), I.Error.c_str(),
                  Tag.c_str());
    else if (I.TimedOut)
      std::printf("%-24s timed out after %.2fs%s\n", I.Name.c_str(),
                  I.Seconds, Tag.c_str());
    else if (Cli.Check)
      std::printf("%-24s %.2fs  %u checks, %u alarms%s\n", I.Name.c_str(),
                  I.Seconds, I.Checks, I.Alarms, Tag.c_str());
    else
      std::printf("%-24s %.2fs%s\n", I.Name.c_str(), I.Seconds,
                  Tag.c_str());
  }
  std::printf("%zu programs in %.2fs (%.2f programs/sec, %zu failed)\n",
              R.Items.size(), R.Seconds, R.programsPerSec(),
              R.numFailed());
  if (R.numDegraded() > 0)
    std::printf("%zu degraded (sound, coarse results)\n", R.numDegraded());
  if (Cli.Shards > 0)
    std::printf("%u shards: %llu steals, %u worker deaths\n", Cli.Shards,
                static_cast<unsigned long long>(Steals), WorkerDeaths);

  // Batch ledger: the per-item fixpoint-cost rollup (full per-node
  // ledgers stay inside each item's run; only totals cross the batch —
  // and, isolated, the fork — boundary).
  std::string LedgerJson;
  if (!Cli.LedgerOut.empty()) {
    auto Quote = [](const std::string &S) {
      std::string Q = "\"";
      for (char C : S) {
        if (C == '"' || C == '\\')
          Q += '\\';
        Q += C;
      }
      return Q += '"';
    };
    LedgerJson = "{\n  \"schema\": \"spa-batch-ledger-v1\",\n  \"items\": [";
    for (size_t I = 0; I < R.Items.size(); ++I) {
      const BatchItemResult &It = R.Items[I];
      LedgerJson += I ? ",\n    {" : "\n    {";
      LedgerJson += "\"name\": " + Quote(It.Name);
      LedgerJson +=
          std::string(", \"outcome\": \"") + batchOutcomeName(It.Outcome) +
          "\"";
      LedgerJson += ", \"visits\": " + std::to_string(It.LedgerVisits);
      LedgerJson +=
          ", \"widenings\": " + std::to_string(It.LedgerWidenings);
      LedgerJson += ", \"growth\": " + std::to_string(It.LedgerGrowth);
      LedgerJson +=
          ", \"time_micros\": " + std::to_string(It.LedgerTimeMicros);
      LedgerJson += "}";
    }
    LedgerJson += R.Items.empty() ? "]\n}\n" : "\n  ]\n}\n";
  }
  if (int Rc = emitObservability(Cli, LedgerJson))
    return Rc;
  return exitCodeFor(R);
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  if (!parseArgs(Argc, Argv, Cli)) {
    usage();
    return 1;
  }

  if (!Cli.TraceOut.empty())
    obs::Tracer::global().enable();

  if ((Cli.ServeStats || Cli.ServeShutdown || Cli.ServeWatch >= 0) &&
      Cli.Connect.empty()) {
    std::fprintf(stderr,
                 "error: --serve-stats/--serve-watch/--serve-shutdown "
                 "require --connect=SOCK\n");
    return 1;
  }
  if (!Cli.Connect.empty())
    return runConnectMode(Cli);

  if (!Cli.BatchFile.empty() || Cli.BatchSuite)
    return runBatchMode(Cli); // Forensics install per isolated child.

  ForensicsScope Forensics;
  Forensics.install(Cli);

  // The program comes from a snapshot (--snapshot-in) or from source;
  // --snapshot-out then persists it as spa-ir-v1 (both at once re-encodes
  // a snapshot, a format-stability round trip).
  std::unique_ptr<Program> OwnedProg;
  DepSnapshotResult DecodedGraph;
  bool HaveDecodedGraph = false;
  if (!Cli.SnapshotIn.empty()) {
    SnapshotLoadResult Loaded = loadSnapshotFile(Cli.SnapshotIn);
    if (!Loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", Loaded.Error.str().c_str());
      return 1;
    }
    OwnedProg = std::move(Loaded.Prog);
    if (Loaded.HasDepGraph) {
      DecodedGraph = decodeDepGraph(*OwnedProg, Loaded.DepGraph);
      if (!DecodedGraph.ok())
        std::fprintf(stderr, "warning: ignoring snapshot depgraph: %s\n",
                     DecodedGraph.Error.c_str());
      else
        HaveDecodedGraph = true;
    }
  } else {
    BuildResult Built = buildProgramFromSource(readInput(Cli.Path));
    if (!Built.ok()) {
      std::fprintf(stderr, "error: %s\n", Built.Error.c_str());
      return 1;
    }
    OwnedProg = std::move(Built.Prog);
  }
  const Program &Prog = *OwnedProg;

  // --snapshot-graph defers the write until the dependency graph exists
  // (after the sparse run below); a plain --snapshot-out needs only the
  // IR and writes immediately.
  if (Cli.SnapshotGraph &&
      (Cli.Octagon || Cli.Engine != EngineKind::Sparse ||
       Cli.SnapshotOut.empty())) {
    std::fprintf(stderr, "error: --snapshot-graph requires --snapshot-out, "
                         "the sparse engine, and --domain=interval\n");
    return 1;
  }
  if (!Cli.SnapshotOut.empty() && !Cli.SnapshotGraph) {
    std::string Error;
    if (!writeSnapshotFile(Cli.SnapshotOut, Prog, Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
  }

  if (Cli.Octagon)
    return runOctagonMode(Prog, Cli);

  AnalyzerOptions Opts;
  Opts.Engine = Cli.Engine;
  Opts.Pre = Cli.Pre;
  Opts.Dep = Cli.Dep;
  if (Cli.Check || Cli.List)
    Opts.Dep.Bypass = false; // Checker and listing read input buffers.
  Opts.TimeLimitSec = Cli.TimeLimitSec;
  Opts.Budget = Cli.Budget;
  Opts.Jobs = Cli.Jobs;
  // Warm start from the snapshot's embedded depgraph when the recorded
  // builder options match this invocation's (otherwise fall through to a
  // normal build — a mismatch only costs the warm start, never safety).
  if (HaveDecodedGraph && Opts.Engine == EngineKind::Sparse &&
      depSnapshotUsable(DecodedGraph, Opts.Dep))
    Opts.PrebuiltGraph = &DecodedGraph.Graph;
  AnalysisRun Run = analyzeProgram(Prog, Opts);
  if (Run.timedOut()) {
    std::printf("analysis exceeded the time limit\n");
    return 2;
  }
  if (Run.degraded())
    std::printf("!! degraded: resource budget exhausted (%s); results are "
                "sound but coarse\n",
                budgetReasonName(Run.BudgetStop));

  if (Cli.SnapshotGraph) {
    if (!Run.Graph) {
      std::fprintf(stderr,
                   "error: --snapshot-graph: the run built no dependency "
                   "graph\n");
      return 1;
    }
    std::vector<uint8_t> Payload = encodeDepGraph(*Run.Graph, Opts.Dep);
    std::string Error;
    if (!writeSnapshotFile(Cli.SnapshotOut, Prog, Error, &Payload)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
  }

  // Checker + alarm provenance run before the observability sinks so the
  // ledger JSON can embed the provenance array.
  std::optional<CheckerSummary> Summary;
  std::vector<AlarmProvenance> Slices;
  std::string ProvJson;
  if (Cli.Check) {
    Summary.emplace(checkBufferOverruns(Prog, Run));
    if (!Cli.LedgerOut.empty() || Cli.ExplainAlarm >= 0) {
      WalkBudget WB(Cli.Budget);
      Slices = collectAlarmProvenance(Prog, Run, *Summary, WB.Query);
      ProvJson = provenanceJsonArray(Prog, Run, Slices);
    }
  }

  auto Label = [&](uint32_t Node) {
    return ledgerNodeLabel(Prog, Run.Graph ? &*Run.Graph : nullptr, Node);
  };
  obs::Ledger EmptyLedger;
  const obs::Ledger &Led = Run.Ledger ? *Run.Ledger : EmptyLedger;
  std::string LedgerJson;
  if (!Cli.LedgerOut.empty())
    LedgerJson = Led.toJson(/*HotspotK=*/10, Label, ProvJson);
  if (int Rc = emitObservability(Cli, LedgerJson,
                                 Cli.Stats ? Led.hotspotText(10, Label)
                                           : std::string()))
    return Rc;

  if (Cli.DumpCfg)
    std::fputs(exportSupergraphDot(Prog, Run.Pre.CG).c_str(), stdout);
  if (Cli.DumpDeps && Run.Graph)
    std::fputs(exportDepGraphDot(Prog, *Run.Graph).c_str(), stdout);
  if (Cli.List)
    std::fputs(exportAnnotatedListing(Prog, Run).c_str(), stdout);

  if (Summary) {
    std::printf("checked %zu dereferences: %u safe, %u alarms\n",
                Summary->Checks.size(), Summary->numSafe(),
                Summary->numAlarms());
    for (const AccessCheck &C : Summary->Checks)
      if (C.Result != AccessCheck::Verdict::Safe)
        std::printf("  %s\n", C.str(Prog).c_str());
  }
  if (Cli.ExplainAlarm >= 0) {
    size_t Id = static_cast<size_t>(Cli.ExplainAlarm);
    if (Id >= Slices.size()) {
      std::fprintf(stderr, "error: no alarm #%zu (%zu alarms)\n", Id,
                   Slices.size());
      return 1;
    }
    std::fputs(Slices[Id].str(Prog, Run).c_str(), stdout);
  }

  if (Cli.Run) {
    InterpOptions IOpts;
    IOpts.InputSeed = Cli.RunSeed;
    Interp I(Prog, Run.Pre.CG, IOpts);
    InterpResult R = I.run(nullptr);
    const char *Reason[] = {"finished", "out of fuel", "trapped",
                            "blocked by assume", "buffer overrun"};
    std::printf("concrete run (seed %llu): %s after %llu steps\n",
                static_cast<unsigned long long>(Cli.RunSeed),
                Reason[static_cast<int>(R.Reason)],
                static_cast<unsigned long long>(R.Steps));
  }

  if (!Cli.Stats && !Cli.Check && !Cli.List && !Cli.DumpCfg &&
      !Cli.DumpDeps && !Cli.Run) {
    // Default action: print main's exit invariants.
    FuncId Main = Prog.mainFunc();
    PointId Exit = Prog.function(Main).Exit;
    std::printf("invariants at main's exit:\n");
    const AbsState *St = nullptr;
    AbsState DenseIn;
    if (Run.Sparse) {
      St = &Run.Sparse->In[Exit.value()];
    } else {
      DenseIn = Run.Dense->Post[Exit.value()];
      St = &DenseIn;
    }
    for (const auto &[L, V] : *St)
      std::printf("  %-16s = %s\n", Prog.loc(L).Name.c_str(),
                  V.str().c_str());
  }
  return Run.degraded() ? 3 : 0;
}
