//===- spa-serve.cpp - Resident incremental analysis daemon ---------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The spa-serve daemon: keeps parsed programs, dependency graphs and
/// per-partition fixpoint solutions resident behind a Unix-domain socket
/// so repeated analysis requests (CI bots, editor integrations) pay cold
/// cost once (docs/SERVER.md).  Clients are `spa-analyze --connect=SOCK`
/// or anything speaking serve/Protocol.h.
///
/// Usage: spa-serve --socket=PATH [options]
///   --socket=PATH       Unix-domain socket to listen on (required).
///   --jobs=N            Default worker lanes per request (0 = auto).
///   --cache-mb=N        Resident-solution cache budget (default 256).
///   --cache-entries=N   Max cached programs (default 64).
///   --no-incremental    Ablation: every request is a cold run; the
///                       cache is neither read nor written.
///
/// SPA_FAULT=crash@serve arms a one-shot injected fault: the first
/// request fails with a typed error frame and the daemon keeps serving
/// (the robustness suite's kill-mid-request probe).
///
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"
#include "serve/Server.h"
#include "support/Fault.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace spa;
using namespace spa::serve;

namespace {

Server *GlobalServer = nullptr;

void onSignal(int) {
  if (GlobalServer)
    GlobalServer->stop();
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --socket=PATH [--jobs=N] [--cache-mb=N] "
               "[--cache-entries=N] [--no-incremental]\n",
               Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  ServerOptions Opts;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Val = [&](const char *Prefix) -> const char * {
      size_t N = std::strlen(Prefix);
      return Arg.compare(0, N, Prefix) == 0 ? Arg.c_str() + N : nullptr;
    };
    if (const char *V = Val("--socket=")) {
      Opts.SocketPath = V;
    } else if (const char *V = Val("--jobs=")) {
      Opts.Service.Analyzer.Jobs = static_cast<unsigned>(std::atoi(V));
    } else if (const char *V = Val("--cache-mb=")) {
      Opts.Service.MaxCacheBytes = std::strtoull(V, nullptr, 10) << 20;
    } else if (const char *V = Val("--cache-entries=")) {
      Opts.Service.MaxCacheEntries = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--no-incremental") {
      Opts.Service.Incremental = false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", Arg.c_str());
      return usage(argv[0]);
    }
  }
  if (Opts.SocketPath.empty())
    return usage(argv[0]);

  // SPA_FAULT is parsed exactly once, here, into a one-shot flag: the
  // serving thread never re-reads the environment, so tests can setenv
  // around daemon launches without racing a live reader (tsan-clean).
  FaultPlan Fault = FaultPlan::fromEnv();
  Opts.Service.FaultArmed = Fault.active() &&
                            (Fault.Phase == "serve" || Fault.Phase == "*");

  // Request-scoped tracing: every request's span tree is recorded, with
  // a bounded ring so a long-lived daemon retains only the newest spans
  // (trace.dropped counts what the ring evicted).
  obs::Tracer::global().setRingCapacity(4096);
  obs::Tracer::global().enable();

  Server Srv(std::move(Opts));
  std::string Error;
  if (!Srv.listen(Error)) {
    std::fprintf(stderr, "spa-serve: %s\n", Error.c_str());
    return 1;
  }

  GlobalServer = &Srv;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  // A client death mid-write must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  std::fprintf(stderr, "spa-serve: listening on %s\n",
               Srv.socketPath().c_str());
  Srv.run();
  GlobalServer = nullptr;
  return 0;
}
