//===- spa-metrics-diff.cpp - Metrics/ledger regression differ ----------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares two metrics or ledger JSON documents key by key and fails
/// when the current run regressed past a relative threshold:
///
///   spa-metrics-diff [options] <baseline.json> <current.json>
///
///   --rel-tol=F        default relative tolerance (default 0.10)
///   --key=NAME[:TOL]   only compare NAME (repeatable); optional per-key
///                      tolerance overrides --rel-tol
///   --ignore=PREFIX    skip keys starting with PREFIX (repeatable)
///   --allow-missing    a key absent from either side is not an error
///   --from-jsonl       inputs are SPA_BENCH_JSON files (JSON object per
///                      line); records aggregate per (bench, engine) by
///                      min, then sum across configurations
///
/// A key "regresses" when current > baseline * (1 + tol) — metrics here
/// are costs (visits, growth, seconds, bytes), so only increases count.
/// Nested objects flatten to dotted keys; array elements key by their
/// "name"/"func"/"comp"/"node" field when present, else by index.
/// Postmortem documents (schema spa-postmortem-v1) are recognized and
/// flatten only their stable sections (counters, gauges, ledger_rollup,
/// heartbeat_total), never the per-thread event rings.
///
/// Exit codes: 0 = no regression, 1 = usage or I/O error, 2 = at least
/// one key regressed.  Wired as the metrics_regression tier-2 ctest
/// against bench/baseline_table2.jsonl (docs/OBSERVABILITY.md).
///
/// Standalone on purpose: parses JSON itself and links no spa library,
/// so it can diff artifacts from any build (including -DSPA_OBS=OFF).
///
//===----------------------------------------------------------------------===//

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

//===----------------------------------------------------------------------===//
// Minimal JSON reader (numbers, strings, bools, null, arrays, objects)
//===----------------------------------------------------------------------===//

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } K =
      Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Items;
  std::vector<std::pair<std::string, JsonValue>> Fields;

  const JsonValue *field(const char *Name) const {
    for (const auto &[N, V] : Fields)
      if (N == Name)
        return &V;
    return nullptr;
  }
};

class JsonParser {
public:
  JsonParser(const std::string &Text) : S(Text) {}

  bool parse(JsonValue &Out) {
    skipWs();
    if (!value(Out))
      return false;
    skipWs();
    return Pos == S.size();
  }

  /// Parses one value and leaves Pos after it (for JSONL streams).
  bool parseOne(JsonValue &Out) {
    skipWs();
    return value(Out);
  }

  size_t pos() const { return Pos; }

private:
  void skipWs() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  bool lit(const char *L, JsonValue &Out, JsonValue::Kind K, bool B) {
    size_t N = std::strlen(L);
    if (S.compare(Pos, N, L) != 0)
      return false;
    Pos += N;
    Out.K = K;
    Out.B = B;
    return true;
  }

  bool value(JsonValue &Out) {
    if (Pos >= S.size())
      return false;
    switch (S[Pos]) {
    case '{':
      return object(Out);
    case '[':
      return array(Out);
    case '"':
      Out.K = JsonValue::Kind::String;
      return string(Out.Str);
    case 't':
      return lit("true", Out, JsonValue::Kind::Bool, true);
    case 'f':
      return lit("false", Out, JsonValue::Kind::Bool, false);
    case 'n':
      return lit("null", Out, JsonValue::Kind::Null, false);
    default:
      return number(Out);
    }
  }

  bool string(std::string &Out) {
    if (S[Pos] != '"')
      return false;
    ++Pos;
    Out.clear();
    while (Pos < S.size() && S[Pos] != '"') {
      char C = S[Pos++];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= S.size())
        return false;
      char E = S[Pos++];
      switch (E) {
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u':
        // Code points beyond this tool's ASCII keys: keep a placeholder.
        if (Pos + 4 > S.size())
          return false;
        Pos += 4;
        Out += '?';
        break;
      default:
        Out += E; // \" \\ \/ and anything escaped literally.
      }
    }
    if (Pos >= S.size())
      return false;
    ++Pos; // Closing quote.
    return true;
  }

  bool number(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < S.size() && (S[Pos] == '-' || S[Pos] == '+'))
      ++Pos;
    bool Digits = false;
    auto Run = [&] {
      while (Pos < S.size() &&
             std::isdigit(static_cast<unsigned char>(S[Pos]))) {
        ++Pos;
        Digits = true;
      }
    };
    Run();
    if (Pos < S.size() && S[Pos] == '.') {
      ++Pos;
      Run();
    }
    if (Pos < S.size() && (S[Pos] == 'e' || S[Pos] == 'E')) {
      ++Pos;
      if (Pos < S.size() && (S[Pos] == '-' || S[Pos] == '+'))
        ++Pos;
      Run();
    }
    if (!Digits)
      return false;
    Out.K = JsonValue::Kind::Number;
    Out.Num = std::strtod(S.c_str() + Start, nullptr);
    return true;
  }

  bool array(JsonValue &Out) {
    Out.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (Pos < S.size() && S[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      JsonValue V;
      if (!value(V))
        return false;
      Out.Items.push_back(std::move(V));
      skipWs();
      if (Pos >= S.size())
        return false;
      if (S[Pos] == ',') {
        ++Pos;
        skipWs();
        continue;
      }
      if (S[Pos] == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool object(JsonValue &Out) {
    Out.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (Pos < S.size() && S[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      std::string Key;
      if (Pos >= S.size() || S[Pos] != '"' || !string(Key))
        return false;
      skipWs();
      if (Pos >= S.size() || S[Pos] != ':')
        return false;
      ++Pos;
      skipWs();
      JsonValue V;
      if (!value(V))
        return false;
      Out.Fields.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (Pos >= S.size())
        return false;
      if (S[Pos] == ',') {
        ++Pos;
        skipWs();
        continue;
      }
      if (S[Pos] == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  const std::string &S;
  size_t Pos = 0;
};

//===----------------------------------------------------------------------===//
// Flattening to dotted numeric keys
//===----------------------------------------------------------------------===//

using KeyMap = std::map<std::string, double>;

/// Identity field that labels an array element (ledger rows, batch
/// items); falls back to the element index.
std::string elementKey(const JsonValue &V, size_t Index) {
  static const char *IdFields[] = {"name", "func", "comp", "node", "label"};
  if (V.K == JsonValue::Kind::Object)
    for (const char *F : IdFields)
      if (const JsonValue *Id = V.field(F)) {
        if (Id->K == JsonValue::Kind::String)
          return Id->Str;
        if (Id->K == JsonValue::Kind::Number) {
          char Buf[32];
          std::snprintf(Buf, sizeof(Buf), "%.17g", Id->Num);
          return Buf;
        }
      }
  return std::to_string(Index);
}

void flatten(const JsonValue &V, const std::string &Prefix, KeyMap &Out) {
  switch (V.K) {
  case JsonValue::Kind::Number:
    Out[Prefix] = V.Num;
    return;
  case JsonValue::Kind::Bool:
    Out[Prefix] = V.B ? 1 : 0;
    return;
  case JsonValue::Kind::Object:
    for (const auto &[N, F] : V.Fields)
      flatten(F, Prefix.empty() ? N : Prefix + "." + N, Out);
    return;
  case JsonValue::Kind::Array:
    for (size_t I = 0; I < V.Items.size(); ++I)
      flatten(V.Items[I], Prefix + "." + elementKey(V.Items[I], I), Out);
    return;
  case JsonValue::Kind::Null:
  case JsonValue::Kind::String:
    return; // Non-numeric leaves never participate in the diff.
  }
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream OS;
  OS << In.rdbuf();
  Out = OS.str();
  return true;
}

/// One metrics JSON document -> flat key map.  A postmortem document
/// (schema spa-postmortem-v1) flattens only its stable sections —
/// counters, gauges, heartbeat_total, and the ledger rollup — because
/// the per-thread event rings are recency buffers whose contents vary
/// run to run and would make every diff a regression.
bool loadJson(const std::string &Path, KeyMap &Out) {
  std::string Text;
  if (!readFile(Path, Text)) {
    std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
    return false;
  }
  JsonValue Root;
  if (!JsonParser(Text).parse(Root)) {
    std::fprintf(stderr, "error: %s is not valid JSON\n", Path.c_str());
    return false;
  }
  const JsonValue *Schema = Root.field("schema");
  if (Schema && Schema->K == JsonValue::Kind::String &&
      Schema->Str == "spa-postmortem-v1") {
    if (const JsonValue *C = Root.field("counters"))
      flatten(*C, "counters", Out);
    if (const JsonValue *G = Root.field("gauges"))
      flatten(*G, "gauges", Out);
    if (const JsonValue *R = Root.field("ledger_rollup"))
      flatten(*R, "ledger_rollup", Out);
    if (const JsonValue *H = Root.field("heartbeat_total"))
      flatten(*H, "heartbeat_total", Out);
    return true;
  }
  flatten(Root, "", Out);
  return true;
}

/// SPA_BENCH_JSON lines -> flat key map.  Repeated (bench, engine)
/// records keep the per-key minimum (best-of-N, the bench harness
/// convention), then every aggregated record's keys sum under
/// "<bench>.<engine>.<key>" plus a cross-suite "total.<key>".
bool loadJsonl(const std::string &Path, KeyMap &Out) {
  std::string Text;
  if (!readFile(Path, Text)) {
    std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
    return false;
  }
  std::map<std::string, KeyMap> PerConfig;
  std::istringstream In(Text);
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    JsonValue Rec;
    if (!JsonParser(Line).parse(Rec) || Rec.K != JsonValue::Kind::Object) {
      std::fprintf(stderr, "error: %s:%zu is not a JSON object\n",
                   Path.c_str(), LineNo);
      return false;
    }
    const JsonValue *Bench = Rec.field("bench");
    const JsonValue *Engine = Rec.field("engine");
    std::string Config =
        (Bench && Bench->K == JsonValue::Kind::String ? Bench->Str
                                                      : "unknown") +
        "." +
        (Engine && Engine->K == JsonValue::Kind::String ? Engine->Str
                                                        : "unknown");
    KeyMap Flat;
    flatten(Rec, "", Flat);
    KeyMap &Best = PerConfig[Config];
    for (const auto &[K, V] : Flat) {
      auto It = Best.find(K);
      if (It == Best.end() || V < It->second)
        Best[K] = V;
    }
  }
  for (const auto &[Config, Keys] : PerConfig)
    for (const auto &[K, V] : Keys) {
      Out[Config + "." + K] = V;
      Out["total." + K] += V;
    }
  return true;
}

struct DiffOptions {
  double RelTol = 0.10;
  std::map<std::string, double> OnlyKeys; ///< Empty = every key.
  std::vector<std::string> IgnorePrefixes;
  bool AllowMissing = false;
  bool FromJsonl = false;
};

bool ignored(const DiffOptions &Opts, const std::string &Key) {
  for (const std::string &P : Opts.IgnorePrefixes)
    if (Key.compare(0, P.size(), P) == 0)
      return true;
  return false;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: spa-metrics-diff [options] <baseline.json> <current.json>\n"
      "  --rel-tol=F         default relative tolerance (default 0.10)\n"
      "  --key=NAME[:TOL]    compare only NAME (repeatable)\n"
      "  --ignore=PREFIX     skip keys starting with PREFIX (repeatable)\n"
      "  --allow-missing     missing keys are informational, not errors\n"
      "  --from-jsonl        inputs are SPA_BENCH_JSON record files\n"
      "exit: 0 ok, 1 usage/io error, 2 regression\n");
}

} // namespace

int main(int Argc, char **Argv) {
  DiffOptions Opts;
  std::vector<std::string> Paths;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t N = std::strlen(Prefix);
      return A.compare(0, N, Prefix) == 0 ? A.c_str() + N : nullptr;
    };
    if (const char *V = Value("--rel-tol=")) {
      Opts.RelTol = std::atof(V);
    } else if (const char *V = Value("--key=")) {
      std::string Spec = V;
      size_t Colon = Spec.rfind(':');
      double Tol = -1; // Sentinel: use --rel-tol at compare time.
      if (Colon != std::string::npos &&
          Spec.find_first_of("0123456789.", Colon + 1) == Colon + 1) {
        Tol = std::atof(Spec.c_str() + Colon + 1);
        Spec = Spec.substr(0, Colon);
      }
      Opts.OnlyKeys[Spec] = Tol;
    } else if (const char *V = Value("--ignore=")) {
      Opts.IgnorePrefixes.push_back(V);
    } else if (A == "--allow-missing") {
      Opts.AllowMissing = true;
    } else if (A == "--from-jsonl") {
      Opts.FromJsonl = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 1;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", A.c_str());
      usage();
      return 1;
    } else {
      Paths.push_back(A);
    }
  }
  if (Paths.size() != 2) {
    usage();
    return 1;
  }

  KeyMap Baseline, Current;
  bool Loaded =
      Opts.FromJsonl
          ? loadJsonl(Paths[0], Baseline) && loadJsonl(Paths[1], Current)
          : loadJson(Paths[0], Baseline) && loadJson(Paths[1], Current);
  if (!Loaded)
    return 1;

  size_t Compared = 0, Regressions = 0, Missing = 0;
  auto Compare = [&](const std::string &Key, double Tol) {
    auto B = Baseline.find(Key), C = Current.find(Key);
    if (B == Baseline.end() || C == Current.end()) {
      ++Missing;
      std::fprintf(stderr, "%s %s: missing from %s\n",
                   Opts.AllowMissing ? "note:" : "FAIL", Key.c_str(),
                   B == Baseline.end() ? "baseline" : "current");
      return;
    }
    ++Compared;
    double Limit = B->second * (1 + Tol);
    if (C->second > Limit && C->second - B->second > 1e-12) {
      ++Regressions;
      std::fprintf(stderr,
                   "FAIL %s: %.6g -> %.6g (limit %.6g, +%.1f%%)\n",
                   Key.c_str(), B->second, C->second, Limit,
                   B->second != 0
                       ? 100.0 * (C->second - B->second) / B->second
                       : 100.0);
    }
  };

  if (!Opts.OnlyKeys.empty()) {
    for (const auto &[Key, Tol] : Opts.OnlyKeys)
      Compare(Key, Tol >= 0 ? Tol : Opts.RelTol);
  } else {
    for (const auto &[Key, V] : Baseline) {
      (void)V;
      if (!ignored(Opts, Key))
        Compare(Key, Opts.RelTol);
    }
  }

  std::printf("%zu keys compared, %zu regressions, %zu missing\n", Compared,
              Regressions, Missing);
  if (Regressions > 0 || (Missing > 0 && !Opts.AllowMissing))
    return 2;
  return 0;
}
