//===- spa-bench-report.cpp - Bench JSON record reporter -----------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Consumes the JSON-lines records the bench harnesses append to
/// $SPA_BENCH_JSON (one object per analyzer run; see
/// docs/OBSERVABILITY.md) and either summarizes them or validates them:
///
///   spa-bench-report <records.jsonl>
///       table of bench/engine cells with headline metrics
///   spa-bench-report --require=k1,k2,... <records.jsonl>
///       exit 1 unless every record's metrics carry all listed keys
///   spa-bench-report --complete-cells <records.jsonl>
///       exit 1 unless every benchmark has a record for every engine
///       seen anywhere in the file (a record per table cell)
///
/// Exit code 77 means "nothing to check" (the build has SPA_OBS=OFF and
/// metrics are compiled out); ctest treats it as a skip.
///
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// One parsed record line.
struct Record {
  std::string Bench;
  std::string Engine;
  bool Ok = false;
  std::map<std::string, double> Metrics;
};

/// Minimal scanner for the flat JSON the bench harnesses emit.  Only
/// handles what appendBenchRecord produces: one object with string,
/// number, and one nested flat-object ("metrics") members.
class Scanner {
public:
  explicit Scanner(const std::string &S) : S(S) {}

  void skipWs() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  bool eat(char C) {
    skipWs();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool peek(char C) {
    skipWs();
    return Pos < S.size() && S[Pos] == C;
  }

  bool string(std::string &Out) {
    if (!eat('"'))
      return false;
    Out.clear();
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\' && Pos + 1 < S.size())
        ++Pos;
      Out += S[Pos++];
    }
    return eat('"');
  }

  bool number(double &Out) {
    skipWs();
    size_t Start = Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            std::strchr("+-.eE", S[Pos])))
      ++Pos;
    if (Pos == Start)
      return false;
    Out = std::atof(S.substr(Start, Pos - Start).c_str());
    return true;
  }

  /// `{"k": num, ...}` with no nesting.
  bool flatObject(std::map<std::string, double> &Out) {
    if (!eat('{'))
      return false;
    if (eat('}'))
      return true;
    do {
      std::string K;
      double V;
      if (!string(K) || !eat(':') || !number(V))
        return false;
      Out[K] = V;
    } while (eat(','));
    return eat('}');
  }

private:
  const std::string &S;
  size_t Pos = 0;
};

bool parseRecord(const std::string &Line, Record &R) {
  Scanner Sc(Line);
  if (!Sc.eat('{'))
    return false;
  do {
    std::string Key;
    if (!Sc.string(Key) || !Sc.eat(':'))
      return false;
    if (Key == "bench") {
      if (!Sc.string(R.Bench))
        return false;
    } else if (Key == "engine") {
      if (!Sc.string(R.Engine))
        return false;
    } else if (Key == "ok") {
      double V;
      if (!Sc.number(V))
        return false;
      R.Ok = V != 0;
    } else if (Key == "metrics") {
      if (!Sc.flatObject(R.Metrics))
        return false;
    } else {
      return false; // Unknown member: not one of our records.
    }
  } while (Sc.eat(','));
  return Sc.eat('}');
}

void usage() {
  std::fprintf(stderr,
               "usage: spa-bench-report [--require=k1,k2,...] "
               "[--complete-cells] <records.jsonl>\n");
}

double metricOr(const Record &R, const char *Key, double Default = 0) {
  auto It = R.Metrics.find(Key);
  return It == R.Metrics.end() ? Default : It->second;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Require;
  bool CompleteCells = false;
  std::string Path;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A.rfind("--require=", 0) == 0) {
      std::stringstream SS(A.substr(std::strlen("--require=")));
      std::string K;
      while (std::getline(SS, K, ','))
        if (!K.empty())
          Require.push_back(K);
    } else if (A == "--complete-cells") {
      CompleteCells = true;
    } else if (A == "--help" || A == "-h" ||
               (!A.empty() && A[0] == '-' && A != "-")) {
      usage();
      return 1;
    } else if (Path.empty()) {
      Path = A;
    } else {
      usage();
      return 1;
    }
  }
  if (Path.empty()) {
    usage();
    return 1;
  }

#if !SPA_OBS_ENABLED
  // Without instrumentation the harnesses write empty metrics; there is
  // nothing meaningful to require or report.
  std::fprintf(stderr, "spa-bench-report: built with SPA_OBS=OFF; "
                       "skipping\n");
  return 77;
#endif

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
    return 1;
  }

  std::vector<Record> Records;
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    Record R;
    if (!parseRecord(Line, R)) {
      std::fprintf(stderr, "error: %s:%zu: malformed record\n", Path.c_str(),
                   LineNo);
      return 1;
    }
    Records.push_back(std::move(R));
  }
  if (Records.empty()) {
    std::fprintf(stderr, "error: %s: no records\n", Path.c_str());
    return 1;
  }

  std::printf("%-24s %-14s %3s %9s %10s %10s %9s\n", "bench", "engine", "ok",
              "total(s)", "pops", "dep-edges", "rss(KiB)");
  for (const Record &R : Records)
    std::printf("%-24s %-14s %3s %9.3f %10.0f %10.0f %9.0f\n",
                R.Bench.c_str(), R.Engine.c_str(), R.Ok ? "yes" : "no",
                metricOr(R, "phase.total.seconds"),
                metricOr(R, "fixpoint.worklist.pops"),
                metricOr(R, "depgraph.edges"),
                metricOr(R, "mem.peak_rss_kib"));

  int Rc = 0;
  if (!Require.empty()) {
    for (const Record &R : Records) {
      for (const std::string &K : Require) {
        if (!R.Metrics.count(K)) {
          std::fprintf(stderr,
                       "FAIL: record (%s, %s) is missing metric %s\n",
                       R.Bench.c_str(), R.Engine.c_str(), K.c_str());
          Rc = 1;
        }
      }
    }
  }

  if (CompleteCells) {
    std::set<std::string> Engines;
    std::map<std::string, std::set<std::string>> ByBench;
    for (const Record &R : Records) {
      Engines.insert(R.Engine);
      ByBench[R.Bench].insert(R.Engine);
    }
    for (const auto &[Bench, Have] : ByBench) {
      for (const std::string &E : Engines) {
        if (!Have.count(E)) {
          std::fprintf(stderr, "FAIL: benchmark %s has no %s record\n",
                       Bench.c_str(), E.c_str());
          Rc = 1;
        }
      }
    }
    std::printf("\n%zu benchmarks x %zu engines: %s\n", ByBench.size(),
                Engines.size(), Rc ? "INCOMPLETE" : "complete");
  }
  return Rc;
}
