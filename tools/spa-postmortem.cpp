//===- spa-postmortem.cpp - Postmortem/journal pretty-printer -----------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a crash/stall/OOM postmortem (`spa-postmortem-v1`, written by
/// the async-signal-safe writer in src/obs/Postmortem.cpp) — or a
/// surviving run's journal dump (`spa-journal-v1`, --journal-out) — as a
/// human report:
///
///   spa-postmortem [options] <file.pm.json | journal.json>
///
///   --tail=N     events shown from the merged timeline (default 25;
///                0 = all)
///   --counters   also print the counter/gauge snapshot sections
///   --no-threads suppress the per-thread summary table
///
/// The report leads with the verdict (reason, run identity, elapsed,
/// heartbeats), then the last-event / ledger-rollup context, a one-line
/// summary per journaled thread, and finally a single timeline merging
/// every thread's ring by global sequence number — the "why did this run
/// die" view of docs/OBSERVABILITY.md.
///
/// Exit codes: 0 = rendered, 1 = usage/I-O/parse error or unknown
/// schema.  Standalone on purpose: parses JSON itself and links no spa
/// library, so it can read artifacts from any build (including
/// -DSPA_OBS=OFF stub journals).
///
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

//===----------------------------------------------------------------------===//
// Minimal JSON reader (numbers, strings, bools, null, arrays, objects)
//===----------------------------------------------------------------------===//

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } K =
      Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Items;
  std::vector<std::pair<std::string, JsonValue>> Fields;

  const JsonValue *field(const char *Name) const {
    for (const auto &[N, V] : Fields)
      if (N == Name)
        return &V;
    return nullptr;
  }
  double num(const char *Name, double Default = 0) const {
    const JsonValue *F = field(Name);
    return F && F->K == Kind::Number ? F->Num : Default;
  }
  std::string str(const char *Name, const char *Default = "") const {
    const JsonValue *F = field(Name);
    return F && F->K == Kind::String ? F->Str : Default;
  }
};

class JsonParser {
public:
  JsonParser(const std::string &Text) : S(Text) {}

  bool parse(JsonValue &Out) {
    skipWs();
    if (!value(Out))
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  void skipWs() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  bool lit(const char *L, JsonValue &Out, JsonValue::Kind K, bool B) {
    size_t N = std::strlen(L);
    if (S.compare(Pos, N, L) != 0)
      return false;
    Pos += N;
    Out.K = K;
    Out.B = B;
    return true;
  }

  bool value(JsonValue &Out) {
    if (Pos >= S.size())
      return false;
    switch (S[Pos]) {
    case '{':
      return object(Out);
    case '[':
      return array(Out);
    case '"':
      Out.K = JsonValue::Kind::String;
      return string(Out.Str);
    case 't':
      return lit("true", Out, JsonValue::Kind::Bool, true);
    case 'f':
      return lit("false", Out, JsonValue::Kind::Bool, false);
    case 'n':
      return lit("null", Out, JsonValue::Kind::Null, false);
    default:
      return number(Out);
    }
  }

  bool string(std::string &Out) {
    if (S[Pos] != '"')
      return false;
    ++Pos;
    Out.clear();
    while (Pos < S.size() && S[Pos] != '"') {
      char C = S[Pos++];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= S.size())
        return false;
      char E = S[Pos++];
      switch (E) {
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u':
        if (Pos + 4 > S.size())
          return false;
        Pos += 4;
        Out += '?';
        break;
      default:
        Out += E; // \" \\ \/ and anything escaped literally.
      }
    }
    if (Pos >= S.size())
      return false;
    ++Pos; // Closing quote.
    return true;
  }

  bool number(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < S.size() && (S[Pos] == '-' || S[Pos] == '+'))
      ++Pos;
    bool Digits = false;
    auto Run = [&] {
      while (Pos < S.size() &&
             std::isdigit(static_cast<unsigned char>(S[Pos]))) {
        ++Pos;
        Digits = true;
      }
    };
    Run();
    if (Pos < S.size() && S[Pos] == '.') {
      ++Pos;
      Run();
    }
    if (Pos < S.size() && (S[Pos] == 'e' || S[Pos] == 'E')) {
      ++Pos;
      if (Pos < S.size() && (S[Pos] == '-' || S[Pos] == '+'))
        ++Pos;
      Run();
    }
    if (!Digits)
      return false;
    Out.K = JsonValue::Kind::Number;
    Out.Num = std::strtod(S.c_str() + Start, nullptr);
    return true;
  }

  bool array(JsonValue &Out) {
    Out.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (Pos < S.size() && S[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      JsonValue V;
      if (!value(V))
        return false;
      Out.Items.push_back(std::move(V));
      skipWs();
      if (Pos >= S.size())
        return false;
      if (S[Pos] == ',') {
        ++Pos;
        skipWs();
        continue;
      }
      if (S[Pos] == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool object(JsonValue &Out) {
    Out.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (Pos < S.size() && S[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      std::string Key;
      if (Pos >= S.size() || S[Pos] != '"' || !string(Key))
        return false;
      skipWs();
      if (Pos >= S.size() || S[Pos] != ':')
        return false;
      ++Pos;
      skipWs();
      JsonValue V;
      if (!value(V))
        return false;
      Out.Fields.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (Pos >= S.size())
        return false;
      if (S[Pos] == ',') {
        ++Pos;
        skipWs();
        continue;
      }
      if (S[Pos] == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  const std::string &S;
  size_t Pos = 0;
};

//===----------------------------------------------------------------------===//
// Report rendering
//===----------------------------------------------------------------------===//

/// One event of the merged timeline, tagged with its thread slot.
struct TimelineEvent {
  uint64_t Seq = 0;
  uint64_t TimeMicros = 0;
  uint64_t Slot = 0;
  std::string Kind;
  uint64_t A = 0, B = 0;
};

std::string fmtSeconds(double Micros) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.3fs", Micros / 1e6);
  return Buf;
}

/// Mirrors the phase-id wire table of src/obs/Journal.cpp so
/// phase.begin/phase.end payloads read as names, not integers.  An id
/// past the table (a newer producer) falls back to the number.
std::string phaseName(uint64_t Id) {
  static const char *Names[] = {"?",        "build", "pre",   "defuse",
                                "depbuild", "fix",   "check", "batch",
                                "reader",   "oct-pack", "oct-close"};
  if (Id < sizeof(Names) / sizeof(Names[0]))
    return Names[Id];
  return "phase#" + std::to_string(Id);
}

/// Engine-id taxonomy of degrade.tier payload A (docs/OBSERVABILITY.md).
std::string engineName(uint64_t Id) {
  static const char *Names[] = {"pre", "dense", "sparse", "oct-dense",
                                "oct-sparse"};
  if (Id < sizeof(Names) / sizeof(Names[0]))
    return Names[Id];
  return "engine#" + std::to_string(Id);
}

/// Event-specific payload rendering; unknown kinds print raw (a, b).
std::string describeEvent(const std::string &Kind, uint64_t A, uint64_t B) {
  auto N = [](uint64_t V) { return std::to_string(V); };
  if (Kind == "phase.begin" || Kind == "phase.end")
    return phaseName(A);
  if (Kind == "partition.begin")
    return "partition " + N(A) + ", " + N(B) + " nodes";
  if (Kind == "partition.end")
    return "partition " + N(A) + ", " + N(B) + " visits";
  if (Kind == "budget.charge")
    return N(A) + " steps used";
  if (Kind == "budget.trip")
    return "reason " + N(A) + " at " + N(B) + " steps";
  if (Kind == "degrade.tier")
    return engineName(A) + ", " + N(B) + " nodes degraded";
  if (Kind == "widen.burst")
    return "node " + N(A) + ", " + N(B) + " widenings";
  if (Kind == "fault.arm")
    return "kind " + N(A);
  if (Kind == "batch.item.begin")
    return "item " + N(A);
  if (Kind == "batch.item.end")
    return "item " + N(A) + ", outcome " + N(B);
  if (Kind == "heartbeat.stall")
    return "slot " + N(A) + " at heartbeat " + N(B);
  if (Kind == "oom.trip")
    return "allocation failed";
  return "(" + N(A) + ", " + N(B) + ")";
}

struct PrintOptions {
  size_t Tail = 25; ///< 0 = unlimited.
  bool Counters = false;
  bool Threads = true;
};

void printScalarSection(const JsonValue &Obj, const char *Indent) {
  for (const auto &[N, V] : Obj.Fields) {
    if (V.K == JsonValue::Kind::Number)
      std::printf("%s%-32s %.6g\n", Indent, N.c_str(), V.Num);
    else if (V.K == JsonValue::Kind::String)
      std::printf("%s%-32s %s\n", Indent, N.c_str(), V.Str.c_str());
  }
}

void printReport(const JsonValue &Root, const std::string &Schema,
                 const PrintOptions &Opts) {
  bool IsPostmortem = Schema == "spa-postmortem-v1";

  // ---- Verdict line ----
  if (IsPostmortem) {
    std::string Reason = Root.str("reason", "unknown");
    std::string Verdict = "died: " + Reason;
    if (const JsonValue *Sig = Root.field("signal"))
      Verdict += " " + std::to_string(static_cast<long long>(Sig->Num));
    if (const JsonValue *Slot = Root.field("stalled_slot"))
      Verdict += " (slot " +
                 std::to_string(static_cast<long long>(Slot->Num)) + ")";
    std::printf("== %s ==\n", Verdict.c_str());
    std::printf("  run:        %s (pid %lld)\n", Root.str("run_id").c_str(),
                static_cast<long long>(Root.num("pid")));
    std::printf("  elapsed:    %s\n",
                fmtSeconds(Root.num("elapsed_micros")).c_str());
    std::printf("  heartbeats: %lld\n",
                static_cast<long long>(Root.num("heartbeat_total")));
    if (const JsonValue *Last = Root.field("last_event")) {
      uint64_t A = static_cast<uint64_t>(Last->num("a"));
      uint64_t B = static_cast<uint64_t>(Last->num("b"));
      std::string Kind = Last->str("kind");
      std::printf("  last event: %s — %s\n", Kind.c_str(),
                  describeEvent(Kind, A, B).c_str());
    }
    if (const JsonValue *Roll = Root.field("ledger_rollup"))
      std::printf("  ledger:     visits %lld, widenings %lld, growth %lld, "
                  "fix time %s\n",
                  static_cast<long long>(Roll->num("visits")),
                  static_cast<long long>(Roll->num("widenings")),
                  static_cast<long long>(Roll->num("growth")),
                  fmtSeconds(Roll->num("time_micros")).c_str());
  } else {
    std::printf("== journal (run survived) ==\n");
  }

  // ---- Counter/gauge snapshot (postmortems only; opt-in, can be long).
  if (Opts.Counters) {
    if (const JsonValue *C = Root.field("counters")) {
      std::printf("\ncounters:\n");
      printScalarSection(*C, "  ");
    }
    if (const JsonValue *G = Root.field("gauges")) {
      std::printf("\ngauges:\n");
      printScalarSection(*G, "  ");
    }
  }

  // ---- Threads ----
  const JsonValue *Threads = Root.field("threads");
  if (!Threads || Threads->K != JsonValue::Kind::Array) {
    std::printf("\n(no thread journals in this document)\n");
    return;
  }
  if (Opts.Threads && !Threads->Items.empty()) {
    std::printf("\nthreads:\n");
    std::printf("  %-5s %-8s %-10s %-6s %-9s %s\n", "slot", "tid",
                "heartbeat", "infix", "worklist", "partition");
    for (const JsonValue &T : Threads->Items) {
      std::printf("  %-5lld %-8lld %-10lld %-6lld %-9lld %lld\n",
                  static_cast<long long>(T.num("slot")),
                  static_cast<long long>(T.num("tid")),
                  static_cast<long long>(T.num("heartbeat")),
                  static_cast<long long>(T.num("in_fix")),
                  static_cast<long long>(T.num("worklist_depth")),
                  static_cast<long long>(T.num("partition")));
    }
  }

  // ---- Merged timeline ----
  std::vector<TimelineEvent> Timeline;
  for (const JsonValue &T : Threads->Items) {
    const JsonValue *Events = T.field("events");
    if (!Events || Events->K != JsonValue::Kind::Array)
      continue;
    for (const JsonValue &E : Events->Items) {
      TimelineEvent TE;
      TE.Seq = static_cast<uint64_t>(E.num("seq"));
      TE.TimeMicros = static_cast<uint64_t>(E.num("t_us"));
      TE.Slot = static_cast<uint64_t>(T.num("slot"));
      TE.Kind = E.str("kind", "?");
      TE.A = static_cast<uint64_t>(E.num("a"));
      TE.B = static_cast<uint64_t>(E.num("b"));
      Timeline.push_back(std::move(TE));
    }
  }
  std::sort(Timeline.begin(), Timeline.end(),
            [](const TimelineEvent &L, const TimelineEvent &R) {
              return L.Seq < R.Seq;
            });
  size_t First = 0;
  if (Opts.Tail && Timeline.size() > Opts.Tail)
    First = Timeline.size() - Opts.Tail;
  std::printf("\ntimeline (%zu event%s%s, oldest first):\n", Timeline.size(),
              Timeline.size() == 1 ? "" : "s",
              First ? (", showing last " + std::to_string(Opts.Tail)).c_str()
                    : "");
  if (First)
    std::printf("  ... %zu earlier events elided (--tail=0 for all)\n",
                First);
  for (size_t I = First; I < Timeline.size(); ++I) {
    const TimelineEvent &E = Timeline[I];
    std::printf("  [%8.3fs] s%-2lld %-18s %s\n",
                static_cast<double>(E.TimeMicros) / 1e6,
                static_cast<long long>(E.Slot), E.Kind.c_str(),
                describeEvent(E.Kind, E.A, E.B).c_str());
  }
}

void usage() {
  std::fprintf(stderr,
               "usage: spa-postmortem [options] <file.pm.json|journal.json>\n"
               "  --tail=N      merged-timeline events shown (default 25; "
               "0 = all)\n"
               "  --counters    print the counter/gauge snapshot too\n"
               "  --no-threads  suppress the per-thread summary table\n"
               "exit: 0 rendered, 1 usage/io/parse error\n");
}

} // namespace

int main(int Argc, char **Argv) {
  PrintOptions Opts;
  std::string Path;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A.compare(0, 7, "--tail=") == 0) {
      Opts.Tail = static_cast<size_t>(std::strtoul(A.c_str() + 7, nullptr, 10));
    } else if (A == "--counters") {
      Opts.Counters = true;
    } else if (A == "--no-threads") {
      Opts.Threads = false;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 1;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", A.c_str());
      usage();
      return 1;
    } else if (Path.empty()) {
      Path = A;
    } else {
      usage();
      return 1;
    }
  }
  if (Path.empty()) {
    usage();
    return 1;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
    return 1;
  }
  std::ostringstream OS;
  OS << In.rdbuf();
  std::string Text = OS.str();

  JsonValue Root;
  if (!JsonParser(Text).parse(Root) || Root.K != JsonValue::Kind::Object) {
    std::fprintf(stderr, "error: %s is not valid JSON\n", Path.c_str());
    return 1;
  }
  std::string Schema = Root.str("schema");
  if (Schema != "spa-postmortem-v1" && Schema != "spa-journal-v1") {
    std::fprintf(stderr,
                 "error: %s: unknown schema \"%s\" (expected "
                 "spa-postmortem-v1 or spa-journal-v1)\n",
                 Path.c_str(), Schema.c_str());
    return 1;
  }
  printReport(Root, Schema, Opts);
  return 0;
}
