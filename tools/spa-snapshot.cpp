//===- spa-snapshot.cpp - Inspect/verify/create spa-ir-v1 snapshots -------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CLI for the binary IR snapshot format (DESIGN.md §8):
///
///   spa-snapshot FILE.snap            inspect: header, section table,
///                                     checksum status, program summary
///   spa-snapshot --verify FILE.snap   strict load only; exit 0 when the
///                                     file loads cleanly, 2 otherwise
///   spa-snapshot --out=F.snap FILE.spa  build the source and write its
///                                     snapshot (golden-corpus producer)
///
/// Inspection is deliberately two-layered: the section table and
/// checksums print even when the deep decode fails, so a corrupt file
/// tells you *which* section is bad rather than just "load error".
///
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "ir/Snapshot.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace spa;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: spa-snapshot [--verify] <file.snap>\n"
               "       spa-snapshot --out=FILE.snap <file.spa>\n");
}

bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Bytes,
                   std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open " + Path;
    return false;
  }
  Bytes.assign(std::istreambuf_iterator<char>(In),
               std::istreambuf_iterator<char>());
  if (In.bad()) {
    Error = "read failed: " + Path;
    return false;
  }
  return true;
}

/// --out=: build .spa source and serialize it (exit 0/1).
int compileToSnapshot(const std::string &SourcePath,
                      const std::string &OutPath) {
  std::ifstream In(SourcePath);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", SourcePath.c_str());
    return 1;
  }
  std::stringstream SS;
  SS << In.rdbuf();
  BuildResult Built = buildProgramFromSource(SS.str());
  if (!Built.ok()) {
    std::fprintf(stderr, "error: %s\n", Built.Error.c_str());
    return 1;
  }
  std::string Error;
  if (!writeSnapshotFile(OutPath, *Built.Prog, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::vector<uint8_t> Bytes = saveSnapshot(*Built.Prog);
  std::printf("%s: wrote %zu bytes (%zu points, %zu funcs, %zu locs)\n",
              OutPath.c_str(), Bytes.size(), Built.Prog->Points.size(),
              Built.Prog->Funcs.size(), Built.Prog->Locs.size());
  return 0;
}

/// --verify: strict load, nothing printed on the happy path but a
/// one-line confirmation; exit 0 clean / 2 rejected.
int verifySnapshot(const std::string &Path) {
  SnapshotLoadResult L = loadSnapshotFile(Path);
  if (!L.ok()) {
    std::fprintf(stderr, "%s: %s\n", Path.c_str(), L.Error.str().c_str());
    return 2;
  }
  std::printf("%s: ok (%zu points, %zu funcs, %zu locs)\n", Path.c_str(),
              L.Prog->Points.size(), L.Prog->Funcs.size(),
              L.Prog->Locs.size());
  return 0;
}

/// Default mode: structural dump.  Exit 0 only when the file both
/// inspects and strictly loads.
int inspect(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  std::string Error;
  if (!readFileBytes(Path, Bytes, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }

  SnapshotInfo Info;
  SnapshotError E = inspectSnapshot(Bytes.data(), Bytes.size(), Info);
  if (!E.ok()) {
    std::fprintf(stderr, "%s: %s\n", Path.c_str(), E.str().c_str());
    return 2;
  }

  std::printf("%s: spa-ir-v%u, %llu bytes, %zu sections\n", Path.c_str(),
              Info.Version, static_cast<unsigned long long>(Info.TotalBytes),
              Info.Sections.size());
  bool AllSumsOk = true;
  for (const SnapshotSectionInfo &S : Info.Sections) {
    std::printf("  %-8s off=%-8llu len=%-8llu fnv1a=%016llx  %s\n",
                S.Name, static_cast<unsigned long long>(S.Offset),
                static_cast<unsigned long long>(S.Length),
                static_cast<unsigned long long>(S.Checksum),
                S.ChecksumOk ? "ok" : "MISMATCH");
    AllSumsOk = AllSumsOk && S.ChecksumOk;
  }

  SnapshotLoadResult L = loadSnapshot(Bytes);
  if (!L.ok()) {
    std::printf("load: %s\n", L.Error.str().c_str());
    return 2;
  }
  std::printf("load: ok  points=%zu funcs=%zu locs=%zu start=%u main=%u\n",
              L.Prog->Points.size(), L.Prog->Funcs.size(),
              L.Prog->Locs.size(), L.Prog->Start.value(),
              L.Prog->Main.value());
  return AllSumsOk ? 0 : 2;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Verify = false;
  std::string Out;
  std::string Path;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--verify") {
      Verify = true;
    } else if (A.rfind("--out=", 0) == 0) {
      Out = A.substr(std::strlen("--out="));
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "error: unknown option %s\n", A.c_str());
      usage();
      return 1;
    } else if (Path.empty()) {
      Path = A;
    } else {
      usage();
      return 1;
    }
  }
  if (Path.empty()) {
    usage();
    return 1;
  }
  if (!Out.empty())
    return compileToSnapshot(Path, Out);
  if (Verify)
    return verifySnapshot(Path);
  return inspect(Path);
}
