//===- bdd_test.cpp - BDD package and BDD dep-storage tests ---------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "bdd/Bdd.h"
#include "core/BddDepStorage.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

using namespace spa;

TEST(Bdd, TerminalRules) {
  BddManager M(4);
  BddRef X = M.var(0), Y = M.var(1);
  EXPECT_EQ(M.andOp(X, M.trueBdd()), X);
  EXPECT_EQ(M.andOp(X, M.falseBdd()), M.falseBdd());
  EXPECT_EQ(M.orOp(X, M.falseBdd()), X);
  EXPECT_EQ(M.orOp(X, M.trueBdd()), M.trueBdd());
  EXPECT_EQ(M.notOp(M.notOp(X)), X);
  EXPECT_EQ(M.andOp(X, X), X);
  EXPECT_EQ(M.xorOp(X, X), M.falseBdd());
  EXPECT_NE(M.andOp(X, Y), M.orOp(X, Y));
}

TEST(Bdd, HashConsingSharesStructure) {
  BddManager M(8);
  // Building the same function twice yields the same node.
  BddRef A = M.andOp(M.var(0), M.orOp(M.var(3), M.nvar(5)));
  BddRef B = M.andOp(M.var(0), M.orOp(M.var(3), M.nvar(5)));
  EXPECT_EQ(A, B);
}

TEST(Bdd, RestrictAndExists) {
  BddManager M(3);
  // f = (x0 & x1) | x2
  BddRef F = M.orOp(M.andOp(M.var(0), M.var(1)), M.var(2));
  EXPECT_EQ(M.restrict(F, 0, true), M.orOp(M.var(1), M.var(2)));
  EXPECT_EQ(M.restrict(F, 0, false), M.var(2));
  // Exists x1. f = x0 | x2
  EXPECT_EQ(M.exists(F, 1), M.orOp(M.var(0), M.var(2)));
}

TEST(Bdd, SatCount) {
  BddManager M(4);
  EXPECT_EQ(M.satCount(M.falseBdd()), 0);
  EXPECT_EQ(M.satCount(M.trueBdd()), 16);
  EXPECT_EQ(M.satCount(M.var(0)), 8);
  EXPECT_EQ(M.satCount(M.andOp(M.var(0), M.var(3))), 4);
  EXPECT_EQ(M.satCount(M.xorOp(M.var(1), M.var(2))), 8);
}

/// Random-formula property test: BDD operations agree with brute-force
/// truth-table evaluation.
class BddSemantics : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BddSemantics, MatchesTruthTables) {
  const uint32_t NumVars = 6;
  Rng R(GetParam());
  BddManager M(NumVars);

  // Build a random formula both as a BDD and as an evaluator tree.
  struct Node {
    int Kind; // 0 = literal, 1 = and, 2 = or, 3 = xor, 4 = not.
    uint32_t Var = 0;
    bool Neg = false;
    int L = -1, Rn = -1;
  };
  std::vector<Node> Nodes;
  std::vector<BddRef> Refs;
  for (int I = 0; I < 40; ++I) {
    Node N;
    if (Nodes.empty() || R.chance(35)) {
      N.Kind = 0;
      N.Var = static_cast<uint32_t>(R.below(NumVars));
      N.Neg = R.chance(50);
      Refs.push_back(N.Neg ? M.nvar(N.Var) : M.var(N.Var));
    } else {
      N.Kind = 1 + static_cast<int>(R.below(4));
      N.L = static_cast<int>(R.below(Nodes.size()));
      N.Rn = static_cast<int>(R.below(Nodes.size()));
      switch (N.Kind) {
      case 1:
        Refs.push_back(M.andOp(Refs[N.L], Refs[N.Rn]));
        break;
      case 2:
        Refs.push_back(M.orOp(Refs[N.L], Refs[N.Rn]));
        break;
      case 3:
        Refs.push_back(M.xorOp(Refs[N.L], Refs[N.Rn]));
        break;
      default:
        Refs.push_back(M.notOp(Refs[N.L]));
        break;
      }
    }
    Nodes.push_back(N);
  }

  std::function<bool(int, uint32_t)> Eval = [&](int I, uint32_t Bits) {
    const Node &N = Nodes[I];
    switch (N.Kind) {
    case 0:
      return ((Bits >> N.Var) & 1) != static_cast<uint32_t>(N.Neg);
    case 1:
      return Eval(N.L, Bits) && Eval(N.Rn, Bits);
    case 2:
      return Eval(N.L, Bits) || Eval(N.Rn, Bits);
    case 3:
      return Eval(N.L, Bits) != Eval(N.Rn, Bits);
    default:
      return !Eval(N.L, Bits);
    }
  };

  int Root = static_cast<int>(Nodes.size()) - 1;
  double Count = 0;
  for (uint32_t Bits = 0; Bits < (1u << NumVars); ++Bits) {
    std::vector<bool> Assignment(NumVars);
    for (uint32_t V = 0; V < NumVars; ++V)
      Assignment[V] = (Bits >> V) & 1;
    bool Expected = Eval(Root, Bits);
    EXPECT_EQ(M.eval(Refs[Root], Assignment), Expected)
        << "assignment " << Bits;
    if (Expected)
      Count += 1;
  }
  EXPECT_EQ(M.satCount(Refs[Root]), Count);

  // Model enumeration matches the truth table too.
  std::set<uint64_t> Models;
  M.forEachModel(Refs[Root], 0, NumVars,
                 [&](uint64_t W) { Models.insert(W); });
  EXPECT_EQ(Models.size(), static_cast<size_t>(Count));
  for (uint64_t W : Models)
    EXPECT_TRUE(Eval(Root, static_cast<uint32_t>(W)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddSemantics,
                         ::testing::Range<uint64_t>(1, 16));

/// The BDD dependency storage stores exactly the same relation as the
/// set-based storage, for random edge sets.
class BddStorage : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BddStorage, MatchesSetStorage) {
  Rng R(GetParam() * 101);
  const uint32_t NumNodes = 50, NumLocs = 30;
  SetDepStorage SetS(NumNodes);
  BddDepStorage BddS(NumNodes, NumLocs);

  std::set<std::tuple<uint32_t, uint32_t, uint32_t>> Expected;
  for (int I = 0; I < 400; ++I) {
    uint32_t Src = static_cast<uint32_t>(R.below(NumNodes));
    uint32_t Dst = static_cast<uint32_t>(R.below(NumNodes));
    LocId L(static_cast<uint32_t>(R.below(NumLocs)));
    bool NewInSet = SetS.add(Src, L, Dst);
    bool NewInBdd = BddS.add(Src, L, Dst);
    EXPECT_EQ(NewInSet, NewInBdd);
    Expected.insert({Src, L.value(), Dst});
  }
  EXPECT_EQ(SetS.edgeCount(), Expected.size());
  EXPECT_EQ(BddS.edgeCount(), Expected.size());

  for (uint32_t Src = 0; Src < NumNodes; ++Src) {
    std::set<std::tuple<uint32_t, uint32_t, uint32_t>> FromSet, FromBdd;
    SetS.forEachOut(Src, [&](LocId L, uint32_t Dst) {
      FromSet.insert({Src, L.value(), Dst});
    });
    BddS.forEachOut(Src, [&](LocId L, uint32_t Dst) {
      FromBdd.insert({Src, L.value(), Dst});
    });
    EXPECT_EQ(FromSet, FromBdd) << "source " << Src;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddStorage,
                         ::testing::Range<uint64_t>(1, 11));
