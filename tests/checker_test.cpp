//===- checker_test.cpp - Buffer-overrun checker tests ----------------------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Checker.h"
#include "interp/Interp.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace spa;
using namespace spa::test;

TEST(Checker, ProvesInBoundsAccessSafe) {
  auto Prog = build(R"(
    fun main() {
      a = alloc(10);
      i = 0;
      while (i < 10) {
        q = a + i;
        *q = i;
        i = i + 1;
      }
      return 0;
    }
  )");
  CheckerSummary S = analyzeAndCheck(*Prog);
  ASSERT_FALSE(S.Checks.empty());
  // The loop-guarded store q = a + i with i in [0, 9] is provably safe.
  for (const AccessCheck &C : S.Checks) {
    if (C.IsStore) {
      EXPECT_EQ(C.Result, AccessCheck::Verdict::Safe) << C.str(*Prog);
    }
  }
}

TEST(Checker, FlagsOffByOne) {
  auto Prog = build(R"(
    fun main() {
      a = alloc(10);
      i = 0;
      while (i <= 10) {
        q = a + i;
        *q = i;
        i = i + 1;
      }
      return 0;
    }
  )");
  CheckerSummary S = analyzeAndCheck(*Prog);
  EXPECT_GT(S.numAlarms(), 0u);
}

TEST(Checker, FlagsDefiniteOverrun) {
  auto Prog = build(R"(
    fun main() {
      a = alloc(4);
      q = a + 7;
      v = *q;
      return v;
    }
  )");
  CheckerSummary S = analyzeAndCheck(*Prog);
  bool FoundDefinite = false;
  for (const AccessCheck &C : S.Checks)
    FoundDefinite |= C.Result == AccessCheck::Verdict::DefiniteOverrun;
  EXPECT_TRUE(FoundDefinite);
}

TEST(Checker, SafeOnAddressOfVariables) {
  auto Prog = build(R"(
    fun main() {
      x = 3;
      p = &x;
      y = *p;
      return y;
    }
  )");
  CheckerSummary S = analyzeAndCheck(*Prog);
  for (const AccessCheck &C : S.Checks)
    EXPECT_EQ(C.Result, AccessCheck::Verdict::Safe) << C.str(*Prog);
}

TEST(Checker, InterproceduralSizeFlows) {
  auto Prog = build(R"(
    fun fill(buf, n) {
      i = 0;
      while (i < n) {
        q = buf + i;
        *q = 0;
        i = i + 1;
      }
      return 0;
    }
    fun main() {
      a = alloc(8);
      fill(a, 8);
      b = alloc(4);
      fill(b, 6);
      return 0;
    }
  )");
  // fill is called with a matching and a mismatching size: the store is
  // a legitimate (may) alarm because the second call can overrun.
  CheckerSummary S = analyzeAndCheck(*Prog);
  EXPECT_GT(S.numAlarms(), 0u);
}

/// No false negatives: any overrun the interpreter actually hits must be
/// an alarm (or definite overrun) at that point.
class CheckerSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CheckerSoundness, ConcreteOverrunsAreFlagged) {
  GenConfig Config;
  Config.Seed = GetParam() * 9176 + 3;
  Config.NumFunctions = 4;
  Config.StmtsPerFunction = 12;
  Config.PointerPercent = 35;
  Config.AllocPercent = 30;
  auto Source = generateSource(Config);
  BuildResult B = buildProgramFromSource(Source);
  ASSERT_TRUE(B.ok()) << B.Error;
  const Program &Prog = *B.Prog;

  AnalyzerOptions Opts;
  Opts.Engine = EngineKind::Sparse;
  Opts.Dep.Bypass = false;
  AnalysisRun Run = analyzeProgram(Prog, Opts);
  CheckerSummary S = checkBufferOverruns(Prog, Run);

  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    InterpOptions IOpts;
    IOpts.InputSeed = Seed;
    IOpts.MaxSteps = 10000;
    Interp I(Prog, Run.Pre.CG, IOpts);
    InterpResult R = I.run(nullptr);
    if (R.Reason != StopReason::Overrun)
      continue;
    ASSERT_EQ(R.OverrunPoints.size(), 1u);
    bool Flagged = false;
    for (const AccessCheck &C : S.Checks)
      if (C.P == R.OverrunPoints[0] &&
          C.Result != AccessCheck::Verdict::Safe)
        Flagged = true;
    EXPECT_TRUE(Flagged) << "missed overrun at "
                         << Prog.pointToString(R.OverrunPoints[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerSoundness,
                         ::testing::Range<uint64_t>(1, 16));
