//===- degradation_test.cpp - Soundness under resource-budget degradation -------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The degradation ladder's core contract (docs/ROBUSTNESS.md): a run
/// stopped by its resource budget must still be a sound
/// over-approximation.  These tests fuzz generated programs under
/// aggressively small budgets (expired deadlines, tiny step limits, a
/// 1 KiB memory ceiling) and check every concrete state the interpreter
/// samples against the degraded abstract results — for the interval
/// analyzers (dense and sparse) and the octagon instance — plus the
/// cancellation-responsiveness bound: an exhausted budget stops every
/// engine within one visit per remaining step, an expired one at zero.
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/DenseAnalysis.h"
#include "core/PreAnalysis.h"
#include "interp/Interp.h"
#include "ir/Builder.h"
#include "oct/OctAnalysis.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace spa;

namespace {

/// gamma-membership: is the concrete value \p CV covered by abstract
/// \p AV?  (Same check random_test.cpp uses for the full-precision runs.)
bool contained(const Interp &I, const CValue &CV, const Value &AV) {
  switch (CV.K) {
  case CValue::Kind::Uninit:
    return true; // Reads of uninitialized cells trap; no constraint.
  case CValue::Kind::Int:
    return AV.Itv.contains(CV.I);
  case CValue::Kind::Fun:
    return AV.Funcs.contains(CV.F);
  case CValue::Kind::Ptr: {
    LocId Base = CV.Heap ? I.heapBlocks()[CV.Block].Site : CV.VarBase;
    return AV.Pts.contains(Base) && AV.Offset.contains(CV.Off) &&
           AV.Size.contains(I.blockSize(CV));
  }
  }
  return false;
}

std::unique_ptr<Program> buildGenerated(const GenConfig &Config) {
  std::string Source = generateSource(Config);
  BuildResult R = buildProgramFromSource(Source);
  EXPECT_TRUE(R.ok()) << R.Error << "\n" << Source;
  return std::move(R.Prog);
}

/// The aggressive budget regimes the fuzz sweeps.  Every regime must
/// yield a sound result whether or not it actually trips on a given
/// program (tiny programs can finish under the larger limits).
struct Regime {
  const char *Name;
  BudgetLimits Limits;
};

const Regime Regimes[] = {
    {"expired-deadline", {-1.0, 0, 0}},
    {"one-step", {0, 1, 0}},
    {"small-steps", {0, 157, 0}},
    {"tiny-memory", {0, 0, 1}}, // 1 KiB: trips at the first RSS probe.
};

GenConfig fuzzConfig(uint64_t Seed) {
  GenConfig Config;
  Config.Seed = Seed;
  Config.NumFunctions = 4;
  Config.StmtsPerFunction = 10;
  Config.AllowLoops = true;
  Config.AllowRecursion = (Seed % 2) == 0;
  Config.UseFunctionPointers = (Seed % 3) == 0;
  Config.SccGroupSize = (Seed % 4) == 0 ? 3 : 0;
  return Config;
}

} // namespace

//===----------------------------------------------------------------------===//
// Interval analyzers under budget pressure
//===----------------------------------------------------------------------===//

class DegradationSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DegradationSoundness, DegradedResultsCoverConcreteExecutions) {
  for (size_t RI = 0; RI < std::size(Regimes); ++RI) {
    const Regime &Reg = Regimes[RI];
    // A distinct program per (seed, regime): 25 seeds x 4 regimes = 100
    // generated programs across the suite.
    auto Prog = buildGenerated(fuzzConfig(GetParam() * 131 + RI));

    AnalyzerOptions VOpts;
    VOpts.Engine = EngineKind::Vanilla;
    VOpts.Budget = Reg.Limits;
    AnalysisRun Vanilla = analyzeProgram(*Prog, VOpts);
    ASSERT_FALSE(Vanilla.timedOut());

    AnalyzerOptions SOpts;
    SOpts.Engine = EngineKind::Sparse;
    SOpts.Dep.Bypass = false; // Degradation tops the graph's def sets.
    SOpts.Budget = Reg.Limits;
    AnalysisRun Sparse = analyzeProgram(*Prog, SOpts);

    // Responsiveness: visits never exceed the step budget (each visit
    // charges at least one step before popping), and an expired
    // deadline stops every phase before its first visit.
    if (Reg.Limits.StepLimit) {
      EXPECT_LE(Vanilla.Dense->Visits + Sparse.Sparse->Visits,
                2 * Reg.Limits.StepLimit)
          << Reg.Name;
    }
    if (Reg.Limits.DeadlineSec < 0) {
      EXPECT_TRUE(Vanilla.degraded()) << Reg.Name;
      EXPECT_TRUE(Sparse.degraded()) << Reg.Name;
      EXPECT_EQ(Vanilla.Dense->Visits, 0u) << Reg.Name;
      EXPECT_EQ(Sparse.Sparse->Visits, 0u) << Reg.Name;
      // The pre-analysis itself degrades to the all-top invariant.
      EXPECT_TRUE(topAbsState(*Prog).leq(Vanilla.Pre.Global)) << Reg.Name;
    }

    // Interpreter containment against the (possibly degraded) results.
    InterpOptions IOpts;
    IOpts.InputSeed = 1 + GetParam();
    IOpts.MaxSteps = 4000;
    Interp Run(*Prog, Vanilla.Pre.CG, IOpts);
    uint64_t Tick = 0;
    Run.run([&](PointId P, const Interp &I) {
      ++Tick;
      for (LocId L : Vanilla.DU.Defs[P.value()]) {
        if (Prog->loc(L).isSummary())
          continue;
        EXPECT_TRUE(
            contained(I, I.varValue(L), Vanilla.Dense->Post[P.value()].get(L)))
            << Reg.Name << ": degraded vanilla misses " << Prog->loc(L).Name
            << " at " << Prog->pointToString(P);
      }
      for (LocId L : Sparse.Graph->NodeDefs[P.value()]) {
        if (Prog->loc(L).isSummary())
          continue;
        EXPECT_TRUE(contained(I, I.varValue(L),
                              Sparse.Sparse->Out[P.value()].get(L)))
            << Reg.Name << ": degraded sparse misses " << Prog->loc(L).Name
            << " at " << Prog->pointToString(P);
      }
      if ((Tick & 31) != 0)
        return;
      // Periodic full-memory check against the dense state, heap cells
      // against their allocation sites.
      for (uint32_t L = 0; L < Prog->numLocs(); ++L) {
        if (Prog->loc(LocId(L)).isSummary())
          continue;
        EXPECT_TRUE(contained(I, I.varValue(LocId(L)),
                              Vanilla.Dense->Post[P.value()].get(LocId(L))))
            << Reg.Name << ": degraded vanilla misses "
            << Prog->loc(LocId(L)).Name << " in full check at "
            << Prog->pointToString(P);
      }
      for (const HeapBlock &B : I.heapBlocks()) {
        const Value &Site = Vanilla.Dense->Post[P.value()].get(B.Site);
        for (const CValue &Cell : B.Cells)
          EXPECT_TRUE(contained(I, Cell, Site))
              << Reg.Name << ": degraded vanilla misses heap cell of "
              << Prog->loc(B.Site).Name;
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DegradationSoundness,
                         ::testing::Range<uint64_t>(1, 26));

//===----------------------------------------------------------------------===//
// Octagon instance under budget pressure
//===----------------------------------------------------------------------===//

class OctDegradationSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OctDegradationSoundness, DegradedProjectionsCoverConcreteRuns) {
  auto Prog = buildGenerated(fuzzConfig(GetParam() * 977 + 7));

  OctOptions Opts;
  Opts.Engine = EngineKind::Vanilla;
  Opts.Budget.StepLimit = 40; // Small enough to trip on most programs.
  OctRun Run = runOctAnalysis(*Prog, Opts);
  ASSERT_FALSE(Run.timedOut());
  EXPECT_LE(Run.Dense->Visits, Opts.Budget.StepLimit);

  // When the octagon run degraded, the interval fallback tier must be
  // present (and is itself budget-governed with a fresh token).
  if (Run.degraded()) {
    ASSERT_TRUE(Run.Fallback.has_value());
  }

  // Every sampled concrete integer must lie in the (possibly topped)
  // projection of its defined pack at every point: a concretely-reached
  // point was either visited by the engine (its def packs are bound, as
  // in octagon_test's full-precision OctSoundness) or is affected by the
  // degradation, which binds every pack to ⊤.
  InterpOptions IOpts;
  IOpts.InputSeed = 2;
  IOpts.MaxSteps = 3000;
  Interp I(*Prog, Run.Pre.CG, IOpts);
  I.run([&](PointId P, const Interp &It) {
    for (LocId PL : Run.DU.Defs[P.value()]) {
      PackId Pack(PL.value());
      for (LocId Member : Run.Packs.vars(Pack)) {
        if (Prog->loc(Member).isSummary())
          continue;
        const CValue &CV = It.varValue(Member);
        if (CV.K != CValue::Kind::Int)
          continue; // Octagon projections only constrain numeric values.
        const OctVal *O = Run.Dense->Post[P.value()].lookup(Pack);
        ASSERT_TRUE(O != nullptr);
        Interval Itv = O->project(
            static_cast<uint32_t>(Run.Packs.indexIn(Pack, Member)));
        EXPECT_TRUE(Itv.contains(CV.I))
            << "degraded octagon misses " << Prog->loc(Member).Name
            << " = " << CV.I << " at " << Prog->pointToString(P) << " (got "
            << Itv.str() << ")";
      }
    }
  });

  // The sparse octagon engine degrades and reports the provenance bit
  // under an expired deadline, and still produces the fallback tier.
  OctOptions SOpts;
  SOpts.Engine = EngineKind::Sparse;
  SOpts.Budget.DeadlineSec = -1;
  OctRun SRun = runOctAnalysis(*Prog, SOpts);
  EXPECT_TRUE(SRun.degraded());
  EXPECT_EQ(SRun.Sparse->Visits, 0u);
  ASSERT_TRUE(SRun.Fallback.has_value());
  EXPECT_TRUE(SRun.Fallback->degraded()); // Fresh budget, also expired.
}

INSTANTIATE_TEST_SUITE_P(Seeds, OctDegradationSoundness,
                         ::testing::Range<uint64_t>(1, 13));

//===----------------------------------------------------------------------===//
// Cancellation responsiveness
//===----------------------------------------------------------------------===//

TEST(CancellationResponsiveness, ExpiredDeadlineStopsEveryEngineAtZeroVisits) {
  GenConfig Config = fuzzConfig(42);
  Config.NumFunctions = 6;
  Config.StmtsPerFunction = 16;
  auto Prog = buildGenerated(Config);

  for (EngineKind Engine :
       {EngineKind::Vanilla, EngineKind::Base, EngineKind::Sparse}) {
    for (unsigned Jobs : {1u, 4u}) {
      AnalyzerOptions Opts;
      Opts.Engine = Engine;
      Opts.Jobs = Jobs;
      Opts.Budget.DeadlineSec = -1;
      AnalysisRun Run = analyzeProgram(*Prog, Opts);
      EXPECT_TRUE(Run.degraded())
          << "engine " << static_cast<int>(Engine) << " jobs " << Jobs;
      EXPECT_EQ(Run.BudgetStop, BudgetReason::Deadline);
      EXPECT_TRUE(Run.Pre.Degraded);
      uint64_t Visits = Run.Dense ? Run.Dense->Visits : Run.Sparse->Visits;
      EXPECT_EQ(Visits, 0u)
          << "engine " << static_cast<int>(Engine) << " jobs " << Jobs;
    }
  }

  for (EngineKind Engine :
       {EngineKind::Vanilla, EngineKind::Base, EngineKind::Sparse}) {
    OctOptions Opts;
    Opts.Engine = Engine;
    Opts.Budget.DeadlineSec = -1;
    OctRun Run = runOctAnalysis(*Prog, Opts);
    EXPECT_TRUE(Run.degraded()) << "oct engine " << static_cast<int>(Engine);
    uint64_t Visits = Run.Dense ? Run.Dense->Visits : Run.Sparse->Visits;
    EXPECT_EQ(Visits, 0u) << "oct engine " << static_cast<int>(Engine);
  }
}

TEST(CancellationResponsiveness, StepLimitBoundsVisitsAcrossEngines) {
  GenConfig Config = fuzzConfig(43);
  Config.NumFunctions = 6;
  Config.StmtsPerFunction = 16;
  auto Prog = buildGenerated(Config);

  const uint64_t Limit = 100;
  for (EngineKind Engine :
       {EngineKind::Vanilla, EngineKind::Base, EngineKind::Sparse}) {
    for (unsigned Jobs : {1u, 4u}) {
      AnalyzerOptions Opts;
      Opts.Engine = Engine;
      Opts.Jobs = Jobs;
      Opts.Budget.StepLimit = Limit;
      AnalysisRun Run = analyzeProgram(*Prog, Opts);
      uint64_t Visits = Run.Dense ? Run.Dense->Visits : Run.Sparse->Visits;
      EXPECT_LE(Visits, Limit)
          << "engine " << static_cast<int>(Engine) << " jobs " << Jobs;
    }
  }
}

TEST(CancellationResponsiveness, CancelTokenStopsTheRun) {
  auto Prog = buildGenerated(fuzzConfig(44));
  Budget Bud(BudgetLimits{0, 0, 0});
  Bud.cancel();
  EXPECT_TRUE(Bud.exhausted());
  EXPECT_EQ(Bud.reason(), BudgetReason::Cancelled);
  EXPECT_FALSE(Bud.charge());

  // An engine handed a cancelled token degrades immediately.
  PreAnalysisResult Pre = runPreAnalysis(*Prog, SemanticsOptions{});
  DenseOptions DOpts;
  DOpts.Bud = &Bud;
  DOpts.DegradeTo = &Pre.Global;
  DenseResult R = runDenseAnalysis(*Prog, Pre.CG, nullptr, DOpts);
  EXPECT_TRUE(R.Degraded);
  EXPECT_EQ(R.Visits, 0u);
}
