//===- split_oct_test.cpp - Split backend == dense DBM, bit for bit ---------------===//
//
// Part of the SPA project (PLDI 2012 sparse analysis reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backend-equivalence suite for the split-normal-form octagon backend
/// (src/oct/SplitOct.h).  Both representations maintain the same tight
/// closure, so every observable — projections, ordering, emptiness,
/// printing — must agree exactly:
///
///  - lockstep fuzz: random constraint/assign/lattice op sequences applied
///    to an Oct and a SplitOct in parallel, compared after every step via
///    all ordered-pair projections (which determine the full closed
///    matrix);
///  - whole-analysis equivalence: the same program analyzed under
///    --oct-backend=dbm and =split produces identical per-point pack
///    states, including loops/widening and both engines;
///  - soundness: split-backend projections cover every value the concrete
///    interpreter observes (the dense backend has the same oracle test in
///    octagon_test.cpp);
///  - pack determinism: computePacking is a pure function of the program —
///    repeated runs yield identical pack vectors in identical order, which
///    the split backend's pack-keyed states rely on for determinism.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "interp/Interp.h"
#include "oct/OctAnalysis.h"
#include "oct/Octagon.h"
#include "oct/SplitOct.h"
#include "support/Rng.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace spa;
using namespace spa::test;

namespace {

//===----------------------------------------------------------------------===//
// Lockstep domain fuzz
//===----------------------------------------------------------------------===//

/// Full observational equality: the tight-closed matrix is determined by
/// the unary, difference, and sum projections over all ordered pairs, so
/// comparing them all compares every DBM entry (via coherence).
void expectSameOct(const Oct &D, const SplitOct &S, const char *Ctx) {
  ASSERT_EQ(D.numVars(), S.numVars()) << Ctx;
  ASSERT_EQ(D.isBottom(), S.isBottom()) << Ctx << ": dense " << D.str()
                                        << " split " << S.str();
  if (D.isBottom())
    return;
  for (uint32_t V = 0; V < D.numVars(); ++V) {
    EXPECT_EQ(D.project(V), S.project(V)) << Ctx << " v" << V;
    for (uint32_t W = 0; W < D.numVars(); ++W) {
      if (V == W)
        continue;
      EXPECT_EQ(D.projectDiff(V, W), S.projectDiff(V, W))
          << Ctx << " v" << V << "-v" << W;
      EXPECT_EQ(D.projectSum(V, W), S.projectSum(V, W))
          << Ctx << " v" << V << "+v" << W;
    }
  }
  EXPECT_EQ(D.str(), S.str()) << Ctx;
  EXPECT_GT(S.memoryBytes(), 0u) << Ctx;
}

/// One lockstep pair: every operation is applied to both representations.
struct OctPair {
  Oct D;
  SplitOct S;
  explicit OctPair(uint32_t N) : D(Oct::top(N)), S(SplitOct::top(N)) {}
};

class SplitOctFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SplitOctFuzz, LockstepOpsMatchDenseDbm) {
  Rng R(GetParam() * 1000003 + 17);
  uint32_t N = 1 + static_cast<uint32_t>(R.below(6));
  OctPair Cur(N);
  // History snapshots provide lockstep second operands for the lattice
  // ops, so joins/meets/widens see genuinely different octagons.
  std::vector<OctPair> History;
  History.push_back(Cur);

  auto Var = [&] { return static_cast<uint32_t>(R.below(N)); };
  auto C = [&] { return R.range(-8, 8); };

  for (int Step = 0; Step < 80; ++Step) {
    uint32_t V = Var(), W = Var();
    switch (R.below(10)) {
    case 0:
      if (V != W) {
        int64_t K = C();
        Cur.D = Cur.D.addDiffConstraint(V, W, K);
        Cur.S = Cur.S.addDiffConstraint(V, W, K);
      }
      break;
    case 1: {
      bool PV = R.chance(50), PW = R.chance(50);
      int64_t K = C();
      if (V != W) {
        Cur.D = Cur.D.addSumConstraint(V, PV, W, PW, K);
        Cur.S = Cur.S.addSumConstraint(V, PV, W, PW, K);
      }
      break;
    }
    case 2: {
      int64_t K = C();
      Cur.D = Cur.D.addUpperBound(V, K);
      Cur.S = Cur.S.addUpperBound(V, K);
      break;
    }
    case 3: {
      int64_t K = C();
      Cur.D = Cur.D.addLowerBound(V, K);
      Cur.S = Cur.S.addLowerBound(V, K);
      break;
    }
    case 4: {
      int64_t Lo = C();
      Interval Itv(Lo, Lo + R.range(0, 6));
      Cur.D = Cur.D.assignInterval(V, Itv);
      Cur.S = Cur.S.assignInterval(V, Itv);
      break;
    }
    case 5: {
      int64_t K = C();
      Cur.D = Cur.D.assignVarPlusConst(V, W, K);
      Cur.S = Cur.S.assignVarPlusConst(V, W, K);
      break;
    }
    case 6:
      Cur.D = Cur.D.forget(V);
      Cur.S = Cur.S.forget(V);
      break;
    case 7: {
      const OctPair &O = History[R.below(History.size())];
      Cur.D = Cur.D.join(O.D);
      Cur.S = Cur.S.join(O.S);
      break;
    }
    case 8: {
      const OctPair &O = History[R.below(History.size())];
      Cur.D = Cur.D.meet(O.D);
      Cur.S = Cur.S.meet(O.S);
      break;
    }
    case 9: {
      // Engine shape: widen against the join (growing operand), then
      // occasionally narrow back against the meet (shrinking operand).
      const OctPair &O = History[R.below(History.size())];
      if (R.chance(60)) {
        Cur.D = Cur.D.widen(Cur.D.join(O.D));
        Cur.S = Cur.S.widen(Cur.S.join(O.S));
      } else {
        Cur.D = Cur.D.narrow(Cur.D.meet(O.D));
        Cur.S = Cur.S.narrow(Cur.S.meet(O.S));
      }
      break;
    }
    }
    std::string Ctx = "seed ";
    Ctx += std::to_string(GetParam());
    Ctx += " step ";
    Ctx += std::to_string(Step);
    expectSameOct(Cur.D, Cur.S, Ctx.c_str());
    // Cross-representation ordering must agree with the dense order.
    const OctPair &O = History[R.below(History.size())];
    EXPECT_EQ(Cur.D.leq(O.D), Cur.S.leq(O.S)) << Ctx;
    EXPECT_EQ(O.D.leq(Cur.D), O.S.leq(Cur.S)) << Ctx;
    EXPECT_EQ(Cur.D == O.D, Cur.S == O.S) << Ctx;
    if (History.size() < 8 && R.chance(30))
      History.push_back(Cur);
    if (Cur.D.isBottom() && R.chance(80))
      Cur = OctPair(N); // Bottom absorbs everything; restart the walk.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitOctFuzz,
                         ::testing::Range<uint64_t>(1, 25));

//===----------------------------------------------------------------------===//
// Whole-analysis backend equivalence
//===----------------------------------------------------------------------===//

/// All projections of one pack state must match across backends.  OctVal
/// equality requires matching representations, so compare observations.
void expectSameVal(const OctVal &D, const OctVal &S, const std::string &Ctx) {
  ASSERT_EQ(D.numVars(), S.numVars()) << Ctx;
  ASSERT_EQ(D.isBottom(), S.isBottom()) << Ctx;
  if (D.isBottom())
    return;
  for (uint32_t V = 0; V < D.numVars(); ++V) {
    EXPECT_EQ(D.project(V), S.project(V)) << Ctx << " v" << V;
    for (uint32_t W = V + 1; W < D.numVars(); ++W) {
      EXPECT_EQ(D.projectDiff(V, W), S.projectDiff(V, W)) << Ctx;
      EXPECT_EQ(D.projectSum(V, W), S.projectSum(V, W)) << Ctx;
    }
  }
  EXPECT_EQ(D.str(), S.str()) << Ctx;
}

void expectBackendsAgree(const Program &Prog, EngineKind Engine) {
  OctOptions Opts;
  Opts.Engine = Engine;
  Opts.Dep.Bypass = false;
  Opts.Backend = OctBackendKind::Dbm;
  OctRun Dbm = runOctAnalysis(Prog, Opts);
  Opts.Backend = OctBackendKind::Split;
  OctRun Split = runOctAnalysis(Prog, Opts);
  ASSERT_FALSE(Dbm.timedOut());
  ASSERT_FALSE(Split.timedOut());

  auto Compare = [&](const OctState &DS, const OctState &SS, uint32_t P) {
    for (const auto &[Pack, DV] : DS) {
      const OctVal *SV = SS.lookup(Pack);
      ASSERT_TRUE(SV != nullptr)
          << "split missing pack " << Pack.value() << " at "
          << Prog.pointToString(PointId(P));
      std::string Ctx = Prog.pointToString(PointId(P));
      Ctx += " pack ";
      Ctx += std::to_string(Pack.value());
      expectSameVal(DV, *SV, Ctx);
    }
    ASSERT_EQ(DS.size(), SS.size())
        << "extra split packs at " << Prog.pointToString(PointId(P));
  };

  if (Engine == EngineKind::Sparse) {
    for (uint32_t P = 0; P < Prog.numPoints(); ++P) {
      Compare(Dbm.Sparse->In[P], Split.Sparse->In[P], P);
      Compare(Dbm.Sparse->Out[P], Split.Sparse->Out[P], P);
    }
    EXPECT_EQ(Dbm.Sparse->Visits, Split.Sparse->Visits);
    EXPECT_EQ(Dbm.Sparse->StateEntries, Split.Sparse->StateEntries);
  } else {
    for (uint32_t P = 0; P < Prog.numPoints(); ++P)
      Compare(Dbm.Dense->Post[P], Split.Dense->Post[P], P);
    EXPECT_EQ(Dbm.Dense->Visits, Split.Dense->Visits);
  }
}

TEST(SplitOctAnalysis, BackendsAgreeOnLoopsAndWidening) {
  // Loops drive the widen/narrow path, where restabilization is the
  // split backend's riskiest divergence point.
  auto Prog = build(R"(
    fun main() {
      n = input();
      if (n < 0) { n = 0; }
      i = 0;
      r = 0;
      while (i < n) {
        r = n - i;
        i = i + 1;
      }
      return r;
    }
  )");
  expectBackendsAgree(*Prog, EngineKind::Sparse);
  expectBackendsAgree(*Prog, EngineKind::Vanilla);
}

class SplitOctBackendEquality : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SplitOctBackendEquality, RandomProgramsMatchUnderBothEngines) {
  GenConfig Config;
  Config.Seed = GetParam() * 31 + 3;
  Config.NumFunctions = 4;
  Config.StmtsPerFunction = 10;
  Config.AllowLoops = true;
  Config.AllowRecursion = (GetParam() % 3) == 0;
  BuildResult B = buildProgramFromSource(generateSource(Config));
  ASSERT_TRUE(B.ok()) << B.Error;
  expectBackendsAgree(*B.Prog, EngineKind::Sparse);
  if (GetParam() % 2 == 0)
    expectBackendsAgree(*B.Prog, EngineKind::Vanilla);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitOctBackendEquality,
                         ::testing::Range<uint64_t>(1, 13));

//===----------------------------------------------------------------------===//
// Soundness against the concrete interpreter
//===----------------------------------------------------------------------===//

class SplitOctSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SplitOctSoundness, SplitProjectionsCoverConcreteExecutions) {
  GenConfig Config;
  Config.Seed = GetParam() * 13 + 5;
  Config.NumFunctions = 4;
  Config.StmtsPerFunction = 10;
  Config.AllowLoops = true;
  Config.AllowRecursion = (GetParam() % 2) == 0;
  BuildResult B = buildProgramFromSource(generateSource(Config));
  ASSERT_TRUE(B.ok()) << B.Error;
  const Program &Prog = *B.Prog;

  OctOptions Opts;
  Opts.Engine = EngineKind::Vanilla;
  Opts.Backend = OctBackendKind::Split;
  OctRun Run = runOctAnalysis(Prog, Opts);
  ASSERT_FALSE(Run.timedOut());

  InterpOptions IOpts;
  IOpts.MaxSteps = 15000;
  Interp I(Prog, Run.Pre.CG, IOpts);
  I.run([&](PointId P, const Interp &It) {
    for (LocId PL : Run.DU.Defs[P.value()]) {
      PackId Pack(PL.value());
      for (LocId Member : Run.Packs.vars(Pack)) {
        if (Prog.loc(Member).isSummary())
          continue;
        const CValue &CV = It.varValue(Member);
        if (CV.K != CValue::Kind::Int)
          continue;
        const OctVal *O = Run.Dense->Post[P.value()].lookup(Pack);
        ASSERT_TRUE(O != nullptr);
        ASSERT_EQ(O->backend(), OctBackendKind::Split);
        Interval Itv = O->project(
            static_cast<uint32_t>(Run.Packs.indexIn(Pack, Member)));
        EXPECT_TRUE(Itv.contains(CV.I))
            << "split octagon misses " << Prog.loc(Member).Name << " = "
            << CV.I << " at " << Prog.pointToString(P) << " (got "
            << Itv.str() << ")";
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitOctSoundness,
                         ::testing::Range<uint64_t>(1, 9));

//===----------------------------------------------------------------------===//
// Pack-ordering determinism
//===----------------------------------------------------------------------===//

TEST(SplitOctPacking, RepeatedPackingIsIdenticalInContentAndOrder) {
  // The pack table is keyed by index everywhere (OctState, def/use in
  // pack space, the split backend's per-pack octagons), so packing must
  // be a pure deterministic function of the program: same packs, same
  // member order, same pack numbering on every run.
  for (unsigned Round = 0; Round < 4; ++Round) {
    GenConfig Config;
    Config.Seed = 0xaced + Round * 97;
    Config.NumFunctions = 5;
    Config.StmtsPerFunction = 12;
    Config.AllowLoops = true;
    BuildResult B = buildProgramFromSource(generateSource(Config));
    ASSERT_TRUE(B.ok()) << B.Error;

    OctOptions Opts;
    Opts.Engine = EngineKind::Sparse;
    OctRun Run = runOctAnalysis(*B.Prog, Opts);
    Packing Again = computePacking(*B.Prog, Run.Pre, Opts.MaxPackSize);
    ASSERT_EQ(Run.Packs.Packs, Again.Packs) << "round " << Round;
    ASSERT_EQ(Run.Packs.Singleton, Again.Singleton) << "round " << Round;
    ASSERT_EQ(Run.Packs.Of, Again.Of) << "round " << Round;
    ASSERT_EQ(Run.Packs.NumGroups, Again.NumGroups) << "round " << Round;
    // Member lists are sorted — the order the split backend's vertex
    // numbering (2i/2i+1) inherits.
    for (const auto &Members : Again.Packs)
      ASSERT_TRUE(std::is_sorted(Members.begin(), Members.end(),
                                 [](LocId A, LocId B) {
                                   return A.value() < B.value();
                                 }));
  }
}

} // namespace
